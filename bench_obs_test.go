package sidechannel

// Observability overhead guard: the same FitPipeline workload with the
// metrics registry + tracer installed versus the nil-registry fast path.
// The instruments are atomic counters and stage-granularity spans, so the
// delta must stay inside the noise floor. Run the comparison gate with
//
//	make bench-compare
//
// which fails when the obs-on path is more than 3% slower than obs-off.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// benchFitObs runs one FitPipelineCtx fit per iteration, with or without the
// full observability stack (default registry + context tracer) installed.
func benchFitObs(b *testing.B, enabled bool) {
	traces := benchTraces(40, benchTraceLen)
	labels := make([]int, len(traces))
	programs := make([]int, len(traces))
	for i := range traces {
		labels[i] = i % 2
		programs[i] = (i / 2) % 3
	}
	cfg := features.CSAPipelineConfig()
	cfg.NumComponents = 8
	ctx := context.Background()
	if enabled {
		obs.SetDefault(obs.NewRegistry())
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	defer obs.SetDefault(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.FitPipelineCtx(ctx, traces, labels, programs, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFitObsOff(b *testing.B) { benchFitObs(b, false) }
func BenchmarkPipelineFitObsOn(b *testing.B)  { benchFitObs(b, true) }

// BenchmarkLabeledRequestAccounting times the full per-request labeled
// instrument bundle the serving middleware performs — one CounterVec Inc,
// two HistogramVec observes, two byte-size observes, and the in-flight
// gauge swing — against a live registry with the serving label schema. This
// is the hot path the cardinality-bounded vec design must keep cheap: every
// child resolution is an atomic map load (no locks after first use).
func BenchmarkLabeledRequestAccounting(b *testing.B) {
	r := obs.NewRegistry()
	requests := r.CounterVec("scdisd.http.requests.total", "route", "template", "code")
	latency := r.HistogramVec("scdisd.http.request.seconds", obs.DurationBuckets(), "route", "template")
	reqBytes := r.HistogramVec("scdisd.http.request.bytes", obs.ByteBuckets(), "route")
	respBytes := r.HistogramVec("scdisd.http.response.bytes", obs.ByteBuckets(), "route")
	admWait := r.HistogramVec("scdisd.http.admission.wait.seconds", obs.DurationBuckets(), "template")
	inflight := r.Gauge("scdisd.http.inflight")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inflight.Add(1)
		requests.With("disassemble", "demo", "200").Inc()
		latency.With("disassemble", "demo").Observe(0.0042)
		reqBytes.With("disassemble").Observe(65536)
		respBytes.With("disassemble").Observe(2048)
		admWait.With("demo").Observe(0)
		inflight.Add(-1)
	}
}

// BenchmarkRequestTracingBundle times everything request tracing adds to an
// UNSAMPLED request — the common case a 1% sample rate leaves: mint a trace
// ID, build the fine per-request tracer, open the root plus the handler's
// fine stage spans with their attrs, format the traceparent echo, and run the
// tail-sampling decision to a drop. Export and ring push are excluded on
// purpose: they only run for kept traces, off the common path.
func BenchmarkRequestTracingBundle(b *testing.B) {
	sampler := obs.NewTailSampler(0, obs.NewHistogram(obs.DurationBuckets()))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer := obs.NewTracer()
		tracer.Fine = true
		tracer.MaxSpans = 512
		tracer.SetTraceContext(obs.NewTraceID(), obs.SpanID{})
		sctx, root := obs.Span(obs.WithTracer(ctx, tracer), "serve.request")
		_ = obs.FormatTraceparent(tracer.TraceID(), root.ExportID(), true)
		load := root.FineChild("serve.template.load")
		load.End()
		body := root.FineChild("serve.decode.body")
		body.SetAttr("traces", 1)
		body.End()
		classify := root.FineChild("core.classify")
		classify.SetAttr("confidence", 0.99)
		classify.End()
		root.SetAttr("status", 200)
		root.End()
		if keep, _ := sampler.Decide(200, 0, false); keep {
			b.Fatal("rate-0 sampler kept a healthy trace")
		}
		_ = sctx
	}
}

// minNsPerOp runs fn `rounds` times via testing.Benchmark and returns the
// fastest ns/op — the minimum is the standard noise-rejecting statistic for
// a throughput comparison on a shared machine.
func minNsPerOp(rounds int, fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestMetricsOverheadBudget is the bench-compare gate: with BENCH_COMPARE=1
// it measures obs-on vs obs-off FitPipeline and fails when the instrumented
// path costs more than 3%. Env-gated because a timing assertion on a loaded
// machine is a flake, not a signal; `make bench-compare` opts in.
func TestMetricsOverheadBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the overhead gate")
	}
	// Pair the variants within each round and take the median per-round
	// overhead: a load spike (CPU steal on a shared box) then skews one
	// round's ratio, not the whole comparison — unpaired minimums can be
	// biased by a sustained spike that happens to cover one variant's runs.
	const rounds = 5
	overheads := make([]float64, 0, rounds)
	lastOff, lastOn := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		lastOff = minNsPerOp(1, BenchmarkPipelineFitObsOff)
		lastOn = minNsPerOp(1, BenchmarkPipelineFitObsOn)
		overheads = append(overheads, (lastOn-lastOff)/lastOff)
	}
	sort.Float64s(overheads)
	overhead := overheads[rounds/2]
	fmt.Printf("bench-compare: obs off %.0f ns/op, on %.0f ns/op, median overhead %+.2f%% (rounds %+.1f%%..%+.1f%%)\n",
		lastOff, lastOn, overhead*100, overheads[0]*100, overheads[rounds-1]*100)
	if overhead > 0.03 {
		t.Fatalf("observability overhead %.2f%% exceeds the 3%% budget", overhead*100)
	}
}

// TestLabeledOverheadBudget is the labeled-metric bench-compare gate: the
// whole per-request accounting bundle must cost no more than 3% of one
// per-trace sparse decode (the smallest unit of billable request work — a
// real request decodes a batch, so per-request accounting amortizes further)
// — or, as with TestDecisionOverheadBudget, stay under an absolute 1.5 µs
// bundle cost, far below what the 3% budget was calibrated to permit on the
// full-CWT path. Either bound passing means labeling has not regressed the
// hot path. Env-gated like the other timing gates.
func TestLabeledOverheadBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the overhead gate")
	}
	const rounds = 3
	const bundleBudgetNs = 1500.0
	bundle := minNsPerOp(rounds, BenchmarkLabeledRequestAccounting)
	decode := minNsPerOp(rounds, BenchmarkPipelineClassifyOneSparse)
	frac := bundle / decode
	fmt.Printf("bench-compare: labeled request bundle %.0f ns, sparse decode %.0f ns/trace, ratio %.2f%% (budget 3%% or %.0f ns absolute)\n",
		bundle, decode, frac*100, bundleBudgetNs)
	if frac > 0.03 && bundle > bundleBudgetNs {
		t.Fatalf("labeled request accounting costs %.0f ns (%.2f%% of a decode); budget is 3%% or %.0f ns",
			bundle, frac*100, bundleBudgetNs)
	}
}

// TestTracingOverheadBudget is the request-tracing bench-compare gate: the
// whole unsampled-request tracing bundle (trace ID mint, fine tracer, root +
// stage spans, traceparent echo, tail-sample drop) must cost no more than 3%
// of one per-trace sparse decode, or stay under an absolute 5 µs — a real
// request decodes a whole batch and pays the bundle once, so either bound
// keeps tracing far below measurement noise on the serving path. Env-gated
// like the other timing gates; `make bench-compare` opts in.
func TestTracingOverheadBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the overhead gate")
	}
	const rounds = 3
	const bundleBudgetNs = 5000.0
	bundle := minNsPerOp(rounds, BenchmarkRequestTracingBundle)
	decode := minNsPerOp(rounds, BenchmarkPipelineClassifyOneSparse)
	frac := bundle / decode
	fmt.Printf("bench-compare: request tracing bundle %.0f ns, sparse decode %.0f ns/trace, ratio %.2f%% (budget 3%% or %.0f ns absolute)\n",
		bundle, decode, frac*100, bundleBudgetNs)
	if frac > 0.03 && bundle > bundleBudgetNs {
		t.Fatalf("request tracing costs %.0f ns (%.2f%% of a decode); budget is 3%% or %.0f ns",
			bundle, frac*100, bundleBudgetNs)
	}
}
