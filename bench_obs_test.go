package sidechannel

// Observability overhead guard: the same FitPipeline workload with the
// metrics registry + tracer installed versus the nil-registry fast path.
// The instruments are atomic counters and stage-granularity spans, so the
// delta must stay inside the noise floor. Run the comparison gate with
//
//	make bench-compare
//
// which fails when the obs-on path is more than 3% slower than obs-off.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// benchFitObs runs one FitPipelineCtx fit per iteration, with or without the
// full observability stack (default registry + context tracer) installed.
func benchFitObs(b *testing.B, enabled bool) {
	traces := benchTraces(40, benchTraceLen)
	labels := make([]int, len(traces))
	programs := make([]int, len(traces))
	for i := range traces {
		labels[i] = i % 2
		programs[i] = (i / 2) % 3
	}
	cfg := features.CSAPipelineConfig()
	cfg.NumComponents = 8
	ctx := context.Background()
	if enabled {
		obs.SetDefault(obs.NewRegistry())
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	defer obs.SetDefault(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.FitPipelineCtx(ctx, traces, labels, programs, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFitObsOff(b *testing.B) { benchFitObs(b, false) }
func BenchmarkPipelineFitObsOn(b *testing.B)  { benchFitObs(b, true) }

// minNsPerOp runs fn `rounds` times via testing.Benchmark and returns the
// fastest ns/op — the minimum is the standard noise-rejecting statistic for
// a throughput comparison on a shared machine.
func minNsPerOp(rounds int, fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestMetricsOverheadBudget is the bench-compare gate: with BENCH_COMPARE=1
// it measures obs-on vs obs-off FitPipeline and fails when the instrumented
// path costs more than 3%. Env-gated because a timing assertion on a loaded
// machine is a flake, not a signal; `make bench-compare` opts in.
func TestMetricsOverheadBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the overhead gate")
	}
	// Pair the variants within each round and take the median per-round
	// overhead: a load spike (CPU steal on a shared box) then skews one
	// round's ratio, not the whole comparison — unpaired minimums can be
	// biased by a sustained spike that happens to cover one variant's runs.
	const rounds = 5
	overheads := make([]float64, 0, rounds)
	lastOff, lastOn := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		lastOff = minNsPerOp(1, BenchmarkPipelineFitObsOff)
		lastOn = minNsPerOp(1, BenchmarkPipelineFitObsOn)
		overheads = append(overheads, (lastOn-lastOff)/lastOff)
	}
	sort.Float64s(overheads)
	overhead := overheads[rounds/2]
	fmt.Printf("bench-compare: obs off %.0f ns/op, on %.0f ns/op, median overhead %+.2f%% (rounds %+.1f%%..%+.1f%%)\n",
		lastOff, lastOn, overhead*100, overheads[0]*100, overheads[rounds-1]*100)
	if overhead > 0.03 {
		t.Fatalf("observability overhead %.2f%% exceeds the 3%% budget", overhead*100)
	}
}
