package sidechannel

// Registry cold-start benchmarks: time to bring a template directory to
// serving-ready (NewRegistry scan + Get on every template) for the legacy
// gob format — which must decode and restore the whole state before the
// first request — against the v4 store format, whose Get stops at the
// checksummed header and defers matrix materialization to first decode. Run
//
//	go test -bench=RegistryColdStart -benchmem -run=^$
//
// and compare against BENCH_store.json. The comparison gate
// (TestStoreColdStartBudget, part of `make bench-compare`) fails when the
// v4 cold start is not at least 10x cheaper than gob over the same 16
// templates — the margin the lazy format exists for.

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// storeBench lays out two template directories — 16 gob copies and 16 v4
// copies of a serving-representative template — once per process.
var storeBench struct {
	once   sync.Once
	gobDir string
	v4Dir  string
	err    error
}

const coldStartTemplates = 16

// storeBenchTemplate trains the fixture the cold-start comparison is run
// over. Unlike classifyFixture it enables the register levels: their 32-way
// kNN classifiers carry the training-set matrices that dominate a gob
// decode, exactly the payloads a serving registry pays for on every legacy
// template whether or not the first request needs them.
func storeBenchTemplate() (*core.Disassembler, error) {
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = 3
	cfg.TracesPerProgram = 8
	cfg.RegisterPrograms = 3
	cfg.RegisterTracesPerProgram = 8
	cfg.Seed = 41
	return core.TrainSubset(cfg, AllClasses()[:2], true)
}

func storeBenchDirs(b *testing.B) (gobDir, v4Dir string) {
	b.Helper()
	storeBench.once.Do(func() {
		d, err := storeBenchTemplate()
		if err != nil {
			storeBench.err = err
			return
		}
		gobDir, err := os.MkdirTemp("", "scdis-bench-gob-")
		if err != nil {
			storeBench.err = err
			return
		}
		v4Dir, err := os.MkdirTemp("", "scdis-bench-v4-")
		if err != nil {
			storeBench.err = err
			return
		}
		var gobBuf bytes.Buffer
		if err := d.Save(&gobBuf); err != nil {
			storeBench.err = err
			return
		}
		v4Path := filepath.Join(v4Dir, "seed.bin")
		if err := d.SaveStoreFile(v4Path, store.Options{}); err != nil {
			storeBench.err = err
			return
		}
		v4Bytes, err := os.ReadFile(v4Path)
		if err != nil {
			storeBench.err = err
			return
		}
		if err := os.Remove(v4Path); err != nil {
			storeBench.err = err
			return
		}
		for i := 0; i < coldStartTemplates; i++ {
			name := fmt.Sprintf("t%02d%s", i, serve.TemplateExt)
			if err := os.WriteFile(filepath.Join(gobDir, name), gobBuf.Bytes(), 0o644); err != nil {
				storeBench.err = err
				return
			}
			if err := os.WriteFile(filepath.Join(v4Dir, name), v4Bytes, 0o644); err != nil {
				storeBench.err = err
				return
			}
		}
		storeBench.gobDir, storeBench.v4Dir = gobDir, v4Dir
	})
	if storeBench.err != nil {
		b.Fatal(storeBench.err)
	}
	return storeBench.gobDir, storeBench.v4Dir
}

// benchColdStart measures one full cold start per iteration: scan the
// directory, Get every template to serving-ready, then Close (dropping the
// handles so v4 iterations do not accumulate mappings across b.N).
func benchColdStart(b *testing.B, dir string) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := serve.NewRegistry(dir, serve.RegistryConfig{Logger: logger})
		if err != nil {
			b.Fatal(err)
		}
		names := r.Names()
		if len(names) != coldStartTemplates {
			b.Fatalf("registry found %d templates, want %d", len(names), coldStartTemplates)
		}
		for _, name := range names {
			if _, err := r.Get(name); err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
}

func BenchmarkRegistryColdStartGob(b *testing.B) {
	gobDir, _ := storeBenchDirs(b)
	benchColdStart(b, gobDir)
}

func BenchmarkRegistryColdStartV4(b *testing.B) {
	_, v4Dir := storeBenchDirs(b)
	benchColdStart(b, v4Dir)
}

// TestStoreColdStartBudget is the store bench-compare gate: with
// BENCH_COMPARE=1 it measures both cold starts and fails when the v4 path is
// not at least 10x cheaper. The ratio is structural, not incidental: gob Get
// must decode every matrix and rebuild restore-time state (Cholesky factors,
// sparse kernel tables) for all 16 templates before the registry is ready,
// while v4 Get reads and CRC-checks only the small header region per file.
// Env-gated like the other timing gates — a timing assertion on a loaded
// machine is a flake, not a signal.
func TestStoreColdStartBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the cold-start gate")
	}
	const rounds = 3
	const minSpeedup = 10.0
	gob := minNsPerOp(rounds, BenchmarkRegistryColdStartGob)
	v4 := minNsPerOp(rounds, BenchmarkRegistryColdStartV4)
	speedup := gob / v4
	fmt.Printf("bench-compare: cold start (%d templates) gob %.0f ns/op, v4 %.0f ns/op, speedup %.1fx (floor %.0fx)\n",
		coldStartTemplates, gob, v4, speedup, minSpeedup)
	if speedup < minSpeedup {
		t.Fatalf("v4 cold start is only %.1fx faster than gob; the lazy header-open must be at least %.0fx", speedup, minSpeedup)
	}
}
