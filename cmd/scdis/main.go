// Command scdis is the side-channel disassembler CLI.
//
// Subcommands:
//
//	scdis groups                     print the Table 2 instruction grouping
//	scdis asm "ADD r16, r17"         assemble one instruction to machine code
//	scdis decode 0F01 9040 0100      decode machine-code words to assembly
//	scdis demo                       train templates and disassemble a demo
//	                                 program from simulated power traces
//	scdis detect                     run the §5.7 malware-detection case study
//	scdis drift                      stream a control then a covariate-shifted
//	                                 phase through the classifier and report
//	                                 the drift monitor's verdict per phase
//	scdis convert -in a.tpl -out b.tpl
//	                                 migrate a template to the flat v4 store
//	                                 format (-quantize packs matrix sections
//	                                 as float32, halving file and resident
//	                                 bytes)
//
// Flags for demo/detect/drift: -programs, -traces, -seed scale the simulated
// profiling campaign; -workers N bounds the worker pool (0 = all CPUs);
// -sparse auto|on|off picks the inference path (per-cell sparse CWT vs the
// full FFT scalogram — auto uses sparse whenever the templates allow it).
// Observability: -metrics-out/-trace-out/-manifest-out write end-of-run JSON
// artifacts, -log-format selects text or json logs, -pprof ADDR serves
// net/http/pprof plus /metrics, and a stage-timing table always lands on
// stderr after training. Inference quality: -decision-log/-decision-sample
// write sampled per-classification confidence records as JSONL, and
// -drift-window/-drift-warn/-drift-critical tune the covariate-shift monitor
// (its verdict lands on stderr and in the manifest).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Ctrl-C / SIGTERM cancels the context; the train/disassemble pipelines
	// stop scheduling new work and return context.Canceled promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "groups":
		fmt.Print(experiments.Table2())
	case "asm":
		err = runAsm(args)
	case "decode":
		err = runDecode(args)
	case "demo":
		err = runDemo(ctx, args)
	case "detect":
		err = runDetect(ctx, args)
	case "drift":
		err = runDrift(ctx, args)
	case "convert":
		err = runConvert(args)
	case "trace":
		err = runTrace(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scdis:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scdis <groups|asm|decode|demo|detect|drift|convert|trace> [args]")
	os.Exit(2)
}

func runAsm(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("asm needs an instruction string")
	}
	for _, line := range args {
		in, err := avr.Assemble(line)
		if err != nil {
			return err
		}
		words, err := in.Encode()
		if err != nil {
			return err
		}
		var hex []string
		for _, w := range words {
			hex = append(hex, fmt.Sprintf("%04X", w))
		}
		fmt.Printf("%-24s %s   (%s, %d cycle(s))\n", in, strings.Join(hex, " "),
			in.Class.Group(), avr.SpecOf(in.Class).Cycles)
	}
	return nil
}

func runDecode(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("decode needs hex words")
	}
	var words []uint16
	for _, a := range args {
		v, err := strconv.ParseUint(strings.TrimPrefix(a, "0x"), 16, 16)
		if err != nil {
			return fmt.Errorf("bad word %q: %v", a, err)
		}
		words = append(words, uint16(v))
	}
	prog, err := avr.DecodeProgram(words)
	if err != nil {
		return err
	}
	for _, in := range prog {
		fmt.Println(in)
	}
	return nil
}

func campaignFlags(fs *flag.FlagSet) (*int, *int, *uint64, *int, *string, *obs.Options) {
	programs := fs.Int("programs", 4, "profiling program files per class")
	traces := fs.Int("traces", 20, "traces per program file")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "worker goroutines for training/disassembly (0 = all CPUs)")
	sparse := fs.String("sparse", "auto", "inference path: auto (sparse when templates allow), on, off")
	obsOpts := &obs.Options{}
	obsOpts.Register(fs)
	return programs, traces, seed, workers, sparse, obsOpts
}

// parseSparse validates the -sparse flag up front, before any training
// work; the parsed mode is installed on the trained disassembler with
// SetSparseMode, where -sparse=on fails for templates that cannot support
// the per-cell path (legacy scalogram-plane normalization).
func parseSparse(mode string) (core.SparseMode, error) {
	return core.ParseSparseMode(mode)
}

// installObserver wires the session's inference-quality sinks into a trained
// disassembler, building the covariate-shift monitor from its training
// baseline. Templates saved before format version 2 carry no baseline; drift
// monitoring is then skipped with a notice instead of failing the run.
func installObserver(d *core.Disassembler, sess *obs.Session, opts *obs.Options) error {
	mon, err := d.NewDriftMonitor(opts.DriftConfig())
	switch {
	case err == nil:
		sess.Drift = mon
	case errors.Is(err, core.ErrNoDriftBaseline):
		fmt.Fprintln(os.Stderr, "scdis: templates predate drift support; covariate-shift monitoring disabled")
	default:
		return err
	}
	d.SetObserver(&core.InferenceObserver{
		Log:         sess.Decisions,
		Drift:       sess.Drift,
		Calibration: sess.Calibration,
	})
	return nil
}

// applyWorkers validates and installs the -workers flag value. Negative
// counts are a usage error, not something to silently clamp.
func applyWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", workers)
	}
	parallel.SetWorkers(workers)
	return nil
}

func runDemo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	programs, traces, seed, workers, sparse, obsOpts := campaignFlags(fs)
	saveTo := fs.String("save", "", "write the trained templates to this file")
	loadFrom := fs.String("templates", "", "load templates from this file instead of training")
	dumpTraces := fs.String("dump-traces", "", "write the first demo run's traces to this file as a JSON body ready to POST to scdisd")
	dumpListing := fs.String("dump-listing", "", "write the first demo run's decoded listing to this file, one instruction per line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	sparseMode, err := parseSparse(*sparse)
	if err != nil {
		return err
	}
	ctx, sess, err := obsOpts.Start(ctx)
	if err != nil {
		return err
	}
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = *programs
	cfg.TracesPerProgram = *traces
	cfg.RegisterPrograms = *programs
	cfg.RegisterTracesPerProgram = *traces
	cfg.Seed = *seed

	classes := []avr.Class{avr.OpADD, avr.OpADC, avr.OpEOR, avr.OpMOV}
	var d *core.Disassembler
	var rep *core.TrainReport
	if *loadFrom != "" {
		// LoadFile sniffs the format: gob (v1–v3) and flat store (v4) files
		// both load here, so demo can replay templates from either lineage.
		if d, err = core.LoadFile(*loadFrom); err != nil {
			return err
		}
		fmt.Printf("loaded templates from %s\n", *loadFrom)
	} else {
		fmt.Printf("training templates for %d classes (%d programs x %d traces)...\n",
			len(classes), cfg.Programs, cfg.TracesPerProgram)
		var err error
		if d, rep, err = core.TrainSubsetReportCtx(ctx, cfg, classes, true); err != nil {
			return err
		}
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			if err != nil {
				return err
			}
			if err := d.Save(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("templates saved to %s\n", *saveTo)
		}
	}
	if err := d.SetSparseMode(sparseMode); err != nil {
		return err
	}
	if err := installObserver(d, sess, obsOpts); err != nil {
		return err
	}
	program, err := avr.AssembleProgram(`
		MOV r20, r4
		ADD r20, r5
		ADC r21, r6
		EOR r20, r21
	`)
	if err != nil {
		return err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, *seed+1000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(int64(*seed) + 5))
	prog := power.NewProgramEnv(cfg.Power, *seed+1000, 2)
	var runs [][]core.Decoded
	for r := 0; r < 9; r++ {
		tr, err := camp.AcquireSegments(rng, prog, program)
		if err != nil {
			return err
		}
		decs, err := d.DisassembleCtx(ctx, tr)
		if err != nil {
			return err
		}
		runs = append(runs, decs)
		// The first run doubles as the serve-smoke fixture: the traces as a
		// ready-to-POST scdisd request body, and this process's decode of
		// them as the reference listing the server must match bitwise.
		if r == 0 {
			if *dumpTraces != "" {
				if err := writeJSONFile(*dumpTraces, struct {
					Traces [][]float64 `json:"traces"`
				}{tr}); err != nil {
					return err
				}
			}
			if *dumpListing != "" {
				if err := os.WriteFile(*dumpListing, []byte(core.Listing(decs)), 0o644); err != nil {
					return err
				}
			}
		}
	}
	fused, err := core.MajorityDecode(runs)
	if err != nil {
		return err
	}
	fmt.Println("\nexecuted program            recovered from power traces")
	for i, in := range program {
		fmt.Printf("  %-24s  %s\n", in.String(), fused[i].String())
	}
	manifest := sess.Manifest("demo", parallel.Workers())
	manifest.Config = cfg
	manifest.Report = rep
	return sess.Close(manifest, parallel.Workers())
}

// writeJSONFile writes v as JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runDetect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	programs, traces, seed, workers, sparse, obsOpts := campaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	sparseMode, err := parseSparse(*sparse)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	_, sess, err := obsOpts.Start(ctx)
	if err != nil {
		return err
	}
	sc := experiments.DefaultScale()
	sc.Programs = *programs
	sc.TracesPerProgram = *traces
	sc.Seed = *seed
	res, err := experiments.MalwareObserved(sc, func(d *core.Disassembler) error {
		if err := d.SetSparseMode(sparseMode); err != nil {
			return err
		}
		return installObserver(d, sess, obsOpts)
	})
	if err != nil {
		return err
	}
	fmt.Print(res)
	manifest := sess.Manifest("detect", parallel.Workers())
	manifest.Config = sc
	manifest.Report = res
	return sess.Close(manifest, parallel.Workers())
}

// runDrift demonstrates the covariate-shift monitor end to end: train subset
// templates (capturing the drift baseline), stream a control phase of
// in-distribution traces, then a phase with an explicit DC offset and gain
// injected into every trace — the paper's §5.4 covariate shifts, which
// silently collapse accuracy without CSA. Each phase ends with a
// machine-greppable "DRIFT <phase> state=..." line for CI smoke checks.
func runDrift(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	programs, traces, seed, workers, sparse, obsOpts := campaignFlags(fs)
	offset := fs.Float64("offset", 0.5, "DC offset added to every shifted-phase sample")
	gain := fs.Float64("gain", 1.2, "gain multiplying every shifted-phase sample")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	sparseMode, err := parseSparse(*sparse)
	if err != nil {
		return err
	}
	ctx, sess, err := obsOpts.Start(ctx)
	if err != nil {
		return err
	}
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = *programs
	cfg.TracesPerProgram = *traces
	cfg.Seed = *seed

	classes := []avr.Class{avr.OpADD, avr.OpADC, avr.OpEOR, avr.OpMOV}
	fmt.Printf("training templates for %d classes (%d programs x %d traces)...\n",
		len(classes), cfg.Programs, cfg.TracesPerProgram)
	d, rep, err := core.TrainSubsetReportCtx(ctx, cfg, classes, false)
	if err != nil {
		return err
	}
	if err := d.SetSparseMode(sparseMode); err != nil {
		return err
	}
	if err := installObserver(d, sess, obsOpts); err != nil {
		return err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, *seed+2000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(int64(*seed) + 9))
	window := sess.Drift.Config().Window
	const batch = 4
	// A short in-subset decode up front exercises the scored path, so a
	// -decision-log run of this subcommand captures real records. Running it
	// before the phases means its traces age out of the drift window before
	// either phase snapshot is taken.
	warm := make([]avr.Instruction, 8)
	for i := range warm {
		warm[i] = avr.RandomOperands(rng, classes[rng.Intn(len(classes))])
	}
	warmProg := power.NewProgramEnv(cfg.Power, *seed+2000, 99)
	warmTraces, err := camp.AcquireTemplated(rng, warmProg, warm)
	if err != nil {
		return err
	}
	decs, err := d.DisassembleScoredCtx(ctx, warmTraces)
	if err != nil {
		return err
	}
	meanConf := 0.0
	for _, dec := range decs {
		meanConf += dec.Confidence
	}
	if len(decs) > 0 {
		meanConf /= float64(len(decs))
	}
	fmt.Printf("decoded %d in-subset traces, mean confidence %.3f\n", len(decs), meanConf)
	// The probe stream mirrors the training acquisition marginal: targets
	// drawn uniformly over all 8 groups with random operands, under a fresh
	// program environment per batch. Traces feed the monitor directly via
	// ObserveTrace — drift is a property of the input stream, so feeding
	// must not depend on the trained subset covering the probe's classes. A
	// fixed program (or a single environment) would read as drift by itself:
	// its instruction mix and environment draw differ from the training
	// marginal even under perfect acquisition conditions.
	envID := 100
	phase := func(name string, mutate func([]float64)) error {
		n := 0
		for n < window {
			prog := power.NewProgramEnv(cfg.Power, *seed+2000, envID)
			envID++
			targets := make([]avr.Instruction, batch)
			for i := range targets {
				g := avr.Group1 + avr.Group(rng.Intn(avr.NumGroups))
				members := avr.ClassesInGroup(g)
				targets[i] = avr.RandomOperands(rng, members[rng.Intn(len(members))])
			}
			tr, err := camp.AcquireTemplated(rng, prog, targets)
			if err != nil {
				return err
			}
			for _, t := range tr {
				if mutate != nil {
					mutate(t)
				}
				if err := d.ObserveTrace(t); err != nil {
					return err
				}
			}
			n += len(tr)
		}
		snap := sess.Drift.Snapshot()
		fmt.Printf("DRIFT %s state=%s score=%.4g max|z|=%.4g traces=%d\n",
			name, snap.State, snap.Score, snap.MaxZ, n)
		return nil
	}
	if err := phase("control", nil); err != nil {
		return err
	}
	if err := phase("shifted", func(t []float64) {
		for i := range t {
			t[i] = *gain*t[i] + *offset
		}
	}); err != nil {
		return err
	}
	manifest := sess.Manifest("drift", parallel.Workers())
	manifest.Config = cfg
	manifest.Report = rep
	return sess.Close(manifest, parallel.Workers())
}

// runConvert migrates a template file to the flat v4 store format. The
// source may be any supported format (gob v1–v3 or already-v4); loading
// fully validates it, so a defective file never converts into a "valid"
// store file.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "source template file (gob v1-v3 or store v4)")
	out := fs.String("out", "", "destination file (flat store, schema v4)")
	quantize := fs.Bool("quantize", false, "encode matrix sections as float32 (half the bytes; <=2^-24 relative rounding per value, e2e-gated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("convert needs -in and -out")
	}
	d, err := core.LoadFile(*in)
	if err != nil {
		return fmt.Errorf("loading %s: %w", *in, err)
	}
	if err := d.SaveStoreFile(*out, store.Options{Quantize: *quantize}); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	srcInfo, err := os.Stat(*in)
	if err != nil {
		return err
	}
	dstInfo, err := os.Stat(*out)
	if err != nil {
		return err
	}
	f, err := store.Open(*out)
	if err != nil {
		return fmt.Errorf("re-opening %s: %w", *out, err)
	}
	defer f.Close()
	fmt.Printf("converted %s (%d bytes) -> %s (%d bytes, schema v4, quantized=%v)\n",
		*in, srcInfo.Size(), *out, dstInfo.Size(), *quantize)
	fmt.Printf("header %d bytes (eager), %d sections / %d bytes (lazy)\n",
		f.PayloadOffset(), len(f.Sections()), dstInfo.Size()-f.PayloadOffset())
	return nil
}
