// Command scdis is the side-channel disassembler CLI.
//
// Subcommands:
//
//	scdis groups                     print the Table 2 instruction grouping
//	scdis asm "ADD r16, r17"         assemble one instruction to machine code
//	scdis decode 0F01 9040 0100      decode machine-code words to assembly
//	scdis demo                       train templates and disassemble a demo
//	                                 program from simulated power traces
//	scdis detect                     run the §5.7 malware-detection case study
//
// Flags for demo/detect: -programs, -traces, -seed scale the simulated
// profiling campaign; -workers N bounds the worker pool (0 = all CPUs).
// Observability: -metrics-out/-trace-out/-manifest-out write end-of-run JSON
// artifacts, -log-format selects text or json logs, -pprof ADDR serves
// net/http/pprof plus /metrics, and a stage-timing table always lands on
// stderr after training.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Ctrl-C / SIGTERM cancels the context; the train/disassemble pipelines
	// stop scheduling new work and return context.Canceled promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "groups":
		fmt.Print(experiments.Table2())
	case "asm":
		err = runAsm(args)
	case "decode":
		err = runDecode(args)
	case "demo":
		err = runDemo(ctx, args)
	case "detect":
		err = runDetect(ctx, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scdis:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scdis <groups|asm|decode|demo|detect> [args]")
	os.Exit(2)
}

func runAsm(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("asm needs an instruction string")
	}
	for _, line := range args {
		in, err := avr.Assemble(line)
		if err != nil {
			return err
		}
		words, err := in.Encode()
		if err != nil {
			return err
		}
		var hex []string
		for _, w := range words {
			hex = append(hex, fmt.Sprintf("%04X", w))
		}
		fmt.Printf("%-24s %s   (%s, %d cycle(s))\n", in, strings.Join(hex, " "),
			in.Class.Group(), avr.SpecOf(in.Class).Cycles)
	}
	return nil
}

func runDecode(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("decode needs hex words")
	}
	var words []uint16
	for _, a := range args {
		v, err := strconv.ParseUint(strings.TrimPrefix(a, "0x"), 16, 16)
		if err != nil {
			return fmt.Errorf("bad word %q: %v", a, err)
		}
		words = append(words, uint16(v))
	}
	prog, err := avr.DecodeProgram(words)
	if err != nil {
		return err
	}
	for _, in := range prog {
		fmt.Println(in)
	}
	return nil
}

func campaignFlags(fs *flag.FlagSet) (*int, *int, *uint64, *int, *obs.Options) {
	programs := fs.Int("programs", 4, "profiling program files per class")
	traces := fs.Int("traces", 20, "traces per program file")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "worker goroutines for training/disassembly (0 = all CPUs)")
	obsOpts := &obs.Options{}
	obsOpts.Register(fs)
	return programs, traces, seed, workers, obsOpts
}

// applyWorkers validates and installs the -workers flag value. Negative
// counts are a usage error, not something to silently clamp.
func applyWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", workers)
	}
	parallel.SetWorkers(workers)
	return nil
}

func runDemo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	programs, traces, seed, workers, obsOpts := campaignFlags(fs)
	saveTo := fs.String("save", "", "write the trained templates to this file")
	loadFrom := fs.String("templates", "", "load templates from this file instead of training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	ctx, sess, err := obsOpts.Start(ctx)
	if err != nil {
		return err
	}
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = *programs
	cfg.TracesPerProgram = *traces
	cfg.RegisterPrograms = *programs
	cfg.RegisterTracesPerProgram = *traces
	cfg.Seed = *seed

	classes := []avr.Class{avr.OpADD, avr.OpADC, avr.OpEOR, avr.OpMOV}
	var d *core.Disassembler
	var rep *core.TrainReport
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			return err
		}
		defer f.Close()
		if d, err = core.Load(f); err != nil {
			return err
		}
		fmt.Printf("loaded templates from %s\n", *loadFrom)
	} else {
		fmt.Printf("training templates for %d classes (%d programs x %d traces)...\n",
			len(classes), cfg.Programs, cfg.TracesPerProgram)
		var err error
		if d, rep, err = core.TrainSubsetReportCtx(ctx, cfg, classes, true); err != nil {
			return err
		}
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			if err != nil {
				return err
			}
			if err := d.Save(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("templates saved to %s\n", *saveTo)
		}
	}
	program, err := avr.AssembleProgram(`
		MOV r20, r4
		ADD r20, r5
		ADC r21, r6
		EOR r20, r21
	`)
	if err != nil {
		return err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, *seed+1000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(int64(*seed) + 5))
	prog := power.NewProgramEnv(cfg.Power, *seed+1000, 2)
	var runs [][]core.Decoded
	for r := 0; r < 9; r++ {
		tr, err := camp.AcquireSegments(rng, prog, program)
		if err != nil {
			return err
		}
		decs, err := d.DisassembleCtx(ctx, tr)
		if err != nil {
			return err
		}
		runs = append(runs, decs)
	}
	fused, err := core.MajorityDecode(runs)
	if err != nil {
		return err
	}
	fmt.Println("\nexecuted program            recovered from power traces")
	for i, in := range program {
		fmt.Printf("  %-24s  %s\n", in.String(), fused[i].String())
	}
	manifest := sess.Manifest("demo", parallel.Workers())
	manifest.Config = cfg
	manifest.Report = rep
	return sess.Close(manifest, parallel.Workers())
}

func runDetect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	programs, traces, seed, workers, obsOpts := campaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	_, sess, err := obsOpts.Start(ctx)
	if err != nil {
		return err
	}
	sc := experiments.DefaultScale()
	sc.Programs = *programs
	sc.TracesPerProgram = *traces
	sc.Seed = *seed
	res, err := experiments.Malware(sc)
	if err != nil {
		return err
	}
	fmt.Print(res)
	manifest := sess.Manifest("detect", parallel.Workers())
	manifest.Config = sc
	manifest.Report = res
	return sess.Close(manifest, parallel.Workers())
}
