package main

// scdis trace: pretty-print a scdisd trace export (JSONL, one trace per
// line) as indented span trees with total and self times — the offline half
// of the request-tracing pipeline. Typical flow: serve with
// `scdisd -trace-export traces.jsonl`, reproduce the slow request, then
// `scdis trace traces.jsonl` (or filter one trace with -id).
//
//	scdis trace [-id traceid] [-slowest N] [file|-]
//
// With no file (or "-") the export is read from stdin, so it pipes:
// `tail -n 50 traces.jsonl | scdis trace -slowest 3`.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	id := fs.String("id", "", "print only the trace with this trace ID (prefix match)")
	slowest := fs.Int("slowest", 0, "print only the N slowest traces (0 = all, in file order)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	name := "-"
	if fs.NArg() > 1 {
		return fmt.Errorf("trace takes at most one export file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		name = fs.Arg(0)
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	traces, err := obs.ReadExportedTraces(in)
	if err != nil {
		return err
	}
	if *id != "" {
		kept := traces[:0]
		for _, tr := range traces {
			if strings.HasPrefix(tr.TraceID, *id) {
				kept = append(kept, tr)
			}
		}
		traces = kept
		if len(traces) == 0 {
			return fmt.Errorf("no trace with ID prefix %q in %s", *id, name)
		}
	}
	if *slowest > 0 && len(traces) > *slowest {
		sort.SliceStable(traces, func(i, j int) bool { return traces[i].DurNS > traces[j].DurNS })
		traces = traces[:*slowest]
	}
	if len(traces) == 0 {
		fmt.Println("no traces in export")
		return nil
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Println()
		}
		if err := obs.WriteTraceTree(os.Stdout, tr); err != nil {
			return err
		}
	}
	return nil
}
