// Command experiments regenerates the tables and figures of "Power-based
// Side-Channel Instruction-level Disassembler" (DAC 2018) against the
// simulated acquisition substrate.
//
// Usage:
//
//	experiments -run all
//	experiments -run table3 -programs 10 -csaprograms 19 -traces 300
//	experiments -run fig5a -pcs 3,5,10,20,43
//
// Experiments: table1 table2 fig2 fig3 fig4 fig5a fig5b fig6 table3 table4
// registers malware ablations all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment to run (table1, table2, fig2, fig3, fig4, fig5a, fig5b, fig6, table3, table4, registers, malware, ablations, all)")
		programs = flag.Int("programs", 0, "profiling program files per class (default: experiment default)")
		csaProgs = flag.Int("csaprograms", 0, "program files under covariate shift adaptation")
		traces   = flag.Int("traces", 0, "traces per program file")
		test     = flag.Int("testtraces", 0, "field test traces per class")
		severity = flag.Float64("severity", 0, "field environment severity (default 5)")
		seed     = flag.Uint64("seed", 0, "campaign seed")
		paper    = flag.Bool("paper", false, "use the paper's acquisition scale (slow)")
		pcsFlag  = flag.String("pcs", "1,2,3,5,10,20,43", "principal-component sweep for fig5a/fig5b")
		varsFlag = flag.String("vars", "3,5,7,9", "variable counts for fig6")
		workers  = flag.Int("workers", 0, "worker goroutines for the feature/training pipeline (0 = all CPUs)")
		sparse   = flag.String("sparse", "auto", "inference path for disassembler-backed experiments: auto, on, off")
		obsOpts  obs.Options
	)
	obsOpts.Register(flag.CommandLine)
	flag.Parse()
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", *workers))
	}
	parallel.SetWorkers(*workers)

	// Ctrl-C / SIGTERM stops the run between experiments instead of leaving
	// a half-written results dump.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ctx, sess, err := obsOpts.Start(ctx)
	if err != nil {
		fatal(err)
	}

	sc := experiments.DefaultScale()
	if *paper {
		sc = experiments.PaperScale()
	}
	if *programs > 0 {
		sc.Programs = *programs
	}
	if *csaProgs > 0 {
		sc.CSAPrograms = *csaProgs
	}
	if *traces > 0 {
		sc.TracesPerProgram = *traces
	}
	if *test > 0 {
		sc.TestTraces = *test
	}
	if *severity > 0 {
		sc.Severity = *severity
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if sc.Sparse, err = core.ParseSparseMode(*sparse); err != nil {
		fatal(err)
	}
	pcs, err := parseInts(*pcsFlag)
	if err != nil {
		fatal(err)
	}
	vars, err := parseInts(*varsFlag)
	if err != nil {
		fatal(err)
	}

	names := strings.Split(*run, ",")
	if *run == "all" {
		names = []string{"table2", "fig4", "fig2", "fig3", "fig5a", "fig5b", "fig6", "registers", "table3", "table4", "table1", "malware", "ablations"}
	}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("interrupted before %s: %w", name, err))
		}
		start := time.Now()
		out, err := dispatch(strings.TrimSpace(name), sc, pcs, vars)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(out)
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	manifest := sess.Manifest("experiments", parallel.Workers())
	manifest.Config = sc
	manifest.Notes = map[string]any{"experiments": names, "pcs": pcs, "vars": vars}
	if err := sess.Close(manifest, parallel.Workers()); err != nil {
		fatal(err)
	}
}

func dispatch(name string, sc experiments.Scale, pcs, vars []int) (fmt.Stringer, error) {
	switch name {
	case "table1":
		return experiments.Table1(sc)
	case "table2":
		return experiments.Table2(), nil
	case "fig2":
		return experiments.Fig2(sc)
	case "fig3":
		return experiments.Fig3(sc)
	case "fig4":
		return stringer(experiments.Fig4()), nil
	case "fig5a":
		return experiments.Fig5a(sc, pcs)
	case "fig5b":
		return experiments.Fig5b(sc, pcs)
	case "fig6":
		return experiments.Fig6(sc, vars)
	case "table3":
		return experiments.Table3(sc)
	case "table4":
		return experiments.Table4(sc)
	case "registers":
		return experiments.Registers(sc)
	case "malware":
		return experiments.Malware(sc)
	case "ablations":
		return runAblations(sc)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func runAblations(sc experiments.Scale) (fmt.Stringer, error) {
	var b strings.Builder
	a, err := experiments.AblationNoKLSelection(sc)
	if err != nil {
		return nil, err
	}
	b.WriteString(a.String())
	f, err := experiments.AblationFlatVsHierarchical(sc)
	if err != nil {
		return nil, err
	}
	b.WriteString(f.String())
	td, err := experiments.AblationTimeDomain(sc)
	if err != nil {
		return nil, err
	}
	b.WriteString(td.String())
	return stringer(b.String()), nil
}

type stringer string

func (s stringer) String() string { return string(s) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
