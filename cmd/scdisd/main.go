// Command scdisd serves trained disassembler templates over HTTP — the
// disassembly-as-a-service front end over the same core the scdis CLI uses.
//
//	scdisd -templates dir/ -addr :8080
//
// Every *.tpl file in the directory becomes a template named after its
// basename ("demo.tpl" serves as "demo"; version by naming, e.g.
// "demo@2.tpl"). Files are loaded lazily on first request and hot-reloaded:
// SIGHUP or POST /admin/reload rescans the directory, picking up new,
// changed and removed files without dropping in-flight requests.
//
// Endpoints:
//
//	POST /v1/disassemble/{template}   decode a trace batch; JSON
//	                                  {"traces": [[...], ...]} or
//	                                  application/octet-stream (uint32 LE
//	                                  count, uint32 LE traceLen, float64 LE
//	                                  samples); add ?trace=1 for a stage tree
//	GET  /v1/templates                per-template status incl. drift state
//	GET  /livez                       liveness (200 while the process runs)
//	GET  /readyz                      readiness (503 with no loadable
//	                                  templates or a saturated gate)
//	GET  /healthz                     readiness alias (compatibility)
//	GET  /metrics, /metrics.json      process metrics (Prometheus / JSON)
//	POST /admin/reload                rescan the template directory
//	GET  /debug/requests              recent tail-sampled requests (JSON, or
//	                                  ?format=text for a table)
//	GET  /debug/buildinfo             module version, VCS revision, go version
//
// Observability: every request is counted into labeled metrics
// (route/template/status), and -access-log writes one JSON line per request.
// A runtime collector samples goroutines, heap, GC pauses and per-template
// load/drift state every -runtime-interval.
//
// Tracing: every request runs under its own span tree (middleware →
// admission wait → body decode → template load → per-level classification).
// W3C traceparent headers are ingested and echoed, so callers can correlate
// across services. A tail sampler keeps every error/429/slow trace and a
// -trace-sample fraction of the rest; kept traces land in /debug/requests
// and, with -trace-export, as JSONL readable by 'scdis trace'. Latency
// histograms carry the most recent kept trace's ID as an exemplar in
// /metrics.json (the classic /metrics text format cannot carry exemplars).
//
// Backpressure: at most -max-inflight batches decode concurrently and at
// most -max-queue wait; beyond that the server sheds with 429 and a
// Retry-After hint. SIGINT/SIGTERM drains: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scdisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scdisd", flag.ExitOnError)
	templates := fs.String("templates", "", "directory of trained template files (*.tpl); required")
	addr := fs.String("addr", ":8080", "listen address")
	sparse := fs.String("sparse", "auto", "inference path: auto (sparse when templates allow), on, off; on degrades per template when a legacy file cannot support it")
	workers := fs.Int("workers", 0, "worker goroutines per decode batch (0 = all CPUs)")
	maxInFlight := fs.Int("max-inflight", 2, "concurrently decoded batches before requests queue")
	maxQueue := fs.Int("max-queue", 8, "queued batches before requests are shed with 429")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	accessLog := fs.String("access-log", "", "write one JSON access-log line per request to this file (\"-\" = stdout)")
	traceExport := fs.String("trace-export", "", "write tail-sampled request traces as JSONL to this file (\"-\" = stdout); readable with 'scdis trace'")
	traceSample := fs.Float64("trace-sample", 0.01, "probability of keeping a healthy request's trace; error/429/slow traces are always kept")
	traceQueue := fs.Int("trace-queue", 256, "traces buffered between the request path and the export writer; overflow is dropped, never blocking requests")
	debugRequests := fs.Int("debug-requests", 128, "recent sampled requests kept for /debug/requests (0 = default, negative disables)")
	runtimeInterval := fs.Duration("runtime-interval", obs.DefaultRuntimeInterval, "runtime health sampling period (goroutines, heap, GC, per-template state); 0 disables")
	decisionLog := fs.String("decision-log", "", "write sampled per-classification decision records as JSONL to this file (\"-\" = stdout)")
	decisionSample := fs.Int("decision-sample", 1, "log 1 in N decisions to -decision-log")
	driftWindow := fs.Int("drift-window", obs.DefaultDriftWindow, "covariate-shift monitor: sliding window size in traces")
	driftWarn := fs.Float64("drift-warn", obs.DefaultDriftWarn, "covariate-shift monitor: symmetric-KL warn threshold")
	driftCritical := fs.Float64("drift-critical", obs.DefaultDriftCritical, "covariate-shift monitor: symmetric-KL critical threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *templates == "" {
		return errors.New("-templates is required (a directory of *.tpl files)")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", *workers)
	}
	sparseMode, err := core.ParseSparseMode(*sparse)
	if err != nil {
		return err
	}
	if err := obs.SetupLogging(*logFormat, os.Stderr, false); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)

	// One metrics registry for the process lifetime, installed before any
	// request runs. Rebinding mid-serve is safe since the atomic handle-swap
	// rework, but a server has no reason to: every instrument accumulates
	// here and /metrics snapshots it.
	obs.SetDefault(obs.NewRegistry())

	var decisions *obs.DecisionLog
	if *decisionLog != "" {
		if decisions, err = obs.OpenDecisionLog(*decisionLog, *decisionSample); err != nil {
			return err
		}
		defer decisions.Close()
	}

	reg, err := serve.NewRegistry(*templates, serve.RegistryConfig{
		Sparse:    sparseMode,
		Drift:     obs.DriftConfig{Window: *driftWindow, Warn: *driftWarn, Critical: *driftCritical},
		Decisions: decisions,
	})
	if err != nil {
		return err
	}
	if names := reg.Names(); len(names) == 0 {
		slog.Warn("template directory holds no *.tpl files yet; serving 503 until a reload finds some", "dir", *templates)
	} else {
		slog.Info("templates registered", "count", len(names), "names", names)
	}

	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening access log: %w", err)
		}
		defer f.Close()
		accessW = f
	}

	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0, 1], got %g", *traceSample)
	}
	// The exporter outlives the server: it closes after the drain below, so
	// traces of the final in-flight requests still reach the file.
	var exporter *obs.TraceExporter
	switch *traceExport {
	case "":
	case "-":
		// Writer-only wrapper: the exporter closes an io.Closer on Close, and
		// stdout should survive the exporter shutting down.
		exporter = obs.NewTraceExporter(struct{ io.Writer }{os.Stdout}, *traceQueue)
	default:
		f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening trace export: %w", err)
		}
		exporter = obs.NewTraceExporter(f, *traceQueue)
	}
	if exporter != nil {
		defer func() {
			if err := exporter.Close(); err != nil {
				slog.Error("closing trace export", "err", err)
			}
		}()
	}

	srv := serve.NewServer(reg, serve.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		RetryAfter:      *retryAfter,
		AccessLog:       accessW,
		TraceExporter:   exporter,
		TraceSampleRate: *traceSample,
		DebugRequests:   *debugRequests,
	})

	// Runtime health sampling, with per-template load/drift state riding the
	// same tick so /metrics reflects registry state without a request.
	if *runtimeInterval > 0 {
		collector := obs.NewRuntimeCollector(obs.Default(), *runtimeInterval)
		collector.AddSampler(reg.PublishMetrics)
		collector.Start()
		defer collector.Stop()
	}

	// SIGHUP rescans the template directory; SIGINT/SIGTERM drains and exits.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	slog.Info("scdisd listening", "addr", *addr, "templates", *templates,
		"max_inflight", *maxInFlight, "max_queue", *maxQueue)
	slog.Info("health endpoints: /livez is liveness (process up), /readyz is readiness (templates loadable, gate not saturated); /healthz aliases /readyz")

	for {
		select {
		case <-hup:
			slog.Info("SIGHUP: rescanning template directory")
			if err := reg.Reload(); err != nil {
				slog.Error("reload failed", "err", err)
			}
		case sig := <-stop:
			slog.Info("shutting down: draining in-flight requests", "signal", sig.String(), "timeout", *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			reg.Close()
			slog.Info("scdisd stopped cleanly")
			return nil
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}
	}
}
