package sidechannel

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// runs the corresponding experiment at a reduced scale and reports the
// measured successful recognition rates (SR) as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates a miniature of the whole evaluation. cmd/experiments runs the
// same experiments at larger scales.

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// metricName turns a classifier display name into a benchmark metric unit
// (no whitespace allowed).
func metricName(name, suffix string) string {
	r := strings.NewReplacer(" ", "", "(", "", ")", "", ",", "-", "=", "")
	return r.Replace(name) + suffix
}

// benchScale keeps every benchmark in the seconds range; it matches the
// configuration validated by the experiments package tests.
func benchScale() experiments.Scale {
	return experiments.TinyScale()
}

// midScale is used where the covariate-shift pattern needs a few more
// programs to emerge (Table 3).
func midScale() experiments.Scale {
	sc := experiments.TinyScale()
	sc.Programs = 6
	sc.CSAPrograms = 10
	sc.TracesPerProgram = 20
	sc.TestTraces = 80
	return sc
}

func BenchmarkTable1OursRow(b *testing.B) {
	// Table 1 "Ours": hierarchical SR over 112 instructions + 64 registers.
	sc := benchScale()
	sc.Programs = 3
	sc.TracesPerProgram = 12
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.GroupSR, "groupSR%")
		b.ReportMetric(100*r.OpcodeSR, "opcodeSR%")
		b.ReportMetric(100*r.OverallSR, "overallSR%")
	}
}

func BenchmarkFig2FeatureExtraction(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.UnionGroup1), "unionPoints")
		b.ReportMetric(r.ReductionPct, "reduction%")
	}
}

func BenchmarkFig3BestWorstSelection(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SeparationWorst, "worstSep")
		b.ReportMetric(r.SeparationBest, "bestSep")
	}
}

func BenchmarkFig5GroupClassification(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a(sc, []int{3, 10})
		if err != nil {
			b.Fatal(err)
		}
		for name, curve := range r.Curves {
			b.ReportMetric(100*curve[len(curve)-1].SR, metricName(name, "SR%"))
		}
	}
}

func BenchmarkFig5Group1Instructions(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b(sc, []int{3, 10})
		if err != nil {
			b.Fatal(err)
		}
		for name, curve := range r.Curves {
			b.ReportMetric(100*curve[len(curve)-1].SR, metricName(name, "SR%"))
		}
	}
}

func BenchmarkFig6MajorityVoting(b *testing.B) {
	sc := benchScale()
	sc.Programs = 3
	sc.TracesPerProgram = 12
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(sc, []int{3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Majority["QDA"][0].SR, "majorityQDA3SR%")
		b.ReportMetric(100*r.General["QDA"][0].SR, "generalQDA3SR%")
	}
}

func BenchmarkRegisterClassification(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Registers(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RdSR["QDA"], "RdSR%")
		b.ReportMetric(100*r.RrSR["QDA"], "RrSR%")
	}
}

func BenchmarkTable3CSA(b *testing.B) {
	sc := midScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows["QDA"]
		b.ReportMetric(100*row[0], "noCSA%")
		b.ReportMetric(100*row[1], "csaNoNorm%")
		b.ReportMetric(100*row[2], "csaNorm%")
	}
}

func BenchmarkTable4Devices(b *testing.B) {
	sc := midScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(sc)
		if err != nil {
			b.Fatal(err)
		}
		var min, max float64 = 1, 0
		for _, sr := range r.Rows["QDA"] {
			if sr < min {
				min = sr
			}
			if sr > max {
				max = sr
			}
		}
		b.ReportMetric(100*min, "minDevSR%")
		b.ReportMetric(100*max, "maxDevSR%")
	}
}

func BenchmarkMalwareDetection(b *testing.B) {
	sc := benchScale()
	sc.Programs = 4
	sc.TracesPerProgram = 20
	for i := 0; i < b.N; i++ {
		r, err := experiments.Malware(sc)
		if err != nil {
			b.Fatal(err)
		}
		detected := 0.0
		if r.EvilAlarm {
			detected = 1
		}
		b.ReportMetric(detected, "detected")
	}
}

func BenchmarkAblationNoKLSelection(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationNoKLSelection(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SRA, "selectedSR%")
		b.ReportMetric(100*r.SRB, "fullPlaneSR%")
	}
}

func BenchmarkAblationFlatVsHierarchical(b *testing.B) {
	sc := benchScale()
	sc.Programs = 3
	sc.TracesPerProgram = 12
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFlatVsHierarchical(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SRA, "flatSR%")
		b.ReportMetric(100*r.SRB, "hierSR%")
	}
}

func BenchmarkAblationTimeDomain(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTimeDomain(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SRA, "cwtSR%")
		b.ReportMetric(100*r.SRB, "timeDomainSR%")
	}
}
