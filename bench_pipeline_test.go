package sidechannel

// Allocation and throughput benchmarks for the concurrency + redundancy work:
// the CWT hot path, the feature pipeline, and serial-vs-parallel fits. Run
//
//	go test -bench=Pipeline -benchmem -run=^$
//
// and compare against BENCH_pipeline.json (allocs/op must not regress; on a
// multi-core machine the *Parallel variants should scale with the cores).

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/power"
)

const benchTraceLen = 315 // the paper's fetch+execute window

func benchTraces(n, length int) [][]float64 {
	rng := rand.New(rand.NewSource(99))
	out := make([][]float64, n)
	for i := range out {
		tr := make([]float64, length)
		for t := range tr {
			tr[t] = math.Sin(0.12*float64(t)) + rng.NormFloat64()*0.1
		}
		out[i] = tr
	}
	return out
}

func benchCWT(b *testing.B) *dsp.CWT {
	c, err := dsp.NewCWT(50, 2, 80)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkPipelineCWTTransform(b *testing.B) {
	c := benchCWT(b)
	tr := benchTraces(1, benchTraceLen)[0]
	c.TransformFlat(tr) // warm the plan cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TransformFlat(tr)
	}
}

func BenchmarkPipelineCWTTransformBatch(b *testing.B) {
	c := benchCWT(b)
	traces := benchTraces(32, benchTraceLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransformFlatBatch(traces); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(traces))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

// benchPipeline fits a small 2-class pipeline once for the Extract benchmarks.
func benchPipeline(b *testing.B) (*features.Pipeline, [][]float64) {
	traces := benchTraces(48, benchTraceLen)
	labels := make([]int, len(traces))
	programs := make([]int, len(traces))
	for i := range traces {
		labels[i] = i % 2
		programs[i] = (i / 2) % 3
		if labels[i] == 1 {
			for t := range traces[i] {
				traces[i][t] += math.Sin(0.31 * float64(t))
			}
		}
	}
	cfg := features.CSAPipelineConfig()
	cfg.NumComponents = 8
	pl, err := features.FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return pl, traces
}

func BenchmarkPipelineExtract(b *testing.B) {
	pl, traces := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Extract(traces[i%len(traces)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExtractFromScalogram(b *testing.B) {
	pl, traces := benchPipeline(b)
	flat, err := pl.RawScalogram(traces[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.ExtractFromScalogram(flat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExtractSparse(b *testing.B) {
	pl, traces := benchPipeline(b)
	// First call builds the per-cell kernel table (cached for the pipeline's
	// lifetime); keep that one-time cost out of the measurement.
	if _, err := pl.ExtractSparse(traces[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.ExtractSparse(traces[i%len(traces)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClassifyOne measures single-trace end-to-end decode latency — trace in,
// instruction out, the paper's real-time monitoring unit of work — through the
// selected inference path.
func benchClassifyOne(b *testing.B, mode core.SparseMode) {
	d, traces := classifyFixture(b)
	if err := d.SetSparseMode(mode); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := d.SetSparseMode(core.SparseAuto); err != nil {
			b.Fatal(err)
		}
	}()
	if _, err := d.Classify(traces[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Classify(traces[i%len(traces)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineClassifyOneSparse(b *testing.B) { benchClassifyOne(b, core.SparseOn) }
func BenchmarkPipelineClassifyOneFull(b *testing.B)   { benchClassifyOne(b, core.SparseOff) }

// benchFit runs a full FitPipeline at the given worker count; the
// Serial/Parallel pair quantifies the multi-core speedup (identical results
// by construction — see the equivalence tests).
func benchFit(b *testing.B, workers int) {
	traces := benchTraces(40, benchTraceLen)
	labels := make([]int, len(traces))
	programs := make([]int, len(traces))
	for i := range traces {
		labels[i] = i % 2
		programs[i] = (i / 2) % 3
	}
	cfg := features.CSAPipelineConfig()
	cfg.NumComponents = 8
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.FitPipeline(traces, labels, programs, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(traces))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

func BenchmarkPipelineFitSerial(b *testing.B)   { benchFit(b, 1) }
func BenchmarkPipelineFitParallel(b *testing.B) { benchFit(b, 0) }

// benchDisassemble measures end-to-end trace→instruction throughput.
func benchDisassemble(b *testing.B, workers int) {
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = 3
	cfg.TracesPerProgram = 10
	cfg.RegisterPrograms = 0
	cfg.RegisterTracesPerProgram = 0
	d, err := core.TrainSubset(cfg, AllClasses()[:2], false)
	if err != nil {
		b.Fatal(err)
	}
	camp, err := power.NewCampaign(cfg.Power, 0, 77)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	prog := power.NewProgramEnv(cfg.Power, 77, 1)
	stream := make([]Instruction, 24)
	for i := range stream {
		stream[i] = RandomInstruction(rng, AllClasses()[i%2])
	}
	traces, err := camp.AcquireSegments(rng, prog, stream)
	if err != nil {
		b.Fatal(err)
	}
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Disassemble(traces); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(traces))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

func BenchmarkPipelineDisassembleSerial(b *testing.B)   { benchDisassemble(b, 1) }
func BenchmarkPipelineDisassembleParallel(b *testing.B) { benchDisassemble(b, 0) }

// TestSparseSpeedupBudget is the sparse-inference bench-compare gate: with
// BENCH_COMPARE=1 it requires ExtractSparse to run at most 1/8 the time of
// the full-FFT Extract on the same fitted pipeline (measured ~400x on the
// recording machine — the 8x floor leaves room for noisy CI hardware), and
// bounds its allocations so the dot-product path cannot silently grow a
// per-call buffer habit. Env-gated like the other timing gates: a timing
// assertion on a loaded machine is a flake, not a signal.
func TestSparseSpeedupBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the sparse speedup gate")
	}
	const rounds = 3
	full, sparse := 0.0, 0.0
	var allocs int64
	for i := 0; i < rounds; i++ {
		if v := minNsPerOp(1, BenchmarkPipelineExtract); full == 0 || v < full {
			full = v
		}
		r := testing.Benchmark(BenchmarkPipelineExtractSparse)
		if v := float64(r.NsPerOp()); sparse == 0 || v < sparse {
			sparse = v
		}
		allocs = r.AllocsPerOp()
	}
	fmt.Printf("bench-compare: extract full %.0f ns/op, sparse %.0f ns/op (%.0fx), %d allocs/op\n",
		full, sparse, full/sparse, allocs)
	if sparse > full/8 {
		t.Fatalf("sparse extract %.0f ns/op is slower than 1/8 of the full path (%.0f ns/op)", sparse, full)
	}
	if allocs > 8 {
		t.Fatalf("sparse extract costs %d allocs/op, budget is 8", allocs)
	}
}
