package sidechannel

// Inference hot-path benchmarks: the scored classification path (per-level
// confidence + decision recording + drift feeding) against the plain decode
// path on the same trained templates. Run
//
//	go test -bench=DisassembleScored -benchmem -run=^$
//
// and compare against BENCH_classify.json. Both paths decode through sparse
// inference by default (the fixture's templates are sparse-capable). The
// comparison gate (TestDecisionOverheadBudget, part of `make bench-compare`)
// fails when decision recording at default sampling costs more than 3% over
// the plain path and more than 5 µs/trace absolute — the scored walk shares
// the plain walk's extraction, so the delta is a few softmaxes, the drift
// vector, and one JSON encode per sampled decision.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
)

// classifyBench shares one trained subset and its evaluation traces across
// the scored benchmarks and the overhead gate, so training cost is paid once.
var classifyBench struct {
	once   sync.Once
	d      *core.Disassembler
	traces [][]float64
	err    error
}

func classifyFixture(b *testing.B) (*core.Disassembler, [][]float64) {
	b.Helper()
	classifyBench.once.Do(func() {
		cfg := core.DefaultTrainerConfig()
		cfg.Programs = 3
		cfg.TracesPerProgram = 10
		cfg.RegisterPrograms = 0
		cfg.RegisterTracesPerProgram = 0
		d, err := core.TrainSubset(cfg, AllClasses()[:2], false)
		if err != nil {
			classifyBench.err = err
			return
		}
		camp, err := power.NewCampaign(cfg.Power, 0, 77)
		if err != nil {
			classifyBench.err = err
			return
		}
		rng := rand.New(rand.NewSource(8))
		prog := power.NewProgramEnv(cfg.Power, 77, 1)
		stream := make([]Instruction, 24)
		for i := range stream {
			stream[i] = RandomInstruction(rng, AllClasses()[i%2])
		}
		classifyBench.traces, classifyBench.err = camp.AcquireSegments(rng, prog, stream)
		classifyBench.d = d
	})
	if classifyBench.err != nil {
		b.Fatal(classifyBench.err)
	}
	return classifyBench.d, classifyBench.traces
}

// benchClassify runs one batch decode per iteration at a single worker,
// either plain (no observer) or scored with the full recording stack —
// decision log at default sampling, drift monitor, confidence histogram.
func benchClassify(b *testing.B, scored bool) {
	d, traces := classifyFixture(b)
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	if scored {
		mon, err := d.NewDriftMonitor(obs.DriftConfig{})
		if err != nil {
			b.Fatal(err)
		}
		d.SetObserver(&core.InferenceObserver{
			Log:   obs.NewDecisionLog(io.Discard, 1),
			Drift: mon,
		})
	}
	defer d.SetObserver(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scored {
			if _, err := d.DisassembleScored(traces); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := d.Disassemble(traces); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(traces))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

func BenchmarkDisassembleScored(b *testing.B)    { benchClassify(b, true) }
func BenchmarkDisassembleScoredOff(b *testing.B) { benchClassify(b, false) }

// TestDecisionOverheadBudget is the second bench-compare gate: with
// BENCH_COMPARE=1 it measures scored-with-recording vs plain decoding and
// fails when decision recording costs more than 3% — or, now that sparse
// inference has shrunk the decode itself ~80x, more than an absolute
// 5 µs/trace. The 3% budget was calibrated against the full-CWT decode
// (~1 ms/trace, so an implicit ~30 µs/trace allowance); measured recording
// cost is ~2 µs/trace (softmaxes, drift vector, one JSON encode per sampled
// decision), which is a large *fraction* of a ~13 µs sparse decode but far
// under the cost the budget was ever meant to permit. Either bound passing
// means recording has not regressed. Env-gated for the same reason as
// TestMetricsOverheadBudget — a timing assertion on a loaded machine is a
// flake, not a signal.
func TestDecisionOverheadBudget(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to enable the overhead gate")
	}
	const rounds = 5
	const tracesPerOp = 24 // the classifyFixture stream length
	const perTraceBudgetNs = 5000.0
	off, on := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		if v := minNsPerOp(1, BenchmarkDisassembleScoredOff); off == 0 || v < off {
			off = v
		}
		if v := minNsPerOp(1, BenchmarkDisassembleScored); on == 0 || v < on {
			on = v
		}
	}
	overhead := (on - off) / off
	perTrace := (on - off) / tracesPerOp
	fmt.Printf("bench-compare: decode plain %.0f ns/op, scored %.0f ns/op, overhead %+.2f%% (%.0f ns/trace)\n",
		off, on, overhead*100, perTrace)
	if overhead > 0.03 && perTrace > perTraceBudgetNs {
		t.Fatalf("decision recording overhead %.2f%% (%.0f ns/trace) exceeds both the 3%% and the %.0f ns/trace budgets",
			overhead*100, perTrace, perTraceBudgetNs)
	}
}
