GO ?= go

.PHONY: build test race vet lint bench bench-compare fuzz-smoke cover verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order each run so
# order-dependent state leaks surface early; the seed is printed on failure
# and can be replayed with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

# The race detector slows the CWT-heavy suites ~10x; raise the per-package
# timeout accordingly.
race:
	$(GO) test -race -shuffle=on -timeout 45m ./...

vet:
	$(GO) vet ./...

# vet plus staticcheck; staticcheck is skipped (with a note) when the binary
# is not on PATH so lint stays usable in minimal environments. CI always has
# it via the staticcheck action.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -run '^$$' -bench Pipeline -benchmem .

# Comparison gates: fail when the metrics+tracing path makes FitPipeline
# more than 3% slower than the nil-registry fast path, when decision
# recording (scored path + log + drift monitor) costs more than 3% over
# plain decoding and more than 5us/trace absolute, when sparse per-cell
# extraction loses its >=8x edge over the full-FFT path (or grows past its
# allocation budget), or when a v4 registry cold start (header-only opens)
# is not at least 10x cheaper than the same 16 templates as gob.
bench-compare:
	BENCH_COMPARE=1 $(GO) test -run 'TestMetricsOverheadBudget|TestDecisionOverheadBudget|TestSparseSpeedupBudget|TestLabeledOverheadBudget|TestStoreColdStartBudget|TestTracingOverheadBudget' -v .

# Every native fuzz target, run briefly from its committed seed corpus. Go
# allows one -fuzz pattern per invocation, so iterate; -run '^$$' skips the
# package's unit tests so only fuzzing runs. FUZZTIME=10m for a real soak.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/avr
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeProgram$$' -fuzztime $(FUZZTIME) ./internal/avr
	$(GO) test -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME) ./internal/avr
	$(GO) test -run '^$$' -fuzz '^FuzzValidateTrace$$' -fuzztime $(FUZZTIME) ./internal/power
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzOptionsFlagParsing$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzStoreOpen$$' -fuzztime $(FUZZTIME) ./internal/store

# Coverage with a ratcheted floor: raise COVER_FLOOR when coverage improves,
# never lower it (measured 72.3% when last ratcheted). -short skips the e2e
# accuracy gate so the number reflects unit/property/oracle coverage and
# stays fast.
COVER_FLOOR ?= 71.0
cover:
	$(GO) test -short -shuffle=on -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below floor $(COVER_FLOOR)%"; exit 1; }

# The full gate: what CI runs and what a PR must pass.
verify: vet build test race
