GO ?= go

.PHONY: build test race vet lint bench bench-compare verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the CWT-heavy suites ~10x; raise the per-package
# timeout accordingly.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

# vet plus staticcheck; staticcheck is skipped (with a note) when the binary
# is not on PATH so lint stays usable in minimal environments. CI always has
# it via the staticcheck action.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -run '^$$' -bench Pipeline -benchmem .

# Observability overhead gate: fails when the metrics+tracing path makes
# FitPipeline more than 3% slower than the nil-registry fast path.
bench-compare:
	BENCH_COMPARE=1 $(GO) test -run TestMetricsOverheadBudget -v .

# The full gate: what CI runs and what a PR must pass.
verify: vet build test race
