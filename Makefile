GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the CWT-heavy suites ~10x; raise the per-package
# timeout accordingly.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench Pipeline -benchmem .

# The full gate: what CI runs and what a PR must pass.
verify: vet build test race
