// Package sidechannel is a power side-channel instruction-level disassembler
// for AVR (ATMega328P-class) targets, reproducing Park et al., "Power-based
// Side-Channel Instruction-level Disassembler" (DAC 2018).
//
// The library recovers the executing instruction stream — opcode and
// register operands — from single power traces:
//
//	cfg := sidechannel.DefaultConfig()
//	d, report, err := sidechannel.Train(cfg)         // build templates
//	decoded, err := d.Disassemble(traces)            // traces -> assembly
//	fmt.Print(sidechannel.Listing(decoded))
//
// Since no oscilloscope bench is available in this environment, acquisition
// is simulated by a physics-inspired leakage model of the ATMega328P
// (16 MHz clock, 2.5 GS/s sampling, 315 samples per fetch+execute window);
// see the power subpackage. The full pipeline of the paper is implemented:
// continuous wavelet transform, Kullback–Leibler feature selection
// (distinct-and-not-varying points), PCA, LDA/QDA/SVM/naïve-Bayes
// classifiers, hierarchical group→instruction→register classification,
// majority voting, and covariate shift adaptation.
//
// The exported surface is a curated facade over the implementation packages;
// the type aliases below are fully usable by importers.
package sidechannel

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/power"
)

// Core disassembler types.
type (
	// Config sizes and shapes the template-building campaign.
	Config = core.TrainerConfig
	// Disassembler holds trained hierarchical templates.
	Disassembler = core.Disassembler
	// Decoded is one instruction recovered from a power trace.
	Decoded = core.Decoded
	// TrainReport summarizes training accuracy per level.
	TrainReport = core.TrainReport
	// ClassifierKind selects the classification algorithm.
	ClassifierKind = core.ClassifierKind
	// FlowMismatch is one disagreement between golden and observed flows.
	FlowMismatch = core.FlowMismatch
	// DetectionResult summarizes a malware check.
	DetectionResult = core.DetectionResult
	// SparseMode selects the inference path: the sparse per-cell CWT
	// (templates' selected time–frequency cells only, an order of magnitude
	// cheaper per trace) or the full FFT scalogram. See
	// Disassembler.SetSparseMode.
	SparseMode = core.SparseMode
)

// ISA model types.
type (
	// Instruction is one concrete AVR instruction (class + operands).
	Instruction = avr.Instruction
	// Class identifies one of the 112 profiled instruction classes.
	Class = avr.Class
	// Group is the Table 2 instruction-group partition.
	Group = avr.Group
	// Machine is the AVR functional simulator.
	Machine = avr.Machine
)

// Acquisition types.
type (
	// PowerConfig holds the leakage-model and scope parameters.
	PowerConfig = power.Config
	// Campaign drives simulated acquisition runs against one device.
	Campaign = power.Campaign
	// Dataset is a labeled trace collection.
	Dataset = power.Dataset
	// ProgramEnv is one program file's measurement environment.
	ProgramEnv = power.ProgramEnv
	// PipelineConfig controls CWT→KL→normalize→PCA feature extraction.
	PipelineConfig = features.PipelineConfig
	// ValidationReport counts traces rejected at ingestion, by defect kind.
	ValidationReport = power.ValidationReport
)

// Trace-validation sentinels, matchable with errors.Is against any error
// returned by Train/Classify/Disassemble. See the power package's failure
// model (DESIGN.md §7).
var (
	// ErrNonFiniteTrace marks a trace containing NaN or ±Inf samples.
	ErrNonFiniteTrace = power.ErrNonFiniteTrace
	// ErrConstantTrace marks a flat-lined (zero-variance) trace.
	ErrConstantTrace = power.ErrConstantTrace
	// ErrTraceLength marks a truncated or misaligned capture.
	ErrTraceLength = power.ErrTraceLength
	// ErrTemplateFormat marks a corrupted/unsupported template file in
	// LoadTemplates.
	ErrTemplateFormat = core.ErrTemplateFormat
)

// Classifier kinds accepted by Config.Classifier.
const (
	LDA        = core.ClassifierLDA
	QDA        = core.ClassifierQDA
	SVM        = core.ClassifierSVM
	NaiveBayes = core.ClassifierNB
	KNN        = core.ClassifierKNN
)

// Inference-path modes accepted by Disassembler.SetSparseMode.
const (
	// SparseAuto uses the sparse path whenever the templates allow it.
	SparseAuto = core.SparseAuto
	// SparseOn requires the sparse path (SetSparseMode fails otherwise).
	SparseOn = core.SparseOn
	// SparseOff forces the full-FFT path.
	SparseOff = core.SparseOff
)

// ParseSparseMode parses the -sparse flag syntax: "auto", "on" or "off".
func ParseSparseMode(s string) (SparseMode, error) { return core.ParseSparseMode(s) }

// DefaultConfig returns a laptop-scale training configuration with covariate
// shift adaptation enabled (the paper's best-practice pipeline).
func DefaultConfig() Config { return core.DefaultTrainerConfig() }

// SetWorkers bounds the worker pool used by the CWT, feature-selection,
// training, and disassembly stages. n <= 0 restores the default of
// runtime.NumCPU(). Results are identical at every setting — parallelism
// changes only wall-clock time, never output.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// Workers reports the effective worker-pool size.
func Workers() int { return parallel.Workers() }

// DefaultPowerConfig returns the paper's acquisition parameters (16 MHz
// target, 2.5 GS/s scope, 315-sample traces).
func DefaultPowerConfig() PowerConfig { return power.DefaultConfig() }

// CSAPipeline returns the covariate-shift-adapted feature pipeline
// configuration of §5.5 (KLth 0.0005, per-trace normalization).
func CSAPipeline() PipelineConfig { return features.CSAPipelineConfig() }

// BasePipeline returns the unadapted pipeline of the initial experiments.
func BasePipeline() PipelineConfig { return features.DefaultPipelineConfig() }

// Train builds a full 112-class disassembler with register recovery.
func Train(cfg Config) (*Disassembler, *TrainReport, error) { return core.Train(cfg) }

// TrainCtx is Train with cooperative cancellation: cancelling ctx stops the
// campaign from scheduling new work and returns ctx.Err() promptly. Work
// already in flight finishes; no partial state escapes.
func TrainCtx(ctx context.Context, cfg Config) (*Disassembler, *TrainReport, error) {
	return core.TrainCtx(ctx, cfg)
}

// TrainSubset builds a disassembler restricted to the given classes —
// useful for quick demonstrations.
func TrainSubset(cfg Config, classes []Class, withRegisters bool) (*Disassembler, error) {
	return core.TrainSubset(cfg, classes, withRegisters)
}

// TrainSubsetCtx is TrainSubset with cooperative cancellation.
func TrainSubsetCtx(ctx context.Context, cfg Config, classes []Class, withRegisters bool) (*Disassembler, error) {
	return core.TrainSubsetCtx(ctx, cfg, classes, withRegisters)
}

// ValidateTrace checks one trace for the defects the pipeline rejects:
// wrong length (when wantLen > 0), non-finite samples, zero variance.
// The returned error wraps one of the sentinel errors above, or is nil.
func ValidateTrace(trace []float64, wantLen int) error {
	return power.ValidateTrace(trace, wantLen)
}

// Assemble parses one line of AVR assembly into an Instruction.
func Assemble(line string) (Instruction, error) { return avr.Assemble(line) }

// AssembleProgram assembles a newline-separated listing.
func AssembleProgram(src string) ([]Instruction, error) { return avr.AssembleProgram(src) }

// Listing renders decoded instructions as assembler text.
func Listing(decs []Decoded) string { return core.Listing(decs) }

// CompareFlow checks a recovered stream against the golden program.
func CompareFlow(golden []Instruction, observed []Decoded) []FlowMismatch {
	return core.CompareFlow(golden, observed)
}

// MajorityDecode fuses repeated disassemblies of the same stream.
func MajorityDecode(runs [][]Decoded) ([]Decoded, error) { return core.MajorityDecode(runs) }

// NewCampaign opens a simulated acquisition campaign against a device
// (device 0 is the golden profiling device).
func NewCampaign(cfg PowerConfig, deviceID int, seed uint64) (*Campaign, error) {
	return power.NewCampaign(cfg, deviceID, seed)
}

// NewProgramEnv derives the measurement environment of one program file.
func NewProgramEnv(cfg PowerConfig, seed uint64, id int) *ProgramEnv {
	return power.NewProgramEnv(cfg, seed, id)
}

// NewFieldProgramEnv derives a field (real-program) environment whose
// covariate shift is scaled by severity (≈5 reproduces the paper's
// practical-scenario difficulty).
func NewFieldProgramEnv(cfg PowerConfig, seed uint64, id int, severity float64) *ProgramEnv {
	return power.NewFieldProgramEnv(cfg, seed, id, severity)
}

// AllClasses returns the 112 profiled instruction classes.
func AllClasses() []Class { return avr.AllClasses() }

// ClassesInGroup returns the classes of one Table 2 group.
func ClassesInGroup(g Group) []Class { return avr.ClassesInGroup(g) }

// RandomInstruction returns a uniformly random, valid instruction of class c.
func RandomInstruction(rng *rand.Rand, c Class) Instruction {
	return avr.RandomOperands(rng, c)
}

// Groups (Table 2).
const (
	Group1 = avr.Group1
	Group2 = avr.Group2
	Group3 = avr.Group3
	Group4 = avr.Group4
	Group5 = avr.Group5
	Group6 = avr.Group6
	Group7 = avr.Group7
	Group8 = avr.Group8
)

// SaveTemplates persists a trained disassembler's template set to w
// (encoding/gob). Profiling is the expensive step; saved templates reload
// instantly with LoadTemplates.
func SaveTemplates(d *Disassembler, w io.Writer) error { return d.Save(w) }

// LoadTemplates restores a disassembler previously written by SaveTemplates.
func LoadTemplates(r io.Reader) (*Disassembler, error) { return core.Load(r) }
