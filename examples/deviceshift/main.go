// Device-to-device covariate shift (paper §5.6 / Table 4): templates are
// profiled on one golden device, but deployment measures different chips of
// the same model. Process variation shifts the traces; covariate shift
// adaptation (tight not-varying selection + per-trace normalization) keeps
// classification usable across devices.
//
//	go run ./examples/deviceshift
package main

import (
	"fmt"
	"log"
	"math/rand"

	sidechannel "repro"
	"repro/internal/features"
	"repro/internal/ml"
)

func main() {
	pcfg := sidechannel.DefaultPowerConfig()
	classes := []sidechannel.Class{mustClass("ADC"), mustClass("AND")}

	// Profile ADC vs AND on the golden device (ID 0).
	golden, err := sidechannel.NewCampaign(pcfg, 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling ADC vs AND on the golden device...")
	train, err := golden.CollectClasses(classes, 10, 30)
	if err != nil {
		log.Fatal(err)
	}

	for _, csa := range []bool{false, true} {
		pc := features.CSAPipelineConfig()
		if !csa {
			pc = features.DefaultPipelineConfig()
		}
		pc.NumComponents = 3
		pipe, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, 2, pc)
		if err != nil {
			log.Fatal(err)
		}
		X, err := pipe.ExtractAll(train.Traces)
		if err != nil {
			log.Fatal(err)
		}
		clf := ml.NewQDA()
		if err := clf.Fit(X, train.Labels); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\ncovariate shift adaptation: %v\n", csa)
		for dev := 1; dev <= 5; dev++ {
			camp, err := sidechannel.NewCampaign(pcfg, dev, 42+uint64(dev))
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(dev)))
			env := sidechannel.NewFieldProgramEnv(pcfg, uint64(dev)*99, 100, 5)
			hit, total := 0, 0
			for li, cl := range classes {
				targets := make([]sidechannel.Instruction, 60)
				for i := range targets {
					targets[i] = sidechannel.RandomInstruction(rng, cl)
				}
				traces, err := camp.AcquireTemplated(rng, env, targets)
				if err != nil {
					log.Fatal(err)
				}
				for _, tr := range traces {
					f, err := pipe.Extract(tr)
					if err != nil {
						log.Fatal(err)
					}
					p, err := clf.Predict(f)
					if err != nil {
						log.Fatal(err)
					}
					total++
					if p == li {
						hit++
					}
				}
			}
			fmt.Printf("  device %d: SR %.1f%%\n", dev, 100*float64(hit)/float64(total))
		}
	}
	fmt.Println("\npaper (Table 4, after CSA): QDA 89.3 / 91.5 / 88.9 / 92.3 / 94.5 %")
}

func mustClass(name string) sidechannel.Class {
	for _, c := range sidechannel.AllClasses() {
		if c.Name() == name {
			return c
		}
	}
	log.Fatalf("class %q not found", name)
	return 0
}
