// Quickstart: train side-channel templates for a handful of AVR
// instructions, then recover an executing program from (simulated) power
// traces alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	sidechannel "repro"
)

func main() {
	// 1. Configure the profiling campaign. DefaultConfig uses the paper's
	// acquisition parameters (16 MHz ATMega328P, 2.5 GS/s, 315-sample
	// traces) with covariate shift adaptation enabled.
	cfg := sidechannel.DefaultConfig()
	cfg.Programs = 4          // profiling program files per class
	cfg.TracesPerProgram = 25 // traces per file
	cfg.RegisterPrograms = 4  // also profile Rd/Rr register addresses
	cfg.RegisterTracesPerProgram = 25

	// 2. Train templates for a subset of the 112 classes (full Train(cfg)
	// profiles everything; the subset keeps the demo fast).
	classes := []sidechannel.Class{
		mustClass("ADD"), mustClass("ADC"), mustClass("EOR"), mustClass("MOV"),
	}
	fmt.Println("profiling", len(classes), "instruction classes on the golden device...")
	d, err := sidechannel.TrainSubset(cfg, classes, true)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The "unknown" firmware we want to reverse engineer.
	program, err := sidechannel.AssembleProgram(`
		MOV r20, r4   ; load working copy
		ADD r20, r5   ; accumulate
		ADC r21, r6   ; carry chain
		EOR r20, r21  ; whiten
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Measure it: one power trace per executed instruction, on a fresh
	// program environment the templates never saw. Repeated runs are fused
	// by majority vote, as a real-time monitor would.
	camp, err := sidechannel.NewCampaign(cfg.Power, 0, 1000)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	env := sidechannel.NewProgramEnv(cfg.Power, 1000, 2)
	var runs [][]sidechannel.Decoded
	for r := 0; r < 9; r++ {
		traces, err := camp.AcquireSegments(rng, env, program)
		if err != nil {
			log.Fatal(err)
		}
		decs, err := d.Disassemble(traces)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, decs)
	}
	recovered, err := sidechannel.MajorityDecode(runs)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare.
	fmt.Println("\nexecuted                    recovered from power")
	ok := 0
	for i, in := range program {
		mark := " "
		if recovered[i].Class == in.Class {
			ok++
			mark = "="
		}
		fmt.Printf("  %-24s %s  %s\n", in.String(), mark, recovered[i].String())
	}
	fmt.Printf("\n%d/%d opcodes recovered correctly\n", ok, len(program))
}

func mustClass(name string) sidechannel.Class {
	for _, c := range sidechannel.AllClasses() {
		if c.Name() == name {
			return c
		}
	}
	log.Fatalf("class %q not found", name)
	return 0
}
