package sidechannel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestFacadeAssembleRoundTrip(t *testing.T) {
	in, err := Assemble("EOR r16, r17")
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "EOR r16, r17" {
		t.Fatalf("round trip %q", in.String())
	}
	prog, err := AssembleProgram("MOV r18, r17\nEOR r16, r17")
	if err != nil || len(prog) != 2 {
		t.Fatalf("program: %v %v", prog, err)
	}
}

func TestFacadeClassEnumeration(t *testing.T) {
	if len(AllClasses()) != 112 {
		t.Fatalf("AllClasses() = %d, want 112", len(AllClasses()))
	}
	total := 0
	for _, g := range []Group{Group1, Group2, Group3, Group4, Group5, Group6, Group7, Group8} {
		total += len(ClassesInGroup(g))
	}
	if total != 112 {
		t.Fatalf("groups cover %d classes", total)
	}
}

func TestFacadeConfigs(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Classifier != QDA {
		t.Fatalf("default classifier %q, want QDA", cfg.Classifier)
	}
	pcfg := DefaultPowerConfig()
	if pcfg.TraceLen != 315 {
		t.Fatalf("trace length %d", pcfg.TraceLen)
	}
	if !CSAPipeline().PerTraceNorm {
		t.Fatal("CSA pipeline must normalize per trace")
	}
	if BasePipeline().PerTraceNorm {
		t.Fatal("base pipeline must not normalize per trace")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training is expensive")
	}
	cfg := DefaultConfig()
	cfg.Programs = 4
	cfg.TracesPerProgram = 20
	cfg.RegisterPrograms = 0
	classes := []Class{mustClass(t, "ADC"), mustClass(t, "AND")}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := NewCampaign(cfg.Power, 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	prog := NewProgramEnv(cfg.Power, 999, 7)
	targets := make([]Instruction, 20)
	for i := range targets {
		targets[i] = RandomInstruction(rng, classes[i%2])
	}
	traces, err := camp.AcquireTemplated(rng, prog, targets)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, dec := range decs {
		if dec.Class == targets[i].Class {
			hit++
		}
	}
	if hit < 16 {
		t.Fatalf("facade end-to-end accuracy %d/20", hit)
	}
	listing := Listing(decs)
	if !strings.Contains(listing, "\n") {
		t.Fatal("listing should be multi-line")
	}
}

func TestFacadeValidation(t *testing.T) {
	if err := ValidateTrace([]float64{1, 2, math.NaN()}, 0); !errors.Is(err, ErrNonFiniteTrace) {
		t.Fatalf("NaN trace err = %v, want ErrNonFiniteTrace", err)
	}
	if err := ValidateTrace([]float64{7, 7, 7}, 0); !errors.Is(err, ErrConstantTrace) {
		t.Fatalf("flat trace err = %v, want ErrConstantTrace", err)
	}
	if err := ValidateTrace([]float64{1, 2}, 5); !errors.Is(err, ErrTraceLength) {
		t.Fatalf("short trace err = %v, want ErrTraceLength", err)
	}
	if err := ValidateTrace([]float64{1, 2, 3}, 3); err != nil {
		t.Fatalf("healthy trace rejected: %v", err)
	}
	var rep ValidationReport
	rep.Merge(ValidationReport{Checked: 4, NonFinite: 1})
	if rep.Rejected() != 1 || !strings.Contains(rep.String(), "non-finite") {
		t.Fatalf("report = %q", rep)
	}
}

func TestFacadeTrainCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Programs = 2
	cfg.TracesPerProgram = 8
	cfg.RegisterPrograms = 0
	classes := []Class{mustClass(t, "ADC"), mustClass(t, "AND")}
	done := make(chan error, 1)
	go func() {
		_, err := TrainSubsetCtx(ctx, cfg, classes, false)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled training did not return promptly")
	}
}

func mustClass(t *testing.T, name string) Class {
	t.Helper()
	for _, c := range AllClasses() {
		if c.Name() == name {
			return c
		}
	}
	t.Fatalf("class %q not found", name)
	return 0
}
