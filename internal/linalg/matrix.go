// Package linalg provides the small dense linear-algebra kernel used by the
// feature-reduction (PCA) and discriminant-analysis (LDA/QDA) stages of the
// side-channel disassembler. It is deliberately minimal: real matrices,
// Cholesky factorization, symmetric eigendecomposition, and the handful of
// solves the classifiers need, implemented with the standard library only.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is the typed sentinel wrapped by every dimension-mismatch error
// in this package. Callers that feed the kernel data of uncontrolled origin
// (persisted template state, user-supplied feature vectors) test for it with
// errors.Is instead of string matching.
var ErrShape = errors.New("linalg: shape mismatch")

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: FromRows needs at least one row")
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: Mul %dx%d · %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·x as a new vector.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: MulVec %dx%d · %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// Add adds b into m in place.
func (m *Matrix) Add(b *Matrix) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return fmt.Errorf("%w: Add %dx%d + %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return nil
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddDiagonal adds eps to every diagonal entry in place (ridge
// regularization for near-singular covariance matrices).
func (m *Matrix) AddDiagonal(eps float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += eps
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.5g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Mean returns the per-column mean of the rows of X.
func Mean(X *Matrix) []float64 {
	mu := make([]float64, X.Cols)
	if X.Rows == 0 {
		return mu
	}
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		for j, v := range row {
			mu[j] += v
		}
	}
	inv := 1.0 / float64(X.Rows)
	for j := range mu {
		mu[j] *= inv
	}
	return mu
}

// Covariance returns the sample covariance matrix (divisor n-1) of the rows
// of X about the supplied mean. If mu is nil it is computed.
func Covariance(X *Matrix, mu []float64) (*Matrix, error) {
	if X.Rows < 2 {
		return nil, fmt.Errorf("linalg: covariance needs >=2 rows, got %d", X.Rows)
	}
	if mu == nil {
		mu = Mean(X)
	}
	if len(mu) != X.Cols {
		return nil, fmt.Errorf("%w: covariance mean length %d != cols %d", ErrShape, len(mu), X.Cols)
	}
	p := X.Cols
	cov := NewMatrix(p, p)
	d := make([]float64, p)
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		for j := range d {
			d[j] = row[j] - mu[j]
		}
		for a := 0; a < p; a++ {
			da := d[a]
			if da == 0 {
				continue
			}
			ca := cov.Row(a)
			for b := a; b < p; b++ {
				ca[b] += da * d[b]
			}
		}
	}
	inv := 1.0 / float64(X.Rows-1)
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, nil
}
