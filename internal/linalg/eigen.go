package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the corresponding eigenvectors as the columns of V (so a·V[:,k] =
// values[k]·V[:,k]). The input is not modified.
//
// Jacobi is O(n³) per sweep but unconditionally stable and accurate for the
// moderate sizes (≤ a few hundred) that PCA over KL-selected feature points
// produces.
func EigenSym(a *Matrix) (values []float64, V *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: EigenSym of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	w := a.Clone()
	V = Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14*frobNorm(w) || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Stable computation of the rotation angle.
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, V, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sorted := make([]float64, n)
	Vs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			Vs.Set(r, newCol, V.At(r, oldCol))
		}
	}
	return sorted, Vs, nil
}

// rotate applies a Jacobi rotation in the (p,q) plane to w and accumulates
// it into V.
func rotate(w, V *Matrix, p, q int, c, s float64) {
	n := w.Rows
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)
	w.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	w.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := w.At(k, p)
		akq := w.At(k, q)
		w.Set(k, p, c*akp-s*akq)
		w.Set(p, k, c*akp-s*akq)
		w.Set(k, q, s*akp+c*akq)
		w.Set(q, k, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		vkp := V.At(k, p)
		vkq := V.At(k, q)
		V.Set(k, p, c*vkp-s*vkq)
		V.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				v := m.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	if s == 0 {
		return 1
	}
	return math.Sqrt(s)
}
