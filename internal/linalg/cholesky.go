package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization fails.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
	n int
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// The input is not modified. If the factorization breaks down (the matrix is
// singular or indefinite), ErrNotPositiveDefinite is returned.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of non-square %dx%d matrix", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d += v * v
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{L: l, n: n}, nil
}

// RegularizedCholesky attempts to factorize a, adding geometrically
// increasing ridge terms to the diagonal until the factorization succeeds.
// This is what the discriminant classifiers use for near-singular
// class covariance matrices. It returns the factorization and the ridge
// value that was ultimately added (0 if none was needed).
func RegularizedCholesky(a *Matrix, baseEps float64) (*Cholesky, float64, error) {
	if baseEps <= 0 {
		baseEps = 1e-10
	}
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	// Scale the ridge with the matrix magnitude so it is meaningful for both
	// tiny and huge covariances.
	var maxDiag float64
	for i := 0; i < a.Rows; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	eps := baseEps * maxDiag
	for try := 0; try < 40; try++ {
		b := a.Clone()
		b.AddDiagonal(eps)
		if ch, err := NewCholesky(b); err == nil {
			return ch, eps, nil
		}
		eps *= 10
	}
	return nil, 0, ErrNotPositiveDefinite
}

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: SolveVec length %d != order %d", ErrShape, len(b), c.n)
	}
	// Forward substitution L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x, nil
}

// LogDet returns log(det(A)) = 2·Σ log(L[i][i]).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// Inverse returns A⁻¹ as a dense matrix.
func (c *Cholesky) Inverse() (*Matrix, error) {
	inv := NewMatrix(c.n, c.n)
	e := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := c.SolveVec(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// MahalanobisSq returns (x-mu)ᵀ A⁻¹ (x-mu) for the factorized A.
func (c *Cholesky) MahalanobisSq(x, mu []float64) (float64, error) {
	if len(x) != c.n || len(mu) != c.n {
		return 0, fmt.Errorf("%w: MahalanobisSq lengths (%d,%d) != %d", ErrShape, len(x), len(mu), c.n)
	}
	// Solve L·y = (x-mu); then the quadratic form is ‖y‖².
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := x[i] - mu[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	var q float64
	for _, v := range y {
		q += v * v
	}
	return q, nil
}

// CholeskyFromFactor wraps an existing lower-triangular factor L (e.g. one
// restored from persisted classifier state) as a usable factorization. The
// factor is validated — square shape, finite entries, strictly positive
// diagonal — because a corrupted template file would otherwise smuggle
// NaN/zero pivots into every later solve (the old panic-or-poison path).
func CholeskyFromFactor(L *Matrix) (*Cholesky, error) {
	if L == nil {
		return nil, fmt.Errorf("%w: nil Cholesky factor", ErrShape)
	}
	if L.Rows != L.Cols || len(L.Data) != L.Rows*L.Cols {
		return nil, fmt.Errorf("%w: Cholesky factor claims %dx%d with %d elements", ErrShape, L.Rows, L.Cols, len(L.Data))
	}
	for _, v := range L.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("linalg: Cholesky factor has non-finite entry: %w", ErrNotPositiveDefinite)
		}
	}
	for i := 0; i < L.Rows; i++ {
		if L.At(i, i) <= 0 {
			return nil, fmt.Errorf("linalg: Cholesky factor pivot %d is %g: %w", i, L.At(i, i), ErrNotPositiveDefinite)
		}
	}
	return &Cholesky{L: L, n: L.Rows}, nil
}
