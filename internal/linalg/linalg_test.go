package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testkit"
)

// almostEq delegates to the shared tolerance semantics (absolute-only form).
func almostEq(a, b, tol float64) bool { return testkit.Close(a, b, 0, tol) }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 3)
	m.Set(1, 1, 5)
	if m.At(0, 2) != 3 || m.At(1, 1) != 5 {
		t.Fatalf("At/Set mismatch: %v", m.Data)
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 0) != 3 {
		t.Fatalf("transpose content wrong: %v", tr.Data)
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original data")
	}
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("content wrong: %v", m.Data)
	}
}

func TestMulAgainstKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	y, err := a.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestIdentityMulIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	c, err := a.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	testkit.AllClose(t, c.Data, a.Data, 0, 1e-12, "A·I")
}

func TestMeanAndCovariance(t *testing.T) {
	X, _ := FromRows([][]float64{
		{1, 2},
		{3, 6},
		{5, 10},
	})
	mu := Mean(X)
	if !almostEq(mu[0], 3, 1e-12) || !almostEq(mu[1], 6, 1e-12) {
		t.Fatalf("mean = %v", mu)
	}
	cov, err := Covariance(X, nil)
	if err != nil {
		t.Fatal(err)
	}
	// var(x)=4, var(y)=16, cov=8 (perfectly correlated, y=2x).
	if !almostEq(cov.At(0, 0), 4, 1e-12) || !almostEq(cov.At(1, 1), 16, 1e-12) || !almostEq(cov.At(0, 1), 8, 1e-12) {
		t.Fatalf("cov = %v", cov.Data)
	}
	if !almostEq(cov.At(0, 1), cov.At(1, 0), 1e-15) {
		t.Fatal("covariance not symmetric")
	}
	if _, err := Covariance(NewMatrix(1, 2), nil); err == nil {
		t.Fatal("want error for single-row covariance")
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.5},
		{0.6, 1.5, 3},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3}
	x, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := a.MulVec(x)
	testkit.AllClose(t, got, b, 0, 1e-9, "A·x vs b")
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3 and -1
	})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("want ErrNotPositiveDefinite")
	}
}

func TestRegularizedCholeskyRescuesSingular(t *testing.T) {
	// Rank-1 matrix: vvᵀ with v=(1,2).
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	ch, ridge, err := RegularizedCholesky(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if ridge <= 0 {
		t.Fatalf("expected positive ridge, got %g", ridge)
	}
	if ch == nil {
		t.Fatal("nil factorization")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 0},
		{0, 8},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	testkit.InDelta(t, ch.LogDet(), math.Log(16), 1e-12, "logdet")
}

func TestCholeskyInverse(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 1},
		{1, 3},
	})
	ch, _ := NewCholesky(a)
	inv, err := ch.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-10) {
				t.Fatalf("A·A⁻¹ = %v", prod.Data)
			}
		}
	}
}

func TestMahalanobisSq(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 0},
		{0, 9},
	})
	ch, _ := NewCholesky(a)
	// (x-mu) = (2, 3): quadratic form = 4/4 + 9/9 = 2.
	q, err := ch.MahalanobisSq([]float64{2, 3}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	testkit.InDelta(t, q, 2, 1e-12, "mahalanobis quadratic form")
}

func TestEigenSymKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1},
		{1, 2},
	})
	vals, V, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for each column.
	for k := 0; k < 2; k++ {
		v := []float64{V.At(0, k), V.At(1, k)}
		av, _ := a.MulVec(v)
		for i := range v {
			if !almostEq(av[i], vals[k]*v[i], 1e-9) {
				t.Fatalf("A·v != λv for k=%d: %v vs λ=%g v=%v", k, av, vals[k], v)
			}
		}
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	// Build a random symmetric matrix.
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, V, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues must be sorted descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// V must be orthonormal: VᵀV = I.
	vtv, _ := V.T().Mul(V)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(vtv.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV not identity at (%d,%d): %g", i, j, vtv.At(i, j))
			}
		}
	}
	// Reconstruction A = V·diag(vals)·Vᵀ.
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	vd, _ := V.Mul(d)
	rec, _ := vd.Mul(V.T())
	testkit.AllClose(t, rec.Data, a.Data, 0, 1e-8, "V·diag(λ)·Vᵀ reconstruction")
}

func TestEigenSymTraceInvariant(t *testing.T) {
	// Property: sum of eigenvalues equals trace, for random symmetric inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(rng.Int31n(5))
		a := NewMatrix(n, n)
		var trace float64
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64() * 3
				a.Set(i, j, v)
				a.Set(j, i, v)
				if i == j {
					trace += v
				}
			}
		}
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEq(sum, trace, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDotNormAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %g", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	d := Sub(b, a)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestAddScaleDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 44 {
		t.Fatalf("Add result %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 5.5 {
		t.Fatalf("Scale result %v", a.Data)
	}
	a.AddDiagonal(1)
	if a.At(0, 0) != 6.5 || a.At(0, 1) != 11 {
		t.Fatalf("AddDiagonal result %v", a.Data)
	}
	if err := a.Add(NewMatrix(1, 1)); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestCovarianceIsPSDProperty(t *testing.T) {
	// Property: a sample covariance matrix is positive semidefinite, i.e.
	// regularized Cholesky always succeeds with a tiny ridge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(rng.Int31n(10))
		p := 2 + int(rng.Int31n(4))
		X := NewMatrix(n, p)
		for i := range X.Data {
			X.Data[i] = rng.NormFloat64()
		}
		cov, err := Covariance(X, nil)
		if err != nil {
			return false
		}
		_, _, err = RegularizedCholesky(cov, 1e-10)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestErrShapeSentinel(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("FromRows ragged err = %v, want ErrShape", err)
	}
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Mul mismatch err = %v, want ErrShape", err)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("MulVec mismatch err = %v, want ErrShape", err)
	}
	if err := a.Add(NewMatrix(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("Add mismatch err = %v, want ErrShape", err)
	}
	if _, err := NewCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("Cholesky non-square err = %v, want ErrShape", err)
	}
}

func TestCholeskyFromFactorValidates(t *testing.T) {
	// A valid factor round-trips.
	spd, err := FromRows([][]float64{{4, 1}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := CholeskyFromFactor(ch.L)
	if err != nil {
		t.Fatalf("valid factor rejected: %v", err)
	}
	want, _ := ch.SolveVec([]float64{1, 2})
	got, _ := restored.SolveVec([]float64{1, 2})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored solve differs at %d: %g vs %g", i, got[i], want[i])
		}
	}

	// Corrupted factors are rejected with typed errors, not used.
	if _, err := CholeskyFromFactor(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("nil factor err = %v, want ErrShape", err)
	}
	if _, err := CholeskyFromFactor(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square factor err = %v, want ErrShape", err)
	}
	short := NewMatrix(2, 2)
	short.Data = short.Data[:3]
	if _, err := CholeskyFromFactor(short); !errors.Is(err, ErrShape) {
		t.Fatalf("truncated factor err = %v, want ErrShape", err)
	}
	nan := NewMatrix(2, 2)
	nan.Set(0, 0, 1)
	nan.Set(1, 1, math.NaN())
	if _, err := CholeskyFromFactor(nan); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("NaN factor err = %v, want ErrNotPositiveDefinite", err)
	}
	zero := NewMatrix(2, 2)
	zero.Set(0, 0, 1) // pivot (1,1) left at 0
	if _, err := CholeskyFromFactor(zero); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("zero-pivot factor err = %v, want ErrNotPositiveDefinite", err)
	}
}
