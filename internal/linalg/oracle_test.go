package linalg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/testkit"
)

// The Cholesky/covariance stack is checked against the textbook references
// in testkit: NaiveCholesky (Cholesky–Banachiewicz), NaiveCovariance
// (two-pass definition), and SolveGauss (partial-pivoting elimination). The
// factor of an SPD matrix with positive diagonal is unique, so factors are
// compared entrywise; solves and inverses compare against elimination at
// testkit.LinalgTol on well-conditioned random inputs.

func fromDense(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func denseOf(m *Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

func TestCholeskyFactorMatchesNaive(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(1, 20)
		a := g.SPDMatrix(n)
		am, err := FromRows(a)
		if err != nil {
			return err
		}
		ch, err := NewCholesky(am)
		if err != nil {
			return fmt.Errorf("NewCholesky on SPD %dx%d: %v", n, n, err)
		}
		wantL, ok := testkit.NaiveCholesky(a)
		if !ok {
			return fmt.Errorf("oracle rejected SPD %dx%d matrix", n, n)
		}
		gotL := denseOf(ch.L)
		for i := range wantL {
			for j := range wantL[i] {
				if !testkit.Close(gotL[i][j], wantL[i][j], testkit.LinalgTol, testkit.LinalgTol) {
					return fmt.Errorf("L[%d][%d] = %g, oracle %g", i, j, gotL[i][j], wantL[i][j])
				}
			}
		}
		// Reconstruction: L·Lᵀ must reproduce the input.
		recon := testkit.MulLLT(gotL)
		for i := range a {
			for j := range a[i] {
				if !testkit.Close(recon[i][j], a[i][j], testkit.LinalgTol, testkit.LinalgTol) {
					return fmt.Errorf("(L·Lᵀ)[%d][%d] = %g, input %g", i, j, recon[i][j], a[i][j])
				}
			}
		}
		return nil
	})
}

func TestCholeskySolveMatchesGauss(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(1, 16)
		a := g.SPDMatrix(n)
		b := g.Trace(n)
		am, err := FromRows(a)
		if err != nil {
			return err
		}
		ch, err := NewCholesky(am)
		if err != nil {
			return err
		}
		got, err := ch.SolveVec(b)
		if err != nil {
			return err
		}
		want, err := testkit.SolveGauss(a, b)
		if err != nil {
			return err
		}
		for i := range want {
			if !testkit.Close(got[i], want[i], testkit.LinalgTol, testkit.LinalgTol) {
				return fmt.Errorf("x[%d] = %g, elimination %g (n=%d)", i, got[i], want[i], n)
			}
		}
		return nil
	})
}

func TestCholeskyInverseMatchesGauss(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 8}, func(g *testkit.G) error {
		n := g.Size(1, 12)
		a := g.SPDMatrix(n)
		am, err := FromRows(a)
		if err != nil {
			return err
		}
		ch, err := NewCholesky(am)
		if err != nil {
			return err
		}
		inv, err := ch.Inverse()
		if err != nil {
			return err
		}
		// Column k of A⁻¹ solves A·x = e_k.
		for k := 0; k < n; k++ {
			e := make([]float64, n)
			e[k] = 1
			want, err := testkit.SolveGauss(a, e)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if !testkit.Close(inv.At(i, k), want[i], testkit.LinalgTol, testkit.LinalgTol) {
					return fmt.Errorf("inv[%d][%d] = %g, elimination %g", i, k, inv.At(i, k), want[i])
				}
			}
		}
		return nil
	})
}

func TestCholeskyLogDetMatchesNaiveFactor(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(1, 16)
		a := g.SPDMatrix(n)
		am, err := FromRows(a)
		if err != nil {
			return err
		}
		ch, err := NewCholesky(am)
		if err != nil {
			return err
		}
		L, ok := testkit.NaiveCholesky(a)
		if !ok {
			return fmt.Errorf("oracle rejected SPD matrix")
		}
		var want float64
		for i := range L {
			want += 2 * math.Log(L[i][i])
		}
		if !testkit.Close(ch.LogDet(), want, testkit.LinalgTol, testkit.LinalgTol) {
			return fmt.Errorf("LogDet = %g, oracle %g (n=%d)", ch.LogDet(), want, n)
		}
		return nil
	})
}

func TestMahalanobisMatchesDefinition(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(1, 12)
		a := g.SPDMatrix(n)
		x := g.Trace(n)
		mu := g.Trace(n)
		am, err := FromRows(a)
		if err != nil {
			return err
		}
		ch, err := NewCholesky(am)
		if err != nil {
			return err
		}
		got, err := ch.MahalanobisSq(x, mu)
		if err != nil {
			return err
		}
		// Definition: (x−μ)ᵀ·A⁻¹·(x−μ) via elimination.
		d := make([]float64, n)
		for i := range d {
			d[i] = x[i] - mu[i]
		}
		sol, err := testkit.SolveGauss(a, d)
		if err != nil {
			return err
		}
		var want float64
		for i := range d {
			want += d[i] * sol[i]
		}
		if !testkit.Close(got, want, testkit.LinalgTol, testkit.LinalgTol) {
			return fmt.Errorf("MahalanobisSq = %g, definition %g (n=%d)", got, want, n)
		}
		return nil
	})
}

func TestCovarianceMatchesNaive(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(2, 40)
		p := g.Size(1, 10)
		rows := g.Matrix(n, p)
		X, err := FromRows(rows)
		if err != nil {
			return err
		}
		mu := Mean(X)
		cov, err := Covariance(X, mu)
		if err != nil {
			return err
		}
		want := testkit.NaiveCovariance(rows)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if !testkit.Close(cov.At(i, j), want[i][j], testkit.LinalgTol, testkit.LinalgTol) {
					return fmt.Errorf("cov[%d][%d] = %g, two-pass %g (n=%d, p=%d)",
						i, j, cov.At(i, j), want[i][j], n, p)
				}
			}
		}
		return nil
	})
}

// TestNaiveCholeskyRejectsIndefinite keeps the oracle itself honest: it must
// agree with NewCholesky on rejecting a matrix with a negative direction.
func TestNaiveCholeskyRejectsIndefinite(t *testing.T) {
	bad := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3 and −1
	if _, ok := testkit.NaiveCholesky(bad); ok {
		t.Fatal("oracle accepted an indefinite matrix")
	}
	if _, err := NewCholesky(fromDense(t, bad)); err == nil {
		t.Fatal("NewCholesky accepted an indefinite matrix")
	}
}
