package linalg

import "fmt"

// Section is a named, shaped view of one dense float64 payload — the unit
// the flat template store (internal/store) addresses, checksums and
// materializes lazily. The Data slice is shared with its owner, never
// copied: enumerating sections of a live snapshot must not double the
// resident set.
type Section struct {
	Name       string
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major; nil in stripped state
}

// FromData wraps a row-major payload as a Rows×Cols matrix after validating
// the claimed shape, for reattaching a lazily loaded section to restored
// state. The data is NOT copied.
func FromData(rows, cols int, data []float64) (*Matrix, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %dx%d matrix cannot hold %d elements", ErrShape, rows, cols, len(data))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}
