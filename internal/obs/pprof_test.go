package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Smoke test the pprof/metrics HTTP surface on an ephemeral port. Skipped
// under -short; CI runs the full suite so this covers the endpoint wiring.
func TestPprofEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pprof endpoint smoke test in -short mode")
	}
	reg := NewRegistry()
	reg.Counter("dsp.cwt.transforms").Add(9)
	srv, err := ServePprof("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) (string, string) {
		t.Helper()
		url := fmt.Sprintf("http://%s%s", srv.Addr, path)
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profile listing:\n%.400s", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "dsp_cwt_transforms 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	body, ctype = get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content-type = %q", ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}

	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
}
