//go:build unix

package obs

import "syscall"

// processCPUNanos returns the process's cumulative user+system CPU time in
// nanoseconds, or 0 when unavailable. Spans diff it to report per-stage CPU
// time (which exceeds wall time on parallel stages — that gap is the
// parallelism factor).
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
