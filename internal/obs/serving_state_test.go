package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTracerResetReusable pins the serving contract of Reset: a tracer
// filled to its cap (and dropping) becomes empty and records again after
// Reset, instead of holding the full buffer and dropping every span for the
// rest of the process lifetime.
func TestTracerResetReusable(t *testing.T) {
	tr := NewTracer()
	tr.MaxSpans = 2
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Span(ctx, "fill")
		sp.End()
	}
	if tr.Dropped() != 3 || len(tr.Tree()) != 2 {
		t.Fatalf("pre-reset: dropped=%d retained=%d, want 3/2", tr.Dropped(), len(tr.Tree()))
	}
	tr.Reset()
	if tr.Dropped() != 0 || len(tr.Tree()) != 0 {
		t.Fatalf("post-reset: dropped=%d retained=%d, want 0/0", tr.Dropped(), len(tr.Tree()))
	}
	_, sp := Span(ctx, "after")
	sp.End()
	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "after" {
		t.Fatalf("post-reset span not recorded: %+v", tree)
	}
	if tree[0].StartMS < 0 {
		t.Fatalf("post-reset span starts before the new anchor: %+v", tree[0])
	}
	var nilTracer *Tracer
	nilTracer.Reset() // must not panic
}

// TestSpanDropsSurfaceInMetrics pins the observable half of the span cap:
// drops land on the obs.spans.dropped counter of the installed registry, so
// a server's /metrics shows the loss instead of it being silent.
func TestSpanDropsSurfaceInMetrics(t *testing.T) {
	defer SetDefault(nil)
	r := NewRegistry()
	SetDefault(r)
	tr := NewTracer()
	tr.MaxSpans = 1
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 4; i++ {
		_, sp := Span(ctx, "s")
		sp.End()
	}
	if got := r.Snapshot().Counters["obs.spans.dropped"]; got != 3 {
		t.Fatalf("obs.spans.dropped = %d, want 3", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_spans_dropped 3") {
		t.Fatalf("prometheus exposition missing obs_spans_dropped:\n%s", buf.String())
	}
}

// TestDecisionLogSeqPerInstance pins that sequence numbers are a per-log
// property: two logs written concurrently each emit the exact contiguous
// range 1..N, with no cross-log interleaving of the counters — the property
// a server with per-template decision sinks depends on.
func TestDecisionLogSeqPerInstance(t *testing.T) {
	const workers, per = 8, 40
	newLog := func() (*DecisionLog, *strings.Builder, *sync.Mutex) {
		var mu sync.Mutex
		var sb strings.Builder
		w := writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return sb.Write(p)
		})
		return NewDecisionLog(w, 1), &sb, &mu
	}
	la, sa, _ := newLog()
	lb, sb, _ := newLog()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = la.Record(sampleRecord(0.5))
				_ = lb.Record(sampleRecord(0.5))
			}
		}()
	}
	wg.Wait()

	for name, out := range map[string]string{"a": sa.String(), "b": sb.String()} {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != workers*per {
			t.Fatalf("log %s emitted %d records, want %d", name, len(lines), workers*per)
		}
		seen := make(map[int64]bool, len(lines))
		for _, line := range lines {
			var rec DecisionRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("log %s corrupt line %q: %v", name, line, err)
			}
			seen[rec.Seq] = true
		}
		// Exactly 1..N: contiguous per instance, unaffected by the sibling
		// log advancing its own counter in parallel.
		for s := int64(1); s <= workers*per; s++ {
			if !seen[s] {
				t.Fatalf("log %s missing seq %d (per-instance numbering broken)", name, s)
			}
		}
	}
}

// TestSetDefaultConcurrentWithRecording is the obs-level half of the rebind
// fix: SetDefault may install fresh registries while other goroutines are
// recording decisions and ending spans. Run under -race this pins the atomic
// handle swap; the final rebind must also leave the hooks consistently bound
// to the last registry.
func TestSetDefaultConcurrentWithRecording(t *testing.T) {
	defer SetDefault(nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := NewDecisionLog(writerFunc(func(p []byte) (int, error) { return len(p), nil }), 1)
			tr := NewTracer()
			tr.MaxSpans = 1
			ctx := WithTracer(context.Background(), tr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = l.Record(sampleRecord(0.9))
				_, sp := Span(ctx, "work")
				sp.End()
			}
		}()
	}
	var last *Registry
	for i := 0; i < 200; i++ {
		last = NewRegistry()
		SetDefault(last)
	}
	close(stop)
	wg.Wait()
	if Default() != last {
		t.Fatal("Default() does not reflect the last SetDefault")
	}
	// Handles rebound to the final registry: new records land there.
	l := NewDecisionLog(writerFunc(func(p []byte) (int, error) { return len(p), nil }), 1)
	_ = l.Record(sampleRecord(0.5))
	if got := last.Snapshot().Counters["obs.decisions.seen"]; got < 1 {
		t.Fatalf("final registry saw %d decisions, want >= 1", got)
	}
}
