package obs

import (
	"math"
	"testing"
)

func TestReliabilityPerfectCalibration(t *testing.T) {
	r := NewReliability()
	// A perfectly calibrated predictor: in each bucket, accuracy equals the
	// stated confidence. 0.85 confidence → 85% correct.
	for i := 0; i < 100; i++ {
		r.Observe(0.85, i < 85)
	}
	if ece := r.ECE(); ece > 1e-9 {
		t.Fatalf("perfectly calibrated ECE = %g", ece)
	}
	if r.Total() != 100 || r.Labeled() != 100 {
		t.Fatalf("counts: total %d labeled %d", r.Total(), r.Labeled())
	}
	if mc := r.MeanConfidence(); math.Abs(mc-0.85) > 1e-12 {
		t.Fatalf("mean confidence %g", mc)
	}
}

func TestReliabilityOverconfidence(t *testing.T) {
	r := NewReliability()
	// Overconfident: claims 0.95, right half the time → ECE = 0.45.
	for i := 0; i < 200; i++ {
		r.Observe(0.95, i%2 == 0)
	}
	if ece := r.ECE(); math.Abs(ece-0.45) > 1e-9 {
		t.Fatalf("ECE = %g, want 0.45", ece)
	}
	s := r.Snapshot()
	if math.Abs(s.Accuracy-0.5) > 1e-12 || math.Abs(s.ECE-0.45) > 1e-9 {
		t.Fatalf("snapshot: %+v", s)
	}
	// The top bucket holds all observations.
	var seen int
	for _, b := range s.Buckets {
		if b.Count > 0 {
			seen++
			if b.Lo > 0.95 || b.Hi < 0.95 {
				t.Fatalf("0.95 landed in bucket [%g, %g]", b.Lo, b.Hi)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("%d occupied buckets, want 1", seen)
	}
}

func TestReliabilityUnlabeledConfidences(t *testing.T) {
	r := NewReliability()
	r.ObserveConfidence(0.7)
	r.ObserveConfidence(0.9)
	r.Observe(0.5, true)
	if r.Total() != 3 || r.Labeled() != 1 {
		t.Fatalf("total %d labeled %d", r.Total(), r.Labeled())
	}
	// ECE only covers the labeled population.
	if ece := r.ECE(); math.Abs(ece-0.5) > 1e-9 {
		t.Fatalf("ECE = %g, want 0.5 (one labeled obs at 0.5, correct)", ece)
	}
}

func TestReliabilityEdges(t *testing.T) {
	r := NewReliability()
	if r.ECE() != 0 || r.MeanConfidence() != 0 {
		t.Fatal("empty tracker must report zeros")
	}
	// Out-of-range confidences clamp into the edge buckets, not panic.
	r.Observe(-0.5, false)
	r.Observe(1.5, true)
	r.Observe(math.NaN(), true) // NaN clamps too; must not poison sums
	s := r.Snapshot()
	if s.Total != 3 {
		t.Fatalf("total %d", s.Total)
	}
	if math.IsNaN(s.ECE) {
		t.Fatal("NaN confidence poisoned ECE")
	}
	var n *Reliability
	n.Observe(0.5, true)
	n.ObserveConfidence(0.5)
	if n.Total() != 0 || n.ECE() != 0 {
		t.Fatal("nil tracker must be a no-op")
	}
	if s := n.Snapshot(); s.Total != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
}
