package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// DecisionLevel is one hierarchy level's scored outcome inside a
// DecisionRecord: which class won at that level, which class was the
// strongest competitor, and how decisively.
type DecisionLevel struct {
	// Level names the hierarchy stage: "group", "instr", "rd", "rr".
	Level string `json:"level"`
	// Label is the winning class index at this level.
	Label int `json:"label"`
	// RunnerUp is the second-best class index (-1 for single-class levels).
	RunnerUp int `json:"runner_up"`
	// Confidence is the winning class's normalized score in [0, 1].
	Confidence float64 `json:"confidence"`
	// Margin is Confidence minus the runner-up's score.
	Margin float64 `json:"margin"`
}

// DecisionRecord is the per-classification line of the JSONL decision log:
// the decoded text, the overall confidence, and the per-level breakdown.
type DecisionRecord struct {
	// Seq is the 1-based index of this decision among all decisions seen by
	// the log (including sampled-out ones), assigned by Record.
	Seq int64 `json:"seq"`
	// Text is the decoded instruction text (e.g. "ADD r1, r2").
	Text string `json:"text"`
	// Confidence is the product of the per-level confidences — the
	// probability the whole decision chain is right under independence.
	Confidence float64 `json:"confidence"`
	// Levels holds the per-hierarchy-level outcomes, outermost first.
	Levels []DecisionLevel `json:"levels"`
}

// DecisionLog writes sampled DecisionRecords as JSON Lines. It is safe for
// concurrent Record calls; a nil *DecisionLog is a valid no-op sink — the
// disabled fast path costs one nil check.
type DecisionLog struct {
	mu     sync.Mutex
	enc    *json.Encoder
	closer io.Closer
	sample int64
	seen   int64
}

// NewDecisionLog wraps w as a decision sink logging one in every sample
// records (sample <= 1 logs every record).
func NewDecisionLog(w io.Writer, sample int) *DecisionLog {
	if sample < 1 {
		sample = 1
	}
	return &DecisionLog{enc: json.NewEncoder(w), sample: int64(sample)}
}

// OpenDecisionLog creates (truncating) the JSONL file at path, with "-"
// selecting stdout. The file is closed by Close.
func OpenDecisionLog(path string, sample int) (*DecisionLog, error) {
	if path == "-" {
		return NewDecisionLog(os.Stdout, sample), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: decision log: %w", err)
	}
	l := NewDecisionLog(f, sample)
	l.closer = f
	return l, nil
}

// Record counts the decision and, when it falls on the sampling stride,
// writes it as one JSON line. The record's Seq is set to its 1-based index
// among all decisions seen. No-op on a nil receiver.
func (l *DecisionLog) Record(rec DecisionRecord) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	rec.Seq = l.seen
	obsMet().decisionsSeen.Inc()
	if (l.seen-1)%l.sample != 0 {
		return nil
	}
	obsMet().decisionsLogged.Inc()
	return l.enc.Encode(&rec)
}

// Seen returns how many decisions were offered to the log (0 for nil).
func (l *DecisionLog) Seen() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Close closes the underlying file when the log owns one. No-op on nil.
func (l *DecisionLog) Close() error {
	if l == nil || l.closer == nil {
		return nil
	}
	return l.closer.Close()
}

// obsMetrics holds the obs package's own instrument handles (span drops,
// decision log volume, drift state). The live set is swapped atomically by
// the OnDefault hook, so SetDefault can rebind while spans end and decisions
// record on other goroutines.
type obsMetrics struct {
	spansDropped    *Counter
	decisionsSeen   *Counter
	decisionsLogged *Counter
	driftWindows    *Counter
	driftScore      *Gauge
	driftZMax       *Gauge
	driftAlert      *Gauge
	driftScoreHist  *Histogram

	traceExported      *Counter
	traceExportDropped *Counter
	traceExportErrors  *Counter
	traceSampledKept   *CounterVec
}

var obsMetPtr atomic.Pointer[obsMetrics]

// obsMet returns the current handle set; never nil (before the init hook
// runs, or under a nil registry, the handles themselves are nil no-ops).
func obsMet() *obsMetrics {
	if m := obsMetPtr.Load(); m != nil {
		return m
	}
	return &obsMetrics{}
}

func init() {
	OnDefault(func(r *Registry) {
		obsMetPtr.Store(&obsMetrics{
			spansDropped:    r.Counter("obs.spans.dropped"),
			decisionsSeen:   r.Counter("obs.decisions.seen"),
			decisionsLogged: r.Counter("obs.decisions.logged"),
			driftWindows:    r.Counter("obs.drift.windows"),
			driftScore:      r.Gauge("obs.drift.score"),
			driftZMax:       r.Gauge("obs.drift.zmax"),
			driftAlert:      r.Gauge("obs.drift.alert"),
			driftScoreHist:  r.HistogramWith("obs.drift.score.window", UnitBuckets()),

			traceExported:      r.Counter("obs.trace.exported"),
			traceExportDropped: r.Counter("obs.trace.export.dropped"),
			traceExportErrors:  r.Counter("obs.trace.export.errors"),
			traceSampledKept:   r.CounterVec("obs.trace.sampled", "reason"),
		})
	})
}
