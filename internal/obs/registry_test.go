package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Nil instruments are the disabled fast path: every method must be a no-op,
// never a panic.
func TestNilInstrumentsAreNoops(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}
	if s := h.Snapshot(); s != (HistogramSnapshot{}) {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestRegistryCreateOnFirstUseAndAttach(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name resolved to different counters")
	}
	r.Counter("a").Add(5)
	ext := NewCounter()
	ext.Add(7)
	r.Attach("ext", ext)
	r.Gauge("g").Set(2.5)
	r.Histogram("h").Observe(0.001)

	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Counters["ext"] != 7 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 2.5 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histograms = %v", s.Histograms)
	}
}

// Attach has gauge and histogram analogues so always-live instruments of all
// three kinds can join snapshots.
func TestAttachGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := NewGauge()
	g.Set(4.25)
	r.AttachGauge("ext.gauge", g)
	h := NewHistogram(UnitBuckets())
	h.Observe(0.5)
	h.Observe(0.25)
	r.AttachHistogram("ext.hist", h)

	s := r.Snapshot()
	if s.Gauges["ext.gauge"] != 4.25 {
		t.Fatalf("attached gauge = %v", s.Gauges["ext.gauge"])
	}
	if hs := s.Histograms["ext.hist"]; hs.Count != 2 || hs.Sum != 0.75 {
		t.Fatalf("attached histogram = %+v", hs)
	}
	// Updates through the original handles stay visible.
	g.Set(1)
	h.Observe(0.1)
	s = r.Snapshot()
	if s.Gauges["ext.gauge"] != 1 || s.Histograms["ext.hist"].Count != 3 {
		t.Fatal("attached instruments detached from their handles")
	}
	// Nil-safe in both directions.
	var nr *Registry
	nr.AttachGauge("x", g)
	nr.AttachHistogram("x", h)
	r.AttachGauge("nil", nil)
	r.AttachHistogram("nil", nil)
	if _, ok := r.Snapshot().Gauges["nil"]; ok {
		t.Fatal("nil instrument attached")
	}
}

// Gauges clamp non-finite stores so NaN can never leak into a snapshot.
func TestGaugeClampsNonFinite(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(math.NaN())
	if g.Value() != 0 {
		t.Fatalf("NaN store produced %v", g.Value())
	}
	g.Set(1)
	g.Add(math.Inf(1))
	if v := g.Value(); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("Inf add produced %v", v)
	}
}

// The snapshot JSON must be byte-stable across marshals (sorted map keys).
func TestSnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(name).Inc()
	}
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two snapshots of the same registry serialized differently")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("snapshot JSON invalid")
	}
	// Keys come out sorted.
	first := strings.Index(a.String(), "a.first")
	last := strings.Index(a.String(), "z.last")
	if first < 0 || last < 0 || first > last {
		t.Fatalf("counter keys not sorted: %s", a.String())
	}
}

// SetDefault re-runs OnDefault hooks so packages rebind their handles; a nil
// registry rebinds them to nil (disabled).
func TestSetDefaultRebindsHooks(t *testing.T) {
	defer SetDefault(nil)
	var handle *Counter
	OnDefault(func(r *Registry) { handle = r.Counter("hooked") })
	if handle != nil {
		t.Fatal("handle live before a registry was installed")
	}
	r := NewRegistry()
	SetDefault(r)
	if handle == nil {
		t.Fatal("hook did not rebind on SetDefault")
	}
	handle.Inc()
	if r.Snapshot().Counters["hooked"] != 1 {
		t.Fatal("rebound handle not connected to the registry")
	}
	SetDefault(nil)
	if handle != nil {
		t.Fatal("hook did not disable the handle on SetDefault(nil)")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsp.cwt.transforms").Add(3)
	r.Gauge("parallel.workers").Set(4)
	r.Histogram("features.fit.seconds").Observe(0.25)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dsp_cwt_transforms counter",
		"dsp_cwt_transforms 3",
		"# TYPE parallel_workers gauge",
		"# TYPE features_fit_seconds summary",
		"features_fit_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
