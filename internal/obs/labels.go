package obs

// Labeled instruments: CounterVec, GaugeVec and HistogramVec give one named
// metric a small fixed label schema (e.g. template/route/code) and a child
// instrument per distinct label-value combination — what a server needs to
// answer "which template is slow" from one /metrics scrape.
//
// Design rules, matching the unlabeled instruments:
//
//   - Lock-free on the hot path: the child map lives behind an atomic
//     pointer. Resolving an existing child is one map read plus the child's
//     own atomic update; only the first observation of a NEW label set takes
//     the vec mutex (copy-on-write insert).
//   - Bounded cardinality: label values are caller data (template names come
//     off the filesystem, routes off the mux, codes off the response), and a
//     hostile or buggy caller must not grow the process heap one child per
//     unique value. Each vec holds at most its limit of children
//     (DefaultLabelLimit); past that, new label sets collapse into a single
//     reserved child whose every label value is "other", and each collapsed
//     observation bumps obs.labels.dropped. A flood of unique values
//     therefore costs one child plus a counter, not unbounded memory — the
//     trade is that every over-limit observation takes the insert mutex to
//     re-check, so a sustained flood serializes there (still O(1) memory).
//   - Nil-safe: a nil vec (from a nil registry) hands out nil children,
//     which are the usual no-op instruments.
//
// Rendering: the Prometheus exposition writes real label syntax with values
// escaped per the text format (backslash, quote, newline); Snapshot/JSON/
// manifests nest children under the vec name keyed by the canonical
// `key="value",...` string, so both views agree on identity.

import (
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLabelLimit is the per-vec child bound: at most this many distinct
// label sets get their own child; further sets collapse into the "other"
// child and count into obs.labels.dropped.
const DefaultLabelLimit = 512

// labelSep joins label values into the child-map key. 0xFF never appears in
// valid UTF-8, so joined values cannot collide.
const labelSep = "\xff"

// overflowValue is the label value every key takes on the collapsed child.
const overflowValue = "other"

// vecCore is the shared machinery of the three vec kinds.
type vecCore[T any] struct {
	name     string
	keys     []string
	limit    int
	newChild func() *T
	dropped  *Counter // obs.labels.dropped, shared across the registry

	children atomic.Pointer[map[string]*T]
	mu       sync.Mutex // guards copy-on-write inserts only
	otherKey string
}

func newVecCore[T any](name string, keys []string, dropped *Counter, newChild func() *T) *vecCore[T] {
	v := &vecCore[T]{
		name:     name,
		keys:     append([]string(nil), keys...),
		limit:    DefaultLabelLimit,
		newChild: newChild,
		dropped:  dropped,
	}
	other := make([]string, len(keys))
	for i := range other {
		other[i] = overflowValue
	}
	v.otherKey = strings.Join(other, labelSep)
	m := map[string]*T{}
	v.children.Store(&m)
	return v
}

// with resolves the child for values, creating it under the cardinality
// guard. Returns nil only on a nil vec.
func (v *vecCore[T]) with(values []string) *T {
	if v == nil {
		return nil
	}
	key := v.otherKey
	if len(values) == len(v.keys) {
		key = strings.Join(values, labelSep)
	} else {
		// Arity mismatch is a programming error at the call site; collapse
		// into "other" rather than panicking on the serving hot path.
		v.dropped.Inc()
	}
	m := v.children.Load()
	if c, ok := (*m)[key]; ok {
		return c
	}
	return v.insert(key)
}

// insert adds the child for key under the mutex, collapsing into the "other"
// child when the vec is at its limit.
func (v *vecCore[T]) insert(key string) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	m := *v.children.Load()
	if c, ok := m[key]; ok {
		return c
	}
	if len(m) >= v.limit && key != v.otherKey {
		v.dropped.Inc()
		key = v.otherKey
		if c, ok := m[key]; ok {
			return c
		}
	}
	nm := make(map[string]*T, len(m)+1)
	for k, c := range m {
		nm[k] = c
	}
	c := v.newChild()
	nm[key] = c
	v.children.Store(&nm)
	return c
}

// snapshot returns the children keyed by canonical label rendering, mapped
// through take (which must read the child atomically).
func snapshotVec[T, S any](v *vecCore[T], take func(*T) S) map[string]S {
	m := v.children.Load()
	out := make(map[string]S, len(*m))
	for key, c := range *m {
		out[renderLabelPairs(v.keys, strings.Split(key, labelSep))] = take(c)
	}
	return out
}

// renderLabelPairs renders `key="value",...` with Prometheus text-format
// escaping — the canonical child identity used by both the exposition and
// the JSON snapshot.
func renderLabelPairs(keys, values []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(k))
		b.WriteString(`="`)
		val := overflowValue
		if i < len(values) {
			val = values[i]
		}
		b.WriteString(escapeLabelValue(val))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabelName maps a label key to a Prometheus-legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func promLabelName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// CounterVec is a counter family keyed by a fixed label schema.
type CounterVec struct{ core *vecCore[Counter] }

// With resolves the child counter for the given label values (one per key,
// in declaration order). Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.core.with(values)
}

// GaugeVec is a gauge family keyed by a fixed label schema.
type GaugeVec struct{ core *vecCore[Gauge] }

// With resolves the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.core.with(values)
}

// HistogramVec is a histogram family keyed by a fixed label schema; every
// child shares the vec's bucket layout.
type HistogramVec struct{ core *vecCore[Histogram] }

// With resolves the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.core.with(values)
}

// CounterVec returns the named counter family with the given label keys,
// creating it on first use. The first creation wins: later calls return the
// existing vec regardless of the keys passed. Returns nil on a nil registry.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.cvecs[name]
	if v == nil {
		v = &CounterVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), NewCounter)}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use. First
// creation wins. Returns nil on a nil registry.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gvecs[name]
	if v == nil {
		v = &GaugeVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), NewGauge)}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with the given bucket
// layout, creating it on first use. First creation wins (keys and layout).
// Returns nil on a nil registry.
func (r *Registry) HistogramVec(name string, layout BucketLayout, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.hvecs[name]
	if v == nil {
		v = &HistogramVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), func() *Histogram {
			return NewHistogram(layout)
		})}
		r.hvecs[name] = v
	}
	return v
}

// labelsDroppedLocked resolves the registry-wide cardinality-overflow
// counter. Caller holds r.mu.
func (r *Registry) labelsDroppedLocked() *Counter {
	c := r.counters["obs.labels.dropped"]
	if c == nil {
		c = NewCounter()
		r.counters["obs.labels.dropped"] = c
	}
	return c
}

// labeledSnapshotLocked fills the labeled sections of a snapshot. Caller
// holds r.mu.
func (r *Registry) labeledSnapshotLocked(s *Snapshot) {
	if len(r.cvecs) > 0 {
		s.LabeledCounters = make(map[string]map[string]int64, len(r.cvecs))
		for name, v := range r.cvecs {
			s.LabeledCounters[name] = snapshotVec(v.core, (*Counter).Value)
		}
	}
	if len(r.gvecs) > 0 {
		s.LabeledGauges = make(map[string]map[string]float64, len(r.gvecs))
		for name, v := range r.gvecs {
			s.LabeledGauges[name] = snapshotVec(v.core, (*Gauge).Value)
		}
	}
	if len(r.hvecs) > 0 {
		s.LabeledHistograms = make(map[string]map[string]HistogramSnapshot, len(r.hvecs))
		for name, v := range r.hvecs {
			s.LabeledHistograms[name] = snapshotVec(v.core, (*Histogram).Snapshot)
		}
	}
}
