package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/testkit"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	trace, parent, sampled, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	if trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %s", trace)
	}
	if parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("parent ID = %s", parent)
	}
	if !sampled {
		t.Fatal("flags 01 should report sampled")
	}
	if _, _, sampled, ok = ParseTraceparent(strings.Replace(valid, "-01", "-00", 1)); !ok || sampled {
		t.Fatal("flags 00 should parse as unsampled")
	}

	invalid := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // no flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-ex", // v00 with trailer
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // bad version hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01",    // bad trace hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01",    // bad parent hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-x1",    // bad flags hex
	}
	for _, h := range invalid {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("invalid header accepted: %q", h)
		}
	}
	// Future version with extra fields is accepted per the W3C spec.
	future := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever"
	if _, _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future-version header rejected: %q", future)
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	trace := NewTraceID()
	span := exportSpanID(trace, 7)
	h := FormatTraceparent(trace, span, true)
	gotTrace, gotSpan, sampled, ok := ParseTraceparent(h)
	if !ok || gotTrace != trace || gotSpan != span || !sampled {
		t.Fatalf("round trip failed: %q -> (%s, %s, %v, %v)", h, gotTrace, gotSpan, sampled, ok)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace ID generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestExportSpanIDStableAndDistinct(t *testing.T) {
	trace := NewTraceID()
	if exportSpanID(trace, 1) != exportSpanID(trace, 1) {
		t.Fatal("span ID not deterministic")
	}
	seen := map[SpanID]bool{}
	for i := int64(1); i <= 200; i++ {
		id := exportSpanID(trace, i)
		if id.IsZero() {
			t.Fatalf("zero span ID for %d", i)
		}
		if seen[id] {
			t.Fatalf("span ID collision at %d", i)
		}
		seen[id] = true
	}
	other := NewTraceID()
	if exportSpanID(trace, 1) == exportSpanID(other, 1) {
		t.Fatal("span IDs should differ across traces")
	}
}

func TestFineChildGating(t *testing.T) {
	tr := NewTracer()
	ctx, root := Span(WithTracer(context.Background(), tr), "root")
	_ = ctx
	if sp := root.FineChild("fine"); sp != nil {
		t.Fatal("FineChild on a coarse tracer should be a no-op")
	}
	if sp := root.Child("coarse-child"); sp == nil {
		t.Fatal("Child should work regardless of the Fine flag")
	} else {
		sp.End()
	}
	tr.Fine = true
	sp := root.FineChild("fine")
	if sp == nil {
		t.Fatal("FineChild on a fine tracer returned nil")
	}
	sp.End()
	if sp.cpu != 0 {
		t.Fatal("fine spans must not sample CPU")
	}
	root.End()
	var nilSpan *SpanHandle
	if nilSpan.Child("x") != nil || nilSpan.FineChild("x") != nil {
		t.Fatal("nil-span children should be nil")
	}
}

func TestTracerExportParentage(t *testing.T) {
	tr := NewTracer()
	tr.Fine = true
	trace := NewTraceID()
	var remote SpanID
	remote[7] = 0xaa
	tr.SetTraceContext(trace, remote)

	ctx, root := Span(WithTracer(context.Background(), tr), "serve.request")
	_, child := Span(ctx, "core.disassemble")
	grand := child.FineChild("core.classify")
	leaf := grand.Child("core.classify.group")
	leaf.SetAttr("confidence", 0.5)
	leaf.End()
	grand.End()
	child.End()
	root.End()

	out := tr.Export()
	if out.Schema != TraceSchema {
		t.Fatalf("schema %q", out.Schema)
	}
	if out.TraceID != trace.String() {
		t.Fatalf("trace ID %q != %q", out.TraceID, trace)
	}
	if len(out.Spans) != 4 {
		t.Fatalf("expected 4 spans, got %d", len(out.Spans))
	}
	if out.Truncated || out.Dropped != 0 {
		t.Fatal("unexpected truncation")
	}
	byName := map[string]ExportedSpan{}
	for _, s := range out.Spans {
		byName[s.Name] = s
	}
	if byName["serve.request"].ParentID != remote.String() {
		t.Fatalf("root should link to the remote parent, got %q", byName["serve.request"].ParentID)
	}
	if byName["core.disassemble"].ParentID != byName["serve.request"].SpanID {
		t.Fatal("core.disassemble should parent to serve.request")
	}
	if byName["core.classify"].ParentID != byName["core.disassemble"].SpanID {
		t.Fatal("core.classify should parent to core.disassemble")
	}
	if byName["core.classify.group"].ParentID != byName["core.classify"].SpanID {
		t.Fatal("per-level span should parent to core.classify")
	}
	if got := byName["core.classify.group"].Attrs["confidence"]; got != 0.5 {
		t.Fatalf("attr lost: %v", got)
	}
	for i := 1; i < len(out.Spans); i++ {
		if out.Spans[i].StartNS < out.Spans[i-1].StartNS {
			t.Fatal("spans not ordered by start")
		}
	}
	if out.DurNS <= 0 {
		t.Fatal("trace duration not derived from spans")
	}
}

func TestTracerExportNoRemoteParent(t *testing.T) {
	tr := NewTracer()
	tr.SetTraceContext(NewTraceID(), SpanID{})
	_, root := Span(WithTracer(context.Background(), tr), "root")
	root.End()
	out := tr.Export()
	if out.Spans[0].ParentID != "" {
		t.Fatalf("root without a remote parent should have no parent ID, got %q", out.Spans[0].ParentID)
	}
}

func TestTracerExportTruncationMarker(t *testing.T) {
	tr := NewTracer()
	tr.Fine = true
	tr.MaxSpans = 2
	tr.SetTraceContext(NewTraceID(), SpanID{})
	_, root := Span(WithTracer(context.Background(), tr), "root")
	for i := 0; i < 5; i++ {
		root.Child(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	out := tr.Export()
	if !out.Truncated || out.Dropped != 4 {
		t.Fatalf("want truncated with 4 dropped, got truncated=%v dropped=%d", out.Truncated, out.Dropped)
	}
	if len(out.Spans) != 2 {
		t.Fatalf("cap not applied: %d spans", len(out.Spans))
	}
}

func TestReadExportedTraces(t *testing.T) {
	tr := NewTracer()
	tr.SetTraceContext(NewTraceID(), SpanID{})
	_, root := Span(WithTracer(context.Background(), tr), "root")
	root.End()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(tr.Export()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n") // blank lines are skipped
	if err := enc.Encode(tr.Export()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExportedTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d traces, want 2", len(got))
	}

	if _, err := ReadExportedTraces(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("invalid JSON should fail the read")
	}
	if _, err := ReadExportedTraces(strings.NewReader(`{"schema":"other.v9"}` + "\n")); err == nil {
		t.Fatal("unknown schema should fail the read")
	}
}

func TestWriteTraceTree(t *testing.T) {
	tr := NewTracer()
	tr.Fine = true
	tr.SetTraceContext(NewTraceID(), SpanID{})
	_, root := Span(WithTracer(context.Background(), tr), "serve.request")
	child := root.Child("core.disassemble")
	child.SetAttr("traces", 3)
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	ex := tr.Export()
	ex.Status = 200
	ex.Template = "demo"
	ex.Reason = KeepForced

	var buf bytes.Buffer
	if err := WriteTraceTree(&buf, ex); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{ex.TraceID, "status=200", "template=demo", "kept=forced",
		"serve.request", "  core.disassemble", "traces=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	// Self time of the root excludes the child's duration: with a >=2ms child
	// inside, root self < root total.
	lines := strings.Split(out, "\n")
	var rootLine string
	for _, l := range lines {
		if strings.Contains(l, "serve.request") && !strings.HasPrefix(l, "trace ") {
			rootLine = l
		}
	}
	if rootLine == "" {
		t.Fatalf("no root row in:\n%s", out)
	}
}

// TestExportedTraceRoundTripProperty is the JSONL round-trip property: any
// exported span tree, written as JSONL and read back through the trace
// reader, reconstructs with identical IDs, names, parentage and a renderable
// tree (every non-root span's parent is present exactly as written).
func TestExportedTraceRoundTripProperty(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 30}, func(g *testkit.G) error {
		tr := NewTracer()
		tr.Fine = true
		tr.SetTraceContext(NewTraceID(), SpanID{})
		_, root := Span(WithTracer(context.Background(), tr), "root")
		open := []*SpanHandle{root}
		n := g.IntBetween(1, 40)
		for i := 0; i < n; i++ {
			parent := open[g.Rng.Intn(len(open))]
			sp := parent.Child(fmt.Sprintf("span-%d", i))
			if g.Rng.Intn(2) == 0 {
				sp.SetAttr("k", g.Float64(0, 1))
			}
			sp.End()
			// Ended spans can still parent new children (IDs, not liveness,
			// define the tree); keep a few as future parents.
			if len(open) < 8 {
				open = append(open, sp)
			}
		}
		root.End()
		want := tr.Export()
		want.Status = 200 + g.Rng.Intn(300)
		want.Route = "disassemble"

		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(want); err != nil {
			return err
		}
		got, err := ReadExportedTraces(&buf)
		if err != nil {
			return err
		}
		if len(got) != 1 {
			return fmt.Errorf("read %d traces", len(got))
		}
		rt := got[0]
		if rt.TraceID != want.TraceID || rt.Status != want.Status || rt.Route != want.Route {
			return fmt.Errorf("header fields mangled: %+v vs %+v", rt, want)
		}
		if len(rt.Spans) != len(want.Spans) {
			return fmt.Errorf("span count %d != %d", len(rt.Spans), len(want.Spans))
		}
		ids := map[string]bool{}
		for _, s := range rt.Spans {
			ids[s.SpanID] = true
		}
		roots := 0
		for i, s := range rt.Spans {
			w := want.Spans[i]
			if s.SpanID != w.SpanID || s.ParentID != w.ParentID || s.Name != w.Name ||
				s.StartNS != w.StartNS || s.DurNS != w.DurNS {
				return fmt.Errorf("span %d mangled: %+v vs %+v", i, s, w)
			}
			if len(s.Attrs) != len(w.Attrs) {
				return fmt.Errorf("span %d attrs mangled", i)
			}
			if s.ParentID == "" {
				roots++
			} else if !ids[s.ParentID] {
				return fmt.Errorf("span %d parent %q missing from record", i, s.ParentID)
			}
		}
		if roots != 1 {
			return fmt.Errorf("expected exactly 1 root, got %d", roots)
		}
		// The tree reader must place every span: nodes reachable from the
		// roots equal the record size (no cycles, no orphans lost).
		var count func(ns []*traceTreeNode) int
		count = func(ns []*traceTreeNode) int {
			total := 0
			for _, n := range ns {
				total += 1 + count(n.children)
			}
			return total
		}
		if got := count(buildTraceTree(rt.Spans)); got != len(rt.Spans) {
			return fmt.Errorf("tree holds %d of %d spans", got, len(rt.Spans))
		}
		var render bytes.Buffer
		return WriteTraceTree(&render, rt)
	})
}
