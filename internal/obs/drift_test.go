package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testBaseline is a two-feature baseline mimicking the [trace.mean,
// trace.std] drift vector: mean power around 0 with unit spread, amplitude
// around 5 with a tighter spread.
func testBaseline() DriftBaseline {
	return DriftBaseline{
		Names: []string{"trace.mean", "trace.std"},
		Mean:  []float64{0, 5},
		Std:   []float64{1, 0.5},
	}
}

// feed pushes n in-distribution vectors drawn from the baseline Gaussians,
// optionally perturbed by mutate.
func feed(m *DriftMonitor, rng *rand.Rand, b DriftBaseline, n int, mutate func([]float64)) {
	for i := 0; i < n; i++ {
		v := make([]float64, len(b.Mean))
		for j := range v {
			v[j] = b.Mean[j] + rng.NormFloat64()*b.Std[j]
		}
		if mutate != nil {
			mutate(v)
		}
		m.Observe(v)
	}
}

func TestDriftMonitorNoDriftStaysOK(t *testing.T) {
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	feed(m, rng, b, 256, nil)
	if st := m.State(); st != DriftOK {
		t.Fatalf("in-distribution stream: state %v score %g, want ok", st, m.Score())
	}
	s := m.Snapshot()
	if s.Windows == 0 || s.Observed != 256 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Score >= DefaultDriftWarn {
		t.Fatalf("in-distribution score %g crossed warn %g", s.Score, DefaultDriftWarn)
	}
}

// TestDriftMonitorDCOffset is the paper's first covariate shift: a DC offset
// added to every trace moves trace.mean. The alert must fire within one
// window of shifted traffic.
func TestDriftMonitorDCOffset(t *testing.T) {
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	feed(m, rng, b, 64, nil) // clean warm-up window
	if m.State() != DriftOK {
		t.Fatalf("clean warm-up alarmed: score %g", m.Score())
	}
	feed(m, rng, b, 64, func(v []float64) { v[0] += 3 }) // 3σ DC offset
	if st := m.State(); st != DriftWarn && st != DriftCritical {
		t.Fatalf("3σ DC offset not detected within one window: state %v score %g", st, m.Score())
	}
	s := m.Snapshot()
	if s.WorstFeature != "trace.mean" {
		t.Fatalf("worst feature %q, want trace.mean", s.WorstFeature)
	}
	if s.MaxZ < 2 {
		t.Fatalf("max |z| %g after 3σ shift", s.MaxZ)
	}
}

// TestDriftMonitorGainShift is the second covariate shift: a gain change
// scales the per-trace amplitude, moving trace.std.
func TestDriftMonitorGainShift(t *testing.T) {
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	feed(m, rng, b, 64, nil)
	if m.State() != DriftOK {
		t.Fatalf("clean warm-up alarmed: score %g", m.Score())
	}
	feed(m, rng, b, 64, func(v []float64) { v[1] *= 1.5 }) // +50% gain
	if st := m.State(); st != DriftWarn && st != DriftCritical {
		t.Fatalf("gain shift not detected within one window: state %v score %g", st, m.Score())
	}
	if s := m.Snapshot(); s.WorstFeature != "trace.std" {
		t.Fatalf("worst feature %q, want trace.std", s.WorstFeature)
	}
}

// TestDriftMonitorRecovers checks the sliding window forgets: once shifted
// traffic stops, a full clean window returns the state to ok.
func TestDriftMonitorRecovers(t *testing.T) {
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	feed(m, rng, b, 32, func(v []float64) { v[0] += 5 })
	if m.State() == DriftOK {
		t.Fatal("5σ shift not detected")
	}
	feed(m, rng, b, 32, nil)
	if st := m.State(); st != DriftOK {
		t.Fatalf("state %v after full clean window, want ok (score %g)", st, m.Score())
	}
}

func TestDriftMonitorThresholdOrdering(t *testing.T) {
	cfg := DriftConfig{Window: 8, Warn: 2, Critical: 1}.withDefaults()
	if cfg.Critical < cfg.Warn {
		t.Fatalf("withDefaults must keep critical >= warn: %+v", cfg)
	}
	cfg = DriftConfig{}.withDefaults()
	if cfg.Window != DefaultDriftWindow || cfg.Warn != DefaultDriftWarn || cfg.Critical != DefaultDriftCritical {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestDriftMonitorRejectsBadInput(t *testing.T) {
	if _, err := NewDriftMonitor(DriftBaseline{}, DriftConfig{}); err == nil {
		t.Fatal("empty baseline should fail")
	}
	if _, err := NewDriftMonitor(DriftBaseline{Mean: []float64{1}, Std: []float64{1, 2}}, DriftConfig{}); err == nil {
		t.Fatal("mismatched mean/std should fail")
	}
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong dimension and non-finite vectors are dropped, not counted.
	m.Observe([]float64{1})
	m.Observe([]float64{math.NaN(), 1})
	m.Observe([]float64{1, math.Inf(1)})
	if s := m.Snapshot(); s.Observed != 0 {
		t.Fatalf("defective vectors were counted: %+v", s)
	}
	// Zero/negative baseline std is floored, not divided by.
	m2, err := NewDriftMonitor(DriftBaseline{Mean: []float64{0}, Std: []float64{0}}, DriftConfig{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	m2.Observe([]float64{1})
	m2.Observe([]float64{1})
	if s := m2.Snapshot(); math.IsNaN(s.Score) || math.IsInf(s.Score, 0) {
		t.Fatalf("score not finite with zero baseline std: %+v", s)
	}
}

func TestDriftMonitorNilSafe(t *testing.T) {
	var m *DriftMonitor
	m.Observe([]float64{1})
	if m.State() != DriftOK || m.Score() != 0 || m.NumFeatures() != 0 {
		t.Fatal("nil monitor must be a no-op")
	}
	if s := m.Snapshot(); s.State != "ok" {
		t.Fatalf("nil snapshot state %q", s.State)
	}
	var sb strings.Builder
	if err := m.WriteTable(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteTable: %q %v", sb.String(), err)
	}
}

func TestDriftWriteTable(t *testing.T) {
	b := testBaseline()
	m, err := NewDriftMonitor(b, DriftConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Before the window fills: the table reports the warm-up state.
	feed(m, rng, b, 3, nil)
	var warm strings.Builder
	if err := m.WriteTable(&warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "never filled") {
		t.Fatalf("warm-up table: %q", warm.String())
	}
	feed(m, rng, b, 16, func(v []float64) { v[0] += 4 })
	var sb strings.Builder
	if err := m.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"drift: state=", "trace.mean", "trace.std", "symKL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSymmetricKLGaussian(t *testing.T) {
	if kl := symmetricKLGaussian(0, 1, 0, 1); math.Abs(kl) > 1e-12 {
		t.Fatalf("identical Gaussians: %g", kl)
	}
	// Pure mean shift with equal variances: symKL = Δ²/σ².
	if kl := symmetricKLGaussian(0, 2, 3, 2); math.Abs(kl-9.0/4) > 1e-12 {
		t.Fatalf("mean shift: %g, want %g", kl, 9.0/4)
	}
	// Symmetry.
	a, bkl := symmetricKLGaussian(1, 2, 3, 0.5), symmetricKLGaussian(3, 0.5, 1, 2)
	if math.Abs(a-bkl) > 1e-12 {
		t.Fatalf("not symmetric: %g vs %g", a, bkl)
	}
	// Divergence grows with separation.
	if symmetricKLGaussian(0, 1, 1, 1) >= symmetricKLGaussian(0, 1, 2, 1) {
		t.Fatal("not monotone in separation")
	}
}
