//go:build linux

package obs

import "os"

// countOpenFDs returns the number of open file descriptors by listing
// /proc/self/fd, or -1 when the proc filesystem is unavailable.
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
