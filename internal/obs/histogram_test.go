package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/testkit"
)

// maxRelErr is the quantile error bound the geometric layout guarantees: the
// true value and the estimate share a bucket, so they differ by at most one
// growth factor (~19% for DurationBuckets) plus interpolation slack.
const maxRelErr = 0.25

func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Quantile estimates must stay within the layout's relative error bound on
// distributions spanning several orders of magnitude.
func TestHistogramQuantileAccuracy(t *testing.T) {
	cases := []struct {
		name string
		gen  func(i int) float64
	}{
		// Uniform microseconds-to-milliseconds.
		{"uniform", func(i int) float64 { return 1e-6 + float64(i)*1e-6 }},
		// Geometric sweep across 6 decades.
		{"geometric", func(i int) float64 { return 1e-6 * math.Pow(10, 6*float64(i)/9999) }},
		// Bimodal: fast path ~10µs, slow path ~100ms.
		{"bimodal", func(i int) float64 {
			if i%10 == 0 {
				return 0.1 + float64(i)*1e-7
			}
			return 1e-5 + float64(i)*1e-9
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(DurationBuckets())
			vals := make([]float64, 10000)
			for i := range vals {
				vals[i] = tc.gen(i)
				h.Observe(vals[i])
			}
			sort.Float64s(vals)
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
				got := h.Quantile(q)
				want := exactQuantile(vals, q)
				if want == 0 {
					continue
				}
				if !testkit.Close(got, want, maxRelErr, 0) {
					t.Errorf("q=%g: got %g want %g (rel err %.3f > %.2f)",
						q, got, want, math.Abs(got-want)/want, maxRelErr)
				}
			}
			if h.Count() != 10000 {
				t.Fatalf("count = %d", h.Count())
			}
			if h.Min() != vals[0] || h.Max() != vals[len(vals)-1] {
				t.Fatalf("min/max = %g/%g, want %g/%g", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
			}
		})
	}
}

// Out-of-range observations land in the underflow/overflow buckets and keep
// quantiles anchored to the observed extremes.
func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(BucketLayout{Min: 1, Growth: 2, NumBuckets: 4}) // finite range [1, 16)
	h.Observe(0.001)                                                  // underflow
	h.Observe(1000)                                                   // overflow
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); q > 1000 || q < 16 {
		t.Fatalf("overflow quantile %g out of [16, 1000]", q)
	}
	if q := h.Quantile(0.01); q > 1 || q < 0.001 {
		t.Fatalf("underflow quantile %g out of [0.001, 1]", q)
	}
}

// NaN/Inf observations are dropped, and every snapshot field stays finite.
func TestHistogramDropsNonFinite(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations counted: %d", h.Count())
	}
	h.Observe(0.5)
	s := h.Snapshot()
	for name, v := range map[string]float64{
		"sum": s.Sum, "mean": s.Mean, "min": s.Min, "max": s.Max,
		"p50": s.P50, "p95": s.P95, "p99": s.P99,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("snapshot %s = %v not finite", name, v)
		}
	}
}

// Concurrent observers must lose no updates (run under -race in CI).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-5 * float64(1+(g+i)%100))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var sum float64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			sum += 1e-5 * float64(1+(g+i)%100)
		}
	}
	testkit.CloseTo(t, h.Sum(), sum, 1e-9, "concurrent-observe sum")
}
