package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTailSamplerPolicy(t *testing.T) {
	// No latency histogram, rate 0: only forced/error/shed traces survive.
	s := NewTailSampler(0, nil)
	cases := []struct {
		status int
		dur    time.Duration
		forced bool
		keep   bool
		reason string
	}{
		{200, time.Millisecond, true, true, KeepForced},
		{500, time.Millisecond, false, true, KeepError},
		{503, time.Millisecond, false, true, KeepError},
		{429, time.Millisecond, false, true, KeepShed},
		{200, time.Millisecond, false, false, ""},
		{404, time.Millisecond, false, false, ""},
	}
	for _, c := range cases {
		keep, reason := s.Decide(c.status, c.dur, c.forced)
		if keep != c.keep || reason != c.reason {
			t.Errorf("Decide(%d, %v, %v) = (%v, %q), want (%v, %q)",
				c.status, c.dur, c.forced, keep, reason, c.keep, c.reason)
		}
	}

	// A nil sampler keeps only forced traces.
	var nilS *TailSampler
	if keep, reason := nilS.Decide(200, time.Second, true); !keep || reason != KeepForced {
		t.Fatal("nil sampler must keep forced traces")
	}
	if keep, _ := nilS.Decide(500, time.Second, false); keep {
		t.Fatal("nil sampler must drop everything else")
	}

	// Rate 1 keeps healthy traces.
	all := NewTailSampler(1, nil)
	if keep, reason := all.Decide(200, time.Millisecond, false); !keep || reason != KeepRandom {
		t.Fatal("rate 1 should keep healthy traces")
	}
}

func TestTailSamplerSlowRule(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	s := NewTailSampler(0, h)
	s.MinCount = 10

	// Below MinCount the slow rule stays off.
	for i := 0; i < 5; i++ {
		h.Observe(0.001)
	}
	if keep, _ := s.Decide(200, time.Second, false); keep {
		t.Fatal("slow rule should be gated until MinCount observations")
	}
	for i := 0; i < 95; i++ {
		h.Observe(0.001)
	}
	// 1 ms baseline: a 1 s request is far above p95 -> slow.
	keep, reason := s.Decide(200, time.Second, false)
	if !keep || reason != KeepSlow {
		t.Fatalf("slow request not kept: (%v, %q)", keep, reason)
	}
	// A typical request stays dropped.
	if keep, _ := s.Decide(200, 500*time.Microsecond, false); keep {
		t.Fatal("fast request kept by slow rule")
	}
}

func TestTailSamplerRandomRate(t *testing.T) {
	s := NewTailSampler(0.5, nil)
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if keep, reason := s.Decide(200, time.Millisecond, false); keep {
			if reason != KeepRandom {
				t.Fatalf("unexpected reason %q", reason)
			}
			kept++
		}
	}
	if kept < n/3 || kept > 2*n/3 {
		t.Fatalf("rate 0.5 kept %d of %d — generator broken", kept, n)
	}
}

func exportedTrace(name string) ExportedTrace {
	tr := NewTracer()
	tr.SetTraceContext(NewTraceID(), SpanID{})
	_, root := Span(WithTracer(context.Background(), tr), name)
	root.End()
	out := tr.Export()
	out.Route = name
	return out
}

func TestTraceExporterWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	e := NewTraceExporter(&buf, 16)
	for i := 0; i < 5; i++ {
		if !e.Export(exportedTrace(fmt.Sprintf("r%d", i))) {
			t.Fatalf("export %d rejected", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExportedTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("wrote %d traces, want 5", len(got))
	}
	for i, tr := range got {
		if tr.Route != fmt.Sprintf("r%d", i) {
			t.Fatalf("order broken at %d: %q", i, tr.Route)
		}
	}
	if e.Exported() != 5 || e.Dropped() != 0 {
		t.Fatalf("counters: exported=%d dropped=%d", e.Exported(), e.Dropped())
	}
}

// blockingWriter blocks every Write until released — a stand-in for a stalled
// disk that backs the queue up.
type blockingWriter struct {
	release chan struct{}
	wrote   chan struct{}
	once    sync.Once
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.wrote) })
	<-w.release
	return len(p), nil
}

func TestTraceExporterNeverBlocksAndCountsDrops(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{}), wrote: make(chan struct{})}
	e := NewTraceExporter(bw, 2)
	// First export is pulled by the writer goroutine and blocks inside Write.
	if !e.Export(exportedTrace("a")) {
		t.Fatal("first export rejected")
	}
	<-bw.wrote
	// Fill the queue, then overflow it: Export must return immediately.
	for i := 0; i < 2; i++ {
		e.Export(exportedTrace("queued"))
	}
	done := make(chan bool, 1)
	go func() { done <- e.Export(exportedTrace("overflow")) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("overflow export claimed success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Export blocked on a full queue")
	}
	if e.Dropped() < 1 {
		t.Fatal("drop not counted")
	}
	close(bw.release)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExporterCloseSemantics(t *testing.T) {
	var buf bytes.Buffer
	e := NewTraceExporter(&buf, 4)
	e.Export(exportedTrace("a"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Export after Close must not panic and must report failure.
	if e.Export(exportedTrace("late")) {
		t.Fatal("export accepted after Close")
	}
	// Double Close is safe.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExportedTraces(&buf)
	if err != nil || len(got) != 1 {
		t.Fatalf("drain lost traces: %d, %v", len(got), err)
	}

	var nilE *TraceExporter
	if nilE.Export(exportedTrace("x")) {
		t.Fatal("nil exporter accepted a trace")
	}
	if err := nilE.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExporterConcurrent(t *testing.T) {
	var buf safeBuffer
	e := NewTraceExporter(&buf, 1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Export(exportedTrace(fmt.Sprintf("w%d", w)))
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExportedTraces(&buf)
	if err != nil {
		t.Fatalf("concurrent export produced invalid JSONL: %v", err)
	}
	if int64(len(got)) != e.Exported() || len(got)+int(e.Dropped()) != 400 {
		t.Fatalf("accounting: %d written, %d exported, %d dropped", len(got), e.Exported(), e.Dropped())
	}
}

// safeBuffer is a bytes.Buffer with a lock: the exporter goroutine writes
// while the test reads after Close, and the race detector wants proof.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Read(p)
}

var _ io.Reader = (*safeBuffer)(nil)

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	if h.Exemplar() != nil {
		t.Fatal("fresh histogram should have no exemplar")
	}
	h.ObserveWithExemplar(0.25, "")
	if h.Exemplar() != nil {
		t.Fatal("empty trace ID must not set an exemplar")
	}
	if h.Count() != 1 {
		t.Fatal("observation lost")
	}
	h.ObserveWithExemplar(0.5, "aabbccdd")
	ex := h.Exemplar()
	if ex == nil || ex.TraceID != "aabbccdd" || ex.Value != 0.5 {
		t.Fatalf("exemplar = %+v", ex)
	}
	h.ObserveWithExemplar(0.75, "eeff0011")
	if got := h.Exemplar(); got.TraceID != "eeff0011" {
		t.Fatal("latest traced observation should win")
	}
	snap := h.Snapshot()
	if snap.Exemplar == nil || snap.Exemplar.TraceID != "eeff0011" {
		t.Fatalf("snapshot exemplar = %+v", snap.Exemplar)
	}

	var nilH *Histogram
	nilH.ObserveWithExemplar(1, "x") // must not panic
	if nilH.Exemplar() != nil {
		t.Fatal("nil histogram exemplar")
	}
}

// TestPrometheusExemplarRendering pins that traced observations never leak
// into the classic text exposition: a 0.0.4 parser reads anything after the
// value as a timestamp and fails the scrape, and OpenMetrics forbids
// exemplars on summary lines, so exemplars live in the JSON snapshot only.
func TestPrometheusExemplarRendering(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("req.seconds", DurationBuckets(), "route").
		With("disassemble").ObserveWithExemplar(0.125, "4bf92f3577b34da6a3ce929d0e0e4736")
	r.Histogram("plain.seconds").ObserveWithExemplar(0.25, "00f067aa0ba902b700f067aa0ba902b7")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "# {") || strings.Contains(out, "trace_id") {
		t.Fatalf("exemplar syntax leaked into the text exposition:\n%s", out)
	}
	if !strings.Contains(out, `req_seconds_count{route="disassemble"} 1`) ||
		!strings.Contains(out, "plain_seconds_count 1") {
		t.Fatalf("traced observations missing from _count series:\n%s", out)
	}
	// The traces stay reachable through the JSON snapshot.
	snap := r.Snapshot()
	ex := snap.LabeledHistograms["req.seconds"][`route="disassemble"`].Exemplar
	if ex == nil || ex.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("snapshot exemplar = %+v", ex)
	}
	checkPromFormat(t, out)
}
