package obs

import (
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/testkit"
)

// optionsEqual compares Options treating NaN float fields as equal to each
// other — flag.Float64Var accepts "NaN", which would otherwise make the
// projection check fail on itself.
func optionsEqual(a, b Options) bool {
	if math.IsNaN(a.DriftWarn) && math.IsNaN(b.DriftWarn) {
		a.DriftWarn, b.DriftWarn = 0, 0
	}
	if math.IsNaN(a.DriftCritical) && math.IsNaN(b.DriftCritical) {
		a.DriftCritical, b.DriftCritical = 0, 0
	}
	return a == b
}

// TestFuzzCorpusCommitted regenerates the committed seed corpus under
// testdata/fuzz when REGEN_FUZZ_CORPUS is set, and otherwise asserts it is
// present so the CI fuzz-smoke job always starts from real seeds.
func TestFuzzCorpusCommitted(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "full_set",
			"-metrics-out\n-\n-log-format\njson")
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "pprof",
			"-pprof\nlocalhost:6060")
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "outputs",
			"-manifest-out\nrun.json\n-trace-out\ntrace.json")
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "bad_format",
			"-log-format\nbogus")
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "equals_form",
			"--metrics-out=out.json")
		testkit.WriteCorpus(t, "FuzzOptionsFlagParsing", "drift",
			"-decision-log\nd.jsonl\n-decision-sample\n4\n-drift-warn\n0.5\n-drift-window\n32")
		return
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzOptionsFlagParsing"))
	if err != nil || len(ents) == 0 {
		t.Errorf("no committed seed corpus for FuzzOptionsFlagParsing (REGEN_FUZZ_CORPUS=1 to create): %v", err)
	}
}

// FuzzOptionsFlagParsing drives the shared CLI flag surface (the -metrics-out
// / -trace-out / -manifest-out / -log-format / -pprof set both binaries
// register) with arbitrary argument vectors, newline-separated. The parser
// must never panic, and any accepted argv must parse identically when the
// resulting Options are rendered back to flags — parsing is a projection.
func FuzzOptionsFlagParsing(f *testing.F) {
	f.Add("-metrics-out\n-\n-log-format\njson")
	f.Add("-pprof\nlocalhost:6060")
	f.Add("-manifest-out\nrun.json\n-trace-out\ntrace.json")
	f.Add("-log-format\nbogus")
	f.Add("-unknown-flag")
	f.Add("--metrics-out=out.json")
	f.Add("")
	f.Add("-metrics-out")
	f.Add("-decision-log\nd.jsonl\n-decision-sample\n4\n-drift-warn\n0.5\n-drift-window\n32")
	f.Fuzz(func(t *testing.T, argBlob string) {
		var args []string
		for _, a := range strings.Split(argBlob, "\n") {
			if a != "" {
				args = append(args, a)
			}
		}
		var o Options
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		o.Register(fs)
		if err := fs.Parse(args); err != nil {
			return
		}
		if fs.NArg() > 0 {
			return // positional remainder; flag values may legitimately repeat there
		}

		canonical := []string{
			"-metrics-out", o.MetricsOut,
			"-trace-out", o.TraceOut,
			"-manifest-out", o.ManifestOut,
			"-log-format", o.LogFormat,
			"-pprof", o.PprofAddr,
			"-decision-log", o.DecisionLog,
			"-decision-sample", strconv.Itoa(o.DecisionSample),
			"-drift-window", strconv.Itoa(o.DriftWindow),
			"-drift-warn", strconv.FormatFloat(o.DriftWarn, 'g', -1, 64),
			"-drift-critical", strconv.FormatFloat(o.DriftCritical, 'g', -1, 64),
		}
		var o2 Options
		fs2 := flag.NewFlagSet("fuzz2", flag.ContinueOnError)
		fs2.SetOutput(io.Discard)
		o2.Register(fs2)
		if err := fs2.Parse(canonical); err != nil {
			t.Fatalf("re-rendered flags failed to parse: %v (from %q)", err, args)
		}
		if !optionsEqual(o, o2) {
			t.Fatalf("flag parse not a projection: %+v -> %+v (args %q)", o, o2, args)
		}

		// The log format gate must agree with SetupLogging's validation:
		// whatever parsed is either accepted or rejected deterministically,
		// never a panic. io.Discard keeps the process logger quiet.
		err := SetupLogging(o.LogFormat, io.Discard, false)
		validFormat := o.LogFormat == "" || o.LogFormat == "text" || o.LogFormat == "json"
		if (err == nil) != validFormat {
			t.Fatalf("SetupLogging(%q) = %v, validity says %v", o.LogFormat, err, validFormat)
		}
	})
}
