package obs

import (
	"math"
	"sync/atomic"
)

// BucketLayout describes a geometric fixed-bucket histogram: bucket i
// (1-based) covers [Min·Growth^(i-1), Min·Growth^i), bucket 0 is the
// underflow range (-inf, Min) and bucket NumBuckets+1 the overflow range.
// Geometric buckets bound the relative quantile error by the growth factor.
type BucketLayout struct {
	Min        float64 // lower bound of the first finite bucket (> 0)
	Growth     float64 // per-bucket growth factor (> 1)
	NumBuckets int     // finite buckets between underflow and overflow
}

// DurationBuckets is the default layout for timings in seconds: 1 µs to
// ~1000 s in 120 buckets (growth ≈ 1.19, so quantiles are accurate to ~19%).
func DurationBuckets() BucketLayout {
	return BucketLayout{Min: 1e-6, Growth: math.Pow(2, 0.25), NumBuckets: 120}
}

// UnitBuckets is a layout for values in [~1e-4, ~10] such as accuracies and
// scores: 64 buckets, growth ≈ 1.20.
func UnitBuckets() BucketLayout {
	return BucketLayout{Min: 1e-4, Growth: math.Pow(10, 1.0/12), NumBuckets: 64}
}

// ByteBuckets is a layout for payload sizes in bytes: 64 B to ~4 GiB in 52
// buckets (growth ≈ 1.41, two buckets per power of two).
func ByteBuckets() BucketLayout {
	return BucketLayout{Min: 64, Growth: math.Pow(2, 0.5), NumBuckets: 52}
}

// Histogram is a streaming fixed-bucket histogram safe for concurrent
// Observe calls from any number of goroutines; every update is a handful of
// atomic operations, no locks. A nil *Histogram is a valid no-op instrument.
type Histogram struct {
	layout  BucketLayout
	invLogG float64
	counts  []atomic.Uint64 // len NumBuckets+2: underflow, finite..., overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits; valid only when count > 0
	maxBits atomic.Uint64

	exemplar atomic.Pointer[Exemplar] // most recent traced observation, if any
}

// Exemplar links one recorded observation to the trace that produced it —
// the OpenMetrics exemplar concept. The latest traced observation wins;
// exemplars are debugging breadcrumbs, not statistics, so last-write-wins is
// exactly the "give me a recent trace for this latency" query they serve.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// NewHistogram builds a histogram with the given layout. Invalid layouts
// fall back to DurationBuckets.
func NewHistogram(layout BucketLayout) *Histogram {
	if layout.Min <= 0 || layout.Growth <= 1 || layout.NumBuckets < 1 {
		layout = DurationBuckets()
	}
	h := &Histogram{
		layout:  layout,
		invLogG: 1 / math.Log(layout.Growth),
		counts:  make([]atomic.Uint64, layout.NumBuckets+2),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a value to its bucket index.
func (h *Histogram) bucketOf(v float64) int {
	if v < h.layout.Min {
		return 0
	}
	i := int(math.Log(v/h.layout.Min)*h.invLogG) + 1
	if i > h.layout.NumBuckets {
		i = h.layout.NumBuckets + 1
	}
	return i
}

// lowerBound returns the lower edge of bucket i (i >= 1).
func (h *Histogram) lowerBound(i int) float64 {
	return h.layout.Min * math.Pow(h.layout.Growth, float64(i-1))
}

// Observe records one value. NaN/Inf observations are dropped — they would
// poison the sum and leak into reports. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the histogram's exemplar. One pointer store past Observe —
// cheap enough for every request once tracing is on. No-op on nil.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" && !math.IsNaN(v) && !math.IsInf(v, 0) {
		h.exemplar.Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplar returns the most recent traced observation, or nil.
func (h *Histogram) Exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.exemplar.Load()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts,
// interpolating geometrically inside the selected bucket; the estimate's
// relative error is bounded by the layout's growth factor. Returns 0 when
// the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			lo, hi := h.bucketEdges(i)
			// Geometric interpolation inside the bucket; underflow/overflow
			// buckets fall back to the observed extremes.
			return lo * math.Pow(hi/lo, frac)
		}
		cum += n
	}
	return h.Max()
}

// bucketEdges returns finite interpolation edges for bucket i, clamping the
// open-ended underflow/overflow buckets to the observed min/max.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	switch {
	case i == 0:
		lo, hi = h.Min(), h.layout.Min
		if lo <= 0 || lo > hi {
			lo = hi
		}
	case i > h.layout.NumBuckets:
		lo = h.lowerBound(h.layout.NumBuckets + 1)
		hi = h.Max()
		if hi < lo {
			hi = lo
		}
	default:
		lo, hi = h.lowerBound(i), h.lowerBound(i+1)
	}
	return lo, hi
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// HistogramSnapshot is the JSON-serializable summary of a histogram. All
// fields are finite by construction.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Exemplar carries the most recent traced observation, linking this
	// series to a concrete trace ID. Omitted when no traced observation was
	// recorded.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot summarizes the histogram. Zero-valued for nil/empty histograms.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:    h.Count(),
		Sum:      h.Sum(),
		Min:      h.Min(),
		Max:      h.Max(),
		P50:      h.Quantile(0.50),
		P95:      h.Quantile(0.95),
		P99:      h.Quantile(0.99),
		Exemplar: h.exemplar.Load(),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}
