// Package obs is the pipeline's observability core: a metrics registry
// (atomic counters, gauges, streaming histograms), lightweight span tracing
// threaded through the existing context chains, and a structured RunManifest
// emitted at the end of a train/disassemble run.
//
// Design rules:
//
//   - Dependency-free: obs imports only the standard library, so every layer
//     (dsp, features, ml, parallel, power, core) can instrument itself
//     without cycles.
//   - Zero-cost when disabled: instrument handles are plain pointers that are
//     nil until a registry is installed with SetDefault. Every instrument
//     method is a nil-receiver no-op, so the disabled hot path is a single
//     predictable nil check — no locks, no map lookups, no time syscalls.
//   - Lock-free when enabled: counters and gauges are single atomics;
//     histograms are fixed-bucket atomic arrays. The registry mutex guards
//     only instrument creation and snapshots, never updates.
//
// Installation: packages register an OnDefault hook at init that resolves
// their instrument handles; SetDefault(registry) re-runs every hook. Each
// instrumented package keeps its handle set behind an atomic pointer that
// the hook swaps wholesale, so SetDefault is safe to call while pipeline
// work is running on other goroutines: in-flight operations finish against
// the handle set they loaded, new operations see the new one. A long-running
// server still normally installs its registry once at startup — rebinding
// mid-run is safe, not free: updates racing a swap land in whichever
// registry's instrument they loaded first.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is a
// valid no-op instrument — the disabled fast path.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone, always-live counter. Attach it to a
// registry with Registry.Attach to include it in snapshots.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (worker counts, cache sizes,
// best-score-so-far). A nil *Gauge is a valid no-op instrument.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone, always-live gauge. Attach it to a registry
// with Registry.AttachGauge to include it in snapshots.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v. Non-finite values are clamped to 0 so no NaN/Inf can leak
// into snapshots or manifests. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via a CAS loop. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64frombits(old) + delta
		if math.IsNaN(nw) || math.IsInf(nw, 0) {
			nw = 0
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry names and snapshots a set of instruments. All methods are safe
// for concurrent use; instrument updates themselves never touch the registry
// lock. A nil *Registry hands out nil instruments, which are no-ops — the
// disabled mode.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		cvecs:    map[string]*CounterVec{},
		gvecs:    map[string]*GaugeVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Attach registers an externally created (always-live) counter under name,
// so cumulative process-wide counts — like the CWT transform counter —
// appear in snapshots. No-op on a nil registry.
func (r *Registry) Attach(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// AttachGauge registers an externally created (always-live) gauge under
// name — the gauge analogue of Attach, so process-lifetime values owned by
// another subsystem join snapshots. No-op on a nil registry.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// AttachHistogram registers an externally created (always-live) histogram
// under name, so distributions accumulated outside any registry join
// snapshots. No-op on a nil registry.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default duration-seconds
// bucket layout, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, DurationBuckets())
}

// HistogramWith is Histogram with an explicit bucket layout. The layout of
// an existing histogram is never changed — the first creation wins.
func (r *Registry) HistogramWith(name string, layout BucketLayout) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(layout)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-serializable view of every instrument.
// Maps serialize with sorted keys, so the JSON field order is stable.
// Labeled instruments nest: vec name → canonical `key="value",...` label
// string → child value, the same identity the Prometheus exposition renders.
type Snapshot struct {
	Counters          map[string]int64                        `json:"counters,omitempty"`
	Gauges            map[string]float64                      `json:"gauges,omitempty"`
	Histograms        map[string]HistogramSnapshot            `json:"histograms,omitempty"`
	LabeledCounters   map[string]map[string]int64             `json:"labeled_counters,omitempty"`
	LabeledGauges     map[string]map[string]float64           `json:"labeled_gauges,omitempty"`
	LabeledHistograms map[string]map[string]HistogramSnapshot `json:"labeled_histograms,omitempty"`
}

// Snapshot captures the current value of every instrument. Safe to call
// concurrently with updates; each value is read atomically. Returns nil on a
// nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	r.labeledSnapshotLocked(s)
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// sortedKeys returns the sorted keys of a map for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- default registry + handle-resolution hooks ----

var (
	defaultReg atomic.Pointer[Registry]
	hookMu     sync.Mutex
	hooks      []func(*Registry)
	// setMu serializes whole SetDefault calls so two concurrent installs
	// cannot interleave their hook runs and leave different packages bound
	// to different registries.
	setMu sync.Mutex
)

// Default returns the installed registry, or nil when observability is
// disabled.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r (nil disables) and re-runs every OnDefault hook so
// packages re-resolve their instrument handles. Safe to call concurrently
// with instrumented pipeline work: every package swaps its handle set
// atomically, so racing updates land in either the old or the new registry,
// never in a torn handle set. Typically still called once at process start.
func SetDefault(r *Registry) {
	setMu.Lock()
	defer setMu.Unlock()
	defaultReg.Store(r)
	hookMu.Lock()
	hs := make([]func(*Registry), len(hooks))
	copy(hs, hooks)
	hookMu.Unlock()
	for _, h := range hs {
		h(r)
	}
}

// OnDefault registers a handle-resolution hook and immediately invokes it
// with the current default registry (possibly nil). Instrumented packages
// call this from init to bind their counter/gauge/histogram handles.
func OnDefault(h func(*Registry)) {
	hookMu.Lock()
	hooks = append(hooks, h)
	hookMu.Unlock()
	h(Default())
}
