package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus text
// exposition format (version 0.0.4). Counters map to counters, gauges to
// gauges, and histograms to summaries (quantile series plus _sum/_count) —
// the fixed-bucket layout already reduced the data, so summaries carry the
// same information with far fewer series than native histogram buckets.
// Labeled families render with real label syntax (`name{key="value",...}`)
// with values escaped per the format (backslash, quote, newline); a
// HistogramVec child's quantile label joins its own labels. Metric names
// have characters outside [a-zA-Z0-9_:] replaced by '_'. Output ordering is
// deterministic: sections in a fixed order, names and label sets sorted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.LabeledCounters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		children := s.LabeledCounters[name]
		for _, labels := range sortedKeys(children) {
			if _, err := fmt.Fprintf(w, "%s{%s} %d\n", pn, labels, children[labels]); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.LabeledGauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		children := s.LabeledGauges[name]
		for _, labels := range sortedKeys(children) {
			if _, err := fmt.Fprintf(w, "%s{%s} %g\n", pn, labels, children[labels]); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromSummary(w, promName(name), "", s.Histograms[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.LabeledHistograms) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		children := s.LabeledHistograms[name]
		for _, labels := range sortedKeys(children) {
			if err := writePromSummaryseries(w, pn, labels, children[labels]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromSummary writes the TYPE line and series of one summary.
func writePromSummary(w io.Writer, pn, labels string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
		return err
	}
	return writePromSummaryseries(w, pn, labels, h)
}

// writePromSummaryseries writes the quantile/_sum/_count series of one
// summary child. labels is the pre-rendered `key="value",...` string (empty
// for unlabeled histograms); the quantile label is appended to it.
func writePromSummaryseries(w io.Writer, pn, labels string, h HistogramSnapshot) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
		if _, err := fmt.Fprintf(w, "%s{%s%squantile=%q} %g\n", pn, labels, sep, q.q, q.v); err != nil {
			return err
		}
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// Exemplars are deliberately absent from this exposition: the classic
	// text format (version 0.0.4) parses any token after the value as a
	// timestamp and fails the scrape on `# {...}`, and OpenMetrics permits
	// exemplars only on counter-total and histogram-bucket lines — never on
	// summary series like these. Traced observations remain reachable via
	// the "exemplar" field in the JSON snapshot (/metrics.json).
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", pn, labels, h.Sum, pn, labels, h.Count); err != nil {
		return err
	}
	return nil
}

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
