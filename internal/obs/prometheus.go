package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus text
// exposition format (version 0.0.4). Counters map to counters, gauges to
// gauges, and histograms to summaries (quantile series plus _sum/_count) —
// the fixed-bucket layout already reduced the data, so summaries carry the
// same information with far fewer series than native histogram buckets.
// Metric names have characters outside [a-zA-Z0-9_:] replaced by '_'.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", pn, q.q, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
