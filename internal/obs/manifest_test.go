package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenManifest builds a fully deterministic manifest: build info is set by
// hand (CollectBuildInfo would leak the host toolchain into the golden file)
// and timings are fixed.
func goldenManifest() *RunManifest {
	r := NewRegistry()
	r.Counter("dsp.cwt.transforms").Add(42)
	r.Gauge("parallel.workers").Set(2)
	r.Histogram("features.fit.seconds").Observe(0.5)

	type levelStats struct {
		Accuracy float64   `json:"accuracy"`
		Skew     float64   `json:"skew"`
		Scores   []float64 `json:"scores"`
	}
	m := &RunManifest{
		SchemaVersion: ManifestSchemaVersion,
		Kind:          "golden",
		Build: BuildInfo{
			GoVersion:   "go1.22.0",
			Path:        "repro",
			Version:     "(devel)",
			VCSRevision: "deadbeef",
			NumCPU:      2,
		},
		Workers:     2,
		WallSeconds: 1.5,
		CPUSeconds:  2.25,
		Config: map[string]any{
			"programs": 4,
			"gamma":    math.NaN(), // must scrub to null
		},
		Report: levelStats{
			Accuracy: 0.9921875,
			Skew:     math.Inf(1), // must scrub to null
			Scores:   []float64{1, math.Inf(-1), 0.5},
		},
		Metrics: r.Snapshot(),
		Trace: []*SpanNode{{
			Name: "core.train", StartMS: 0, WallMS: 1500, CPUMS: 2250,
			Children: []*SpanNode{{
				Name: "features.fit", StartMS: 10, WallMS: 900,
				BusyMS: 1700, Workers: 2, Utilization: 0.944,
			}},
		}},
		Notes: map[string]any{"seed": 1, "nan_note": math.NaN()},
	}
	return m
}

// The manifest JSON must be byte-stable and free of NaN/Inf — golden-file
// checked so schema drift is an explicit diff, not a silent change.
func TestManifestGoldenJSON(t *testing.T) {
	got, err := goldenManifest().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(got) {
		t.Fatalf("manifest JSON invalid:\n%s", got)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(string(got), bad) {
			t.Fatalf("manifest JSON leaked %s:\n%s", bad, got)
		}
	}
	again, err := goldenManifest().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("two identical manifests marshalled differently")
	}

	golden := filepath.Join("testdata", "manifest_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest JSON drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Scrub handles every value shape the config/report structs can contain.
func TestScrub(t *testing.T) {
	type inner struct {
		A float64 `json:"a"`
		B string  // no tag: field name key
		c int     // unexported: dropped
	}
	in := map[string]any{
		"nan":    math.NaN(),
		"inf":    math.Inf(-1),
		"nested": &inner{A: math.NaN(), B: "ok", c: 3},
		"list":   []float64{1, math.NaN()},
		"fn":     func() {}, // unrepresentable: dropped to null
	}
	out, ok := Scrub(in).(map[string]any)
	if !ok {
		t.Fatalf("Scrub returned %T", Scrub(in))
	}
	if out["nan"] != nil || out["inf"] != nil || out["fn"] != nil {
		t.Fatalf("non-finite or unrepresentable values survived: %v", out)
	}
	nested, ok := out["nested"].(map[string]any)
	if !ok {
		t.Fatalf("nested = %T", out["nested"])
	}
	if nested["a"] != nil || nested["B"] != "ok" {
		t.Fatalf("nested scrub wrong: %v", nested)
	}
	if _, leaked := nested["c"]; leaked {
		t.Fatal("unexported field leaked")
	}
	list, ok := out["list"].([]any)
	if !ok || len(list) != 2 || list[0] != 1.0 || list[1] != nil {
		t.Fatalf("list scrub wrong: %v", out["list"])
	}
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("scrubbed value not marshallable: %v", err)
	}
}
