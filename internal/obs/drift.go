package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// DriftBaseline is the training-time reference distribution the drift
// monitor compares live traffic against: per-feature mean and standard
// deviation captured when the template was fitted.
type DriftBaseline struct {
	// Names labels the features for reports; optional (indices are used
	// when absent or mismatched in length).
	Names []string
	Mean  []float64
	Std   []float64
}

// DriftConfig tunes the sliding-window drift monitor.
type DriftConfig struct {
	// Window is the number of most recent traces the live statistics are
	// computed over. Defaults to 64.
	Window int
	// Warn is the symmetric-KL score at which the monitor enters DriftWarn.
	// Defaults to 1.0.
	Warn float64
	// Critical is the score at which it enters DriftCritical. Defaults
	// to 5.0.
	Critical float64
}

// Default drift thresholds: on the synthetic campaign an in-distribution
// 64-trace window scores ≲0.3 on every feature while the paper's CSA
// covariate shifts (DC offset, gain change) push the worst feature's
// symmetric KL multiple orders of magnitude higher, so 1.0/5.0 separate
// cleanly.
const (
	DefaultDriftWindow   = 64
	DefaultDriftWarn     = 1.0
	DefaultDriftCritical = 5.0
)

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = DefaultDriftWindow
	}
	if c.Warn <= 0 {
		c.Warn = DefaultDriftWarn
	}
	if c.Critical <= 0 {
		c.Critical = DefaultDriftCritical
	}
	if c.Critical < c.Warn {
		c.Critical = c.Warn
	}
	return c
}

// DriftState is the monitor's alert level.
type DriftState int

const (
	// DriftOK: the live window is statistically consistent with training.
	DriftOK DriftState = iota
	// DriftWarn: the worst feature's window score crossed the warn
	// threshold — accuracy may be degrading.
	DriftWarn
	// DriftCritical: the score crossed the critical threshold — the paper's
	// covariate-shift regime, where accuracy collapses without CSA.
	DriftCritical
)

// String implements fmt.Stringer.
func (s DriftState) String() string {
	switch s {
	case DriftOK:
		return "ok"
	case DriftWarn:
		return "warn"
	case DriftCritical:
		return "critical"
	default:
		return fmt.Sprintf("DriftState(%d)", int(s))
	}
}

// minDriftSigma floors standard deviations so constant features cannot
// produce infinite z-shifts or KL scores.
const minDriftSigma = 1e-12

// DriftMonitor detects covariate shift — the paper's headline failure mode,
// where DC-offset/gain changes between training and live acquisition
// silently collapse accuracy — by comparing a sliding window of live
// drift-feature vectors against the training baseline. Per feature it
// computes the z-shift of the window mean and the symmetric KL divergence
// between the training and window Gaussians; the drift score is the worst
// feature's symmetric KL. All methods are safe for concurrent use and no-ops
// on a nil receiver.
type DriftMonitor struct {
	mu   sync.Mutex
	cfg  DriftConfig
	base DriftBaseline

	ring   [][]float64 // window × nfeat, ring buffer
	next   int         // ring slot the next observation lands in
	filled int         // observations currently in the ring (≤ Window)
	total  int64       // observations ever seen
	sum    []float64   // per-feature running sum over the ring
	sumSq  []float64   // per-feature running sum of squares over the ring

	score   float64 // worst-feature symmetric KL of the latest full window
	maxZ    float64 // worst-feature |z| of the latest full window
	worst   int     // feature index attaining score
	windows int64   // completed (full-ring) evaluations
	state   DriftState
}

// NewDriftMonitor builds a monitor over the given baseline. The baseline
// must have matching, non-empty Mean/Std; standard deviations are floored
// to keep scores finite.
func NewDriftMonitor(base DriftBaseline, cfg DriftConfig) (*DriftMonitor, error) {
	if len(base.Mean) == 0 || len(base.Mean) != len(base.Std) {
		return nil, fmt.Errorf("obs: drift baseline needs matching mean/std, got %d/%d", len(base.Mean), len(base.Std))
	}
	std := make([]float64, len(base.Std))
	for i, s := range base.Std {
		if !(s > minDriftSigma) { // also catches NaN
			s = minDriftSigma
		}
		std[i] = s
	}
	base.Std = std
	cfg = cfg.withDefaults()
	n := len(base.Mean)
	return &DriftMonitor{
		cfg:   cfg,
		base:  base,
		ring:  make([][]float64, cfg.Window),
		sum:   make([]float64, n),
		sumSq: make([]float64, n),
	}, nil
}

// NumFeatures returns the baseline dimensionality (0 for nil).
func (d *DriftMonitor) NumFeatures() int {
	if d == nil {
		return 0
	}
	return len(d.base.Mean)
}

// Config returns the effective (defaulted) configuration.
func (d *DriftMonitor) Config() DriftConfig {
	if d == nil {
		return DriftConfig{}
	}
	return d.cfg
}

// Observe pushes one live drift-feature vector into the window and, once
// the window is full, re-evaluates the drift score and alert state. Vectors
// of the wrong dimension or containing non-finite values are dropped. No-op
// on a nil receiver.
func (d *DriftMonitor) Observe(v []float64) {
	if d == nil || len(v) != len(d.base.Mean) {
		return
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	slot := d.ring[d.next]
	if slot == nil {
		slot = make([]float64, len(v))
		d.ring[d.next] = slot
	} else {
		for j, old := range slot {
			d.sum[j] -= old
			d.sumSq[j] -= old * old
		}
	}
	copy(slot, v)
	for j, x := range v {
		d.sum[j] += x
		d.sumSq[j] += x * x
	}
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
	d.total++
	if d.filled == len(d.ring) {
		d.evaluateLocked()
	}
}

// evaluateLocked recomputes score/maxZ/state from the full ring. Caller
// holds d.mu.
func (d *DriftMonitor) evaluateLocked() {
	n := float64(d.filled)
	worst, score, maxZ := 0, 0.0, 0.0
	for j := range d.sum {
		mean := d.sum[j] / n
		variance := d.sumSq[j]/n - mean*mean
		if variance < minDriftSigma {
			variance = minDriftSigma
		}
		std := math.Sqrt(variance)
		z := math.Abs(mean-d.base.Mean[j]) / d.base.Std[j]
		kl := symmetricKLGaussian(d.base.Mean[j], d.base.Std[j], mean, std)
		if z > maxZ {
			maxZ = z
		}
		if kl > score || j == 0 {
			score, worst = kl, j
		}
	}
	d.score, d.maxZ, d.worst = score, maxZ, worst
	d.windows++
	switch {
	case score >= d.cfg.Critical:
		d.state = DriftCritical
	case score >= d.cfg.Warn:
		d.state = DriftWarn
	default:
		d.state = DriftOK
	}
	m := obsMet()
	m.driftWindows.Inc()
	m.driftScore.Set(score)
	m.driftZMax.Set(maxZ)
	m.driftAlert.Set(float64(d.state))
	m.driftScoreHist.Observe(score)
}

// symmetricKLGaussian is the symmetric Kullback–Leibler divergence between
// two univariate Gaussians (inlined so obs stays dependency-free):
// KL(p‖q)+KL(q‖p) = (σp²+Δ²)/(2σq²) + (σq²+Δ²)/(2σp²) − 1, Δ = μp−μq.
func symmetricKLGaussian(mu0, sd0, mu1, sd1 float64) float64 {
	v0, v1 := sd0*sd0, sd1*sd1
	d := mu0 - mu1
	return (v0+d*d)/(2*v1) + (v1+d*d)/(2*v0) - 1
}

// State returns the current alert level (DriftOK for nil or warming up).
func (d *DriftMonitor) State() DriftState {
	if d == nil {
		return DriftOK
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Score returns the latest full-window drift score (0 while warming up).
func (d *DriftMonitor) Score() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.score
}

// DriftFeature is one feature's row in a DriftSnapshot.
type DriftFeature struct {
	Name       string  `json:"name"`
	BaseMean   float64 `json:"base_mean"`
	BaseStd    float64 `json:"base_std"`
	WindowMean float64 `json:"window_mean"`
	WindowStd  float64 `json:"window_std"`
	ZShift     float64 `json:"z_shift"`
	SymKL      float64 `json:"sym_kl"`
}

// DriftSnapshot is the JSON-serializable state of the monitor.
type DriftSnapshot struct {
	State        string         `json:"state"`
	Score        float64        `json:"score"`
	MaxZ         float64        `json:"max_z"`
	WorstFeature string         `json:"worst_feature,omitempty"`
	Window       int            `json:"window"`
	Warn         float64        `json:"warn"`
	Critical     float64        `json:"critical"`
	Observed     int64          `json:"observed"`
	Windows      int64          `json:"windows"`
	Features     []DriftFeature `json:"features,omitempty"`
}

// featureName returns the display name of feature j.
func (d *DriftMonitor) featureName(j int) string {
	if j < len(d.base.Names) && d.base.Names[j] != "" {
		return d.base.Names[j]
	}
	return fmt.Sprintf("f%d", j)
}

// Snapshot captures the monitor state, including per-feature rows when the
// window has filled at least once. Zero-valued on nil.
func (d *DriftMonitor) Snapshot() DriftSnapshot {
	if d == nil {
		return DriftSnapshot{State: DriftOK.String()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DriftSnapshot{
		State:    d.state.String(),
		Score:    d.score,
		MaxZ:     d.maxZ,
		Window:   d.cfg.Window,
		Warn:     d.cfg.Warn,
		Critical: d.cfg.Critical,
		Observed: d.total,
		Windows:  d.windows,
	}
	if d.windows == 0 {
		return s
	}
	s.WorstFeature = d.featureName(d.worst)
	n := float64(d.filled)
	for j := range d.sum {
		mean := d.sum[j] / n
		variance := d.sumSq[j]/n - mean*mean
		if variance < minDriftSigma {
			variance = minDriftSigma
		}
		std := math.Sqrt(variance)
		s.Features = append(s.Features, DriftFeature{
			Name:       d.featureName(j),
			BaseMean:   d.base.Mean[j],
			BaseStd:    d.base.Std[j],
			WindowMean: mean,
			WindowStd:  std,
			ZShift:     (mean - d.base.Mean[j]) / d.base.Std[j],
			SymKL:      symmetricKLGaussian(d.base.Mean[j], d.base.Std[j], mean, std),
		})
	}
	return s
}

// WriteTable renders the drift summary as a human-readable table — the
// end-of-run stderr report. Features are printed worst-first, capped at the
// ten highest scores. No output on a nil monitor or before the first full
// window.
func (d *DriftMonitor) WriteTable(w io.Writer) error {
	s := d.Snapshot()
	if s.Windows == 0 {
		if d != nil && s.Observed > 0 {
			_, err := fmt.Fprintf(w, "drift: %d traces observed, window (%d) never filled\n", s.Observed, s.Window)
			return err
		}
		return nil
	}
	if _, err := fmt.Fprintf(w, "drift: state=%s score=%.3g max|z|=%.3g (warn %.3g, critical %.3g, window %d, %d traces)\n",
		s.State, s.Score, s.MaxZ, s.Warn, s.Critical, s.Window, s.Observed); err != nil {
		return err
	}
	feats := s.Features
	for i := 1; i < len(feats); i++ { // insertion sort, worst SymKL first
		for j := i; j > 0 && feats[j].SymKL > feats[j-1].SymKL; j-- {
			feats[j], feats[j-1] = feats[j-1], feats[j]
		}
	}
	if len(feats) > 10 {
		feats = feats[:10]
	}
	if _, err := fmt.Fprintf(w, "%-20s %12s %12s %12s %12s %10s %10s\n",
		"feature", "base mean", "base σ", "win mean", "win σ", "z", "symKL"); err != nil {
		return err
	}
	for _, f := range feats {
		if _, err := fmt.Fprintf(w, "%-20s %12.4g %12.4g %12.4g %12.4g %10.3g %10.3g\n",
			f.Name, f.BaseMean, f.BaseStd, f.WindowMean, f.WindowStd, f.ZShift, f.SymKL); err != nil {
			return err
		}
	}
	if rest := len(s.Features) - len(feats); rest > 0 {
		if _, err := fmt.Fprintf(w, "(%d more features below)\n", rest); err != nil {
			return err
		}
	}
	return nil
}
