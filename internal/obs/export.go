package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tail-based sampling: the keep/drop decision happens after the request
// finishes, when status and duration are known — so every error, every shed
// request and every slow outlier is kept, and only the boring fast-and-OK
// majority is thinned probabilistically. Head sampling (decide at ingress)
// cannot do this: it drops the one request you wanted by the time it turns
// out slow.

// Sample-keep reasons, recorded on the exported trace and in the
// obs.trace.sampled{reason} counter.
const (
	KeepForced = "forced" // caller asked (traceparent sampled flag, ?trace=1)
	KeepError  = "error"  // 5xx status
	KeepShed   = "shed"   // 429 admission rejection
	KeepSlow   = "slow"   // duration above the live latency quantile
	KeepRandom = "random" // probabilistic keep of a healthy request
)

// TailSampler decides, after a request completes, whether its trace is worth
// keeping. Safe for concurrent Decide calls.
type TailSampler struct {
	// Rate is the probability of keeping a healthy (non-error, non-slow,
	// non-forced) trace, in [0, 1]. 0 keeps only interesting traces; 1 keeps
	// everything.
	Rate float64
	// SlowQuantile marks a request slow when its duration exceeds this
	// quantile of Latency (default 0.95 when Latency is set).
	SlowQuantile float64
	// Latency is the live latency histogram (seconds) the slow threshold is
	// read from. Nil disables the slow rule.
	Latency *Histogram
	// MinCount gates the slow rule until Latency holds at least this many
	// observations (default 64) — early in a process's life the quantile
	// estimate is noise and would mark everything slow.
	MinCount uint64

	rngState atomic.Uint64
}

// NewTailSampler returns a sampler keeping errors, shed requests, slow
// requests above the latency histogram's 95th percentile, and a rate-sized
// random fraction of the rest.
func NewTailSampler(rate float64, latency *Histogram) *TailSampler {
	s := &TailSampler{Rate: rate, SlowQuantile: 0.95, Latency: latency, MinCount: 64}
	s.rngState.Store(uint64(time.Now().UnixNano()) | 1)
	return s
}

// Decide returns whether to keep the trace of a finished request and the
// reason it was kept, counting kept traces into obs.trace.sampled{reason}.
// forced marks requests whose caller explicitly asked for the trace. A nil
// sampler keeps nothing but forced traces.
func (s *TailSampler) Decide(status int, dur time.Duration, forced bool) (bool, string) {
	keep, reason := s.decide(status, dur, forced)
	if keep {
		obsMet().traceSampledKept.With(reason).Inc()
	}
	return keep, reason
}

func (s *TailSampler) decide(status int, dur time.Duration, forced bool) (bool, string) {
	if forced {
		return true, KeepForced
	}
	if s == nil {
		return false, ""
	}
	if status >= 500 {
		return true, KeepError
	}
	if status == 429 {
		return true, KeepShed
	}
	if s.Latency != nil && s.Latency.Count() >= s.minCount() {
		q := s.SlowQuantile
		if q <= 0 || q >= 1 {
			q = 0.95
		}
		if thresh := s.Latency.Quantile(q); thresh > 0 && dur.Seconds() > thresh {
			return true, KeepSlow
		}
	}
	if s.Rate >= 1 {
		return true, KeepRandom
	}
	if s.Rate > 0 && s.randFloat() < s.Rate {
		return true, KeepRandom
	}
	return false, ""
}

func (s *TailSampler) minCount() uint64 {
	if s.MinCount == 0 {
		return 64
	}
	return s.MinCount
}

// randFloat draws a uniform value in [0, 1) from a lock-free xorshift64*
// stream — no global rand lock on the request path.
func (s *TailSampler) randFloat() float64 {
	for {
		old := s.rngState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.rngState.CompareAndSwap(old, x) {
			return float64((x*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
		}
	}
}

// TraceExporter writes sampled traces as JSONL from a dedicated goroutine
// behind a bounded queue: Export never blocks the request path — when the
// queue is full the trace is counted dropped and the request moves on.
type TraceExporter struct {
	mu     sync.RWMutex // guards closed vs. in-flight Export sends
	closed bool
	ch     chan ExportedTrace
	done   chan struct{}

	w        io.Writer
	closer   io.Closer
	dropped  atomic.Int64
	exported atomic.Int64
	errs     atomic.Int64
}

// NewTraceExporter starts an exporter writing one JSON object per line to w.
// queue bounds the number of traces buffered between the request path and
// the writer (default 256 when <= 0). When w is also an io.Closer, Close
// closes it.
func NewTraceExporter(w io.Writer, queue int) *TraceExporter {
	if queue <= 0 {
		queue = 256
	}
	e := &TraceExporter{
		w:    w,
		ch:   make(chan ExportedTrace, queue),
		done: make(chan struct{}),
	}
	if c, ok := w.(io.Closer); ok {
		e.closer = c
	}
	go e.run()
	return e
}

func (e *TraceExporter) run() {
	defer close(e.done)
	enc := json.NewEncoder(e.w)
	for tr := range e.ch {
		if err := enc.Encode(tr); err != nil {
			e.errs.Add(1)
			obsMet().traceExportErrors.Inc()
			continue
		}
		e.exported.Add(1)
		obsMet().traceExported.Inc()
	}
}

// Export enqueues one trace without blocking: a full queue or a closed
// exporter drops the trace (counted) and returns false. Nil-safe.
func (e *TraceExporter) Export(tr ExportedTrace) bool {
	if e == nil {
		return false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	select {
	case e.ch <- tr:
		return true
	default:
		e.dropped.Add(1)
		obsMet().traceExportDropped.Inc()
		return false
	}
}

// Dropped reports traces discarded because the queue was full (0 for nil).
func (e *TraceExporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Exported reports traces successfully written (0 for nil).
func (e *TraceExporter) Exported() int64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Close stops accepting traces, drains the queue to the writer, and closes
// the underlying writer when it is a Closer. Safe to call more than once;
// nil-safe.
func (e *TraceExporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ch)
	e.mu.Unlock()
	<-e.done
	if e.closer != nil {
		return e.closer.Close()
	}
	return nil
}
