//go:build !linux

package obs

// countOpenFDs reports -1: no portable file-descriptor count here, so the
// runtime collector omits the process.open_fds gauge entirely rather than
// publishing a lie.
func countOpenFDs() int { return -1 }
