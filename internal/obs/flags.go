package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"
)

// Options bundles the observability knobs both CLIs expose. Register wires
// them onto a FlagSet; Start turns the parsed values into a live Session.
type Options struct {
	MetricsOut  string // -metrics-out: end-of-run metrics snapshot JSON path ("-" = stdout)
	TraceOut    string // -trace-out: end-of-run stage-trace JSON path ("-" = stdout)
	ManifestOut string // -manifest-out: end-of-run RunManifest JSON path ("-" = stdout)
	LogFormat   string // -log-format: text | json
	PprofAddr   string // -pprof: net/http/pprof listen address
}

// Register declares the observability flags on fs.
func (o *Options) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the end-of-run metrics snapshot JSON to this file (\"-\" = stdout)")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the end-of-run stage-trace JSON to this file (\"-\" = stdout)")
	fs.StringVar(&o.ManifestOut, "manifest-out", "", "write the end-of-run manifest JSON (config, report, metrics, trace) to this file (\"-\" = stdout)")
	fs.StringVar(&o.LogFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof, /metrics and /metrics.json on this address (e.g. localhost:6060)")
}

// Session is the live observability state of one CLI run: the installed
// registry, the run's tracer, and the optional pprof server. Create it with
// Options.Start, finish with Close.
type Session struct {
	Registry *Registry
	Tracer   *Tracer
	opts     Options
	pprof    *PprofServer
	start    time.Time
	cpuStart int64
}

// Start installs the requested observability and returns a context carrying
// the run's tracer. The registry is always installed for a CLI run — the
// instruments are cheap and their snapshot feeds -metrics-out, -pprof and
// the manifest alike; the nil-registry fast path exists for library use.
// Start must run before any pipeline work so the instrument handles rebind
// while nothing is in flight.
func (o Options) Start(ctx context.Context) (context.Context, *Session, error) {
	if err := SetupLogging(o.LogFormat, os.Stderr, false); err != nil {
		return ctx, nil, err
	}
	s := &Session{
		Registry: NewRegistry(),
		Tracer:   NewTracer(),
		opts:     o,
		start:    time.Now(),
		cpuStart: processCPUNanos(),
	}
	SetDefault(s.Registry)
	ctx = WithTracer(ctx, s.Tracer)
	if o.PprofAddr != "" {
		srv, err := ServePprof(o.PprofAddr, s.Registry)
		if err != nil {
			return ctx, nil, err
		}
		s.pprof = srv
		slog.Info("pprof listening", "addr", srv.Addr.String())
	}
	return ctx, s, nil
}

// Manifest assembles a RunManifest of the given kind from the session's
// current state: build info, worker count, wall/CPU time, the metrics
// snapshot and the stage trace. The caller attaches its config and report.
func (s *Session) Manifest(kind string, workers int) *RunManifest {
	m := NewManifest(kind)
	m.Workers = workers
	m.WallSeconds = time.Since(s.start).Seconds()
	if c := processCPUNanos(); c > 0 && s.cpuStart > 0 {
		m.CPUSeconds = float64(c-s.cpuStart) / 1e9
	}
	m.Metrics = s.Registry.Snapshot()
	m.Trace = s.Tracer.Tree()
	return m
}

// Close renders the end-of-run artifacts — the stderr stage-timing table and
// the -metrics-out / -trace-out / -manifest-out files — and shuts the pprof
// server down. manifest may be nil when the run produced none (then
// -manifest-out writes a bare session manifest). The first error wins but
// every sink is attempted.
func (s *Session) Close(manifest *RunManifest, workers int) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(s.Tracer.WriteTable(os.Stderr))
	if s.opts.MetricsOut != "" {
		keep(writeSink(s.opts.MetricsOut, func(f *os.File) error {
			return s.Registry.WriteJSON(f)
		}))
	}
	if s.opts.TraceOut != "" {
		keep(writeSink(s.opts.TraceOut, func(f *os.File) error {
			return writeJSONValue(f, s.Tracer.Tree())
		}))
	}
	if s.opts.ManifestOut != "" {
		if manifest == nil {
			manifest = s.Manifest("session", workers)
		}
		keep(writeSink(s.opts.ManifestOut, func(f *os.File) error {
			_, err := manifest.WriteTo(f)
			return err
		}))
	}
	keep(s.pprof.Close())
	return firstErr
}

// writeJSONValue writes v as indented JSON.
func writeJSONValue(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeSink writes via fn to path, with "-" selecting stdout.
func writeSink(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	return f.Close()
}
