package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"
)

// Options bundles the observability knobs both CLIs expose. Register wires
// them onto a FlagSet; Start turns the parsed values into a live Session.
type Options struct {
	MetricsOut  string // -metrics-out: end-of-run metrics snapshot JSON path ("-" = stdout)
	TraceOut    string // -trace-out: end-of-run stage-trace JSON path ("-" = stdout)
	ManifestOut string // -manifest-out: end-of-run RunManifest JSON path ("-" = stdout)
	LogFormat   string // -log-format: text | json
	PprofAddr   string // -pprof: net/http/pprof listen address

	DecisionLog    string  // -decision-log: JSONL decision record path ("-" = stdout)
	DecisionSample int     // -decision-sample: log 1 in N decisions
	DriftWindow    int     // -drift-window: sliding window size in traces
	DriftWarn      float64 // -drift-warn: symmetric-KL warn threshold
	DriftCritical  float64 // -drift-critical: symmetric-KL critical threshold
}

// Register declares the observability flags on fs.
func (o *Options) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the end-of-run metrics snapshot JSON to this file (\"-\" = stdout)")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the end-of-run stage-trace JSON to this file (\"-\" = stdout)")
	fs.StringVar(&o.ManifestOut, "manifest-out", "", "write the end-of-run manifest JSON (config, report, metrics, trace) to this file (\"-\" = stdout)")
	fs.StringVar(&o.LogFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof, /metrics and /metrics.json on this address (e.g. localhost:6060)")
	fs.StringVar(&o.DecisionLog, "decision-log", "", "write sampled per-classification decision records as JSONL to this file (\"-\" = stdout)")
	fs.IntVar(&o.DecisionSample, "decision-sample", 1, "log 1 in N decisions to -decision-log")
	fs.IntVar(&o.DriftWindow, "drift-window", DefaultDriftWindow, "covariate-shift monitor: sliding window size in traces")
	fs.Float64Var(&o.DriftWarn, "drift-warn", DefaultDriftWarn, "covariate-shift monitor: symmetric-KL warn threshold")
	fs.Float64Var(&o.DriftCritical, "drift-critical", DefaultDriftCritical, "covariate-shift monitor: symmetric-KL critical threshold")
}

// DriftConfig returns the drift-monitor configuration the flags selected.
func (o Options) DriftConfig() DriftConfig {
	return DriftConfig{Window: o.DriftWindow, Warn: o.DriftWarn, Critical: o.DriftCritical}.withDefaults()
}

// Session is the live observability state of one CLI run: the installed
// registry, the run's tracer, and the optional pprof server. Create it with
// Options.Start, finish with Close.
type Session struct {
	Registry *Registry
	Tracer   *Tracer
	// Decisions is the sampled JSONL decision sink, nil unless -decision-log
	// was given. Nil is a valid no-op sink.
	Decisions *DecisionLog
	// Calibration tracks confidence-vs-accuracy; always live (the
	// instruments are cheap) so ECE appears whenever ground truth flows.
	Calibration *Reliability
	// Drift is set by the caller once a template (and thus a baseline) is
	// available; Close then renders the drift table and manifest note.
	Drift *DriftMonitor

	opts     Options
	pprof    *PprofServer
	start    time.Time
	cpuStart int64
}

// Start installs the requested observability and returns a context carrying
// the run's tracer. The registry is always installed for a CLI run — the
// instruments are cheap and their snapshot feeds -metrics-out, -pprof and
// the manifest alike; the nil-registry fast path exists for library use.
// Start must run before any pipeline work so the instrument handles rebind
// while nothing is in flight.
func (o Options) Start(ctx context.Context) (context.Context, *Session, error) {
	if err := SetupLogging(o.LogFormat, os.Stderr, false); err != nil {
		return ctx, nil, err
	}
	s := &Session{
		Registry:    NewRegistry(),
		Tracer:      NewTracer(),
		Calibration: NewReliability(),
		opts:        o,
		start:       time.Now(),
		cpuStart:    processCPUNanos(),
	}
	SetDefault(s.Registry)
	ctx = WithTracer(ctx, s.Tracer)
	if o.DecisionLog != "" {
		dl, err := OpenDecisionLog(o.DecisionLog, o.DecisionSample)
		if err != nil {
			return ctx, nil, err
		}
		s.Decisions = dl
	}
	if o.PprofAddr != "" {
		srv, err := ServePprof(o.PprofAddr, s.Registry)
		if err != nil {
			return ctx, nil, err
		}
		s.pprof = srv
		slog.Info("pprof listening", "addr", srv.Addr.String())
	}
	return ctx, s, nil
}

// Manifest assembles a RunManifest of the given kind from the session's
// current state: build info, worker count, wall/CPU time, the metrics
// snapshot and the stage trace. The caller attaches its config and report.
func (s *Session) Manifest(kind string, workers int) *RunManifest {
	m := NewManifest(kind)
	m.Workers = workers
	m.WallSeconds = time.Since(s.start).Seconds()
	if c := processCPUNanos(); c > 0 && s.cpuStart > 0 {
		m.CPUSeconds = float64(c-s.cpuStart) / 1e9
	}
	m.Metrics = s.Registry.Snapshot()
	m.Trace = s.Tracer.Tree()
	m.TraceDropped = s.Tracer.Dropped()
	if s.Drift != nil {
		if m.Notes == nil {
			m.Notes = map[string]any{}
		}
		m.Notes["drift"] = s.Drift.Snapshot()
	}
	if s.Calibration.Total() > 0 {
		if m.Notes == nil {
			m.Notes = map[string]any{}
		}
		m.Notes["calibration"] = s.Calibration.Snapshot()
	}
	return m
}

// Close renders the end-of-run artifacts — the stderr stage-timing table and
// the -metrics-out / -trace-out / -manifest-out files — and shuts the pprof
// server down. manifest may be nil when the run produced none (then
// -manifest-out writes a bare session manifest). The first error wins but
// every sink is attempted.
func (s *Session) Close(manifest *RunManifest, workers int) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(s.Tracer.WriteTable(os.Stderr))
	if s.Drift != nil {
		keep(s.Drift.WriteTable(os.Stderr))
	}
	keep(s.Decisions.Close())
	if s.opts.MetricsOut != "" {
		keep(writeSink(s.opts.MetricsOut, func(f *os.File) error {
			return s.Registry.WriteJSON(f)
		}))
	}
	if s.opts.TraceOut != "" {
		keep(writeSink(s.opts.TraceOut, func(f *os.File) error {
			return writeJSONValue(f, s.Tracer.Tree())
		}))
	}
	if s.opts.ManifestOut != "" {
		if manifest == nil {
			manifest = s.Manifest("session", workers)
		}
		keep(writeSink(s.opts.ManifestOut, func(f *os.File) error {
			_, err := manifest.WriteTo(f)
			return err
		}))
	}
	keep(s.pprof.Close())
	return firstErr
}

// writeJSONValue writes v as indented JSON.
func writeJSONValue(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeSink writes via fn to path, with "-" selecting stdout.
func writeSink(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	return f.Close()
}
