package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// ManifestSchemaVersion identifies the RunManifest JSON layout; bump it on
// incompatible changes so downstream dashboards can dispatch.
const ManifestSchemaVersion = 1

// BuildInfo pins the binary that produced a run: Go toolchain, main module
// path/version, and VCS state when the binary was built from a checkout.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	NumCPU      int    `json:"num_cpu"`
}

// CollectBuildInfo fills a BuildInfo from debug.ReadBuildInfo and runtime.
func CollectBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}

// RunManifest is the one JSON document a train/disassemble run emits: what
// ran (kind, config, build), what it saw (report: dataset shape, validation
// drops, selected points, PCA dims, per-level confusion), what it cost
// (metrics snapshot: cache hits/misses, transforms, worker busy time) and
// where the time went (trace: the span tree).
//
// Config and Report accept any JSON-encodable value; both are scrubbed of
// NaN/±Inf (replaced by null) before marshalling, and nested structs are
// rendered as key-sorted objects, so the document is deterministic and
// always valid JSON.
type RunManifest struct {
	SchemaVersion int            `json:"schema_version"`
	Kind          string         `json:"kind"`
	Build         BuildInfo      `json:"build"`
	Workers       int            `json:"workers,omitempty"`
	WallSeconds   float64        `json:"wall_seconds,omitempty"`
	CPUSeconds    float64        `json:"cpu_seconds,omitempty"`
	Config        any            `json:"config,omitempty"`
	Report        any            `json:"report,omitempty"`
	Metrics       *Snapshot      `json:"metrics,omitempty"`
	Trace         []*SpanNode    `json:"trace,omitempty"`
	TraceDropped  int64          `json:"trace_dropped,omitempty"`
	Notes         map[string]any `json:"notes,omitempty"`
}

// NewManifest returns a manifest of the given kind with build info filled.
func NewManifest(kind string) *RunManifest {
	return &RunManifest{
		SchemaVersion: ManifestSchemaVersion,
		Kind:          kind,
		Build:         CollectBuildInfo(),
	}
}

// MarshalIndent renders the manifest as indented JSON with Config/Report
// scrubbed of non-finite numbers.
func (m *RunManifest) MarshalIndent() ([]byte, error) {
	clean := *m
	clean.Config = Scrub(m.Config)
	clean.Report = Scrub(m.Report)
	clean.Notes = nil
	if len(m.Notes) > 0 {
		if s, ok := Scrub(m.Notes).(map[string]any); ok {
			clean.Notes = s
		}
	}
	b, err := json.MarshalIndent(&clean, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: manifest marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteTo writes the manifest JSON to w.
func (m *RunManifest) WriteTo(w io.Writer) (int64, error) {
	b, err := m.MarshalIndent()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the manifest JSON to path (0644, truncating).
func (m *RunManifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Scrub converts v into a JSON-encodable value tree with every NaN/±Inf
// replaced by nil (JSON null), so a degenerate statistic can never make the
// manifest invalid. Structs become maps keyed by their json tag (or field
// name), which encoding/json then serializes with sorted keys — a stable
// field order regardless of struct layout.
func Scrub(v any) any {
	if v == nil {
		return nil
	}
	return scrubValue(reflect.ValueOf(v))
}

func scrubValue(v reflect.Value) any {
	switch v.Kind() {
	case reflect.Invalid:
		return nil
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return scrubValue(v.Elem())
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case reflect.Bool:
		return v.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return v.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return v.Uint()
	case reflect.String:
		return v.String()
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return nil
		}
		out := make([]any, v.Len())
		for i := range out {
			out[i] = scrubValue(v.Index(i))
		}
		return out
	case reflect.Map:
		if v.IsNil() {
			return nil
		}
		out := make(map[string]any, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out[fmt.Sprint(iter.Key().Interface())] = scrubValue(iter.Value())
		}
		return out
	case reflect.Struct:
		if t, ok := v.Interface().(time.Time); ok {
			return t.Format(time.RFC3339Nano)
		}
		out := map[string]any{}
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := f.Name
			if tag, ok := f.Tag.Lookup("json"); ok {
				base, _, _ := strings.Cut(tag, ",")
				if base == "-" {
					continue
				}
				if base != "" {
					name = base
				}
			}
			out[name] = scrubValue(v.Field(i))
		}
		return out
	default:
		// Channels, funcs, complex: not representable; drop.
		return nil
	}
}
