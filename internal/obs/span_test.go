package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// Without a tracer on the context, Span returns a nil handle and every
// handle method is a no-op.
func TestSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Span(ctx, "orphan")
	if sp != nil {
		t.Fatal("got a live span without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("context was rewrapped on the no-tracer path")
	}
	sp.End()
	sp.AddBusy(time.Second)
	sp.NoteWorkers(4)
	if sp.Wall() != 0 {
		t.Fatal("nil span has a wall time")
	}
	if ContextSpan(ctx2) != nil {
		t.Fatal("no-tracer context carries a span")
	}
}

func TestTracerNestingAndTree(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom lost the tracer")
	}

	ctx, root := Span(ctx, "root")
	if ContextSpan(ctx) != root {
		t.Fatal("ContextSpan is not the innermost span")
	}
	cctx, childA := Span(ctx, "child.a")
	_, grand := Span(cctx, "grand")
	grand.End()
	childA.End()
	_, childB := Span(ctx, "child.b")
	childB.AddBusy(80 * time.Millisecond)
	childB.NoteWorkers(4)
	childB.NoteWorkers(2) // max wins
	time.Sleep(2 * time.Millisecond)
	childB.End()
	childB.End() // double End is a no-op
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "child.a" || kids[1].Name != "child.b" {
		t.Fatalf("children = %+v", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "grand" {
		t.Fatalf("grandchildren = %+v", kids[0].Children)
	}
	b := kids[1]
	if b.Workers != 4 {
		t.Fatalf("workers = %d, want 4 (max of 4 and 2)", b.Workers)
	}
	if b.BusyMS != 80 {
		t.Fatalf("busy = %gms, want 80", b.BusyMS)
	}
	if b.Utilization <= 0 || b.Utilization > 1 {
		t.Fatalf("utilization = %g out of (0, 1]", b.Utilization)
	}
	if root.Wall() <= 0 {
		t.Fatal("ended root span has no wall time")
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.MaxSpans = 3
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Span(ctx, "s")
		sp.End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if n := len(tr.Tree()); n != 3 {
		t.Fatalf("retained %d spans, want 3", n)
	}
}

func TestWriteTable(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, outer := Span(ctx, "train")
	_, inner := Span(ctx, "fit")
	inner.End()
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage", "train", "  fit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	var empty bytes.Buffer
	if err := NewTracer().WriteTable(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty tracer wrote a table: %q", empty.String())
	}
}
