package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeCollectorSampleOnce(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, time.Hour)
	c.SampleOnce()
	s := r.Snapshot()
	if s.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("runtime.goroutines = %v", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap.objects.bytes"] <= 0 {
		t.Fatalf("runtime.heap.objects.bytes = %v", s.Gauges["runtime.heap.objects.bytes"])
	}
	if s.Gauges["runtime.mem.total.bytes"] <= 0 {
		t.Fatalf("runtime.mem.total.bytes = %v", s.Gauges["runtime.mem.total.bytes"])
	}
	if s.Counters["runtime.collector.samples"] != 1 {
		t.Fatalf("samples counter = %v", s.Counters["runtime.collector.samples"])
	}
	if runtime.GOOS == "linux" && s.Gauges["process.open_fds"] < 3 {
		t.Fatalf("process.open_fds = %v", s.Gauges["process.open_fds"])
	}
}

// GC pauses arrive as a cumulative runtime/metrics histogram; the collector
// observes only the delta between ticks.
func TestRuntimeCollectorGCPauseDelta(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, time.Hour)
	c.SampleOnce() // baseline
	runtime.GC()
	runtime.GC()
	c.SampleOnce()
	s := r.Snapshot()
	h := s.Histograms["runtime.gc.pause.seconds"]
	if h.Count == 0 {
		t.Fatal("no GC pauses observed after forced GCs")
	}
	if s.Gauges["runtime.gc.cycles"] < 2 {
		t.Fatalf("runtime.gc.cycles = %v", s.Gauges["runtime.gc.cycles"])
	}
	// A third sample without new GCs must not re-observe the old pauses.
	before := h.Count
	c.SampleOnce()
	if after := r.Snapshot().Histograms["runtime.gc.pause.seconds"].Count; after < before {
		t.Fatalf("pause count went backwards: %d -> %d", before, after)
	}
}

func TestRuntimeCollectorStartStopAndSamplers(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, 10*time.Millisecond)
	hits := r.Counter("test.sampler.hits")
	c.AddSampler(func() { hits.Inc() })
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for hits.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	if hits.Value() < 2 {
		t.Fatalf("sampler ran %d times, want >= 2", hits.Value())
	}
	// Nil collector is a no-op everywhere.
	var nc *RuntimeCollector
	nc.AddSampler(func() {})
	nc.SampleOnce()
	nc.Start()
	nc.Stop()
	if nc.Interval() != 0 {
		t.Fatal("nil collector has an interval")
	}
}

func TestBucketMidpoint(t *testing.T) {
	edges := []float64{1, 4}
	if got := bucketMidpoint(edges, 0); got != 2 {
		t.Fatalf("geometric midpoint of [1,4) = %v, want 2", got)
	}
}
