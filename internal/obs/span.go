package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects the spans of one run into a stage tree. It is safe for
// concurrent use: spans started from parallel workers record themselves
// under a single mutex at End (stage granularity, never per-point). The
// span count is capped so a runaway loop cannot exhaust memory.
type Tracer struct {
	mu      sync.Mutex
	spans   []*SpanHandle
	nextID  atomic.Int64
	start   time.Time
	dropped atomic.Int64
	// MaxSpans bounds retained spans; extra spans are counted in Dropped.
	MaxSpans int
	// Fine opts the tracer into fine-grained spans (per-trace, per-level
	// classification) started with SpanHandle.FineChild. Request tracers set
	// it; the CLI session tracer leaves it off so the end-of-run stage table
	// stays at stage granularity and batch runs pay nothing per trace.
	Fine bool

	// W3C trace-context identity (see trace.go): the trace ID every exported
	// span carries, and the caller's span ID when the request arrived with a
	// traceparent header. Set once via SetTraceContext before spans start.
	traceID      TraceID
	remoteParent SpanID
}

// NewTracer returns an empty tracer anchored at the current time.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), MaxSpans: 8192}
}

// Dropped reports how many spans were discarded over the MaxSpans cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Truncated reports whether any span was discarded over the MaxSpans cap —
// the marker exported traces carry so a missing child reads as "cut off", not
// "never happened".
func (t *Tracer) Truncated() bool { return t.Dropped() > 0 }

// Reset discards every recorded span, clears the drop count and re-anchors
// the tracer at the current time, so one tracer can be reused across many
// runs (or requests) without accumulating spans for the process lifetime —
// without it, a long-running server fills the MaxSpans cap once and then
// silently drops every span while holding the full buffer forever. Spans
// still in flight when Reset is called land in the post-reset buffer; their
// timings are valid, only their start offsets predate the new anchor. No-op
// on a nil tracer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.start = time.Now()
	t.mu.Unlock()
	t.dropped.Store(0)
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer attaches a tracer to the context; Span calls below it record
// into the tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextSpan returns the innermost active span of ctx, or nil. Parallel
// loops use it to attribute per-body busy time to the enclosing stage.
func ContextSpan(ctx context.Context) *SpanHandle {
	s, _ := ctx.Value(spanKey).(*SpanHandle)
	return s
}

// Span is one timed stage of a run. Started by obs.Span, finished by End.
// A nil *SpanHandle is a valid no-op handle — the no-tracer fast path.
type SpanHandle struct {
	tracer   *Tracer
	id       int64
	parent   int64
	name     string
	start    time.Time
	cpuStart int64

	wall    time.Duration
	cpu     time.Duration
	busy    atomic.Int64 // ns of parallel-body work attributed to this span
	workers atomic.Int64 // max worker count observed by loops under this span
	ended   atomic.Bool

	attrMu sync.Mutex
	attrs  map[string]float64
}

// SetAttr attaches a named numeric attribute to the span (drift score,
// decisions recorded, mean confidence...), rendered in the span tree and
// manifest. Non-finite values are dropped so the trace JSON stays valid.
// No-op on a nil receiver.
func (s *SpanHandle) SetAttr(name string, v float64) {
	if s == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.attrMu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]float64{}
	}
	s.attrs[name] = v
	s.attrMu.Unlock()
}

// Span starts a named span under ctx's tracer (nesting under ctx's current
// span) and returns a derived context carrying the new span. When ctx has no
// tracer the input context and a nil handle are returned — zero cost beyond
// two context lookups.
func Span(ctx context.Context, name string) (context.Context, *SpanHandle) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &SpanHandle{
		tracer:   t,
		id:       t.nextID.Add(1),
		name:     name,
		start:    time.Now(),
		cpuStart: processCPUNanos(),
	}
	if parent := ContextSpan(ctx); parent != nil {
		sp.parent = parent.id
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// Child starts a named span under s without deriving a context — the
// explicit-parent fast path for callers that already hold the parent handle
// (per-trace loops where a context.WithValue per iteration would dominate).
// Wall-clock only: no CPU sampling. Nil-safe: a nil parent yields a nil
// (no-op) child.
func (s *SpanHandle) Child(name string) *SpanHandle {
	if s == nil || s.tracer == nil {
		return nil
	}
	return &SpanHandle{
		tracer: s.tracer,
		id:     s.tracer.nextID.Add(1),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// FineChild is Child gated on the tracer's Fine flag: request tracers get the
// per-trace span, the CLI session tracer (and any coarse tracer) gets a nil
// no-op handle and pays only the flag check.
func (s *SpanHandle) FineChild(name string) *SpanHandle {
	if s == nil || s.tracer == nil || !s.tracer.Fine {
		return nil
	}
	return s.Child(name)
}

// End finishes the span, capturing wall and process-CPU time, and records it
// into the tracer. Safe to call once; extra calls and nil receivers are
// no-ops.
func (s *SpanHandle) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.wall = time.Since(s.start)
	// Fine spans never sampled CPU at start (cpuStart == 0): skip the
	// getrusage syscall entirely — process-wide CPU is meaningless for a
	// per-trace span under concurrency, and the syscall dwarfs the span body.
	if s.cpuStart > 0 {
		if c := processCPUNanos(); c > 0 {
			s.cpu = time.Duration(c - s.cpuStart)
		}
	}
	t := s.tracer
	t.mu.Lock()
	max := t.MaxSpans
	if max <= 0 {
		max = 8192
	}
	if len(t.spans) < max {
		t.spans = append(t.spans, s)
	} else {
		t.dropped.Add(1)
		obsMet().spansDropped.Inc()
	}
	t.mu.Unlock()
}

// Wall returns the span's wall-clock duration (valid after End; 0 for nil).
func (s *SpanHandle) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return s.wall
}

// AddBusy attributes d of parallel-body work to the span. No-op on nil.
func (s *SpanHandle) AddBusy(d time.Duration) {
	if s == nil {
		return
	}
	s.busy.Add(int64(d))
}

// NoteWorkers records the worker count of a parallel loop running under the
// span (the maximum across loops wins). No-op on nil.
func (s *SpanHandle) NoteWorkers(w int) {
	if s == nil {
		return
	}
	for {
		old := s.workers.Load()
		if int64(w) <= old || s.workers.CompareAndSwap(old, int64(w)) {
			return
		}
	}
}

// SpanNode is one node of the rendered stage tree. Durations are in
// milliseconds; Utilization is busy/(wall·workers) in [0, 1] when parallel
// loop work was attributed to the span.
type SpanNode struct {
	Name        string             `json:"name"`
	StartMS     float64            `json:"start_ms"`
	WallMS      float64            `json:"wall_ms"`
	CPUMS       float64            `json:"cpu_ms,omitempty"`
	BusyMS      float64            `json:"busy_ms,omitempty"`
	Workers     int                `json:"workers,omitempty"`
	Utilization float64            `json:"utilization,omitempty"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
	Children    []*SpanNode        `json:"children,omitempty"`
}

// Tree assembles the recorded spans into root-level nodes ordered by start
// time. Returns nil on a nil tracer.
func (t *Tracer) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*SpanHandle, len(t.spans))
	copy(spans, t.spans)
	start := t.start
	t.mu.Unlock()

	nodes := make(map[int64]*SpanNode, len(spans))
	order := make(map[int64]time.Time, len(spans))
	for _, s := range spans {
		n := &SpanNode{
			Name:    s.name,
			StartMS: float64(s.start.Sub(start)) / float64(time.Millisecond),
			WallMS:  float64(s.wall) / float64(time.Millisecond),
			CPUMS:   float64(s.cpu) / float64(time.Millisecond),
			BusyMS:  float64(s.busy.Load()) / float64(time.Millisecond),
			Workers: int(s.workers.Load()),
		}
		if n.BusyMS > 0 && n.WallMS > 0 && n.Workers > 0 {
			n.Utilization = n.BusyMS / (n.WallMS * float64(n.Workers))
			if n.Utilization > 1 {
				n.Utilization = 1
			}
		}
		s.attrMu.Lock()
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]float64, len(s.attrs))
			for k, v := range s.attrs {
				n.Attrs[k] = v
			}
		}
		s.attrMu.Unlock()
		nodes[s.id] = n
		order[s.id] = s.start
	}
	var roots []*SpanNode
	rootStart := map[*SpanNode]time.Time{}
	for _, s := range spans {
		n := nodes[s.id]
		if p := nodes[s.parent]; p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
			rootStart[n] = order[s.id]
		}
	}
	for _, n := range nodes {
		children := n.Children
		sort.SliceStable(children, func(i, j int) bool { return children[i].StartMS < children[j].StartMS })
	}
	sort.SliceStable(roots, func(i, j int) bool { return rootStart[roots[i]].Before(rootStart[roots[j]]) })
	return roots
}

// WriteTable renders the stage tree as an indented, human-readable table —
// the end-of-run stderr summary. No output on a nil or empty tracer.
func (t *Tracer) WriteTable(w io.Writer) error {
	roots := t.Tree()
	if len(roots) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-44s %10s %10s %6s\n", "stage", "wall", "cpu", "util"); err != nil {
		return err
	}
	var walk func(n *SpanNode, depth int) error
	walk = func(n *SpanNode, depth int) error {
		name := strings.Repeat("  ", depth) + n.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		util := "-"
		if n.Utilization > 0 {
			util = fmt.Sprintf("%3.0f%%", n.Utilization*100)
		}
		if _, err := fmt.Fprintf(w, "%-44s %10s %10s %6s\n",
			name, fmtMS(n.WallMS), fmtMS(n.CPUMS), util); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d spans dropped over the %d-span cap)\n", d, t.MaxSpans); err != nil {
			return err
		}
	}
	return nil
}

// fmtMS renders a millisecond quantity with an adaptive unit.
func fmtMS(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms < 1:
		return fmt.Sprintf("%.0fµs", ms*1000)
	case ms < 1000:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fs", ms/1000)
	}
}
