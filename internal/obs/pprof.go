package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// PprofServer is a live net/http/pprof endpoint plus, when a registry is
// installed, /metrics (Prometheus text) and /metrics.json (snapshot).
type PprofServer struct {
	Addr net.Addr
	srv  *http.Server
	done chan error

	closeOnce sync.Once
	closeErr  error
}

// ServePprof starts an HTTP server on addr (e.g. "localhost:6060" or ":0")
// exposing /debug/pprof/ on a private mux — the global DefaultServeMux is
// not touched. The listener is bound synchronously, so the returned Addr is
// immediately connectable; serving continues in a background goroutine until
// Close.
func ServePprof(addr string, reg *Registry) (*PprofServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		_ = reg.WriteJSON(w)
	})
	p := &PprofServer{
		Addr: ln.Addr(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan error, 1),
	}
	go func() { p.done <- p.srv.Serve(ln) }()
	return p, nil
}

// Close shuts the server down and waits for the serve loop to exit. Safe to
// call more than once; later calls return the first result.
func (p *PprofServer) Close() error {
	if p == nil {
		return nil
	}
	p.closeOnce.Do(func() {
		p.closeErr = p.srv.Close()
		<-p.done
	})
	return p.closeErr
}
