package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// fallbackTraceSeq feeds NewTraceID's counter fallback when crypto/rand is
// unavailable.
var fallbackTraceSeq atomic.Int64

// Trace identity follows the W3C trace-context shapes: a 16-byte trace ID
// shared by every span of one request, and 8-byte span IDs. The in-memory
// tracer keeps its cheap int64 span ids on the hot path; stable 8-byte IDs
// are derived only at export time (see exportSpanID), so a request that is
// tail-dropped never pays for ID derivation.

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all-zero (the W3C invalid value).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all-zero (the W3C invalid value).
func (id SpanID) IsZero() bool { return id == SpanID{} }

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }

// NewTraceID returns a random non-zero trace ID. crypto/rand never fails on
// the platforms we build for; if it somehow does, fall back to a counter so
// the ID is still non-zero and unique within the process.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err == nil && !id.IsZero() {
		return id
	}
	binary.BigEndian.PutUint64(id[8:], uint64(fallbackTraceSeq.Add(1)))
	id[0] = 0xfa
	return id
}

// SetTraceContext fixes the tracer's trace ID and, when the request carried a
// valid traceparent, the caller's span ID that our root spans should link to.
// Call once before the first span starts; no-op on nil.
func (t *Tracer) SetTraceContext(trace TraceID, remoteParent SpanID) {
	if t == nil {
		return
	}
	t.traceID = trace
	t.remoteParent = remoteParent
}

// TraceID returns the tracer's trace ID (zero when SetTraceContext was never
// called — CLI session tracers).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// ParseTraceparent parses a W3C traceparent header value:
// "00-<32 lowercase hex>-<16 lowercase hex>-<2 hex flags>". Per the spec,
// uppercase hex is invalid, as are all-zero trace or parent IDs; future
// versions (>00) are accepted if the prefix through the flags field parses,
// version 0xff is invalid. sampled reports bit 0 of the flags — the caller
// asking for this request to be recorded.
func ParseTraceparent(header string) (trace TraceID, parent SpanID, sampled, ok bool) {
	if len(header) < 55 {
		return TraceID{}, SpanID{}, false, false
	}
	if strings.ContainsAny(header[:55], "ABCDEF") {
		return TraceID{}, SpanID{}, false, false
	}
	if header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	ver := header[0:2]
	if ver == "ff" {
		return TraceID{}, SpanID{}, false, false
	}
	var verByte [1]byte
	if _, err := hex.Decode(verByte[:], []byte(ver)); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if ver == "00" && len(header) != 55 {
		return TraceID{}, SpanID{}, false, false
	}
	if len(header) > 55 && header[55] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(trace[:], []byte(header[3:35])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(header[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(header[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if trace.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return trace, parent, flags[0]&0x01 != 0, true
}

// FormatTraceparent renders a version-00 traceparent value. The sampled flag
// reports our tail-sampling intent back to the caller; tail sampling decides
// after the fact, so we always echo 01 ("may be recorded").
func FormatTraceparent(trace TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + trace.String() + "-" + span.String() + "-" + flags
}

// TraceSchema names the exported trace record shape; bump on breaking change.
const TraceSchema = "scdis.trace.v1"

// ExportedSpan is one span of an exported trace: OTLP-inspired flat record
// with IDs in lowercase hex, nanosecond start offset from the trace anchor,
// and nanosecond duration.
type ExportedSpan struct {
	SpanID   string             `json:"span_id"`
	ParentID string             `json:"parent_id,omitempty"`
	Name     string             `json:"name"`
	StartNS  int64              `json:"start_ns"`
	DurNS    int64              `json:"dur_ns"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
}

// ExportedTrace is one JSONL record of a trace export file: the whole span
// tree of one request in a single line, plus the request-level fields the
// sampler decided on.
type ExportedTrace struct {
	Schema    string         `json:"schema"`
	TraceID   string         `json:"trace_id"`
	Start     time.Time      `json:"start"`
	DurNS     int64          `json:"dur_ns"`
	Route     string         `json:"route,omitempty"`
	Template  string         `json:"template,omitempty"`
	Status    int            `json:"status,omitempty"`
	RequestID string         `json:"request_id,omitempty"`
	Reason    string         `json:"reason,omitempty"` // why the tail sampler kept it
	Truncated bool           `json:"truncated,omitempty"`
	Dropped   int64          `json:"dropped_spans,omitempty"`
	Spans     []ExportedSpan `json:"spans"`
}

// exportSpanID derives the stable 8-byte span ID for in-memory span id from
// the trace ID — FNV-1a over the trace ID bytes and the int64. Deterministic
// per (trace, span), vanishingly unlikely to collide within a trace, and
// costs nothing until export time.
func exportSpanID(trace TraceID, id int64) SpanID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range trace {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(id >> (8 * i)))
		h *= prime64
	}
	var out SpanID
	binary.BigEndian.PutUint64(out[:], h)
	if out.IsZero() {
		out[7] = 1
	}
	return out
}

// RootSpanID returns the export-time span ID the tracer's span n would get —
// the middleware uses it to echo the root span in the response traceparent
// before the request body is written. Span ids start at 1.
func (t *Tracer) RootSpanID(id int64) SpanID {
	if t == nil {
		return SpanID{}
	}
	return exportSpanID(t.traceID, id)
}

// ExportID returns the span's export-time span ID. Zero for nil spans.
func (s *SpanHandle) ExportID() SpanID {
	if s == nil || s.tracer == nil {
		return SpanID{}
	}
	return exportSpanID(s.tracer.traceID, s.id)
}

// Export assembles the tracer's recorded spans into one ExportedTrace.
// Root spans (no in-memory parent) link to the remote parent from the
// incoming traceparent, if any, so the caller's tooling can stitch trees
// across services. Spans are ordered by start offset.
func (t *Tracer) Export() ExportedTrace {
	out := ExportedTrace{Schema: TraceSchema}
	if t == nil {
		return out
	}
	t.mu.Lock()
	spans := make([]*SpanHandle, len(t.spans))
	copy(spans, t.spans)
	start := t.start
	t.mu.Unlock()

	out.TraceID = t.traceID.String()
	out.Start = start
	out.Dropped = t.Dropped()
	out.Truncated = out.Dropped > 0

	remote := ""
	if !t.remoteParent.IsZero() {
		remote = t.remoteParent.String()
	}
	have := make(map[int64]bool, len(spans))
	for _, s := range spans {
		have[s.id] = true
	}
	out.Spans = make([]ExportedSpan, 0, len(spans))
	var maxEnd int64
	for _, s := range spans {
		es := ExportedSpan{
			SpanID:  exportSpanID(t.traceID, s.id).String(),
			Name:    s.name,
			StartNS: s.start.Sub(start).Nanoseconds(),
			DurNS:   s.wall.Nanoseconds(),
		}
		switch {
		case s.parent != 0 && have[s.parent]:
			es.ParentID = exportSpanID(t.traceID, s.parent).String()
		case s.parent != 0:
			// Parent fell to the span cap: orphan the child at the root
			// rather than pointing at an ID absent from the record.
			es.ParentID = ""
		default:
			es.ParentID = remote
		}
		s.attrMu.Lock()
		if len(s.attrs) > 0 {
			es.Attrs = make(map[string]float64, len(s.attrs))
			for k, v := range s.attrs {
				es.Attrs[k] = v
			}
		}
		s.attrMu.Unlock()
		if end := es.StartNS + es.DurNS; end > maxEnd {
			maxEnd = end
		}
		out.Spans = append(out.Spans, es)
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].StartNS < out.Spans[j].StartNS })
	out.DurNS = maxEnd
	return out
}

// ReadExportedTraces reads a JSONL trace export stream, skipping blank lines.
// Records with an unknown schema or invalid JSON stop the read with an error
// naming the line, so a corrupt export fails loudly instead of rendering a
// partial tree.
func ReadExportedTraces(r io.Reader) ([]ExportedTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []ExportedTrace
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var tr ExportedTrace
		if err := json.Unmarshal([]byte(raw), &tr); err != nil {
			return nil, fmt.Errorf("trace export line %d: %w", line, err)
		}
		if tr.Schema != TraceSchema {
			return nil, fmt.Errorf("trace export line %d: schema %q (want %q)", line, tr.Schema, TraceSchema)
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace export line %d: %w", line, err)
	}
	return out, nil
}

// traceTreeNode is the assembled form of one exported span for rendering.
type traceTreeNode struct {
	span     ExportedSpan
	children []*traceTreeNode
}

// buildTraceTree links exported spans into root nodes. Spans whose parent ID
// is absent from the record (remote parents, cap-orphaned spans) become
// roots. Children are ordered by start offset.
func buildTraceTree(spans []ExportedSpan) []*traceTreeNode {
	nodes := make(map[string]*traceTreeNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &traceTreeNode{span: spans[i]}
	}
	var roots []*traceTreeNode
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if p, ok := nodes[spans[i].ParentID]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*traceTreeNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].span.StartNS < ns[j].span.StartNS })
	}
	for _, n := range nodes {
		order(n.children)
	}
	order(roots)
	return roots
}

// WriteTraceTree renders one exported trace as an indented tree with total
// (span duration) and self (duration minus direct children) times — the
// `scdis trace` output.
func WriteTraceTree(w io.Writer, tr ExportedTrace) error {
	status := ""
	if tr.Status != 0 {
		status = fmt.Sprintf(" status=%d", tr.Status)
	}
	tmpl := ""
	if tr.Template != "" {
		tmpl = " template=" + tr.Template
	}
	reason := ""
	if tr.Reason != "" {
		reason = " kept=" + tr.Reason
	}
	if _, err := fmt.Fprintf(w, "trace %s%s%s%s total=%s spans=%d\n",
		tr.TraceID, tmpl, status, reason, fmtMS(float64(tr.DurNS)/1e6), len(tr.Spans)); err != nil {
		return err
	}
	if tr.Truncated {
		if _, err := fmt.Fprintf(w, "  (truncated: %d spans dropped over the per-trace cap)\n", tr.Dropped); err != nil {
			return err
		}
	}
	if len(tr.Spans) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "  %-52s %10s %10s\n", "span", "total", "self"); err != nil {
		return err
	}
	var walk func(n *traceTreeNode, depth int) error
	walk = func(n *traceTreeNode, depth int) error {
		self := n.span.DurNS
		for _, c := range n.children {
			self -= c.span.DurNS
		}
		if self < 0 {
			self = 0 // concurrent children can sum past the parent's wall time
		}
		name := strings.Repeat("  ", depth) + n.span.Name
		if len(name) > 52 {
			name = name[:49] + "..."
		}
		attrs := ""
		if len(n.span.Attrs) > 0 {
			keys := make([]string, 0, len(n.span.Attrs))
			for k := range n.span.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%.4g", k, n.span.Attrs[k])
			}
			attrs = "  {" + strings.Join(parts, " ") + "}"
		}
		if _, err := fmt.Fprintf(w, "  %-52s %10s %10s%s\n",
			name, fmtMS(float64(n.span.DurNS)/1e6), fmtMS(float64(self)/1e6), attrs); err != nil {
			return err
		}
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range buildTraceTree(tr.Spans) {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
