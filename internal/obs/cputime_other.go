//go:build !unix

package obs

// processCPUNanos is unavailable on this platform; spans report CPU as 0.
func processCPUNanos() int64 { return 0 }
