package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func sampleRecord(conf float64) DecisionRecord {
	return DecisionRecord{
		Text:       "ADD r16, r17",
		Confidence: conf,
		Levels: []DecisionLevel{
			{Level: "group", Label: 0, RunnerUp: 3, Confidence: 0.98, Margin: 0.97},
			{Level: "instr", Label: 1, RunnerUp: 0, Confidence: conf / 0.98, Margin: 0.5},
		},
	}
}

// TestDecisionLogRoundTrip writes records through the log and decodes the
// JSONL back, checking sequence numbering and full structural fidelity.
func TestDecisionLogRoundTrip(t *testing.T) {
	var sb strings.Builder
	l := NewDecisionLog(&sb, 1)
	want := []DecisionRecord{sampleRecord(0.9), sampleRecord(0.4), sampleRecord(0.7)}
	for _, rec := range want {
		if err := l.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Seen() != 3 {
		t.Fatalf("seen %d", l.Seen())
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var got []DecisionRecord
	for sc.Scan() {
		var rec DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", len(got)+1, err)
		}
		got = append(got, rec)
	}
	if len(got) != len(want) {
		t.Fatalf("%d lines, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
		w := want[i]
		w.Seq = rec.Seq
		if rec.Text != w.Text || rec.Confidence != w.Confidence || len(rec.Levels) != len(w.Levels) {
			t.Fatalf("record %d: %+v != %+v", i, rec, w)
		}
		for j := range rec.Levels {
			if rec.Levels[j] != w.Levels[j] {
				t.Fatalf("record %d level %d: %+v != %+v", i, j, rec.Levels[j], w.Levels[j])
			}
		}
	}
}

// TestDecisionLogSampling checks the 1-in-N stride: every decision is
// counted, every Nth is written, and Seq reflects the global count.
func TestDecisionLogSampling(t *testing.T) {
	var sb strings.Builder
	l := NewDecisionLog(&sb, 4)
	for i := 0; i < 10; i++ {
		if err := l.Record(sampleRecord(0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Seen() != 10 {
		t.Fatalf("seen %d", l.Seen())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // decisions 1, 5, 9
		t.Fatalf("%d lines logged, want 3: %q", len(lines), sb.String())
	}
	wantSeq := []int64{1, 5, 9}
	for i, line := range lines {
		var rec DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != wantSeq[i] {
			t.Fatalf("line %d seq %d, want %d", i, rec.Seq, wantSeq[i])
		}
	}
	// sample < 1 clamps to 1.
	if NewDecisionLog(&strings.Builder{}, 0).sample != 1 {
		t.Fatal("sample 0 must clamp to 1")
	}
}

func TestDecisionLogNilAndFile(t *testing.T) {
	var l *DecisionLog
	if err := l.Record(sampleRecord(1)); err != nil {
		t.Fatal("nil log Record must be a no-op")
	}
	if l.Seen() != 0 || l.Close() != nil {
		t.Fatal("nil log accessors must be no-ops")
	}
	path := filepath.Join(t.TempDir(), "dec.jsonl")
	fl, err := OpenDecisionLog(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Record(sampleRecord(0.8)); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec DecisionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("file round-trip: %v", err)
	}
	if rec.Text != "ADD r16, r17" {
		t.Fatalf("text %q", rec.Text)
	}
}

// TestDecisionLogConcurrent hammers Record from many goroutines: every
// decision must be counted exactly once and every emitted line must be valid
// standalone JSON (no interleaving).
func TestDecisionLogConcurrent(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	l := NewDecisionLog(w, 3)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = l.Record(sampleRecord(0.5))
			}
		}()
	}
	wg.Wait()
	if l.Seen() != workers*per {
		t.Fatalf("seen %d, want %d", l.Seen(), workers*per)
	}
	seen := map[int64]bool{}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var rec DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d", rec.Seq)
		}
		seen[rec.Seq] = true
	}
	if len(seen) != workers*per/3+1 {
		t.Fatalf("%d lines, want %d", len(seen), workers*per/3+1)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
