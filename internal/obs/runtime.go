package obs

// RuntimeCollector samples process-level runtime health into a registry on a
// ticker: goroutine count, heap/GC statistics from runtime/metrics, a GC
// pause histogram, process CPU seconds, and the open-file-descriptor count
// where the platform exposes one. A long-running server starts one so
// /metrics alone answers "is the process itself healthy" — the pipeline
// instruments say nothing about goroutine leaks or GC pressure.
//
// Extra samplers (AddSampler) run on the same tick, which is how the serve
// layer publishes per-template load/drift gauges without its own goroutine.

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// DefaultRuntimeInterval is the default sampling period.
const DefaultRuntimeInterval = 15 * time.Second

// runtime/metrics sample names, fixed at collector construction. Unsupported
// names (older/newer toolchains) read as KindBad and are skipped.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapObject = "/memory/classes/heap/objects:bytes"
	rmMemTotal   = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
)

// RuntimeCollector periodically samples runtime health gauges. Construct
// with NewRuntimeCollector, then Start/Stop (or SampleOnce for one-shot use).
type RuntimeCollector struct {
	interval time.Duration

	goroutines *Gauge     // runtime.goroutines
	heapBytes  *Gauge     // runtime.heap.objects.bytes
	memBytes   *Gauge     // runtime.mem.total.bytes
	gcCycles   *Gauge     // runtime.gc.cycles
	cpuSeconds *Gauge     // runtime.cpu.seconds
	openFDs    *Gauge     // process.open_fds (absent where not portable)
	gcPause    *Histogram // runtime.gc.pause.seconds
	samplesRun *Counter   // runtime.collector.samples

	samples   []metrics.Sample
	prevPause *metrics.Float64Histogram

	mu       sync.Mutex
	samplers []func()

	stop chan struct{}
	done chan struct{}
}

// GCPauseBuckets is the layout of the GC pause histogram: 10 µs to ~100 ms
// territory with the same geometric growth as DurationBuckets.
func GCPauseBuckets() BucketLayout {
	return BucketLayout{Min: 1e-6, Growth: math.Pow(2, 0.5), NumBuckets: 48}
}

// NewRuntimeCollector binds the runtime gauges onto r. interval <= 0 uses
// DefaultRuntimeInterval. The collector does not sample until Start or
// SampleOnce.
func NewRuntimeCollector(r *Registry, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	c := &RuntimeCollector{
		interval:   interval,
		goroutines: r.Gauge("runtime.goroutines"),
		heapBytes:  r.Gauge("runtime.heap.objects.bytes"),
		memBytes:   r.Gauge("runtime.mem.total.bytes"),
		gcCycles:   r.Gauge("runtime.gc.cycles"),
		cpuSeconds: r.Gauge("runtime.cpu.seconds"),
		gcPause:    r.HistogramWith("runtime.gc.pause.seconds", GCPauseBuckets()),
		samplesRun: r.Counter("runtime.collector.samples"),
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapObject},
			{Name: rmMemTotal},
			{Name: rmGCCycles},
			{Name: rmGCPauses},
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if countOpenFDs() >= 0 {
		c.openFDs = r.Gauge("process.open_fds")
	}
	return c
}

// AddSampler registers fn to run on every tick (after the runtime sample).
// The serve layer hooks per-template registry gauges in here. Safe to call
// concurrently with a running collector.
func (c *RuntimeCollector) AddSampler(fn func()) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	c.samplers = append(c.samplers, fn)
	c.mu.Unlock()
}

// Interval returns the effective sampling period.
func (c *RuntimeCollector) Interval() time.Duration {
	if c == nil {
		return 0
	}
	return c.interval
}

// Start samples once immediately (so /metrics is populated before the first
// tick) and then launches the ticker goroutine. Call Stop exactly once to
// end it; Start must not be called twice.
func (c *RuntimeCollector) Start() {
	if c == nil {
		return
	}
	c.SampleOnce()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.SampleOnce()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop ends the ticker goroutine and waits for it to exit. No-op on a nil
// collector; must not be called before Start or twice.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

// SampleOnce takes one sample of every runtime metric and runs the extra
// samplers. Safe to call directly (tests, pre-scrape refresh).
func (c *RuntimeCollector) SampleOnce() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmGoroutines:
			c.goroutines.Set(sampleFloat(s))
		case rmHeapObject:
			c.heapBytes.Set(sampleFloat(s))
		case rmMemTotal:
			c.memBytes.Set(sampleFloat(s))
		case rmGCCycles:
			c.gcCycles.Set(sampleFloat(s))
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.observePauseDelta(s.Value.Float64Histogram())
			}
		}
	}
	if ns := processCPUNanos(); ns > 0 {
		c.cpuSeconds.Set(float64(ns) / 1e9)
	}
	if c.openFDs != nil {
		if n := countOpenFDs(); n >= 0 {
			c.openFDs.Set(float64(n))
		}
	}
	for _, fn := range c.samplers {
		fn()
	}
	c.samplesRun.Inc()
}

// sampleFloat converts a runtime/metrics sample to float64, 0 for
// unsupported kinds.
func sampleFloat(s *metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// observePauseDelta folds new GC pauses since the previous sample into the
// pause histogram. runtime/metrics exposes pauses as a cumulative bucketed
// histogram; the delta of each bucket's count is observed at the bucket's
// geometric midpoint, so the obs histogram tracks the live pause
// distribution without ReadMemStats' stop-the-world. Per-bucket deltas are
// capped to bound work if the collector was stopped for a long time.
func (c *RuntimeCollector) observePauseDelta(h *metrics.Float64Histogram) {
	defer func() { c.prevPause = cloneFloat64Histogram(h) }()
	prev := c.prevPause
	if prev == nil || len(prev.Counts) != len(h.Counts) {
		return // first sample (or layout change): establish the baseline only
	}
	const maxPerBucket = 1024
	for i, n := range h.Counts {
		d := int64(n) - int64(prev.Counts[i])
		if d <= 0 {
			continue
		}
		if d > maxPerBucket {
			d = maxPerBucket
		}
		mid := bucketMidpoint(h.Buckets, i)
		for ; d > 0; d-- {
			c.gcPause.Observe(mid)
		}
	}
}

// bucketMidpoint picks a representative value for bucket i of a
// runtime/metrics histogram, clamping the open-ended edges.
func bucketMidpoint(edges []float64, i int) float64 {
	lo, hi := edges[i], edges[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	case lo > 0 && hi > 0:
		return math.Sqrt(lo * hi) // geometric midpoint, matching our buckets
	default:
		return (lo + hi) / 2
	}
}

// cloneFloat64Histogram copies the counts of a runtime/metrics histogram
// (the runtime may reuse the backing arrays between Read calls).
func cloneFloat64Histogram(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}
