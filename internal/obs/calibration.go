package obs

import (
	"math"
	"sync"
)

// reliabilityBuckets is the number of equal-width confidence buckets over
// [0, 1] — ten is the conventional ECE binning.
const reliabilityBuckets = 10

// Reliability tracks how well confidence values track accuracy: a
// reliability histogram over confidence buckets plus the expected
// calibration error. Observations with ground truth (Observe) feed both;
// confidence-only observations (ObserveConfidence) feed the volume and mean
// confidence, supporting online monitoring where no labels exist. Safe for
// concurrent use; a nil *Reliability is a valid no-op sink.
type Reliability struct {
	mu      sync.Mutex
	count   [reliabilityBuckets]int64 // labeled observations per bucket
	correct [reliabilityBuckets]int64
	sumConf [reliabilityBuckets]float64

	total        int64 // all observations, labeled or not
	totalConf    float64
	totalCorrect int64
	labeled      int64
}

// NewReliability returns an empty tracker.
func NewReliability() *Reliability { return &Reliability{} }

// bucketOf maps a confidence to its bucket, clamping into [0, 1].
func bucketOf(conf float64) int {
	if math.IsNaN(conf) || conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return reliabilityBuckets - 1
	}
	return int(conf * reliabilityBuckets)
}

// Observe records one ground-truth-labeled decision. No-op on nil.
func (r *Reliability) Observe(conf float64, correct bool) {
	if r == nil {
		return
	}
	if math.IsNaN(conf) {
		conf = 0
	}
	b := bucketOf(conf)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count[b]++
	r.sumConf[b] += conf
	if correct {
		r.correct[b]++
		r.totalCorrect++
	}
	r.labeled++
	r.total++
	r.totalConf += conf
}

// ObserveConfidence records a decision with no ground truth — it counts
// toward volume and mean confidence but not the reliability histogram or
// ECE. No-op on nil.
func (r *Reliability) ObserveConfidence(conf float64) {
	if r == nil {
		return
	}
	if math.IsNaN(conf) {
		conf = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.totalConf += conf
}

// Total returns how many decisions were observed at all (0 for nil).
func (r *Reliability) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Labeled returns how many ground-truth-labeled decisions were observed.
func (r *Reliability) Labeled() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labeled
}

// MeanConfidence returns the mean confidence over every observation (0 when
// empty or nil).
func (r *Reliability) MeanConfidence() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return 0
	}
	return r.totalConf / float64(r.total)
}

// ECE returns the expected calibration error over labeled observations:
// Σ_b (n_b/n)·|accuracy_b − mean-confidence_b|. Returns 0 when no labeled
// observations exist (or on nil).
func (r *Reliability) ECE() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eceLocked()
}

func (r *Reliability) eceLocked() float64 {
	if r.labeled == 0 {
		return 0
	}
	var ece float64
	for b := 0; b < reliabilityBuckets; b++ {
		n := float64(r.count[b])
		if n == 0 {
			continue
		}
		acc := float64(r.correct[b]) / n
		conf := r.sumConf[b] / n
		ece += n / float64(r.labeled) * math.Abs(acc-conf)
	}
	return ece
}

// ReliabilityBucket is one confidence bucket of a ReliabilitySnapshot.
type ReliabilityBucket struct {
	Lo             float64 `json:"lo"`
	Hi             float64 `json:"hi"`
	Count          int64   `json:"count"`
	Accuracy       float64 `json:"accuracy"`
	MeanConfidence float64 `json:"mean_confidence"`
}

// ReliabilitySnapshot is the JSON-serializable calibration summary.
type ReliabilitySnapshot struct {
	Total          int64               `json:"total"`
	Labeled        int64               `json:"labeled"`
	Accuracy       float64             `json:"accuracy"`
	MeanConfidence float64             `json:"mean_confidence"`
	ECE            float64             `json:"ece"`
	Buckets        []ReliabilityBucket `json:"buckets,omitempty"`
}

// Snapshot captures the tracker state; only non-empty buckets are included.
// Zero-valued on nil.
func (r *Reliability) Snapshot() ReliabilitySnapshot {
	if r == nil {
		return ReliabilitySnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := ReliabilitySnapshot{
		Total:   r.total,
		Labeled: r.labeled,
		ECE:     r.eceLocked(),
	}
	if r.total > 0 {
		s.MeanConfidence = r.totalConf / float64(r.total)
	}
	if r.labeled > 0 {
		s.Accuracy = float64(r.totalCorrect) / float64(r.labeled)
	}
	for b := 0; b < reliabilityBuckets; b++ {
		if r.count[b] == 0 {
			continue
		}
		n := float64(r.count[b])
		s.Buckets = append(s.Buckets, ReliabilityBucket{
			Lo:             float64(b) / reliabilityBuckets,
			Hi:             float64(b+1) / reliabilityBuckets,
			Count:          r.count[b],
			Accuracy:       float64(r.correct[b]) / n,
			MeanConfidence: r.sumConf[b] / n,
		})
	}
	return s
}
