package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http.requests", "route", "code")
	if cv.With("disassemble", "200") != cv.With("disassemble", "200") {
		t.Fatal("same label values resolved to different children")
	}
	if cv.With("disassemble", "200") == cv.With("disassemble", "500") {
		t.Fatal("different label values resolved to the same child")
	}
	if r.CounterVec("http.requests", "ignored") != cv {
		t.Fatal("same vec name resolved to a different vec")
	}
	gv := r.GaugeVec("g", "k")
	if gv.With("a") != gv.With("a") {
		t.Fatal("gauge children differ")
	}
	hv := r.HistogramVec("h", DurationBuckets(), "k")
	if hv.With("a") != hv.With("a") {
		t.Fatal("histogram children differ")
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("c", "k")
	gv := r.GaugeVec("g", "k")
	hv := r.HistogramVec("h", DurationBuckets(), "k")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry handed out live vecs")
	}
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	if cv.With("x").Value() != 0 {
		t.Fatal("nil vec child has a value")
	}
}

func TestVecSnapshotNesting(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("http.requests", "route", "code").With("disassemble", "200").Add(3)
	r.GaugeVec("tmpl.loaded", "template").With("avr").Set(1)
	r.HistogramVec("http.seconds", DurationBuckets(), "route").With("metrics").Observe(0.01)

	s := r.Snapshot()
	if got := s.LabeledCounters["http.requests"][`route="disassemble",code="200"`]; got != 3 {
		t.Fatalf("labeled counter = %v (snapshot %+v)", got, s.LabeledCounters)
	}
	if got := s.LabeledGauges["tmpl.loaded"][`template="avr"`]; got != 1 {
		t.Fatalf("labeled gauge = %v", got)
	}
	if got := s.LabeledHistograms["http.seconds"][`route="metrics"`]; got.Count != 1 {
		t.Fatalf("labeled histogram = %+v", got)
	}
}

// Flooding a vec with unique label values must collapse into the "other"
// child instead of growing without bound — the cardinality guard of the
// acceptance criteria.
func TestVecCardinalityFloodCollapses(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("flood", "template")
	const n = DefaultLabelLimit + 1000
	for i := 0; i < n; i++ {
		cv.With(fmt.Sprintf("tmpl-%d", i)).Inc()
	}
	children := *cv.core.children.Load()
	if len(children) > DefaultLabelLimit+1 {
		t.Fatalf("flood grew the child map to %d entries (limit %d)", len(children), DefaultLabelLimit)
	}
	s := r.Snapshot()
	other := s.LabeledCounters["flood"][`template="other"`]
	if other != 1000 {
		t.Fatalf("other child absorbed %d observations, want 1000", other)
	}
	if s.Counters["obs.labels.dropped"] != 1000 {
		t.Fatalf("obs.labels.dropped = %d, want 1000", s.Counters["obs.labels.dropped"])
	}
	// The collapsed child keeps counting, still bumping dropped.
	cv.With("one-more").Inc()
	if v := r.Snapshot().LabeledCounters["flood"][`template="other"`]; v != 1001 {
		t.Fatalf("post-flood observation lost: other = %v", v)
	}
}

// Passing the wrong number of label values is a call-site bug; it must land
// in "other" and count as dropped rather than panic on the serving path.
func TestVecArityMismatchCollapses(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("m", "a", "b")
	cv.With("only-one").Inc()
	s := r.Snapshot()
	if got := s.LabeledCounters["m"][`a="other",b="other"`]; got != 1 {
		t.Fatalf("arity mismatch child = %v (%+v)", got, s.LabeledCounters)
	}
	if s.Counters["obs.labels.dropped"] != 1 {
		t.Fatalf("dropped = %d", s.Counters["obs.labels.dropped"])
	}
}

func TestVecConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("conc", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With(fmt.Sprintf("w%d", w%4)).Inc()
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range r.Snapshot().LabeledCounters["conc"] {
		total += v
	}
	if total != 8*500 {
		t.Fatalf("lost updates: total = %d, want %d", total, 8*500)
	}
}

// Label values are caller data (template names come off the filesystem) and
// must be escaped per the Prometheus text format.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc", "template").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc{template="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
	// Had the newline leaked unescaped, the broken second half would fail the
	// line-format check.
	checkPromFormat(t, buf.String())
}

// Two renders of the same registry must be byte-identical, and labeled
// children must come out sorted.
func TestPrometheusStableOrdering(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ord", "route", "code")
	for _, l := range [][2]string{{"z", "500"}, {"a", "200"}, {"m", "404"}, {"a", "500"}} {
		cv.With(l[0], l[1]).Inc()
	}
	r.Counter("plain.z").Inc()
	r.Counter("plain.a").Inc()
	r.HistogramVec("ord.seconds", DurationBuckets(), "route").With("a").Observe(0.1)
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same registry differ")
	}
	za := strings.Index(a.String(), `ord{route="a",code="200"}`)
	zz := strings.Index(a.String(), `ord{route="z",code="500"}`)
	if za < 0 || zz < 0 || za > zz {
		t.Fatalf("labeled children not sorted:\n%s", a.String())
	}
}

// promtool-style line-format check in pure Go: every line of the exposition
// must be a comment or a syntactically valid sample with legal metric/label
// names, balanced quotes, and a parseable value.
var (
	promCommentRe = regexp.MustCompile(`^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$`)
	// No trailing tokens after the value: a classic 0.0.4 parser would read
	// them as a timestamp, so any stray suffix (e.g. exemplar syntax) must
	// fail this check.
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)
)

func checkPromFormat(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: sample %q precedes its TYPE line", i+1, name)
		}
	}
}

func TestPrometheusLineFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain.counter").Add(2)
	r.Gauge("plain.gauge").Set(-1.5)
	r.Histogram("plain.hist").Observe(0.003)
	r.CounterVec("lab.counter", "template", "code").With("t\"1", "200").Inc()
	r.GaugeVec("lab.gauge", "template").With("t\\2").Set(3)
	r.HistogramVec("lab.hist.seconds", DurationBuckets(), "route").With("dis\nasm").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, buf.String())
}
