package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// SetupLogging installs a process-wide slog handler writing to w in the
// requested format: "text" (human-readable key=value) or "json" (one JSON
// object per line, for log shippers). verbose lowers the level to Debug.
func SetupLogging(format string, w io.Writer, verbose bool) error {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}
