package dsp

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/testkit"
)

// randomCells draws count cells uniformly over the scales×n plane, always
// including the four plane corners when it can — the corners are where kernel
// truncation clips hardest, so they must never be under-sampled by chance.
func randomCells(g *testkit.G, scales, n, count int) []Cell {
	cells := []Cell{
		{Scale: 0, Time: 0},
		{Scale: 0, Time: n - 1},
		{Scale: scales - 1, Time: 0},
		{Scale: scales - 1, Time: n - 1},
	}
	for len(cells) < count {
		cells = append(cells, Cell{Scale: g.Rng.Intn(scales), Time: g.Rng.Intn(n)})
	}
	return cells
}

// TestSparseMatchesTransform is the core agreement property: for random
// traces, banks, and cell sets (always including the plane corners, where the
// kernel window clips against the trace edges), the sparse dot-product path
// reproduces the full FFT scalogram within testkit.CWTTol.
func TestSparseMatchesTransform(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 8}, func(g *testkit.G) error {
		n := g.Size(16, 256)
		nScales := g.Size(2, 12)
		maxScale := g.Float64(8, 48)
		c, err := NewCWT(nScales, 2, maxScale)
		if err != nil {
			return err
		}
		x := g.Trace(n)
		cells := randomCells(g, nScales, n, g.Size(4, 40))
		s, err := c.Sparse(n, cells)
		if err != nil {
			return err
		}
		got, err := s.Values(x)
		if err != nil {
			return err
		}
		full := c.Transform(x)
		for i, cl := range cells {
			want := full[cl.Scale][cl.Time]
			if !testkit.Close(got[i], want, testkit.CWTTol, testkit.CWTTol) {
				return fmt.Errorf("cell %d (scale %d, time %d): sparse=%g fft=%g (diff %g, %d ulp)",
					i, cl.Scale, cl.Time, got[i], want, got[i]-want, testkit.ULPDiff(got[i], want))
			}
		}
		return nil
	})
}

// TestSparseProductionBankMatchesDirect pins the configuration that matters:
// the paper's 50×[2,80] bank over 315-sample traces, compared against the
// time-domain DirectCWT oracle (not the FFT path), at the plane corners plus
// a random spread.
func TestSparseProductionBankMatchesDirect(t *testing.T) {
	c, err := NewCWT(50, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(23)
	const n = 315
	x := g.Trace(n)
	cells := randomCells(g, 50, n, 64)
	s, err := c.Sparse(n, cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Values(x)
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.DirectCWT(x, scalesOf(c), MorletOmega0, kernelHalfWidthSigmas)
	for i, cl := range cells {
		testkit.InDelta(t, got[i], want[cl.Scale][cl.Time], testkit.CWTTol,
			fmt.Sprintf("sparse cell (scale %d, time %d)", cl.Scale, cl.Time))
	}
}

// TestSparseBatchMatchesSerial asserts the batch path is bitwise identical to
// per-trace Values regardless of worker count.
func TestSparseBatchMatchesSerial(t *testing.T) {
	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)

	c, err := NewCWT(8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(29)
	xs := g.Traces(7, 96)
	cells := randomCells(g, 8, 96, 12)
	s, err := c.Sparse(96, cells)
	if err != nil {
		t.Fatal(err)
	}
	serial := make([][]float64, len(xs))
	for i, x := range xs {
		if serial[i], err = s.Values(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, err := s.ValuesBatch(xs)
		if err != nil {
			t.Fatalf("ValuesBatch with %d workers: %v", workers, err)
		}
		testkit.ExactEqual2D(t, got, serial, fmt.Sprintf("sparse batch with %d workers vs serial", workers))
	}
}

// TestSparseValidation covers the constructor and evaluation error paths.
func TestSparseValidation(t *testing.T) {
	c, err := NewCWT(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sparse(0, nil); err == nil {
		t.Fatal("Sparse accepted a zero trace length")
	}
	if _, err := c.Sparse(32, []Cell{{Scale: 4, Time: 0}}); err == nil {
		t.Fatal("Sparse accepted an out-of-range scale")
	}
	if _, err := c.Sparse(32, []Cell{{Scale: 0, Time: 32}}); err == nil {
		t.Fatal("Sparse accepted an out-of-range time")
	}
	s, err := c.Sparse(32, []Cell{{Scale: 1, Time: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Values(make([]float64, 31)); err == nil {
		t.Fatal("Values accepted a wrong-length trace")
	}
	if err := s.ValuesInto(make([]float64, 2), make([]float64, 32)); err == nil {
		t.Fatal("ValuesInto accepted a wrong-length output")
	}
}

// TestSparseCountersNotFullCounter pins the satellite requirement: a sparse
// evaluation bumps the sparse transform/cell counters and leaves the
// full-transform counter untouched.
func TestSparseCountersNotFullCounter(t *testing.T) {
	c, err := NewCWT(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(31)
	x := g.Trace(64)
	cells := randomCells(g, 4, 64, 9)
	s, err := c.Sparse(64, cells)
	if err != nil {
		t.Fatal(err)
	}
	full0, sp0, cells0 := TransformCount(), SparseTransformCount(), SparseCellCount()
	if _, err := s.Values(x); err != nil {
		t.Fatal(err)
	}
	if got := TransformCount() - full0; got != 0 {
		t.Fatalf("sparse evaluation bumped the full-transform counter by %d", got)
	}
	if got := SparseTransformCount() - sp0; got != 1 {
		t.Fatalf("sparse transform counter delta = %d, want 1", got)
	}
	if got := SparseCellCount() - cells0; got != uint64(len(cells)) {
		t.Fatalf("sparse cell counter delta = %d, want %d", got, len(cells))
	}
}

// TestBankConfigDefaultsAndValidation covers the zero-value resolution that
// keeps pre-BankConfig templates meaningful, plus the rejection paths.
func TestBankConfigDefaultsAndValidation(t *testing.T) {
	c, err := NewCWTBank(BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultBank()
	if c.Bank() != want {
		t.Fatalf("zero-value bank resolved to %+v, want %+v", c.Bank(), want)
	}
	ref, err := NewCWT(50, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumScales() != ref.NumScales() {
		t.Fatalf("zero-value bank has %d scales, want %d", c.NumScales(), ref.NumScales())
	}
	for j := 0; j < c.NumScales(); j++ {
		if c.Scale(j) != ref.Scale(j) {
			t.Fatalf("scale %d: %g != %g", j, c.Scale(j), ref.Scale(j))
		}
	}
	for _, bad := range []BankConfig{
		{NumScales: -1, MinScale: 2, MaxScale: 8},
		{NumScales: 4, MinScale: 0, MaxScale: 8},
		{NumScales: 4, MinScale: 8, MaxScale: 2},
		{NumScales: 4, MinScale: 2, MaxScale: 8, Omega0: -1},
	} {
		if _, err := NewCWTBank(bad); err == nil {
			t.Fatalf("NewCWTBank accepted invalid bank %+v", bad)
		}
	}
}
