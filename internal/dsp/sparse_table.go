package dsp

import "fmt"

// SparseTable is the serializable form of a SparseCWT: the precomputed
// per-cell kernel windows, flattened. The template store persists the Re/Im
// sample arrays as checksummed sections and the integer structure in the
// eagerly decoded header, so a served template skips the kernel rebuild
// (morletKernel sampling over every selected cell) at materialization time.
//
// Invariant layout (mirrors SparseCWT): cell i reads trace samples
// [Lo[i], Lo[i]+length) against Re/Im[Off[i] : Off[i]+length), where
// length = Off[i+1]-Off[i].
type SparseTable struct {
	Bank  BankConfig
	N     int // trace length
	Cells []Cell
	Lo    []int
	Off   []int // len(Cells)+1
	Re    []float64
	Im    []float64
}

// Table snapshots the evaluator's kernel table. The integer structure is
// copied; the Re/Im sample arrays are shared (the store never mutates them).
func (s *SparseCWT) Table() *SparseTable {
	return &SparseTable{
		Bank:  s.bank,
		N:     s.n,
		Cells: append([]Cell(nil), s.cells...),
		Lo:    append([]int(nil), s.lo...),
		Off:   append([]int(nil), s.off...),
		Re:    s.re,
		Im:    s.im,
	}
}

// Strip returns a copy without the kernel sample payloads — the part of the
// table that lives in lazily loaded sections rather than the store header.
func (t *SparseTable) Strip() *SparseTable {
	c := *t
	c.Re, c.Im = nil, nil
	return &c
}

// SparseFromTable reconstructs a SparseCWT from a persisted kernel table,
// validating every structural invariant the hot loop relies on — window
// bounds, offset monotonicity, array agreement — so a table of uncontrolled
// origin (a crafted or corrupted template file) can never smuggle an
// out-of-bounds read into ValuesInto.
func SparseFromTable(t *SparseTable) (*SparseCWT, error) {
	if t == nil {
		return nil, fmt.Errorf("dsp: nil sparse kernel table")
	}
	bank := t.Bank.withDefaults()
	if err := bank.Validate(); err != nil {
		return nil, fmt.Errorf("dsp: sparse kernel table: %w", err)
	}
	if t.N < 1 {
		return nil, fmt.Errorf("dsp: sparse kernel table trace length %d", t.N)
	}
	nc := len(t.Cells)
	if len(t.Lo) != nc || len(t.Off) != nc+1 {
		return nil, fmt.Errorf("dsp: sparse kernel table structure mismatch: %d cells, %d windows, %d offsets",
			nc, len(t.Lo), len(t.Off))
	}
	if t.Off[0] != 0 {
		return nil, fmt.Errorf("dsp: sparse kernel table offsets start at %d, want 0", t.Off[0])
	}
	for i, cl := range t.Cells {
		if cl.Scale < 0 || cl.Scale >= bank.NumScales {
			return nil, fmt.Errorf("dsp: sparse kernel table cell %d scale %d out of range [0,%d)", i, cl.Scale, bank.NumScales)
		}
		if cl.Time < 0 || cl.Time >= t.N {
			return nil, fmt.Errorf("dsp: sparse kernel table cell %d time %d out of range [0,%d)", i, cl.Time, t.N)
		}
		width := t.Off[i+1] - t.Off[i]
		if width < 0 {
			return nil, fmt.Errorf("dsp: sparse kernel table offsets not monotone at cell %d", i)
		}
		if t.Lo[i] < 0 || t.Lo[i]+width > t.N {
			return nil, fmt.Errorf("dsp: sparse kernel table cell %d window [%d,%d) outside trace of length %d",
				i, t.Lo[i], t.Lo[i]+width, t.N)
		}
	}
	total := t.Off[nc]
	if len(t.Re) != total || len(t.Im) != total {
		return nil, fmt.Errorf("dsp: sparse kernel table declares %d kernel samples, holds %d re / %d im",
			total, len(t.Re), len(t.Im))
	}
	return &SparseCWT{
		bank:  bank,
		n:     t.N,
		cells: append([]Cell(nil), t.Cells...),
		lo:    append([]int(nil), t.Lo...),
		off:   append([]int(nil), t.Off...),
		re:    t.Re,
		im:    t.Im,
	}, nil
}
