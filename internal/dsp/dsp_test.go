package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testkit"
)

func TestFFTKnownImpulse(t *testing.T) {
	// DFT of an impulse is all ones.
	x := []complex128{1, 0, 0, 0}
	y := FFT(x)
	for i, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("FFT(impulse)[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure complex exponential at bin 3 of a 16-point DFT produces a
	// single spike of height 16.
	n := 16
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	y := FFT(x)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		testkit.InDelta(t, cmplx.Abs(y[k]), want, 1e-9, "FFT bin magnitude")
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-10 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFFTRoundTripArbitraryLength(t *testing.T) {
	// 315 = the paper's trace length; exercises Bluestein.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 7, 50, 315} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	n := 13
	rng := rand.New(rand.NewSource(11))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := FFT(x)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		if cmplx.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("bin %d: got %v, want %v", k, got[k], want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(rng.Int31n(40))
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + 2*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time equals energy/N in frequency.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rng.Int31n(100))
		x := make([]complex128, n)
		var et float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		y := FFT(x)
		var ef float64
		for _, v := range y {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		ef /= float64(n)
		return testkit.Close(ef, et, 1e-7, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	testkit.AllClose(t, got, want, 0, 1e-10, "known convolution")
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := make([]float64, 37)
	b := make([]float64, 12)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := Convolve(a, b)
	for n := 0; n < len(a)+len(b)-1; n++ {
		var want float64
		for k := 0; k < len(a); k++ {
			if j := n - k; j >= 0 && j < len(b) {
				want += a[k] * b[j]
			}
		}
		testkit.InDelta(t, got[n], want, 1e-9, "convolution vs naive")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewCWTValidation(t *testing.T) {
	if _, err := NewCWT(0, 2, 80); err == nil {
		t.Fatal("want error for zero scales")
	}
	if _, err := NewCWT(10, -1, 80); err == nil {
		t.Fatal("want error for negative min scale")
	}
	if _, err := NewCWT(10, 80, 2); err == nil {
		t.Fatal("want error for inverted range")
	}
}

func TestCWTScalesAreGeometric(t *testing.T) {
	c, err := NewCWT(50, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumScales() != 50 {
		t.Fatalf("NumScales = %d", c.NumScales())
	}
	testkit.InDelta(t, c.Scale(0), 2, 1e-12, "first scale")
	testkit.InDelta(t, c.Scale(49), 80, 1e-9, "last scale")
	// Ratio between consecutive scales must be constant.
	r := c.Scale(1) / c.Scale(0)
	for j := 2; j < 50; j++ {
		testkit.InDelta(t, c.Scale(j)/c.Scale(j-1), r, 1e-9, "geometric scale ratio")
	}
	// Center frequency decreases with scale.
	for j := 1; j < 50; j++ {
		if c.CenterFrequency(j) >= c.CenterFrequency(j-1) {
			t.Fatal("center frequency must decrease with scale index")
		}
	}
}

func TestCWTLocalizesSinusoid(t *testing.T) {
	// A pure sinusoid at frequency f should produce maximal CWT response at
	// the scale whose center frequency is closest to f.
	c, err := NewCWT(30, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	n := 512
	freq := 0.08 // cycles/sample
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i))
	}
	sc := c.Transform(x)
	// Find the scale with the max mid-trace magnitude.
	bestJ, bestV := -1, 0.0
	for j := range sc {
		v := sc[j][n/2]
		if v > bestV {
			bestJ, bestV = j, v
		}
	}
	// Find the scale whose center frequency is nearest freq.
	wantJ, wantD := -1, math.Inf(1)
	for j := 0; j < c.NumScales(); j++ {
		d := math.Abs(c.CenterFrequency(j) - freq)
		if d < wantD {
			wantJ, wantD = j, d
		}
	}
	if abs := math.Abs(float64(bestJ - wantJ)); abs > 2 {
		t.Fatalf("CWT peak at scale %d (f=%.4f), expected near %d (f=%.4f)",
			bestJ, c.CenterFrequency(bestJ), wantJ, c.CenterFrequency(wantJ))
	}
}

func TestCWTTransformShape(t *testing.T) {
	c, _ := NewCWT(50, 2, 80)
	x := make([]float64, 315)
	sc := c.Transform(x)
	if len(sc) != 50 {
		t.Fatalf("rows = %d", len(sc))
	}
	for j := range sc {
		if len(sc[j]) != 315 {
			t.Fatalf("row %d has %d cols", j, len(sc[j]))
		}
	}
	flat := c.TransformFlat(x)
	if len(flat) != 50*315 {
		t.Fatalf("flat len = %d, want %d", len(flat), 50*315)
	}
}

func TestCWTZeroSignalIsZero(t *testing.T) {
	c, _ := NewCWT(10, 2, 20)
	sc := c.Transform(make([]float64, 100))
	for j := range sc {
		for k := range sc[j] {
			if sc[j][k] != 0 {
				t.Fatalf("CWT of zero signal nonzero at (%d,%d): %g", j, k, sc[j][k])
			}
		}
	}
}

func TestCWTMagnitudeNonNegativeProperty(t *testing.T) {
	c, _ := NewCWT(8, 2, 30)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, row := range c.Transform(x) {
			for _, v := range row {
				if v < 0 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignByCrossCorrelation(t *testing.T) {
	n := 200
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = math.Exp(-math.Pow(float64(i-100)/8, 2))
	}
	// Shift the reference by +5 samples.
	shifted := make([]float64, n)
	for i := range shifted {
		j := i - 5
		if j >= 0 && j < n {
			shifted[i] = ref[j]
		}
	}
	aligned, sh := AlignByCrossCorrelation(ref, shifted, 10)
	if sh != 5 {
		t.Fatalf("detected shift %d, want 5", sh)
	}
	testkit.AllClose(t, aligned[20:n-20], ref[20:n-20], 0, 1e-9, "aligned interior")
}

func TestAlignNoShiftForIdentical(t *testing.T) {
	x := []float64{1, 2, 3, 2, 1}
	_, sh := AlignByCrossCorrelation(x, x, 2)
	if sh != 0 {
		t.Fatalf("shift = %d, want 0", sh)
	}
}

func BenchmarkFFT315(b *testing.B) {
	x := make([]complex128, 315)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkCWT50x315(b *testing.B) {
	c, _ := NewCWT(50, 2, 80)
	x := make([]float64, 315)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transform(x)
	}
}
