package dsp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Sparse CWT inference: instead of 50 full FFT convolutions per trace, a
// SparseCWT evaluates only a fixed set of (scale, time) cells as direct dot
// products of the trace against precomputed, truncated Morlet kernels. The
// DNVP selection keeps ~205 of the 15 750 time–frequency cells, so the full
// scalogram computed at inference time is >98% waste; this type is the
// inverted pipeline that computes exactly what the templates read.
//
// Agreement with the FFT path: both paths sample the identical truncated
// kernel (morletKernel, ±4σ support), so the only divergence is accumulation
// order — the FFT's O(m log m) rounding versus the dot product's O(k). The
// property tests pin max-abs agreement within testkit.CWTTol (1e-9).

// Cell is one time–frequency coordinate: scale index j, time index k —
// dsp's view of a features.Point.
type Cell struct {
	Scale int
	Time  int
}

// sparseTransformCount / sparseCellCount mirror transformCount for the
// sparse path: always-live counters attached to the registry as
// "dsp.cwt.sparse.transforms" and "dsp.cwt.sparse_cells". The sparse path
// deliberately does NOT touch the full-transform counter, so the
// one-full-CWT-per-trace assertions and the DESIGN §8 metric catalogue stay
// truthful about which path ran.
var (
	sparseTransformCount = obs.NewCounter()
	sparseCellCount      = obs.NewCounter()
)

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		r.Attach("dsp.cwt.sparse.transforms", sparseTransformCount)
		r.Attach("dsp.cwt.sparse_cells", sparseCellCount)
	})
}

// SparseTransformCount returns the cumulative number of sparse evaluations
// (Values/ValuesInto calls, and per-trace items of ValuesBatch) since process
// start. Together with TransformCount it lets tests assert which path a
// classification took.
func SparseTransformCount() uint64 { return uint64(sparseTransformCount.Value()) }

// SparseCellCount returns the cumulative number of time–frequency cells
// computed by the sparse path since process start.
func SparseCellCount() uint64 { return uint64(sparseCellCount.Value()) }

// SparseCWT evaluates a fixed cell set of the magnitude scalogram for traces
// of one fixed length. Build one with CWT.Sparse and reuse it for every
// trace; construction precomputes the per-cell kernel windows.
//
// Concurrency: a SparseCWT is immutable after construction and safe for
// concurrent use — Values allocates only its output, ValuesInto writes only
// dst, and no scratch state is shared (the direct dot products need none, so
// unlike the FFT path there is no buffer pool to contend on).
type SparseCWT struct {
	bank  BankConfig
	n     int // trace length
	cells []Cell

	// Per-cell kernel windows, stored contiguously: cell i reads trace
	// samples [lo[i], lo[i]+length) against re/im[off[i] : off[i]+length),
	// where length = off[i+1]-off[i]. One flat backing array keeps the walk
	// cache-friendly regardless of how scattered the cells are.
	lo  []int
	off []int // len(cells)+1; off[i+1]-off[i] is cell i's support length
	re  []float64
	im  []float64
}

// Sparse builds a sparse evaluator for the given cell set over traces of
// length n, sharing this transform's scale bank and kernel truncation. Cells
// may be in any order and may repeat; Values returns magnitudes in the given
// cell order. Cells at the trace edges are handled exactly like the full
// path: the kernel window is clipped to the trace, never reflected or padded.
func (c *CWT) Sparse(n int, cells []Cell) (*SparseCWT, error) {
	if n < 1 {
		return nil, fmt.Errorf("dsp: Sparse needs a positive trace length, got %d", n)
	}
	total := 0
	for i, cl := range cells {
		if cl.Scale < 0 || cl.Scale >= len(c.scales) {
			return nil, fmt.Errorf("dsp: cell %d scale %d out of range [0,%d)", i, cl.Scale, len(c.scales))
		}
		if cl.Time < 0 || cl.Time >= n {
			return nil, fmt.Errorf("dsp: cell %d time %d out of range [0,%d)", i, cl.Time, n)
		}
		half := (len(c.kernels[cl.Scale]) - 1) / 2
		lo, hi := cl.Time-half, cl.Time+half
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		total += hi - lo + 1
	}
	s := &SparseCWT{
		bank:  c.bank,
		n:     n,
		cells: append([]Cell(nil), cells...),
		lo:    make([]int, len(cells)),
		off:   make([]int, len(cells)+1),
		re:    make([]float64, total),
		im:    make([]float64, total),
	}
	pos := 0
	for i, cl := range cells {
		kern := c.kernels[cl.Scale]
		half := (len(kern) - 1) / 2
		lo, hi := cl.Time-half, cl.Time+half
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		s.lo[i] = lo
		s.off[i] = pos
		// The linear-convolution identity the FFT path implements:
		// W(j,k) = Σ_i x[i]·kern[k+half−i], so trace sample lo+m pairs with
		// kernel sample kern[k+half−lo−m].
		base := cl.Time + half - lo
		for m := 0; m <= hi-lo; m++ {
			kv := kern[base-m]
			s.re[pos] = real(kv)
			s.im[pos] = imag(kv)
			pos++
		}
	}
	s.off[len(cells)] = pos
	return s, nil
}

// Bank returns the bank configuration the kernels were built from.
func (s *SparseCWT) Bank() BankConfig { return s.bank }

// NumCells returns the size of the cell set.
func (s *SparseCWT) NumCells() int { return len(s.cells) }

// TraceLen returns the trace length the evaluator was built for.
func (s *SparseCWT) TraceLen() int { return s.n }

// Cells returns the cell set in evaluation order. The slice is shared; do
// not mutate it.
func (s *SparseCWT) Cells() []Cell { return s.cells }

// ValuesInto evaluates every cell of x into dst (len(dst) must equal
// NumCells): dst[i] = |W(cells[i].Scale, cells[i].Time)|, identical within
// testkit.CWTTol to the corresponding entries of CWT.Transform(x).
func (s *SparseCWT) ValuesInto(dst, x []float64) error {
	if len(x) != s.n {
		return fmt.Errorf("dsp: sparse trace length %d, want %d", len(x), s.n)
	}
	if len(dst) != len(s.cells) {
		return fmt.Errorf("dsp: sparse output length %d, want %d", len(dst), len(s.cells))
	}
	for i := range s.cells {
		off, end := s.off[i], s.off[i+1]
		xr := x[s.lo[i] : s.lo[i]+end-off]
		kr := s.re[off:end]
		ki := s.im[off:end]
		var re, im float64
		for m, v := range xr {
			re += v * kr[m]
			im += v * ki[m]
		}
		dst[i] = math.Hypot(re, im)
	}
	sparseTransformCount.Add(1)
	sparseCellCount.Add(int64(len(s.cells)))
	return nil
}

// Values is ValuesInto with a freshly allocated output.
func (s *SparseCWT) Values(x []float64) ([]float64, error) {
	dst := make([]float64, len(s.cells))
	if err := s.ValuesInto(dst, x); err != nil {
		return nil, err
	}
	return dst, nil
}

// ValuesBatch evaluates the cell set for every trace, parallelized over
// traces on the parallel.Workers() pool. The result is index-aligned with xs
// and identical to calling Values per trace.
func (s *SparseCWT) ValuesBatch(xs [][]float64) ([][]float64, error) {
	return s.ValuesBatchCtx(context.Background(), xs)
}

// ValuesBatchCtx is ValuesBatch with cooperative cancellation.
func (s *SparseCWT) ValuesBatchCtx(ctx context.Context, xs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(xs))
	if err := parallel.ForErrCtx(ctx, len(xs), func(i int) error {
		v, err := s.Values(xs[i])
		if err != nil {
			return fmt.Errorf("dsp: batch trace %d: %w", i, err)
		}
		out[i] = v
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
