package dsp

import (
	"fmt"
	"math"
)

// Morlet wavelet parameters. ω0 = 6 is the standard admissibility-respecting
// choice; the center frequency of scale s is ω0/(2πs) cycles per sample.
const (
	MorletOmega0 = 6.0
	// kernelHalfWidthSigmas controls truncation of the (infinite-support)
	// Morlet envelope; at 4σ the discarded tail is < 4e-4 of the peak.
	kernelHalfWidthSigmas = 4.0
)

// CWT computes a continuous wavelet transform of a real signal using the
// analytic Morlet wavelet over a fixed bank of scales. The result is the
// coefficient magnitude |W(j, k)| for scale index j and time index k — a
// Scales×len(x) matrix, matching the paper's 50×315 time–frequency plane.
type CWT struct {
	scales  []float64
	kernels [][]complex128 // time-reversed conjugate wavelet per scale

	// FFT plan cache: kernel spectra at a common padded length, keyed by
	// that length. Every trace of the same length reuses the plan, so a
	// Transform costs one forward FFT plus one inverse FFT per scale.
	planLen     int
	kernelFFTs  [][]complex128
	maxKernelSz int
}

// NewCWT builds a transform with nScales scales geometrically spaced between
// minScale and maxScale (in samples). The paper's configuration is
// NewCWT(50, 2, 80): center frequencies from ~0.48 down to ~0.012
// cycles/sample, which brackets the clock harmonics of a 16 MHz target
// sampled at 2.5 GS/s.
func NewCWT(nScales int, minScale, maxScale float64) (*CWT, error) {
	if nScales < 1 {
		return nil, fmt.Errorf("dsp: NewCWT needs at least 1 scale, got %d", nScales)
	}
	if minScale <= 0 || maxScale < minScale {
		return nil, fmt.Errorf("dsp: invalid scale range [%g, %g]", minScale, maxScale)
	}
	c := &CWT{
		scales:  make([]float64, nScales),
		kernels: make([][]complex128, nScales),
	}
	for j := 0; j < nScales; j++ {
		var s float64
		if nScales == 1 {
			s = minScale
		} else {
			// Geometric spacing: fine resolution at small scales.
			t := float64(j) / float64(nScales-1)
			s = minScale * math.Pow(maxScale/minScale, t)
		}
		c.scales[j] = s
		c.kernels[j] = morletKernel(s)
		if len(c.kernels[j]) > c.maxKernelSz {
			c.maxKernelSz = len(c.kernels[j])
		}
	}
	return c, nil
}

// plan (re)builds the kernel FFT cache for signals of length n.
func (c *CWT) plan(n int) {
	m := NextPow2(n + c.maxKernelSz - 1)
	if m == c.planLen {
		return
	}
	c.planLen = m
	c.kernelFFTs = make([][]complex128, len(c.kernels))
	for j, kern := range c.kernels {
		fk := make([]complex128, m)
		copy(fk, kern)
		radix2(fk, false)
		c.kernelFFTs[j] = fk
	}
}

// NumScales returns the number of scales in the bank.
func (c *CWT) NumScales() int { return len(c.scales) }

// Scale returns the scale (in samples) of scale index j.
func (c *CWT) Scale(j int) float64 { return c.scales[j] }

// CenterFrequency returns the center frequency (cycles/sample) of scale j.
func (c *CWT) CenterFrequency(j int) float64 {
	return MorletOmega0 / (2 * math.Pi * c.scales[j])
}

// morletKernel returns the sampled, conjugated, time-reversed Morlet wavelet
// at scale s, normalized by 1/√s, ready for linear convolution.
func morletKernel(s float64) []complex128 {
	half := int(math.Ceil(kernelHalfWidthSigmas * s))
	n := 2*half + 1
	k := make([]complex128, n)
	norm := math.Pow(math.Pi, -0.25) / math.Sqrt(s)
	for i := 0; i < n; i++ {
		t := float64(i-half) / s
		env := norm * math.Exp(-0.5*t*t)
		// Conjugate of exp(iω0 t) evaluated at reversed time equals
		// exp(iω0 t) at forward time; Morlet is symmetric in envelope.
		k[i] = complex(env*math.Cos(MorletOmega0*t), env*math.Sin(MorletOmega0*t))
	}
	return k
}

// Transform returns the 2-D magnitude scalogram of x: out[j][k] = |W(s_j, k)|.
// The output has len(c.scales) rows and len(x) columns.
//
// Transform is not safe for concurrent use: the FFT plan cache is shared.
func (c *CWT) Transform(x []float64) [][]float64 {
	out := make([][]float64, len(c.scales))
	n := len(x)
	if n == 0 {
		for j := range out {
			out[j] = nil
		}
		return out
	}
	c.plan(n)
	m := c.planLen
	fx := make([]complex128, m)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	radix2(fx, false)
	invM := 1 / float64(m)
	prod := make([]complex128, m)
	for j := range c.kernels {
		fk := c.kernelFFTs[j]
		for i := range prod {
			prod[i] = fx[i] * fk[i]
		}
		radix2(prod, true)
		off := (len(c.kernels[j]) - 1) / 2
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			v := prod[i+off]
			row[i] = invM * math.Hypot(real(v), imag(v))
		}
		out[j] = row
	}
	return out
}

// TransformFlat is Transform with the scalogram flattened row-major into a
// single vector of length NumScales()*len(x) — the layout the feature
// selector indexes with (scaleIndex, timeIndex).
func (c *CWT) TransformFlat(x []float64) []float64 {
	rows := c.Transform(x)
	n := 0
	for _, r := range rows {
		n += len(r)
	}
	flat := make([]float64, 0, n)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat
}

// AlignByCrossCorrelation shifts trace so that its cross-correlation with
// ref is maximized within ±maxShift samples, returning the aligned copy and
// the shift that was applied. Out-of-range samples are filled with the edge
// value. The paper uses wavelet-domain alignment; integer-shift
// cross-correlation is the time-domain equivalent for synthetic traces.
func AlignByCrossCorrelation(ref, trace []float64, maxShift int) ([]float64, int) {
	if len(ref) != len(trace) || maxShift <= 0 {
		out := make([]float64, len(trace))
		copy(out, trace)
		return out, 0
	}
	best, bestShift := math.Inf(-1), 0
	for sh := -maxShift; sh <= maxShift; sh++ {
		var c float64
		for i := range ref {
			j := i + sh
			if j < 0 || j >= len(trace) {
				continue
			}
			c += ref[i] * trace[j]
		}
		if c > best {
			best, bestShift = c, sh
		}
	}
	out := make([]float64, len(trace))
	for i := range out {
		j := i + bestShift
		if j < 0 {
			j = 0
		}
		if j >= len(trace) {
			j = len(trace) - 1
		}
		out[i] = trace[j]
	}
	return out, bestShift
}
