package dsp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Morlet wavelet parameters. ω0 = 6 is the standard admissibility-respecting
// choice; the center frequency of scale s is ω0/(2πs) cycles per sample.
const (
	MorletOmega0 = 6.0
	// kernelHalfWidthSigmas controls truncation of the (infinite-support)
	// Morlet envelope; at 4σ the discarded tail is < 4e-4 of the peak.
	kernelHalfWidthSigmas = 4.0
)

// BankConfig names the mother-wavelet bank parameters that used to live as
// package-level constants: how many scales, over which range (in samples),
// and at which Morlet center frequency ω0. It is carried in
// features.PipelineConfig and persisted with every template, so sparse
// inference kernels are provably rebuilt from the same bank the template was
// fit with, and so the wavelet-ablation experiments can sweep banks without
// recompiling.
//
// The zero value means "the paper's bank" (see DefaultBank) — templates saved
// before BankConfig existed decode to the zero value and keep their exact
// behavior.
type BankConfig struct {
	// NumScales is the number of geometrically spaced scales (paper: 50).
	NumScales int
	// MinScale / MaxScale bound the scale range in samples (paper: 2..80).
	MinScale, MaxScale float64
	// Omega0 is the Morlet center frequency (paper: 6). Zero means
	// MorletOmega0.
	Omega0 float64
}

// DefaultBank is the paper's configuration: 50 scales from 2 to 80 samples
// at ω0 = 6 — center frequencies from ~0.48 down to ~0.012 cycles/sample,
// bracketing the clock harmonics of a 16 MHz target sampled at 2.5 GS/s.
func DefaultBank() BankConfig {
	return BankConfig{NumScales: 50, MinScale: 2, MaxScale: 80, Omega0: MorletOmega0}
}

// withDefaults resolves the zero value (and a zero Omega0) to the paper's
// bank so configs persisted by older builds keep their meaning.
func (b BankConfig) withDefaults() BankConfig {
	if b.NumScales == 0 && b.MinScale == 0 && b.MaxScale == 0 {
		b = DefaultBank()
	}
	if b.Omega0 == 0 {
		b.Omega0 = MorletOmega0
	}
	return b
}

// Validate reports whether the (default-resolved) bank is usable.
func (b BankConfig) Validate() error {
	b = b.withDefaults()
	if b.NumScales < 1 {
		return fmt.Errorf("dsp: bank needs at least 1 scale, got %d", b.NumScales)
	}
	if b.MinScale <= 0 || b.MaxScale < b.MinScale {
		return fmt.Errorf("dsp: invalid bank scale range [%g, %g]", b.MinScale, b.MaxScale)
	}
	if b.Omega0 <= 0 {
		return fmt.Errorf("dsp: bank ω0 must be positive, got %g", b.Omega0)
	}
	return nil
}

// transformCount counts completed scalogram computations process-wide, as an
// always-live registry counter (attached under "dsp.cwt.transforms" whenever
// a registry is installed). The redundancy-elimination layer
// (core.Disassembler's shared scalogram) asserts "exactly one CWT per trace"
// by reading the delta.
var transformCount = obs.NewCounter()

// dspMetrics holds the dsp instrument handles; the handles are nil (no-op)
// under a nil registry. The live set is swapped atomically by the OnDefault
// hook so obs.SetDefault can rebind while transforms run.
type dspMetrics struct {
	planBuilds *obs.Counter // dsp.cwt.plan_cache.builds — FFT plans built
	planHits   *obs.Counter // dsp.cwt.plan_cache.hits — plans served from cache
	poolReuses *obs.Counter // dsp.cwt.pool.reuses — scratch buffers recycled
	poolAllocs *obs.Counter // dsp.cwt.pool.allocs — scratch buffers allocated
}

var metPtr atomic.Pointer[dspMetrics]

// met returns the current handle set; never nil.
func met() *dspMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &dspMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		r.Attach("dsp.cwt.transforms", transformCount)
		metPtr.Store(&dspMetrics{
			planBuilds: r.Counter("dsp.cwt.plan_cache.builds"),
			planHits:   r.Counter("dsp.cwt.plan_cache.hits"),
			poolReuses: r.Counter("dsp.cwt.pool.reuses"),
			poolAllocs: r.Counter("dsp.cwt.pool.allocs"),
		})
	})
}

// TransformCount returns the cumulative number of scalogram computations
// (Transform/TransformFlat calls, and per-trace items of the batch paths)
// performed by all CWT instances since process start.
//
// Deprecated: the count now lives in the metrics registry as the
// "dsp.cwt.transforms" counter; this shim remains for the equivalence tests
// that pin the one-transform-per-trace invariant.
func TransformCount() uint64 { return uint64(transformCount.Value()) }

// cwtPlan caches the kernel spectra at one padded FFT length, so every trace
// of the same length costs one forward FFT plus one inverse FFT per scale.
type cwtPlan struct {
	m          int // padded FFT length (power of two)
	kernelFFTs [][]complex128
}

// CWT computes a continuous wavelet transform of a real signal using the
// analytic Morlet wavelet over a fixed bank of scales. The result is the
// coefficient magnitude |W(j, k)| for scale index j and time index k — a
// Scales×len(x) matrix, matching the paper's 50×315 time–frequency plane.
//
// Concurrency: a CWT is safe for concurrent use by multiple goroutines. The
// scale bank and kernels are immutable after NewCWT; the per-length FFT plan
// cache is guarded by an RWMutex (plans are built once per distinct signal
// length and then only read); all per-call scratch lives on the stack or in
// an internal buffer pool. TransformBatch and TransformFlatBatch additionally
// fan the work out over the package-wide parallel.Workers() pool, over both
// traces and scales.
type CWT struct {
	bank    BankConfig
	scales  []float64
	kernels [][]complex128 // time-reversed conjugate wavelet per scale

	maxKernelSz int

	planMu sync.RWMutex
	plans  map[int]*cwtPlan // keyed by padded length

	scratch sync.Pool // *[]complex128 work buffers, cap >= padded length
}

// NewCWT builds a transform with nScales scales geometrically spaced between
// minScale and maxScale (in samples) at the default ω0; see NewCWTBank for
// the named-configuration form. The paper's configuration is NewCWT(50, 2, 80).
func NewCWT(nScales int, minScale, maxScale float64) (*CWT, error) {
	return NewCWTBank(BankConfig{NumScales: nScales, MinScale: minScale, MaxScale: maxScale})
}

// NewCWTBank builds a transform from a named bank configuration. The zero
// value (and a zero Omega0) resolves to DefaultBank, so configurations
// restored from templates predating BankConfig rebuild the paper's bank
// exactly.
func NewCWTBank(bank BankConfig) (*CWT, error) {
	bank = bank.withDefaults()
	if err := bank.Validate(); err != nil {
		return nil, err
	}
	nScales := bank.NumScales
	c := &CWT{
		bank:    bank,
		scales:  make([]float64, nScales),
		kernels: make([][]complex128, nScales),
		plans:   map[int]*cwtPlan{},
	}
	for j := 0; j < nScales; j++ {
		var s float64
		if nScales == 1 {
			s = bank.MinScale
		} else {
			// Geometric spacing: fine resolution at small scales.
			t := float64(j) / float64(nScales-1)
			s = bank.MinScale * math.Pow(bank.MaxScale/bank.MinScale, t)
		}
		c.scales[j] = s
		c.kernels[j] = morletKernel(s, bank.Omega0)
		if len(c.kernels[j]) > c.maxKernelSz {
			c.maxKernelSz = len(c.kernels[j])
		}
	}
	return c, nil
}

// Bank returns the (default-resolved) bank configuration this transform was
// built from.
func (c *CWT) Bank() BankConfig { return c.bank }

// planFor returns the kernel-spectrum plan for signals of length n, building
// and caching it on first use. Double-checked locking keeps the hot path a
// read lock; concurrent transforms of different lengths each get their own
// plan entry, so no caller ever observes a plan for the wrong length.
func (c *CWT) planFor(n int) *cwtPlan {
	m := NextPow2(n + c.maxKernelSz - 1)
	c.planMu.RLock()
	p := c.plans[m]
	c.planMu.RUnlock()
	if p != nil {
		met().planHits.Inc()
		return p
	}
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if p = c.plans[m]; p != nil {
		met().planHits.Inc()
		return p
	}
	met().planBuilds.Inc()
	p = &cwtPlan{m: m, kernelFFTs: make([][]complex128, len(c.kernels))}
	for j, kern := range c.kernels {
		fk := make([]complex128, m)
		copy(fk, kern)
		radix2(fk, false)
		p.kernelFFTs[j] = fk
	}
	c.plans[m] = p
	return p
}

// getBuf leases an m-element complex scratch buffer from the pool.
func (c *CWT) getBuf(m int) []complex128 {
	if v := c.scratch.Get(); v != nil {
		b := *(v.(*[]complex128))
		if cap(b) >= m {
			met().poolReuses.Inc()
			b = b[:m]
			for i := range b {
				b[i] = 0
			}
			return b
		}
	}
	met().poolAllocs.Inc()
	return make([]complex128, m)
}

// putBuf returns a scratch buffer to the pool.
func (c *CWT) putBuf(b []complex128) {
	c.scratch.Put(&b)
}

// NumScales returns the number of scales in the bank.
func (c *CWT) NumScales() int { return len(c.scales) }

// Scale returns the scale (in samples) of scale index j.
func (c *CWT) Scale(j int) float64 { return c.scales[j] }

// CenterFrequency returns the center frequency (cycles/sample) of scale j.
func (c *CWT) CenterFrequency(j int) float64 {
	return c.bank.Omega0 / (2 * math.Pi * c.scales[j])
}

// morletKernel returns the sampled, conjugated, time-reversed Morlet wavelet
// at scale s and center frequency omega0, normalized by 1/√s, ready for
// linear convolution.
func morletKernel(s, omega0 float64) []complex128 {
	half := int(math.Ceil(kernelHalfWidthSigmas * s))
	n := 2*half + 1
	k := make([]complex128, n)
	norm := math.Pow(math.Pi, -0.25) / math.Sqrt(s)
	for i := 0; i < n; i++ {
		t := float64(i-half) / s
		env := norm * math.Exp(-0.5*t*t)
		// Conjugate of exp(iω0 t) evaluated at reversed time equals
		// exp(iω0 t) at forward time; Morlet is symmetric in envelope.
		k[i] = complex(env*math.Cos(omega0*t), env*math.Sin(omega0*t))
	}
	return k
}

// forwardFFT returns the padded spectrum of x as a pooled buffer; the caller
// must release it with putBuf.
func (c *CWT) forwardFFT(x []float64, p *cwtPlan) []complex128 {
	fx := c.getBuf(p.m)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	radix2(fx, false)
	return fx
}

// row fills dst (length n) with the coefficient magnitudes of scale j, given
// the padded signal spectrum fx. prod is caller-provided scratch of length m.
func (c *CWT) row(fx []complex128, p *cwtPlan, j, n int, dst []float64, prod []complex128) {
	fk := p.kernelFFTs[j]
	for i := range prod {
		prod[i] = fx[i] * fk[i]
	}
	radix2(prod, true)
	invM := 1 / float64(p.m)
	off := (len(c.kernels[j]) - 1) / 2
	for i := 0; i < n; i++ {
		v := prod[i+off]
		dst[i] = invM * math.Hypot(real(v), imag(v))
	}
}

// Transform returns the 2-D magnitude scalogram of x: out[j][k] = |W(s_j, k)|.
// The output has len(c.scales) rows and len(x) columns, all rows sliced from
// one backing array.
//
// Transform is safe for concurrent use; see the CWT type documentation.
func (c *CWT) Transform(x []float64) [][]float64 {
	out := make([][]float64, len(c.scales))
	n := len(x)
	if n == 0 {
		return out
	}
	backing := make([]float64, len(c.scales)*n)
	for j := range out {
		out[j] = backing[j*n : (j+1)*n]
	}
	c.transformInto(x, backing)
	return out
}

// TransformFlat is Transform with the scalogram flattened row-major into a
// single vector of length NumScales()*len(x) — the layout the feature
// selector indexes with (scaleIndex, timeIndex). Like Transform it is safe
// for concurrent use.
func (c *CWT) TransformFlat(x []float64) []float64 {
	flat := make([]float64, len(c.scales)*len(x))
	if len(x) == 0 {
		return flat
	}
	c.transformInto(x, flat)
	return flat
}

// transformInto computes the row-major scalogram of x into flat
// (length NumScales()*len(x)) and bumps the transform counter.
func (c *CWT) transformInto(x []float64, flat []float64) {
	n := len(x)
	p := c.planFor(n)
	fx := c.forwardFFT(x, p)
	prod := c.getBuf(p.m)
	for j := range c.kernels {
		c.row(fx, p, j, n, flat[j*n:(j+1)*n], prod)
	}
	c.putBuf(prod)
	c.putBuf(fx)
	transformCount.Add(1)
}

// TransformFlatBatch computes the flattened scalogram of every trace,
// parallelized over both traces and scales on the parallel.Workers() pool.
// The result is index-aligned with xs and identical to calling TransformFlat
// per trace. All traces must share one length.
func (c *CWT) TransformFlatBatch(xs [][]float64) ([][]float64, error) {
	return c.TransformFlatBatchCtx(context.Background(), xs)
}

// TransformFlatBatchCtx is TransformFlatBatch with cooperative cancellation:
// once ctx is cancelled no new (trace) or (trace, scale) task starts and the
// call returns ctx.Err(). Cancellation latency is bounded by one FFT /
// convolution row, not by the batch size.
func (c *CWT) TransformFlatBatchCtx(ctx context.Context, xs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	ctx, sp := obs.Span(ctx, "dsp.cwt.batch")
	defer sp.End()
	n := len(xs[0])
	for i, x := range xs {
		if len(x) != n {
			return nil, fmt.Errorf("dsp: batch trace %d has length %d, want %d", i, len(x), n)
		}
		out[i] = make([]float64, len(c.scales)*n)
	}
	if n == 0 {
		return out, nil
	}
	p := c.planFor(n)
	// Phase 1: one forward FFT per trace, parallel over traces.
	fxs := make([][]complex128, len(xs))
	release := func() {
		for _, fx := range fxs {
			if fx != nil {
				c.putBuf(fx)
			}
		}
	}
	if err := parallel.ForCtx(ctx, len(xs), func(i int) {
		fxs[i] = c.forwardFFT(xs[i], p)
	}); err != nil {
		release()
		return nil, err
	}
	// Phase 2: one task per (trace, scale) pair — fine enough granularity to
	// keep every worker busy whether the batch is wide or the bank is deep.
	nScales := len(c.scales)
	if err := parallel.ForCtx(ctx, len(xs)*nScales, func(t int) {
		i, j := t/nScales, t%nScales
		prod := c.getBuf(p.m)
		c.row(fxs[i], p, j, n, out[i][j*n:(j+1)*n], prod)
		c.putBuf(prod)
	}); err != nil {
		release()
		return nil, err
	}
	release()
	transformCount.Add(int64(len(xs)))
	return out, nil
}

// TransformBatch is TransformFlatBatch with each scalogram reshaped to the
// Scales×len(x) row view of Transform.
func (c *CWT) TransformBatch(xs [][]float64) ([][][]float64, error) {
	flats, err := c.TransformFlatBatch(xs)
	if err != nil {
		return nil, err
	}
	out := make([][][]float64, len(xs))
	for i, flat := range flats {
		n := 0
		if len(c.scales) > 0 {
			n = len(flat) / len(c.scales)
		}
		rows := make([][]float64, len(c.scales))
		for j := range rows {
			rows[j] = flat[j*n : (j+1)*n]
		}
		out[i] = rows
	}
	return out, nil
}

// AlignByCrossCorrelation shifts trace so that its cross-correlation with
// ref is maximized within ±maxShift samples, returning the aligned copy and
// the shift that was applied. Out-of-range samples are filled with the edge
// value. The paper uses wavelet-domain alignment; integer-shift
// cross-correlation is the time-domain equivalent for synthetic traces.
func AlignByCrossCorrelation(ref, trace []float64, maxShift int) ([]float64, int) {
	if len(ref) != len(trace) || maxShift <= 0 {
		out := make([]float64, len(trace))
		copy(out, trace)
		return out, 0
	}
	best, bestShift := math.Inf(-1), 0
	for sh := -maxShift; sh <= maxShift; sh++ {
		var c float64
		for i := range ref {
			j := i + sh
			if j < 0 || j >= len(trace) {
				continue
			}
			c += ref[i] * trace[j]
		}
		if c > best {
			best, bestShift = c, sh
		}
	}
	out := make([]float64, len(trace))
	for i := range out {
		j := i + bestShift
		if j < 0 {
			j = 0
		}
		if j >= len(trace) {
			j = len(trace) - 1
		}
		out[i] = trace[j]
	}
	return out, bestShift
}
