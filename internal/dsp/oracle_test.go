package dsp

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/testkit"
)

// The FFT-based CWT is the hottest and most error-prone kernel in the
// pipeline, so it gets a differential oracle: testkit.DirectCWT evaluates the
// same truncated Morlet convolution by the O(n·k) time-domain definition and
// the two must agree to testkit.CWTTol (1e-9 relative+absolute — FFT roundoff
// at these lengths is ~1e-13, so any algorithmic drift fails loudly).

// scalesOf snapshots the transform's scale bank so the oracle evaluates the
// identical scales.
func scalesOf(c *CWT) []float64 {
	s := make([]float64, c.NumScales())
	for j := range s {
		s[j] = c.Scale(j)
	}
	return s
}

func TestCWTMatchesDirectConvolution(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 6}, func(g *testkit.G) error {
		n := g.Size(32, 256)
		nScales := g.Size(3, 10)
		maxScale := g.Float64(8, 32)
		c, err := NewCWT(nScales, 2, maxScale)
		if err != nil {
			return err
		}
		x := g.Trace(n)
		got := c.Transform(x)
		want := testkit.DirectCWT(x, scalesOf(c), MorletOmega0, kernelHalfWidthSigmas)
		for j := range want {
			for k := range want[j] {
				if !testkit.Close(got[j][k], want[j][k], testkit.CWTTol, testkit.CWTTol) {
					return fmt.Errorf("scalogram[%d][%d] (scale %g): fft=%g direct=%g (diff %g, %d ulp)",
						j, k, c.Scale(j), got[j][k], want[j][k],
						got[j][k]-want[j][k], testkit.ULPDiff(got[j][k], want[j][k]))
				}
			}
		}
		return nil
	})
}

// TestCWTProductionBankMatchesDirect runs the oracle once at the exact scale
// bank and trace length the feature selector uses (50 scales over [2,80],
// 315-sample traces), so the configuration that matters is itself pinned.
func TestCWTProductionBankMatchesDirect(t *testing.T) {
	c, err := NewCWT(50, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(7)
	x := g.Trace(315)
	got := c.Transform(x)
	want := testkit.DirectCWT(x, scalesOf(c), MorletOmega0, kernelHalfWidthSigmas)
	testkit.AllClose2D(t, got, want, testkit.CWTTol, testkit.CWTTol, "production-bank scalogram")
}

// TestTransformFlatMatchesTransform pins that the flat and 2-D entry points
// run the identical computation: same backing fill, so bitwise equality.
func TestTransformFlatMatchesTransform(t *testing.T) {
	c, err := NewCWT(8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(11)
	x := g.Trace(128)
	rows := c.Transform(x)
	flat := c.TransformFlat(x)
	for j, row := range rows {
		testkit.ExactEqual(t, flat[j*len(x):(j+1)*len(x)], row, fmt.Sprintf("flat row %d", j))
	}
}

// TestTransformBatchDeterministicAcrossWorkers asserts the documented
// contract that batch results are bitwise independent of the worker count:
// a 1-worker run, a many-worker run, and per-trace serial calls all agree
// exactly.
func TestTransformBatchDeterministicAcrossWorkers(t *testing.T) {
	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)

	c, err := NewCWT(8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(13)
	xs := g.Traces(9, 96)

	serial := make([][]float64, len(xs))
	for i, x := range xs {
		serial[i] = c.TransformFlat(x)
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, err := c.TransformFlatBatch(xs)
		if err != nil {
			t.Fatalf("TransformFlatBatch with %d workers: %v", workers, err)
		}
		testkit.ExactEqual2D(t, got, serial, fmt.Sprintf("batch with %d workers vs serial", workers))
	}
}

// TestTransformBatchCancelledThenRetried asserts that a cancelled batch
// reports the cancellation and that a retry on the same transform instance
// (with its now-warm plan cache and pools) reproduces the serial result
// bitwise — cancellation must not poison cached state.
func TestTransformBatchCancelledThenRetried(t *testing.T) {
	c, err := NewCWT(8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := testkit.NewG(17)
	xs := g.Traces(6, 96)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TransformFlatBatchCtx(cancelled, xs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}

	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = c.TransformFlat(x)
	}
	got, err := c.TransformFlatBatchCtx(context.Background(), xs)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	testkit.ExactEqual2D(t, got, want, "retried batch vs serial")
}
