package dsp

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/parallel"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestTransformConcurrentMatchesSerial hammers one CWT instance from many
// goroutines — mixed signal lengths, so the plan cache is exercised too —
// and requires every result to match the serial answer exactly.
func TestTransformConcurrentMatchesSerial(t *testing.T) {
	c, err := NewCWT(12, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	lengths := []int{64, 100, 64, 128, 100, 96, 64, 128}
	signals := make([][]float64, len(lengths))
	want := make([][][]float64, len(lengths))
	for i, n := range lengths {
		signals[i] = randSignal(rng, n)
		want[i] = c.Transform(signals[i])
	}
	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]string, len(signals)*rounds)
	for r := 0; r < rounds; r++ {
		for i := range signals {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				got := c.Transform(signals[i])
				for j := range got {
					for k := range got[j] {
						if got[j][k] != want[i][j][k] {
							errs[slot] = "mismatch"
							return
						}
					}
				}
			}(r*len(signals)+i, i)
		}
	}
	wg.Wait()
	for slot, e := range errs {
		if e != "" {
			t.Fatalf("concurrent Transform diverged from serial (slot %d)", slot)
		}
	}
}

// TestTransformFlatBatchMatchesSerial checks the batch path is bit-identical
// to a serial per-trace loop at several worker counts.
func TestTransformFlatBatchMatchesSerial(t *testing.T) {
	c, err := NewCWT(10, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, 9)
	for i := range xs {
		xs[i] = randSignal(rng, 80)
	}
	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = c.TransformFlat(x)
	}
	defer parallel.SetWorkers(0)
	for _, w := range []int{1, 2, 4} {
		parallel.SetWorkers(w)
		got, err := c.TransformFlatBatch(xs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: trace %d sample %d: %v != %v", w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	if _, err := c.TransformFlatBatch([][]float64{xs[0], xs[0][:10], xs[0]}); err == nil {
		t.Fatal("mixed-length batch should fail")
	}
}

// TestTransformCountHook verifies the instrumentation the redundancy tests
// build on: one bump per trace, for both single and batch transforms.
func TestTransformCountHook(t *testing.T) {
	c, err := NewCWT(6, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := randSignal(rng, 50)
	before := TransformCount()
	c.Transform(x)
	c.TransformFlat(x)
	if got := TransformCount() - before; got != 2 {
		t.Fatalf("2 single transforms counted as %d", got)
	}
	before = TransformCount()
	if _, err := c.TransformFlatBatch([][]float64{x, x, x}); err != nil {
		t.Fatal(err)
	}
	if got := TransformCount() - before; got != 3 {
		t.Fatalf("batch of 3 counted as %d", got)
	}
}
