// Package dsp implements the signal-processing substrate of the
// disassembler: a radix-2 FFT (with Bluestein's algorithm for arbitrary
// lengths), linear convolution, and the continuous wavelet transform (CWT)
// that maps a 315-sample power trace into the 50×315 time–frequency plane
// the paper selects features from.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x in place-compatible
// fashion (a new slice is returned; x is not modified). Any length is
// supported: powers of two use the iterative radix-2 algorithm, other
// lengths use Bluestein's chirp-z transform.
func FFT(x []complex128) []complex128 {
	return dft(x, false)
}

// IFFT computes the inverse DFT (with 1/N normalization).
func IFFT(x []complex128) []complex128 {
	y := dft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

func dft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		y := make([]complex128, n)
		copy(y, x)
		radix2(y, inverse)
		return y
	}
	return bluestein(x, inverse)
}

// radix2 performs an in-place iterative Cooley–Tukey FFT. len(y) must be a
// power of two.
func radix2(y []complex128, inverse bool) {
	n := len(y)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			y[i], y[j] = y[j], y[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := y[start+k]
				b := y[start+k+half] * w
				y[start+k] = a + b
				y[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressed as a circular convolution of power-of-two length.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign·iπk²/n). k² mod 2n avoids precision loss for
	// large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		inv := cmplx.Conj(chirp[k])
		b[k] = inv
		if k > 0 {
			b[m-k] = inv
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}

// FFTReal computes the DFT of a real signal.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Convolve computes the full linear convolution of a and b
// (length len(a)+len(b)-1) using the FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := 1
	for m < n {
		m <<= 1
	}
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	out := make([]float64, n)
	invM := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(fa[i]) * invM
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	m := 1
	for m < n {
		m <<= 1
	}
	return m
}
