package avr

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAssembleKnown(t *testing.T) {
	cases := []struct {
		src  string
		want Instruction
	}{
		{"ADD r16, r17", Instruction{Class: OpADD, Rd: 16, Rr: 17}},
		{"add R16, R17", Instruction{Class: OpADD, Rd: 16, Rr: 17}},
		{"LDI r16, 0xFF", Instruction{Class: OpLDI, Rd: 16, K: 0xFF}},
		{"LDI r16, 255", Instruction{Class: OpLDI, Rd: 16, K: 0xFF}},
		{"ADIW r24, 0x3F", Instruction{Class: OpADIW, Rd: 24, K: 0x3F}},
		{"COM r7", Instruction{Class: OpCOM, Rd: 7}},
		{"RJMP -3", Instruction{Class: OpRJMP, Off: -3}},
		{"RJMP +5", Instruction{Class: OpRJMP, Off: 5}},
		{"BREQ +10", Instruction{Class: OpBREQ, Off: 10}},
		{"JMP 0x0100", Instruction{Class: OpJMP, Addr: 0x0100}},
		{"LDS r4, 0x0160", Instruction{Class: OpLDS, Rd: 4, Addr: 0x0160}},
		{"STS 0x0200, r9", Instruction{Class: OpSTS, Rr: 9, Addr: 0x0200}},
		{"LD r4, X", Instruction{Class: OpLDX, Rd: 4}},
		{"LD r4, X+", Instruction{Class: OpLDXInc, Rd: 4}},
		{"LD r4, -Y", Instruction{Class: OpLDYDec, Rd: 4}},
		{"LD r4, Z+", Instruction{Class: OpLDZInc, Rd: 4}},
		{"LDD r4, Y+12", Instruction{Class: OpLDDY, Rd: 4, Q: 12}},
		{"LDD r4, Z+0", Instruction{Class: OpLDDZ, Rd: 4, Q: 0}},
		{"ST X+, r20", Instruction{Class: OpSTXInc, Rr: 20}},
		{"ST -Z, r1", Instruction{Class: OpSTZDec, Rr: 1}},
		{"STD Y+5, r2", Instruction{Class: OpSTDY, Rr: 2, Q: 5}},
		{"LD r4, Y+3", Instruction{Class: OpLDDY, Rd: 4, Q: 3}}, // LD with disp promotes to LDD
		{"SEC", Instruction{Class: OpSEC}},
		{"CLH", Instruction{Class: OpCLH}},
		{"SBRC r10, 3", Instruction{Class: OpSBRC, Rr: 10, B: 3}},
		{"SBI 0x05, 5", Instruction{Class: OpSBI, Addr: 5, B: 5}},
		{"BRBS 3, +12", Instruction{Class: OpBRBS, S: 3, Off: 12}},
		{"BSET 4", Instruction{Class: OpBSET, S: 4}},
		{"BST r4, 2", Instruction{Class: OpBST, Rd: 4, B: 2}},
		{"BLD r4, 2", Instruction{Class: OpBLD, Rd: 4, B: 2}},
		{"LPM", Instruction{Class: OpLPM0}},
		{"LPM r5, Z", Instruction{Class: OpLPM, Rd: 5}},
		{"LPM r5, Z+", Instruction{Class: OpLPMInc, Rd: 5}},
		{"ELPM", Instruction{Class: OpELPM0}},
		{"ELPM r5, Z+", Instruction{Class: OpELPMInc, Rd: 5}},
		{"NOP", Instruction{Class: OpNOP}},
		{"MOVW r2, r4", Instruction{Class: OpMOVW, Rd: 2, Rr: 4}},
		{"EOR r16, r17 ; mask the key", Instruction{Class: OpEOR, Rd: 16, Rr: 17}},
		{"EOR r16, r0 // malware", Instruction{Class: OpEOR, Rd: 16, Rr: 0}},
		{"TST r9", Instruction{Class: OpTST, Rd: 9}},
		{"CBR r17, 0x0F", Instruction{Class: OpCBR, Rd: 17, K: 0x0F}},
	}
	for _, tc := range cases {
		got, err := Assemble(tc.src)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", tc.src, err)
		}
		if got != tc.want {
			t.Fatalf("Assemble(%q) = %+v, want %+v", tc.src, got, tc.want)
		}
	}
}

func TestAssembleRejects(t *testing.T) {
	bad := []string{
		"",
		"FROB r1",
		"ADD r16",
		"ADD r16, r17, r18",
		"LDI r5, 1",    // register range
		"LDI r16, 300", // immediate range
		"LD r4, W",
		"LD r4, Y+99",
		"LPM r5, Y",
		"SBI 0x40, 1",
		"BREQ +100",
		"ADD rx, r1",
		"SBRC r10, 9",
		"; only a comment",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Fatalf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleStringRoundTrip(t *testing.T) {
	// Instruction → String() → Assemble must reproduce the instruction for
	// every classified class.
	rng := rand.New(rand.NewSource(99))
	for _, c := range append(AllClasses(), OpNOP) {
		for trial := 0; trial < 20; trial++ {
			in := RandomOperands(rng, c)
			text := in.String()
			back, err := Assemble(text)
			if err != nil {
				t.Fatalf("%v: Assemble(%q): %v", c, text, err)
			}
			// LD/ST with q=0 displacement text parses back to the plain
			// pointer form; compare canonically.
			if Canonical(back) != Canonical(in) {
				t.Fatalf("%v: %q → %+v, want %+v", c, text, back, in)
			}
		}
	}
}

func TestAssembleProgram(t *testing.T) {
	src := `
		; masked AES subkey xor
		LDI r16, 0x5A
		LDI r17, 0x3C
		EOR r16, r17

		NOP
	`
	prog, err := AssembleProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("assembled %d instructions, want 4", len(prog))
	}
	if prog[2].Class != OpEOR || prog[2].Rd != 16 || prog[2].Rr != 17 {
		t.Fatalf("prog[2] = %+v", prog[2])
	}
	if _, err := AssembleProgram("ADD r1, r2\nBOGUS"); err == nil {
		t.Fatal("want error for bad line")
	}
	if err != nil && strings.Contains(err.Error(), "line") {
		t.Fatal("unexpected")
	}
}

func TestStringOutputStable(t *testing.T) {
	cases := map[string]Instruction{
		"ADD r16, r17":   {Class: OpADD, Rd: 16, Rr: 17},
		"LDI r16, 0xFF":  {Class: OpLDI, Rd: 16, K: 0xFF},
		"LD r4, X+":      {Class: OpLDXInc, Rd: 4},
		"STD Y+5, r2":    {Class: OpSTDY, Rr: 2, Q: 5},
		"BRBS 3, +12":    {Class: OpBRBS, S: 3, Off: 12},
		"RJMP -3":        {Class: OpRJMP, Off: -3},
		"SBI 0x05, 5":    {Class: OpSBI, Addr: 5, B: 5},
		"LDS r4, 0x0160": {Class: OpLDS, Rd: 4, Addr: 0x0160},
		"STS 0x0200, r9": {Class: OpSTS, Rr: 9, Addr: 0x0200},
		"SEC":            {Class: OpSEC},
		"LPM":            {Class: OpLPM0},
		"LPM r5, Z+":     {Class: OpLPMInc, Rd: 5},
		"JMP 0x0100":     {Class: OpJMP, Addr: 0x0100},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Fatalf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}
