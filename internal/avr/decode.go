package avr

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when a 32-bit instruction is missing its second
// word.
var ErrTruncated = errors.New("avr: truncated 32-bit instruction")

// Decode decodes the instruction starting at words[0]. It returns the
// instruction and the number of words consumed (1 or 2).
//
// Encoding aliases decode to their canonical class: AND r,r (not TST),
// EOR r,r (not CLR), ADD r,r (not LSL), ADC r,r (not ROL), LDI Rd,0xFF (not
// SER), ORI (not SBR), ANDI (not CBR), the s-specific branch names BREQ…BRID
// (not BRBS/BRBC), BRCS/BRCC (not BRLO/BRSH), the SEx/CLx flag names (not
// BSET/BCLR), and LD/ST (not LDD/STD with q=0). Canonical maps an arbitrary
// instruction to the class Decode would return.
func Decode(words []uint16) (Instruction, int, error) {
	if len(words) == 0 {
		return Instruction{}, 0, errors.New("avr: empty instruction stream")
	}
	w := words[0]
	need2 := func() (uint16, error) {
		if len(words) < 2 {
			return 0, ErrTruncated
		}
		return words[1], nil
	}
	d5 := uint8((w >> 4) & 0x1F)
	r5 := uint8((w&0x0F | (w>>5)&0x10))
	k8 := uint8((w>>4)&0xF0 | w&0x0F)
	d4 := uint8((w>>4)&0x0F) + 16

	switch {
	case w == 0x0000:
		return Instruction{Class: OpNOP}, 1, nil
	case w&0xFF00 == 0x0100:
		return Instruction{Class: OpMOVW, Rd: uint8((w>>4)&0x0F) * 2, Rr: uint8(w&0x0F) * 2}, 1, nil
	case w&0xFC00 == 0x0C00:
		return Instruction{Class: OpADD, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x1C00:
		return Instruction{Class: OpADC, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x1800:
		return Instruction{Class: OpSUB, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x0800:
		return Instruction{Class: OpSBC, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x2000:
		return Instruction{Class: OpAND, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x2800:
		return Instruction{Class: OpOR, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x2400:
		return Instruction{Class: OpEOR, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x1000:
		return Instruction{Class: OpCPSE, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x1400:
		return Instruction{Class: OpCP, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x0400:
		return Instruction{Class: OpCPC, Rd: d5, Rr: r5}, 1, nil
	case w&0xFC00 == 0x2C00:
		return Instruction{Class: OpMOV, Rd: d5, Rr: r5}, 1, nil

	case w&0xF000 == 0x5000:
		return Instruction{Class: OpSUBI, Rd: d4, K: k8}, 1, nil
	case w&0xF000 == 0x4000:
		return Instruction{Class: OpSBCI, Rd: d4, K: k8}, 1, nil
	case w&0xF000 == 0x7000:
		return Instruction{Class: OpANDI, Rd: d4, K: k8}, 1, nil
	case w&0xF000 == 0x6000:
		return Instruction{Class: OpORI, Rd: d4, K: k8}, 1, nil
	case w&0xF000 == 0x3000:
		return Instruction{Class: OpCPI, Rd: d4, K: k8}, 1, nil
	case w&0xF000 == 0xE000:
		return Instruction{Class: OpLDI, Rd: d4, K: k8}, 1, nil

	case w&0xFF00 == 0x9600:
		return Instruction{Class: OpADIW, Rd: uint8((w>>4)&0x03)*2 + 24, K: uint8((w>>2)&0x30 | w&0x0F)}, 1, nil
	case w&0xFF00 == 0x9700:
		return Instruction{Class: OpSBIW, Rd: uint8((w>>4)&0x03)*2 + 24, K: uint8((w>>2)&0x30 | w&0x0F)}, 1, nil

	case w&0xFE0F == 0x9400:
		return Instruction{Class: OpCOM, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9401:
		return Instruction{Class: OpNEG, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9402:
		return Instruction{Class: OpSWAP, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9403:
		return Instruction{Class: OpINC, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9405:
		return Instruction{Class: OpASR, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9406:
		return Instruction{Class: OpLSR, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9407:
		return Instruction{Class: OpROR, Rd: d5}, 1, nil
	case w&0xFE0F == 0x940A:
		return Instruction{Class: OpDEC, Rd: d5}, 1, nil

	case w&0xF000 == 0xC000:
		off := int16(w & 0x0FFF)
		if off&0x0800 != 0 {
			off -= 0x1000
		}
		return Instruction{Class: OpRJMP, Off: off}, 1, nil
	case w&0xFE0E == 0x940C:
		w2, err := need2()
		if err != nil {
			return Instruction{}, 0, err
		}
		return Instruction{Class: OpJMP, Addr: w2}, 2, nil

	case w&0xF800 == 0xF000:
		off := int16((w >> 3) & 0x7F)
		if off&0x40 != 0 {
			off -= 0x80
		}
		s := uint8(w & 0x07)
		set := w&0x0400 == 0
		return Instruction{Class: branchClass(set, s), Off: off, S: s}, 1, nil

	case w&0xFE0F == 0x9000:
		w2, err := need2()
		if err != nil {
			return Instruction{}, 0, err
		}
		return Instruction{Class: OpLDS, Rd: d5, Addr: w2}, 2, nil
	case w&0xFE0F == 0x9200:
		w2, err := need2()
		if err != nil {
			return Instruction{}, 0, err
		}
		return Instruction{Class: OpSTS, Rr: d5, Addr: w2}, 2, nil

	case w&0xFE0F == 0x900C:
		return Instruction{Class: OpLDX, Rd: d5}, 1, nil
	case w&0xFE0F == 0x900D:
		return Instruction{Class: OpLDXInc, Rd: d5}, 1, nil
	case w&0xFE0F == 0x900E:
		return Instruction{Class: OpLDXDec, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9009:
		return Instruction{Class: OpLDYInc, Rd: d5}, 1, nil
	case w&0xFE0F == 0x900A:
		return Instruction{Class: OpLDYDec, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9001:
		return Instruction{Class: OpLDZInc, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9002:
		return Instruction{Class: OpLDZDec, Rd: d5}, 1, nil
	case w&0xFE0F == 0x920C:
		return Instruction{Class: OpSTX, Rr: d5}, 1, nil
	case w&0xFE0F == 0x920D:
		return Instruction{Class: OpSTXInc, Rr: d5}, 1, nil
	case w&0xFE0F == 0x920E:
		return Instruction{Class: OpSTXDec, Rr: d5}, 1, nil
	case w&0xFE0F == 0x9209:
		return Instruction{Class: OpSTYInc, Rr: d5}, 1, nil
	case w&0xFE0F == 0x920A:
		return Instruction{Class: OpSTYDec, Rr: d5}, 1, nil
	case w&0xFE0F == 0x9201:
		return Instruction{Class: OpSTZInc, Rr: d5}, 1, nil
	case w&0xFE0F == 0x9202:
		return Instruction{Class: OpSTZDec, Rr: d5}, 1, nil

	case w&0xFE0F == 0x9004:
		return Instruction{Class: OpLPM, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9005:
		return Instruction{Class: OpLPMInc, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9006:
		return Instruction{Class: OpELPM, Rd: d5}, 1, nil
	case w&0xFE0F == 0x9007:
		return Instruction{Class: OpELPMInc, Rd: d5}, 1, nil
	case w == 0x95C8:
		return Instruction{Class: OpLPM0}, 1, nil
	case w == 0x95D8:
		return Instruction{Class: OpELPM0}, 1, nil

	case w&0xFF8F == 0x9408:
		return Instruction{Class: flagClass(true, uint8((w>>4)&0x07)), S: uint8((w >> 4) & 0x07)}, 1, nil
	case w&0xFF8F == 0x9488:
		return Instruction{Class: flagClass(false, uint8((w>>4)&0x07)), S: uint8((w >> 4) & 0x07)}, 1, nil

	case w&0xFE08 == 0xFC00:
		return Instruction{Class: OpSBRC, Rr: d5, B: uint8(w & 0x07)}, 1, nil
	case w&0xFE08 == 0xFE00:
		return Instruction{Class: OpSBRS, Rr: d5, B: uint8(w & 0x07)}, 1, nil
	case w&0xFF00 == 0x9900:
		return Instruction{Class: OpSBIC, Addr: (w >> 3) & 0x1F, B: uint8(w & 0x07)}, 1, nil
	case w&0xFF00 == 0x9B00:
		return Instruction{Class: OpSBIS, Addr: (w >> 3) & 0x1F, B: uint8(w & 0x07)}, 1, nil
	case w&0xFF00 == 0x9A00:
		return Instruction{Class: OpSBI, Addr: (w >> 3) & 0x1F, B: uint8(w & 0x07)}, 1, nil
	case w&0xFF00 == 0x9800:
		return Instruction{Class: OpCBI, Addr: (w >> 3) & 0x1F, B: uint8(w & 0x07)}, 1, nil
	case w&0xFE08 == 0xFA00:
		return Instruction{Class: OpBST, Rd: d5, B: uint8(w & 0x07)}, 1, nil
	case w&0xFE08 == 0xF800:
		return Instruction{Class: OpBLD, Rd: d5, B: uint8(w & 0x07)}, 1, nil

	// LDD/STD with displacement: 10q0 qq?d dddd ?qqq. Must come after the
	// more specific 0x9xxx patterns above; only opcodes with bit12 clear
	// land here.
	case w&0xD200 == 0x8000:
		q := uint8((w>>8)&0x20 | (w>>7)&0x18 | w&0x07)
		z := w&0x0008 == 0
		return Instruction{Class: ldClass(z, q), Rd: d5, Q: qIfDisp(q)}, 1, nil
	case w&0xD200 == 0x8200:
		q := uint8((w>>8)&0x20 | (w>>7)&0x18 | w&0x07)
		z := w&0x0008 == 0
		return Instruction{Class: stClass(z, q), Rr: d5, Q: qIfDisp(q)}, 1, nil
	}
	return Instruction{}, 0, fmt.Errorf("avr: cannot decode word 0x%04X", w)
}

func branchClass(set bool, s uint8) Class {
	if set {
		switch s {
		case 0:
			return OpBRCS
		case 1:
			return OpBREQ
		case 2:
			return OpBRMI
		case 3:
			return OpBRVS
		case 4:
			return OpBRLT
		case 5:
			return OpBRHS
		case 6:
			return OpBRTS
		default:
			return OpBRIE
		}
	}
	switch s {
	case 0:
		return OpBRCC
	case 1:
		return OpBRNE
	case 2:
		return OpBRPL
	case 3:
		return OpBRVC
	case 4:
		return OpBRGE
	case 5:
		return OpBRHC
	case 6:
		return OpBRTC
	default:
		return OpBRID
	}
}

func flagClass(set bool, s uint8) Class {
	if set {
		return [8]Class{OpSEC, OpSEZ, OpSEN, OpSEV, OpSES, OpSEH, OpSET, OpSEI}[s]
	}
	return [8]Class{OpCLC, OpCLZ, OpCLN, OpCLV, OpCLS, OpCLH, OpCLT, clISubstitute}[s]
}

// clISubstitute stands in for CLI, which the paper's 15-instruction group 6
// omits; decoding 0x94F8 reports it as CLH's neighbor slot. We map it to
// OpCLH's class space deliberately never being produced by Encode, so keep
// the decoder total by returning OpCLT — unreachable for encoded streams.
const clISubstitute = OpCLT

func ldClass(z bool, q uint8) Class {
	if q == 0 {
		if z {
			return OpLDZ
		}
		return OpLDY
	}
	if z {
		return OpLDDZ
	}
	return OpLDDY
}

func stClass(z bool, q uint8) Class {
	if q == 0 {
		if z {
			return OpSTZ
		}
		return OpSTY
	}
	if z {
		return OpSTDZ
	}
	return OpSTDY
}

func qIfDisp(q uint8) uint8 { return q }

// Canonical returns the instruction Decode would produce for in's encoding:
// alias mnemonics are rewritten to their canonical classes and derived
// operand fields are filled in. It is the identity for non-alias classes.
func Canonical(in Instruction) Instruction {
	switch in.Class {
	case OpTST:
		return Instruction{Class: OpAND, Rd: in.Rd, Rr: in.Rd}
	case OpCLR:
		return Instruction{Class: OpEOR, Rd: in.Rd, Rr: in.Rd}
	case OpLSL:
		return Instruction{Class: OpADD, Rd: in.Rd, Rr: in.Rd}
	case OpROL:
		return Instruction{Class: OpADC, Rd: in.Rd, Rr: in.Rd}
	case OpSER:
		return Instruction{Class: OpLDI, Rd: in.Rd, K: 0xFF}
	case OpSBR:
		return Instruction{Class: OpORI, Rd: in.Rd, K: in.K}
	case OpCBR:
		return Instruction{Class: OpANDI, Rd: in.Rd, K: ^in.K}
	case OpBRLO:
		return Instruction{Class: OpBRCS, Off: in.Off}
	case OpBRSH:
		return Instruction{Class: OpBRCC, Off: in.Off}
	case OpBRBS:
		return Instruction{Class: branchClass(true, in.S), Off: in.Off, S: in.S}
	case OpBRBC:
		return Instruction{Class: branchClass(false, in.S), Off: in.Off, S: in.S}
	case OpBSET:
		return Instruction{Class: flagClass(true, in.S), S: in.S}
	case OpBCLR:
		return Instruction{Class: flagClass(false, in.S), S: in.S}
	case OpLDDY:
		if in.Q == 0 {
			return Instruction{Class: OpLDY, Rd: in.Rd}
		}
	case OpLDDZ:
		if in.Q == 0 {
			return Instruction{Class: OpLDZ, Rd: in.Rd}
		}
	case OpSTDY:
		if in.Q == 0 {
			return Instruction{Class: OpSTY, Rr: in.Rr}
		}
	case OpSTDZ:
		if in.Q == 0 {
			return Instruction{Class: OpSTZ, Rr: in.Rr}
		}
	case OpBREQ, OpBRNE, OpBRCS, OpBRCC, OpBRMI, OpBRPL, OpBRVS, OpBRVC,
		OpBRLT, OpBRGE, OpBRHS, OpBRHC, OpBRTS, OpBRTC, OpBRIE, OpBRID:
		out := in
		out.S = branchSBit(in.Class)
		return out
	case OpSEC, OpSEZ, OpSEN, OpSEV, OpSES, OpSEH, OpSET, OpSEI,
		OpCLC, OpCLZ, OpCLN, OpCLV, OpCLS, OpCLH, OpCLT:
		out := in
		out.S = flagSBit(in.Class)
		return out
	}
	return in
}

func branchSBit(c Class) uint8 {
	switch c {
	case OpBRCS, OpBRCC, OpBRLO, OpBRSH:
		return 0
	case OpBREQ, OpBRNE:
		return 1
	case OpBRMI, OpBRPL:
		return 2
	case OpBRVS, OpBRVC:
		return 3
	case OpBRLT, OpBRGE:
		return 4
	case OpBRHS, OpBRHC:
		return 5
	case OpBRTS, OpBRTC:
		return 6
	default:
		return 7
	}
}

func flagSBit(c Class) uint8 {
	switch c {
	case OpSEC, OpCLC:
		return 0
	case OpSEZ, OpCLZ:
		return 1
	case OpSEN, OpCLN:
		return 2
	case OpSEV, OpCLV:
		return 3
	case OpSES, OpCLS:
		return 4
	case OpSEH, OpCLH:
		return 5
	case OpSET, OpCLT:
		return 6
	default:
		return 7
	}
}

// DecodeProgram decodes a full word stream into an instruction listing.
func DecodeProgram(words []uint16) ([]Instruction, error) {
	var out []Instruction
	for i := 0; i < len(words); {
		in, n, err := Decode(words[i:])
		if err != nil {
			return out, fmt.Errorf("avr: at word %d: %w", i, err)
		}
		out = append(out, in)
		i += n
	}
	return out, nil
}
