package avr

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one line of AVR assembly ("ADD r16, r17", "LD r4, X+",
// "STD Y+5, r2", "BRBS 3, +12", …) into an Instruction. Comments beginning
// with ';' or '//' are stripped; the mnemonic is case-insensitive.
func Assemble(line string) (Instruction, error) {
	src := line
	if i := strings.Index(src, ";"); i >= 0 {
		src = src[:i]
	}
	if i := strings.Index(src, "//"); i >= 0 {
		src = src[:i]
	}
	src = strings.TrimSpace(src)
	if src == "" {
		return Instruction{}, fmt.Errorf("avr: empty assembly line %q", line)
	}
	var mnem, rest string
	if i := strings.IndexAny(src, " \t"); i >= 0 {
		mnem, rest = src[:i], strings.TrimSpace(src[i+1:])
	} else {
		mnem = src
	}
	mnem = strings.ToUpper(mnem)
	var ops []string
	if rest != "" {
		for _, o := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	in, err := assembleOps(mnem, ops)
	if err != nil {
		return Instruction{}, fmt.Errorf("avr: %q: %w", line, err)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, fmt.Errorf("avr: %q: %w", line, err)
	}
	return in, nil
}

// AssembleProgram assembles a newline-separated listing, skipping blank and
// comment-only lines.
func AssembleProgram(src string) ([]Instruction, error) {
	var out []Instruction
	for lineNo, raw := range strings.Split(src, "\n") {
		s := strings.TrimSpace(raw)
		if s == "" || strings.HasPrefix(s, ";") || strings.HasPrefix(s, "//") {
			continue
		}
		in, err := Assemble(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// mnemonicClasses maps unambiguous mnemonics straight to a class. Mnemonics
// whose class depends on the operands (LD, ST, LDD, STD, LPM, ELPM) are
// resolved in assembleOps.
var mnemonicClasses = map[string]Class{
	"ADD": OpADD, "ADC": OpADC, "SUB": OpSUB, "SBC": OpSBC, "AND": OpAND,
	"OR": OpOR, "EOR": OpEOR, "CPSE": OpCPSE, "CP": OpCP, "CPC": OpCPC,
	"MOV": OpMOV, "MOVW": OpMOVW,
	"ADIW": OpADIW, "SUBI": OpSUBI, "SBCI": OpSBCI, "SBIW": OpSBIW,
	"ANDI": OpANDI, "ORI": OpORI, "SBR": OpSBR, "CBR": OpCBR, "CPI": OpCPI,
	"LDI": OpLDI,
	"COM": OpCOM, "NEG": OpNEG, "INC": OpINC, "DEC": OpDEC, "TST": OpTST,
	"CLR": OpCLR, "SER": OpSER, "LSL": OpLSL, "LSR": OpLSR, "ROL": OpROL,
	"ROR": OpROR, "ASR": OpASR, "SWAP": OpSWAP,
	"RJMP": OpRJMP, "JMP": OpJMP, "BREQ": OpBREQ, "BRNE": OpBRNE,
	"BRCS": OpBRCS, "BRCC": OpBRCC, "BRSH": OpBRSH, "BRLO": OpBRLO,
	"BRMI": OpBRMI, "BRPL": OpBRPL, "BRGE": OpBRGE, "BRLT": OpBRLT,
	"BRHS": OpBRHS, "BRHC": OpBRHC, "BRTS": OpBRTS, "BRTC": OpBRTC,
	"BRVS": OpBRVS, "BRVC": OpBRVC, "BRIE": OpBRIE, "BRID": OpBRID,
	"LDS": OpLDS, "STS": OpSTS,
	"SEC": OpSEC, "CLC": OpCLC, "SEN": OpSEN, "CLN": OpCLN, "SEZ": OpSEZ,
	"CLZ": OpCLZ, "SEI": OpSEI, "SES": OpSES, "CLS": OpCLS, "SEV": OpSEV,
	"CLV": OpCLV, "SET": OpSET, "CLT": OpCLT, "SEH": OpSEH, "CLH": OpCLH,
	"SBRC": OpSBRC, "SBRS": OpSBRS, "SBIC": OpSBIC, "SBIS": OpSBIS,
	"BRBS": OpBRBS, "BRBC": OpBRBC, "SBI": OpSBI, "CBI": OpCBI,
	"BST": OpBST, "BLD": OpBLD, "BSET": OpBSET, "BCLR": OpBCLR,
	"NOP": OpNOP,
}

func assembleOps(mnem string, ops []string) (Instruction, error) {
	switch mnem {
	case "LD":
		return assembleLoadStore(true, ops)
	case "ST":
		return assembleLoadStore(false, ops)
	case "LDD":
		return assembleDisp(true, ops)
	case "STD":
		return assembleDisp(false, ops)
	case "LPM", "ELPM":
		return assembleLPM(mnem, ops)
	}
	c, ok := mnemonicClasses[mnem]
	if !ok {
		return Instruction{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in := Instruction{Class: c}
	sp := specs[c]
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operand(s), got %d", mnem, n, len(ops))
		}
		return nil
	}
	var err error
	switch sp.Operands {
	case OperandRdRr:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		in.Rr, err = parseReg(ops[1])
	case OperandRdK, OperandRdPairK:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[1], 0, 255); err != nil {
			return in, err
		}
		in.K = uint8(v)
	case OperandRd:
		if err = need(1); err != nil {
			return in, err
		}
		in.Rd, err = parseReg(ops[0])
	case OperandOff:
		if err = need(1); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], -2048, 2047); err != nil {
			return in, err
		}
		in.Off = int16(v)
	case OperandAddr:
		if err = need(1); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], 0, 0xFFFF); err != nil {
			return in, err
		}
		in.Addr = uint16(v)
	case OperandRdAddr:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[1], 0, 0xFFFF); err != nil {
			return in, err
		}
		in.Addr = uint16(v)
	case OperandAddrRr:
		if err = need(2); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], 0, 0xFFFF); err != nil {
			return in, err
		}
		in.Addr = uint16(v)
		in.Rr, err = parseReg(ops[1])
	case OperandRrB:
		if err = need(2); err != nil {
			return in, err
		}
		reg, err2 := parseReg(ops[0])
		if err2 != nil {
			return in, err2
		}
		if c == OpBST || c == OpBLD {
			in.Rd = reg
		} else {
			in.Rr = reg
		}
		var v int64
		if v, err = parseNum(ops[1], 0, 7); err != nil {
			return in, err
		}
		in.B = uint8(v)
	case OperandAB:
		if err = need(2); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], 0, 31); err != nil {
			return in, err
		}
		in.Addr = uint16(v)
		if v, err = parseNum(ops[1], 0, 7); err != nil {
			return in, err
		}
		in.B = uint8(v)
	case OperandSOff:
		if err = need(2); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], 0, 7); err != nil {
			return in, err
		}
		in.S = uint8(v)
		if v, err = parseNum(ops[1], -64, 63); err != nil {
			return in, err
		}
		in.Off = int16(v)
	case OperandS:
		if err = need(1); err != nil {
			return in, err
		}
		var v int64
		if v, err = parseNum(ops[0], 0, 7); err != nil {
			return in, err
		}
		in.S = uint8(v)
	case OperandImplied:
		err = need(0)
	}
	return in, err
}

func assembleLoadStore(load bool, ops []string) (Instruction, error) {
	if len(ops) != 2 {
		return Instruction{}, fmt.Errorf("LD/ST need 2 operands, got %d", len(ops))
	}
	regOp, ptrOp := ops[0], ops[1]
	if !load {
		regOp, ptrOp = ops[1], ops[0]
	}
	reg, err := parseReg(regOp)
	if err != nil {
		return Instruction{}, err
	}
	// Pointer with displacement ("Y+5") is LDD/STD syntax.
	if base, disp, ok := splitDisp(ptrOp); ok && disp > 0 {
		return dispInstruction(load, base, disp, reg)
	}
	var cls Class
	switch strings.ToUpper(ptrOp) {
	case "X":
		cls = pick(load, OpLDX, OpSTX)
	case "X+":
		cls = pick(load, OpLDXInc, OpSTXInc)
	case "-X":
		cls = pick(load, OpLDXDec, OpSTXDec)
	case "Y":
		cls = pick(load, OpLDY, OpSTY)
	case "Y+":
		cls = pick(load, OpLDYInc, OpSTYInc)
	case "-Y":
		cls = pick(load, OpLDYDec, OpSTYDec)
	case "Z":
		cls = pick(load, OpLDZ, OpSTZ)
	case "Z+":
		cls = pick(load, OpLDZInc, OpSTZInc)
	case "-Z":
		cls = pick(load, OpLDZDec, OpSTZDec)
	default:
		return Instruction{}, fmt.Errorf("bad pointer operand %q", ptrOp)
	}
	in := Instruction{Class: cls}
	if load {
		in.Rd = reg
	} else {
		in.Rr = reg
	}
	return in, nil
}

func assembleDisp(load bool, ops []string) (Instruction, error) {
	if len(ops) != 2 {
		return Instruction{}, fmt.Errorf("LDD/STD need 2 operands, got %d", len(ops))
	}
	regOp, ptrOp := ops[0], ops[1]
	if !load {
		regOp, ptrOp = ops[1], ops[0]
	}
	reg, err := parseReg(regOp)
	if err != nil {
		return Instruction{}, err
	}
	base, disp, ok := splitDisp(ptrOp)
	if !ok {
		return Instruction{}, fmt.Errorf("bad displacement operand %q", ptrOp)
	}
	return dispInstruction(load, base, disp, reg)
}

func dispInstruction(load bool, base string, disp int64, reg uint8) (Instruction, error) {
	var cls Class
	switch base {
	case "Y":
		cls = pick(load, OpLDDY, OpSTDY)
	case "Z":
		cls = pick(load, OpLDDZ, OpSTDZ)
	default:
		return Instruction{}, fmt.Errorf("displacement base must be Y or Z, got %q", base)
	}
	in := Instruction{Class: cls, Q: uint8(disp)}
	if load {
		in.Rd = reg
	} else {
		in.Rr = reg
	}
	return in, nil
}

func assembleLPM(mnem string, ops []string) (Instruction, error) {
	elpm := mnem == "ELPM"
	if len(ops) == 0 {
		return Instruction{Class: pick(elpm, OpELPM0, OpLPM0)}, nil
	}
	if len(ops) != 2 {
		return Instruction{}, fmt.Errorf("%s needs 0 or 2 operands, got %d", mnem, len(ops))
	}
	reg, err := parseReg(ops[0])
	if err != nil {
		return Instruction{}, err
	}
	var cls Class
	switch strings.ToUpper(ops[1]) {
	case "Z":
		cls = pick(elpm, OpELPM, OpLPM)
	case "Z+":
		cls = pick(elpm, OpELPMInc, OpLPMInc)
	default:
		return Instruction{}, fmt.Errorf("%s pointer must be Z or Z+, got %q", mnem, ops[1])
	}
	return Instruction{Class: cls, Rd: reg}, nil
}

func pick(cond bool, a, b Class) Class {
	if cond {
		return a
	}
	return b
}

// splitDisp splits "Y+12" into ("Y", 12, true).
func splitDisp(s string) (base string, disp int64, ok bool) {
	up := strings.ToUpper(strings.TrimSpace(s))
	i := strings.IndexByte(up, '+')
	if i != 1 || i == len(up)-1 {
		return "", 0, false
	}
	base = up[:1]
	v, err := strconv.ParseInt(up[2:], 0, 16)
	if err != nil || v < 0 || v > 63 {
		return "", 0, false
	}
	return base, v, true
}

func parseReg(s string) (uint8, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(t, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	v, err := strconv.ParseUint(t[1:], 10, 8)
	if err != nil || v > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(v), nil
}

func parseNum(s string, lo, hi int64) (int64, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "+")
	v, err := strconv.ParseInt(t, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %v", s, err)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("number %d out of range [%d, %d]", v, lo, hi)
	}
	return v, nil
}
