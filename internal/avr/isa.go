// Package avr models the AVR (ATMega328P) instruction set that the
// side-channel disassembler profiles: the 112 instruction classes of the
// paper's Table 2, with real 16/32-bit encodings, a text assembler, a binary
// disassembler, and a cycle-annotated functional simulator. The simulator
// supplies the micro-architectural state (operand values, results, memory
// activity) that the synthetic power model leaks.
package avr

import "fmt"

// Group is the paper's Table 2 partition of the instruction set. Groups are
// keyed by operand shape, which correlates with which micro-architectural
// units are active — that is why group-level power signatures separate well.
type Group uint8

const (
	// GroupNone marks instructions outside the 8 classified groups (NOP).
	GroupNone Group = iota
	// Group1: two-register arithmetic/logic (Rd, Rr). 12 instructions.
	Group1
	// Group2: register-immediate arithmetic/data (Rd, K). 10 instructions.
	Group2
	// Group3: single-register bit/arithmetic (Rd). 13 instructions.
	Group3
	// Group4: relative/absolute branches and jumps (k). 20 instructions.
	Group4
	// Group5: data transfer loads/stores (Rd with X/Y/Z modes). 24 instructions.
	Group5
	// Group6: SREG flag set/clear, no operands. 15 instructions.
	Group6
	// Group7: bit/branch on bit (register or I/O bit operands). 12 instructions.
	Group7
	// Group8: program-memory loads LPM/ELPM. 6 instructions.
	Group8
)

// NumGroups is the number of classified groups.
const NumGroups = 8

func (g Group) String() string {
	if g == GroupNone {
		return "none"
	}
	return fmt.Sprintf("group%d", int(g))
}

// Description returns the paper's category label for the group.
func (g Group) Description() string {
	switch g {
	case Group1:
		return "arithmetic and logic (Rd, Rr)"
	case Group2:
		return "arithmetic and data, immediate (Rd, K)"
	case Group3:
		return "bit and arithmetic, single register (Rd)"
	case Group4:
		return "branch (k)"
	case Group5:
		return "data transfer (Rd, memory)"
	case Group6:
		return "SREG bit set/clear"
	case Group7:
		return "branch and bit-test (bit operands)"
	case Group8:
		return "program memory load"
	default:
		return "unclassified"
	}
}

// Class identifies one of the profiled instruction classes. Load/store
// addressing-mode variants are distinct classes (the paper counts them
// separately to reach 24 in group 5 and 6 in group 8).
type Class uint8

// Group 1 — two-register arithmetic and logic.
const (
	OpADD Class = iota
	OpADC
	OpSUB
	OpSBC
	OpAND
	OpOR
	OpEOR
	OpCPSE
	OpCP
	OpCPC
	OpMOV
	OpMOVW

	// Group 2 — register-immediate.
	OpADIW
	OpSUBI
	OpSBCI
	OpSBIW
	OpANDI
	OpORI
	OpSBR
	OpCBR
	OpCPI
	OpLDI

	// Group 3 — single register.
	OpCOM
	OpNEG
	OpINC
	OpDEC
	OpTST
	OpCLR
	OpSER
	OpLSL
	OpLSR
	OpROL
	OpROR
	OpASR
	OpSWAP

	// Group 4 — branches and jumps.
	OpRJMP
	OpJMP
	OpBREQ
	OpBRNE
	OpBRCS
	OpBRCC
	OpBRSH
	OpBRLO
	OpBRMI
	OpBRPL
	OpBRGE
	OpBRLT
	OpBRHS
	OpBRHC
	OpBRTS
	OpBRTC
	OpBRVS
	OpBRVC
	OpBRIE
	OpBRID

	// Group 5 — data loads and stores.
	OpLDS
	OpLDX
	OpLDXInc
	OpLDXDec
	OpLDY
	OpLDYInc
	OpLDYDec
	OpLDZ
	OpLDZInc
	OpLDZDec
	OpLDDY
	OpLDDZ
	OpSTS
	OpSTX
	OpSTXInc
	OpSTXDec
	OpSTY
	OpSTYInc
	OpSTYDec
	OpSTZ
	OpSTZInc
	OpSTZDec
	OpSTDY
	OpSTDZ

	// Group 6 — SREG flag operations.
	OpSEC
	OpCLC
	OpSEN
	OpCLN
	OpSEZ
	OpCLZ
	OpSEI
	OpSES
	OpCLS
	OpSEV
	OpCLV
	OpSET
	OpCLT
	OpSEH
	OpCLH

	// Group 7 — bit and branch-on-bit.
	OpSBRC
	OpSBRS
	OpSBIC
	OpSBIS
	OpBRBS
	OpBRBC
	OpSBI
	OpCBI
	OpBST
	OpBLD
	OpBSET
	OpBCLR

	// Group 8 — program memory loads.
	OpLPM0 // LPM (implied R0 ← flash[Z])
	OpLPM  // LPM Rd, Z
	OpLPMInc
	OpELPM0
	OpELPM
	OpELPMInc

	// OpNOP is used by the acquisition templates (SBI, NOP, …, NOP, CBI)
	// but is excluded from the 112 classified instructions.
	OpNOP

	numClasses
)

// NumClasses is the number of classified instruction classes (112).
const NumClasses = int(OpNOP)

// OperandKind describes which operand fields an instruction class uses.
type OperandKind uint8

const (
	OperandNone    OperandKind = iota
	OperandRdRr                // Rd, Rr
	OperandRdK                 // Rd, K (8-bit immediate)
	OperandRdPairK             // Rd∈{24,26,28,30} pair, K (6-bit) — ADIW/SBIW
	OperandRd                  // Rd only
	OperandOff                 // signed relative offset k
	OperandAddr                // absolute address k
	OperandRdAddr              // Rd, 16-bit data address (LDS)
	OperandAddrRr              // 16-bit data address, Rr (STS)
	OperandRdPtr               // Rd with pointer mode (LD)
	OperandPtrRr               // pointer mode with Rr (ST)
	OperandRdQ                 // Rd, q displacement (LDD)
	OperandQRr                 // q displacement, Rr (STD)
	OperandRrB                 // Rr, bit (SBRC/SBRS/BST/BLD)
	OperandAB                  // I/O address, bit (SBI/CBI/SBIC/SBIS)
	OperandSOff                // SREG bit s, offset k (BRBS/BRBC)
	OperandS                   // SREG bit s (BSET/BCLR)
	OperandRdZ                 // Rd, Z (LPM forms)
	OperandImplied             // no encoded operands (LPM0, group 6 aliases, NOP)
)

// Spec is the static description of one instruction class.
type Spec struct {
	Name     string // canonical mnemonic, upper case
	Syntax   string // operand syntax for display, e.g. "Rd, Rr"
	Group    Group
	Operands OperandKind
	Words    int // encoded length in 16-bit words (1 or 2)
	Cycles   int // nominal execution cycles on ATMega328P (branch not taken)
	// RdMin/RdMax constrain the destination register for classes with
	// restricted register files (immediate ops use r16–r31, ADIW pairs, …).
	RdMin, RdMax uint8
	// RdEven marks classes whose Rd must be even (MOVW, ADIW, SBIW).
	RdEven bool
}

// specs is indexed by Class.
var specs = [numClasses]Spec{
	OpADD:  {Name: "ADD", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpADC:  {Name: "ADC", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpSUB:  {Name: "SUB", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpSBC:  {Name: "SBC", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpAND:  {Name: "AND", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpOR:   {Name: "OR", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpEOR:  {Name: "EOR", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpCPSE: {Name: "CPSE", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpCP:   {Name: "CP", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpCPC:  {Name: "CPC", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpMOV:  {Name: "MOV", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 31},
	OpMOVW: {Name: "MOVW", Syntax: "Rd, Rr", Group: Group1, Operands: OperandRdRr, Words: 1, Cycles: 1, RdMax: 30, RdEven: true},

	OpADIW: {Name: "ADIW", Syntax: "Rd, K", Group: Group2, Operands: OperandRdPairK, Words: 1, Cycles: 2, RdMin: 24, RdMax: 30, RdEven: true},
	OpSUBI: {Name: "SUBI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpSBCI: {Name: "SBCI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpSBIW: {Name: "SBIW", Syntax: "Rd, K", Group: Group2, Operands: OperandRdPairK, Words: 1, Cycles: 2, RdMin: 24, RdMax: 30, RdEven: true},
	OpANDI: {Name: "ANDI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpORI:  {Name: "ORI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpSBR:  {Name: "SBR", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpCBR:  {Name: "CBR", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpCPI:  {Name: "CPI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpLDI:  {Name: "LDI", Syntax: "Rd, K", Group: Group2, Operands: OperandRdK, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},

	OpCOM:  {Name: "COM", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpNEG:  {Name: "NEG", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpINC:  {Name: "INC", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpDEC:  {Name: "DEC", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpTST:  {Name: "TST", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpCLR:  {Name: "CLR", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpSER:  {Name: "SER", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMin: 16, RdMax: 31},
	OpLSL:  {Name: "LSL", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpLSR:  {Name: "LSR", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpROL:  {Name: "ROL", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpROR:  {Name: "ROR", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpASR:  {Name: "ASR", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},
	OpSWAP: {Name: "SWAP", Syntax: "Rd", Group: Group3, Operands: OperandRd, Words: 1, Cycles: 1, RdMax: 31},

	OpRJMP: {Name: "RJMP", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 2},
	OpJMP:  {Name: "JMP", Syntax: "k", Group: Group4, Operands: OperandAddr, Words: 2, Cycles: 3},
	OpBREQ: {Name: "BREQ", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRNE: {Name: "BRNE", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRCS: {Name: "BRCS", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRCC: {Name: "BRCC", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRSH: {Name: "BRSH", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRLO: {Name: "BRLO", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRMI: {Name: "BRMI", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRPL: {Name: "BRPL", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRGE: {Name: "BRGE", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRLT: {Name: "BRLT", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRHS: {Name: "BRHS", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRHC: {Name: "BRHC", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRTS: {Name: "BRTS", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRTC: {Name: "BRTC", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRVS: {Name: "BRVS", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRVC: {Name: "BRVC", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRIE: {Name: "BRIE", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},
	OpBRID: {Name: "BRID", Syntax: "k", Group: Group4, Operands: OperandOff, Words: 1, Cycles: 1},

	OpLDS:    {Name: "LDS", Syntax: "Rd, k", Group: Group5, Operands: OperandRdAddr, Words: 2, Cycles: 2, RdMax: 31},
	OpLDX:    {Name: "LD", Syntax: "Rd, X", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDXInc: {Name: "LD", Syntax: "Rd, X+", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDXDec: {Name: "LD", Syntax: "Rd, -X", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDY:    {Name: "LD", Syntax: "Rd, Y", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDYInc: {Name: "LD", Syntax: "Rd, Y+", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDYDec: {Name: "LD", Syntax: "Rd, -Y", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDZ:    {Name: "LD", Syntax: "Rd, Z", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDZInc: {Name: "LD", Syntax: "Rd, Z+", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDZDec: {Name: "LD", Syntax: "Rd, -Z", Group: Group5, Operands: OperandRdPtr, Words: 1, Cycles: 2, RdMax: 31},
	OpLDDY:   {Name: "LDD", Syntax: "Rd, Y+q", Group: Group5, Operands: OperandRdQ, Words: 1, Cycles: 2, RdMax: 31},
	OpLDDZ:   {Name: "LDD", Syntax: "Rd, Z+q", Group: Group5, Operands: OperandRdQ, Words: 1, Cycles: 2, RdMax: 31},
	OpSTS:    {Name: "STS", Syntax: "k, Rr", Group: Group5, Operands: OperandAddrRr, Words: 2, Cycles: 2, RdMax: 31},
	OpSTX:    {Name: "ST", Syntax: "X, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTXInc: {Name: "ST", Syntax: "X+, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTXDec: {Name: "ST", Syntax: "-X, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTY:    {Name: "ST", Syntax: "Y, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTYInc: {Name: "ST", Syntax: "Y+, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTYDec: {Name: "ST", Syntax: "-Y, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTZ:    {Name: "ST", Syntax: "Z, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTZInc: {Name: "ST", Syntax: "Z+, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTZDec: {Name: "ST", Syntax: "-Z, Rr", Group: Group5, Operands: OperandPtrRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTDY:   {Name: "STD", Syntax: "Y+q, Rr", Group: Group5, Operands: OperandQRr, Words: 1, Cycles: 2, RdMax: 31},
	OpSTDZ:   {Name: "STD", Syntax: "Z+q, Rr", Group: Group5, Operands: OperandQRr, Words: 1, Cycles: 2, RdMax: 31},

	OpSEC: {Name: "SEC", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLC: {Name: "CLC", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSEN: {Name: "SEN", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLN: {Name: "CLN", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSEZ: {Name: "SEZ", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLZ: {Name: "CLZ", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSEI: {Name: "SEI", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSES: {Name: "SES", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLS: {Name: "CLS", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSEV: {Name: "SEV", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLV: {Name: "CLV", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSET: {Name: "SET", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLT: {Name: "CLT", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpSEH: {Name: "SEH", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},
	OpCLH: {Name: "CLH", Group: Group6, Operands: OperandImplied, Words: 1, Cycles: 1},

	OpSBRC: {Name: "SBRC", Syntax: "Rr, b", Group: Group7, Operands: OperandRrB, Words: 1, Cycles: 1, RdMax: 31},
	OpSBRS: {Name: "SBRS", Syntax: "Rr, b", Group: Group7, Operands: OperandRrB, Words: 1, Cycles: 1, RdMax: 31},
	OpSBIC: {Name: "SBIC", Syntax: "A, b", Group: Group7, Operands: OperandAB, Words: 1, Cycles: 1},
	OpSBIS: {Name: "SBIS", Syntax: "A, b", Group: Group7, Operands: OperandAB, Words: 1, Cycles: 1},
	OpBRBS: {Name: "BRBS", Syntax: "s, k", Group: Group7, Operands: OperandSOff, Words: 1, Cycles: 1},
	OpBRBC: {Name: "BRBC", Syntax: "s, k", Group: Group7, Operands: OperandSOff, Words: 1, Cycles: 1},
	OpSBI:  {Name: "SBI", Syntax: "A, b", Group: Group7, Operands: OperandAB, Words: 1, Cycles: 2},
	OpCBI:  {Name: "CBI", Syntax: "A, b", Group: Group7, Operands: OperandAB, Words: 1, Cycles: 2},
	OpBST:  {Name: "BST", Syntax: "Rd, b", Group: Group7, Operands: OperandRrB, Words: 1, Cycles: 1, RdMax: 31},
	OpBLD:  {Name: "BLD", Syntax: "Rd, b", Group: Group7, Operands: OperandRrB, Words: 1, Cycles: 1, RdMax: 31},
	OpBSET: {Name: "BSET", Syntax: "s", Group: Group7, Operands: OperandS, Words: 1, Cycles: 1},
	OpBCLR: {Name: "BCLR", Syntax: "s", Group: Group7, Operands: OperandS, Words: 1, Cycles: 1},

	OpLPM0:    {Name: "LPM", Group: Group8, Operands: OperandImplied, Words: 1, Cycles: 3},
	OpLPM:     {Name: "LPM", Syntax: "Rd, Z", Group: Group8, Operands: OperandRdZ, Words: 1, Cycles: 3, RdMax: 31},
	OpLPMInc:  {Name: "LPM", Syntax: "Rd, Z+", Group: Group8, Operands: OperandRdZ, Words: 1, Cycles: 3, RdMax: 31},
	OpELPM0:   {Name: "ELPM", Group: Group8, Operands: OperandImplied, Words: 1, Cycles: 3},
	OpELPM:    {Name: "ELPM", Syntax: "Rd, Z", Group: Group8, Operands: OperandRdZ, Words: 1, Cycles: 3, RdMax: 31},
	OpELPMInc: {Name: "ELPM", Syntax: "Rd, Z+", Group: Group8, Operands: OperandRdZ, Words: 1, Cycles: 3, RdMax: 31},

	OpNOP: {Name: "NOP", Group: GroupNone, Operands: OperandImplied, Words: 1, Cycles: 1},
}

// SpecOf returns the static description of class c. It panics on an
// undefined class — that is a programmer error on every internal path;
// callers holding class values of external origin (persisted templates,
// decoded words) must screen them with ValidClass first.
func SpecOf(c Class) Spec {
	if int(c) >= int(numClasses) {
		panic(fmt.Sprintf("avr: invalid class %d", c))
	}
	return specs[c]
}

func (c Class) String() string {
	if int(c) >= int(numClasses) {
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
	s := specs[c]
	if s.Syntax == "" {
		return s.Name
	}
	return s.Name + " " + s.Syntax
}

// Name returns the bare mnemonic of the class.
func (c Class) Name() string { return SpecOf(c).Name }

// Group returns the Table 2 group of the class.
func (c Class) Group() Group { return SpecOf(c).Group }

// Classified reports whether c is one of the 112 profiled classes.
func (c Class) Classified() bool { return int(c) < NumClasses }

// ClassesInGroup returns the classes belonging to group g, in declaration
// order (which is the paper's Table 2 order).
func ClassesInGroup(g Group) []Class {
	var out []Class
	for c := Class(0); c < Class(NumClasses); c++ {
		if specs[c].Group == g {
			out = append(out, c)
		}
	}
	return out
}

// AllClasses returns the 112 classified classes in declaration order.
func AllClasses() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// GroupSizes returns the class count per group (Table 2's "# of Insts" row),
// indexed by Group1..Group8 at positions 0..7.
func GroupSizes() [NumGroups]int {
	var sizes [NumGroups]int
	for c := Class(0); c < Class(NumClasses); c++ {
		sizes[specs[c].Group-Group1]++
	}
	return sizes
}
