package avr

import (
	"fmt"
	"math/rand"
)

// TriggerIOAddr is the I/O register used by the acquisition trigger
// (SBI/CBI on PORTB bit 5, matching the Arduino LED pin convention).
const (
	TriggerIOAddr = 0x05
	TriggerBit    = 5
)

// RandomOperands returns an instruction of class c with uniformly random,
// valid operand values drawn from rng.
func RandomOperands(rng *rand.Rand, c Class) Instruction {
	sp := SpecOf(c)
	in := Instruction{Class: c}
	randReg := func() uint8 {
		lo, hi := int(sp.RdMin), int(sp.RdMax)
		if hi == 0 {
			hi = 31
		}
		r := uint8(lo + rng.Intn(hi-lo+1))
		if sp.RdEven {
			r &^= 1
			if r < sp.RdMin {
				r = sp.RdMin
			}
		}
		return r
	}
	switch sp.Operands {
	case OperandRdRr:
		in.Rd = randReg()
		in.Rr = uint8(rng.Intn(32))
		if c == OpMOVW {
			in.Rr &^= 1
		}
	case OperandRdK:
		in.Rd = randReg()
		in.K = uint8(rng.Intn(256))
	case OperandRdPairK:
		in.Rd = uint8(24 + 2*rng.Intn(4))
		in.K = uint8(rng.Intn(64))
	case OperandRd:
		in.Rd = randReg()
	case OperandOff:
		lim := 63
		if c == OpRJMP {
			lim = 2047
		}
		in.Off = int16(rng.Intn(2*lim+2) - lim - 1)
	case OperandAddr:
		in.Addr = uint16(rng.Intn(0x10000))
	case OperandRdAddr:
		in.Rd = randReg()
		in.Addr = uint16(0x0100 + rng.Intn(0x0700)) // SRAM data space
	case OperandAddrRr:
		in.Rr = uint8(rng.Intn(32))
		in.Addr = uint16(0x0100 + rng.Intn(0x0700))
	case OperandRdPtr, OperandRdZ:
		in.Rd = randReg()
	case OperandPtrRr:
		in.Rr = uint8(rng.Intn(32))
	case OperandRdQ:
		in.Rd = randReg()
		in.Q = uint8(rng.Intn(64))
	case OperandQRr:
		in.Rr = uint8(rng.Intn(32))
		in.Q = uint8(rng.Intn(64))
	case OperandRrB:
		if c == OpBST || c == OpBLD {
			in.Rd = randReg()
		} else {
			in.Rr = uint8(rng.Intn(32))
		}
		in.B = uint8(rng.Intn(8))
	case OperandAB:
		in.Addr = uint16(rng.Intn(32))
		in.B = uint8(rng.Intn(8))
	case OperandSOff:
		in.S = uint8(rng.Intn(8))
		in.Off = int16(rng.Intn(128) - 64)
	case OperandS:
		in.S = uint8(rng.Intn(8))
	}
	return in
}

// RandomClass returns a uniformly random classified instruction class.
func RandomClass(rng *rand.Rand) Class {
	return Class(rng.Intn(NumClasses))
}

// safeNeighborClasses are the classes used for the random neighbor slots of
// a segment template. Branches and skips are excluded so the template's
// straight-line timing is preserved, mirroring the paper's profiling setup.
var safeNeighborClasses = func() []Class {
	var out []Class
	for _, c := range AllClasses() {
		switch c.Group() {
		case Group4:
			continue // branches would disturb sequencing
		}
		switch c {
		case OpCPSE, OpSBRC, OpSBRS, OpSBIC, OpSBIS, OpBRBS, OpBRBC:
			continue
		}
		out = append(out, c)
	}
	return out
}()

// RandomNeighbor returns a random non-control-flow instruction for the
// filler slots of a segment template.
func RandomNeighbor(rng *rand.Rand) Instruction {
	c := safeNeighborClasses[rng.Intn(len(safeNeighborClasses))]
	return RandomOperands(rng, c)
}

// Segment is one acquisition unit: the 7-instruction program segment
// template of the paper (Fig. 4) around a single profiled target.
//
//	SBI, NOP, prev, TARGET, next, NOP, CBI
//
// SBI/CBI raise and lower the trigger line; prev/next are random
// instructions so the 2-stage pipeline overlap seen by the target varies
// trace to trace.
type Segment struct {
	Target Instruction
	Prev   Instruction
	Next   Instruction
}

// NewSegment builds a segment for target with random neighbor instructions.
func NewSegment(rng *rand.Rand, target Instruction) Segment {
	return Segment{
		Target: target,
		Prev:   RandomNeighbor(rng),
		Next:   RandomNeighbor(rng),
	}
}

// Instructions returns the full 7-instruction sequence of the segment.
func (s Segment) Instructions() []Instruction {
	return []Instruction{
		{Class: OpSBI, Addr: TriggerIOAddr, B: TriggerBit},
		{Class: OpNOP},
		s.Prev,
		s.Target,
		s.Next,
		{Class: OpNOP},
		{Class: OpCBI, Addr: TriggerIOAddr, B: TriggerBit},
	}
}

// ReferenceSequence is the SBI, 5×NOP, CBI sequence whose trace is
// subtracted from each measurement to remove the trigger's own power
// consumption and static noise.
func ReferenceSequence() []Instruction {
	return []Instruction{
		{Class: OpSBI, Addr: TriggerIOAddr, B: TriggerBit},
		{Class: OpNOP},
		{Class: OpNOP},
		{Class: OpNOP},
		{Class: OpNOP},
		{Class: OpNOP},
		{Class: OpCBI, Addr: TriggerIOAddr, B: TriggerBit},
	}
}

// ProgramFile models one uploaded .ino image: a batch of segment templates
// for a single class. The paper stores 300 segments per file and uses 10
// (later 19) files per class; files are the unit across which the
// program-level covariate shift occurs.
type ProgramFile struct {
	ID       int
	Segments []Segment
}

// NewProgramFile builds a program file of n segments whose targets all have
// class c but freshly randomized operands.
func NewProgramFile(rng *rand.Rand, id int, c Class, n int) ProgramFile {
	if n <= 0 {
		panic(fmt.Sprintf("avr: NewProgramFile needs positive segment count, got %d", n))
	}
	segs := make([]Segment, n)
	for i := range segs {
		segs[i] = NewSegment(rng, RandomOperands(rng, c))
	}
	return ProgramFile{ID: id, Segments: segs}
}

// NewRegisterProgramFile builds a program file whose targets all use a fixed
// destination (fixDst) or source register value reg, with the opcode and the
// other register randomized — the paper's register-profiling workload. Only
// group 1 classes are used because they exercise both Rd and Rr.
func NewRegisterProgramFile(rng *rand.Rand, id int, reg uint8, fixDst bool, n int) ProgramFile {
	group1 := ClassesInGroup(Group1)
	segs := make([]Segment, n)
	for i := range segs {
		// MOVW constrains registers to even pairs; skip it so every reg
		// value 0–31 is reachable.
		var c Class
		for {
			c = group1[rng.Intn(len(group1))]
			if c != OpMOVW {
				break
			}
		}
		in := RandomOperands(rng, c)
		if fixDst {
			in.Rd = reg
		} else {
			in.Rr = reg
		}
		segs[i] = NewSegment(rng, in)
	}
	return ProgramFile{ID: id, Segments: segs}
}
