package avr

import "fmt"

// Encode returns the machine-code words (1 or 2 little-endian 16-bit words,
// in program order) for the instruction, following the AVR instruction set
// manual encodings.
func (in Instruction) Encode() ([]uint16, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	d := uint16(in.Rd)
	r := uint16(in.Rr)
	k8 := uint16(in.K)
	b := uint16(in.B)
	s := uint16(in.S)
	q := uint16(in.Q)
	a := in.Addr

	twoReg := func(base uint16, d, r uint16) uint16 {
		return base | (r&0x10)<<5 | (d&0x1F)<<4 | (r & 0x0F)
	}
	imm := func(base uint16) uint16 {
		return base | (k8&0xF0)<<4 | (d-16)<<4 | (k8 & 0x0F)
	}
	oneReg := func(low uint16) uint16 { return 0x9400 | d<<4 | low }
	brbs := func(set bool, sbit uint16, off int16) uint16 {
		base := uint16(0xF000)
		if !set {
			base = 0xF400
		}
		return base | (uint16(off)&0x7F)<<3 | sbit
	}
	ldstDisp := func(base uint16, reg uint16) uint16 {
		return base | (q&0x20)<<8 | (q&0x18)<<7 | (q & 0x07) | reg<<4
	}

	switch in.Class {
	case OpADD:
		return []uint16{twoReg(0x0C00, d, r)}, nil
	case OpADC:
		return []uint16{twoReg(0x1C00, d, r)}, nil
	case OpSUB:
		return []uint16{twoReg(0x1800, d, r)}, nil
	case OpSBC:
		return []uint16{twoReg(0x0800, d, r)}, nil
	case OpAND:
		return []uint16{twoReg(0x2000, d, r)}, nil
	case OpOR:
		return []uint16{twoReg(0x2800, d, r)}, nil
	case OpEOR:
		return []uint16{twoReg(0x2400, d, r)}, nil
	case OpCPSE:
		return []uint16{twoReg(0x1000, d, r)}, nil
	case OpCP:
		return []uint16{twoReg(0x1400, d, r)}, nil
	case OpCPC:
		return []uint16{twoReg(0x0400, d, r)}, nil
	case OpMOV:
		return []uint16{twoReg(0x2C00, d, r)}, nil
	case OpMOVW:
		return []uint16{0x0100 | (d/2)<<4 | (r / 2)}, nil

	case OpADIW:
		return []uint16{0x9600 | (k8&0x30)<<2 | ((d - 24) / 2 << 4) | (k8 & 0x0F)}, nil
	case OpSBIW:
		return []uint16{0x9700 | (k8&0x30)<<2 | ((d - 24) / 2 << 4) | (k8 & 0x0F)}, nil
	case OpSUBI:
		return []uint16{imm(0x5000)}, nil
	case OpSBCI:
		return []uint16{imm(0x4000)}, nil
	case OpANDI:
		return []uint16{imm(0x7000)}, nil
	case OpORI, OpSBR:
		return []uint16{imm(0x6000)}, nil
	case OpCBR:
		// CBR Rd, K is ANDI Rd, ~K.
		k8 = uint16(^in.K)
		return []uint16{0x7000 | (k8&0xF0)<<4 | (d-16)<<4 | (k8 & 0x0F)}, nil
	case OpCPI:
		return []uint16{imm(0x3000)}, nil
	case OpLDI:
		return []uint16{imm(0xE000)}, nil

	case OpCOM:
		return []uint16{oneReg(0x0)}, nil
	case OpNEG:
		return []uint16{oneReg(0x1)}, nil
	case OpSWAP:
		return []uint16{oneReg(0x2)}, nil
	case OpINC:
		return []uint16{oneReg(0x3)}, nil
	case OpASR:
		return []uint16{oneReg(0x5)}, nil
	case OpLSR:
		return []uint16{oneReg(0x6)}, nil
	case OpROR:
		return []uint16{oneReg(0x7)}, nil
	case OpDEC:
		return []uint16{oneReg(0xA)}, nil
	case OpTST:
		return []uint16{twoReg(0x2000, d, d)}, nil
	case OpCLR:
		return []uint16{twoReg(0x2400, d, d)}, nil
	case OpLSL:
		return []uint16{twoReg(0x0C00, d, d)}, nil
	case OpROL:
		return []uint16{twoReg(0x1C00, d, d)}, nil
	case OpSER:
		return []uint16{0xE000 | 0x0F00 | (d-16)<<4 | 0x0F}, nil // LDI Rd, 0xFF

	case OpRJMP:
		return []uint16{0xC000 | uint16(in.Off)&0x0FFF}, nil
	case OpJMP:
		return []uint16{0x940C, a}, nil
	case OpBREQ:
		return []uint16{brbs(true, 1, in.Off)}, nil
	case OpBRNE:
		return []uint16{brbs(false, 1, in.Off)}, nil
	case OpBRCS, OpBRLO:
		return []uint16{brbs(true, 0, in.Off)}, nil
	case OpBRCC, OpBRSH:
		return []uint16{brbs(false, 0, in.Off)}, nil
	case OpBRMI:
		return []uint16{brbs(true, 2, in.Off)}, nil
	case OpBRPL:
		return []uint16{brbs(false, 2, in.Off)}, nil
	case OpBRVS:
		return []uint16{brbs(true, 3, in.Off)}, nil
	case OpBRVC:
		return []uint16{brbs(false, 3, in.Off)}, nil
	case OpBRLT:
		return []uint16{brbs(true, 4, in.Off)}, nil
	case OpBRGE:
		return []uint16{brbs(false, 4, in.Off)}, nil
	case OpBRHS:
		return []uint16{brbs(true, 5, in.Off)}, nil
	case OpBRHC:
		return []uint16{brbs(false, 5, in.Off)}, nil
	case OpBRTS:
		return []uint16{brbs(true, 6, in.Off)}, nil
	case OpBRTC:
		return []uint16{brbs(false, 6, in.Off)}, nil
	case OpBRIE:
		return []uint16{brbs(true, 7, in.Off)}, nil
	case OpBRID:
		return []uint16{brbs(false, 7, in.Off)}, nil
	case OpBRBS:
		return []uint16{brbs(true, s, in.Off)}, nil
	case OpBRBC:
		return []uint16{brbs(false, s, in.Off)}, nil

	case OpLDS:
		return []uint16{0x9000 | d<<4, a}, nil
	case OpSTS:
		return []uint16{0x9200 | r<<4, a}, nil
	case OpLDX:
		return []uint16{0x900C | d<<4}, nil
	case OpLDXInc:
		return []uint16{0x900D | d<<4}, nil
	case OpLDXDec:
		return []uint16{0x900E | d<<4}, nil
	case OpLDY:
		return []uint16{0x8008 | d<<4}, nil
	case OpLDYInc:
		return []uint16{0x9009 | d<<4}, nil
	case OpLDYDec:
		return []uint16{0x900A | d<<4}, nil
	case OpLDZ:
		return []uint16{0x8000 | d<<4}, nil
	case OpLDZInc:
		return []uint16{0x9001 | d<<4}, nil
	case OpLDZDec:
		return []uint16{0x9002 | d<<4}, nil
	case OpLDDY:
		return []uint16{ldstDisp(0x8008, d)}, nil
	case OpLDDZ:
		return []uint16{ldstDisp(0x8000, d)}, nil
	case OpSTX:
		return []uint16{0x920C | r<<4}, nil
	case OpSTXInc:
		return []uint16{0x920D | r<<4}, nil
	case OpSTXDec:
		return []uint16{0x920E | r<<4}, nil
	case OpSTY:
		return []uint16{0x8208 | r<<4}, nil
	case OpSTYInc:
		return []uint16{0x9209 | r<<4}, nil
	case OpSTYDec:
		return []uint16{0x920A | r<<4}, nil
	case OpSTZ:
		return []uint16{0x8200 | r<<4}, nil
	case OpSTZInc:
		return []uint16{0x9201 | r<<4}, nil
	case OpSTZDec:
		return []uint16{0x9202 | r<<4}, nil
	case OpSTDY:
		return []uint16{ldstDisp(0x8208, r)}, nil
	case OpSTDZ:
		return []uint16{ldstDisp(0x8200, r)}, nil

	case OpSEC:
		return []uint16{0x9408}, nil
	case OpSEZ:
		return []uint16{0x9418}, nil
	case OpSEN:
		return []uint16{0x9428}, nil
	case OpSEV:
		return []uint16{0x9438}, nil
	case OpSES:
		return []uint16{0x9448}, nil
	case OpSEH:
		return []uint16{0x9458}, nil
	case OpSET:
		return []uint16{0x9468}, nil
	case OpSEI:
		return []uint16{0x9478}, nil
	case OpCLC:
		return []uint16{0x9488}, nil
	case OpCLZ:
		return []uint16{0x9498}, nil
	case OpCLN:
		return []uint16{0x94A8}, nil
	case OpCLV:
		return []uint16{0x94B8}, nil
	case OpCLS:
		return []uint16{0x94C8}, nil
	case OpCLH:
		return []uint16{0x94D8}, nil
	case OpCLT:
		return []uint16{0x94E8}, nil
	case OpBSET:
		return []uint16{0x9408 | s<<4}, nil
	case OpBCLR:
		return []uint16{0x9488 | s<<4}, nil

	case OpSBRC:
		return []uint16{0xFC00 | r<<4 | b}, nil
	case OpSBRS:
		return []uint16{0xFE00 | r<<4 | b}, nil
	case OpSBIC:
		return []uint16{0x9900 | a<<3 | b}, nil
	case OpSBIS:
		return []uint16{0x9B00 | a<<3 | b}, nil
	case OpSBI:
		return []uint16{0x9A00 | a<<3 | b}, nil
	case OpCBI:
		return []uint16{0x9800 | a<<3 | b}, nil
	case OpBST:
		return []uint16{0xFA00 | d<<4 | b}, nil
	case OpBLD:
		return []uint16{0xF800 | d<<4 | b}, nil

	case OpLPM0:
		return []uint16{0x95C8}, nil
	case OpLPM:
		return []uint16{0x9004 | d<<4}, nil
	case OpLPMInc:
		return []uint16{0x9005 | d<<4}, nil
	case OpELPM0:
		return []uint16{0x95D8}, nil
	case OpELPM:
		return []uint16{0x9006 | d<<4}, nil
	case OpELPMInc:
		return []uint16{0x9007 | d<<4}, nil

	case OpNOP:
		return []uint16{0x0000}, nil
	}
	return nil, fmt.Errorf("avr: no encoding for class %v", in.Class)
}
