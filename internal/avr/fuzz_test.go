package avr

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testkit"
)

// wordsOf reinterprets fuzz bytes as little-endian 16-bit opcode words.
func wordsOf(data []byte) []uint16 {
	words := make([]uint16, len(data)/2)
	for i := range words {
		words[i] = binary.LittleEndian.Uint16(data[2*i:])
	}
	return words
}

// FuzzDecode drives the opcode decoder with arbitrary word streams. For any
// input, Decode must not panic; when it accepts, the decoded instruction
// must consume a sane word count, survive Encode, and decode back to the
// same canonical instruction (the encode∘decode fixed point).
func FuzzDecode(f *testing.F) {
	// One seed per encoding family: register-register ALU, immediate,
	// implicit, flag, branch, 32-bit LDS/STS prefix, displacement, garbage.
	seed := [][]uint16{
		{0x0C01},         // ADD r0, r1
		{0xE5A5},         // LDI r26, 0x55
		{0x9488},         // CLC
		{0xF409},         // BRNE .+2
		{0x9000, 0x1234}, // LDS r0, 0x1234
		{0x8008},         // LDD r0, Y+0
		{0x9508},         // RET
		{0xFFFF},
		{0x0000},
	}
	for _, ws := range seed {
		b := make([]byte, 2*len(ws))
		for i, w := range ws {
			binary.LittleEndian.PutUint16(b[2*i:], w)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		in, n, err := Decode(words)
		if err != nil {
			return
		}
		if n < 1 || n > len(words) {
			t.Fatalf("Decode consumed %d of %d words", n, len(words))
		}
		if !ValidClass(in.Class) {
			t.Fatalf("Decode produced undefined class %d", in.Class)
		}
		enc, err := in.Encode()
		if err != nil {
			t.Fatalf("decoded instruction %+v does not re-encode: %v", in, err)
		}
		back, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded words %#v do not decode: %v", enc, err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d words", n2, len(enc))
		}
		if Canonical(back) != Canonical(in) {
			t.Fatalf("decode/encode round trip drifted: %+v -> %#v -> %+v", in, enc, back)
		}
	})
}

// FuzzDecodeProgram exercises the whole-stream decoder (the CLI's `decode`
// input path): arbitrary streams must produce either a listing or an error,
// never a panic, and an accepted listing must re-encode to the same length.
func FuzzDecodeProgram(f *testing.F) {
	f.Add([]byte{0x01, 0x0C, 0xA5, 0xE5, 0x08, 0x95})
	f.Add([]byte{0x00, 0x90}) // truncated LDS
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		prog, err := DecodeProgram(words)
		if err != nil {
			return
		}
		total := 0
		for _, in := range prog {
			enc, err := in.Encode()
			if err != nil {
				t.Fatalf("decoded program instruction %+v does not re-encode: %v", in, err)
			}
			total += len(enc)
		}
		if total != len(words) {
			t.Fatalf("program re-encodes to %d words, input had %d", total, len(words))
		}
	})
}

// TestFuzzCorpusCommitted regenerates the committed seed corpora under
// testdata/fuzz when REGEN_FUZZ_CORPUS is set, and otherwise asserts they
// are present so the CI fuzz-smoke job always starts from real seeds.
func TestFuzzCorpusCommitted(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		words := func(ws ...uint16) []byte {
			b := make([]byte, 2*len(ws))
			for i, w := range ws {
				binary.LittleEndian.PutUint16(b[2*i:], w)
			}
			return b
		}
		testkit.WriteCorpus(t, "FuzzDecode", "alu_rr", words(0x0C01))
		testkit.WriteCorpus(t, "FuzzDecode", "ldi", words(0xE5A5))
		testkit.WriteCorpus(t, "FuzzDecode", "lds32", words(0x9000, 0x1234))
		testkit.WriteCorpus(t, "FuzzDecode", "branch", words(0xF409))
		testkit.WriteCorpus(t, "FuzzDecodeProgram", "mixed", words(0x0C01, 0xE5A5, 0x9508))
		testkit.WriteCorpus(t, "FuzzDecodeProgram", "truncated_lds", words(0x9000))
		testkit.WriteCorpus(t, "FuzzAssemble", "add", "add r1, r2")
		testkit.WriteCorpus(t, "FuzzAssemble", "ldd_disp", "ldd r0, Y+12")
		testkit.WriteCorpus(t, "FuzzAssemble", "sts", "sts 0x0100, r1")
		return
	}
	for _, target := range []string{"FuzzDecode", "FuzzDecodeProgram", "FuzzAssemble"} {
		ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", target))
		if err != nil || len(ents) == 0 {
			t.Errorf("no committed seed corpus for %s (REGEN_FUZZ_CORPUS=1 to create): %v", target, err)
		}
	}
}

// FuzzAssemble drives the mnemonic parser (the CLI's `asm` input path) with
// arbitrary source lines. Accepted lines must produce an encodable
// instruction whose canonical decode matches.
func FuzzAssemble(f *testing.F) {
	for _, s := range []string{
		"add r1, r2",
		"ldi r16, 0xFF",
		"ldd r0, Y+12",
		"brne .+6",
		"clc",
		"tst r5",
		"sts 0x0100, r1",
		"; comment",
		"",
		"bogus r1",
		"add r1",
		"ldi r15, 1", // LDI needs r16..r31
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		in, err := Assemble(line)
		if err != nil {
			return
		}
		if !ValidClass(in.Class) {
			t.Fatalf("Assemble(%q) produced undefined class %d", line, in.Class)
		}
		enc, err := in.Encode()
		if err != nil {
			t.Fatalf("assembled %q -> %+v does not encode: %v", line, in, err)
		}
		back, _, err := Decode(enc)
		if err != nil {
			t.Fatalf("assembled %q encodes to undecodable words %#v: %v", line, enc, err)
		}
		if Canonical(back) != Canonical(in) {
			t.Fatalf("assemble/encode/decode drifted for %q: %+v vs %+v", line, in, back)
		}
	})
}
