package avr

import (
	"errors"
	"strings"
	"testing"
)

func TestNumClassesIs112(t *testing.T) {
	if NumClasses != 112 {
		t.Fatalf("NumClasses = %d, want 112 (paper Table 2)", NumClasses)
	}
}

func TestGroupSizesMatchTable2(t *testing.T) {
	want := [NumGroups]int{12, 10, 13, 20, 24, 15, 12, 6}
	got := GroupSizes()
	if got != want {
		t.Fatalf("group sizes = %v, want %v", got, want)
	}
}

func TestEveryClassHasSpec(t *testing.T) {
	for _, c := range AllClasses() {
		sp := SpecOf(c)
		if sp.Name == "" {
			t.Fatalf("class %d has no name", c)
		}
		if sp.Group < Group1 || sp.Group > Group8 {
			t.Fatalf("class %v has invalid group %v", c, sp.Group)
		}
		if sp.Words != 1 && sp.Words != 2 {
			t.Fatalf("class %v has invalid word count %d", c, sp.Words)
		}
		if sp.Cycles < 1 || sp.Cycles > 3 {
			t.Fatalf("class %v has implausible cycle count %d", c, sp.Cycles)
		}
	}
	if SpecOf(OpNOP).Group != GroupNone {
		t.Fatal("NOP must be unclassified")
	}
}

func TestClassesInGroupPartition(t *testing.T) {
	seen := map[Class]bool{}
	total := 0
	for g := Group1; g <= Group8; g++ {
		for _, c := range ClassesInGroup(g) {
			if seen[c] {
				t.Fatalf("class %v appears in two groups", c)
			}
			seen[c] = true
			if c.Group() != g {
				t.Fatalf("class %v reports group %v, listed under %v", c, c.Group(), g)
			}
			total++
		}
	}
	if total != NumClasses {
		t.Fatalf("groups cover %d classes, want %d", total, NumClasses)
	}
}

func TestTwoWordClasses(t *testing.T) {
	for _, c := range AllClasses() {
		want := 1
		if c == OpJMP || c == OpLDS || c == OpSTS {
			want = 2
		}
		if SpecOf(c).Words != want {
			t.Fatalf("class %v: words = %d, want %d", c, SpecOf(c).Words, want)
		}
	}
}

func TestGroupDescriptions(t *testing.T) {
	for g := Group1; g <= Group8; g++ {
		if g.Description() == "unclassified" {
			t.Fatalf("group %v lacks a description", g)
		}
		if !strings.HasPrefix(g.String(), "group") {
			t.Fatalf("group string %q", g.String())
		}
	}
	if GroupNone.String() != "none" {
		t.Fatalf("GroupNone string %q", GroupNone.String())
	}
}

func TestGroup1Membership(t *testing.T) {
	want := []Class{OpADD, OpADC, OpSUB, OpSBC, OpAND, OpOR, OpEOR, OpCPSE, OpCP, OpCPC, OpMOV, OpMOVW}
	got := ClassesInGroup(Group1)
	if len(got) != len(want) {
		t.Fatalf("group1 has %d classes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group1[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClassStringIncludesSyntax(t *testing.T) {
	if s := OpADD.String(); s != "ADD Rd, Rr" {
		t.Fatalf("OpADD.String() = %q", s)
	}
	if s := OpSEC.String(); s != "SEC" {
		t.Fatalf("OpSEC.String() = %q", s)
	}
	if s := OpLDXInc.String(); s != "LD Rd, X+" {
		t.Fatalf("OpLDXInc.String() = %q", s)
	}
}

func TestClassifiedPredicate(t *testing.T) {
	for _, c := range AllClasses() {
		if !c.Classified() {
			t.Fatalf("class %v should be classified", c)
		}
	}
	if OpNOP.Classified() {
		t.Fatal("NOP should not be classified")
	}
}

func TestValidateTypedSentinels(t *testing.T) {
	if err := (Instruction{Class: Class(250)}).Validate(); !errors.Is(err, ErrBadClass) {
		t.Fatalf("invalid class err = %v, want ErrBadClass", err)
	}
	bad := []Instruction{
		{Class: OpADD, Rd: 40},         // register out of range
		{Class: OpLDI, Rd: 3},          // LDI needs r16..r31
		{Class: OpADIW, Rd: 25},        // pair register must be even
		{Class: OpRJMP, Off: 5000},     // offset out of range
		{Class: OpLDDY, Rd: 1, Q: 99},  // displacement exceeds 6 bits
		{Class: OpSBI, Addr: 40, B: 1}, // I/O address exceeds 5 bits
		{Class: OpBRBS, S: 9},          // SREG bit out of range
	}
	for _, in := range bad {
		if err := in.Validate(); !errors.Is(err, ErrBadOperand) {
			t.Fatalf("Validate(%+v) err = %v, want ErrBadOperand", in, err)
		}
	}
	if !ValidClass(OpADD) || ValidClass(Class(255)) {
		t.Fatal("ValidClass misclassifies")
	}
}
