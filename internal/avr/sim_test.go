package avr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func exec(t *testing.T, m *Machine, src string) Activity {
	t.Helper()
	in, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble %q: %v", src, err)
	}
	act, err := m.Exec(in)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return act
}

func TestAddCarryChain(t *testing.T) {
	m := NewMachine(nil)
	m.R[16] = 0xFF
	m.R[17] = 0x01
	exec(t, m, "ADD r16, r17")
	if m.R[16] != 0x00 {
		t.Fatalf("r16 = %#x, want 0", m.R[16])
	}
	if !m.flag(FlagC) || !m.flag(FlagZ) {
		t.Fatalf("flags: SREG=%08b, want C and Z set", m.SREG)
	}
	// ADC picks up the carry.
	m.R[18] = 0x10
	m.R[19] = 0x20
	exec(t, m, "ADC r18, r19")
	if m.R[18] != 0x31 {
		t.Fatalf("ADC result %#x, want 0x31", m.R[18])
	}
}

func TestSubAndCompareFlags(t *testing.T) {
	m := NewMachine(nil)
	m.R[1] = 5
	m.R[2] = 10
	exec(t, m, "SUB r1, r2")
	if m.R[1] != 0xFB {
		t.Fatalf("r1 = %#x", m.R[1])
	}
	if !m.flag(FlagC) || !m.flag(FlagN) {
		t.Fatalf("SUB borrow flags wrong: SREG=%08b", m.SREG)
	}
	// CP does not modify the register.
	m.R[3] = 7
	m.R[4] = 7
	exec(t, m, "CP r3, r4")
	if m.R[3] != 7 {
		t.Fatal("CP must not write the register")
	}
	if !m.flag(FlagZ) {
		t.Fatal("CP equal should set Z")
	}
}

func TestSBCZeroPropagation(t *testing.T) {
	// 16-bit subtraction via SUB/SBC: Z must only remain set if both bytes
	// are zero.
	m := NewMachine(nil)
	m.R[0], m.R[1] = 0x00, 0x01 // value 0x0100
	m.R[2], m.R[3] = 0x00, 0x01 // value 0x0100
	exec(t, m, "SUB r0, r2")
	exec(t, m, "SBC r1, r3")
	if !m.flag(FlagZ) {
		t.Fatal("0x0100-0x0100 must leave Z set")
	}
	m.R[0], m.R[1] = 0x01, 0x01
	m.R[2], m.R[3] = 0x01, 0x00
	exec(t, m, "SUB r0, r2") // low bytes equal → Z set
	exec(t, m, "SBC r1, r3") // high result 1 → Z must clear
	if m.flag(FlagZ) {
		t.Fatal("nonzero 16-bit result must clear Z")
	}
}

func TestLogicOps(t *testing.T) {
	m := NewMachine(nil)
	m.R[16], m.R[17] = 0b1100, 0b1010
	exec(t, m, "AND r16, r17")
	if m.R[16] != 0b1000 {
		t.Fatalf("AND = %#b", m.R[16])
	}
	m.R[16], m.R[17] = 0b1100, 0b1010
	exec(t, m, "OR r16, r17")
	if m.R[16] != 0b1110 {
		t.Fatalf("OR = %#b", m.R[16])
	}
	m.R[16], m.R[17] = 0b1100, 0b1010
	exec(t, m, "EOR r16, r17")
	if m.R[16] != 0b0110 {
		t.Fatalf("EOR = %#b", m.R[16])
	}
	if m.flag(FlagV) {
		t.Fatal("logic ops must clear V")
	}
	exec(t, m, "CLR r16")
	if m.R[16] != 0 || !m.flag(FlagZ) {
		t.Fatal("CLR failed")
	}
	m.R[20] = 0x81
	exec(t, m, "TST r20")
	if m.R[20] != 0x81 {
		t.Fatal("TST must not modify register")
	}
	if !m.flag(FlagN) || m.flag(FlagZ) {
		t.Fatalf("TST flags wrong: SREG=%08b", m.SREG)
	}
}

func TestImmediateOps(t *testing.T) {
	m := NewMachine(nil)
	exec(t, m, "LDI r16, 0x5A")
	if m.R[16] != 0x5A {
		t.Fatal("LDI failed")
	}
	exec(t, m, "SUBI r16, 0x0A")
	if m.R[16] != 0x50 {
		t.Fatalf("SUBI = %#x", m.R[16])
	}
	exec(t, m, "ANDI r16, 0xF0")
	if m.R[16] != 0x50 {
		t.Fatalf("ANDI = %#x", m.R[16])
	}
	exec(t, m, "ORI r16, 0x05")
	if m.R[16] != 0x55 {
		t.Fatalf("ORI = %#x", m.R[16])
	}
	exec(t, m, "CBR r16, 0x0F")
	if m.R[16] != 0x50 {
		t.Fatalf("CBR = %#x", m.R[16])
	}
	exec(t, m, "CPI r16, 0x50")
	if !m.flag(FlagZ) || m.R[16] != 0x50 {
		t.Fatal("CPI failed")
	}
	exec(t, m, "SER r17")
	if m.R[17] != 0xFF {
		t.Fatal("SER failed")
	}
}

func TestADIWSBIW(t *testing.T) {
	m := NewMachine(nil)
	m.R[24], m.R[25] = 0xFF, 0x00 // word 0x00FF
	exec(t, m, "ADIW r24, 1")
	if m.R[24] != 0x00 || m.R[25] != 0x01 {
		t.Fatalf("ADIW: r25:r24 = %02x%02x, want 0100", m.R[25], m.R[24])
	}
	exec(t, m, "SBIW r24, 0x20")
	if m.R[24] != 0xE0 || m.R[25] != 0x00 {
		t.Fatalf("SBIW: r25:r24 = %02x%02x, want 00E0", m.R[25], m.R[24])
	}
	// Carry on 16-bit overflow.
	m.R[26], m.R[27] = 0xFF, 0xFF
	exec(t, m, "ADIW r26, 1")
	if !m.flag(FlagC) || m.R[26] != 0 || m.R[27] != 0 {
		t.Fatalf("ADIW overflow: C=%v r27:r26=%02x%02x", m.flag(FlagC), m.R[27], m.R[26])
	}
}

func TestShiftsAndRotates(t *testing.T) {
	m := NewMachine(nil)
	m.R[5] = 0x81
	exec(t, m, "LSR r5")
	if m.R[5] != 0x40 || !m.flag(FlagC) {
		t.Fatalf("LSR: r5=%#x C=%v", m.R[5], m.flag(FlagC))
	}
	exec(t, m, "ROR r5") // carry rotates into bit 7
	if m.R[5] != 0xA0 {
		t.Fatalf("ROR: r5=%#x, want 0xA0", m.R[5])
	}
	m.R[6] = 0x80
	exec(t, m, "ASR r6")
	if m.R[6] != 0xC0 {
		t.Fatalf("ASR: r6=%#x, want 0xC0 (sign extend)", m.R[6])
	}
	m.R[7] = 0x01
	exec(t, m, "LSL r7")
	if m.R[7] != 0x02 {
		t.Fatalf("LSL: r7=%#x", m.R[7])
	}
	m.SREG = 0
	m.R[8] = 0x80
	exec(t, m, "ROL r8") // 0x80<<1 = 0x00 with carry out
	if m.R[8] != 0x00 || !m.flag(FlagC) {
		t.Fatalf("ROL: r8=%#x C=%v", m.R[8], m.flag(FlagC))
	}
	m.R[9] = 0xAB
	exec(t, m, "SWAP r9")
	if m.R[9] != 0xBA {
		t.Fatalf("SWAP: r9=%#x", m.R[9])
	}
}

func TestIncDecComNeg(t *testing.T) {
	m := NewMachine(nil)
	m.R[1] = 0x7F
	exec(t, m, "INC r1")
	if m.R[1] != 0x80 || !m.flag(FlagV) {
		t.Fatalf("INC overflow: r1=%#x V=%v", m.R[1], m.flag(FlagV))
	}
	m.R[2] = 0x80
	exec(t, m, "DEC r2")
	if m.R[2] != 0x7F || !m.flag(FlagV) {
		t.Fatalf("DEC overflow: r2=%#x V=%v", m.R[2], m.flag(FlagV))
	}
	m.R[3] = 0x0F
	exec(t, m, "COM r3")
	if m.R[3] != 0xF0 || !m.flag(FlagC) {
		t.Fatalf("COM: r3=%#x C=%v", m.R[3], m.flag(FlagC))
	}
	m.R[4] = 0x01
	exec(t, m, "NEG r4")
	if m.R[4] != 0xFF || !m.flag(FlagC) || !m.flag(FlagN) {
		t.Fatalf("NEG: r4=%#x SREG=%08b", m.R[4], m.SREG)
	}
}

func TestMovAndMovw(t *testing.T) {
	m := NewMachine(nil)
	m.R[10] = 0x42
	exec(t, m, "MOV r11, r10")
	if m.R[11] != 0x42 {
		t.Fatal("MOV failed")
	}
	m.R[4], m.R[5] = 0xCD, 0xAB
	exec(t, m, "MOVW r2, r4")
	if m.R[2] != 0xCD || m.R[3] != 0xAB {
		t.Fatalf("MOVW: r3:r2 = %02x%02x", m.R[3], m.R[2])
	}
}

func TestLoadStoreModes(t *testing.T) {
	m := NewMachine(nil)
	m.SRAM[0x100] = 0x99
	exec(t, m, "LDS r4, 0x0100")
	if m.R[4] != 0x99 {
		t.Fatal("LDS failed")
	}
	m.R[9] = 0x77
	exec(t, m, "STS 0x0180, r9")
	if m.SRAM[0x180] != 0x77 {
		t.Fatal("STS failed")
	}
	// X post-increment.
	m.setPtr(RegXL, 0x0200)
	m.SRAM[0x200] = 0x11
	m.SRAM[0x201] = 0x22
	exec(t, m, "LD r5, X+")
	exec(t, m, "LD r6, X+")
	if m.R[5] != 0x11 || m.R[6] != 0x22 {
		t.Fatalf("LD X+: r5=%#x r6=%#x", m.R[5], m.R[6])
	}
	if m.ptr(RegXL) != 0x0202 {
		t.Fatalf("X = %#x, want 0x0202", m.ptr(RegXL))
	}
	// Y pre-decrement.
	m.setPtr(RegYL, 0x0202)
	m.R[7] = 0x33
	exec(t, m, "ST -Y, r7")
	if m.SRAM[0x201] != 0x33 || m.ptr(RegYL) != 0x0201 {
		t.Fatalf("ST -Y: mem=%#x Y=%#x", m.SRAM[0x201], m.ptr(RegYL))
	}
	// Z displacement.
	m.setPtr(RegZL, 0x0300)
	m.SRAM[0x30A] = 0x5C
	exec(t, m, "LDD r8, Z+10")
	if m.R[8] != 0x5C {
		t.Fatal("LDD Z+q failed")
	}
	if m.ptr(RegZL) != 0x0300 {
		t.Fatal("LDD must not move Z")
	}
	m.R[10] = 0xEE
	exec(t, m, "STD Y+2, r10")
	if m.SRAM[0x203] != 0xEE {
		t.Fatal("STD Y+q failed")
	}
}

func TestLPM(t *testing.T) {
	m := NewMachine([]uint16{0x3412, 0x7856})
	m.setPtr(RegZL, 0)
	exec(t, m, "LPM") // implied R0 ← low byte of word 0
	if m.R[0] != 0x12 {
		t.Fatalf("LPM implied: r0=%#x", m.R[0])
	}
	m.setPtr(RegZL, 1)
	exec(t, m, "LPM r5, Z+")
	if m.R[5] != 0x34 {
		t.Fatalf("LPM r5, Z+: %#x, want high byte 0x34", m.R[5])
	}
	if m.ptr(RegZL) != 2 {
		t.Fatal("LPM Z+ must increment Z")
	}
	exec(t, m, "ELPM r6, Z")
	if m.R[6] != 0x56 {
		t.Fatalf("ELPM: %#x", m.R[6])
	}
}

func TestFlagOpsAndBitOps(t *testing.T) {
	m := NewMachine(nil)
	exec(t, m, "SEC")
	if !m.flag(FlagC) {
		t.Fatal("SEC failed")
	}
	exec(t, m, "CLC")
	if m.flag(FlagC) {
		t.Fatal("CLC failed")
	}
	exec(t, m, "SEH")
	if !m.flag(FlagH) {
		t.Fatal("SEH failed")
	}
	exec(t, m, "BSET 3")
	if !m.flag(FlagV) {
		t.Fatal("BSET 3 should set V")
	}
	exec(t, m, "BCLR 3")
	if m.flag(FlagV) {
		t.Fatal("BCLR 3 should clear V")
	}
	// BST/BLD copy through T.
	m.R[4] = 0b0000_0100
	exec(t, m, "BST r4, 2")
	if !m.flag(FlagT) {
		t.Fatal("BST should load T")
	}
	exec(t, m, "BLD r5, 7")
	if m.R[5] != 0x80 {
		t.Fatalf("BLD: r5=%#x", m.R[5])
	}
	// SBI/CBI on I/O space.
	exec(t, m, "SBI 0x05, 5")
	if m.IO[5] != 1<<5 {
		t.Fatal("SBI failed")
	}
	exec(t, m, "CBI 0x05, 5")
	if m.IO[5] != 0 {
		t.Fatal("CBI failed")
	}
}

func TestBranchesAndSkips(t *testing.T) {
	m := NewMachine(nil)
	m.setFlag(FlagZ, true)
	if act := exec(t, m, "BREQ +4"); !act.Taken {
		t.Fatal("BREQ with Z set must be taken")
	}
	if act := exec(t, m, "BRNE +4"); act.Taken {
		t.Fatal("BRNE with Z set must not be taken")
	}
	m.setFlag(FlagC, true)
	if act := exec(t, m, "BRCS -2"); !act.Taken {
		t.Fatal("BRCS with C set must be taken")
	}
	if act := exec(t, m, "BRBS 0, +1"); !act.Taken {
		t.Fatal("BRBS 0 with C set must be taken")
	}
	if act := exec(t, m, "BRBC 0, +1"); act.Taken {
		t.Fatal("BRBC 0 with C set must not be taken")
	}
	// Skips.
	m.R[1], m.R[2] = 7, 7
	if act := exec(t, m, "CPSE r1, r2"); !act.Taken || act.Skip != 1 {
		t.Fatal("CPSE equal must skip")
	}
	m.R[3] = 0b100
	if act := exec(t, m, "SBRC r3, 2"); act.Taken {
		t.Fatal("SBRC with bit set must not skip")
	}
	if act := exec(t, m, "SBRS r3, 2"); !act.Taken {
		t.Fatal("SBRS with bit set must skip")
	}
	m.IO[5] = 0
	if act := exec(t, m, "SBIC 0x05, 1"); !act.Taken {
		t.Fatal("SBIC with bit clear must skip")
	}
	if act := exec(t, m, "SBIS 0x05, 1"); act.Taken {
		t.Fatal("SBIS with bit clear must not skip")
	}
}

func TestStepSequencesProgram(t *testing.T) {
	prog, err := AssembleProgram(`
		LDI r16, 3
		LDI r17, 0
		; loop: add r17 += r16, dec r16, until zero
		ADD r17, r16
		DEC r16
		BRNE -3
		NOP
	`)
	if err != nil {
		t.Fatal(err)
	}
	var words []uint16
	for _, in := range prog {
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	m := NewMachine(words)
	for i := 0; i < 30; i++ {
		if _, _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if m.PC == uint32(len(words)-1) && m.R[16] == 0 {
			break
		}
	}
	// 3+2+1 = 6.
	if m.R[17] != 6 {
		t.Fatalf("loop sum r17 = %d, want 6", m.R[17])
	}
}

func TestStepSkipsTwoWordInstruction(t *testing.T) {
	prog := []Instruction{
		{Class: OpLDI, Rd: 16, K: 1},
		{Class: OpLDI, Rd: 17, K: 1},
		{Class: OpCPSE, Rd: 16, Rr: 17}, // equal → skip the LDS (2 words)
		{Class: OpLDS, Rd: 18, Addr: 0x0100},
		{Class: OpLDI, Rd: 19, K: 0xAA},
		{Class: OpNOP},
	}
	var words []uint16
	for _, in := range prog {
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	m := NewMachine(words)
	m.SRAM[0x100] = 0xFF
	for i := 0; i < 4; i++ {
		if _, _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.R[18] == 0xFF {
		t.Fatal("CPSE failed to skip the 2-word LDS")
	}
	if m.R[19] != 0xAA {
		t.Fatalf("instruction after skip not executed: r19=%#x", m.R[19])
	}
}

func TestExecRejectsInvalid(t *testing.T) {
	m := NewMachine(nil)
	if _, err := m.Exec(Instruction{Class: OpLDI, Rd: 3}); err == nil {
		t.Fatal("Exec must validate operands")
	}
	if _, _, err := m.Step(); err == nil {
		t.Fatal("Step with empty flash must fail")
	}
}

func TestHammingHelpers(t *testing.T) {
	if HammingWeight8(0xFF) != 8 || HammingWeight8(0) != 0 || HammingWeight8(0b1010) != 2 {
		t.Fatal("HammingWeight8 wrong")
	}
	if HammingDistance8(0xFF, 0x0F) != 4 || HammingDistance8(3, 3) != 0 {
		t.Fatal("HammingDistance8 wrong")
	}
}

func TestExecAllClassesNoError(t *testing.T) {
	// Property: every randomly generated valid instruction executes without
	// error and produces a sane activity record.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMachine([]uint16{0x1234, 0x5678})
		for _, c := range AllClasses() {
			in := RandomOperands(rng, c)
			act, err := m.Exec(in)
			if err != nil {
				return false
			}
			if act.Class != c || act.Cycles < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOperandsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range append(AllClasses(), OpNOP) {
			if err := RandomOperands(rng, c).Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTemplateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := Instruction{Class: OpADD, Rd: 1, Rr: 2}
	seg := NewSegment(rng, target)
	insts := seg.Instructions()
	if len(insts) != 7 {
		t.Fatalf("segment has %d instructions, want 7", len(insts))
	}
	if insts[0].Class != OpSBI || insts[6].Class != OpCBI {
		t.Fatal("segment must be bracketed by SBI/CBI triggers")
	}
	if insts[1].Class != OpNOP || insts[5].Class != OpNOP {
		t.Fatal("segment needs NOP padding")
	}
	if insts[3] != target {
		t.Fatal("target must sit at slot 3")
	}
	// Neighbors must never be control flow.
	for _, n := range []Instruction{insts[2], insts[4]} {
		if n.Class.Group() == Group4 {
			t.Fatalf("neighbor %v is a branch", n)
		}
	}
}

func TestReferenceSequence(t *testing.T) {
	ref := ReferenceSequence()
	if len(ref) != 7 {
		t.Fatalf("reference length %d, want 7 (SBI + 5 NOP + CBI)", len(ref))
	}
	for i := 1; i <= 5; i++ {
		if ref[i].Class != OpNOP {
			t.Fatalf("reference slot %d is %v, want NOP", i, ref[i].Class)
		}
	}
}

func TestProgramFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pf := NewProgramFile(rng, 3, OpADC, 50)
	if pf.ID != 3 || len(pf.Segments) != 50 {
		t.Fatalf("program file %d with %d segments", pf.ID, len(pf.Segments))
	}
	for _, s := range pf.Segments {
		if s.Target.Class != OpADC {
			t.Fatalf("segment target %v, want ADC", s.Target.Class)
		}
	}
	rf := NewRegisterProgramFile(rng, 0, 13, true, 40)
	for _, s := range rf.Segments {
		if s.Target.Rd != 13 {
			t.Fatalf("register file target Rd=%d, want 13", s.Target.Rd)
		}
		if s.Target.Class.Group() != Group1 {
			t.Fatalf("register profiling must use group 1, got %v", s.Target.Class)
		}
	}
	rf2 := NewRegisterProgramFile(rng, 0, 29, false, 40)
	for _, s := range rf2.Segments {
		if s.Target.Rr != 29 {
			t.Fatalf("register file target Rr=%d, want 29", s.Target.Rr)
		}
	}
}
