package avr

import (
	"math/rand"
	"testing"
)

// knownEncodings are hand-checked against the AVR instruction set manual.
var knownEncodings = []struct {
	in   Instruction
	want []uint16
}{
	{Instruction{Class: OpNOP}, []uint16{0x0000}},
	{Instruction{Class: OpADD, Rd: 16, Rr: 17}, []uint16{0x0F01}},
	{Instruction{Class: OpADC, Rd: 0, Rr: 31}, []uint16{0x1E0F}},
	{Instruction{Class: OpSUB, Rd: 5, Rr: 5}, []uint16{0x1855}},
	{Instruction{Class: OpEOR, Rd: 16, Rr: 17}, []uint16{0x2701}},
	{Instruction{Class: OpMOV, Rd: 1, Rr: 2}, []uint16{0x2C12}},
	{Instruction{Class: OpMOVW, Rd: 2, Rr: 4}, []uint16{0x0112}},
	{Instruction{Class: OpLDI, Rd: 16, K: 0xFF}, []uint16{0xEF0F}},
	{Instruction{Class: OpLDI, Rd: 31, K: 0x42}, []uint16{0xE4F2}},
	{Instruction{Class: OpSUBI, Rd: 20, K: 0x10}, []uint16{0x5140}},
	{Instruction{Class: OpANDI, Rd: 16, K: 0x0F}, []uint16{0x700F}},
	{Instruction{Class: OpADIW, Rd: 24, K: 1}, []uint16{0x9601}},
	{Instruction{Class: OpADIW, Rd: 30, K: 63}, []uint16{0x96FF}},
	{Instruction{Class: OpSBIW, Rd: 26, K: 16}, []uint16{0x9750}},
	{Instruction{Class: OpCOM, Rd: 7}, []uint16{0x9470}},
	{Instruction{Class: OpNEG, Rd: 31}, []uint16{0x95F1}},
	{Instruction{Class: OpINC, Rd: 0}, []uint16{0x9403}},
	{Instruction{Class: OpDEC, Rd: 17}, []uint16{0x951A}},
	{Instruction{Class: OpLSR, Rd: 3}, []uint16{0x9436}},
	{Instruction{Class: OpSWAP, Rd: 12}, []uint16{0x94C2}},
	{Instruction{Class: OpRJMP, Off: -1}, []uint16{0xCFFF}},
	{Instruction{Class: OpRJMP, Off: 5}, []uint16{0xC005}},
	{Instruction{Class: OpJMP, Addr: 0x0123}, []uint16{0x940C, 0x0123}},
	{Instruction{Class: OpBREQ, Off: 3}, []uint16{0xF019}},
	{Instruction{Class: OpBRNE, Off: -2}, []uint16{0xF7F1}},
	{Instruction{Class: OpBRCS, Off: 0}, []uint16{0xF000}},
	{Instruction{Class: OpLDS, Rd: 4, Addr: 0x0100}, []uint16{0x9040, 0x0100}},
	{Instruction{Class: OpSTS, Rr: 9, Addr: 0x0200}, []uint16{0x9290, 0x0200}},
	{Instruction{Class: OpLDX, Rd: 6}, []uint16{0x906C}},
	{Instruction{Class: OpLDXInc, Rd: 6}, []uint16{0x906D}},
	{Instruction{Class: OpLDYDec, Rd: 1}, []uint16{0x901A}},
	{Instruction{Class: OpLDZ, Rd: 2}, []uint16{0x8020}},
	{Instruction{Class: OpLDY, Rd: 2}, []uint16{0x8028}},
	{Instruction{Class: OpLDDY, Rd: 3, Q: 5}, []uint16{0x803D}},
	{Instruction{Class: OpLDDZ, Rd: 3, Q: 33}, []uint16{0xA031}},
	{Instruction{Class: OpSTX, Rr: 20}, []uint16{0x934C}},
	{Instruction{Class: OpSTZInc, Rr: 8}, []uint16{0x9281}},
	{Instruction{Class: OpSTDY, Rr: 2, Q: 1}, []uint16{0x8229}},
	{Instruction{Class: OpSEC}, []uint16{0x9408}},
	{Instruction{Class: OpSEI}, []uint16{0x9478}},
	{Instruction{Class: OpCLC}, []uint16{0x9488}},
	{Instruction{Class: OpCLT}, []uint16{0x94E8}},
	{Instruction{Class: OpSBRC, Rr: 10, B: 3}, []uint16{0xFCA3}},
	{Instruction{Class: OpSBRS, Rr: 31, B: 7}, []uint16{0xFFF7}},
	{Instruction{Class: OpSBI, Addr: 0x05, B: 5}, []uint16{0x9A2D}},
	{Instruction{Class: OpCBI, Addr: 0x05, B: 5}, []uint16{0x982D}},
	{Instruction{Class: OpSBIC, Addr: 0x1F, B: 0}, []uint16{0x99F8}},
	{Instruction{Class: OpBST, Rd: 4, B: 2}, []uint16{0xFA42}},
	{Instruction{Class: OpBLD, Rd: 4, B: 2}, []uint16{0xF842}},
	{Instruction{Class: OpLPM0}, []uint16{0x95C8}},
	{Instruction{Class: OpLPM, Rd: 5}, []uint16{0x9054}},
	{Instruction{Class: OpLPMInc, Rd: 5}, []uint16{0x9055}},
	{Instruction{Class: OpELPM0}, []uint16{0x95D8}},
}

func TestKnownEncodings(t *testing.T) {
	for _, tc := range knownEncodings {
		got, err := tc.in.Encode()
		if err != nil {
			t.Fatalf("%v: %v", tc.in, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%v: encoded %d words, want %d", tc.in, len(got), len(tc.want))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%v: word %d = 0x%04X, want 0x%04X", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestKnownDecodings(t *testing.T) {
	for _, tc := range knownEncodings {
		dec, n, err := Decode(tc.want)
		if err != nil {
			t.Fatalf("decode %v: %v", tc.want, err)
		}
		if n != len(tc.want) {
			t.Fatalf("decode %v consumed %d words, want %d", tc.want, n, len(tc.want))
		}
		want := Canonical(tc.in)
		if dec != want {
			t.Fatalf("decode %04X = %+v, want %+v", tc.want, dec, want)
		}
	}
}

func TestEncodeDecodeRoundTripAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	classes := append(AllClasses(), OpNOP)
	for _, c := range classes {
		for trial := 0; trial < 50; trial++ {
			in := RandomOperands(rng, c)
			words, err := in.Encode()
			if err != nil {
				t.Fatalf("%v: encode: %v", in, err)
			}
			dec, n, err := Decode(words)
			if err != nil {
				t.Fatalf("%v (words %04X): decode: %v", in, words, err)
			}
			if n != len(words) {
				t.Fatalf("%v: decode consumed %d of %d words", in, n, len(words))
			}
			want := Canonical(in)
			if dec != want {
				t.Fatalf("round trip %v → %04X → %+v, want %+v", in, words, dec, want)
			}
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, w := range []uint16{0x940C /* JMP */, 0x9040 /* LDS */, 0x9290 /* STS */} {
		if _, _, err := Decode([]uint16{w}); err == nil {
			t.Fatalf("decode of truncated 0x%04X should fail", w)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("decode of empty stream should fail")
	}
}

func TestDecodeUnknownWord(t *testing.T) {
	// 0x9509 (ICALL region) is not in our modeled subset.
	if _, _, err := Decode([]uint16{0xFF0F}); err == nil {
		t.Fatal("expected decode error for unmodeled opcode")
	}
}

func TestValidateRejectsBadOperands(t *testing.T) {
	bad := []Instruction{
		{Class: OpLDI, Rd: 5, K: 1},     // LDI needs r16–r31
		{Class: OpADIW, Rd: 25, K: 1},   // ADIW needs even pair ≥24
		{Class: OpADIW, Rd: 24, K: 64},  // 6-bit immediate
		{Class: OpMOVW, Rd: 3, Rr: 2},   // odd Rd
		{Class: OpMOVW, Rd: 2, Rr: 3},   // odd Rr
		{Class: OpBREQ, Off: 100},       // ±64 branch range
		{Class: OpRJMP, Off: 3000},      // ±2048 rjmp range
		{Class: OpSBI, Addr: 40, B: 1},  // 5-bit I/O address
		{Class: OpSBI, Addr: 3, B: 9},   // bit index
		{Class: OpBSET, S: 8},           // SREG bit
		{Class: OpLDDY, Rd: 1, Q: 70},   // 6-bit displacement
		{Class: OpSER, Rd: 2},           // SER needs r16–r31
		{Class: OpSBRC, Rr: 40, B: 1},   // register range
		{Class: Class(200)},             // invalid class
		{Class: OpBRBS, S: 3, Off: -80}, // branch offset
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("Validate(%+v) should fail", in)
		}
		if _, err := in.Encode(); err == nil {
			t.Fatalf("Encode(%+v) should fail", in)
		}
	}
}

func TestCanonicalAliases(t *testing.T) {
	cases := []struct{ in, want Instruction }{
		{Instruction{Class: OpTST, Rd: 9}, Instruction{Class: OpAND, Rd: 9, Rr: 9}},
		{Instruction{Class: OpCLR, Rd: 9}, Instruction{Class: OpEOR, Rd: 9, Rr: 9}},
		{Instruction{Class: OpLSL, Rd: 9}, Instruction{Class: OpADD, Rd: 9, Rr: 9}},
		{Instruction{Class: OpROL, Rd: 9}, Instruction{Class: OpADC, Rd: 9, Rr: 9}},
		{Instruction{Class: OpSER, Rd: 20}, Instruction{Class: OpLDI, Rd: 20, K: 0xFF}},
		{Instruction{Class: OpSBR, Rd: 20, K: 3}, Instruction{Class: OpORI, Rd: 20, K: 3}},
		{Instruction{Class: OpCBR, Rd: 20, K: 0x0F}, Instruction{Class: OpANDI, Rd: 20, K: 0xF0}},
		{Instruction{Class: OpBRLO, Off: 4}, Instruction{Class: OpBRCS, Off: 4}},
		{Instruction{Class: OpBRSH, Off: 4}, Instruction{Class: OpBRCC, Off: 4}},
		{Instruction{Class: OpBRBS, S: 1, Off: 2}, Instruction{Class: OpBREQ, S: 1, Off: 2}},
		{Instruction{Class: OpBRBC, S: 7, Off: 2}, Instruction{Class: OpBRID, S: 7, Off: 2}},
		{Instruction{Class: OpBSET, S: 0}, Instruction{Class: OpSEC, S: 0}},
		{Instruction{Class: OpBCLR, S: 6}, Instruction{Class: OpCLT, S: 6}},
		{Instruction{Class: OpLDDY, Rd: 2, Q: 0}, Instruction{Class: OpLDY, Rd: 2}},
		{Instruction{Class: OpSTDZ, Rr: 2, Q: 0}, Instruction{Class: OpSTZ, Rr: 2}},
	}
	for _, tc := range cases {
		if got := Canonical(tc.in); got != tc.want {
			t.Fatalf("Canonical(%+v) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestDecodeProgram(t *testing.T) {
	prog := []Instruction{
		{Class: OpLDI, Rd: 16, K: 0xAA},
		{Class: OpLDS, Rd: 17, Addr: 0x0123},
		{Class: OpADD, Rd: 16, Rr: 17},
		{Class: OpNOP},
	}
	var words []uint16
	for _, in := range prog {
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	dec, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(dec), len(prog))
	}
	for i := range prog {
		if dec[i] != Canonical(prog[i]) {
			t.Fatalf("program[%d] = %+v, want %+v", i, dec[i], Canonical(prog[i]))
		}
	}
}
