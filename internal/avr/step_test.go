package avr

import "testing"

func mustWords(t *testing.T, prog []Instruction) []uint16 {
	t.Helper()
	var words []uint16
	for _, in := range prog {
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	return words
}

func TestStepRJMPTarget(t *testing.T) {
	// 0: RJMP +2 ; 1: LDI r16,1 (skipped) ; 2: LDI r17,2 (skipped) ; 3: LDI r18,3
	prog := []Instruction{
		{Class: OpRJMP, Off: 2},
		{Class: OpLDI, Rd: 16, K: 1},
		{Class: OpLDI, Rd: 17, K: 2},
		{Class: OpLDI, Rd: 18, K: 3},
	}
	m := NewMachine(mustWords(t, prog))
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC != 3 {
		t.Fatalf("PC = %d after RJMP +2, want 3", m.PC)
	}
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.R[18] != 3 || m.R[16] != 0 || m.R[17] != 0 {
		t.Fatalf("jump target executed wrong instruction: r16=%d r17=%d r18=%d", m.R[16], m.R[17], m.R[18])
	}
}

func TestStepJMPAbsolute(t *testing.T) {
	prog := []Instruction{
		{Class: OpJMP, Addr: 3},         // words 0-1
		{Class: OpLDI, Rd: 16, K: 0xEE}, // word 2 (skipped)
		{Class: OpLDI, Rd: 17, K: 0x77}, // word 3 (target)
	}
	m := NewMachine(mustWords(t, prog))
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC != 3 {
		t.Fatalf("PC = %d after JMP 3", m.PC)
	}
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.R[17] != 0x77 || m.R[16] != 0 {
		t.Fatalf("JMP landed wrong: r16=%#x r17=%#x", m.R[16], m.R[17])
	}
}

func TestRunExecutesSequence(t *testing.T) {
	prog := []Instruction{
		{Class: OpLDI, Rd: 16, K: 10},
		{Class: OpLDI, Rd: 17, K: 20},
		{Class: OpADD, Rd: 16, Rr: 17},
		{Class: OpNOP},
	}
	m := NewMachine(mustWords(t, prog))
	executed, err := m.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 4 {
		t.Fatalf("executed %d instructions", len(executed))
	}
	if m.R[16] != 30 {
		t.Fatalf("r16 = %d, want 30", m.R[16])
	}
}

func TestStepBranchNotTakenFallsThrough(t *testing.T) {
	prog := []Instruction{
		{Class: OpBREQ, Off: 2}, // Z clear → not taken
		{Class: OpLDI, Rd: 16, K: 1},
		{Class: OpNOP},
		{Class: OpNOP},
	}
	m := NewMachine(mustWords(t, prog))
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC != 1 {
		t.Fatalf("PC = %d, want fall-through to 1", m.PC)
	}
}
