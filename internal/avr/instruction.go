package avr

import (
	"errors"
	"fmt"
	"strings"
)

// Typed sentinels for instruction validation. Generators and the template
// builder treat a wrapped ErrBadOperand/ErrBadClass as "this candidate is
// malformed" without string matching, and the persistence layer uses
// ValidClass to reject corrupted template files before a bad class value can
// reach SpecOf (which panics on programmer error by design).
var (
	ErrBadClass   = errors.New("avr: invalid instruction class")
	ErrBadOperand = errors.New("avr: operand out of range")
)

// ValidClass reports whether c is a defined instruction class.
func ValidClass(c Class) bool { return int(c) < int(numClasses) }

// Instruction is one concrete AVR instruction: a class plus operand values.
// Unused operand fields are zero.
type Instruction struct {
	Class Class
	Rd    uint8  // destination register (also the single register of group 3)
	Rr    uint8  // source register
	K     uint8  // immediate (8-bit; 6-bit for ADIW/SBIW)
	Off   int16  // signed PC-relative word offset (RJMP ±2048, branches ±64)
	Addr  uint16 // absolute address: data space (LDS/STS), flash (JMP), I/O (A)
	B     uint8  // bit index 0–7
	S     uint8  // SREG bit 0–7
	Q     uint8  // displacement 0–63 (LDD/STD)
}

// Validate checks that every operand is within the encodable range for the
// instruction class.
func (in Instruction) Validate() error {
	if !ValidClass(in.Class) {
		return fmt.Errorf("%w %d", ErrBadClass, in.Class)
	}
	sp := specs[in.Class]
	checkRd := func(r uint8) error {
		if r < sp.RdMin || r > sp.RdMax {
			return fmt.Errorf("%w: %s: register r%d out of range [r%d, r%d]", ErrBadOperand, sp.Name, r, sp.RdMin, sp.RdMax)
		}
		if sp.RdEven && r%2 != 0 {
			return fmt.Errorf("%w: %s: register r%d must be even", ErrBadOperand, sp.Name, r)
		}
		return nil
	}
	switch sp.Operands {
	case OperandRdRr:
		if err := checkRd(in.Rd); err != nil {
			return err
		}
		if in.Rr > 31 {
			return fmt.Errorf("%w: %s: source register r%d out of range", ErrBadOperand, sp.Name, in.Rr)
		}
		if in.Class == OpMOVW && in.Rr%2 != 0 {
			return fmt.Errorf("%w: MOVW: source register r%d must be even", ErrBadOperand, in.Rr)
		}
	case OperandRdK:
		if err := checkRd(in.Rd); err != nil {
			return err
		}
	case OperandRdPairK:
		if err := checkRd(in.Rd); err != nil {
			return err
		}
		if in.K > 63 {
			return fmt.Errorf("%w: %s: immediate %d exceeds 6 bits", ErrBadOperand, sp.Name, in.K)
		}
	case OperandRd:
		if err := checkRd(in.Rd); err != nil {
			return err
		}
	case OperandOff:
		lim := int16(63)
		if in.Class == OpRJMP {
			lim = 2047
		}
		if in.Off < -lim-1 || in.Off > lim {
			return fmt.Errorf("%w: %s: offset %d out of range ±%d", ErrBadOperand, sp.Name, in.Off, lim)
		}
	case OperandAddr:
		// JMP: 22-bit flash word address; we model 16 bits of it.
	case OperandRdAddr, OperandAddrRr:
		if err := checkRd(in.regOperand()); err != nil {
			return err
		}
	case OperandRdPtr, OperandPtrRr, OperandRdZ:
		if err := checkRd(in.regOperand()); err != nil {
			return err
		}
	case OperandRdQ, OperandQRr:
		if err := checkRd(in.regOperand()); err != nil {
			return err
		}
		if in.Q > 63 {
			return fmt.Errorf("%w: %s: displacement %d exceeds 6 bits", ErrBadOperand, sp.Name, in.Q)
		}
	case OperandRrB:
		if err := checkRd(in.regOperand()); err != nil {
			return err
		}
		if in.B > 7 {
			return fmt.Errorf("%w: %s: bit %d out of range", ErrBadOperand, sp.Name, in.B)
		}
	case OperandAB:
		if in.Addr > 31 {
			return fmt.Errorf("%w: %s: I/O address %d exceeds 5 bits", ErrBadOperand, sp.Name, in.Addr)
		}
		if in.B > 7 {
			return fmt.Errorf("%w: %s: bit %d out of range", ErrBadOperand, sp.Name, in.B)
		}
	case OperandSOff:
		if in.S > 7 {
			return fmt.Errorf("%w: %s: SREG bit %d out of range", ErrBadOperand, sp.Name, in.S)
		}
		if in.Off < -64 || in.Off > 63 {
			return fmt.Errorf("%w: %s: offset %d out of range ±64", ErrBadOperand, sp.Name, in.Off)
		}
	case OperandS:
		if in.S > 7 {
			return fmt.Errorf("%w: %s: SREG bit %d out of range", ErrBadOperand, sp.Name, in.S)
		}
	case OperandImplied, OperandNone:
		// nothing to check
	}
	return nil
}

// regOperand returns the register operand regardless of whether the class
// names it Rd (loads) or Rr (stores, bit tests).
func (in Instruction) regOperand() uint8 {
	switch specs[in.Class].Operands {
	case OperandAddrRr, OperandPtrRr, OperandQRr:
		return in.Rr
	case OperandRrB:
		switch in.Class {
		case OpBST, OpBLD:
			return in.Rd
		default:
			return in.Rr
		}
	default:
		return in.Rd
	}
}

// String renders the instruction in assembler syntax, e.g. "ADD r16, r17",
// "LD r4, X+", "BRBS 3, +12".
func (in Instruction) String() string {
	sp := specs[in.Class]
	var b strings.Builder
	b.WriteString(sp.Name)
	switch sp.Operands {
	case OperandRdRr:
		fmt.Fprintf(&b, " r%d, r%d", in.Rd, in.Rr)
	case OperandRdK, OperandRdPairK:
		fmt.Fprintf(&b, " r%d, 0x%02X", in.Rd, in.K)
	case OperandRd:
		fmt.Fprintf(&b, " r%d", in.Rd)
	case OperandOff:
		fmt.Fprintf(&b, " %+d", in.Off)
	case OperandAddr:
		fmt.Fprintf(&b, " 0x%04X", in.Addr)
	case OperandRdAddr:
		fmt.Fprintf(&b, " r%d, 0x%04X", in.Rd, in.Addr)
	case OperandAddrRr:
		fmt.Fprintf(&b, " 0x%04X, r%d", in.Addr, in.Rr)
	case OperandRdPtr, OperandRdZ:
		fmt.Fprintf(&b, " r%d, %s", in.Rd, ptrSyntax(in.Class))
	case OperandPtrRr:
		fmt.Fprintf(&b, " %s, r%d", ptrSyntax(in.Class), in.Rr)
	case OperandRdQ:
		fmt.Fprintf(&b, " r%d, %s+%d", in.Rd, dispBase(in.Class), in.Q)
	case OperandQRr:
		fmt.Fprintf(&b, " %s+%d, r%d", dispBase(in.Class), in.Q, in.Rr)
	case OperandRrB:
		fmt.Fprintf(&b, " r%d, %d", in.regOperand(), in.B)
	case OperandAB:
		fmt.Fprintf(&b, " 0x%02X, %d", in.Addr, in.B)
	case OperandSOff:
		fmt.Fprintf(&b, " %d, %+d", in.S, in.Off)
	case OperandS:
		fmt.Fprintf(&b, " %d", in.S)
	}
	return b.String()
}

// PointerToken returns the pointer operand text ("X+", "-Y", "Z", …) for
// LD/ST/LPM addressing-mode variants, or "?" for other classes.
func PointerToken(c Class) string { return ptrSyntax(c) }

// ptrSyntax returns the pointer operand text for LD/ST/LPM variants.
func ptrSyntax(c Class) string {
	switch c {
	case OpLDX, OpSTX:
		return "X"
	case OpLDXInc, OpSTXInc:
		return "X+"
	case OpLDXDec, OpSTXDec:
		return "-X"
	case OpLDY, OpSTY:
		return "Y"
	case OpLDYInc, OpSTYInc:
		return "Y+"
	case OpLDYDec, OpSTYDec:
		return "-Y"
	case OpLDZ, OpSTZ, OpLPM, OpELPM:
		return "Z"
	case OpLDZInc, OpSTZInc, OpLPMInc, OpELPMInc:
		return "Z+"
	case OpLDZDec, OpSTZDec:
		return "-Z"
	}
	return "?"
}

func dispBase(c Class) string {
	switch c {
	case OpLDDY, OpSTDY:
		return "Y"
	case OpLDDZ, OpSTDZ:
		return "Z"
	}
	return "?"
}
