package avr

import (
	"fmt"
	"math/bits"
)

// SREG flag bit positions.
const (
	FlagC = 0 // carry
	FlagZ = 1 // zero
	FlagN = 2 // negative
	FlagV = 3 // two's-complement overflow
	FlagS = 4 // sign (N xor V)
	FlagH = 5 // half carry
	FlagT = 6 // bit copy storage
	FlagI = 7 // global interrupt enable
)

// Pointer register pairs.
const (
	RegXL, RegXH = 26, 27
	RegYL, RegYH = 28, 29
	RegZL, RegZH = 30, 31
)

// DefaultSRAMSize matches the ATMega328P's 2 KiB of internal SRAM.
const DefaultSRAMSize = 2048

// Machine is a functional model of the AVR core: 32 GP registers, SREG,
// 64 I/O registers, SRAM, and flash (as 16-bit words). It executes the 112
// profiled instruction classes plus NOP with architecturally correct
// register, memory and flag semantics.
type Machine struct {
	R     [32]uint8
	SREG  uint8
	PC    uint32 // word address into Flash
	SRAM  []uint8
	IO    [64]uint8
	Flash []uint16
}

// NewMachine returns a machine with DefaultSRAMSize bytes of SRAM and the
// given flash image (may be nil for machines that only Exec directly).
func NewMachine(flash []uint16) *Machine {
	return &Machine{SRAM: make([]uint8, DefaultSRAMSize), Flash: flash}
}

// Activity summarizes the micro-architectural switching activity of one
// executed instruction — the quantities the power model leaks.
type Activity struct {
	Class    Class
	RdAddr   uint8 // destination register address driven on the register file
	RrAddr   uint8 // source register address
	OldValue uint8 // destination value before execution
	NewValue uint8 // destination value after execution (result bus)
	Operand  uint8 // second ALU operand (Rr value or immediate)
	MemAddr  uint16
	MemRead  bool
	MemWrite bool
	Branch   bool // branch/skip class
	Taken    bool // branch taken or skip triggered
	Skip     int  // words skipped by CPSE/SBRC/…
	Cycles   int
}

// HammingWeight8 is the number of set bits in v.
func HammingWeight8(v uint8) int { return bits.OnesCount8(v) }

// HammingDistance8 is the number of differing bits between a and b — the
// canonical CMOS switching-power proxy.
func HammingDistance8(a, b uint8) int { return bits.OnesCount8(a ^ b) }

func (m *Machine) flag(f uint) bool { return m.SREG&(1<<f) != 0 }
func (m *Machine) setFlag(f uint, v bool) {
	if v {
		m.SREG |= 1 << f
	} else {
		m.SREG &^= 1 << f
	}
}

func (m *Machine) ptr(lo uint8) uint16 {
	return uint16(m.R[lo]) | uint16(m.R[lo+1])<<8
}

func (m *Machine) setPtr(lo uint8, v uint16) {
	m.R[lo] = uint8(v)
	m.R[lo+1] = uint8(v >> 8)
}

func (m *Machine) sramRead(addr uint16) uint8 {
	if len(m.SRAM) == 0 {
		return 0
	}
	return m.SRAM[int(addr)%len(m.SRAM)]
}

func (m *Machine) sramWrite(addr uint16, v uint8) {
	if len(m.SRAM) == 0 {
		return
	}
	m.SRAM[int(addr)%len(m.SRAM)] = v
}

func (m *Machine) flashByte(byteAddr uint16) uint8 {
	if len(m.Flash) == 0 {
		return 0
	}
	w := m.Flash[int(byteAddr/2)%len(m.Flash)]
	if byteAddr%2 == 1 {
		return uint8(w >> 8)
	}
	return uint8(w)
}

// arithmetic flag helpers ----------------------------------------------------

func (m *Machine) setZNS(r uint8) {
	m.setFlag(FlagZ, r == 0)
	m.setFlag(FlagN, r&0x80 != 0)
	m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
}

func (m *Machine) addFlags(rd, rr, r uint8) {
	m.setFlag(FlagH, (rd&rr|rr&^r|^r&rd)&0x08 != 0)
	m.setFlag(FlagV, (rd&rr&^r|^rd&^rr&r)&0x80 != 0)
	m.setFlag(FlagC, (rd&rr|rr&^r|^r&rd)&0x80 != 0)
	m.setZNS(r)
}

func (m *Machine) subFlags(rd, rr, r uint8, keepZ bool) {
	m.setFlag(FlagH, (^rd&rr|rr&r|r&^rd)&0x08 != 0)
	m.setFlag(FlagV, (rd&^rr&^r|^rd&rr&r)&0x80 != 0)
	m.setFlag(FlagC, (^rd&rr|rr&r|r&^rd)&0x80 != 0)
	z := r == 0
	if keepZ {
		z = z && m.flag(FlagZ) // SBC/CPC: Z only stays set if it was set
	}
	m.setFlag(FlagN, r&0x80 != 0)
	m.setFlag(FlagZ, z)
	m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
}

func (m *Machine) logicFlags(r uint8) {
	m.setFlag(FlagV, false)
	m.setZNS(r)
}

// Exec executes a single instruction against the machine state, without
// consulting PC/flash (branches report Taken but do not move PC). It returns
// the activity record the power model consumes. Use Step for full
// PC-sequenced execution.
func (m *Machine) Exec(in Instruction) (Activity, error) {
	if err := in.Validate(); err != nil {
		return Activity{}, err
	}
	act := Activity{
		Class:  in.Class,
		RdAddr: in.Rd,
		RrAddr: in.Rr,
		Cycles: specs[in.Class].Cycles,
	}
	setRd := func(old, val uint8) {
		act.OldValue = old
		act.NewValue = val
	}

	switch in.Class {
	case OpADD, OpLSL:
		rd, rr := m.R[in.Rd], m.R[in.rrOrSelf()]
		r := rd + rr
		m.addFlags(rd, rr, r)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpADC, OpROL:
		rd, rr := m.R[in.Rd], m.R[in.rrOrSelf()]
		c := uint8(0)
		if m.flag(FlagC) {
			c = 1
		}
		r := rd + rr + c
		m.addFlags(rd, rr, r)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpSUB:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		r := rd - rr
		m.subFlags(rd, rr, r, false)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpSBC:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		c := uint8(0)
		if m.flag(FlagC) {
			c = 1
		}
		r := rd - rr - c
		m.subFlags(rd, rr, r, true)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpAND, OpTST:
		rd, rr := m.R[in.Rd], m.R[in.rrOrSelf()]
		r := rd & rr
		m.logicFlags(r)
		if in.Class == OpAND {
			m.R[in.Rd] = r
		}
		setRd(rd, r)
		act.Operand = rr
	case OpOR:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		r := rd | rr
		m.logicFlags(r)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpEOR, OpCLR:
		rd, rr := m.R[in.Rd], m.R[in.rrOrSelf()]
		r := rd ^ rr
		m.logicFlags(r)
		m.R[in.Rd] = r
		setRd(rd, r)
		act.Operand = rr
	case OpCP:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		m.subFlags(rd, rr, rd-rr, false)
		setRd(rd, rd)
		act.Operand = rr
	case OpCPC:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		c := uint8(0)
		if m.flag(FlagC) {
			c = 1
		}
		m.subFlags(rd, rr, rd-rr-c, true)
		setRd(rd, rd)
		act.Operand = rr
	case OpCPSE:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		act.Branch = true
		act.Taken = rd == rr
		if act.Taken {
			act.Skip = 1
		}
		setRd(rd, rd)
		act.Operand = rr
	case OpMOV:
		rd, rr := m.R[in.Rd], m.R[in.Rr]
		m.R[in.Rd] = rr
		setRd(rd, rr)
		act.Operand = rr
	case OpMOVW:
		rd := m.R[in.Rd]
		m.R[in.Rd] = m.R[in.Rr]
		m.R[in.Rd+1] = m.R[in.Rr+1]
		setRd(rd, m.R[in.Rd])
		act.Operand = m.R[in.Rr]

	case OpSUBI, OpSBCI, OpANDI, OpORI, OpSBR, OpCBR, OpCPI, OpLDI:
		m.execImmediate(in, &act)
	case OpADIW, OpSBIW:
		m.execWordImm(in, &act)

	case OpCOM:
		rd := m.R[in.Rd]
		r := ^rd
		m.setFlag(FlagC, true)
		m.setFlag(FlagV, false)
		m.setZNS(r)
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpNEG:
		rd := m.R[in.Rd]
		r := -rd
		m.setFlag(FlagH, (r|rd)&0x08 != 0)
		m.setFlag(FlagV, r == 0x80)
		m.setFlag(FlagC, r != 0)
		m.setZNS(r)
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpINC:
		rd := m.R[in.Rd]
		r := rd + 1
		m.setFlag(FlagV, rd == 0x7F)
		m.setZNS(r)
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpDEC:
		rd := m.R[in.Rd]
		r := rd - 1
		m.setFlag(FlagV, rd == 0x80)
		m.setZNS(r)
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpSER:
		rd := m.R[in.Rd]
		m.R[in.Rd] = 0xFF
		setRd(rd, 0xFF)
	case OpLSR:
		rd := m.R[in.Rd]
		r := rd >> 1
		m.setFlag(FlagC, rd&1 != 0)
		m.setFlag(FlagN, false)
		m.setFlag(FlagZ, r == 0)
		m.setFlag(FlagV, m.flag(FlagN) != m.flag(FlagC))
		m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpROR:
		rd := m.R[in.Rd]
		r := rd >> 1
		if m.flag(FlagC) {
			r |= 0x80
		}
		m.setFlag(FlagC, rd&1 != 0)
		m.setFlag(FlagN, r&0x80 != 0)
		m.setFlag(FlagZ, r == 0)
		m.setFlag(FlagV, m.flag(FlagN) != m.flag(FlagC))
		m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpASR:
		rd := m.R[in.Rd]
		r := rd>>1 | rd&0x80
		m.setFlag(FlagC, rd&1 != 0)
		m.setFlag(FlagN, r&0x80 != 0)
		m.setFlag(FlagZ, r == 0)
		m.setFlag(FlagV, m.flag(FlagN) != m.flag(FlagC))
		m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
		m.R[in.Rd] = r
		setRd(rd, r)
	case OpSWAP:
		rd := m.R[in.Rd]
		r := rd<<4 | rd>>4
		m.R[in.Rd] = r
		setRd(rd, r)

	case OpRJMP, OpJMP:
		act.Branch = true
		act.Taken = true
	case OpBREQ, OpBRNE, OpBRCS, OpBRCC, OpBRSH, OpBRLO, OpBRMI, OpBRPL,
		OpBRGE, OpBRLT, OpBRHS, OpBRHC, OpBRTS, OpBRTC, OpBRVS, OpBRVC,
		OpBRIE, OpBRID:
		set := isSetBranch(in.Class)
		act.Branch = true
		act.Taken = m.flag(uint(branchSBit(in.Class))) == set
	case OpBRBS:
		act.Branch = true
		act.Taken = m.flag(uint(in.S))
	case OpBRBC:
		act.Branch = true
		act.Taken = !m.flag(uint(in.S))

	case OpLDS, OpLDX, OpLDXInc, OpLDXDec, OpLDY, OpLDYInc, OpLDYDec,
		OpLDZ, OpLDZInc, OpLDZDec, OpLDDY, OpLDDZ:
		m.execLoad(in, &act)
	case OpSTS, OpSTX, OpSTXInc, OpSTXDec, OpSTY, OpSTYInc, OpSTYDec,
		OpSTZ, OpSTZInc, OpSTZDec, OpSTDY, OpSTDZ:
		m.execStore(in, &act)

	case OpSEC, OpSEZ, OpSEN, OpSEV, OpSES, OpSEH, OpSET, OpSEI:
		m.setFlag(uint(flagSBit(in.Class)), true)
	case OpCLC, OpCLZ, OpCLN, OpCLV, OpCLS, OpCLH, OpCLT:
		m.setFlag(uint(flagSBit(in.Class)), false)
	case OpBSET:
		m.setFlag(uint(in.S), true)
	case OpBCLR:
		m.setFlag(uint(in.S), false)

	case OpSBRC:
		act.Branch = true
		act.Taken = m.R[in.Rr]&(1<<in.B) == 0
		if act.Taken {
			act.Skip = 1
		}
		act.Operand = m.R[in.Rr]
	case OpSBRS:
		act.Branch = true
		act.Taken = m.R[in.Rr]&(1<<in.B) != 0
		if act.Taken {
			act.Skip = 1
		}
		act.Operand = m.R[in.Rr]
	case OpSBIC:
		act.Branch = true
		act.Taken = m.IO[in.Addr&0x3F]&(1<<in.B) == 0
		if act.Taken {
			act.Skip = 1
		}
	case OpSBIS:
		act.Branch = true
		act.Taken = m.IO[in.Addr&0x3F]&(1<<in.B) != 0
		if act.Taken {
			act.Skip = 1
		}
	case OpSBI:
		old := m.IO[in.Addr&0x3F]
		m.IO[in.Addr&0x3F] = old | 1<<in.B
		setRd(old, m.IO[in.Addr&0x3F])
		act.MemAddr = in.Addr
		act.MemWrite = true
	case OpCBI:
		old := m.IO[in.Addr&0x3F]
		m.IO[in.Addr&0x3F] = old &^ (1 << in.B)
		setRd(old, m.IO[in.Addr&0x3F])
		act.MemAddr = in.Addr
		act.MemWrite = true
	case OpBST:
		m.setFlag(FlagT, m.R[in.Rd]&(1<<in.B) != 0)
		setRd(m.R[in.Rd], m.R[in.Rd])
	case OpBLD:
		rd := m.R[in.Rd]
		r := rd &^ (1 << in.B)
		if m.flag(FlagT) {
			r |= 1 << in.B
		}
		m.R[in.Rd] = r
		setRd(rd, r)

	case OpLPM0, OpLPM, OpLPMInc, OpELPM0, OpELPM, OpELPMInc:
		m.execLPM(in, &act)

	case OpNOP:
		// no state change
	default:
		return act, fmt.Errorf("avr: Exec: unhandled class %v", in.Class)
	}
	return act, nil
}

// rrOrSelf returns the source register for classes where alias forms operate
// on Rd twice (TST/CLR/LSL/ROL).
func (in Instruction) rrOrSelf() uint8 {
	switch in.Class {
	case OpTST, OpCLR, OpLSL, OpROL:
		return in.Rd
	default:
		return in.Rr
	}
}

func isSetBranch(c Class) bool {
	switch c {
	case OpBREQ, OpBRCS, OpBRLO, OpBRMI, OpBRLT, OpBRHS, OpBRTS, OpBRVS, OpBRIE:
		return true
	}
	return false
}

func (m *Machine) execImmediate(in Instruction, act *Activity) {
	rd := m.R[in.Rd]
	k := in.K
	act.Operand = k
	var r uint8
	switch in.Class {
	case OpSUBI:
		r = rd - k
		m.subFlags(rd, k, r, false)
		m.R[in.Rd] = r
	case OpSBCI:
		c := uint8(0)
		if m.flag(FlagC) {
			c = 1
		}
		r = rd - k - c
		m.subFlags(rd, k, r, true)
		m.R[in.Rd] = r
	case OpANDI:
		r = rd & k
		m.logicFlags(r)
		m.R[in.Rd] = r
	case OpORI, OpSBR:
		r = rd | k
		m.logicFlags(r)
		m.R[in.Rd] = r
	case OpCBR:
		r = rd &^ k
		m.logicFlags(r)
		m.R[in.Rd] = r
	case OpCPI:
		r = rd - k
		m.subFlags(rd, k, r, false)
		r = rd // register unchanged
	case OpLDI:
		r = k
		m.R[in.Rd] = r
	}
	act.OldValue = rd
	act.NewValue = r
}

func (m *Machine) execWordImm(in Instruction, act *Activity) {
	lo := in.Rd
	old16 := uint16(m.R[lo]) | uint16(m.R[lo+1])<<8
	var r16 uint16
	if in.Class == OpADIW {
		r16 = old16 + uint16(in.K)
		m.setFlag(FlagV, old16&0x8000 == 0 && r16&0x8000 != 0)
		m.setFlag(FlagC, r16 < old16)
	} else {
		r16 = old16 - uint16(in.K)
		m.setFlag(FlagV, old16&0x8000 != 0 && r16&0x8000 == 0)
		m.setFlag(FlagC, r16 > old16)
	}
	m.setFlag(FlagN, r16&0x8000 != 0)
	m.setFlag(FlagZ, r16 == 0)
	m.setFlag(FlagS, m.flag(FlagN) != m.flag(FlagV))
	m.R[lo] = uint8(r16)
	m.R[lo+1] = uint8(r16 >> 8)
	act.OldValue = uint8(old16)
	act.NewValue = uint8(r16)
	act.Operand = in.K
}

func (m *Machine) execLoad(in Instruction, act *Activity) {
	var addr uint16
	switch in.Class {
	case OpLDS:
		addr = in.Addr
	case OpLDX:
		addr = m.ptr(RegXL)
	case OpLDXInc:
		addr = m.ptr(RegXL)
		m.setPtr(RegXL, addr+1)
	case OpLDXDec:
		addr = m.ptr(RegXL) - 1
		m.setPtr(RegXL, addr)
	case OpLDY:
		addr = m.ptr(RegYL)
	case OpLDYInc:
		addr = m.ptr(RegYL)
		m.setPtr(RegYL, addr+1)
	case OpLDYDec:
		addr = m.ptr(RegYL) - 1
		m.setPtr(RegYL, addr)
	case OpLDZ:
		addr = m.ptr(RegZL)
	case OpLDZInc:
		addr = m.ptr(RegZL)
		m.setPtr(RegZL, addr+1)
	case OpLDZDec:
		addr = m.ptr(RegZL) - 1
		m.setPtr(RegZL, addr)
	case OpLDDY:
		addr = m.ptr(RegYL) + uint16(in.Q)
	case OpLDDZ:
		addr = m.ptr(RegZL) + uint16(in.Q)
	}
	old := m.R[in.Rd]
	v := m.sramRead(addr)
	m.R[in.Rd] = v
	act.OldValue = old
	act.NewValue = v
	act.MemAddr = addr
	act.MemRead = true
}

func (m *Machine) execStore(in Instruction, act *Activity) {
	var addr uint16
	switch in.Class {
	case OpSTS:
		addr = in.Addr
	case OpSTX:
		addr = m.ptr(RegXL)
	case OpSTXInc:
		addr = m.ptr(RegXL)
		m.setPtr(RegXL, addr+1)
	case OpSTXDec:
		addr = m.ptr(RegXL) - 1
		m.setPtr(RegXL, addr)
	case OpSTY:
		addr = m.ptr(RegYL)
	case OpSTYInc:
		addr = m.ptr(RegYL)
		m.setPtr(RegYL, addr+1)
	case OpSTYDec:
		addr = m.ptr(RegYL) - 1
		m.setPtr(RegYL, addr)
	case OpSTZ:
		addr = m.ptr(RegZL)
	case OpSTZInc:
		addr = m.ptr(RegZL)
		m.setPtr(RegZL, addr+1)
	case OpSTZDec:
		addr = m.ptr(RegZL) - 1
		m.setPtr(RegZL, addr)
	case OpSTDY:
		addr = m.ptr(RegYL) + uint16(in.Q)
	case OpSTDZ:
		addr = m.ptr(RegZL) + uint16(in.Q)
	}
	v := m.R[in.Rr]
	old := m.sramRead(addr)
	m.sramWrite(addr, v)
	act.OldValue = old
	act.NewValue = v
	act.Operand = v
	act.MemAddr = addr
	act.MemWrite = true
	act.RdAddr = in.Rr
}

func (m *Machine) execLPM(in Instruction, act *Activity) {
	z := m.ptr(RegZL)
	dst := in.Rd
	if in.Class == OpLPM0 || in.Class == OpELPM0 {
		dst = 0
	}
	old := m.R[dst]
	v := m.flashByte(z)
	m.R[dst] = v
	if in.Class == OpLPMInc || in.Class == OpELPMInc {
		m.setPtr(RegZL, z+1)
	}
	act.OldValue = old
	act.NewValue = v
	act.MemAddr = z
	act.MemRead = true
	act.RdAddr = dst
}

// Step fetches, decodes and executes the instruction at PC, advancing PC
// (including branch targets and skips). It returns the executed instruction
// and its activity. An empty flash image is an error.
func (m *Machine) Step() (Instruction, Activity, error) {
	if len(m.Flash) == 0 {
		return Instruction{}, Activity{}, fmt.Errorf("avr: Step with empty flash")
	}
	pc := int(m.PC) % len(m.Flash)
	window := m.Flash[pc:]
	if len(window) < 2 && pc+1 < len(m.Flash) {
		window = m.Flash[pc : pc+2]
	}
	in, n, err := Decode(window)
	if err != nil {
		return Instruction{}, Activity{}, fmt.Errorf("avr: Step at PC=%d: %w", pc, err)
	}
	act, err := m.Exec(in)
	if err != nil {
		return in, act, err
	}
	next := uint32(pc + n)
	if act.Taken {
		switch in.Class {
		case OpJMP:
			next = uint32(in.Addr)
		case OpRJMP:
			next = uint32(int(pc) + n + int(in.Off))
		case OpBREQ, OpBRNE, OpBRCS, OpBRCC, OpBRSH, OpBRLO, OpBRMI, OpBRPL,
			OpBRGE, OpBRLT, OpBRHS, OpBRHC, OpBRTS, OpBRTC, OpBRVS, OpBRVC,
			OpBRIE, OpBRID, OpBRBS, OpBRBC:
			next = uint32(int(pc) + n + int(in.Off))
		default:
			// Skip instructions: skip over the next instruction, which may
			// be 1 or 2 words.
			skipAt := int(next) % len(m.Flash)
			_, sn, derr := Decode(m.Flash[skipAt:])
			if derr != nil {
				sn = 1
			}
			next += uint32(sn)
		}
	}
	m.PC = next % uint32(len(m.Flash))
	return in, act, nil
}

// Run executes up to maxSteps instructions, returning the executed listing.
func (m *Machine) Run(maxSteps int) ([]Instruction, error) {
	var out []Instruction
	for i := 0; i < maxSteps; i++ {
		in, _, err := m.Step()
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
	return out, nil
}
