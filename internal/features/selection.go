// Package features implements the paper's Section 3: feature selection in
// the time–frequency domain with Kullback–Leibler divergence (distinct and
// not-varying points, DNVP), normalization, and PCA dimensionality
// reduction, composed into a reusable extraction pipeline.
package features

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
	"repro/internal/stats"
)

// Point is a time–frequency index pair (j = scale index, k = time index).
type Point struct {
	Scale int
	Time  int
}

// PointStats accumulates per-point mean/variance over a population of
// scalograms without retaining them (Welford-free two-moment form; fine for
// the magnitudes involved).
type PointStats struct {
	N     int
	Sum   []float64
	SumSq []float64
}

// NewPointStats prepares an accumulator for flattened scalograms of length n.
func NewPointStats(n int) *PointStats {
	return &PointStats{Sum: make([]float64, n), SumSq: make([]float64, n)}
}

// Add accumulates one flattened scalogram.
func (s *PointStats) Add(flat []float64) error {
	if len(flat) != len(s.Sum) {
		return fmt.Errorf("features: PointStats.Add length %d, want %d", len(flat), len(s.Sum))
	}
	s.N++
	for i, v := range flat {
		s.Sum[i] += v
		s.SumSq[i] += v * v
	}
	return nil
}

// Gaussian returns the fitted Gaussian at flat index i.
func (s *PointStats) Gaussian(i int) stats.Gaussian {
	if s.N < 2 {
		return stats.Gaussian{}
	}
	n := float64(s.N)
	mean := s.Sum[i] / n
	v := (s.SumSq[i] - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return stats.Gaussian{Mean: mean, StdDev: math.Sqrt(v)}
}

// Selector performs the KL-divergence based feature selection over CWT
// scalograms.
type Selector struct {
	CWT      *dsp.CWT
	TraceLen int
	// KLth is the within-class (program-to-program) divergence threshold
	// below which a point counts as "not varying". The paper uses 0.005
	// initially and tightens it to 0.0005 for covariate shift adaptation.
	KLth float64
	// TopPerPair is how many distinct-and-not-varying points are kept per
	// class pair (the paper's DNVP⁽⁵⁾).
	TopPerPair int
}

// NewSelector builds a selector with the paper's defaults (50-scale CWT,
// KLth 0.005, top 5 per pair) for traces of length traceLen.
func NewSelector(traceLen int) (*Selector, error) {
	return NewSelectorBank(traceLen, dsp.BankConfig{})
}

// NewSelectorBank is NewSelector over a named wavelet bank; the zero-value
// bank resolves to the paper's (dsp.DefaultBank).
func NewSelectorBank(traceLen int, bank dsp.BankConfig) (*Selector, error) {
	c, err := dsp.NewCWTBank(bank)
	if err != nil {
		return nil, err
	}
	return &Selector{CWT: c, TraceLen: traceLen, KLth: 0.005, TopPerPair: 5}, nil
}

// numPoints is the flattened scalogram length.
func (s *Selector) numPoints() int { return s.CWT.NumScales() * s.TraceLen }

// flatIndex converts a point to its flat index.
func (s *Selector) flatIndex(p Point) int { return p.Scale*s.TraceLen + p.Time }

// PointOf converts a flat index back to a (scale, time) point.
func (s *Selector) PointOf(i int) Point {
	return Point{Scale: i / s.TraceLen, Time: i % s.TraceLen}
}

// AccumulateStats computes the per-point Gaussian statistics of a set of
// traces. The scalograms are computed in parallel (batch CWT) and
// accumulated serially in trace order, so the result does not depend on the
// worker count.
func (s *Selector) AccumulateStats(traces [][]float64) (*PointStats, error) {
	if len(traces) < 2 {
		return nil, errors.New("features: need at least 2 traces for statistics")
	}
	for _, tr := range traces {
		if len(tr) != s.TraceLen {
			return nil, fmt.Errorf("features: trace length %d, want %d", len(tr), s.TraceLen)
		}
	}
	ps := NewPointStats(s.numPoints())
	flats, err := s.CWT.TransformFlatBatch(traces)
	if err != nil {
		return nil, err
	}
	for _, flat := range flats {
		if err := ps.Add(flat); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// BetweenClassKL returns the symmetric KL divergence map between two trace
// populations as a Scales×TraceLen matrix — the paper's D^B_KL.
func (s *Selector) BetweenClassKL(a, b *PointStats) ([][]float64, error) {
	if len(a.Sum) != s.numPoints() || len(b.Sum) != s.numPoints() {
		return nil, errors.New("features: stats dimensionality mismatch")
	}
	out := make([][]float64, s.CWT.NumScales())
	for j := range out {
		row := make([]float64, s.TraceLen)
		for k := range row {
			i := j*s.TraceLen + k
			row[k] = stats.SymmetricKLGaussian(a.Gaussian(i), b.Gaussian(i))
		}
		out[j] = row
	}
	return out, nil
}

// LocalMaxima2D returns the strict local maxima of a 2-D map using the
// 8-neighborhood, excluding the border. These are the paper's "peaks of the
// KL divergence" (∂²D/∂j∂k = 0 in their notation).
func LocalMaxima2D(m [][]float64) []Point {
	var out []Point
	for j := 1; j < len(m)-1; j++ {
		for k := 1; k < len(m[j])-1; k++ {
			v := m[j][k]
			if v <= 0 {
				continue
			}
			isMax := true
			for dj := -1; dj <= 1 && isMax; dj++ {
				for dk := -1; dk <= 1; dk++ {
					if dj == 0 && dk == 0 {
						continue
					}
					if m[j+dj][k+dk] >= v {
						isMax = false
						break
					}
				}
			}
			if isMax {
				out = append(out, Point{Scale: j, Time: k})
			}
		}
	}
	return out
}

// NotVaryingMask returns, for each flat point, whether the within-class KL
// divergence between every pair of program populations stays below KLth —
// the paper's NVP_c set. perProgram maps program ID → accumulated stats for
// that class's traces from that program.
//
// Two estimation-noise corrections make the paper's absolute thresholds
// (0.005 / 0.0005) usable at any acquisition scale. First, the empirical KL
// between two *identical* Gaussians estimated from n samples each does not
// vanish — its expectation is ≈ 1/n per side — so each pairwise divergence
// is debiased by (1/n_a + 1/n_b). Second, a single debiased estimate still
// fluctuates by roughly its bias, far above the tight threshold, so instead
// of requiring *every* program pair to pass (whose max-statistic is pure
// noise), the mask thresholds the *mean* debiased divergence across program
// pairs; averaging over pairs shrinks the noise while preserving the
// systematic program-to-program shift the mask is meant to detect.
//
// A point whose accumulated divergence is NaN or ±Inf (a NaN CWT coefficient
// that slipped past ingestion, an overflowed moment) cannot be certified as
// not-varying; it is conservatively masked out (false) and counted in
// skipped, so callers can report how many points were dropped. If every
// point is skipped the statistics are unusable and a stats.ErrDegenerate
// wrapped error is returned instead of an all-false mask.
func (s *Selector) NotVaryingMask(perProgram map[int]*PointStats) (mask []bool, skipped int, err error) {
	if len(perProgram) < 2 {
		return nil, 0, errors.New("features: not-varying mask needs >= 2 programs")
	}
	ids := make([]int, 0, len(perProgram))
	for id := range perProgram {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	n := s.numPoints()
	acc := make([]float64, n)
	pairs := 0
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			pa, pb := perProgram[ids[a]], perProgram[ids[b]]
			if len(pa.Sum) != n || len(pb.Sum) != n {
				return nil, 0, errors.New("features: per-program stats dimensionality mismatch")
			}
			if pa.N < 2 || pb.N < 2 {
				return nil, 0, errors.New("features: per-program stats need >= 2 traces")
			}
			bias := 1/float64(pa.N) + 1/float64(pb.N)
			for i := 0; i < n; i++ {
				acc[i] += stats.SymmetricKLGaussian(pa.Gaussian(i), pb.Gaussian(i)) - bias
			}
			pairs++
		}
	}
	mask = make([]bool, n)
	for i := range mask {
		m := acc[i] / float64(pairs)
		if math.IsNaN(m) || math.IsInf(m, 0) {
			skipped++ // non-finite divergence: cannot certify, leave false
			continue
		}
		mask[i] = m < s.KLth
	}
	if skipped == n {
		return nil, skipped, fmt.Errorf("%w: every within-class divergence is non-finite", stats.ErrDegenerate)
	}
	return mask, skipped, nil
}

// PairFeatures holds the selection result for one class pair.
type PairFeatures struct {
	A, B   int     // class labels
	Points []Point // DNVP, strongest first
	KL     []float64
}

// SelectPair computes the distinct-and-not-varying points between classes a
// and b: local maxima of the between-class KL map, filtered by both classes'
// not-varying masks, ranked by divergence, truncated to TopPerPair.
// If the not-varying constraint leaves fewer than TopPerPair points, the
// strongest peaks regardless of the mask fill the remainder (the paper's
// initial, loose-threshold regime effectively does the same).
func (s *Selector) SelectPair(a, b int, statsA, statsB *PointStats, maskA, maskB []bool) (PairFeatures, error) {
	klMap, err := s.BetweenClassKL(statsA, statsB)
	if err != nil {
		return PairFeatures{}, err
	}
	peaks := LocalMaxima2D(klMap)
	type scored struct {
		p  Point
		kl float64
		nv bool
	}
	all := make([]scored, 0, len(peaks))
	for _, p := range peaks {
		i := s.flatIndex(p)
		nv := true
		if maskA != nil && !maskA[i] {
			nv = false
		}
		if maskB != nil && !maskB[i] {
			nv = false
		}
		all = append(all, scored{p: p, kl: klMap[p.Scale][p.Time], nv: nv})
	}
	// Not-varying peaks first, then by KL strength.
	sort.Slice(all, func(i, j int) bool {
		if all[i].nv != all[j].nv {
			return all[i].nv
		}
		return all[i].kl > all[j].kl
	})
	pf := PairFeatures{A: a, B: b}
	for _, sc := range all {
		if len(pf.Points) >= s.TopPerPair {
			break
		}
		pf.Points = append(pf.Points, sc.p)
		pf.KL = append(pf.KL, sc.kl)
	}
	if len(pf.Points) == 0 {
		return pf, fmt.Errorf("features: no feature points found for pair (%d,%d)", a, b)
	}
	return pf, nil
}

// UnionPoints merges per-pair feature points into a deduplicated, stable
// ordering (the paper's ∪ DNVP⁽⁵⁾, 205 points for group 1).
func UnionPoints(pairs []PairFeatures) []Point {
	seen := map[Point]bool{}
	var out []Point
	for _, pf := range pairs {
		for _, p := range pf.Points {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scale != out[j].Scale {
			return out[i].Scale < out[j].Scale
		}
		return out[i].Time < out[j].Time
	})
	return out
}

// ExtractPoints reads the selected points out of one trace's scalogram.
func (s *Selector) ExtractPoints(trace []float64, points []Point) ([]float64, error) {
	if len(trace) != s.TraceLen {
		return nil, fmt.Errorf("features: trace length %d, want %d", len(trace), s.TraceLen)
	}
	sc := s.CWT.Transform(trace)
	out := make([]float64, len(points))
	for i, p := range points {
		if p.Scale < 0 || p.Scale >= len(sc) || p.Time < 0 || p.Time >= s.TraceLen {
			return nil, fmt.Errorf("features: point %+v out of range", p)
		}
		out[i] = sc[p.Scale][p.Time]
	}
	return out, nil
}
