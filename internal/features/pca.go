package features

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"

	"repro/internal/stats"
)

// PCA projects feature vectors onto the leading principal components of the
// training distribution (Section 3.2 of the paper).
type PCA struct {
	Mean       []float64
	Components *linalg.Matrix // k×p: rows are principal directions
	EigVals    []float64      // variance along each kept component
}

// jacobiMaxDim is the largest input dimensionality solved with a dense
// eigendecomposition; above it, FitPCA switches to matrix-free subspace
// iteration (the KL-selected unions of large class sets — e.g. the 496
// register pairs — can exceed 2 000 points, where O(p³) Jacobi is hopeless).
const jacobiMaxDim = 400

// FitPCA learns a k-component PCA from rows of X. k is clamped to the
// number of dimensions, and additionally to the number of components with
// strictly positive variance (keeping at least one): a zero-variance
// direction carries no signal and its eigenvector is numerically arbitrary,
// so retaining it would make the projection depend on round-off. Non-finite
// training features are rejected with a stats.ErrDegenerate wrapped error —
// a single NaN would otherwise contaminate the whole covariance.
func FitPCA(X [][]float64, k int) (*PCA, error) {
	if len(X) < 2 {
		return nil, errors.New("features: PCA needs at least 2 samples")
	}
	if k < 1 {
		return nil, fmt.Errorf("features: PCA needs k >= 1, got %d", k)
	}
	for i, row := range X {
		if !stats.AllFinite(row) {
			return nil, fmt.Errorf("features: PCA row %d: %w: non-finite feature", i, stats.ErrDegenerate)
		}
	}
	M, err := linalg.FromRows(X)
	if err != nil {
		return nil, err
	}
	p := M.Cols
	if k > p {
		k = p
	}
	mu := linalg.Mean(M)
	if p > jacobiMaxDim {
		pc, err := fitPCASubspace(M, mu, k)
		if err != nil {
			return nil, err
		}
		return pc.dropZeroVariance(), nil
	}
	cov, err := linalg.Covariance(M, mu)
	if err != nil {
		return nil, err
	}
	vals, V, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	comp := linalg.NewMatrix(k, p)
	for c := 0; c < k; c++ {
		for r := 0; r < p; r++ {
			comp.Set(c, r, V.At(r, c))
		}
	}
	return (&PCA{Mean: mu, Components: comp, EigVals: vals[:k]}).dropZeroVariance(), nil
}

// zeroVarEps is the eigenvalue threshold below which a principal direction is
// treated as zero-variance and dropped by dropZeroVariance.
const zeroVarEps = 1e-12

// dropZeroVariance truncates the component set after the last direction with
// variance above zeroVarEps. Eigenvalues arrive sorted descending (EigenSym)
// or near-descending (subspace iteration), so this only trims the degenerate
// tail; at least one component is always kept.
func (pc *PCA) dropZeroVariance() *PCA {
	keep := 0
	for _, v := range pc.EigVals {
		if v > zeroVarEps && !math.IsNaN(v) {
			keep++
		} else {
			break
		}
	}
	if keep == 0 {
		keep = 1
	}
	if keep == len(pc.EigVals) {
		return pc
	}
	p := pc.Components.Cols
	comp := linalg.NewMatrix(keep, p)
	copy(comp.Data, pc.Components.Data[:keep*p])
	pc.Components = comp
	pc.EigVals = pc.EigVals[:keep]
	return pc
}

// fitPCASubspace computes the leading k principal components by block power
// iteration on the centered data, never forming the p×p covariance:
// V ← orth(Cᵀ(C·V)/(n−1)) with C the centered data matrix.
func fitPCASubspace(M *linalg.Matrix, mu []float64, k int) (*PCA, error) {
	n, p := M.Rows, M.Cols
	C := M.Clone()
	for i := 0; i < n; i++ {
		row := C.Row(i)
		for j := range row {
			row[j] -= mu[j]
		}
	}
	// Deterministic pseudo-random init.
	V := linalg.NewMatrix(p, k)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range V.Data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		V.Data[i] = float64(int64(state%2001)-1000) / 1000
	}
	orthonormalizeColumns(V)
	inv := 1 / float64(n-1)
	const iters = 12
	for it := 0; it < iters; it++ {
		// W = C·V (n×k), then V ← Cᵀ·W scaled.
		W, err := C.Mul(V)
		if err != nil {
			return nil, err
		}
		next := linalg.NewMatrix(p, k)
		for i := 0; i < n; i++ {
			ci := C.Row(i)
			wi := W.Row(i)
			for j := 0; j < p; j++ {
				cij := ci[j]
				if cij == 0 {
					continue
				}
				nj := next.Row(j)
				for c := 0; c < k; c++ {
					nj[c] += cij * wi[c]
				}
			}
		}
		next.Scale(inv)
		V = next
		orthonormalizeColumns(V)
	}
	// Rayleigh-quotient eigenvalues: λ_c = ‖C·v_c‖²/(n−1).
	vals := make([]float64, k)
	W, err := C.Mul(V)
	if err != nil {
		return nil, err
	}
	for c := 0; c < k; c++ {
		var s float64
		for i := 0; i < n; i++ {
			v := W.At(i, c)
			s += v * v
		}
		vals[c] = s * inv
	}
	comp := linalg.NewMatrix(k, p)
	for c := 0; c < k; c++ {
		for r := 0; r < p; r++ {
			comp.Set(c, r, V.At(r, c))
		}
	}
	return &PCA{Mean: mu, Components: comp, EigVals: vals}, nil
}

// orthonormalizeColumns runs modified Gram–Schmidt over the columns of V.
func orthonormalizeColumns(V *linalg.Matrix) {
	p, k := V.Rows, V.Cols
	col := make([]float64, p)
	for c := 0; c < k; c++ {
		for r := 0; r < p; r++ {
			col[r] = V.At(r, c)
		}
		for prev := 0; prev < c; prev++ {
			var dot float64
			for r := 0; r < p; r++ {
				dot += col[r] * V.At(r, prev)
			}
			for r := 0; r < p; r++ {
				col[r] -= dot * V.At(r, prev)
			}
		}
		norm := linalg.Norm2(col)
		if norm < 1e-12 {
			// Degenerate direction: reset to a unit basis vector.
			for r := range col {
				col[r] = 0
			}
			col[c%p] = 1
			norm = 1
		}
		for r := 0; r < p; r++ {
			V.Set(r, c, col[r]/norm)
		}
	}
}

// NumComponents returns the number of retained components k.
func (pc *PCA) NumComponents() int { return pc.Components.Rows }

// InputDim returns the expected input dimensionality p.
func (pc *PCA) InputDim() int { return pc.Components.Cols }

// Transform projects x onto the principal components.
func (pc *PCA) Transform(x []float64) ([]float64, error) {
	p := pc.InputDim()
	if len(x) != p {
		return nil, fmt.Errorf("features: PCA input dim %d, want %d", len(x), p)
	}
	if len(pc.Mean) != p {
		return nil, fmt.Errorf("%w: PCA mean length %d, components expect %d", linalg.ErrShape, len(pc.Mean), p)
	}
	centered := make([]float64, p)
	for i := range x {
		centered[i] = x[i] - pc.Mean[i]
	}
	return pc.Components.MulVec(centered)
}

// TransformAll projects every row.
func (pc *PCA) TransformAll(X [][]float64) ([][]float64, error) {
	out := make([][]float64, len(X))
	for i, x := range X {
		y, err := pc.Transform(x)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}

// ExplainedVariance returns the fraction of total variance captured by the
// first m components (m ≤ k); the total is taken over all p directions, so
// callers should fit with k = p when they need exact ratios.
func (pc *PCA) ExplainedVariance(m int) float64 {
	if m > len(pc.EigVals) {
		m = len(pc.EigVals)
	}
	var kept, total float64
	for i, v := range pc.EigVals {
		if v < 0 {
			v = 0
		}
		if i < m {
			kept += v
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	return kept / total
}
