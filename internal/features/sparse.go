package features

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dsp"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Sparse extraction: a fitted pipeline reads only len(Points) of the
// Scales×TraceLen scalogram cells, so inference can evaluate exactly those
// cells as direct dot products (dsp.SparseCWT) instead of running the full
// FFT transform. The evaluator is rebuilt deterministically from the
// persisted Points and bank configuration — the cell set IS the template's
// point set, nothing extra to serialize.

// ErrSparseIncapable is returned by the sparse extraction paths when the
// pipeline's configuration requires the full scalogram: NormScalogram
// covariate-shift normalization takes its moments over the entire plane,
// which no per-cell evaluation can reproduce. Templates fitted by builds
// predating NormTrace fall into this case and keep using the full path.
var ErrSparseIncapable = errors.New("features: pipeline not sparse-capable (scalogram-plane normalization needs the full CWT)")

// SparseCapable reports whether this pipeline can extract through the sparse
// per-cell path: either no per-trace normalization, or time-domain
// (NormTrace) normalization. NormScalogram templates must use the full path.
func (pl *Pipeline) SparseCapable() bool {
	return !pl.cfg.PerTraceNorm || pl.cfg.NormMode == NormTrace
}

// sparseEval returns the pipeline's per-cell evaluator, building it on first
// use (thread-safe; the result is cached for the pipeline's lifetime).
func (pl *Pipeline) sparseEval() (*dsp.SparseCWT, error) {
	pl.sparseOnce.Do(func() {
		if !pl.SparseCapable() {
			pl.sparseErr = ErrSparseIncapable
			return
		}
		cells := make([]dsp.Cell, len(pl.Points))
		for i, p := range pl.Points {
			cells[i] = dsp.Cell{Scale: p.Scale, Time: p.Time}
		}
		pl.sparse, pl.sparseErr = pl.sel.CWT.Sparse(pl.sel.TraceLen, cells)
	})
	return pl.sparse, pl.sparseErr
}

// rawFeaturesSparse evaluates the unified DNVP values of one trace through
// the sparse path: NormTrace standardization (when configured) followed by
// one dsp.SparseCWT evaluation — len(Points) dot products instead of
// NumScales full FFT convolutions. Values agree with rawFeatures within
// testkit.CWTTol.
func (pl *Pipeline) rawFeaturesSparse(trace []float64) ([]float64, error) {
	sp, err := pl.sparseEval()
	if err != nil {
		return nil, err
	}
	if len(trace) != pl.sel.TraceLen {
		return nil, fmt.Errorf("features: trace length %d, want %d", len(trace), pl.sel.TraceLen)
	}
	if pl.needsTraceNorm() {
		trace = stats.NormalizeTrace(trace)
	}
	return sp.Values(trace)
}

// ExtractSparse maps one trace to its final classifier input through the
// sparse per-cell path. It is the drop-in fast twin of Extract: same z-score
// and PCA stages, point values within testkit.CWTTol of the full-FFT path.
// Returns ErrSparseIncapable for NormScalogram pipelines.
func (pl *Pipeline) ExtractSparse(trace []float64) ([]float64, error) {
	f, err := pl.rawFeaturesSparse(trace)
	if err != nil {
		return nil, err
	}
	return pl.finishFeatures(f)
}

// ExtractSparseAll maps a batch of traces through the sparse path,
// parallelized over the parallel.Workers() pool. The result is index-aligned
// with traces and identical to serial per-trace ExtractSparse calls.
func (pl *Pipeline) ExtractSparseAll(traces [][]float64) ([][]float64, error) {
	return pl.ExtractSparseAllCtx(context.Background(), traces)
}

// ExtractSparseAllCtx is ExtractSparseAll with cooperative cancellation.
func (pl *Pipeline) ExtractSparseAllCtx(ctx context.Context, traces [][]float64) ([][]float64, error) {
	// Surface an incapable configuration once, up front, instead of from
	// every worker.
	if _, err := pl.sparseEval(); err != nil {
		return nil, err
	}
	out := make([][]float64, len(traces))
	if err := parallel.ForErrCtx(ctx, len(traces), func(i int) error {
		f, err := pl.ExtractSparse(traces[i])
		if err != nil {
			return err
		}
		out[i] = f
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PairVectorSparse is PairVector through the sparse path: the pair-specific
// feature vector (the paper's x_{i,j}) sliced from a sparse evaluation of
// the unified point set. maxVars truncates to the strongest maxVars points
// (0 = all).
func (pl *Pipeline) PairVectorSparse(pair int, trace []float64, maxVars int) ([]float64, error) {
	if pair < 0 || pair >= len(pl.Pairs) {
		return nil, fmt.Errorf("features: pair %d out of range", pair)
	}
	f, err := pl.rawFeaturesSparse(trace)
	if err != nil {
		return nil, err
	}
	idx := pl.pairIdx[pair]
	if maxVars > 0 && maxVars < len(idx) {
		idx = idx[:maxVars]
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = f[j]
	}
	return out, nil
}

// SparseCells returns the number of time–frequency cells the sparse path
// evaluates per trace (the size of the unified DNVP set), or 0 with
// ErrSparseIncapable for full-path-only pipelines.
func (pl *Pipeline) SparseCells() (int, error) {
	sp, err := pl.sparseEval()
	if err != nil {
		return 0, err
	}
	return sp.NumCells(), nil
}
