package features

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/testkit"
)

// fitTestPipeline fits a small pipeline on the synthetic two-class dataset
// under the given config, ready for sparse-vs-full comparisons.
func fitTestPipeline(t *testing.T, cfg PipelineConfig) *Pipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	traces, labels, programs := synthDataset(rng, 6, 3, true)
	cfg.NumComponents = 5
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestExtractSparseMatchesFull is the tentpole property: on any finite trace,
// ExtractSparse must agree with the full-FFT path — both the raw composition
// ExtractFromScalogram(RawScalogram(trace)) and plain Extract — within
// testkit.CWTTol, for every sparse-capable normalization configuration.
func TestExtractSparseMatchesFull(t *testing.T) {
	configs := map[string]PipelineConfig{
		"no-norm":    DefaultPipelineConfig(),
		"norm-trace": CSAPipelineConfig(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			pl := fitTestPipeline(t, cfg)
			if !pl.SparseCapable() {
				t.Fatalf("config %s should be sparse-capable", name)
			}
			testkit.Check(t, testkit.CheckConfig{Runs: 16}, func(g *testkit.G) error {
				trace := g.Trace(pl.TraceLen())
				flat, err := pl.RawScalogram(trace)
				if err != nil {
					return err
				}
				full, err := pl.ExtractFromScalogram(flat)
				if err != nil {
					return err
				}
				direct, err := pl.Extract(trace)
				if err != nil {
					return err
				}
				sparse, err := pl.ExtractSparse(trace)
				if err != nil {
					return err
				}
				if len(sparse) != len(full) {
					return fmt.Errorf("sparse produced %d features, full %d", len(sparse), len(full))
				}
				for i := range sparse {
					if !testkit.Close(sparse[i], full[i], testkit.CWTTol, testkit.CWTTol) {
						return fmt.Errorf("feature %d: sparse %g vs scalogram-path %g", i, sparse[i], full[i])
					}
					if !testkit.Close(sparse[i], direct[i], testkit.CWTTol, testkit.CWTTol) {
						return fmt.Errorf("feature %d: sparse %g vs Extract %g", i, sparse[i], direct[i])
					}
				}
				return nil
			})
		})
	}
}

// TestSparseEdgeCellsMatchScalogram forces the sparse evaluator through
// trace-edge cells — all four corners of the time–frequency plane plus random
// cells — where the kernel window is clipped by the trace boundary, and
// requires each cell value to match the full scalogram within CWTTol. The
// point set is extended before the first sparse use, so both paths read the
// identical cells (only the raw stage is compared; the fitted z/PCA stages
// are sized for the original point count).
func TestSparseEdgeCellsMatchScalogram(t *testing.T) {
	pl := fitTestPipeline(t, CSAPipelineConfig())
	n := pl.TraceLen()
	nScales := pl.sel.CWT.NumScales()
	corners := []Point{
		{Scale: 0, Time: 0},
		{Scale: 0, Time: n - 1},
		{Scale: nScales - 1, Time: 0},
		{Scale: nScales - 1, Time: n - 1},
	}
	rng := rand.New(rand.NewSource(77))
	pl.Points = append(append([]Point(nil), pl.Points...), corners...)
	for i := 0; i < 16; i++ {
		pl.Points = append(pl.Points, Point{Scale: rng.Intn(nScales), Time: rng.Intn(n)})
	}

	testkit.Check(t, testkit.CheckConfig{Runs: 8}, func(g *testkit.G) error {
		trace := g.Trace(n)
		flat, err := pl.RawScalogram(trace)
		if err != nil {
			return err
		}
		raw, err := pl.rawFeaturesSparse(trace)
		if err != nil {
			return err
		}
		for i, p := range pl.Points {
			want := flat[pl.sel.flatIndex(p)]
			if !testkit.Close(raw[i], want, testkit.CWTTol, testkit.CWTTol) {
				return fmt.Errorf("cell %+v: sparse %g vs scalogram %g", p, raw[i], want)
			}
		}
		return nil
	})
}

// TestPairVectorSparseMatchesFull pins agreement of the pair-specific
// feature vectors across the two paths, with and without truncation.
func TestPairVectorSparseMatchesFull(t *testing.T) {
	pl := fitTestPipeline(t, CSAPipelineConfig())
	rng := rand.New(rand.NewSource(13))
	trace := synthTrace(rng, 0, 0.2)
	for pair := range pl.Pairs {
		for _, maxVars := range []int{0, 2} {
			full, err := pl.PairVector(pair, trace, maxVars)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := pl.PairVectorSparse(pair, trace, maxVars)
			if err != nil {
				t.Fatal(err)
			}
			testkit.AllClose(t, sparse, full, testkit.CWTTol, testkit.CWTTol,
				fmt.Sprintf("pair %d maxVars %d", pair, maxVars))
		}
	}
	if _, err := pl.PairVectorSparse(len(pl.Pairs), trace, 0); err == nil {
		t.Fatal("out-of-range pair should fail")
	}
}

// TestExtractSparseIncapable requires the legacy scalogram-plane
// normalization to refuse the sparse path with the typed sentinel — those
// templates must keep classifying through the full CWT.
func TestExtractSparseIncapable(t *testing.T) {
	cfg := CSAPipelineConfig()
	cfg.NormMode = NormScalogram
	pl := fitTestPipeline(t, cfg)
	if pl.SparseCapable() {
		t.Fatal("NormScalogram pipeline must not be sparse-capable")
	}
	rng := rand.New(rand.NewSource(3))
	trace := synthTrace(rng, 0, 0)
	if _, err := pl.ExtractSparse(trace); !errors.Is(err, ErrSparseIncapable) {
		t.Fatalf("ExtractSparse error = %v, want ErrSparseIncapable", err)
	}
	if _, err := pl.ExtractSparseAll([][]float64{trace}); !errors.Is(err, ErrSparseIncapable) {
		t.Fatalf("ExtractSparseAll error = %v, want ErrSparseIncapable", err)
	}
	if _, err := pl.SparseCells(); !errors.Is(err, ErrSparseIncapable) {
		t.Fatalf("SparseCells error = %v, want ErrSparseIncapable", err)
	}
	// The full path still works.
	if _, err := pl.Extract(trace); err != nil {
		t.Fatalf("full-path Extract failed: %v", err)
	}
}

// TestExtractSparseAllMatchesSerial requires the batch API to be bitwise
// identical to per-trace calls at any worker count, and SparseCells to report
// the unified point-set size.
func TestExtractSparseAllMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	pl := fitTestPipeline(t, CSAPipelineConfig())
	rng := rand.New(rand.NewSource(41))
	var traces [][]float64
	for i := 0; i < 9; i++ {
		traces = append(traces, synthTrace(rng, i%2, 0.1*float64(i)))
	}
	want := make([][]float64, len(traces))
	for i, tr := range traces {
		f, err := pl.ExtractSparse(tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = f
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, err := pl.ExtractSparseAll(traces)
		if err != nil {
			t.Fatal(err)
		}
		testkit.ExactEqual2D(t, got, want, fmt.Sprintf("ExtractSparseAll at %d workers", workers))
	}
	cells, err := pl.SparseCells()
	if err != nil {
		t.Fatal(err)
	}
	if cells != len(pl.Points) {
		t.Fatalf("SparseCells = %d, want %d", cells, len(pl.Points))
	}
}
