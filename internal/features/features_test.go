package features

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/testkit"
)

// synthTrace builds a trace with a class-dependent tone plus noise; class 0
// uses 0.05 cycles/sample, class 1 uses 0.15, so their CWT scalograms differ
// at distinct scales.
func synthTrace(rng *rand.Rand, class int, offset float64) []float64 {
	n := 160
	freq := 0.05
	if class == 1 {
		freq = 0.15
	}
	tr := make([]float64, n)
	for t := range tr {
		tr[t] = math.Sin(2*math.Pi*freq*float64(t)) + offset + rng.NormFloat64()*0.05
	}
	return tr
}

func synthDataset(rng *rand.Rand, perClassPerProg, nProgs int, progOffset bool) (traces [][]float64, labels, programs []int) {
	for c := 0; c < 2; c++ {
		for p := 0; p < nProgs; p++ {
			off := 0.0
			if progOffset {
				off = 0.4 * float64(p)
			}
			for i := 0; i < perClassPerProg; i++ {
				traces = append(traces, synthTrace(rng, c, off))
				labels = append(labels, c)
				programs = append(programs, p)
			}
		}
	}
	return
}

func TestPointStats(t *testing.T) {
	ps := NewPointStats(2)
	if err := ps.Add([]float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add([]float64{3, 10}); err != nil {
		t.Fatal(err)
	}
	g0 := ps.Gaussian(0)
	if g0.Mean != 2 {
		t.Fatalf("g0 = %+v", g0)
	}
	testkit.InDelta(t, g0.StdDev, math.Sqrt2, 1e-12, "point-stats stddev")
	g1 := ps.Gaussian(1)
	if g1.Mean != 10 || g1.StdDev != 0 {
		t.Fatalf("g1 = %+v", g1)
	}
	if err := ps.Add([]float64{1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestLocalMaxima2D(t *testing.T) {
	m := [][]float64{
		{0, 0, 0, 0, 0},
		{0, 5, 0, 0, 0},
		{0, 0, 0, 7, 0},
		{0, 0, 0, 0, 0},
	}
	peaks := LocalMaxima2D(m)
	if len(peaks) != 2 {
		t.Fatalf("found %d peaks, want 2: %v", len(peaks), peaks)
	}
	want := map[Point]bool{{1, 1}: true, {2, 3}: true}
	for _, p := range peaks {
		if !want[p] {
			t.Fatalf("unexpected peak %+v", p)
		}
	}
	// A plateau is not a strict maximum.
	flat := [][]float64{
		{1, 1, 1},
		{1, 1, 1},
		{1, 1, 1},
	}
	if peaks := LocalMaxima2D(flat); len(peaks) != 0 {
		t.Fatalf("plateau produced peaks: %v", peaks)
	}
}

func TestBetweenClassKLFindsDiscriminativeScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sel, err := NewSelector(160)
	if err != nil {
		t.Fatal(err)
	}
	var a, b [][]float64
	for i := 0; i < 40; i++ {
		a = append(a, synthTrace(rng, 0, 0))
		b = append(b, synthTrace(rng, 1, 0))
	}
	sa, err := sel.AccumulateStats(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sel.AccumulateStats(b)
	if err != nil {
		t.Fatal(err)
	}
	klMap, err := sel.BetweenClassKL(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	// The divergence must be large at the scales matching the two tones and
	// small at a far-away scale. Find scale indices for each frequency.
	scaleFor := func(f float64) int {
		best, bd := 0, math.Inf(1)
		for j := 0; j < sel.CWT.NumScales(); j++ {
			if d := math.Abs(sel.CWT.CenterFrequency(j) - f); d < bd {
				best, bd = j, d
			}
		}
		return best
	}
	mid := 80
	j0, j1 := scaleFor(0.05), scaleFor(0.15)
	jFar := scaleFor(0.45)
	if klMap[j0][mid] < 10*klMap[jFar][mid] && klMap[j1][mid] < 10*klMap[jFar][mid] {
		t.Fatalf("KL map not discriminative: tone scales %g/%g vs far %g",
			klMap[j0][mid], klMap[j1][mid], klMap[jFar][mid])
	}
}

func TestNotVaryingMaskFlagsOffsetSensitivePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sel, err := NewSelector(160)
	if err != nil {
		t.Fatal(err)
	}
	sel.KLth = 0.05
	// Two programs of the same class with very different DC offsets.
	perProg := map[int]*PointStats{}
	for p := 0; p < 2; p++ {
		var trs [][]float64
		for i := 0; i < 30; i++ {
			trs = append(trs, synthTrace(rng, 0, 3*float64(p)))
		}
		ps, err := sel.AccumulateStats(trs)
		if err != nil {
			t.Fatal(err)
		}
		perProg[p] = ps
	}
	mask, skipped, err := sel.NotVaryingMask(perProg)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("healthy data skipped %d points", skipped)
	}
	varying := 0
	for _, ok := range mask {
		if !ok {
			varying++
		}
	}
	if varying == 0 {
		t.Fatal("a 3.0 DC offset between programs should mark some points varying")
	}
	if varying == len(mask) {
		t.Fatal("not every point should be varying")
	}
	if _, _, err := sel.NotVaryingMask(map[int]*PointStats{0: NewPointStats(sel.numPoints())}); err == nil {
		t.Fatal("want error for single program")
	}
}

func TestSelectPairAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sel, err := NewSelector(160)
	if err != nil {
		t.Fatal(err)
	}
	var a, b [][]float64
	for i := 0; i < 40; i++ {
		a = append(a, synthTrace(rng, 0, 0))
		b = append(b, synthTrace(rng, 1, 0))
	}
	sa, _ := sel.AccumulateStats(a)
	sb, _ := sel.AccumulateStats(b)
	pf, err := sel.SelectPair(0, 1, sa, sb, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Points) == 0 || len(pf.Points) > sel.TopPerPair {
		t.Fatalf("selected %d points, want 1..%d", len(pf.Points), sel.TopPerPair)
	}
	for i := 1; i < len(pf.KL); i++ {
		if pf.KL[i] > pf.KL[0] && i > 0 {
			// ordering is by (not-varying, KL); with nil masks it is pure KL
			t.Fatalf("points not ranked by KL: %v", pf.KL)
		}
	}
	u := UnionPoints([]PairFeatures{pf, pf})
	if len(u) != len(dedup(pf.Points)) {
		t.Fatalf("union of identical pairs should deduplicate: %d vs %d", len(u), len(dedup(pf.Points)))
	}
}

func dedup(ps []Point) []Point {
	seen := map[Point]bool{}
	var out []Point
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func TestExtractPointsValidation(t *testing.T) {
	sel, err := NewSelector(100)
	if err != nil {
		t.Fatal(err)
	}
	tr := make([]float64, 100)
	if _, err := sel.ExtractPoints(tr[:50], []Point{{0, 0}}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := sel.ExtractPoints(tr, []Point{{99, 0}}); err == nil {
		t.Fatal("want out-of-range error")
	}
	got, err := sel.ExtractPoints(tr, []Point{{0, 0}, {10, 50}})
	if err != nil || len(got) != 2 {
		t.Fatalf("extract: %v %v", got, err)
	}
}

func TestFitPCAAndTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Data living mostly along direction (1, 1, 0).
	var X [][]float64
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64() * 3
		X = append(X, []float64{v + rng.NormFloat64()*0.1, v + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
	}
	pca, err := FitPCA(X, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pca.NumComponents() != 3 || pca.InputDim() != 3 {
		t.Fatalf("dims %d/%d", pca.NumComponents(), pca.InputDim())
	}
	if ev := pca.ExplainedVariance(1); ev < 0.95 {
		t.Fatalf("first PC should capture >95%% variance, got %g", ev)
	}
	y, err := pca.Transform(X[0])
	if err != nil || len(y) != 3 {
		t.Fatalf("transform: %v %v", y, err)
	}
	// First component direction ≈ (1,1,0)/√2.
	c0 := []float64{pca.Components.At(0, 0), pca.Components.At(0, 1), pca.Components.At(0, 2)}
	if !testkit.Close(math.Abs(c0[0]), 1/math.Sqrt2, 0, 0.05) || math.Abs(c0[2]) > 0.1 {
		t.Fatalf("first PC direction %v", c0)
	}
	if _, err := pca.Transform([]float64{1}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := FitPCA(X, 0); err == nil {
		t.Fatal("want k>=1 error")
	}
	if _, err := FitPCA(X[:1], 1); err == nil {
		t.Fatal("want sample-count error")
	}
	// k > p clamps.
	pca2, err := FitPCA(X, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pca2.NumComponents() != 3 {
		t.Fatalf("k should clamp to 3, got %d", pca2.NumComponents())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	traces, labels, programs := synthDataset(rng, 20, 3, false)
	cfg := DefaultPipelineConfig()
	cfg.NumComponents = 3
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumFeatures() > 3 || pl.NumFeatures() < 1 {
		t.Fatalf("NumFeatures = %d", pl.NumFeatures())
	}
	if pl.NumPoints() == 0 || pl.NumPoints() > 5 {
		t.Fatalf("NumPoints = %d, want 1..5 for a single pair", pl.NumPoints())
	}
	if pl.PairCount() != 1 || pl.NumClasses() != 2 {
		t.Fatalf("pairs=%d classes=%d", pl.PairCount(), pl.NumClasses())
	}
	// Features must separate the two classes linearly: check the projected
	// class means are further apart than the average within-class spread.
	f0, err := pl.Extract(synthTrace(rng, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var m0, m1 []float64
	n0, n1 := 0, 0
	for i := 0; i < 30; i++ {
		a, _ := pl.Extract(synthTrace(rng, 0, 0))
		b, _ := pl.Extract(synthTrace(rng, 1, 0))
		if m0 == nil {
			m0 = make([]float64, len(a))
			m1 = make([]float64, len(b))
		}
		for j := range a {
			m0[j] += a[j]
			m1[j] += b[j]
		}
		n0++
		n1++
	}
	var sep float64
	for j := range m0 {
		d := m0[j]/float64(n0) - m1[j]/float64(n1)
		sep += d * d
	}
	if math.Sqrt(sep) < 0.5 {
		t.Fatalf("projected class means too close: %g", math.Sqrt(sep))
	}
	_ = f0

	// Pair vector access.
	pv, err := pl.PairVector(0, traces[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) > 3 {
		t.Fatalf("PairVector returned %d values, want <=3", len(pv))
	}
	a, b := pl.PairLabels(0)
	if a != 0 || b != 1 {
		t.Fatalf("pair labels %d,%d", a, b)
	}
	if _, err := pl.PairVector(9, traces[0], 0); err == nil {
		t.Fatal("want pair range error")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := DefaultPipelineConfig()
	if _, err := FitPipeline(nil, nil, nil, 2, cfg); err == nil {
		t.Fatal("want error for empty input")
	}
	tr := [][]float64{make([]float64, 50), make([]float64, 50)}
	if _, err := FitPipeline(tr, []int{0, 1}, []int{0}, 2, cfg); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := FitPipeline(tr, []int{0, 5}, []int{0, 0}, 2, cfg); err == nil {
		t.Fatal("want error for out-of-range label")
	}
	if _, err := FitPipeline(tr, []int{0, 0}, []int{0, 0}, 1, cfg); err == nil {
		t.Fatal("want error for single class")
	}
}

func TestCSAPipelineCancelsOffsetShift(t *testing.T) {
	// Fit on programs with varying offsets using CSA; a test trace with an
	// unseen offset must land near its class's training features.
	rng := rand.New(rand.NewSource(6))
	traces, labels, programs := synthDataset(rng, 20, 4, true)
	cfg := CSAPipelineConfig()
	cfg.NumComponents = 2
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unseen, much larger offset.
	shifted, _ := pl.Extract(synthTrace(rng, 0, 5.0))
	clean, _ := pl.Extract(synthTrace(rng, 0, 0))
	other, _ := pl.Extract(synthTrace(rng, 1, 0))
	d := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	if d(shifted, clean) > d(shifted, other) {
		t.Fatalf("CSA failed: shifted class-0 trace closer to class 1 (%g vs %g)",
			d(shifted, clean), d(shifted, other))
	}
}

func TestNormalizeTraceIdempotentOnFeatures(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	once := stats.NormalizeTrace(x)
	twice := stats.NormalizeTrace(once)
	testkit.AllClose(t, twice, once, 0, 1e-9, "double-normalized trace")
}

// Satellite regression: a NaN-contaminated program population must not
// silently flip mask points to "varying" — the points are counted as skipped
// and reported, and fully-degenerate statistics are a typed error.
func TestNotVaryingMaskReportsNaNPoints(t *testing.T) {
	sel, err := NewSelector(4)
	if err != nil {
		t.Fatal(err)
	}
	sel.TraceLen = 4
	n := sel.numPoints()
	mk := func() *PointStats {
		ps := NewPointStats(n)
		flat := make([]float64, n)
		for i := range flat {
			flat[i] = float64(i % 7)
		}
		for k := 0; k < 3; k++ {
			for i := range flat {
				flat[i] += 0.001 * float64(k)
			}
			if err := ps.Add(flat); err != nil {
				t.Fatal(err)
			}
		}
		return ps
	}
	a, b := mk(), mk()
	// Poison two points of one program's statistics.
	a.Sum[0] = math.NaN()
	a.Sum[5] = math.Inf(1)
	mask, skipped, err := sel.NotVaryingMask(map[int]*PointStats{0: a, 1: b})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if mask[0] || mask[5] {
		t.Fatal("poisoned points must not be certified as not-varying")
	}
	ok := 0
	for _, m := range mask {
		if m {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("healthy points should still pass the mask")
	}

	// Fully poisoned statistics: typed degenerate error, no mask.
	for i := range a.Sum {
		a.Sum[i] = math.NaN()
	}
	if _, _, err := sel.NotVaryingMask(map[int]*PointStats{0: a, 1: b}); !errors.Is(err, stats.ErrDegenerate) {
		t.Fatalf("all-NaN stats err = %v, want stats.ErrDegenerate", err)
	}
}

func TestFitPCARejectsNonFinite(t *testing.T) {
	X := [][]float64{{1, 2}, {3, math.NaN()}, {5, 6}}
	if _, err := FitPCA(X, 2); !errors.Is(err, stats.ErrDegenerate) {
		t.Fatalf("FitPCA err = %v, want stats.ErrDegenerate", err)
	}
}

// A constant input column is a zero-variance principal direction; FitPCA must
// drop it rather than keep a round-off eigenvector, and Transform output must
// stay finite.
func TestFitPCADropsZeroVarianceComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X := make([][]float64, 40)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), 7.5, rng.NormFloat64() * 2}
	}
	pc, err := FitPCA(X, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pc.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2 (one constant column)", pc.NumComponents())
	}
	for _, v := range pc.EigVals {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("kept eigenvalue %v not positive", v)
		}
	}
	y, err := pc.Transform(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AllFinite(y) {
		t.Fatalf("Transform produced non-finite output %v", y)
	}
}

func TestPCATransformRejectsCorruptedMean(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 7}}
	pc, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc.Mean = pc.Mean[:1] // simulate a truncated persisted state
	if _, err := pc.Transform([]float64{1, 2}); err == nil {
		t.Fatal("want error for corrupted mean, got nil")
	}
}

// FitPipelineCtx must return context.Canceled promptly when cancelled
// mid-fit on a large dataset, not run the fit to completion.
func TestFitPipelineCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	traces, labels, programs := synthDataset(rng, 60, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultPipelineConfig()
	cfg.NumComponents = 3
	start := time.Now()
	_, err := FitPipelineCtx(ctx, traces, labels, programs, 2, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-cancelled fit must return almost immediately — far faster than
	// the 360-trace CWT pass it skipped.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled fit took %v", elapsed)
	}

	// And a live context still fits.
	pl, err := FitPipelineCtx(context.Background(), traces, labels, programs, 2, cfg)
	if err != nil || pl == nil {
		t.Fatalf("live-context fit failed: %v", err)
	}
}

func TestExtractAllCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	traces, labels, programs := synthDataset(rng, 10, 2, false)
	pl, err := FitPipeline(traces, labels, programs, 2, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.ExtractAllCtx(ctx, traces); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
