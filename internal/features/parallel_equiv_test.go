package features

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// fitBoth fits the same dataset at two worker counts and returns both
// pipelines.
func fitAt(t *testing.T, workers int, cfg PipelineConfig) (*Pipeline, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	traces, labels, programs := synthDataset(rng, 6, 3, true)
	parallel.SetWorkers(workers)
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl, traces
}

// TestFitPipelineParallelEquivalence requires the fitted pipeline — selected
// points, pair features, and the features it extracts — to be bit-identical
// between a single-worker and a multi-worker fit. The container may have one
// CPU, so the worker count is pinned explicitly.
func TestFitPipelineParallelEquivalence(t *testing.T) {
	defer parallel.SetWorkers(0)
	for _, cfg := range []PipelineConfig{DefaultPipelineConfig(), CSAPipelineConfig()} {
		cfg.NumComponents = 4
		serial, traces := fitAt(t, 1, cfg)
		par, _ := fitAt(t, 4, cfg)

		if len(serial.Points) != len(par.Points) {
			t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(par.Points))
		}
		for i := range serial.Points {
			if serial.Points[i] != par.Points[i] {
				t.Fatalf("point %d differs: %+v vs %+v", i, serial.Points[i], par.Points[i])
			}
		}
		if len(serial.Pairs) != len(par.Pairs) {
			t.Fatalf("pair counts differ")
		}
		for i := range serial.Pairs {
			a, b := serial.Pairs[i], par.Pairs[i]
			if a.A != b.A || a.B != b.B || len(a.Points) != len(b.Points) {
				t.Fatalf("pair %d differs: %+v vs %+v", i, a, b)
			}
			for j := range a.Points {
				if a.Points[j] != b.Points[j] || a.KL[j] != b.KL[j] {
					t.Fatalf("pair %d point %d differs", i, j)
				}
			}
		}
		sf, err := serial.ExtractAll(traces)
		if err != nil {
			t.Fatal(err)
		}
		parallel.SetWorkers(4)
		pf, err := par.ExtractAll(traces)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sf {
			for j := range sf[i] {
				if sf[i][j] != pf[i][j] {
					t.Fatalf("feature [%d][%d] differs: %v vs %v", i, j, sf[i][j], pf[i][j])
				}
			}
		}
	}
}

// TestFitPipelineCacheEquivalence forces the chunked recompute path (cache
// budget zero) and requires it to produce the same pipeline as the cached
// one-CWT-per-trace path.
func TestFitPipelineCacheEquivalence(t *testing.T) {
	defer parallel.SetWorkers(0)
	defer func(v int) { MaxScalogramCacheBytes = v }(MaxScalogramCacheBytes)

	cfg := CSAPipelineConfig()
	cfg.NumComponents = 4
	cached, traces := fitAt(t, 4, cfg)
	MaxScalogramCacheBytes = 0
	uncached, _ := fitAt(t, 4, cfg)

	cf, err := cached.ExtractAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := uncached.ExtractAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cf {
		for j := range cf[i] {
			if cf[i][j] != uf[i][j] {
				t.Fatalf("cached/uncached feature [%d][%d] differs: %v vs %v", i, j, cf[i][j], uf[i][j])
			}
		}
	}
}

// TestExtractFromScalogramMatchesExtract checks the shared-scalogram path is
// exactly the per-call path: RawScalogram + ExtractFromScalogram == Extract,
// and likewise for pair vectors, for both normalization regimes.
func TestExtractFromScalogramMatchesExtract(t *testing.T) {
	defer parallel.SetWorkers(0)
	for _, cfg := range []PipelineConfig{DefaultPipelineConfig(), CSAPipelineConfig()} {
		cfg.NumComponents = 4
		pl, traces := fitAt(t, 1, cfg)
		for _, tr := range traces[:6] {
			want, err := pl.Extract(tr)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := pl.RawScalogram(tr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pl.ExtractFromScalogram(flat)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("ExtractFromScalogram[%d] = %v, Extract = %v", j, got[j], want[j])
				}
			}
			for p := 0; p < pl.PairCount(); p++ {
				wv, err := pl.PairVector(p, tr, 3)
				if err != nil {
					t.Fatal(err)
				}
				gv, err := pl.PairVectorFromScalogram(p, flat, 3)
				if err != nil {
					t.Fatal(err)
				}
				for j := range wv {
					if wv[j] != gv[j] {
						t.Fatalf("pair %d vector differs at %d", p, j)
					}
				}
			}
		}
		if _, err := pl.ExtractFromScalogram(make([]float64, 3)); err == nil {
			t.Fatal("wrong-size scalogram should fail")
		}
	}
}
