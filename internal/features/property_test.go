package features

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/testkit"
)

// componentsOf returns the PCA component rows as plain slices for the
// testkit Gram-matrix check.
func componentsOf(pc *PCA) [][]float64 {
	out := make([][]float64, pc.Components.Rows)
	for i := range out {
		out[i] = pc.Components.Row(i)
	}
	return out
}

// TestPCAComponentsOrthonormal pins the defining invariant of the PCA basis:
// component rows are orthonormal, i.e. their Gram matrix is the identity.
// Sizes cover both n > p and the n <= p subspace regime.
func TestPCAComponentsOrthonormal(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 12}, func(g *testkit.G) error {
		n := g.Size(3, 40)
		p := g.Size(2, 30)
		k := g.IntBetween(1, min(n, p))
		pc, err := FitPCA(g.Matrix(n, p), k)
		if err != nil {
			return err
		}
		comps := componentsOf(pc)
		gram := testkit.GramMatrix(comps)
		want := testkit.Identity(len(comps))
		for i := range gram {
			for j := range gram[i] {
				if !testkit.Close(gram[i][j], want[i][j], testkit.LinalgTol, testkit.LinalgTol) {
					return fmt.Errorf("gram[%d][%d] = %g, want %g (n=%d, p=%d, k=%d)",
						i, j, gram[i][j], want[i][j], n, p, k)
				}
			}
		}
		return nil
	})
}

// TestSelectPairSwapInvariance asserts that feature selection does not
// depend on which class of a pair is "first": swapping (a, b) and their
// stats/masks must select the identical point list. SymmetricKLGaussian is
// exactly commutative in floating point, so the equality is exact.
func TestSelectPairSwapInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sel, err := NewSelector(160)
	if err != nil {
		t.Fatal(err)
	}
	var a, b [][]float64
	for i := 0; i < 30; i++ {
		a = append(a, synthTrace(rng, 0, 0))
		b = append(b, synthTrace(rng, 1, 0))
	}
	sa, err := sel.AccumulateStats(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sel.AccumulateStats(b)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := sel.SelectPair(0, 1, sa, sb, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := sel.SelectPair(1, 0, sb, sa, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd.Points) != len(rev.Points) {
		t.Fatalf("swap changed selection size: %d vs %d", len(fwd.Points), len(rev.Points))
	}
	for i := range fwd.Points {
		if fwd.Points[i] != rev.Points[i] {
			t.Fatalf("swap changed point %d: %+v vs %+v", i, fwd.Points[i], rev.Points[i])
		}
	}
	testkit.ExactEqual(t, rev.KL, fwd.KL, "pair KL scores under swap")
}

// TestSelectPairTraceOrderInvariance asserts selection is stable under
// reordering of the profiling traces. Accumulated moments differ only in
// final-ulp rounding between orders, so the KL surface is compared at 1e-9
// and the selected points must coincide.
func TestSelectPairTraceOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sel, err := NewSelector(160)
	if err != nil {
		t.Fatal(err)
	}
	var a, b [][]float64
	for i := 0; i < 30; i++ {
		a = append(a, synthTrace(rng, 0, 0))
		b = append(b, synthTrace(rng, 1, 0))
	}
	perm := func(xs [][]float64) [][]float64 {
		out := append([][]float64(nil), xs...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	sa1, _ := sel.AccumulateStats(a)
	sb1, _ := sel.AccumulateStats(b)
	sa2, _ := sel.AccumulateStats(perm(a))
	sb2, _ := sel.AccumulateStats(perm(b))

	kl1, err := sel.BetweenClassKL(sa1, sb1)
	if err != nil {
		t.Fatal(err)
	}
	kl2, err := sel.BetweenClassKL(sa2, sb2)
	if err != nil {
		t.Fatal(err)
	}
	testkit.AllClose2D(t, kl2, kl1, 1e-9, 1e-12, "KL surface under trace reorder")

	pf1, err := sel.SelectPair(0, 1, sa1, sb1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := sel.SelectPair(0, 1, sa2, sb2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf1.Points) != len(pf2.Points) {
		t.Fatalf("trace reorder changed selection size: %d vs %d", len(pf1.Points), len(pf2.Points))
	}
	for i := range pf1.Points {
		if pf1.Points[i] != pf2.Points[i] {
			t.Fatalf("trace reorder changed point %d: %+v vs %+v", i, pf1.Points[i], pf2.Points[i])
		}
	}
}

// TestExtractAllAgreesSerialParallelRetried pins the extraction agreement
// invariant end to end: a per-trace Extract loop, ExtractAll at one worker,
// ExtractAll at several workers, and ExtractAllCtx retried after a
// cancellation must all produce bitwise-identical feature matrices.
func TestExtractAllAgreesSerialParallelRetried(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(21))
	traces, labels, programs := synthDataset(rng, 6, 3, true)
	cfg := DefaultPipelineConfig()
	cfg.NumComponents = 5
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	serial := make([][]float64, len(traces))
	for i, tr := range traces {
		f, err := pl.Extract(tr)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = f
	}

	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, err := pl.ExtractAll(traces)
		if err != nil {
			t.Fatalf("ExtractAll with %d workers: %v", workers, err)
		}
		testkit.ExactEqual2D(t, got, serial, fmt.Sprintf("ExtractAll(%d workers) vs serial Extract", workers))
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.ExtractAllCtx(cancelled, traces); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExtractAll returned %v, want context.Canceled", err)
	}
	got, err := pl.ExtractAllCtx(context.Background(), traces)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	testkit.ExactEqual2D(t, got, serial, "ExtractAll retried after cancel vs serial")
}
