package features

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"repro/internal/testkit"
)

func TestPipelineStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	traces, labels, programs := synthDataset(rng, 15, 3, false)
	cfg := CSAPipelineConfig()
	cfg.NumComponents = 3
	pl, err := FitPipeline(traces, labels, programs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pl.State()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded PipelineState
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	pl2, err := PipelineFromState(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	probe := synthTrace(rng, 1, 0)
	a, err := pl.Extract(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl2.Extract(probe)
	if err != nil {
		t.Fatal(err)
	}
	testkit.AllClose(t, b, a, 0, 1e-12, "features after state restore")
	if pl2.NumPoints() != pl.NumPoints() || pl2.PairCount() != pl.PairCount() {
		t.Fatal("metadata differs after restore")
	}
}

func TestPipelineStateValidation(t *testing.T) {
	var pl Pipeline
	if _, err := pl.State(); err == nil {
		t.Fatal("state of unfitted pipeline should fail")
	}
	if _, err := PipelineFromState(nil); err == nil {
		t.Fatal("restore of nil should fail")
	}
	if _, err := PipelineFromState(&PipelineState{}); err == nil {
		t.Fatal("restore of empty state should fail")
	}
}
