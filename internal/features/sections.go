package features

import (
	"errors"
	"fmt"

	"repro/internal/dsp"
	"repro/internal/linalg"
)

// Section codec for the flat template store (internal/store): the PCA
// projection basis is the pipeline's one big matrix — everything else in a
// PipelineState (selected points, KL pair tables, z-score moments, drift
// baseline) is small enough to live in the store's eagerly decoded header.

// Sections enumerates the pipeline snapshot's matrix payloads. On a
// stripped snapshot the entry carries shape with nil Data.
func (st *PipelineState) Sections() []linalg.Section {
	if st == nil || st.PCA == nil || st.PCA.Components == nil {
		return nil
	}
	m := st.PCA.Components
	return []linalg.Section{{Name: "pca", Rows: m.Rows, Cols: m.Cols, Data: m.Data}}
}

// Strip returns a copy of the snapshot with the PCA basis payload removed
// but its shape retained. The receiver is never mutated: snapshots alias the
// live pipeline's state.
func (st *PipelineState) Strip() *PipelineState {
	if st == nil {
		return nil
	}
	out := *st
	if st.PCA != nil {
		p := *st.PCA
		if p.Components != nil {
			p.Components = &linalg.Matrix{Rows: p.Components.Rows, Cols: p.Components.Cols}
		}
		out.PCA = &p
	}
	return &out
}

// SetSection reattaches one lazily loaded payload to a stripped snapshot.
func (st *PipelineState) SetSection(name string, rows, cols int, data []float64) error {
	if st == nil {
		return fmt.Errorf("features: no pipeline state to attach section %q to", name)
	}
	if name != "pca" {
		return fmt.Errorf("features: unknown pipeline section %q", name)
	}
	if st.PCA == nil || st.PCA.Components == nil ||
		st.PCA.Components.Rows != rows || st.PCA.Components.Cols != cols {
		return fmt.Errorf("features: section %q shape %dx%d does not match the snapshot header", name, rows, cols)
	}
	if st.PCA.Components.Data != nil {
		return fmt.Errorf("features: duplicate section %q", name)
	}
	m, err := linalg.FromData(rows, cols, data)
	if err != nil {
		return fmt.Errorf("features: section %q: %w", name, err)
	}
	st.PCA.Components = m
	return nil
}

// CheckComplete reports whether every payload slot is populated, keeping a
// partially materialized snapshot from ever reaching PipelineFromState.
func (st *PipelineState) CheckComplete() error {
	if st == nil || st.PCA == nil {
		return errors.New("features: nil pipeline state")
	}
	if st.PCA.Components == nil || st.PCA.Components.Data == nil {
		return fmt.Errorf("features: section %q not materialized", "pca")
	}
	return nil
}

// SparseTable snapshots the pipeline's sparse per-cell kernel table for
// persistence, building the evaluator if it has not run yet. Pipelines that
// cannot take the sparse path (NormScalogram) return (nil, nil): there is
// nothing to persist, not an error.
func (pl *Pipeline) SparseTable() (*dsp.SparseTable, error) {
	sp, err := pl.sparseEval()
	if errors.Is(err, ErrSparseIncapable) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return sp.Table(), nil
}

// InstallSparseTable pre-seeds the pipeline's sparse evaluator from a
// persisted kernel table, skipping the deterministic rebuild from Points.
// The table must agree with the fitted state it rides with — same bank,
// trace length, and cell set in Points order — so a template can never
// classify through kernels that belong to a different fit. Must be called
// before the first sparse extraction; a pipeline whose evaluator already
// ran keeps it (the build is deterministic, so the result is the same).
func (pl *Pipeline) InstallSparseTable(t *dsp.SparseTable) error {
	if t == nil {
		return nil
	}
	if !pl.SparseCapable() {
		return errors.New("features: sparse kernel table on a pipeline that cannot take the sparse path")
	}
	sp, err := dsp.SparseFromTable(t)
	if err != nil {
		return err
	}
	if sp.TraceLen() != pl.sel.TraceLen {
		return fmt.Errorf("features: sparse kernel table for trace length %d, pipeline expects %d", sp.TraceLen(), pl.sel.TraceLen)
	}
	if sp.Bank() != pl.sel.CWT.Bank() {
		return errors.New("features: sparse kernel table bank does not match the pipeline's wavelet bank")
	}
	cells := sp.Cells()
	if len(cells) != len(pl.Points) {
		return fmt.Errorf("features: sparse kernel table covers %d cells, pipeline selects %d points", len(cells), len(pl.Points))
	}
	for i, p := range pl.Points {
		if cells[i] != (dsp.Cell{Scale: p.Scale, Time: p.Time}) {
			return fmt.Errorf("features: sparse kernel table cell %d is (%d,%d), point is (%d,%d)",
				i, cells[i].Scale, cells[i].Time, p.Scale, p.Time)
		}
	}
	pl.sparseOnce.Do(func() { pl.sparse = sp })
	return nil
}
