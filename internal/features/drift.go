package features

import (
	"fmt"

	"repro/internal/stats"
)

// FeatureBaseline is the training-time reference distribution for covariate
// shift monitoring: per-feature mean and standard deviation of the drift
// vector (see DriftVector) over the training traces, captured at fit time
// and persisted with the template.
//
// The drift vector holds *time-domain*, class-agnostic moments — the
// per-trace mean and standard deviation — and deliberately nothing from the
// scalogram. Two reasons. First, the Morlet wavelet is (near) zero-mean, so
// a pure DC offset — half of the paper's covariate-shift scenario — almost
// vanishes in the scalogram and would be invisible to a scalogram-based
// monitor. Second, the selected DNVP points are by construction the most
// class-discriminative coordinates, so their live marginal tracks the
// monitored program's instruction mix rather than acquisition conditions:
// any fixed program would permanently read as "drifted" against the
// all-class training marginal. The trace moments are exactly the statistics
// per-trace (CSA) normalization cancels, which is the point: when they move,
// the classifier is in the regime where accuracy collapses without CSA.
// Normalization is intentionally NOT applied before measuring them.
type FeatureBaseline struct {
	Names []string
	Mean  []float64
	Std   []float64
}

// NumFeatures returns the drift-vector dimensionality (0 for nil).
func (b *FeatureBaseline) NumFeatures() int {
	if b == nil {
		return 0
	}
	return len(b.Mean)
}

// driftFeatureNames labels the drift-vector coordinates, index-aligned with
// DriftVector's output.
var driftFeatureNames = []string{"trace.mean", "trace.std"}

// buildBaseline assembles the baseline from the per-trace time-domain
// moments accumulated in FitPipeline's first pass.
func buildBaseline(traceMoments *PointStats) *FeatureBaseline {
	b := &FeatureBaseline{
		Names: driftFeatureNames,
		Mean:  make([]float64, len(driftFeatureNames)),
		Std:   make([]float64, len(driftFeatureNames)),
	}
	for i := range driftFeatureNames {
		g := traceMoments.Gaussian(i)
		b.Mean[i], b.Std[i] = g.Mean, g.StdDev
	}
	return b
}

// DriftBaseline returns the training-time drift reference, or nil when the
// pipeline was restored from a template predating drift support.
func (pl *Pipeline) DriftBaseline() *FeatureBaseline { return pl.baseline }

// DriftVector assembles the covariate-shift monitoring vector of one trace:
// [time-domain mean, time-domain std], index-aligned with DriftBaseline.
func (pl *Pipeline) DriftVector(trace []float64) ([]float64, error) {
	if len(trace) != pl.sel.TraceLen {
		return nil, fmt.Errorf("features: trace length %d, want %d", len(trace), pl.sel.TraceLen)
	}
	out := make([]float64, len(driftFeatureNames))
	out[0], out[1] = stats.TraceNormParams(trace)
	return out, nil
}
