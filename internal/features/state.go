package features

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// PipelineState is the serializable form of a fitted Pipeline: everything
// needed to rebuild the extraction chain without retraining.
type PipelineState struct {
	Cfg      PipelineConfig
	TraceLen int
	Points   []Point
	Pairs    []PairFeatures
	PairIdx  [][]int
	Z        *stats.ZScoreNormalizer // nil when standardization is off
	PCA      *PCA
	NClasses int
	// Baseline is the training-time drift reference; nil in states restored
	// from templates predating drift support (format version 1).
	Baseline *FeatureBaseline
}

// State snapshots a fitted pipeline.
func (pl *Pipeline) State() (*PipelineState, error) {
	if pl.pca == nil || pl.sel == nil {
		return nil, errors.New("features: pipeline not fitted")
	}
	return &PipelineState{
		Cfg:      pl.cfg,
		TraceLen: pl.sel.TraceLen,
		Points:   pl.Points,
		Pairs:    pl.Pairs,
		PairIdx:  pl.pairIdx,
		Z:        pl.z,
		PCA:      pl.pca,
		NClasses: pl.nClasses,
		Baseline: pl.baseline,
	}, nil
}

// PipelineFromState reconstructs a fitted pipeline. The CWT is rebuilt
// deterministically from the persisted bank configuration (states predating
// BankConfig decode to the zero value, which resolves to the paper's bank),
// so sparse inference kernels are provably built from the bank the template
// was fit with.
func PipelineFromState(st *PipelineState) (*Pipeline, error) {
	if st == nil || st.PCA == nil || len(st.Points) == 0 || st.TraceLen <= 0 {
		return nil, errors.New("features: invalid pipeline state")
	}
	// The projection applies Components·(x−Mean) without re-checking shapes,
	// so a state of uncontrolled origin (corrupted gob, a store header whose
	// sections never materialized) must be rejected here, not at Extract.
	comp := st.PCA.Components
	if comp == nil || comp.Rows < 1 || comp.Cols < 1 || len(comp.Data) != comp.Rows*comp.Cols {
		return nil, errors.New("features: invalid pipeline state: PCA basis missing or misshapen")
	}
	if len(st.PCA.Mean) != comp.Cols {
		return nil, fmt.Errorf("features: invalid pipeline state: PCA mean has %d entries for %d input dims", len(st.PCA.Mean), comp.Cols)
	}
	if st.Z != nil && len(st.Z.Means) != len(st.Z.Stds) {
		return nil, errors.New("features: invalid pipeline state: z-score moments disagree")
	}
	sel, err := NewSelectorBank(st.TraceLen, st.Cfg.Bank)
	if err != nil {
		return nil, err
	}
	sel.KLth = st.Cfg.KLth
	sel.TopPerPair = st.Cfg.TopPerPair
	return &Pipeline{
		cfg:      st.Cfg,
		sel:      sel,
		Points:   st.Points,
		Pairs:    st.Pairs,
		pairIdx:  st.PairIdx,
		z:        st.Z,
		pca:      st.PCA,
		baseline: st.Baseline,
		nClasses: st.NClasses,
	}, nil
}
