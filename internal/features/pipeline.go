package features

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// PipelineConfig controls the end-to-end feature extraction of Fig. 1:
// CWT → KL selection → normalization → PCA.
type PipelineConfig struct {
	// UseMask enables the within-class not-varying filter of Def. 3.1. The
	// paper's initial regime effectively selects the highest between-class
	// KL peaks (Fig. 3's failing "3 highest peaks" choice) because too few
	// profiling programs make the not-varying estimate unreliable; covariate
	// shift adaptation turns the reliable version of the filter on.
	UseMask bool
	// KLth is the within-class not-varying threshold (0.005 default, 0.0005
	// under covariate shift adaptation). Only meaningful with UseMask.
	KLth float64
	// TopPerPair is the DNVP count per class pair (paper: 5).
	TopPerPair int
	// NumComponents is the PCA output dimensionality.
	NumComponents int
	// PerTraceNorm standardizes each trace's CWT scalogram by its own
	// mean/std before any statistics, masks, or feature values are taken
	// from it — the covariate shift adaptation normalization. A program- or
	// device-level gain/offset moves every coefficient of a trace together,
	// so this normalization cancels it exactly; the not-varying masks are
	// then computed on shift-free data and keep the informative points.
	PerTraceNorm bool
	// Standardize applies a training-set z-score before PCA (Fig. 1's
	// normalization stage).
	Standardize bool
}

// DefaultPipelineConfig mirrors the paper's base configuration.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		KLth:          0.005,
		TopPerPair:    5,
		NumComponents: 25,
		Standardize:   true,
	}
}

// CSAPipelineConfig returns the covariate-shift-adapted configuration of
// Section 5.5: tighter KLth and per-trace normalization.
func CSAPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.UseMask = true
	cfg.KLth = 0.0005
	cfg.PerTraceNorm = true
	return cfg
}

// Pipeline converts raw traces into low-dimensional classifier inputs. It is
// fitted once on labeled training traces and then applied to any trace.
type Pipeline struct {
	cfg      PipelineConfig
	sel      *Selector
	Points   []Point // unified DNVP
	Pairs    []PairFeatures
	pairIdx  [][]int // per pair: indices of its points within Points
	z        *stats.ZScoreNormalizer
	pca      *PCA
	nClasses int
}

// FitPipeline learns the full extraction chain from labeled traces.
// programs gives the program-file ID of each trace (used for the
// within-class not-varying masks); labels must be 0..nClasses-1.
func FitPipeline(traces [][]float64, labels, programs []int, nClasses int, cfg PipelineConfig) (*Pipeline, error) {
	if len(traces) == 0 || len(traces) != len(labels) || len(traces) != len(programs) {
		return nil, errors.New("features: FitPipeline needs equal-length traces/labels/programs")
	}
	if nClasses < 2 {
		return nil, fmt.Errorf("features: FitPipeline needs >= 2 classes, got %d", nClasses)
	}
	sel, err := NewSelector(len(traces[0]))
	if err != nil {
		return nil, err
	}
	sel.KLth = cfg.KLth
	sel.TopPerPair = cfg.TopPerPair

	// Pass 1: accumulate per-class and per-(class, program) statistics.
	classStats := make([]*PointStats, nClasses)
	perProgram := make([]map[int]*PointStats, nClasses)
	for c := range classStats {
		classStats[c] = NewPointStats(sel.numPoints())
		perProgram[c] = map[int]*PointStats{}
	}
	pl := &Pipeline{cfg: cfg, sel: sel, nClasses: nClasses}
	for i, tr := range traces {
		l := labels[i]
		if l < 0 || l >= nClasses {
			return nil, fmt.Errorf("features: label %d out of range [0,%d)", l, nClasses)
		}
		flat := pl.flatScalogram(tr)
		if err := classStats[l].Add(flat); err != nil {
			return nil, err
		}
		pp := perProgram[l][programs[i]]
		if pp == nil {
			pp = NewPointStats(sel.numPoints())
			perProgram[l][programs[i]] = pp
		}
		if err := pp.Add(flat); err != nil {
			return nil, err
		}
	}
	// Not-varying masks per class (nil masks disable the filter).
	masks := make([][]bool, nClasses)
	if cfg.UseMask {
		for c := 0; c < nClasses; c++ {
			if len(perProgram[c]) >= 2 {
				m, err := sel.NotVaryingMask(perProgram[c])
				if err != nil {
					return nil, err
				}
				masks[c] = m
			}
		}
	}
	// Pairwise DNVP selection.
	var pairs []PairFeatures
	for a := 0; a < nClasses; a++ {
		for b := a + 1; b < nClasses; b++ {
			if classStats[a].N < 2 || classStats[b].N < 2 {
				return nil, fmt.Errorf("features: classes %d/%d lack traces", a, b)
			}
			pf, err := sel.SelectPair(a, b, classStats[a], classStats[b], masks[a], masks[b])
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, pf)
		}
	}
	points := UnionPoints(pairs)
	pos := map[Point]int{}
	for i, p := range points {
		pos[p] = i
	}
	pairIdx := make([][]int, len(pairs))
	for i, pf := range pairs {
		idx := make([]int, len(pf.Points))
		for j, p := range pf.Points {
			idx[j] = pos[p]
		}
		pairIdx[i] = idx
	}
	pl.Points, pl.Pairs, pl.pairIdx = points, pairs, pairIdx

	// Pass 2: extract training features and fit normalizer + PCA.
	feats := make([][]float64, len(traces))
	for i, tr := range traces {
		f, err := pl.rawFeatures(tr)
		if err != nil {
			return nil, err
		}
		feats[i] = f
	}
	if cfg.Standardize {
		z := &stats.ZScoreNormalizer{}
		if err := z.Fit(feats); err != nil {
			return nil, err
		}
		pl.z = z
		if feats, err = z.ApplyAll(feats); err != nil {
			return nil, err
		}
	}
	k := cfg.NumComponents
	if k < 1 {
		k = len(points)
	}
	pca, err := FitPCA(feats, k)
	if err != nil {
		return nil, err
	}
	pl.pca = pca
	return pl, nil
}

// flatScalogram computes the flattened CWT scalogram of a trace, per-trace
// normalized when the pipeline runs in CSA mode.
func (pl *Pipeline) flatScalogram(trace []float64) []float64 {
	flat := pl.sel.CWT.TransformFlat(trace)
	if pl.cfg.PerTraceNorm {
		flat = stats.NormalizeTrace(flat)
	}
	return flat
}

// rawFeatures extracts the unified DNVP values from the (possibly
// normalized) scalogram, before standardization/PCA.
func (pl *Pipeline) rawFeatures(trace []float64) ([]float64, error) {
	if len(trace) != pl.sel.TraceLen {
		return nil, fmt.Errorf("features: trace length %d, want %d", len(trace), pl.sel.TraceLen)
	}
	flat := pl.flatScalogram(trace)
	out := make([]float64, len(pl.Points))
	for i, p := range pl.Points {
		out[i] = flat[pl.sel.flatIndex(p)]
	}
	return out, nil
}

// Extract maps one trace to its final classifier input.
func (pl *Pipeline) Extract(trace []float64) ([]float64, error) {
	f, err := pl.rawFeatures(trace)
	if err != nil {
		return nil, err
	}
	if pl.z != nil {
		if f, err = pl.z.Apply(f); err != nil {
			return nil, err
		}
	}
	return pl.pca.Transform(f)
}

// ExtractAll maps a batch of traces.
func (pl *Pipeline) ExtractAll(traces [][]float64) ([][]float64, error) {
	out := make([][]float64, len(traces))
	for i, tr := range traces {
		f, err := pl.Extract(tr)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// NumFeatures returns the dimensionality Extract produces.
func (pl *Pipeline) NumFeatures() int { return pl.pca.NumComponents() }

// NumPoints returns the size of the unified DNVP set (the paper reports 205
// for group 1: a 98.7 % reduction from 15 750).
func (pl *Pipeline) NumPoints() int { return len(pl.Points) }

// NumClasses returns the class count the pipeline was fitted for.
func (pl *Pipeline) NumClasses() int { return pl.nClasses }

// PairCount returns the number of class pairs.
func (pl *Pipeline) PairCount() int { return len(pl.Pairs) }

// PairVector slices a pair-specific feature vector (the paper's x_{i,j} for
// majority voting) out of the unified raw feature vector of a trace.
// maxVars truncates to the strongest maxVars points (0 = all).
func (pl *Pipeline) PairVector(pair int, trace []float64, maxVars int) ([]float64, error) {
	if pair < 0 || pair >= len(pl.Pairs) {
		return nil, fmt.Errorf("features: pair %d out of range", pair)
	}
	f, err := pl.rawFeatures(trace)
	if err != nil {
		return nil, err
	}
	idx := pl.pairIdx[pair]
	if maxVars > 0 && maxVars < len(idx) {
		idx = idx[:maxVars]
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = f[j]
	}
	return out, nil
}

// PairLabels returns the class labels of pair index i.
func (pl *Pipeline) PairLabels(pair int) (a, b int) {
	return pl.Pairs[pair].A, pl.Pairs[pair].B
}

// Config returns the pipeline's configuration.
func (pl *Pipeline) Config() PipelineConfig { return pl.cfg }
