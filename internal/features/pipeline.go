package features

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsp"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// featMetrics holds the feature-layer instrument handles; the handles are
// nil (no-op) under a nil registry. The live set is swapped atomically by
// the OnDefault hook so obs.SetDefault can rebind mid-pipeline.
type featMetrics struct {
	cacheHits   *obs.Counter   // features.scalogram_cache.hits — pass-2 reuses
	cacheMisses *obs.Counter   // features.scalogram_cache.misses — pass-2 recomputes
	maskSkipped *obs.Counter   // features.mask.skipped — non-finite NVP points dropped
	pointsKept  *obs.Counter   // features.points.selected — unified DNVP sizes
	pairSeconds *obs.Histogram // features.select_pair.seconds — per-pair KL selection
	fitSeconds  *obs.Histogram // features.fit.seconds — whole FitPipeline calls
}

var metPtr atomic.Pointer[featMetrics]

// met returns the current handle set; never nil.
func met() *featMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &featMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		metPtr.Store(&featMetrics{
			cacheHits:   r.Counter("features.scalogram_cache.hits"),
			cacheMisses: r.Counter("features.scalogram_cache.misses"),
			maskSkipped: r.Counter("features.mask.skipped"),
			pointsKept:  r.Counter("features.points.selected"),
			pairSeconds: r.Histogram("features.select_pair.seconds"),
			fitSeconds:  r.Histogram("features.fit.seconds"),
		})
	})
}

// NormMode selects how PerTraceNorm is applied.
type NormMode int

const (
	// NormScalogram is the legacy covariate-shift normalization: the
	// scalogram plane is standardized by its own mean/std. Because the
	// moments are taken over all Scales×TraceLen cells, this mode requires
	// the full CWT at inference — templates fitted with it cannot use the
	// sparse path. The zero value, so states persisted before NormMode
	// existed keep their exact numerics.
	NormScalogram NormMode = iota
	// NormTrace standardizes the trace in the time domain *before* the CWT.
	// The CWT is linear, so a per-trace gain/offset is cancelled exactly —
	// same covariate-shift rationale as NormScalogram — while the
	// normalization cost is O(TraceLen) and independent of the scalogram,
	// which is what makes sparse per-cell inference possible.
	NormTrace
)

// PipelineConfig controls the end-to-end feature extraction of Fig. 1:
// CWT → KL selection → normalization → PCA.
type PipelineConfig struct {
	// UseMask enables the within-class not-varying filter of Def. 3.1. The
	// paper's initial regime effectively selects the highest between-class
	// KL peaks (Fig. 3's failing "3 highest peaks" choice) because too few
	// profiling programs make the not-varying estimate unreliable; covariate
	// shift adaptation turns the reliable version of the filter on.
	UseMask bool
	// KLth is the within-class not-varying threshold (0.005 default, 0.0005
	// under covariate shift adaptation). Only meaningful with UseMask.
	KLth float64
	// TopPerPair is the DNVP count per class pair (paper: 5).
	TopPerPair int
	// NumComponents is the PCA output dimensionality.
	NumComponents int
	// PerTraceNorm standardizes each trace's CWT scalogram by its own
	// mean/std before any statistics, masks, or feature values are taken
	// from it — the covariate shift adaptation normalization. A program- or
	// device-level gain/offset moves every coefficient of a trace together,
	// so this normalization cancels it exactly; the not-varying masks are
	// then computed on shift-free data and keep the informative points.
	PerTraceNorm bool
	// NormMode picks the PerTraceNorm mechanism (scalogram-plane vs
	// time-domain); ignored when PerTraceNorm is off. See NormScalogram /
	// NormTrace.
	NormMode NormMode
	// Standardize applies a training-set z-score before PCA (Fig. 1's
	// normalization stage).
	Standardize bool
	// Bank names the mother-wavelet bank (scale count/range, Morlet center
	// frequency). The zero value is the paper's bank (dsp.DefaultBank), which
	// is also what configurations persisted before BankConfig existed decode
	// to. Persisted with the template so sparse kernels are provably rebuilt
	// from the bank the template was fit with.
	Bank dsp.BankConfig
}

// DefaultPipelineConfig mirrors the paper's base configuration.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		KLth:          0.005,
		TopPerPair:    5,
		NumComponents: 25,
		Standardize:   true,
	}
}

// CSAPipelineConfig returns the covariate-shift-adapted configuration of
// Section 5.5: tighter KLth and per-trace normalization. Since the sparse
// inference work the normalization is NormTrace (time-domain) — it cancels a
// per-trace gain/offset exactly like the plane normalization did, and keeps
// the fitted template eligible for sparse per-cell inference. Templates
// trained by older builds carry NormScalogram and keep their numerics (and
// the full CWT path).
func CSAPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.UseMask = true
	cfg.KLth = 0.0005
	cfg.PerTraceNorm = true
	cfg.NormMode = NormTrace
	return cfg
}

// MaxScalogramCacheBytes bounds the memory FitPipeline may spend retaining
// per-trace scalograms between its statistics pass and its feature pass.
// Below the bound each training trace costs exactly one CWT; above it the
// feature pass recomputes scalograms (in parallel) instead of caching them.
// It is a variable so tests can force the recompute path.
var MaxScalogramCacheBytes = 512 << 20

// Pipeline converts raw traces into low-dimensional classifier inputs. It is
// fitted once on labeled training traces and then applied to any trace.
//
// Concurrency: a fitted Pipeline is immutable, so Extract, ExtractAll,
// ExtractFromScalogram, PairVector and friends are safe for concurrent use.
// FitPipeline itself parallelizes its CWT, pairwise-selection and feature
// passes over the parallel.Workers() pool; its result is identical (bitwise)
// to a single-worker run because every parallel loop writes index-owned
// slots and all reductions happen serially in index order.
type Pipeline struct {
	cfg      PipelineConfig
	sel      *Selector
	Points   []Point // unified DNVP
	Pairs    []PairFeatures
	pairIdx  [][]int // per pair: indices of its points within Points
	z        *stats.ZScoreNormalizer
	pca      *PCA
	baseline *FeatureBaseline
	nClasses int
	// sparse is the lazily built per-cell evaluator over Points (see
	// ExtractSparse); guarded by sparseOnce so the fitted pipeline stays
	// immutable-after-first-build and concurrency-safe.
	sparseOnce sync.Once
	sparse     *dsp.SparseCWT
	sparseErr  error
	// MaskSkipped counts time–frequency points dropped from the not-varying
	// masks because their within-class divergence was non-finite (see
	// Selector.NotVaryingMask). Zero on healthy data.
	MaskSkipped int
}

// FitPipeline learns the full extraction chain from labeled traces.
// programs gives the program-file ID of each trace (used for the
// within-class not-varying masks); labels must be 0..nClasses-1.
//
// Each training trace is transformed exactly once: the scalogram feeds the
// statistics pass and is cached (bounded by MaxScalogramCacheBytes) for the
// feature pass. The CWT, the O(nClasses²) pairwise DNVP selection and the
// feature pass all run on the parallel.Workers() pool.
func FitPipeline(traces [][]float64, labels, programs []int, nClasses int, cfg PipelineConfig) (*Pipeline, error) {
	return FitPipelineCtx(context.Background(), traces, labels, programs, nClasses, cfg)
}

// FitPipelineCtx is FitPipeline with cooperative cancellation: between every
// chunk of CWT work, every mask, every selection pair and every feature
// extraction, ctx is consulted and a cancelled context surfaces promptly as
// ctx.Err() (workers already running finish their current trace first). The
// fitted result is unaffected by cancellation timing — a non-nil Pipeline is
// only returned when every stage completed.
func FitPipelineCtx(ctx context.Context, traces [][]float64, labels, programs []int, nClasses int, cfg PipelineConfig) (*Pipeline, error) {
	if len(traces) == 0 || len(traces) != len(labels) || len(traces) != len(programs) {
		return nil, errors.New("features: FitPipeline needs equal-length traces/labels/programs")
	}
	if nClasses < 2 {
		return nil, fmt.Errorf("features: FitPipeline needs >= 2 classes, got %d", nClasses)
	}
	sel, err := NewSelectorBank(len(traces[0]), cfg.Bank)
	if err != nil {
		return nil, err
	}
	sel.KLth = cfg.KLth
	sel.TopPerPair = cfg.TopPerPair
	for _, l := range labels {
		if l < 0 || l >= nClasses {
			return nil, fmt.Errorf("features: label %d out of range [0,%d)", l, nClasses)
		}
	}
	fitStart := time.Now()
	ctx, fitSpan := obs.Span(ctx, "features.fit")
	defer fitSpan.End()

	// Pass 1: accumulate per-class and per-(class, program) statistics.
	// Scalograms are computed in parallel (chunked to bound peak memory) and
	// accumulated serially in trace order, so the statistics are independent
	// of the worker count. When the whole set fits the cache budget, the
	// chunk is the full set and pass 2 reuses the scalograms — one CWT per
	// training trace total.
	classStats := make([]*PointStats, nClasses)
	perProgram := make([]map[int]*PointStats, nClasses)
	for c := range classStats {
		classStats[c] = NewPointStats(sel.numPoints())
		perProgram[c] = map[int]*PointStats{}
	}
	// Drift-baseline accumulator: per-trace time-domain mean/std, measured
	// before any normalization — it feeds the covariate-shift baseline
	// stored with the fitted pipeline.
	traceMoments := NewPointStats(len(driftFeatureNames))
	pl := &Pipeline{cfg: cfg, sel: sel, nClasses: nClasses}
	n := len(traces)
	// In NormTrace mode the covariate-shift normalization happens in the time
	// domain, before any CWT: the statistics, masks and selection all see
	// scalograms of standardized traces. The caller's traces are never
	// mutated; the drift baseline below still reads the raw traces.
	input := traces
	if pl.needsTraceNorm() {
		input = make([][]float64, n)
		parallel.For(n, func(k int) {
			input[k] = stats.NormalizeTrace(traces[k])
		})
	}
	useCache := n*sel.numPoints()*8 <= MaxScalogramCacheBytes
	chunk := n
	if !useCache {
		if chunk = 8 * parallel.Workers(); chunk > n {
			chunk = n
		}
	}
	var flats [][]float64
	if useCache {
		flats = make([][]float64, n)
	}
	statsCtx, statsSpan := obs.Span(ctx, "features.cwt_stats")
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sub, err := sel.CWT.TransformFlatBatchCtx(statsCtx, input[lo:hi])
		if err != nil {
			statsSpan.End()
			return nil, err
		}
		// Accumulate the drift baseline from the un-normalized traces — the
		// monitor must see the moments CSA would cancel.
		for k := lo; k < hi; k++ {
			m, sd := stats.TraceNormParams(traces[k])
			if err := traceMoments.Add([]float64{m, sd}); err != nil {
				statsSpan.End()
				return nil, err
			}
		}
		if cfg.PerTraceNorm && cfg.NormMode == NormScalogram {
			parallel.For(len(sub), func(k int) {
				stats.NormalizeTraceInto(sub[k], sub[k])
			})
		}
		for i := lo; i < hi; i++ {
			flat := sub[i-lo]
			l := labels[i]
			if err := classStats[l].Add(flat); err != nil {
				return nil, err
			}
			pp := perProgram[l][programs[i]]
			if pp == nil {
				pp = NewPointStats(sel.numPoints())
				perProgram[l][programs[i]] = pp
			}
			if err := pp.Add(flat); err != nil {
				return nil, err
			}
			if useCache {
				flats[i] = flat
			}
		}
	}
	statsSpan.End()
	// Not-varying masks per class (nil masks disable the filter).
	masks := make([][]bool, nClasses)
	if cfg.UseMask {
		_, maskSpan := obs.Span(ctx, "features.masks")
		for c := 0; c < nClasses; c++ {
			if err := ctx.Err(); err != nil {
				maskSpan.End()
				return nil, err
			}
			if len(perProgram[c]) >= 2 {
				m, skipped, err := sel.NotVaryingMask(perProgram[c])
				if err != nil {
					maskSpan.End()
					return nil, fmt.Errorf("features: not-varying mask for class %d: %w", c, err)
				}
				pl.MaskSkipped += skipped
				masks[c] = m
			}
		}
		maskSpan.End()
		met().maskSkipped.Add(int64(pl.MaskSkipped))
	}
	// Pairwise DNVP selection, parallel over the O(nClasses²) class pairs.
	// Each pair writes its own slot; the union below walks the slots in the
	// serial (a, b) order, so the unified point set is order-independent.
	type pairJob struct{ a, b int }
	var jobs []pairJob
	for a := 0; a < nClasses; a++ {
		for b := a + 1; b < nClasses; b++ {
			if classStats[a].N < 2 || classStats[b].N < 2 {
				return nil, fmt.Errorf("features: classes %d/%d lack traces", a, b)
			}
			jobs = append(jobs, pairJob{a, b})
		}
	}
	pairs := make([]PairFeatures, len(jobs))
	selCtx, selSpan := obs.Span(ctx, "features.select_pairs")
	if err := parallel.ForErrCtx(selCtx, len(jobs), func(i int) error {
		j := jobs[i]
		start := timeIfEnabled(met().pairSeconds)
		pf, err := sel.SelectPair(j.a, j.b, classStats[j.a], classStats[j.b], masks[j.a], masks[j.b])
		observeSince(met().pairSeconds, start)
		if err != nil {
			return err
		}
		pairs[i] = pf
		return nil
	}); err != nil {
		selSpan.End()
		return nil, err
	}
	selSpan.End()
	points := UnionPoints(pairs)
	met().pointsKept.Add(int64(len(points)))
	pos := map[Point]int{}
	for i, p := range points {
		pos[p] = i
	}
	pairIdx := make([][]int, len(pairs))
	for i, pf := range pairs {
		idx := make([]int, len(pf.Points))
		for j, p := range pf.Points {
			idx[j] = pos[p]
		}
		pairIdx[i] = idx
	}
	pl.Points, pl.Pairs, pl.pairIdx = points, pairs, pairIdx
	pl.baseline = buildBaseline(traceMoments)

	// Pass 2: extract training features and fit normalizer + PCA. Cached
	// scalograms are already normalized, so this pass is pure indexing;
	// without the cache the scalograms are recomputed in parallel.
	feats := make([][]float64, n)
	extCtx, extSpan := obs.Span(ctx, "features.extract")
	if useCache {
		met().cacheHits.Add(int64(n))
		if err := parallel.ForCtx(extCtx, n, func(i int) {
			feats[i] = pl.pointsFromNormalized(flats[i])
		}); err != nil {
			extSpan.End()
			return nil, err
		}
	} else {
		met().cacheMisses.Add(int64(n))
		if err := parallel.ForErrCtx(extCtx, n, func(i int) error {
			f, err := pl.rawFeatures(traces[i])
			if err != nil {
				return err
			}
			feats[i] = f
			return nil
		}); err != nil {
			extSpan.End()
			return nil, err
		}
	}
	extSpan.End()
	_, pcaSpan := obs.Span(ctx, "features.pca")
	if cfg.Standardize {
		z := &stats.ZScoreNormalizer{}
		if err := z.Fit(feats); err != nil {
			pcaSpan.End()
			return nil, err
		}
		pl.z = z
		if feats, err = z.ApplyAll(feats); err != nil {
			pcaSpan.End()
			return nil, err
		}
	}
	k := cfg.NumComponents
	if k < 1 {
		k = len(points)
	}
	pca, err := FitPCA(feats, k)
	pcaSpan.End()
	if err != nil {
		return nil, err
	}
	pl.pca = pca
	observeSince(met().fitSeconds, fitStart)
	return pl, nil
}

// timeIfEnabled returns the current time when h is live, or the zero time
// when metrics are disabled — paired with observeSince so the disabled path
// skips the clock reads entirely.
func timeIfEnabled(h *obs.Histogram) time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSince records the seconds elapsed since start into h; no-op when
// metrics are disabled or start is the zero time.
func observeSince(h *obs.Histogram, start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// needsTraceNorm reports whether this pipeline standardizes the trace in the
// time domain before the CWT (NormTrace covariate-shift adaptation).
func (pl *Pipeline) needsTraceNorm() bool {
	return pl.cfg.PerTraceNorm && pl.cfg.NormMode == NormTrace
}

// RawScalogram computes the flattened CWT scalogram of a trace — the shared
// representation every hierarchy level of a Disassembler extracts from. Pass
// it to ExtractFromScalogram / PairVectorFromScalogram of any pipeline fitted
// for the same trace length, bank and NormMode. In NormScalogram mode the
// plane is un-normalized (the consuming pipeline applies CSA on the fly, so
// differently configured pipelines can share one scalogram); in NormTrace
// mode the trace is standardized first — the CWT magnitude is not linear in
// the trace's affine parameters, so the normalization cannot be deferred past
// the transform.
func (pl *Pipeline) RawScalogram(trace []float64) ([]float64, error) {
	if len(trace) != pl.sel.TraceLen {
		return nil, fmt.Errorf("features: trace length %d, want %d", len(trace), pl.sel.TraceLen)
	}
	if pl.needsTraceNorm() {
		return pl.sel.CWT.TransformFlat(stats.NormalizeTrace(trace)), nil
	}
	return pl.sel.CWT.TransformFlat(trace), nil
}

// pointsFromNormalized reads the unified DNVP values out of a scalogram that
// already carries the pipeline's per-trace normalization (fit-time cache).
func (pl *Pipeline) pointsFromNormalized(flat []float64) []float64 {
	out := make([]float64, len(pl.Points))
	for i, p := range pl.Points {
		out[i] = flat[pl.sel.flatIndex(p)]
	}
	return out
}

// rawFeaturesFromScalogram extracts the unified DNVP values from a scalogram
// produced by RawScalogram. In NormScalogram mode the per-trace normalization
// is applied on the fly — (v − mean)/std over the full plane, evaluated only
// at the selected points, bit-identical to normalizing the whole plane first.
// In NormTrace mode the normalization already happened in the time domain, so
// the points are read directly.
func (pl *Pipeline) rawFeaturesFromScalogram(flat []float64) ([]float64, error) {
	if len(flat) != pl.sel.numPoints() {
		return nil, fmt.Errorf("features: scalogram length %d, want %d", len(flat), pl.sel.numPoints())
	}
	out := make([]float64, len(pl.Points))
	if pl.cfg.PerTraceNorm && pl.cfg.NormMode == NormScalogram {
		m, sd := stats.TraceNormParams(flat)
		for i, p := range pl.Points {
			out[i] = (flat[pl.sel.flatIndex(p)] - m) / sd
		}
		return out, nil
	}
	for i, p := range pl.Points {
		out[i] = flat[pl.sel.flatIndex(p)]
	}
	return out, nil
}

// rawFeatures extracts the unified DNVP values of one trace (one CWT).
func (pl *Pipeline) rawFeatures(trace []float64) ([]float64, error) {
	flat, err := pl.RawScalogram(trace)
	if err != nil {
		return nil, err
	}
	return pl.rawFeaturesFromScalogram(flat)
}

// finishFeatures applies the fitted z-score and PCA stages to a raw feature
// vector.
func (pl *Pipeline) finishFeatures(f []float64) ([]float64, error) {
	if pl.z != nil {
		var err error
		if f, err = pl.z.Apply(f); err != nil {
			return nil, err
		}
	}
	return pl.pca.Transform(f)
}

// Extract maps one trace to its final classifier input.
func (pl *Pipeline) Extract(trace []float64) ([]float64, error) {
	f, err := pl.rawFeatures(trace)
	if err != nil {
		return nil, err
	}
	return pl.finishFeatures(f)
}

// ExtractFromScalogram maps a precomputed raw scalogram (see RawScalogram)
// to the final classifier input without re-running the CWT. This is the
// zero-redundancy path the hierarchical Disassembler classifies through:
// one scalogram per trace, shared by the group, instruction, Rd and Rr
// pipelines.
func (pl *Pipeline) ExtractFromScalogram(flat []float64) ([]float64, error) {
	f, err := pl.rawFeaturesFromScalogram(flat)
	if err != nil {
		return nil, err
	}
	return pl.finishFeatures(f)
}

// ExtractAll maps a batch of traces, parallelized over the
// parallel.Workers() pool. The result is index-aligned with traces and
// identical to serial per-trace Extract calls.
func (pl *Pipeline) ExtractAll(traces [][]float64) ([][]float64, error) {
	return pl.ExtractAllCtx(context.Background(), traces)
}

// ExtractAllCtx is ExtractAll with cooperative cancellation.
func (pl *Pipeline) ExtractAllCtx(ctx context.Context, traces [][]float64) ([][]float64, error) {
	out := make([][]float64, len(traces))
	if err := parallel.ForErrCtx(ctx, len(traces), func(i int) error {
		f, err := pl.Extract(traces[i])
		if err != nil {
			return err
		}
		out[i] = f
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// NumFeatures returns the dimensionality Extract produces.
func (pl *Pipeline) NumFeatures() int { return pl.pca.NumComponents() }

// NumPoints returns the size of the unified DNVP set (the paper reports 205
// for group 1: a 98.7 % reduction from 15 750).
func (pl *Pipeline) NumPoints() int { return len(pl.Points) }

// NumClasses returns the class count the pipeline was fitted for.
func (pl *Pipeline) NumClasses() int { return pl.nClasses }

// TraceLen returns the trace length the pipeline was fitted for.
func (pl *Pipeline) TraceLen() int { return pl.sel.TraceLen }

// PairCount returns the number of class pairs.
func (pl *Pipeline) PairCount() int { return len(pl.Pairs) }

// PairVector slices a pair-specific feature vector (the paper's x_{i,j} for
// majority voting) out of the unified raw feature vector of a trace.
// maxVars truncates to the strongest maxVars points (0 = all).
func (pl *Pipeline) PairVector(pair int, trace []float64, maxVars int) ([]float64, error) {
	flat, err := pl.RawScalogram(trace)
	if err != nil {
		return nil, err
	}
	return pl.PairVectorFromScalogram(pair, flat, maxVars)
}

// PairVectorFromScalogram is PairVector against a precomputed raw scalogram,
// so a trace voted on by many pair classifiers costs one CWT instead of one
// per pair.
func (pl *Pipeline) PairVectorFromScalogram(pair int, flat []float64, maxVars int) ([]float64, error) {
	if pair < 0 || pair >= len(pl.Pairs) {
		return nil, fmt.Errorf("features: pair %d out of range", pair)
	}
	f, err := pl.rawFeaturesFromScalogram(flat)
	if err != nil {
		return nil, err
	}
	idx := pl.pairIdx[pair]
	if maxVars > 0 && maxVars < len(idx) {
		idx = idx[:maxVars]
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = f[j]
	}
	return out, nil
}

// PairLabels returns the class labels of pair index i.
func (pl *Pipeline) PairLabels(pair int) (a, b int) {
	return pl.Pairs[pair].A, pl.Pairs[pair].B
}

// Config returns the pipeline's configuration.
func (pl *Pipeline) Config() PipelineConfig { return pl.cfg }
