package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/avr"
	"repro/internal/ml"
	"repro/internal/power"
)

// smallConfig keeps the end-to-end tests fast.
func smallConfig() TrainerConfig {
	cfg := DefaultTrainerConfig()
	cfg.Programs = 4
	cfg.TracesPerProgram = 20
	cfg.RegisterPrograms = 0
	cfg.RegisterTracesPerProgram = 0
	return cfg
}

func TestTrainSubsetEndToEnd(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADD, avr.OpAND, avr.OpLDI, avr.OpSEC}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	// Classify fresh traces from an unseen program environment; the CSA
	// pipeline should carry the templates over.
	camp, err := power.NewCampaign(cfg.Power, 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prog := power.NewProgramEnv(cfg.Power, 999, 7)
	hit, total := 0, 0
	for _, cl := range classes {
		stream := make([]avr.Instruction, 15)
		for i := range stream {
			stream[i] = avr.RandomOperands(rng, cl)
		}
		traces, err := camp.AcquireSegments(rng, prog, stream)
		if err != nil {
			t.Fatal(err)
		}
		decs, err := d.Disassemble(traces)
		if err != nil {
			t.Fatal(err)
		}
		for _, dec := range decs {
			total++
			if dec.Class == cl {
				hit++
			}
			if dec.Group != cl.Group() && dec.Class == cl {
				t.Fatalf("class %v reported with group %v", dec.Class, dec.Group)
			}
		}
	}
	if acc := float64(hit) / float64(total); acc < 0.80 {
		t.Fatalf("subset disassembler accuracy %.3f, want >= 0.80", acc)
	}
	// Register fields must be absent without register templates.
	tr, _ := camp.AcquireSegments(rng, prog, []avr.Instruction{{Class: avr.OpADD, Rd: 1, Rr: 2}})
	dec, err := d.Classify(tr[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.HasRd || dec.HasRr {
		t.Fatal("register recovery should be disabled")
	}
}

func TestTrainSubsetValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := TrainSubset(cfg, nil, false); err == nil {
		t.Fatal("empty class list should fail")
	}
	bad := cfg
	bad.Programs = 0
	if _, err := TrainSubset(bad, []avr.Class{avr.OpADD, avr.OpAND}, false); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, _, err := Train(bad); err == nil {
		t.Fatal("invalid config should fail Train too")
	}
}

func TestMalwareDetectionEndToEnd(t *testing.T) {
	// The §5.7 case study at test scale: golden masked-AES snippet vs a
	// malicious variant with the mask register swapped to r0 (zero).
	cfg := smallConfig()
	cfg.RegisterPrograms = 5
	cfg.RegisterTracesPerProgram = 20
	classes := []avr.Class{avr.OpEOR, avr.OpMOV}
	d, err := TrainSubset(cfg, classes, true)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := avr.AssembleProgram(`
		MOV r18, r17 ; stash the mask
		EOR r16, r17 ; mask the AES subkey
	`)
	if err != nil {
		t.Fatal(err)
	}
	evil, err := avr.AssembleProgram(`
		MOV r18, r17
		EOR r16, r0 ; malware: mask with the zero register
	`)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := power.NewCampaign(cfg.Power, 0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	prog := power.NewProgramEnv(cfg.Power, 4242, 3)

	// Majority-vote fusion across repeated runs mirrors real-time monitoring
	// of a loop: single-trace misreads cancel out.
	detect := func(stream []avr.Instruction) []FlowMismatch {
		var runs [][]Decoded
		for run := 0; run < 9; run++ {
			traces, err := camp.AcquireSegments(rng, prog, stream)
			if err != nil {
				t.Fatal(err)
			}
			decs, err := d.Disassemble(traces)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, decs)
		}
		fused, err := MajorityDecode(runs)
		if err != nil {
			t.Fatal(err)
		}
		return CompareFlow(golden, fused)
	}
	cleanMM := detect(golden)
	evilMM := detect(evil)
	if len(evilMM) == 0 {
		t.Fatal("register-swap malware not detected")
	}
	// The attack signature — a source-register mismatch on the masking EOR —
	// must appear for the malicious stream and not for the clean one.
	hasRrAt1 := func(mm []FlowMismatch) bool {
		for _, m := range mm {
			if m.Index == 1 && m.Field == "Rr" {
				return true
			}
		}
		return false
	}
	if !hasRrAt1(evilMM) {
		t.Fatalf("expected Rr mismatch at instruction 1, got %v", evilMM)
	}
	if hasRrAt1(cleanMM) {
		t.Fatalf("clean stream raised a spurious Rr alarm: %v", cleanMM)
	}
}

// tinyConfig is an even smaller configuration for the robustness tests.
func tinyConfig() TrainerConfig {
	cfg := DefaultTrainerConfig()
	cfg.Programs = 2
	cfg.TracesPerProgram = 8
	cfg.RegisterPrograms = 0
	cfg.RegisterTracesPerProgram = 0
	return cfg
}

// assertFiniteValue walks v recursively and fails the test on any NaN/±Inf
// float64, reporting the path to the offending field.
func assertFiniteValue(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("non-finite value %v at %s", f, path)
		}
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			assertFiniteValue(t, path, v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				assertFiniteValue(t, path+"."+v.Type().Field(i).Name, v.Field(i))
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertFiniteValue(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
		}
	case reflect.Map:
		for _, k := range v.MapKeys() {
			assertFiniteValue(t, fmt.Sprintf("%s[%v]", path, k), v.MapIndex(k))
		}
	}
}

// Acceptance: a dataset contaminated with NaN, constant and wrong-length
// traces still fits — the defective traces are rejected per-trace with their
// counts reported — and no NaN reaches the trained pipeline state or
// classifier parameters.
func TestFitLevelToleratesDefectiveTraces(t *testing.T) {
	cfg := tinyConfig()
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := camp.CollectClasses([]avr.Class{avr.OpADC, avr.OpAND}, cfg.Programs, cfg.TracesPerProgram)
	if err != nil {
		t.Fatal(err)
	}
	clean := ds.Len()

	// Poison the dataset with one defect of each kind.
	nanTrace := make([]float64, cfg.Power.TraceLen)
	for i := range nanTrace {
		nanTrace[i] = float64(i)
	}
	nanTrace[17] = math.NaN()
	ds.Append(nanTrace, 0, 0)
	constTrace := make([]float64, cfg.Power.TraceLen)
	for i := range constTrace {
		constTrace[i] = 2.5
	}
	ds.Append(constTrace, 1, 1)
	ds.Append([]float64{1, 2, 3}, 0, 0)

	res, err := fitLevel(context.Background(), "test", ds, 2, cfg)
	if err != nil {
		t.Fatalf("fitLevel on poisoned dataset: %v", err)
	}
	lvl, acc, vrep := res.level, res.acc, res.vrep
	if vrep.Checked != clean+3 || vrep.NonFinite != 1 || vrep.Constant != 1 || vrep.WrongLength != 1 {
		t.Fatalf("validation report = %+v, want 3 rejections across kinds", vrep)
	}
	if acc <= 0.5 {
		t.Fatalf("train accuracy %g suspiciously low after sanitization", acc)
	}
	if len(res.conf) != 2 {
		t.Fatalf("confusion matrix has %d rows, want 2", len(res.conf))
	}

	// No NaN anywhere in the persisted pipeline or classifier state.
	ps, err := lvl.pipe.State()
	if err != nil {
		t.Fatal(err)
	}
	assertFiniteValue(t, "PipelineState", reflect.ValueOf(ps))
	cs, err := ml.SnapshotClassifier(lvl.clf)
	if err != nil {
		t.Fatal(err)
	}
	assertFiniteValue(t, "ClassifierState", reflect.ValueOf(cs))
}

// Cancelling mid-train returns context.Canceled without deadlock (the test
// binary runs under -race in CI's race job, covering the acceptance bar).
func TestTrainCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	_, _, err := TrainCtx(ctx, tinyConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx err = %v, want context.Canceled", err)
	}

	preCtx, preCancel := context.WithCancel(context.Background())
	preCancel()
	start := time.Now()
	if _, err := TrainSubsetCtx(preCtx, tinyConfig(), []avr.Class{avr.OpADC, avr.OpAND}, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainSubsetCtx err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled TrainSubsetCtx took %v", elapsed)
	}
}

// Classification robustness: defective traces are rejected with the power
// package's typed sentinels, Disassemble reports the decoded prefix plus the
// failing index, and DisassembleCtx honors cancellation.
func TestClassifyRejectsDefectiveTraces(t *testing.T) {
	cfg := tinyConfig()
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}

	nanTrace := make([]float64, cfg.Power.TraceLen)
	nanTrace[3] = math.NaN()
	if _, err := d.Classify(nanTrace); !errors.Is(err, power.ErrNonFiniteTrace) {
		t.Fatalf("NaN trace err = %v, want power.ErrNonFiniteTrace", err)
	}
	if _, err := d.Classify([]float64{1, 2, 3}); !errors.Is(err, power.ErrTraceLength) {
		t.Fatalf("short trace err = %v, want power.ErrTraceLength", err)
	}
	flat := make([]float64, cfg.Power.TraceLen)
	if _, err := d.Classify(flat); !errors.Is(err, power.ErrConstantTrace) {
		t.Fatalf("constant trace err = %v, want power.ErrConstantTrace", err)
	}

	// Acquire two good traces and splice a bad one between them.
	camp, err := power.NewCampaign(cfg.Power, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	prog := power.NewProgramEnv(cfg.Power, 99, 1)
	targets := []avr.Instruction{
		avr.RandomOperands(rng, classes[0]),
		avr.RandomOperands(rng, classes[1]),
	}
	good, err := camp.AcquireTemplated(rng, prog, targets)
	if err != nil {
		t.Fatal(err)
	}
	mixed := [][]float64{good[0], nanTrace, good[1]}
	prefix, err := d.Disassemble(mixed)
	if err == nil || !errors.Is(err, power.ErrNonFiniteTrace) {
		t.Fatalf("mixed stream err = %v, want wrapped power.ErrNonFiniteTrace", err)
	}
	if len(prefix) != 1 {
		t.Fatalf("decoded prefix length %d, want 1 (trace before the defect)", len(prefix))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.DisassembleCtx(ctx, good); !errors.Is(err, context.Canceled) {
		t.Fatalf("DisassembleCtx err = %v, want context.Canceled", err)
	}
}
