package core

import (
	"math/rand"
	"testing"

	"repro/internal/avr"
	"repro/internal/power"
)

// smallConfig keeps the end-to-end tests fast.
func smallConfig() TrainerConfig {
	cfg := DefaultTrainerConfig()
	cfg.Programs = 4
	cfg.TracesPerProgram = 20
	cfg.RegisterPrograms = 0
	cfg.RegisterTracesPerProgram = 0
	return cfg
}

func TestTrainSubsetEndToEnd(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADD, avr.OpAND, avr.OpLDI, avr.OpSEC}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	// Classify fresh traces from an unseen program environment; the CSA
	// pipeline should carry the templates over.
	camp, err := power.NewCampaign(cfg.Power, 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prog := power.NewProgramEnv(cfg.Power, 999, 7)
	hit, total := 0, 0
	for _, cl := range classes {
		stream := make([]avr.Instruction, 15)
		for i := range stream {
			stream[i] = avr.RandomOperands(rng, cl)
		}
		traces, err := camp.AcquireSegments(rng, prog, stream)
		if err != nil {
			t.Fatal(err)
		}
		decs, err := d.Disassemble(traces)
		if err != nil {
			t.Fatal(err)
		}
		for _, dec := range decs {
			total++
			if dec.Class == cl {
				hit++
			}
			if dec.Group != cl.Group() && dec.Class == cl {
				t.Fatalf("class %v reported with group %v", dec.Class, dec.Group)
			}
		}
	}
	if acc := float64(hit) / float64(total); acc < 0.80 {
		t.Fatalf("subset disassembler accuracy %.3f, want >= 0.80", acc)
	}
	// Register fields must be absent without register templates.
	tr, _ := camp.AcquireSegments(rng, prog, []avr.Instruction{{Class: avr.OpADD, Rd: 1, Rr: 2}})
	dec, err := d.Classify(tr[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.HasRd || dec.HasRr {
		t.Fatal("register recovery should be disabled")
	}
}

func TestTrainSubsetValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := TrainSubset(cfg, nil, false); err == nil {
		t.Fatal("empty class list should fail")
	}
	bad := cfg
	bad.Programs = 0
	if _, err := TrainSubset(bad, []avr.Class{avr.OpADD, avr.OpAND}, false); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, _, err := Train(bad); err == nil {
		t.Fatal("invalid config should fail Train too")
	}
}

func TestMalwareDetectionEndToEnd(t *testing.T) {
	// The §5.7 case study at test scale: golden masked-AES snippet vs a
	// malicious variant with the mask register swapped to r0 (zero).
	cfg := smallConfig()
	cfg.RegisterPrograms = 5
	cfg.RegisterTracesPerProgram = 20
	classes := []avr.Class{avr.OpEOR, avr.OpMOV}
	d, err := TrainSubset(cfg, classes, true)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := avr.AssembleProgram(`
		MOV r18, r17 ; stash the mask
		EOR r16, r17 ; mask the AES subkey
	`)
	if err != nil {
		t.Fatal(err)
	}
	evil, err := avr.AssembleProgram(`
		MOV r18, r17
		EOR r16, r0 ; malware: mask with the zero register
	`)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := power.NewCampaign(cfg.Power, 0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	prog := power.NewProgramEnv(cfg.Power, 4242, 3)

	// Majority-vote fusion across repeated runs mirrors real-time monitoring
	// of a loop: single-trace misreads cancel out.
	detect := func(stream []avr.Instruction) []FlowMismatch {
		var runs [][]Decoded
		for run := 0; run < 9; run++ {
			traces, err := camp.AcquireSegments(rng, prog, stream)
			if err != nil {
				t.Fatal(err)
			}
			decs, err := d.Disassemble(traces)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, decs)
		}
		fused, err := MajorityDecode(runs)
		if err != nil {
			t.Fatal(err)
		}
		return CompareFlow(golden, fused)
	}
	cleanMM := detect(golden)
	evilMM := detect(evil)
	if len(evilMM) == 0 {
		t.Fatal("register-swap malware not detected")
	}
	// The attack signature — a source-register mismatch on the masking EOR —
	// must appear for the malicious stream and not for the clean one.
	hasRrAt1 := func(mm []FlowMismatch) bool {
		for _, m := range mm {
			if m.Index == 1 && m.Field == "Rr" {
				return true
			}
		}
		return false
	}
	if !hasRrAt1(evilMM) {
		t.Fatalf("expected Rr mismatch at instruction 1, got %v", evilMM)
	}
	if hasRrAt1(cleanMM) {
		t.Fatalf("clean stream raised a spurious Rr alarm: %v", cleanMM)
	}
}
