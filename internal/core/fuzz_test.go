package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/avr"
	"repro/internal/testkit"
)

// stateGob encodes a disassemblerState exactly as Save does, letting the
// seeds cover structurally valid gob streams (wrong version, missing group
// level, poisoned class table) without the cost of training a real template
// set.
func stateGob(t testing.TB, st disassemblerState) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// strippedTrainedGob trains the shared fixture and gob-encodes its state
// with every matrix payload stripped (the store codecs' Strip, shapes
// retained): a structurally real template stream at committable size — a
// whole trained file gob-encodes to hundreds of KB of matrix payload, while
// the stripped form keeps only the real Points/Pairs/class-table structure
// the crafted seeds above cannot imitate. Restore hardening guarantees Load
// rejects it cleanly
// (the PCA basis has shape but no data) instead of panicking in Transform.
func strippedTrainedGob(t *testing.T) []byte {
	d, _ := sharedFixture(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var st disassemblerState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	lvls := []*levelState{&st.Group, &st.Rd, &st.Rr}
	for i := range st.Instr {
		lvls = append(lvls, &st.Instr[i])
	}
	for _, lvl := range lvls {
		if !lvl.Present {
			continue
		}
		lvl.Pipe = lvl.Pipe.Strip()
		lvl.Clf = lvl.Clf.Strip()
	}
	return stateGob(t, st)
}

// TestFuzzCorpusCommitted regenerates the committed seed corpus under
// testdata/fuzz when REGEN_FUZZ_CORPUS is set, and otherwise asserts it is
// present. The seeds are the crafted stateGob variants plus a stripped real
// trained state (see strippedTrainedGob).
func TestFuzzCorpusCommitted(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		testkit.WriteCorpus(t, "FuzzLoad", "not_gob", []byte("not a gob stream"))
		testkit.WriteCorpus(t, "FuzzLoad", "bare_current_version",
			stateGob(t, disassemblerState{Version: templateFormatVersion}))
		testkit.WriteCorpus(t, "FuzzLoad", "future_version",
			stateGob(t, disassemblerState{Version: templateFormatVersion + 1}))
		bad := disassemblerState{Version: templateFormatVersion}
		bad.InstrClass[0] = []avr.Class{avr.Class(255)}
		testkit.WriteCorpus(t, "FuzzLoad", "poisoned_class_table", stateGob(t, bad))
		whole := stateGob(t, disassemblerState{Version: templateFormatVersion, HaveRegs: true})
		testkit.WriteCorpus(t, "FuzzLoad", "truncated", whole[:len(whole)/2])
		testkit.WriteCorpus(t, "FuzzLoad", "stripped_trained_state", strippedTrainedGob(t))
		return
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzLoad"))
	if err != nil || len(ents) == 0 {
		t.Errorf("no committed seed corpus for FuzzLoad (REGEN_FUZZ_CORPUS=1 to create): %v", err)
	}
}

// TestStrippedTrainedSeedRejectedCleanly pins the stripped seed's contract in
// unit form (the fuzz engine only exercises it under -fuzz): Load must
// reject the deep, shape-consistent, payload-free state with
// ErrTemplateFormat — before restore hardening this path reached
// PipelineFromState with a nil-Data PCA basis and panicked at classify time.
func TestStrippedTrainedSeedRejectedCleanly(t *testing.T) {
	b := strippedTrainedGob(t)
	d, err := Load(bytes.NewReader(b))
	if d != nil || !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("stripped trained state: Load returned (%v, %v), want (nil, ErrTemplateFormat)", d, err)
	}
}

// FuzzLoad drives template deserialization with arbitrary bytes. The
// contract under fuzz: Load never panics, never returns a non-nil
// Disassembler together with an error, and classifies every rejection under
// ErrTemplateFormat (I/O errors are impossible from a bytes.Reader).
func FuzzLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(stateGob(f, disassemblerState{Version: templateFormatVersion}))
	f.Add(stateGob(f, disassemblerState{Version: templateFormatVersion + 1}))
	f.Add(stateGob(f, disassemblerState{Version: 0}))
	bad := disassemblerState{Version: templateFormatVersion}
	bad.InstrClass[0] = []avr.Class{avr.Class(255)}
	f.Add(stateGob(f, bad))
	// A truncated version of a structurally valid stream.
	whole := stateGob(f, disassemblerState{Version: templateFormatVersion, HaveRegs: true})
	f.Add(whole[:len(whole)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(bytes.NewReader(data))
		if err == nil {
			if d == nil {
				t.Fatal("Load returned nil, nil")
			}
			// Anything Load accepts must be classify-ready: the call must
			// return a verdict or an error, never panic.
			_, _ = d.Classify(make([]float64, 16))
			return
		}
		if d != nil {
			t.Fatalf("Load returned a partially initialized Disassembler with error %v", err)
		}
		if !errors.Is(err, ErrTemplateFormat) {
			t.Fatalf("rejection outside ErrTemplateFormat: %v", err)
		}
	})
}

// TestSaveLoadFuzzSeedRoundTrip keeps the fuzz surface honest against the
// real format: a trained template set survives Save → Load and the loaded
// copy decodes traces identically to the original.
func TestSaveLoadFuzzSeedRoundTrip(t *testing.T) {
	d, traces := sharedFixture(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded disassembler decode %d = %+v, original %+v", i, got[i], want[i])
		}
	}
	// Every truncation of a real template file must be rejected cleanly —
	// the deep-structure analogue of the fuzz contract, on bytes the fuzzer
	// would need many CPU-hours to construct.
	for _, frac := range []int{1, 2, 4, 8} {
		cut := buf.Len() * frac / 10
		if _, err := Load(bytes.NewReader(buf.Bytes()[:cut])); !errors.Is(err, ErrTemplateFormat) {
			t.Fatalf("truncation at %d/%d bytes: got %v, want ErrTemplateFormat", cut, buf.Len(), err)
		}
	}
}
