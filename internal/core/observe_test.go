package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/avr"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
)

// withObserver installs an observer on the shared fixture disassembler and
// restores the previous one when the test ends, so fixture state never leaks
// between tests.
func withObserver(t *testing.T, d *Disassembler, o *InferenceObserver) {
	t.Helper()
	prev := d.Observer()
	d.SetObserver(o)
	t.Cleanup(func() { d.SetObserver(prev) })
}

// TestClassifyScoredAgreesWithClassify pins the label-agreement contract on
// real traces: the scored path must decode exactly what the plain path
// decodes, with a per-level confidence chain that is finite, in (0, 1], and
// whose product is the decision confidence.
func TestClassifyScoredAgreesWithClassify(t *testing.T) {
	d, traces := sharedFixture(t)
	plain := make([]Decoded, len(traces))
	for i, tr := range traces {
		dec, err := d.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		plain[i] = dec
	}

	withObserver(t, d, &InferenceObserver{})
	for i, tr := range traces {
		sc, err := d.ClassifyScored(tr)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Decoded != plain[i] {
			t.Fatalf("trace %d: scored decode %+v != plain %+v", i, sc.Decoded, plain[i])
		}
		if len(sc.Levels) < 2 || sc.Levels[0].Level != "group" || sc.Levels[1].Level != "instr" {
			t.Fatalf("trace %d: levels %+v, want group then instr", i, sc.Levels)
		}
		prod := 1.0
		for _, lvl := range sc.Levels {
			if !(lvl.Confidence > 0 && lvl.Confidence <= 1) || math.IsNaN(lvl.Margin) {
				t.Fatalf("trace %d level %s: confidence %g margin %g", i, lvl.Level, lvl.Confidence, lvl.Margin)
			}
			prod *= lvl.Confidence
		}
		if math.Abs(prod-sc.Confidence) > 1e-12 {
			t.Fatalf("trace %d: confidence %g != level product %g", i, sc.Confidence, prod)
		}
		// Classify with an observer installed routes through the scored path;
		// its decode must still match.
		dec, err := d.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if dec != plain[i] {
			t.Fatalf("trace %d: observed Classify %+v != plain %+v", i, dec, plain[i])
		}
	}
}

// TestDisassembleScoredDeterministicAcrossWorkers checks that the batch
// scored path feeds its sinks identically regardless of worker count: same
// decisions, same decision-log bytes, same drift window outcome.
func TestDisassembleScoredDeterministicAcrossWorkers(t *testing.T) {
	d, traces := sharedFixture(t)
	defer parallel.SetWorkers(0)

	run := func(workers int) ([]Decision, string, float64) {
		t.Helper()
		parallel.SetWorkers(workers)
		var sb strings.Builder
		mon, err := d.NewDriftMonitor(obs.DriftConfig{Window: len(traces)})
		if err != nil {
			t.Fatal(err)
		}
		withObserver(t, d, &InferenceObserver{Log: obs.NewDecisionLog(&sb, 2), Drift: mon})
		decs, err := d.DisassembleScored(traces)
		if err != nil {
			t.Fatal(err)
		}
		return decs, sb.String(), mon.Score()
	}

	decs1, log1, score1 := run(1)
	decs4, log4, score4 := run(4)
	if len(decs1) != len(traces) || len(decs1) != len(decs4) {
		t.Fatalf("decision counts: %d vs %d (want %d)", len(decs1), len(decs4), len(traces))
	}
	for i := range decs1 {
		if decs1[i].Decoded != decs4[i].Decoded || decs1[i].Confidence != decs4[i].Confidence {
			t.Fatalf("decision %d differs across worker counts: %+v vs %+v", i, decs1[i], decs4[i])
		}
	}
	if log1 != log4 {
		t.Fatalf("decision logs differ across worker counts:\n%s\nvs\n%s", log1, log4)
	}
	if log1 == "" {
		t.Fatal("sampled decision log is empty")
	}
	if score1 != score4 {
		t.Fatalf("drift scores differ across worker counts: %g vs %g", score1, score4)
	}

	// The JSONL stream round-trips record by record.
	sc := bufio.NewScanner(strings.NewReader(log1))
	n := 0
	for sc.Scan() {
		var rec obs.DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("decision log line %d: %v", n+1, err)
		}
		if rec.Text == "" || len(rec.Levels) < 2 {
			t.Fatalf("decision log line %d incomplete: %+v", n+1, rec)
		}
		n++
	}
	if want := (len(traces) + 1) / 2; n != want {
		t.Fatalf("%d sampled records, want %d", n, want)
	}
}

// TestCheckProgramFeedsCalibration runs the detection wrapper with a
// calibration sink installed: every position of the golden flow must land in
// the labeled reliability population, and a self-consistent golden flow must
// score perfect accuracy.
func TestCheckProgramFeedsCalibration(t *testing.T) {
	d, traces := sharedFixture(t)
	decs, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]avr.Instruction, len(decs))
	for i, dec := range decs {
		golden[i] = avr.Instruction{Class: dec.Class, Rd: dec.Rd, Rr: dec.Rr}
	}

	cal := obs.NewReliability()
	withObserver(t, d, &InferenceObserver{Calibration: cal})
	res, err := d.CheckProgram(golden, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("self-consistent golden flow flagged: %v", res.Mismatches)
	}
	if cal.Labeled() != int64(len(golden)) {
		t.Fatalf("calibration saw %d labeled decisions, want %d", cal.Labeled(), len(golden))
	}
	snap := cal.Snapshot()
	if snap.Accuracy != 1 {
		t.Fatalf("self-consistent flow accuracy %g, want 1", snap.Accuracy)
	}
	if math.IsNaN(snap.ECE) || snap.ECE < 0 || snap.ECE > 1 {
		t.Fatalf("ECE %g out of range", snap.ECE)
	}
	if !(snap.MeanConfidence > 0 && snap.MeanConfidence <= 1) {
		t.Fatalf("mean confidence %g", snap.MeanConfidence)
	}
}

// driftProbe acquires traces mirroring the training acquisition marginal —
// uniform over all instruction groups, random operands, fresh program
// environment per batch — optionally mutating each trace before feeding it
// through ObserveTrace.
func driftProbe(t *testing.T, d *Disassembler, n int, seedOff int64, mutate func([]float64)) {
	t.Helper()
	cfg := smallConfig()
	camp, err := power.NewCampaign(cfg.Power, 0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(811 + seedOff))
	const batch = 4
	for fed, env := 0, 500; fed < n; env++ {
		prog := power.NewProgramEnv(cfg.Power, 4242, env)
		targets := make([]avr.Instruction, batch)
		for i := range targets {
			g := avr.Group1 + avr.Group(rng.Intn(avr.NumGroups))
			members := avr.ClassesInGroup(g)
			targets[i] = avr.RandomOperands(rng, members[rng.Intn(len(members))])
		}
		traces, err := camp.AcquireTemplated(rng, prog, targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range traces {
			if fed >= n {
				break
			}
			if mutate != nil {
				mutate(tr)
			}
			if err := d.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
			fed++
		}
	}
}

// TestDriftMonitorEndToEnd is the acceptance gate for covariate-shift
// detection on the real pipeline: an in-distribution probe stream keeps the
// monitor quiet, while a DC-offset/gain shift — the paper's motivating
// failure mode — crosses the warn threshold within a single window.
func TestDriftMonitorEndToEnd(t *testing.T) {
	d, _ := sharedFixture(t)
	const window = 32

	mon, err := d.NewDriftMonitor(obs.DriftConfig{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	withObserver(t, d, &InferenceObserver{Drift: mon})

	driftProbe(t, d, window, 0, nil)
	if st := mon.State(); st != obs.DriftOK {
		t.Fatalf("in-distribution probe: state %s score %g (snapshot %+v)", st, mon.Score(), mon.Snapshot())
	}

	driftProbe(t, d, window, 1000, func(tr []float64) {
		for i := range tr {
			tr[i] = 1.2*tr[i] + 0.5
		}
	})
	if st := mon.State(); st == obs.DriftOK {
		t.Fatalf("DC-offset/gain shift not flagged: score %g (snapshot %+v)", mon.Score(), mon.Snapshot())
	}
	snap := mon.Snapshot()
	if snap.WorstFeature != "trace.mean" && snap.WorstFeature != "trace.std" {
		t.Fatalf("worst feature %q, want a trace moment", snap.WorstFeature)
	}
}

// TestObserveTraceValidation covers the stream-feeding entry point's edges:
// nil observer and missing drift sink are no-ops, defective traces are
// rejected, an untrained disassembler errors.
func TestObserveTraceValidation(t *testing.T) {
	d, traces := sharedFixture(t)
	if err := d.ObserveTrace(traces[0]); err != nil {
		t.Fatalf("no observer: %v", err)
	}
	withObserver(t, d, &InferenceObserver{})
	if err := d.ObserveTrace(traces[0]); err != nil {
		t.Fatalf("no drift sink: %v", err)
	}

	mon, err := d.NewDriftMonitor(obs.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	withObserver(t, d, &InferenceObserver{Drift: mon})
	bad := append([]float64(nil), traces[0]...)
	bad[2] = math.Inf(1)
	if err := d.ObserveTrace(bad); err == nil {
		t.Fatal("non-finite trace accepted")
	}
	if err := d.ObserveTrace(traces[0][:3]); err == nil {
		t.Fatal("short trace accepted")
	}

	var untrained Disassembler
	untrained.SetObserver(&InferenceObserver{Drift: mon})
	if err := untrained.ObserveTrace(traces[0]); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained ObserveTrace err = %v, want ErrNotTrained", err)
	}
	if _, err := untrained.NewDriftMonitor(obs.DriftConfig{}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained NewDriftMonitor err = %v, want ErrNotTrained", err)
	}
}

// TestTemplateV2CarriesBaseline pins the format bump: a freshly saved
// template round-trips the drift baseline, and a version-1 file (no
// baseline) still loads but reports ErrNoDriftBaseline when a monitor is
// requested.
func TestTemplateV2CarriesBaseline(t *testing.T) {
	d, _ := sharedFixture(t)
	base := d.DriftBaseline()
	if base == nil {
		t.Fatal("trained disassembler has no drift baseline")
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	d2, err := Load(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	got := d2.DriftBaseline()
	if got == nil {
		t.Fatal("reloaded template lost its drift baseline")
	}
	if len(got.Names) != len(base.Names) {
		t.Fatalf("baseline features %v != %v", got.Names, base.Names)
	}
	for i := range base.Names {
		if got.Names[i] != base.Names[i] || got.Mean[i] != base.Mean[i] || got.Std[i] != base.Std[i] {
			t.Fatalf("baseline feature %d differs after reload", i)
		}
	}
	if _, err := d2.NewDriftMonitor(obs.DriftConfig{}); err != nil {
		t.Fatalf("reloaded template cannot build a drift monitor: %v", err)
	}

	// Rewrite the stream as a version-1 file: strip every baseline and mark
	// the old version, exactly what a pre-drift build would have written.
	var st disassemblerState
	if err := gob.NewDecoder(bytes.NewReader(saved)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	st.Version = 1
	st.Group.Pipe.Baseline = nil
	for i := range st.Instr {
		if st.Instr[i].Present {
			st.Instr[i].Pipe.Baseline = nil
		}
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(&st); err != nil {
		t.Fatal(err)
	}
	dOld, err := Load(&v1)
	if err != nil {
		t.Fatalf("version-1 template rejected: %v", err)
	}
	if dOld.DriftBaseline() != nil {
		t.Fatal("version-1 template reports a baseline")
	}
	if _, err := dOld.NewDriftMonitor(obs.DriftConfig{}); !errors.Is(err, ErrNoDriftBaseline) {
		t.Fatalf("version-1 NewDriftMonitor err = %v, want ErrNoDriftBaseline", err)
	}
}
