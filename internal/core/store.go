package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/avr"
	"repro/internal/store"
)

// Schema v4: the flat, checksummed, lazily loadable template container
// (internal/store). This file converts between the Disassembler and the
// store's exported TemplateState, and provides the Template handle serving
// uses for two-phase loading — a cheap header-only open followed by section
// materialization on the first decode. The gob lineage (v1–v3) stays fully
// supported through Save/Load; LoadFile and OpenTemplate sniff the magic
// bytes and route to the right decoder.

// TemplateFormat names the on-disk format of a template file.
type TemplateFormat string

const (
	// FormatGob is the v1–v3 whole-file gob lineage (core.Save).
	FormatGob TemplateFormat = "gob"
	// FormatV4 is the flat section-addressed store (store.Write).
	FormatV4 TemplateFormat = "v4"
)

// templateState converts the trained set into the store's exported state,
// including each sparse-capable level's precomputed kernel table.
func (d *Disassembler) templateState() (*store.TemplateState, error) {
	if d.group.pipe == nil {
		return nil, errors.New("core: cannot save an untrained disassembler")
	}
	toLevel := func(lvl groupLevel, what string) (store.LevelState, error) {
		ls, err := snapshotLevel(lvl)
		if err != nil || !ls.Present {
			return store.LevelState{}, err
		}
		out := store.LevelState{Present: true, Pipe: ls.Pipe, Clf: ls.Clf}
		t, err := lvl.pipe.SparseTable()
		if err != nil {
			return store.LevelState{}, fmt.Errorf("%s kernel table: %w", what, err)
		}
		out.Sparse = t
		return out, nil
	}
	st := &store.TemplateState{HaveRegs: d.haveRegs}
	var err error
	if st.Group, err = toLevel(d.group, "group level"); err != nil {
		return nil, fmt.Errorf("core: saving group level: %w", err)
	}
	for i := range d.instr {
		if st.Instr[i], err = toLevel(d.instr[i], fmt.Sprintf("group %d level", i+1)); err != nil {
			return nil, fmt.Errorf("core: saving group %d level: %w", i+1, err)
		}
		st.InstrClass[i] = d.instrClass[i]
	}
	if d.haveRegs {
		if st.Rd, err = toLevel(d.rd, "Rd level"); err != nil {
			return nil, fmt.Errorf("core: saving Rd level: %w", err)
		}
		if st.Rr, err = toLevel(d.rr, "Rr level"); err != nil {
			return nil, fmt.Errorf("core: saving Rr level: %w", err)
		}
	}
	return st, nil
}

// SaveStore writes the trained template set as a schema-v4 store file.
func (d *Disassembler) SaveStore(w io.Writer, opts store.Options) error {
	st, err := d.templateState()
	if err != nil {
		return err
	}
	return store.Write(w, st, opts)
}

// SaveStoreFile is SaveStore to a path (partial files are removed on error).
func (d *Disassembler) SaveStoreFile(path string, opts store.Options) error {
	st, err := d.templateState()
	if err != nil {
		return err
	}
	return store.WriteFile(path, st, opts)
}

// disassemblerFromTemplateState rebuilds a Disassembler from materialized
// store state, applying the same screening as the gob path: class tables
// are validated against the ISA, every failure wraps ErrTemplateFormat, and
// a persisted kernel table must match the fitted state it rides with.
func disassemblerFromTemplateState(st *store.TemplateState) (*Disassembler, error) {
	fromLevel := func(ls store.LevelState) (groupLevel, error) {
		lvl, err := restoreLevel(levelState{Present: ls.Present, Pipe: ls.Pipe, Clf: ls.Clf})
		if err != nil || !ls.Present {
			return lvl, err
		}
		if ls.Sparse != nil {
			if err := lvl.pipe.InstallSparseTable(ls.Sparse); err != nil {
				return groupLevel{}, err
			}
		}
		return lvl, nil
	}
	d := &Disassembler{haveRegs: st.HaveRegs}
	var err error
	if d.group, err = fromLevel(st.Group); err != nil {
		return nil, fmt.Errorf("%w: restoring group level: %w", ErrTemplateFormat, err)
	}
	if d.group.pipe == nil {
		return nil, fmt.Errorf("%w: file lacks a group level", ErrTemplateFormat)
	}
	for i := range d.instr {
		if d.instr[i], err = fromLevel(st.Instr[i]); err != nil {
			return nil, fmt.Errorf("%w: restoring group %d level: %w", ErrTemplateFormat, i+1, err)
		}
		for _, c := range st.InstrClass[i] {
			if !avr.ValidClass(c) {
				return nil, fmt.Errorf("%w: group %d class table holds undefined class %d", ErrTemplateFormat, i+1, c)
			}
		}
		d.instrClass[i] = st.InstrClass[i]
	}
	if st.HaveRegs {
		if d.rd, err = fromLevel(st.Rd); err != nil {
			return nil, fmt.Errorf("%w: restoring Rd level: %w", ErrTemplateFormat, err)
		}
		if d.rr, err = fromLevel(st.Rr); err != nil {
			return nil, fmt.Errorf("%w: restoring Rr level: %w", ErrTemplateFormat, err)
		}
	}
	return d, nil
}

// Template is a two-phase handle on a template file of either format. Open
// is cheap: a v4 file decodes only its header (shape questions — TraceLen,
// Quantized — answer immediately); the matrices materialize on the first
// Disassembler call and the result (or error) is remembered. For gob files
// there is no header/payload split, so materialization happens eagerly at
// OpenTemplate and Disassembler never fails afterwards.
type Template struct {
	format TemplateFormat
	path   string
	f      *store.File // v4 only

	mu   sync.Mutex
	done bool
	d    *Disassembler
	err  error
}

// OpenTemplate sniffs path's format and opens it. v4 files have their
// header decoded and validated (bad files fail here, wrapping
// ErrTemplateFormat); gob files are fully loaded — the legacy cost this
// format exists to avoid, paid only for legacy files.
func OpenTemplate(path string) (*Template, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, rerr := io.ReadFull(fh, magic[:])
	fh.Close()
	if rerr == nil && string(magic[:]) == store.Magic {
		sf, err := store.Open(path)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrTemplateFormat, err)
		}
		hs := sf.HeaderState()
		if !hs.Group.Present || hs.Group.Pipe == nil || hs.Group.Pipe.TraceLen <= 0 {
			sf.Close()
			return nil, fmt.Errorf("%w: file lacks a group level", ErrTemplateFormat)
		}
		return &Template{format: FormatV4, path: path, f: sf}, nil
	}
	t := &Template{format: FormatGob, path: path, done: true}
	fh, err = os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	if t.d, err = Load(fh); err != nil {
		return nil, err
	}
	return t, nil
}

// Format reports the file's on-disk format.
func (t *Template) Format() TemplateFormat { return t.format }

// Quantized reports whether a v4 file's matrix sections are float32-encoded.
func (t *Template) Quantized() bool { return t.f != nil && t.f.Quantized() }

// TraceLen answers from the header alone — no sections are touched.
func (t *Template) TraceLen() int {
	if t.f != nil {
		return t.f.HeaderState().Group.Pipe.TraceLen
	}
	if t.d != nil {
		return t.d.TraceLen()
	}
	return 0
}

// Materialized reports whether the Disassembler has been built (always true
// for gob files, which load whole).
func (t *Template) Materialized() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done && t.err == nil && t.d != nil
}

// ResidentBytes reports the decoded section bytes currently attributed to
// this handle (0 for gob files, whose whole decode is not section-tracked).
func (t *Template) ResidentBytes() int64 {
	if t.f == nil {
		return 0
	}
	return t.f.ResidentBytes()
}

// Disassembler materializes the template on first call: every section is
// loaded, CRC-checked and reattached, and the hierarchy is rebuilt with the
// same validation as Load. The result — or the failure — is remembered;
// a corrupted section yields the same SectionError on every call, never a
// partially initialized Disassembler.
func (t *Template) Disassembler() (*Disassembler, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.d, t.err
	}
	t.done = true
	st, err := t.f.Template()
	if err != nil {
		t.err = fmt.Errorf("%w: %w", ErrTemplateFormat, err)
		return nil, t.err
	}
	t.d, t.err = disassemblerFromTemplateState(st)
	return t.d, t.err
}

// Close releases the underlying store file (no-op for gob). A materialized
// Disassembler stays valid — its state lives on the heap — but an
// unmaterialized v4 handle can no longer materialize.
func (t *Template) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	return t.f.Close()
}

// LoadFile loads a template of either format whole — the one-shot CLI path.
// The two-phase Template handle is for servers that want the header now and
// the matrices later.
func LoadFile(path string) (*Disassembler, error) {
	t, err := OpenTemplate(path)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	return t.Disassembler()
}
