package core

import (
	"strings"
	"testing"

	"repro/internal/avr"
)

func TestNewClassifierKinds(t *testing.T) {
	for _, k := range []ClassifierKind{ClassifierLDA, ClassifierQDA, ClassifierSVM, ClassifierNB, ClassifierKNN} {
		clf, err := NewClassifier(k)
		if err != nil || clf == nil {
			t.Fatalf("NewClassifier(%q): %v", k, err)
		}
	}
	if _, err := NewClassifier("bogus"); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestDecodedString(t *testing.T) {
	cases := []struct {
		d    Decoded
		want string
	}{
		{Decoded{Class: avr.OpADD, Rd: 16, Rr: 17, HasRd: true, HasRr: true}, "ADD r16, r17"},
		{Decoded{Class: avr.OpADD}, "ADD r?, r?"},
		{Decoded{Class: avr.OpLDI, Rd: 20, HasRd: true}, "LDI r20, K?"},
		{Decoded{Class: avr.OpCOM, Rd: 3, HasRd: true}, "COM r3"},
		{Decoded{Class: avr.OpBREQ}, "BREQ k?"},
		{Decoded{Class: avr.OpLDS, Rd: 4, HasRd: true}, "LDS r4, k?"},
		{Decoded{Class: avr.OpSTS, Rr: 9, HasRr: true}, "STS k?, r9"},
		{Decoded{Class: avr.OpLDXInc, Rd: 6, HasRd: true}, "LD r6, X+"},
		{Decoded{Class: avr.OpSTZ, Rr: 2, HasRr: true}, "ST Z, r2"},
		{Decoded{Class: avr.OpSEC}, "SEC"},
		{Decoded{Class: avr.OpSBI}, "SBI A?, b?"},
		{Decoded{Class: avr.OpBRBS}, "BRBS s?, k?"},
		{Decoded{Class: avr.OpBSET}, "BSET s?"},
		{Decoded{Class: avr.OpSBRC, Rr: 10, HasRr: true}, "SBRC r10, b?"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Fatalf("Decoded.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOperandRegisters(t *testing.T) {
	cases := []struct {
		c      avr.Class
		rd, rr bool
	}{
		{avr.OpADD, true, true},
		{avr.OpLDI, true, false},
		{avr.OpCOM, true, false},
		{avr.OpBREQ, false, false},
		{avr.OpLDS, true, false},
		{avr.OpSTS, false, true},
		{avr.OpSTX, false, true},
		{avr.OpLDDZ, true, false},
		{avr.OpSEC, false, false},
		{avr.OpSBRC, false, true},
		{avr.OpBST, true, false},
		{avr.OpBLD, true, false},
		{avr.OpLPM, true, false},
		{avr.OpSBI, false, false},
	}
	for _, tc := range cases {
		rd, rr := operandRegisters(avr.SpecOf(tc.c).Operands, tc.c)
		if rd != tc.rd || rr != tc.rr {
			t.Fatalf("%v: operandRegisters = (%v,%v), want (%v,%v)", tc.c, rd, rr, tc.rd, tc.rr)
		}
	}
}

func TestTrainerConfigValidate(t *testing.T) {
	cfg := DefaultTrainerConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Programs = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 program should fail")
	}
	bad = cfg
	bad.TracesPerProgram = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 trace per program should fail")
	}
	bad = cfg
	bad.Power.TraceLen = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad power config should fail")
	}
}

func TestUntrainedDisassembler(t *testing.T) {
	var d Disassembler
	if _, err := d.Classify(make([]float64, 315)); err == nil {
		t.Fatal("untrained disassembler should fail")
	}
}

func TestCompareFlow(t *testing.T) {
	golden := []avr.Instruction{
		{Class: avr.OpLDI, Rd: 16, K: 0x5A},
		{Class: avr.OpEOR, Rd: 16, Rr: 17},
	}
	clean := []Decoded{
		{Class: avr.OpLDI, Rd: 16, HasRd: true},
		{Class: avr.OpEOR, Rd: 16, Rr: 17, HasRd: true, HasRr: true},
	}
	if mm := CompareFlow(golden, clean); len(mm) != 0 {
		t.Fatalf("clean flow flagged: %v", mm)
	}
	// The §5.7 malware: EOR r16, r17 → EOR r16, r0.
	evil := []Decoded{
		{Class: avr.OpLDI, Rd: 16, HasRd: true},
		{Class: avr.OpEOR, Rd: 16, Rr: 0, HasRd: true, HasRr: true},
	}
	mm := CompareFlow(golden, evil)
	if len(mm) != 1 || mm[0].Field != "Rr" || mm[0].Index != 1 {
		t.Fatalf("register swap not detected: %v", mm)
	}
	if !strings.Contains(mm[0].String(), "Rr mismatch") {
		t.Fatalf("mismatch text %q", mm[0].String())
	}
	// Wrong class.
	wrongClass := []Decoded{
		{Class: avr.OpLDI, Rd: 16, HasRd: true},
		{Class: avr.OpAND, Rd: 16, Rr: 17, HasRd: true, HasRr: true},
	}
	mm = CompareFlow(golden, wrongClass)
	if len(mm) != 1 || mm[0].Field != "class" {
		t.Fatalf("class change not detected: %v", mm)
	}
	// Length mismatch.
	mm = CompareFlow(golden, clean[:1])
	if len(mm) != 1 || mm[0].Field != "length" {
		t.Fatalf("length change not detected: %v", mm)
	}
	// Unknown registers are not compared.
	vague := []Decoded{
		{Class: avr.OpLDI},
		{Class: avr.OpEOR},
	}
	if mm := CompareFlow(golden, vague); len(mm) != 0 {
		t.Fatalf("unknown operands should not raise mismatches: %v", mm)
	}
	// Alias classes compare canonically: golden TST r9 vs observed AND r9,r9.
	aliasGolden := []avr.Instruction{{Class: avr.OpTST, Rd: 9}}
	aliasObs := []Decoded{{Class: avr.OpAND, Rd: 9, Rr: 9, HasRd: true, HasRr: true}}
	if mm := CompareFlow(aliasGolden, aliasObs); len(mm) != 0 {
		t.Fatalf("alias comparison should be canonical: %v", mm)
	}
}

func TestListingRendering(t *testing.T) {
	decs := []Decoded{
		{Class: avr.OpLDI, Rd: 16, HasRd: true},
		{Class: avr.OpSEC},
	}
	got := Listing(decs)
	want := "LDI r16, K?\nSEC\n"
	if got != want {
		t.Fatalf("Listing = %q, want %q", got, want)
	}
}
