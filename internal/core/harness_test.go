package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/avr"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/testkit"
)

// fixtureClasses and the sync.Once below share one trained subset
// disassembler (plus matched evaluation traces) across the agreement and
// malware-path tests, so the expensive TrainSubset runs once regardless of
// test order (-shuffle).
var fixtureClasses = []avr.Class{avr.OpADD, avr.OpAND, avr.OpLDI, avr.OpSEC}

var fixture struct {
	once   sync.Once
	d      *Disassembler
	traces [][]float64
	err    error
}

func sharedFixture(t *testing.T) (*Disassembler, [][]float64) {
	t.Helper()
	fixture.once.Do(func() {
		cfg := smallConfig()
		d, err := TrainSubset(cfg, fixtureClasses, false)
		if err != nil {
			fixture.err = err
			return
		}
		camp, err := power.NewCampaign(cfg.Power, 0, 31337)
		if err != nil {
			fixture.err = err
			return
		}
		rng := rand.New(rand.NewSource(23))
		prog := power.NewProgramEnv(cfg.Power, 31337, 3)
		var stream []avr.Instruction
		for _, cl := range fixtureClasses {
			for i := 0; i < 4; i++ {
				stream = append(stream, avr.RandomOperands(rng, cl))
			}
		}
		fixture.traces, fixture.err = camp.AcquireSegments(rng, prog, stream)
		fixture.d = d
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.d, fixture.traces
}

// TestDisassembleAgreesSerialParallelCancelled pins the top-level agreement
// invariant: per-trace Classify, Disassemble at one worker, Disassemble at
// several workers, and DisassembleCtx retried after a cancellation must
// return identical decodes.
func TestDisassembleAgreesSerialParallelCancelled(t *testing.T) {
	d, traces := sharedFixture(t)
	defer parallel.SetWorkers(0)

	serial := make([]Decoded, len(traces))
	for i, tr := range traces {
		dec, err := d.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = dec
	}

	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, err := d.Disassemble(traces)
		if err != nil {
			t.Fatalf("Disassemble with %d workers: %v", workers, err)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("worker count %d changed decode %d: %+v vs serial %+v", workers, i, got[i], serial[i])
			}
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.DisassembleCtx(cancelled, traces); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DisassembleCtx returned %v, want context.Canceled", err)
	}
	got, err := d.DisassembleCtx(context.Background(), traces)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("cancelled-then-retried decode %d: %+v vs serial %+v", i, got[i], serial[i])
		}
	}
}

// TestCheckProgramEndToEnd covers the detection wrapper on the shared
// fixture: the true golden flow checks clean at the class level, a tampered
// golden flow is flagged, and defective traces propagate an error.
func TestCheckProgramEndToEnd(t *testing.T) {
	d, traces := sharedFixture(t)
	decs, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	// A golden flow matching the (possibly imperfect) decodes exactly:
	// CheckProgram against it must be clean — this isolates the comparison
	// logic from classifier noise.
	golden := make([]avr.Instruction, len(decs))
	for i, dec := range decs {
		golden[i] = avr.Instruction{Class: dec.Class, Rd: dec.Rd, Rr: dec.Rr}
	}
	res, err := d.CheckProgram(golden, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("self-consistent golden flow flagged: %v", res.Mismatches)
	}

	// Tamper: replace one instruction's class with one from another group.
	tampered := append([]avr.Instruction(nil), golden...)
	if tampered[0].Class == avr.OpSEC {
		tampered[0] = avr.Instruction{Class: avr.OpADD, Rd: 1, Rr: 2}
	} else {
		tampered[0] = avr.Instruction{Class: avr.OpSEC}
	}
	res, err = d.CheckProgram(tampered, traces)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("tampered golden flow not flagged")
	}

	// Length mismatch is reported as such.
	res, err = d.CheckProgram(golden[:len(golden)-1], traces)
	if err != nil {
		t.Fatal(err)
	}
	foundLen := false
	for _, m := range res.Mismatches {
		if m.Field == "length" {
			foundLen = true
		}
	}
	if !foundLen {
		t.Fatalf("missing length mismatch: %v", res.Mismatches)
	}

	// Defective traces surface as an error, not a silent misdetection.
	bad := [][]float64{append([]float64(nil), traces[0]...)}
	bad[0][3] = math.NaN()
	if _, err := d.CheckProgram(golden[:1], bad); err == nil {
		t.Fatal("CheckProgram accepted a NaN trace")
	}
}

// TestMajorityDecodeConsensus covers the run-level vote: clear majorities
// win per position, error paths reject empty and ragged inputs.
func TestMajorityDecodeConsensus(t *testing.T) {
	a := Decoded{Class: avr.OpADD, Group: avr.OpADD.Group()}
	b := Decoded{Class: avr.OpAND, Group: avr.OpAND.Group()}
	c := Decoded{Class: avr.OpLDI, Group: avr.OpLDI.Group()}

	runs := [][]Decoded{
		{a, b, c},
		{a, b, b},
		{a, c, c},
	}
	got, err := MajorityDecode(runs)
	if err != nil {
		t.Fatal(err)
	}
	want := []Decoded{a, b, c}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("consensus[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	if _, err := MajorityDecode(nil); err == nil {
		t.Fatal("empty run list accepted")
	}
	if _, err := MajorityDecode([][]Decoded{{a}, {a, b}}); err == nil {
		t.Fatal("ragged runs accepted")
	}

	// A single run is its own consensus.
	got, err = MajorityDecode([][]Decoded{{b, c}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != b || got[1] != c {
		t.Fatalf("single-run consensus = %v", got)
	}
}

// TestMajorityDecodeTieBreak pins the tie rule: on a split vote the winner
// is the candidate that appears first in run order, never a map-iteration
// accident — repeated fusions of the same runs must agree exactly.
func TestMajorityDecodeTieBreak(t *testing.T) {
	a := Decoded{Class: avr.OpADD, Group: avr.OpADD.Group()}
	b := Decoded{Class: avr.OpAND, Group: avr.OpAND.Group()}
	c := Decoded{Class: avr.OpLDI, Group: avr.OpLDI.Group()}

	// Position 0 ties b-vs-a 2:2 (c splits off), position 1 ties c-vs-b 2:2.
	runs := [][]Decoded{{b, c}, {a, b}, {b, b}, {a, c}, {c, a}}
	first, err := MajorityDecode(runs)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != b {
		t.Fatalf("tie at position 0 fused to %+v, want first-seen %+v", first[0], b)
	}
	if first[1] != c {
		t.Fatalf("tie at position 1 fused to %+v, want first-seen %+v", first[1], c)
	}
	for trial := 0; trial < 50; trial++ {
		got, err := MajorityDecode(runs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d position %d: %+v, first fusion gave %+v", trial, i, got[i], first[i])
			}
		}
	}
}

// TestMajorityDecodeSuppressesMisreads is the property form: with 2f+1 runs
// of which at most f disagree at any position, the consensus equals the
// majority run exactly.
func TestMajorityDecodeSuppressesMisreads(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 20}, func(g *testkit.G) error {
		classes := avr.AllClasses()
		n := g.Size(1, 30)
		truth := make([]Decoded, n)
		for i := range truth {
			cl := classes[g.IntBetween(0, len(classes)-1)]
			truth[i] = Decoded{Class: cl, Group: cl.Group()}
		}
		f := g.IntBetween(1, 3)
		runs := make([][]Decoded, 2*f+1)
		for r := range runs {
			run := append([]Decoded(nil), truth...)
			if r < f { // at most f corrupted runs
				pos := g.IntBetween(0, n-1)
				cl := classes[g.IntBetween(0, len(classes)-1)]
				run[pos] = Decoded{Class: cl, Group: cl.Group(), HasRd: true, Rd: 1}
			}
			runs[r] = run
		}
		got, err := MajorityDecode(runs)
		if err != nil {
			return err
		}
		for i := range truth {
			if got[i] != truth[i] {
				return fmt.Errorf("position %d: consensus %+v, truth %+v (f=%d, n=%d)", i, got[i], truth[i], f, n)
			}
		}
		return nil
	})
}

// TestFlowMismatchString pins the report formatting the monitor logs.
func TestFlowMismatchString(t *testing.T) {
	m := FlowMismatch{Index: 3, Field: "Rd", Expected: "r7", Observed: "r0"}
	s := m.String()
	for _, frag := range []string{"instruction 3", "Rd", "r7", "r0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("mismatch string %q missing %q", s, frag)
		}
	}
}
