package core

import (
	"errors"
	"fmt"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/power"
)

// InferenceObserver bundles the inference-quality sinks a Disassembler
// feeds while classifying: the sampled JSONL decision log, the
// covariate-shift drift monitor, and the calibration tracker. Any field may
// be nil — every sink is individually optional and nil-safe.
type InferenceObserver struct {
	// Log receives one DecisionRecord per successful classification
	// (sampled inside the log).
	Log *obs.DecisionLog
	// Drift receives one drift vector (see features.Pipeline.DriftVector)
	// per successful classification.
	Drift *obs.DriftMonitor
	// Calibration receives ground-truth-labeled confidences from
	// CheckProgram runs (online confidence-only feeding is up to the
	// caller).
	Calibration *obs.Reliability
}

// SetObserver installs the inference-quality sinks. Classify, Disassemble
// and CheckProgram feed them from then on; scored classification is used
// automatically. Must be called before classification starts — the field is
// read without synchronization on the hot path.
func (d *Disassembler) SetObserver(o *InferenceObserver) { d.observer = o }

// Observer returns the installed sinks, or nil.
func (d *Disassembler) Observer() *InferenceObserver { return d.observer }

// DriftBaseline returns the training-time drift reference of the group
// pipeline (the shared front of the hierarchy), or nil for templates saved
// by builds predating drift support.
func (d *Disassembler) DriftBaseline() *features.FeatureBaseline {
	if d.group.pipe == nil {
		return nil
	}
	return d.group.pipe.DriftBaseline()
}

// ErrNoDriftBaseline is returned by NewDriftMonitor for templates that
// predate drift support (format version 1): they carry no training-time
// feature statistics to compare against.
var ErrNoDriftBaseline = errors.New("core: template lacks a drift baseline (saved by an older build); retrain to enable drift monitoring")

// NewDriftMonitor builds a covariate-shift monitor against this
// disassembler's training baseline.
func (d *Disassembler) NewDriftMonitor(cfg obs.DriftConfig) (*obs.DriftMonitor, error) {
	if d.group.pipe == nil {
		return nil, ErrNotTrained
	}
	b := d.DriftBaseline()
	if b == nil {
		return nil, ErrNoDriftBaseline
	}
	return obs.NewDriftMonitor(obs.DriftBaseline{Names: b.Names, Mean: b.Mean, Std: b.Std}, cfg)
}

// Decision is a Decoded instruction annotated with how confidently each
// hierarchy level decided it.
type Decision struct {
	Decoded
	// Confidence is the product of the per-level confidences — the
	// probability the whole chain is right under level independence.
	Confidence float64
	// Levels holds the per-level outcomes, outermost (group) first.
	Levels []obs.DecisionLevel
}

// Record converts the decision into its decision-log form (Seq is assigned
// by the log).
func (dec Decision) Record() obs.DecisionRecord {
	return obs.DecisionRecord{
		Text:       dec.Decoded.String(),
		Confidence: dec.Confidence,
		Levels:     dec.Levels,
	}
}

// predictScored runs the classifier's scored path when it has one, and
// otherwise falls back to Predict with a degenerate full-confidence score so
// externally supplied Classifier implementations keep working.
func predictScored(clf ml.Classifier, f []float64) (ml.ScoredPrediction, error) {
	if sc, ok := clf.(ml.ScoredClassifier); ok {
		return sc.PredictScored(f)
	}
	lbl, err := clf.Predict(f)
	if err != nil {
		return ml.ScoredPrediction{}, err
	}
	return ml.ScoredPrediction{Label: lbl, RunnerUp: -1, Confidence: 1, Margin: 1}, nil
}

// classifyScalogramScored is classifyScalogram with per-level confidence:
// the same hierarchy walk against the shared raw scalogram, using
// PredictScored — which returns the exact label Predict would — and
// accumulating a DecisionLevel per stage.
func (d *Disassembler) classifyScalogramScored(flat []float64, tsp *obs.SpanHandle) (Decision, error) {
	return d.classifyExtractScored(func(pl *features.Pipeline) ([]float64, error) {
		return pl.ExtractFromScalogram(flat)
	}, tsp)
}

// classifyExtractScored is classifyExtract with per-level confidence — the
// scored twin shared by the full and sparse paths. tsp, when non-nil, is the
// per-trace parent span; each hierarchy level records a wall-only child span
// under it (core.classify.group/instr/rd/rr).
func (d *Disassembler) classifyExtractScored(extract func(*features.Pipeline) ([]float64, error), tsp *obs.SpanHandle) (Decision, error) {
	dec := Decision{Confidence: 1, Levels: make([]obs.DecisionLevel, 0, 4)}
	// post lets a level rewrite its decision before it is recorded — the
	// group level uses it to restrict routing to trained groups
	// (remapGroupScored); nil for the other levels.
	level := func(name string, lvl groupLevel, post func([]float64, ml.ScoredPrediction) ml.ScoredPrediction) (int, error) {
		var lsp *obs.SpanHandle
		if tsp != nil {
			lsp = tsp.Child("core.classify." + name)
			defer lsp.End()
		}
		f, err := extract(lvl.pipe)
		if err != nil {
			return 0, fmt.Errorf("core: %s features: %w", name, err)
		}
		sp, err := predictScored(lvl.clf, f)
		if err != nil {
			return 0, fmt.Errorf("core: %s classify: %w", name, err)
		}
		if post != nil {
			sp = post(f, sp)
		}
		lsp.SetAttr("label", float64(sp.Label))
		lsp.SetAttr("confidence", sp.Confidence)
		lsp.SetAttr("margin", sp.Margin)
		dec.Levels = append(dec.Levels, obs.DecisionLevel{
			Level:      name,
			Label:      sp.Label,
			RunnerUp:   sp.RunnerUp,
			Confidence: sp.Confidence,
			Margin:     sp.Margin,
		})
		dec.Confidence *= sp.Confidence
		return sp.Label, nil
	}
	gi, err := level("group", d.group, d.remapGroupScored)
	if err != nil {
		return Decision{}, err
	}
	if gi < 0 || gi >= avr.NumGroups {
		return Decision{}, fmt.Errorf("core: group label %d out of range", gi)
	}
	lvl := d.instr[gi]
	if lvl.pipe == nil || lvl.clf == nil {
		return Decision{}, fmt.Errorf("core: no instruction templates for group %d: %w", gi+1, ErrNotTrained)
	}
	ii, err := level("instr", lvl, nil)
	if err != nil {
		return Decision{}, err
	}
	if ii < 0 || ii >= len(d.instrClass[gi]) {
		return Decision{}, fmt.Errorf("core: instruction label %d out of range for group %d", ii, gi+1)
	}
	cls := d.instrClass[gi][ii]
	dec.Decoded = Decoded{Class: cls, Group: cls.Group()}

	if d.haveRegs {
		sp := avr.SpecOf(cls)
		needRd, needRr := operandRegisters(sp.Operands, cls)
		if needRd {
			r, err := level("rd", d.rd, nil)
			if err != nil {
				return Decision{}, err
			}
			dec.Rd, dec.HasRd = uint8(r), true
		}
		if needRr {
			r, err := level("rr", d.rr, nil)
			if err != nil {
				return Decision{}, err
			}
			dec.Rr, dec.HasRr = uint8(r), true
		}
	}
	return dec, nil
}

// classifyScored validates and classifies one trace on the scored path,
// also assembling the drift vector from the shared scalogram when a drift
// monitor is installed (so drift monitoring costs no extra CWT). It does
// NOT feed the observer — callers decide between inline (streaming) and
// serial in-order (batch) feeding.
func (d *Disassembler) classifyScored(trace []float64, tsp *obs.SpanHandle) (Decision, []float64, error) {
	if d.group.pipe == nil || d.group.clf == nil {
		return Decision{}, nil, ErrNotTrained
	}
	if err := power.ValidateTrace(trace, d.group.pipe.TraceLen()); err != nil {
		met().rejected.Inc()
		return Decision{}, nil, fmt.Errorf("core: rejecting trace: %w", err)
	}
	var (
		dec Decision
		err error
	)
	if d.SparseEnabled() {
		met().sparseTraces.Inc()
		dec, err = d.classifyExtractScored(func(pl *features.Pipeline) ([]float64, error) {
			return pl.ExtractSparse(trace)
		}, tsp)
	} else {
		var flat []float64
		if flat, err = d.group.pipe.RawScalogram(trace); err != nil {
			met().rejected.Inc()
			return Decision{}, nil, fmt.Errorf("core: group features: %w", err)
		}
		dec, err = d.classifyScalogramScored(flat, tsp)
	}
	if err != nil {
		met().rejected.Inc()
		return Decision{}, nil, err
	}
	met().classified.Inc()
	var dv []float64
	if o := d.observer; o != nil && o.Drift != nil {
		if dv, err = d.group.pipe.DriftVector(trace); err != nil {
			dv = nil // length mismatch is impossible after validation; stay lenient
		}
	}
	return dec, dv, nil
}

// feedObserver pushes one successful decision into the installed sinks.
func (d *Disassembler) feedObserver(dec Decision, driftVec []float64) {
	o := d.observer
	if o == nil {
		return
	}
	met().confidence.Observe(dec.Confidence)
	if driftVec != nil {
		o.Drift.Observe(driftVec)
	}
	if err := o.Log.Record(dec.Record()); err != nil {
		met().decisionLogErrs.Inc()
	}
}

// ObserveTrace feeds the installed drift monitor with one trace's covariate
// statistics without classifying it. Covariate shift is a property of the
// input stream, not of classification success — under severe drift the
// hierarchy walk starts failing (wrong group → untrained level) and a
// monitor fed only from successful decisions would starve exactly when it
// matters most. It also lets a monitor watch traffic whose instruction mix
// the trained subset does not cover. No-op (nil error) without a drift sink.
func (d *Disassembler) ObserveTrace(trace []float64) error {
	o := d.observer
	if o == nil || o.Drift == nil {
		return nil
	}
	if d.group.pipe == nil {
		return ErrNotTrained
	}
	if err := power.ValidateTrace(trace, d.group.pipe.TraceLen()); err != nil {
		return fmt.Errorf("core: rejecting trace: %w", err)
	}
	dv, err := d.group.pipe.DriftVector(trace)
	if err != nil {
		return err
	}
	o.Drift.Observe(dv)
	return nil
}

// ClassifyScored decodes a single power trace with per-level confidence,
// feeding the installed observer inline — the streaming path. The label is
// identical to Classify's on the same trace.
func (d *Disassembler) ClassifyScored(trace []float64) (Decision, error) {
	dec, dv, err := d.classifyScored(trace, nil)
	if err != nil {
		return Decision{}, err
	}
	d.feedObserver(dec, dv)
	return dec, nil
}

// decisionCorrect reports whether a decode matches the golden instruction
// by CompareFlow's rules: canonical class equality, plus register equality
// where the class carries registers and the disassembler recovered them.
func decisionCorrect(want avr.Instruction, got Decoded) bool {
	w := avr.Canonical(want)
	g := avr.Canonical(avr.Instruction{Class: got.Class, Rd: got.Rd, Rr: got.Rr})
	if g.Class != w.Class {
		return false
	}
	rd, rr, hasRd, hasRr := registerContext(w.Class, w)
	if hasRd && got.HasRd && got.Rd != rd {
		return false
	}
	if hasRr && got.HasRr && got.Rr != rr {
		return false
	}
	return true
}
