package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// saveV4 writes the fixture disassembler as a v4 file under t.TempDir.
func saveV4(t *testing.T, d *Disassembler, opts store.Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixture.tpl")
	if err := d.SaveStoreFile(path, opts); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStoreLazyEqualsEagerDecode is the serving-path property on a real
// trained template: a v4 handle opened header-only and materialized on first
// use must decode the fixture campaign identically to the in-memory
// disassembler it was saved from.
func TestStoreLazyEqualsEagerDecode(t *testing.T) {
	d, traces := sharedFixture(t)
	want, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}

	tpl, err := OpenTemplate(saveV4(t, d, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer tpl.Close()
	if tpl.Format() != FormatV4 {
		t.Fatalf("format = %q, want v4", tpl.Format())
	}
	if tpl.Quantized() {
		t.Fatal("unquantized save reports Quantized")
	}
	if got := tpl.TraceLen(); got != d.TraceLen() {
		t.Fatalf("header TraceLen = %d, want %d", got, d.TraceLen())
	}
	if tpl.Materialized() {
		t.Fatal("freshly opened v4 handle claims to be materialized")
	}
	if tpl.ResidentBytes() != 0 {
		t.Fatalf("resident bytes %d before materialization", tpl.ResidentBytes())
	}

	back, err := tpl.Disassembler()
	if err != nil {
		t.Fatal(err)
	}
	if !tpl.Materialized() {
		t.Fatal("handle not materialized after Disassembler")
	}
	if tpl.ResidentBytes() == 0 {
		t.Fatal("no resident bytes after materialization")
	}
	got, err := back.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lazy decode %d = %+v, eager %+v", i, got[i], want[i])
		}
	}
	// Materialization is once: the second call returns the same instance.
	again, err := tpl.Disassembler()
	if err != nil || again != back {
		t.Fatalf("second Disassembler call: %p/%v, want the remembered %p", again, err, back)
	}
}

// TestStoreConvertChain covers the migration path end to end: gob save →
// LoadFile (sniffs gob) → v4 save → LoadFile (sniffs v4) with identical
// decodes at every hop, plus the gob handle's eager semantics.
func TestStoreConvertChain(t *testing.T) {
	d, traces := sharedFixture(t)
	want, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	gobPath := filepath.Join(dir, "legacy.tpl")
	f, err := os.Create(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// OpenTemplate on a gob file: format sniffed, loaded whole at open.
	gt, err := OpenTemplate(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gt.Close()
	if gt.Format() != FormatGob || !gt.Materialized() || gt.Quantized() {
		t.Fatalf("gob handle: format=%q materialized=%v quantized=%v", gt.Format(), gt.Materialized(), gt.Quantized())
	}
	if gt.TraceLen() != d.TraceLen() {
		t.Fatalf("gob handle TraceLen = %d, want %d", gt.TraceLen(), d.TraceLen())
	}

	// The conversion a `scdis convert` run performs.
	loaded, err := LoadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	v4Path := filepath.Join(dir, "converted.tpl")
	if err := loaded.SaveStoreFile(v4Path, store.Options{}); err != nil {
		t.Fatal(err)
	}
	conv, err := LoadFile(v4Path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := conv.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("converted decode %d = %+v, original %+v", i, got[i], want[i])
		}
	}
}

// TestStoreQuantizedTemplateClassifies pins that a float32-quantized template
// loads and classifies the fixture campaign (the accuracy floors under
// quantization are enforced by the e2e gate; here the contract is that the
// half-size file is a working template, not a lossy wreck).
func TestStoreQuantizedTemplateClassifies(t *testing.T) {
	d, traces := sharedFixture(t)
	path := saveV4(t, d, store.Options{Quantize: true})
	tpl, err := OpenTemplate(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tpl.Close()
	if !tpl.Quantized() {
		t.Fatal("quantized save does not report Quantized")
	}
	q, err := tpl.Disassembler()
	if err != nil {
		t.Fatal(err)
	}
	decs, err := q.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(traces) {
		t.Fatalf("quantized decode returned %d results for %d traces", len(decs), len(traces))
	}
}

// TestStoreCorruptSectionFailsClosed flips one payload byte in a real
// template file: the header-only open still succeeds, materialization fails
// naming the damaged section under both error taxonomies (core's
// ErrTemplateFormat and store's ErrFormat), the failure is remembered, and
// the handle never yields a partially initialized disassembler.
func TestStoreCorruptSectionFailsClosed(t *testing.T) {
	d, _ := sharedFixture(t)
	path := saveV4(t, d, store.Options{})
	sf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	secs := sf.Sections()
	payloadOff := sf.PayloadOffset()
	sf.Close()
	if len(secs) == 0 {
		t.Fatal("fixture template has no sections")
	}
	// First, an interior, and the last section — the full per-section matrix
	// runs on the tiny synthetic state in internal/store.
	for _, idx := range []int{0, len(secs) / 2, len(secs) - 1} {
		target := secs[idx]
		t.Run(target.Name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[payloadOff+target.Offset] ^= 0x08
			bad := filepath.Join(t.TempDir(), "corrupt.tpl")
			if err := os.WriteFile(bad, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			tpl, err := OpenTemplate(bad)
			if err != nil {
				t.Fatalf("payload corruption must not fail the header open: %v", err)
			}
			defer tpl.Close()
			bd, err := tpl.Disassembler()
			if bd != nil || err == nil {
				t.Fatal("corrupted template materialized")
			}
			if !errors.Is(err, ErrTemplateFormat) || !errors.Is(err, store.ErrFormat) {
				t.Fatalf("error %v outside the format taxonomies", err)
			}
			var se *store.SectionError
			if !errors.As(err, &se) || se.Section != target.Name {
				t.Fatalf("error %v does not name section %q", err, target.Name)
			}
			if tpl.Materialized() {
				t.Fatal("handle claims materialized after a failed materialization")
			}
			if _, err2 := tpl.Disassembler(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("second materialization gave %v, want the remembered %v", err2, err)
			}
		})
	}
}

// TestOpenTemplateRejectsDefectiveFiles covers the sniffing edge cases.
func TestOpenTemplateRejectsDefectiveFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenTemplate(filepath.Join(dir, "missing.tpl")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Garbage without the v4 magic routes to the gob loader.
	if _, err := OpenTemplate(write("junk.tpl", []byte("junk template bytes"))); !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("gob-routed junk: %v, want ErrTemplateFormat", err)
	}
	// The v4 magic followed by garbage fails the store's screens.
	if _, err := OpenTemplate(write("sct4.tpl", append([]byte(store.Magic), bytes.Repeat([]byte{0xAB}, 64)...))); !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("v4-routed junk: %v, want ErrTemplateFormat", err)
	}
}

// TestTemplateCloseBeforeMaterialize pins the handle lifecycle: a closed,
// never-materialized v4 handle refuses to materialize instead of crashing.
func TestTemplateCloseBeforeMaterialize(t *testing.T) {
	d, _ := sharedFixture(t)
	tpl, err := OpenTemplate(saveV4(t, d, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Disassembler(); err == nil {
		t.Fatal("closed handle materialized")
	}
	if !strings.Contains(strings.ToLower(headErr(tpl)), "closed") {
		t.Fatalf("materialization-after-close error %q does not mention the close", headErr(tpl))
	}
}

func headErr(tpl *Template) string {
	_, err := tpl.Disassembler()
	if err == nil {
		return ""
	}
	return err.Error()
}
