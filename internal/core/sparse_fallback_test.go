package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"repro/internal/avr"
	"repro/internal/dsp"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
)

// downgradeState rewrites a freshly saved v3 template state to look like a
// file written by an older build: the fields that version introduced are
// zeroed exactly as gob would leave them when decoding an old stream.
func downgradeState(t *testing.T, data []byte, version int) []byte {
	t.Helper()
	var st disassemblerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	st.Version = version
	strip := func(ls *levelState) {
		if !ls.Present {
			return
		}
		// v3 additions: bank + normalization mode inside the config.
		ls.Pipe.Cfg.Bank = dsp.BankConfig{}
		ls.Pipe.Cfg.NormMode = features.NormScalogram
		if version < 2 {
			// v2 addition: the drift baseline.
			ls.Pipe.Baseline = nil
		}
	}
	strip(&st.Group)
	for i := range st.Instr {
		strip(&st.Instr[i])
	}
	strip(&st.Rd)
	strip(&st.Rr)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadLegacyVersionsFallBackToFullPath pins the compatibility contract of
// template format v3: v2 and v1 files — whose CSA templates carry the legacy
// scalogram-plane normalization — still load, report themselves not
// sparse-capable, refuse -sparse=on with the typed sentinel, and classify
// through the full-FFT path without touching the sparse counters. v1 files
// additionally lack a drift baseline.
func TestLoadLegacyVersionsFallBackToFullPath(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := buf.Bytes()

	// The v3 file itself restores sparse-capable.
	d3, err := Load(bytes.NewReader(v3))
	if err != nil {
		t.Fatal(err)
	}
	if !d3.SparseCapable() || !d3.SparseEnabled() {
		t.Fatal("v3 template should restore sparse-capable and resolve SparseAuto to the sparse path")
	}
	if err := d3.SetSparseMode(SparseOn); err != nil {
		t.Fatalf("v3 template refused -sparse=on: %v", err)
	}

	traces := acquireTestTraces(t, cfg, classes, 2)
	want, err := d3.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}

	for _, version := range []int{2, 1} {
		old, err := Load(bytes.NewReader(downgradeState(t, v3, version)))
		if err != nil {
			t.Fatalf("v%d template failed to load: %v", version, err)
		}
		if old.SparseCapable() {
			t.Fatalf("v%d NormScalogram template must not be sparse-capable", version)
		}
		if old.SparseEnabled() {
			t.Fatalf("v%d template must resolve SparseAuto to the full path", version)
		}
		if err := old.SetSparseMode(SparseOn); !errors.Is(err, features.ErrSparseIncapable) {
			t.Fatalf("v%d -sparse=on error = %v, want ErrSparseIncapable", version, err)
		}
		fullBefore := dsp.TransformCount()
		sparseBefore := dsp.SparseTransformCount()
		got, err := old.Disassemble(traces)
		if err != nil {
			t.Fatalf("v%d template failed to decode: %v", version, err)
		}
		if len(got) != len(want) {
			t.Fatalf("v%d decoded %d instructions, want %d", version, len(got), len(want))
		}
		if n := dsp.SparseTransformCount() - sparseBefore; n != 0 {
			t.Fatalf("v%d template ran %d sparse evaluations, want 0", version, n)
		}
		if n := dsp.TransformCount() - fullBefore; n != uint64(len(traces)) {
			t.Fatalf("v%d template ran %d full CWTs, want %d", version, n, len(traces))
		}
		if version < 2 {
			if old.DriftBaseline() != nil {
				t.Fatal("v1 template should have no drift baseline")
			}
			if _, err := old.NewDriftMonitor(obs.DriftConfig{}); !errors.Is(err, ErrNoDriftBaseline) {
				t.Fatalf("v1 drift monitor error = %v, want ErrNoDriftBaseline", err)
			}
		} else if old.DriftBaseline() == nil {
			t.Fatal("v2 template should keep its drift baseline")
		}
	}
}

// noScores hides the ml.Scorer method set of the wrapped classifier, modeling
// an externally supplied Classifier without raw per-class scores.
type noScores struct{ ml.Classifier }

// TestUntrainedGroupRouting pins the subset-disassembler routing contract: a
// trace whose group decision lands on a group without instruction templates
// is redirected onto the best-scoring trained group (ml.Scorer classifiers),
// identically on the plain and scored paths; without scores the typed
// untrained error is preserved.
func TestUntrainedGroupRouting(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADD, avr.OpLDI}
	if avr.OpADD.Group() == avr.OpLDI.Group() {
		t.Fatal("test needs classes from two different groups")
	}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	traces := acquireTestTraces(t, cfg, []avr.Class{avr.OpLDI}, 4)

	// Forget LDI's group level: every LDI trace now routes to an untrained
	// group and must be remapped onto ADD's group instead of failing.
	gone := int(avr.OpLDI.Group()) - 1
	kept := avr.OpADD.Group()
	d.instr[gone] = groupLevel{}
	d.instrClass[gone] = nil
	for i, tr := range traces {
		dec, err := d.Classify(tr)
		if err != nil {
			t.Fatalf("trace %d: remapped classify failed: %v", i, err)
		}
		if dec.Group != kept {
			t.Fatalf("trace %d: remapped to group %d, want %d", i, dec.Group, kept)
		}
		scored, err := d.ClassifyScored(tr)
		if err != nil {
			t.Fatalf("trace %d: scored remapped classify failed: %v", i, err)
		}
		if scored.Decoded != dec {
			t.Fatalf("trace %d: scored path decoded %+v, plain path %+v", i, scored.Decoded, dec)
		}
	}

	// Without raw scores there is nothing to remap with: the typed untrained
	// error must surface as before.
	d.group.clf = noScores{d.group.clf}
	if _, err := d.Classify(traces[0]); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("scoreless classify error = %v, want ErrNotTrained", err)
	}
}
