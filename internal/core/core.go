// Package core assembles the substrates into the paper's contribution: a
// power side-channel disassembler. A trained Disassembler maps a single
// power trace to an instruction — hierarchically, as in Section 2.1:
//
//	level 1: which of the 8 instruction groups,
//	level 2: which instruction inside that group,
//	level 3: which operand registers (Rd, Rr) where the class uses them.
//
// Each level has its own KL/PCA feature pipeline and classifier. The Trainer
// runs the simulated acquisition campaign, fits the pipelines (optionally
// with covariate shift adaptation) and trains the classifiers.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
)

// coreMetrics holds the disassembly instrument handles; the handles are nil
// (no-op) under a nil registry. The live set is swapped atomically by the
// OnDefault hook so obs.SetDefault can rebind while classifications run.
type coreMetrics struct {
	classified      *obs.Counter   // core.traces.classified — Classify calls that succeeded
	rejected        *obs.Counter   // core.traces.rejected — Classify calls that failed
	sparseTraces    *obs.Counter   // core.traces.sparse — classifications served by the sparse path
	sparseFallback  *obs.Counter   // core.sparse.fallback — sparse-preferred loads degraded to the full path
	groupRemapped   *obs.Counter   // core.group.remapped — group decisions redirected onto a trained group
	confidence      *obs.Histogram // core.decision.confidence — overall decision confidences
	decisionLogErrs *obs.Counter   // core.decision_log.errors — failed JSONL writes
}

var metPtr atomic.Pointer[coreMetrics]

// met returns the current handle set; never nil.
func met() *coreMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &coreMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		metPtr.Store(&coreMetrics{
			classified:      r.Counter("core.traces.classified"),
			rejected:        r.Counter("core.traces.rejected"),
			sparseTraces:    r.Counter("core.traces.sparse"),
			sparseFallback:  r.Counter("core.sparse.fallback"),
			groupRemapped:   r.Counter("core.group.remapped"),
			confidence:      r.HistogramWith("core.decision.confidence", obs.UnitBuckets()),
			decisionLogErrs: r.Counter("core.decision_log.errors"),
		})
	})
}

// SparseMode selects whether classification runs through the sparse per-cell
// CWT (dsp.SparseCWT over each level's selected points) or the full FFT
// scalogram.
type SparseMode int

const (
	// SparseAuto (the default) uses the sparse path whenever every trained
	// level's template is sparse-capable, and falls back to the full path
	// otherwise (e.g. templates saved by builds predating NormTrace).
	SparseAuto SparseMode = iota
	// SparseOn requires the sparse path; SetSparseMode fails for templates
	// that cannot support it.
	SparseOn
	// SparseOff forces the full-FFT path (the escape hatch).
	SparseOff
)

// String renders the mode in its flag syntax (auto|on|off).
func (m SparseMode) String() string {
	switch m {
	case SparseOn:
		return "on"
	case SparseOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseSparseMode parses the -sparse flag syntax: auto, on or off.
func ParseSparseMode(s string) (SparseMode, error) {
	switch s {
	case "auto", "":
		return SparseAuto, nil
	case "on":
		return SparseOn, nil
	case "off":
		return SparseOff, nil
	default:
		return SparseAuto, fmt.Errorf("core: invalid sparse mode %q (want auto, on or off)", s)
	}
}

// ClassifierKind selects the classification algorithm at every level.
type ClassifierKind string

// The classifier families the paper evaluates.
const (
	ClassifierLDA ClassifierKind = "lda"
	ClassifierQDA ClassifierKind = "qda"
	ClassifierSVM ClassifierKind = "svm"
	ClassifierNB  ClassifierKind = "naive-bayes"
	ClassifierKNN ClassifierKind = "knn"
)

// NewClassifier constructs an untrained classifier of the given kind.
// SVM hyperparameters follow the harness defaults (C=10, RBF γ=0.1); use the
// ml package directly for grid search.
func NewClassifier(kind ClassifierKind) (ml.Classifier, error) {
	switch kind {
	case ClassifierLDA:
		return ml.NewLDA(), nil
	case ClassifierQDA:
		return ml.NewQDA(), nil
	case ClassifierSVM:
		return ml.NewSVM(10, ml.RBFKernel{Gamma: 0.1}), nil
	case ClassifierNB:
		return ml.NewGaussianNB(), nil
	case ClassifierKNN:
		return ml.NewKNN(1), nil
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %q", kind)
	}
}

// Decoded is one reverse-engineered instruction: the class plus recovered
// register operands where the class has them. Operand fields that the power
// channel cannot determine (immediates, branch targets, addresses) are left
// unknown.
type Decoded struct {
	Class avr.Class
	Group avr.Group
	Rd    uint8
	Rr    uint8
	HasRd bool
	HasRr bool
}

// String renders the decoded instruction in assembler-like syntax with '?'
// for operands the side channel cannot recover.
func (d Decoded) String() string {
	sp := avr.SpecOf(d.Class)
	var b strings.Builder
	b.WriteString(sp.Name)
	operand := func(has bool, r uint8) string {
		if has {
			return fmt.Sprintf("r%d", r)
		}
		return "r?"
	}
	switch sp.Operands {
	case avr.OperandRdRr:
		fmt.Fprintf(&b, " %s, %s", operand(d.HasRd, d.Rd), operand(d.HasRr, d.Rr))
	case avr.OperandRdK, avr.OperandRdPairK:
		fmt.Fprintf(&b, " %s, K?", operand(d.HasRd, d.Rd))
	case avr.OperandRd:
		fmt.Fprintf(&b, " %s", operand(d.HasRd, d.Rd))
	case avr.OperandOff, avr.OperandAddr:
		b.WriteString(" k?")
	case avr.OperandRdAddr:
		fmt.Fprintf(&b, " %s, k?", operand(d.HasRd, d.Rd))
	case avr.OperandAddrRr:
		fmt.Fprintf(&b, " k?, %s", operand(d.HasRr, d.Rr))
	case avr.OperandRdPtr, avr.OperandRdZ, avr.OperandRdQ:
		fmt.Fprintf(&b, " %s, %s", operand(d.HasRd, d.Rd), ptrText(d.Class))
	case avr.OperandPtrRr, avr.OperandQRr:
		fmt.Fprintf(&b, " %s, %s", ptrText(d.Class), operand(d.HasRr, d.Rr))
	case avr.OperandRrB:
		fmt.Fprintf(&b, " %s, b?", operand(d.HasRd || d.HasRr, pickReg(d)))
	case avr.OperandAB:
		b.WriteString(" A?, b?")
	case avr.OperandSOff:
		b.WriteString(" s?, k?")
	case avr.OperandS:
		b.WriteString(" s?")
	}
	return b.String()
}

func pickReg(d Decoded) uint8 {
	if d.HasRd {
		return d.Rd
	}
	return d.Rr
}

func ptrText(c avr.Class) string {
	switch avr.SpecOf(c).Operands {
	case avr.OperandRdQ, avr.OperandQRr:
		return avr.PointerToken(c) + "+q?"
	default:
		return avr.PointerToken(c)
	}
}

// groupLevel bundles the fitted pipeline + classifier of one level.
type groupLevel struct {
	pipe *features.Pipeline
	clf  ml.Classifier
}

// Disassembler is a fully trained hierarchical template set.
//
// Concurrency: a trained Disassembler is immutable, so Classify,
// ClassifyScored, Disassemble and the scored batch variants are safe for
// concurrent use from any number of goroutines — one shared Disassembler can
// serve concurrent requests. Disassemble additionally fans the per-trace
// classification out over the parallel.Workers() pool. The two mutating
// setters (SetSparseMode*, SetObserver) are configuration, not serving: call
// them before the first classification — they are read without
// synchronization on the hot path. The observer sinks themselves
// (DecisionLog, DriftMonitor, Reliability) are internally synchronized, so
// concurrent batch decodes feed them safely; within one batch the feeding
// order is the trace-stream order, across batches it is arrival order.
type Disassembler struct {
	group      groupLevel
	instr      [avr.NumGroups]groupLevel
	instrClass [avr.NumGroups][]avr.Class // label → class per group
	rd         groupLevel
	rr         groupLevel
	haveRegs   bool
	observer   *InferenceObserver // inference-quality sinks; nil = disabled
	sparseMode SparseMode         // see SetSparseMode; zero value is SparseAuto
}

// SparseCapable reports whether every trained level's template supports the
// sparse per-cell path (see features.Pipeline.SparseCapable). Templates
// fitted with scalogram-plane normalization (format v2 and earlier CSA
// templates) are not capable and always use the full path.
func (d *Disassembler) SparseCapable() bool {
	if d.group.pipe == nil || !d.group.pipe.SparseCapable() {
		return false
	}
	for i := range d.instr {
		if d.instr[i].pipe != nil && !d.instr[i].pipe.SparseCapable() {
			return false
		}
	}
	if d.haveRegs {
		if d.rd.pipe != nil && !d.rd.pipe.SparseCapable() {
			return false
		}
		if d.rr.pipe != nil && !d.rr.pipe.SparseCapable() {
			return false
		}
	}
	return true
}

// SetSparseMode picks the inference path. SparseOn fails with
// features.ErrSparseIncapable when the templates cannot support the sparse
// path. Must be called before classification starts — like SetObserver, the
// field is read without synchronization on the hot path.
func (d *Disassembler) SetSparseMode(m SparseMode) error {
	if m == SparseOn && !d.SparseCapable() {
		return fmt.Errorf("core: -sparse=on: %w", features.ErrSparseIncapable)
	}
	d.sparseMode = m
	return nil
}

// SetSparseModePreferred is SetSparseMode for callers that prefer the sparse
// path but must keep serving when a template cannot support it — a registry
// loading a mixed set of template versions, where one legacy v1/v2 file must
// not fail the whole load. SparseOn on a sparse-incapable template degrades
// to the full-CWT path instead of returning an error: the method installs
// SparseOff, increments the core.sparse.fallback counter and reports
// fellBack=true so the caller can log the downgrade. Every other combination
// behaves exactly like SetSparseMode and reports false.
func (d *Disassembler) SetSparseModePreferred(m SparseMode) (fellBack bool) {
	if m == SparseOn && !d.SparseCapable() {
		met().sparseFallback.Inc()
		d.sparseMode = SparseOff
		return true
	}
	d.sparseMode = m
	return false
}

// SparseMode returns the configured mode (not the resolved path; see
// SparseEnabled).
func (d *Disassembler) SparseMode() SparseMode { return d.sparseMode }

// SparseEnabled resolves the configured mode against the templates: the
// answer Classify acts on.
func (d *Disassembler) SparseEnabled() bool {
	switch d.sparseMode {
	case SparseOn:
		return true
	case SparseOff:
		return false
	default:
		return d.SparseCapable()
	}
}

// ErrNotTrained is returned when a Disassembler lacks a required level.
var ErrNotTrained = errors.New("core: disassembler not trained")

// TraceLen returns the trace length (in samples) the templates were fitted
// at — the length every submitted trace must have. 0 for an untrained
// disassembler.
func (d *Disassembler) TraceLen() int {
	if d.group.pipe == nil {
		return 0
	}
	return d.group.pipe.TraceLen()
}

// Classify decodes a single power trace into an instruction.
//
// On the full path the trace's CWT scalogram is computed exactly once and
// shared by every hierarchy level (group, instruction, Rd, Rr) through
// features.ExtractFromScalogram — the levels differ only in which
// time–frequency points they read and how they project them. On the sparse
// path (see SetSparseMode) no full scalogram exists at all: each level
// evaluates just its own selected cells as direct dot products
// (features.Pipeline.ExtractSparse), an order of magnitude cheaper.
//
// The trace is validated first (power.ValidateTrace): a NaN/Inf, constant or
// wrong-length capture is rejected with a typed error instead of silently
// producing a garbage label.
func (d *Disassembler) Classify(trace []float64) (Decoded, error) {
	if d.observer != nil {
		// An installed observer wants the scored path: same labels (the
		// scored predictors argmax the same scores), plus sink feeding.
		dec, err := d.ClassifyScored(trace)
		return dec.Decoded, err
	}
	if d.group.pipe == nil || d.group.clf == nil {
		return Decoded{}, ErrNotTrained
	}
	if err := power.ValidateTrace(trace, d.group.pipe.TraceLen()); err != nil {
		met().rejected.Inc()
		return Decoded{}, fmt.Errorf("core: rejecting trace: %w", err)
	}
	var (
		dec Decoded
		err error
	)
	if d.SparseEnabled() {
		dec, err = d.classifySparse(trace)
	} else {
		var flat []float64
		if flat, err = d.group.pipe.RawScalogram(trace); err != nil {
			met().rejected.Inc()
			return Decoded{}, fmt.Errorf("core: group features: %w", err)
		}
		dec, err = d.classifyScalogram(flat)
	}
	if err != nil {
		met().rejected.Inc()
		return dec, err
	}
	met().classified.Inc()
	return dec, nil
}

// classifyScalogram runs the hierarchical classification against a shared
// raw scalogram (see features.Pipeline.RawScalogram).
func (d *Disassembler) classifyScalogram(flat []float64) (Decoded, error) {
	return d.classifyExtract(func(pl *features.Pipeline) ([]float64, error) {
		return pl.ExtractFromScalogram(flat)
	})
}

// classifySparse runs the hierarchical classification through the sparse
// per-cell path: each level evaluates only its own selected cells of the
// trace, so no full scalogram is ever materialized.
func (d *Disassembler) classifySparse(trace []float64) (Decoded, error) {
	met().sparseTraces.Inc()
	return d.classifyExtract(func(pl *features.Pipeline) ([]float64, error) {
		return pl.ExtractSparse(trace)
	})
}

// trainedGroup reports whether group label gi carries instruction templates.
func (d *Disassembler) trainedGroup(gi int) bool {
	return gi >= 0 && gi < avr.NumGroups && d.instr[gi].pipe != nil && d.instr[gi].clf != nil
}

// maskedGroupScores returns the group classifier's per-class scores for gf
// with every group lacking instruction templates masked to -Inf. ok is false
// when the classifier exposes no raw scores (ml.Scorer) or when no trained
// group exists at all — the caller then keeps the original decision.
func (d *Disassembler) maskedGroupScores(gf []float64) ([]float64, bool) {
	sc, ok := d.group.clf.(ml.Scorer)
	if !ok {
		return nil, false
	}
	scores, err := sc.Scores(gf)
	if err != nil {
		return nil, false
	}
	any := false
	for g := range scores {
		if d.trainedGroup(g) {
			any = true
		} else {
			scores[g] = math.Inf(-1)
		}
	}
	return scores, any
}

// remapGroup redirects a group decision that landed on a group without
// instruction templates onto the best-scoring trained group. A subset
// disassembler's group classifier is trained on the full 8-way task
// (TrainSubset), so the occasional trace routes to a group it has no level-2
// templates for; a monitoring appliance should answer with the most likely
// group it can actually decode — the downstream majority fusion cancels the
// misread — rather than fail the trace. When the classifier exposes no
// scores the label is returned unchanged and the caller's untrained-group
// error stands.
func (d *Disassembler) remapGroup(gf []float64, gi int) int {
	scores, ok := d.maskedGroupScores(gf)
	if !ok {
		return gi
	}
	best := 0
	for g := range scores {
		if scores[g] > scores[best] {
			best = g
		}
	}
	met().groupRemapped.Inc()
	return best
}

// remapGroupScored is remapGroup for the scored path: the same trained-group
// restriction, with confidence and margin renormalized over the masked
// scores so the DecisionLevel reflects the restricted decision. No-op for
// decisions already inside the trained set.
func (d *Disassembler) remapGroupScored(gf []float64, sp ml.ScoredPrediction) ml.ScoredPrediction {
	if d.trainedGroup(sp.Label) {
		return sp
	}
	scores, ok := d.maskedGroupScores(gf)
	if !ok {
		return sp
	}
	met().groupRemapped.Inc()
	return ml.ScoredFromLogScores(scores)
}

// classifyExtract walks the hierarchy with the given per-level feature
// extraction — the shared-scalogram and sparse paths differ only here.
func (d *Disassembler) classifyExtract(extract func(*features.Pipeline) ([]float64, error)) (Decoded, error) {
	gf, err := extract(d.group.pipe)
	if err != nil {
		return Decoded{}, fmt.Errorf("core: group features: %w", err)
	}
	gi, err := d.group.clf.Predict(gf)
	if err != nil {
		return Decoded{}, fmt.Errorf("core: group classify: %w", err)
	}
	if gi < 0 || gi >= avr.NumGroups {
		return Decoded{}, fmt.Errorf("core: group label %d out of range", gi)
	}
	if !d.trainedGroup(gi) {
		gi = d.remapGroup(gf, gi)
	}
	lvl := d.instr[gi]
	if lvl.pipe == nil || lvl.clf == nil {
		return Decoded{}, fmt.Errorf("core: no instruction templates for group %d: %w", gi+1, ErrNotTrained)
	}
	inf, err := extract(lvl.pipe)
	if err != nil {
		return Decoded{}, fmt.Errorf("core: instruction features: %w", err)
	}
	ii, err := lvl.clf.Predict(inf)
	if err != nil {
		return Decoded{}, fmt.Errorf("core: instruction classify: %w", err)
	}
	if ii < 0 || ii >= len(d.instrClass[gi]) {
		return Decoded{}, fmt.Errorf("core: instruction label %d out of range for group %d", ii, gi+1)
	}
	cls := d.instrClass[gi][ii]
	out := Decoded{Class: cls, Group: cls.Group()}

	if d.haveRegs {
		sp := avr.SpecOf(cls)
		needRd, needRr := operandRegisters(sp.Operands, cls)
		if needRd {
			f, err := extract(d.rd.pipe)
			if err != nil {
				return Decoded{}, fmt.Errorf("core: Rd features: %w", err)
			}
			r, err := d.rd.clf.Predict(f)
			if err != nil {
				return Decoded{}, fmt.Errorf("core: Rd classify: %w", err)
			}
			out.Rd, out.HasRd = uint8(r), true
		}
		if needRr {
			f, err := extract(d.rr.pipe)
			if err != nil {
				return Decoded{}, fmt.Errorf("core: Rr features: %w", err)
			}
			r, err := d.rr.clf.Predict(f)
			if err != nil {
				return Decoded{}, fmt.Errorf("core: Rr classify: %w", err)
			}
			out.Rr, out.HasRr = uint8(r), true
		}
	}
	return out, nil
}

// boolAttr renders a boolean as a 0/1 span attribute.
func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// operandRegisters reports which register operands a class carries.
func operandRegisters(k avr.OperandKind, c avr.Class) (rd, rr bool) {
	switch k {
	case avr.OperandRdRr:
		return true, true
	case avr.OperandRdK, avr.OperandRdPairK, avr.OperandRd, avr.OperandRdAddr,
		avr.OperandRdPtr, avr.OperandRdQ, avr.OperandRdZ:
		return true, false
	case avr.OperandAddrRr, avr.OperandPtrRr, avr.OperandQRr:
		return false, true
	case avr.OperandRrB:
		if c == avr.OpBST || c == avr.OpBLD {
			return true, false
		}
		return false, true
	default:
		return false, false
	}
}

// Disassemble decodes a stream of traces (one per executed instruction)
// into a listing. The per-trace classifications run on the
// parallel.Workers() pool; the output (and, on failure, the decoded prefix
// plus the lowest-index error) is identical to classifying serially.
func (d *Disassembler) Disassemble(traces [][]float64) ([]Decoded, error) {
	return d.DisassembleCtx(context.Background(), traces)
}

// DisassembleCtx is Disassemble with cooperative cancellation. On a
// classification failure the decoded prefix plus the lowest-index error are
// returned, exactly like the serial flow; on cancellation the scheduling of
// new traces stops and the call returns a nil listing with ctx.Err().
func (d *Disassembler) DisassembleCtx(ctx context.Context, traces [][]float64) ([]Decoded, error) {
	if d.observer != nil {
		decs, err := d.DisassembleScoredCtx(ctx, traces)
		if decs == nil {
			return nil, err
		}
		out := make([]Decoded, len(decs))
		for i, dec := range decs {
			out[i] = dec.Decoded
		}
		return out, err
	}
	ctx, span := obs.Span(ctx, "core.disassemble")
	defer span.End()
	span.SetAttr("traces", float64(len(traces)))
	span.SetAttr("sparse", boolAttr(d.SparseEnabled()))
	out := make([]Decoded, len(traces))
	var (
		mu       sync.Mutex
		failIdx  = len(traces)
		failWith error
	)
	ctxErr := parallel.ForCtx(ctx, len(traces), func(i int) {
		dec, err := d.Classify(traces[i])
		if err != nil {
			mu.Lock()
			if i < failIdx {
				failIdx, failWith = i, err
			}
			mu.Unlock()
			return
		}
		out[i] = dec
	})
	if failWith != nil {
		return out[:failIdx], fmt.Errorf("core: trace %d: %w", failIdx, failWith)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// DisassembleScored is DisassembleScoredCtx with a background context.
func (d *Disassembler) DisassembleScored(traces [][]float64) ([]Decision, error) {
	return d.DisassembleScoredCtx(context.Background(), traces)
}

// DisassembleScoredCtx decodes a stream of traces with per-decision
// confidence. Classification fans out over the parallel.Workers() pool;
// the installed observer is then fed serially in trace-stream order, so the
// decision log's sampled records and the drift monitor's window contents
// are identical to a serial run regardless of worker count. Error semantics
// match DisassembleCtx (decoded prefix + lowest-index error; observer sees
// only the clean prefix).
func (d *Disassembler) DisassembleScoredCtx(ctx context.Context, traces [][]float64) ([]Decision, error) {
	ctx, span := obs.Span(ctx, "core.disassemble")
	defer span.End()
	span.SetAttr("traces", float64(len(traces)))
	span.SetAttr("sparse", boolAttr(d.SparseEnabled()))
	out := make([]Decision, len(traces))
	driftVecs := make([][]float64, len(traces))
	var (
		mu       sync.Mutex
		failIdx  = len(traces)
		failWith error
	)
	ctxErr := parallel.ForCtx(ctx, len(traces), func(i int) {
		// Per-trace fine span: only request tracers (Fine=true) pay for it;
		// the CLI session tracer and untraced batches skip at the flag check.
		tsp := span.FineChild("core.classify")
		tsp.SetAttr("trace", float64(i))
		dec, dv, err := d.classifyScored(traces[i], tsp)
		if err != nil {
			tsp.SetAttr("error", 1)
			tsp.End()
			mu.Lock()
			if i < failIdx {
				failIdx, failWith = i, err
			}
			mu.Unlock()
			return
		}
		tsp.SetAttr("confidence", dec.Confidence)
		tsp.End()
		out[i] = dec
		driftVecs[i] = dv
	})
	if ctxErr == nil {
		var confSum float64
		for i := 0; i < failIdx; i++ {
			d.feedObserver(out[i], driftVecs[i])
			confSum += out[i].Confidence
		}
		if failIdx > 0 {
			span.SetAttr("confidence.mean", confSum/float64(failIdx))
		}
		if o := d.observer; o != nil {
			if o.Drift != nil {
				span.SetAttr("drift.score", o.Drift.Score())
				span.SetAttr("drift.state", float64(o.Drift.State()))
			}
			span.SetAttr("decisions.seen", float64(o.Log.Seen()))
		}
	}
	if failWith != nil {
		return out[:failIdx], fmt.Errorf("core: trace %d: %w", failIdx, failWith)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Listing renders decoded instructions as assembler text.
func Listing(decs []Decoded) string {
	var b strings.Builder
	for _, d := range decs {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// registerContext reports the Instruction field a Decoded comparison should
// look at; used by malware flow checks.
func registerContext(c avr.Class, in avr.Instruction) (rd uint8, rr uint8, hasRd, hasRr bool) {
	hasRd, hasRr = operandRegisters(avr.SpecOf(c).Operands, c)
	return in.Rd, in.Rr, hasRd, hasRr
}
