package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/avr"
	"repro/internal/power"
	"repro/internal/store"
)

// The end-to-end accuracy regression gate: a deterministic synthetic dataset
// (power.Model with fixed seed) trained through the full hierarchy — group
// level, all eight instruction levels, Rd and Rr — with hard success-rate
// floors at every level plus a golden confusion-matrix summary. Any change
// that degrades the pipeline's statistical quality (feature selection, PCA,
// QDA fitting, normalization, trace synthesis) trips a floor; any change
// that silently alters its deterministic arithmetic trips the golden file.

// gateConfig sizes the gate: full hierarchy at a reduced scale so the gate
// stays affordable under -race while every level still fits on enough data
// to classify well above chance.
func gateConfig() TrainerConfig {
	cfg := DefaultTrainerConfig()
	cfg.Programs = 3
	cfg.TracesPerProgram = 8
	cfg.RegisterPrograms = 3
	cfg.RegisterTracesPerProgram = 8
	cfg.Seed = 1
	return cfg
}

// Per-level success-rate floors, set with margin under values measured at
// gateConfig() scale with NormTrace normalization (train: group 1.000,
// instr 0.965–1.000, rd 0.999, rr 0.997; held-out: group 0.993, class 0.703,
// rd 0.844, rr 0.903 — chance is 1/8 for groups, ~1/38 for classes, 1/32 for
// registers). The floors exist to catch regressions toward chance, while the
// golden summary below pins the exact deterministic behavior.
const (
	gateGroupTrainFloor = 0.97
	gateInstrTrainFloor = 0.90
	gateRegTrainFloor   = 0.90

	gateGroupEvalFloor = 0.90
	gateClassEvalFloor = 0.30
	gateRegEvalFloor   = 0.15

	// gateRdEvalFloor is separate from Rr: destination-register leakage is
	// measured stronger in the synthetic model.
	gateRdEvalFloor = 0.40
)

// confusionLevelOrder fixes the rendering order of the golden summary.
var confusionLevelOrder = []string{
	"group",
	"group1", "group2", "group3", "group4", "group5", "group6", "group7", "group8",
	"rd", "rr",
}

// confusionSummary renders one line per fitted level: class count, trace
// count, diagonal count, and accuracy to three decimals. Counts are exact
// integers, so the summary is reproducible wherever the float arithmetic is
// (see the GOARCH gate in the test).
func confusionSummary(conf map[string][][]int) string {
	var b strings.Builder
	for _, name := range confusionLevelOrder {
		cm, ok := conf[name]
		if !ok {
			continue
		}
		total, diag := 0, 0
		for i, row := range cm {
			for j, v := range row {
				total += v
				if i == j {
					diag += v
				}
			}
		}
		fmt.Fprintf(&b, "%s classes=%d total=%d correct=%d acc=%.3f\n",
			name, len(cm), total, diag, float64(diag)/float64(total))
	}
	return b.String()
}

// disassembleBothPaths decodes the stream through the sparse per-cell path
// AND the full-FFT path and requires instruction-identical listings — the
// sparse path is a performance rewrite, not a model change, so any label
// divergence on the gate campaign is a bug. Returns the (shared) decoding.
func disassembleBothPaths(t *testing.T, d *Disassembler, traces [][]float64) []Decoded {
	t.Helper()
	if err := d.SetSparseMode(SparseOn); err != nil {
		t.Fatal(err)
	}
	sparse, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetSparseMode(SparseOff); err != nil {
		t.Fatal(err)
	}
	full, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetSparseMode(SparseAuto); err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if sparse[i] != full[i] {
			t.Fatalf("trace %d: sparse path decoded %+v, full path decoded %+v", i, sparse[i], full[i])
		}
	}
	return sparse
}

func TestEndToEndAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy gate trains the full hierarchy; skipped in -short mode")
	}
	cfg := gateConfig()
	d, rep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Level 1: training-set floors from the report.
	t.Logf("train: group=%.4f instr=%v rd=%.4f rr=%.4f points=%d",
		rep.GroupTrainAccuracy, rep.InstrTrainAccuracy, rep.RdTrainAccuracy, rep.RrTrainAccuracy, rep.GroupPoints)
	if rep.GroupTrainAccuracy < gateGroupTrainFloor {
		t.Errorf("group train accuracy %.4f below floor %.2f", rep.GroupTrainAccuracy, gateGroupTrainFloor)
	}
	for g, acc := range rep.InstrTrainAccuracy {
		if acc < gateInstrTrainFloor {
			t.Errorf("group %d instruction train accuracy %.4f below floor %.2f", g+1, acc, gateInstrTrainFloor)
		}
	}
	if rep.RdTrainAccuracy < gateRegTrainFloor {
		t.Errorf("Rd train accuracy %.4f below floor %.2f", rep.RdTrainAccuracy, gateRegTrainFloor)
	}
	if rep.RrTrainAccuracy < gateRegTrainFloor {
		t.Errorf("Rr train accuracy %.4f below floor %.2f", rep.RrTrainAccuracy, gateRegTrainFloor)
	}
	if rep.Validation.Rejected() != 0 {
		t.Errorf("synthetic campaign produced rejected traces: %s", rep.Validation.String())
	}

	// Level 2: golden confusion summary. Integer confusion counts pin the
	// exact deterministic behavior of the whole train path. The file is
	// regenerated with REGEN_GOLDEN=1; the exact comparison runs on amd64
	// (the CI architecture — other architectures may contract floating-point
	// expressions differently, e.g. FMA on arm64, legitimately flipping
	// borderline decisions).
	summary := confusionSummary(rep.LevelConfusion)
	goldenPath := filepath.Join("testdata", "gate_confusion.golden")
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(summary), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
	} else if runtime.GOARCH == "amd64" {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run with REGEN_GOLDEN=1 to create): %v", err)
		}
		if string(want) != summary {
			t.Errorf("confusion summary drifted from golden (REGEN_GOLDEN=1 to accept):\n--- got ---\n%s--- want ---\n%s", summary, want)
		}
	}

	// Level 3: held-out evaluation — a fresh program environment and seeds
	// never seen in training, the paper's cross-program scenario. The
	// campaign is acquired once and reused, so the same traces also gate the
	// template-store round trips below.
	classBatches, regBatches := heldOutCampaign(t, cfg)
	base := evalHeldOut(t, classBatches, regBatches, func(t *testing.T, traces [][]float64) []Decoded {
		return disassembleBothPaths(t, d, traces)
	})
	assertGateFloors(t, "in-memory", base)

	// Level 4: the schema-v4 store round trip. An unquantized v4 template,
	// opened header-only and lazily materialized, must classify the whole
	// held-out campaign byte-identically to the in-memory disassembler —
	// float64 sections round-trip bitwise, so any divergence is a store bug.
	dir := t.TempDir()
	v4Path := filepath.Join(dir, "gate.tpl")
	if err := d.SaveStoreFile(v4Path, store.Options{}); err != nil {
		t.Fatal(err)
	}
	tpl, err := OpenTemplate(v4Path)
	if err != nil {
		t.Fatal(err)
	}
	defer tpl.Close()
	lazy, err := tpl.Disassembler()
	if err != nil {
		t.Fatal(err)
	}
	v4 := evalHeldOut(t, classBatches, regBatches, func(t *testing.T, traces [][]float64) []Decoded {
		decs, err := lazy.Disassemble(traces)
		if err != nil {
			t.Fatal(err)
		}
		return decs
	})
	for bi := range base.decodes {
		for i := range base.decodes[bi] {
			if v4.decodes[bi][i] != base.decodes[bi][i] {
				t.Fatalf("batch %d trace %d: v4-lazy decoded %+v, in-memory %+v",
					bi, i, v4.decodes[bi][i], base.decodes[bi][i])
			}
		}
	}

	// Level 5: quantization. Float32 sections carry a ≤2⁻²⁴ relative
	// rounding per value; individual borderline decisions may flip, so the
	// gate here is the same success-rate floors, not decode identity.
	q4Path := filepath.Join(dir, "gate_q.tpl")
	if err := d.SaveStoreFile(q4Path, store.Options{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	quant, err := LoadFile(q4Path)
	if err != nil {
		t.Fatal(err)
	}
	q4 := evalHeldOut(t, classBatches, regBatches, func(t *testing.T, traces [][]float64) []Decoded {
		decs, err := quant.Disassemble(traces)
		if err != nil {
			t.Fatal(err)
		}
		return decs
	})
	assertGateFloors(t, "quantized v4", q4)
}

// gateBatch is one held-out acquisition: the true stream and its traces.
type gateBatch struct {
	cl     avr.Class
	stream []avr.Instruction
	traces [][]float64
}

// heldOutCampaign acquires the cross-program evaluation streams in the exact
// rng order the gate has always used, so the synthesized traces (and thus
// the floors) are unchanged by the refactor that made them reusable.
func heldOutCampaign(t *testing.T, cfg TrainerConfig) (classBatches, regBatches []gateBatch) {
	t.Helper()
	camp, err := power.NewCampaign(cfg.Power, 0, 24601)
	if err != nil {
		t.Fatal(err)
	}
	prog := power.NewProgramEnv(cfg.Power, 24601, 11)
	rng := rand.New(rand.NewSource(7))
	for _, cl := range avr.AllClasses() {
		stream := make([]avr.Instruction, 4)
		for i := range stream {
			stream[i] = avr.RandomOperands(rng, cl)
		}
		traces, err := camp.AcquireSegments(rng, prog, stream)
		if err != nil {
			t.Fatal(err)
		}
		classBatches = append(classBatches, gateBatch{cl: cl, stream: stream, traces: traces})
	}
	// Register recovery on plain Rd/Rr two-operand classes.
	for _, cl := range []avr.Class{avr.OpADD, avr.OpAND, avr.OpEOR, avr.OpMOV} {
		stream := make([]avr.Instruction, 8)
		for i := range stream {
			stream[i] = avr.RandomOperands(rng, cl)
		}
		traces, err := camp.AcquireSegments(rng, prog, stream)
		if err != nil {
			t.Fatal(err)
		}
		regBatches = append(regBatches, gateBatch{cl: cl, stream: stream, traces: traces})
	}
	return classBatches, regBatches
}

// gateEval is one disassembler's held-out scorecard, with the raw decodes
// retained so store round-trip variants can be compared decode-for-decode.
type gateEval struct {
	groupSR, classSR, rdSR, rrSR float64
	rdTotal, rrTotal             int
	decodes                      [][]Decoded // class batches, then register batches
}

func evalHeldOut(t *testing.T, classBatches, regBatches []gateBatch, decode func(*testing.T, [][]float64) []Decoded) gateEval {
	t.Helper()
	var ev gateEval
	groupHit, classHit, total := 0, 0, 0
	for _, b := range classBatches {
		decs := decode(t, b.traces)
		ev.decodes = append(ev.decodes, decs)
		for _, dec := range decs {
			total++
			if dec.Group == b.cl.Group() {
				groupHit++
			}
			if avr.Canonical(avr.Instruction{Class: dec.Class, Rd: dec.Rd, Rr: dec.Rr}).Class ==
				avr.Canonical(avr.Instruction{Class: b.cl}).Class {
				classHit++
			}
		}
	}
	ev.groupSR = float64(groupHit) / float64(total)
	ev.classSR = float64(classHit) / float64(total)

	rdHit, rrHit := 0, 0
	for _, b := range regBatches {
		decs := decode(t, b.traces)
		ev.decodes = append(ev.decodes, decs)
		for i, dec := range decs {
			if dec.HasRd {
				ev.rdTotal++
				if dec.Rd == b.stream[i].Rd {
					rdHit++
				}
			}
			if dec.HasRr {
				ev.rrTotal++
				if dec.Rr == b.stream[i].Rr {
					rrHit++
				}
			}
		}
	}
	ev.rdSR = float64(rdHit) / float64(max(ev.rdTotal, 1))
	ev.rrSR = float64(rrHit) / float64(max(ev.rrTotal, 1))
	t.Logf("held-out: group=%.4f class=%.4f rd=%.4f (%d) rr=%.4f (%d) over %d traces",
		ev.groupSR, ev.classSR, ev.rdSR, ev.rdTotal, ev.rrSR, ev.rrTotal, total)
	return ev
}

func assertGateFloors(t *testing.T, label string, ev gateEval) {
	t.Helper()
	if ev.groupSR < gateGroupEvalFloor {
		t.Errorf("%s: held-out group SR %.4f below floor %.2f", label, ev.groupSR, gateGroupEvalFloor)
	}
	if ev.classSR < gateClassEvalFloor {
		t.Errorf("%s: held-out class SR %.4f below floor %.2f", label, ev.classSR, gateClassEvalFloor)
	}
	if ev.rdTotal == 0 || ev.rrTotal == 0 {
		t.Errorf("%s: register recovery never engaged on held-out register-bearing traces", label)
	}
	if ev.rdSR < gateRdEvalFloor {
		t.Errorf("%s: held-out Rd SR %.4f below floor %.2f", label, ev.rdSR, gateRdEvalFloor)
	}
	if ev.rrSR < gateRegEvalFloor {
		t.Errorf("%s: held-out Rr SR %.4f below floor %.2f", label, ev.rrSR, gateRegEvalFloor)
	}
}
