package core

import (
	"fmt"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/power"
)

// TrainerConfig scales and shapes the template-building campaign.
type TrainerConfig struct {
	Power power.Config

	// Programs and TracesPerProgram size the per-class instruction datasets
	// (the paper: 10 programs × 300 traces; 19 programs under CSA).
	Programs         int
	TracesPerProgram int

	// RegisterPrograms / RegisterTracesPerProgram size the Rd/Rr datasets.
	// Zero disables register recovery (opcode-only disassembly).
	RegisterPrograms         int
	RegisterTracesPerProgram int

	Pipeline   features.PipelineConfig
	Classifier ClassifierKind
	Seed       uint64
}

// DefaultTrainerConfig returns a laptop-scale configuration: the paper's
// preprocessing with reduced trace counts (use cmd/experiments -traces to
// approach paper scale).
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{
		Power:                    power.DefaultConfig(),
		Programs:                 4,
		TracesPerProgram:         12,
		RegisterPrograms:         4,
		RegisterTracesPerProgram: 12,
		Pipeline:                 features.CSAPipelineConfig(),
		Classifier:               ClassifierQDA,
		Seed:                     1,
	}
}

// Validate reports configuration errors.
func (c TrainerConfig) Validate() error {
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.Programs < 2 {
		return fmt.Errorf("core: need >= 2 programs for not-varying masks, got %d", c.Programs)
	}
	if c.TracesPerProgram < 2 {
		return fmt.Errorf("core: need >= 2 traces per program, got %d", c.TracesPerProgram)
	}
	if c.RegisterPrograms > 0 && c.RegisterPrograms < 2 {
		return fmt.Errorf("core: register campaign needs >= 2 programs, got %d", c.RegisterPrograms)
	}
	return nil
}

// TrainReport summarizes what training produced.
type TrainReport struct {
	GroupTrainAccuracy float64
	InstrTrainAccuracy [avr.NumGroups]float64
	RdTrainAccuracy    float64
	RrTrainAccuracy    float64
	GroupPoints        int
	InstrPoints        [avr.NumGroups]int
}

// Train runs the full acquisition + template-building flow of Fig. 1 on the
// golden device and returns a ready Disassembler.
func Train(cfg TrainerConfig) (*Disassembler, *TrainReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	d := &Disassembler{}
	rep := &TrainReport{}

	// Level 1: the 8-group classifier.
	groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
	if err != nil {
		return nil, nil, fmt.Errorf("core: group acquisition: %w", err)
	}
	d.group, rep.GroupTrainAccuracy, err = fitLevel(groupDS, avr.NumGroups, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: group level: %w", err)
	}
	rep.GroupPoints = d.group.pipe.NumPoints()

	// Level 2: per-group instruction classifiers.
	for g := avr.Group1; g <= avr.Group8; g++ {
		classes := avr.ClassesInGroup(g)
		ds, err := camp.CollectClasses(classes, cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return nil, nil, fmt.Errorf("core: group %d acquisition: %w", g, err)
		}
		gi := int(g - avr.Group1)
		d.instr[gi], rep.InstrTrainAccuracy[gi], err = fitLevel(ds, len(classes), cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: group %d level: %w", g, err)
		}
		d.instrClass[gi] = classes
		rep.InstrPoints[gi] = d.instr[gi].pipe.NumPoints()
	}

	// Level 3: register classifiers.
	if cfg.RegisterPrograms > 0 && cfg.RegisterTracesPerProgram > 0 {
		rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
		if err != nil {
			return nil, nil, fmt.Errorf("core: Rd acquisition: %w", err)
		}
		d.rd, rep.RdTrainAccuracy, err = fitLevel(rdDS, 32, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: Rd level: %w", err)
		}
		rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
		if err != nil {
			return nil, nil, fmt.Errorf("core: Rr acquisition: %w", err)
		}
		d.rr, rep.RrTrainAccuracy, err = fitLevel(rrDS, 32, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: Rr level: %w", err)
		}
		d.haveRegs = true
	}
	return d, rep, nil
}

// fitLevel fits one pipeline + classifier pair on a dataset and reports the
// training-set accuracy. The PCA dimensionality is clamped below the
// smallest per-class sample count so the QDA/LDA covariance estimates stay
// well conditioned even at reduced trace counts.
func fitLevel(ds *power.Dataset, nClasses int, cfg TrainerConfig) (groupLevel, float64, error) {
	counts := make([]int, nClasses)
	for _, l := range ds.Labels {
		if l >= 0 && l < nClasses {
			counts[l]++
		}
	}
	minCount := len(ds.Labels)
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	pcfg := cfg.Pipeline
	if maxDim := minCount/2 + 1; pcfg.NumComponents > maxDim {
		pcfg.NumComponents = maxDim
	}
	pipe, err := features.FitPipeline(ds.Traces, ds.Labels, ds.Programs, nClasses, pcfg)
	if err != nil {
		return groupLevel{}, 0, err
	}
	X, err := pipe.ExtractAll(ds.Traces)
	if err != nil {
		return groupLevel{}, 0, err
	}
	clf, err := NewClassifier(cfg.Classifier)
	if err != nil {
		return groupLevel{}, 0, err
	}
	if err := clf.Fit(X, ds.Labels); err != nil {
		return groupLevel{}, 0, err
	}
	acc, err := ml.EvaluateAccuracy(clf, X, ds.Labels)
	if err != nil {
		return groupLevel{}, 0, err
	}
	return groupLevel{pipe: pipe, clf: clf}, acc, nil
}

// TrainSubset trains a disassembler restricted to the given classes (still
// hierarchical: groups that appear among the classes get instruction
// classifiers). Useful for quick demonstrations and the examples.
func TrainSubset(cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(classes) < 2 {
		return nil, fmt.Errorf("core: TrainSubset needs >= 2 classes")
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &Disassembler{}

	// Group level trained on the full 8-way task so group routing works.
	groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	d.group, _, err = fitLevel(groupDS, avr.NumGroups, cfg)
	if err != nil {
		return nil, err
	}

	// Instruction level only for the groups covered by the subset.
	byGroup := map[avr.Group][]avr.Class{}
	for _, c := range classes {
		byGroup[c.Group()] = append(byGroup[c.Group()], c)
	}
	for g, cls := range byGroup {
		gi := int(g - avr.Group1)
		if len(cls) < 2 {
			// A lone class in its group still needs a 2-way pipeline; train
			// against the full group instead.
			cls = avr.ClassesInGroup(g)
		}
		ds, err := camp.CollectClasses(cls, cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return nil, err
		}
		d.instr[gi], _, err = fitLevel(ds, len(cls), cfg)
		if err != nil {
			return nil, err
		}
		d.instrClass[gi] = cls
	}

	if withRegisters && cfg.RegisterPrograms > 0 {
		rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
		if err != nil {
			return nil, err
		}
		d.rd, _, err = fitLevel(rdDS, 32, cfg)
		if err != nil {
			return nil, err
		}
		rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
		if err != nil {
			return nil, err
		}
		d.rr, _, err = fitLevel(rrDS, 32, cfg)
		if err != nil {
			return nil, err
		}
		d.haveRegs = true
	}
	return d, nil
}
