package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
)

// TrainerConfig scales and shapes the template-building campaign.
type TrainerConfig struct {
	Power power.Config

	// Programs and TracesPerProgram size the per-class instruction datasets
	// (the paper: 10 programs × 300 traces; 19 programs under CSA).
	Programs         int
	TracesPerProgram int

	// RegisterPrograms / RegisterTracesPerProgram size the Rd/Rr datasets.
	// Zero disables register recovery (opcode-only disassembly).
	RegisterPrograms         int
	RegisterTracesPerProgram int

	Pipeline   features.PipelineConfig
	Classifier ClassifierKind
	Seed       uint64
}

// DefaultTrainerConfig returns a laptop-scale configuration: the paper's
// preprocessing with reduced trace counts (use cmd/experiments -traces to
// approach paper scale).
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{
		Power:                    power.DefaultConfig(),
		Programs:                 4,
		TracesPerProgram:         12,
		RegisterPrograms:         4,
		RegisterTracesPerProgram: 12,
		Pipeline:                 features.CSAPipelineConfig(),
		Classifier:               ClassifierQDA,
		Seed:                     1,
	}
}

// Validate reports configuration errors.
func (c TrainerConfig) Validate() error {
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.Programs < 2 {
		return fmt.Errorf("core: need >= 2 programs for not-varying masks, got %d", c.Programs)
	}
	if c.TracesPerProgram < 2 {
		return fmt.Errorf("core: need >= 2 traces per program, got %d", c.TracesPerProgram)
	}
	if c.RegisterPrograms > 0 && c.RegisterPrograms < 2 {
		return fmt.Errorf("core: register campaign needs >= 2 programs, got %d", c.RegisterPrograms)
	}
	return nil
}

// TrainReport summarizes what training produced.
type TrainReport struct {
	GroupTrainAccuracy float64
	InstrTrainAccuracy [avr.NumGroups]float64
	RdTrainAccuracy    float64
	RrTrainAccuracy    float64
	GroupPoints        int
	InstrPoints        [avr.NumGroups]int
	// Validation aggregates the per-trace ingestion checks across every
	// level's dataset: how many traces were examined and how many were
	// rejected (non-finite, constant, wrong length) before fitting.
	Validation power.ValidationReport
	// LevelConfusion holds the training-set confusion counts of every fitted
	// level, keyed "group", "group1".."group8", "rd", "rr"; cm[true][predicted].
	LevelConfusion map[string][][]int `json:",omitempty"`
	// Stages is the stage-timing tree of this run — the single source both the
	// CLI timing table and the run manifest render from. TrainCtx and
	// TrainSubsetReportCtx populate it, installing a local tracer when the
	// context does not already carry one.
	Stages []*obs.SpanNode `json:",omitempty"`
}

// jobOut is what one template-building job reports back for the serial merge:
// its level name, its ingestion-validation counts and its training-set
// confusion matrix.
type jobOut struct {
	name string
	vrep power.ValidationReport
	conf [][]int
}

// Train runs the full acquisition + template-building flow of Fig. 1 on the
// golden device and returns a ready Disassembler.
//
// The eleven template-building jobs (group level, 8 instruction levels, Rd,
// Rr) are independent — every Campaign.Collect* call derives its randomness
// from the campaign seed alone, never from call order — so they run
// concurrently on the parallel.Workers() pool and the resulting templates
// are identical to a serial run. On failure the lowest-ordered job's error
// is reported, matching the serial flow.
func Train(cfg TrainerConfig) (*Disassembler, *TrainReport, error) {
	return TrainCtx(context.Background(), cfg)
}

// TrainCtx is Train with cooperative cancellation: the eleven jobs stop being
// scheduled once ctx is cancelled, jobs already running stop at their next
// pipeline stage, and the call returns ctx.Err() (a job's own error at a
// lower index still wins, per parallel.ForErrCtx).
func TrainCtx(ctx context.Context, cfg TrainerConfig) (*Disassembler, *TrainReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	// Stage timings always land in the report: when the caller brought no
	// tracer, a local one scoped to this run is installed.
	tracer := obs.TracerFrom(ctx)
	if tracer == nil {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	ctx, trainSpan := obs.Span(ctx, "core.train")
	defer trainSpan.End()
	d := &Disassembler{}
	rep := &TrainReport{}

	var jobs []func() (jobOut, error)
	// Level 1: the 8-group classifier.
	jobs = append(jobs, func() (jobOut, error) {
		out := jobOut{name: "group"}
		groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return out, fmt.Errorf("core: group acquisition: %w", err)
		}
		res, err := fitLevel(ctx, out.name, groupDS, avr.NumGroups, cfg)
		out.vrep, out.conf = res.vrep, res.conf
		if err != nil {
			return out, fmt.Errorf("core: group level: %w", err)
		}
		d.group, rep.GroupTrainAccuracy = res.level, res.acc
		rep.GroupPoints = d.group.pipe.NumPoints()
		return out, nil
	})
	// Level 2: per-group instruction classifiers.
	for g := avr.Group1; g <= avr.Group8; g++ {
		g := g
		jobs = append(jobs, func() (jobOut, error) {
			gi := int(g - avr.Group1)
			out := jobOut{name: fmt.Sprintf("group%d", gi+1)}
			classes := avr.ClassesInGroup(g)
			ds, err := camp.CollectClasses(classes, cfg.Programs, cfg.TracesPerProgram)
			if err != nil {
				return out, fmt.Errorf("core: group %d acquisition: %w", g, err)
			}
			res, err := fitLevel(ctx, out.name, ds, len(classes), cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, fmt.Errorf("core: group %d level: %w", g, err)
			}
			d.instr[gi], rep.InstrTrainAccuracy[gi] = res.level, res.acc
			d.instrClass[gi] = classes
			rep.InstrPoints[gi] = d.instr[gi].pipe.NumPoints()
			return out, nil
		})
	}
	// Level 3: register classifiers.
	withRegs := cfg.RegisterPrograms > 0 && cfg.RegisterTracesPerProgram > 0
	if withRegs {
		jobs = append(jobs, func() (jobOut, error) {
			out := jobOut{name: "rd"}
			rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return out, fmt.Errorf("core: Rd acquisition: %w", err)
			}
			res, err := fitLevel(ctx, out.name, rdDS, 32, cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, fmt.Errorf("core: Rd level: %w", err)
			}
			d.rd, rep.RdTrainAccuracy = res.level, res.acc
			return out, nil
		}, func() (jobOut, error) {
			out := jobOut{name: "rr"}
			rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return out, fmt.Errorf("core: Rr acquisition: %w", err)
			}
			res, err := fitLevel(ctx, out.name, rrDS, 32, cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, fmt.Errorf("core: Rr level: %w", err)
			}
			d.rr, rep.RrTrainAccuracy = res.level, res.acc
			return out, nil
		})
	}
	// Each job writes its output into its own slot; the merge below runs
	// serially in job order, so the aggregate report is deterministic.
	outs := make([]jobOut, len(jobs))
	if err := parallel.ForErrCtx(ctx, len(jobs), func(i int) error {
		out, err := jobs[i]()
		outs[i] = out
		return err
	}); err != nil {
		return nil, nil, err
	}
	rep.LevelConfusion = map[string][][]int{}
	for _, out := range outs {
		rep.Validation.Merge(out.vrep)
		if out.conf != nil {
			rep.LevelConfusion[out.name] = out.conf
		}
	}
	d.haveRegs = withRegs
	trainSpan.End()
	rep.Stages = tracer.Tree()
	return d, rep, nil
}

// levelResult is everything fitLevel learns about one hierarchy level.
type levelResult struct {
	level groupLevel
	acc   float64 // training-set accuracy (confusion diagonal)
	vrep  power.ValidationReport
	conf  [][]int // training-set confusion counts cm[true][predicted]
}

// fitLevel fits one pipeline + classifier pair on a dataset and reports the
// training-set accuracy and confusion counts. Ingestion first sanitizes the
// dataset — defective traces (non-finite, constant, wrong length against the
// configured TraceLen) are rejected per-trace and counted in the returned
// report, so a few bad captures never abort or poison a level. The PCA
// dimensionality is clamped below the smallest per-class sample count so the
// QDA/LDA covariance estimates stay well conditioned even at reduced trace
// counts. name labels the level's stage span ("core.level.<name>").
func fitLevel(ctx context.Context, name string, ds *power.Dataset, nClasses int, cfg TrainerConfig) (levelResult, error) {
	ctx, span := obs.Span(ctx, "core.level."+name)
	defer span.End()
	var res levelResult
	ds, res.vrep = ds.Sanitize(cfg.Power.TraceLen)
	if ds.Len() == 0 {
		return res, fmt.Errorf("core: every trace rejected at ingestion (%s)", res.vrep)
	}
	counts := make([]int, nClasses)
	for _, l := range ds.Labels {
		if l >= 0 && l < nClasses {
			counts[l]++
		}
	}
	minCount := len(ds.Labels)
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	pcfg := cfg.Pipeline
	if maxDim := minCount/2 + 1; pcfg.NumComponents > maxDim {
		pcfg.NumComponents = maxDim
	}
	pipe, err := features.FitPipelineCtx(ctx, ds.Traces, ds.Labels, ds.Programs, nClasses, pcfg)
	if err != nil {
		return res, err
	}
	extCtx, extSpan := obs.Span(ctx, "core.extract")
	X, err := pipe.ExtractAllCtx(extCtx, ds.Traces)
	extSpan.End()
	if err != nil {
		return res, err
	}
	clf, err := NewClassifier(cfg.Classifier)
	if err != nil {
		return res, err
	}
	_, fitSpan := obs.Span(ctx, "core.classifier_fit")
	err = clf.Fit(X, ds.Labels)
	fitSpan.End()
	if err != nil {
		return res, err
	}
	_, evalSpan := obs.Span(ctx, "core.train_eval")
	cm, err := ml.ConfusionMatrix(clf, X, ds.Labels, nClasses)
	evalSpan.End()
	if err != nil {
		return res, err
	}
	res.level = groupLevel{pipe: pipe, clf: clf}
	res.conf = cm
	res.acc = accuracyFromConfusion(cm)
	return res, nil
}

// accuracyFromConfusion returns diagonal/total — the same value
// ml.EvaluateAccuracy computes, derived from the confusion counts instead of
// a second prediction pass.
func accuracyFromConfusion(cm [][]int) float64 {
	hit, total := 0, 0
	for i, row := range cm {
		for j, v := range row {
			total += v
			if i == j {
				hit += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// TrainSubset trains a disassembler restricted to the given classes (still
// hierarchical: groups that appear among the classes get instruction
// classifiers). Useful for quick demonstrations and the examples.
func TrainSubset(cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, error) {
	return TrainSubsetCtx(context.Background(), cfg, classes, withRegisters)
}

// TrainSubsetCtx is TrainSubset with cooperative cancellation (see TrainCtx).
func TrainSubsetCtx(ctx context.Context, cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, error) {
	d, _, err := TrainSubsetReportCtx(ctx, cfg, classes, withRegisters)
	return d, err
}

// TrainSubsetReport is TrainSubset returning the training report as well.
func TrainSubsetReport(cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, *TrainReport, error) {
	return TrainSubsetReportCtx(context.Background(), cfg, classes, withRegisters)
}

// TrainSubsetReportCtx is TrainSubsetCtx returning the same TrainReport
// TrainCtx produces (accuracies, validation counts, per-level confusion,
// stage timings), restricted to the levels the subset actually trains.
func TrainSubsetReportCtx(ctx context.Context, cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, *TrainReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(classes) < 2 {
		return nil, nil, fmt.Errorf("core: TrainSubset needs >= 2 classes")
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	tracer := obs.TracerFrom(ctx)
	if tracer == nil {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	ctx, trainSpan := obs.Span(ctx, "core.train_subset")
	defer trainSpan.End()
	d := &Disassembler{}
	rep := &TrainReport{}

	var jobs []func() (jobOut, error)
	// Group level trained on the full 8-way task so group routing works.
	jobs = append(jobs, func() (jobOut, error) {
		out := jobOut{name: "group"}
		groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return out, err
		}
		res, err := fitLevel(ctx, out.name, groupDS, avr.NumGroups, cfg)
		out.vrep, out.conf = res.vrep, res.conf
		if err != nil {
			return out, err
		}
		d.group, rep.GroupTrainAccuracy = res.level, res.acc
		rep.GroupPoints = d.group.pipe.NumPoints()
		return out, nil
	})

	// Instruction level only for the groups covered by the subset. The map is
	// walked in sorted group order so the job list — and therefore which error
	// surfaces on failure — is deterministic.
	byGroup := map[avr.Group][]avr.Class{}
	for _, c := range classes {
		byGroup[c.Group()] = append(byGroup[c.Group()], c)
	}
	groups := make([]avr.Group, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		g, cls := g, byGroup[g]
		jobs = append(jobs, func() (jobOut, error) {
			gi := int(g - avr.Group1)
			out := jobOut{name: fmt.Sprintf("group%d", gi+1)}
			if len(cls) < 2 {
				// A lone class in its group still needs a 2-way pipeline; train
				// against the full group instead.
				cls = avr.ClassesInGroup(g)
			}
			ds, err := camp.CollectClasses(cls, cfg.Programs, cfg.TracesPerProgram)
			if err != nil {
				return out, err
			}
			res, err := fitLevel(ctx, out.name, ds, len(cls), cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, err
			}
			d.instr[gi], rep.InstrTrainAccuracy[gi] = res.level, res.acc
			d.instrClass[gi] = cls
			rep.InstrPoints[gi] = d.instr[gi].pipe.NumPoints()
			return out, nil
		})
	}

	withRegs := withRegisters && cfg.RegisterPrograms > 0
	if withRegs {
		jobs = append(jobs, func() (jobOut, error) {
			out := jobOut{name: "rd"}
			rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return out, err
			}
			res, err := fitLevel(ctx, out.name, rdDS, 32, cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, err
			}
			d.rd, rep.RdTrainAccuracy = res.level, res.acc
			return out, nil
		}, func() (jobOut, error) {
			out := jobOut{name: "rr"}
			rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return out, err
			}
			res, err := fitLevel(ctx, out.name, rrDS, 32, cfg)
			out.vrep, out.conf = res.vrep, res.conf
			if err != nil {
				return out, err
			}
			d.rr, rep.RrTrainAccuracy = res.level, res.acc
			return out, nil
		})
	}
	outs := make([]jobOut, len(jobs))
	if err := parallel.ForErrCtx(ctx, len(jobs), func(i int) error {
		out, err := jobs[i]()
		outs[i] = out
		return err
	}); err != nil {
		return nil, nil, err
	}
	rep.LevelConfusion = map[string][][]int{}
	for _, out := range outs {
		rep.Validation.Merge(out.vrep)
		if out.conf != nil {
			rep.LevelConfusion[out.name] = out.conf
		}
	}
	d.haveRegs = withRegs
	trainSpan.End()
	rep.Stages = tracer.Tree()
	return d, rep, nil
}
