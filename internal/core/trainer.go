package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/power"
)

// TrainerConfig scales and shapes the template-building campaign.
type TrainerConfig struct {
	Power power.Config

	// Programs and TracesPerProgram size the per-class instruction datasets
	// (the paper: 10 programs × 300 traces; 19 programs under CSA).
	Programs         int
	TracesPerProgram int

	// RegisterPrograms / RegisterTracesPerProgram size the Rd/Rr datasets.
	// Zero disables register recovery (opcode-only disassembly).
	RegisterPrograms         int
	RegisterTracesPerProgram int

	Pipeline   features.PipelineConfig
	Classifier ClassifierKind
	Seed       uint64
}

// DefaultTrainerConfig returns a laptop-scale configuration: the paper's
// preprocessing with reduced trace counts (use cmd/experiments -traces to
// approach paper scale).
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{
		Power:                    power.DefaultConfig(),
		Programs:                 4,
		TracesPerProgram:         12,
		RegisterPrograms:         4,
		RegisterTracesPerProgram: 12,
		Pipeline:                 features.CSAPipelineConfig(),
		Classifier:               ClassifierQDA,
		Seed:                     1,
	}
}

// Validate reports configuration errors.
func (c TrainerConfig) Validate() error {
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.Programs < 2 {
		return fmt.Errorf("core: need >= 2 programs for not-varying masks, got %d", c.Programs)
	}
	if c.TracesPerProgram < 2 {
		return fmt.Errorf("core: need >= 2 traces per program, got %d", c.TracesPerProgram)
	}
	if c.RegisterPrograms > 0 && c.RegisterPrograms < 2 {
		return fmt.Errorf("core: register campaign needs >= 2 programs, got %d", c.RegisterPrograms)
	}
	return nil
}

// TrainReport summarizes what training produced.
type TrainReport struct {
	GroupTrainAccuracy float64
	InstrTrainAccuracy [avr.NumGroups]float64
	RdTrainAccuracy    float64
	RrTrainAccuracy    float64
	GroupPoints        int
	InstrPoints        [avr.NumGroups]int
	// Validation aggregates the per-trace ingestion checks across every
	// level's dataset: how many traces were examined and how many were
	// rejected (non-finite, constant, wrong length) before fitting.
	Validation power.ValidationReport
}

// Train runs the full acquisition + template-building flow of Fig. 1 on the
// golden device and returns a ready Disassembler.
//
// The eleven template-building jobs (group level, 8 instruction levels, Rd,
// Rr) are independent — every Campaign.Collect* call derives its randomness
// from the campaign seed alone, never from call order — so they run
// concurrently on the parallel.Workers() pool and the resulting templates
// are identical to a serial run. On failure the lowest-ordered job's error
// is reported, matching the serial flow.
func Train(cfg TrainerConfig) (*Disassembler, *TrainReport, error) {
	return TrainCtx(context.Background(), cfg)
}

// TrainCtx is Train with cooperative cancellation: the eleven jobs stop being
// scheduled once ctx is cancelled, jobs already running stop at their next
// pipeline stage, and the call returns ctx.Err() (a job's own error at a
// lower index still wins, per parallel.ForErrCtx).
func TrainCtx(ctx context.Context, cfg TrainerConfig) (*Disassembler, *TrainReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	d := &Disassembler{}
	rep := &TrainReport{}

	var jobs []func() (power.ValidationReport, error)
	// Level 1: the 8-group classifier.
	jobs = append(jobs, func() (vr power.ValidationReport, err error) {
		groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return vr, fmt.Errorf("core: group acquisition: %w", err)
		}
		if d.group, rep.GroupTrainAccuracy, vr, err = fitLevel(ctx, groupDS, avr.NumGroups, cfg); err != nil {
			return vr, fmt.Errorf("core: group level: %w", err)
		}
		rep.GroupPoints = d.group.pipe.NumPoints()
		return vr, nil
	})
	// Level 2: per-group instruction classifiers.
	for g := avr.Group1; g <= avr.Group8; g++ {
		g := g
		jobs = append(jobs, func() (vr power.ValidationReport, err error) {
			classes := avr.ClassesInGroup(g)
			ds, err := camp.CollectClasses(classes, cfg.Programs, cfg.TracesPerProgram)
			if err != nil {
				return vr, fmt.Errorf("core: group %d acquisition: %w", g, err)
			}
			gi := int(g - avr.Group1)
			if d.instr[gi], rep.InstrTrainAccuracy[gi], vr, err = fitLevel(ctx, ds, len(classes), cfg); err != nil {
				return vr, fmt.Errorf("core: group %d level: %w", g, err)
			}
			d.instrClass[gi] = classes
			rep.InstrPoints[gi] = d.instr[gi].pipe.NumPoints()
			return vr, nil
		})
	}
	// Level 3: register classifiers.
	withRegs := cfg.RegisterPrograms > 0 && cfg.RegisterTracesPerProgram > 0
	if withRegs {
		jobs = append(jobs, func() (vr power.ValidationReport, err error) {
			rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return vr, fmt.Errorf("core: Rd acquisition: %w", err)
			}
			if d.rd, rep.RdTrainAccuracy, vr, err = fitLevel(ctx, rdDS, 32, cfg); err != nil {
				return vr, fmt.Errorf("core: Rd level: %w", err)
			}
			return vr, nil
		}, func() (vr power.ValidationReport, err error) {
			rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return vr, fmt.Errorf("core: Rr acquisition: %w", err)
			}
			if d.rr, rep.RrTrainAccuracy, vr, err = fitLevel(ctx, rrDS, 32, cfg); err != nil {
				return vr, fmt.Errorf("core: Rr level: %w", err)
			}
			return vr, nil
		})
	}
	// Each job writes its validation report into its own slot; the merge
	// below runs serially in job order, so the aggregate is deterministic.
	reports := make([]power.ValidationReport, len(jobs))
	if err := parallel.ForErrCtx(ctx, len(jobs), func(i int) error {
		vr, err := jobs[i]()
		reports[i] = vr
		return err
	}); err != nil {
		return nil, nil, err
	}
	for _, vr := range reports {
		rep.Validation.Merge(vr)
	}
	d.haveRegs = withRegs
	return d, rep, nil
}

// fitLevel fits one pipeline + classifier pair on a dataset and reports the
// training-set accuracy. Ingestion first sanitizes the dataset — defective
// traces (non-finite, constant, wrong length against the configured
// TraceLen) are rejected per-trace and counted in the returned report, so a
// few bad captures never abort or poison a level. The PCA dimensionality is
// clamped below the smallest per-class sample count so the QDA/LDA
// covariance estimates stay well conditioned even at reduced trace counts.
func fitLevel(ctx context.Context, ds *power.Dataset, nClasses int, cfg TrainerConfig) (groupLevel, float64, power.ValidationReport, error) {
	ds, vrep := ds.Sanitize(cfg.Power.TraceLen)
	if ds.Len() == 0 {
		return groupLevel{}, 0, vrep, fmt.Errorf("core: every trace rejected at ingestion (%s)", vrep)
	}
	counts := make([]int, nClasses)
	for _, l := range ds.Labels {
		if l >= 0 && l < nClasses {
			counts[l]++
		}
	}
	minCount := len(ds.Labels)
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	pcfg := cfg.Pipeline
	if maxDim := minCount/2 + 1; pcfg.NumComponents > maxDim {
		pcfg.NumComponents = maxDim
	}
	pipe, err := features.FitPipelineCtx(ctx, ds.Traces, ds.Labels, ds.Programs, nClasses, pcfg)
	if err != nil {
		return groupLevel{}, 0, vrep, err
	}
	X, err := pipe.ExtractAllCtx(ctx, ds.Traces)
	if err != nil {
		return groupLevel{}, 0, vrep, err
	}
	clf, err := NewClassifier(cfg.Classifier)
	if err != nil {
		return groupLevel{}, 0, vrep, err
	}
	if err := clf.Fit(X, ds.Labels); err != nil {
		return groupLevel{}, 0, vrep, err
	}
	acc, err := ml.EvaluateAccuracy(clf, X, ds.Labels)
	if err != nil {
		return groupLevel{}, 0, vrep, err
	}
	return groupLevel{pipe: pipe, clf: clf}, acc, vrep, nil
}

// TrainSubset trains a disassembler restricted to the given classes (still
// hierarchical: groups that appear among the classes get instruction
// classifiers). Useful for quick demonstrations and the examples.
func TrainSubset(cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, error) {
	return TrainSubsetCtx(context.Background(), cfg, classes, withRegisters)
}

// TrainSubsetCtx is TrainSubset with cooperative cancellation (see TrainCtx).
func TrainSubsetCtx(ctx context.Context, cfg TrainerConfig, classes []avr.Class, withRegisters bool) (*Disassembler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(classes) < 2 {
		return nil, fmt.Errorf("core: TrainSubset needs >= 2 classes")
	}
	camp, err := power.NewCampaign(cfg.Power, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &Disassembler{}

	var jobs []func() error
	// Group level trained on the full 8-way task so group routing works.
	jobs = append(jobs, func() error {
		groupDS, err := camp.CollectGroups(cfg.Programs, cfg.TracesPerProgram)
		if err != nil {
			return err
		}
		d.group, _, _, err = fitLevel(ctx, groupDS, avr.NumGroups, cfg)
		return err
	})

	// Instruction level only for the groups covered by the subset. The map is
	// walked in sorted group order so the job list — and therefore which error
	// surfaces on failure — is deterministic.
	byGroup := map[avr.Group][]avr.Class{}
	for _, c := range classes {
		byGroup[c.Group()] = append(byGroup[c.Group()], c)
	}
	groups := make([]avr.Group, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		g, cls := g, byGroup[g]
		jobs = append(jobs, func() error {
			gi := int(g - avr.Group1)
			if len(cls) < 2 {
				// A lone class in its group still needs a 2-way pipeline; train
				// against the full group instead.
				cls = avr.ClassesInGroup(g)
			}
			ds, err := camp.CollectClasses(cls, cfg.Programs, cfg.TracesPerProgram)
			if err != nil {
				return err
			}
			if d.instr[gi], _, _, err = fitLevel(ctx, ds, len(cls), cfg); err != nil {
				return err
			}
			d.instrClass[gi] = cls
			return nil
		})
	}

	withRegs := withRegisters && cfg.RegisterPrograms > 0
	if withRegs {
		jobs = append(jobs, func() error {
			rdDS, err := camp.CollectRegisters(true, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return err
			}
			d.rd, _, _, err = fitLevel(ctx, rdDS, 32, cfg)
			return err
		}, func() error {
			rrDS, err := camp.CollectRegisters(false, cfg.RegisterPrograms, cfg.RegisterTracesPerProgram)
			if err != nil {
				return err
			}
			d.rr, _, _, err = fitLevel(ctx, rrDS, 32, cfg)
			return err
		})
	}
	if err := parallel.ForErrCtx(ctx, len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	d.haveRegs = withRegs
	return d, nil
}
