package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
)

// Template profiling is by far the most expensive step of the flow (the
// paper uploads 10–19 program files per class and captures thousands of
// traces). This file persists a trained Disassembler with encoding/gob so
// templates built once can be shipped with a monitoring appliance and
// reloaded instantly.

// templateFormatVersion guards against loading incompatible files. Version 2
// added the per-pipeline drift baseline (features.FeatureBaseline) for
// covariate-shift monitoring; version-1 files still load — gob leaves the
// absent Baseline nil — but drift monitoring is unavailable for them.
// Version 3 added the wavelet-bank configuration and normalization mode
// (dsp.BankConfig / features.NormMode inside PipelineConfig) that sparse
// per-cell inference is rebuilt from; v1/v2 files still load — the absent
// fields decode to their zero values, meaning the paper's bank and the
// legacy scalogram-plane normalization — and classify via the full-CWT path
// (Disassembler.SparseCapable reports false for their CSA templates).
const templateFormatVersion = 3

// minTemplateFormatVersion is the oldest format Load still accepts.
const minTemplateFormatVersion = 1

// ErrTemplateFormat is wrapped into every Load failure caused by the
// template file itself — truncated or corrupted gob data, an unknown format
// version, or decoded state that fails validation. Callers distinguish "bad
// file" from I/O errors with errors.Is.
var ErrTemplateFormat = errors.New("core: invalid template file")

// levelState is one (pipeline, classifier) pair in serialized form.
// Present distinguishes trained levels (gob cannot carry nil array
// elements, so levels are stored by value).
type levelState struct {
	Present bool
	Pipe    *features.PipelineState
	Clf     *ml.ClassifierState
}

// disassemblerState is the full serialized template set.
type disassemblerState struct {
	Version    int
	Group      levelState
	Instr      [avr.NumGroups]levelState
	InstrClass [avr.NumGroups][]avr.Class
	Rd, Rr     levelState
	HaveRegs   bool
}

func snapshotLevel(lvl groupLevel) (levelState, error) {
	if lvl.pipe == nil || lvl.clf == nil {
		return levelState{}, nil // untrained level
	}
	ps, err := lvl.pipe.State()
	if err != nil {
		return levelState{}, err
	}
	cs, err := ml.SnapshotClassifier(lvl.clf)
	if err != nil {
		return levelState{}, err
	}
	return levelState{Present: true, Pipe: ps, Clf: cs}, nil
}

func restoreLevel(st levelState) (groupLevel, error) {
	if !st.Present {
		return groupLevel{}, nil
	}
	pipe, err := features.PipelineFromState(st.Pipe)
	if err != nil {
		return groupLevel{}, err
	}
	clf, err := ml.RestoreClassifier(st.Clf)
	if err != nil {
		return groupLevel{}, err
	}
	return groupLevel{pipe: pipe, clf: clf}, nil
}

// Save writes the trained template set to w.
func (d *Disassembler) Save(w io.Writer) error {
	if d.group.pipe == nil {
		return errors.New("core: cannot save an untrained disassembler")
	}
	st := disassemblerState{Version: templateFormatVersion, HaveRegs: d.haveRegs}
	var err error
	if st.Group, err = snapshotLevel(d.group); err != nil {
		return fmt.Errorf("core: saving group level: %w", err)
	}
	for i := range d.instr {
		if st.Instr[i], err = snapshotLevel(d.instr[i]); err != nil {
			return fmt.Errorf("core: saving group %d level: %w", i+1, err)
		}
		st.InstrClass[i] = d.instrClass[i]
	}
	if d.haveRegs {
		if st.Rd, err = snapshotLevel(d.rd); err != nil {
			return fmt.Errorf("core: saving Rd level: %w", err)
		}
		if st.Rr, err = snapshotLevel(d.rr); err != nil {
			return fmt.Errorf("core: saving Rr level: %w", err)
		}
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Load reads a template set previously written with Save. A defective file —
// truncated or bit-flipped gob data, a format version this build does not
// know, class tables holding undefined instruction classes, or snapshot
// state that fails reconstruction — yields a descriptive error wrapping
// ErrTemplateFormat and never a panic or a partially initialized
// Disassembler.
func Load(r io.Reader) (*Disassembler, error) {
	var st disassemblerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decoding gob stream (truncated or corrupted?): %w", ErrTemplateFormat, err)
	}
	if st.Version > templateFormatVersion {
		return nil, fmt.Errorf("%w: format version %d is newer than this build supports (%d) — upgrade the tool",
			ErrTemplateFormat, st.Version, templateFormatVersion)
	}
	if st.Version < minTemplateFormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d–%d", ErrTemplateFormat, st.Version, minTemplateFormatVersion, templateFormatVersion)
	}
	d := &Disassembler{haveRegs: st.HaveRegs}
	var err error
	if d.group, err = restoreLevel(st.Group); err != nil {
		return nil, fmt.Errorf("%w: restoring group level: %w", ErrTemplateFormat, err)
	}
	if d.group.pipe == nil {
		return nil, fmt.Errorf("%w: file lacks a group level", ErrTemplateFormat)
	}
	for i := range d.instr {
		if d.instr[i], err = restoreLevel(st.Instr[i]); err != nil {
			return nil, fmt.Errorf("%w: restoring group %d level: %w", ErrTemplateFormat, i+1, err)
		}
		// Class tables index into avr.SpecOf at classification time; screen
		// them here so a corrupted file cannot smuggle in a panic.
		for _, c := range st.InstrClass[i] {
			if !avr.ValidClass(c) {
				return nil, fmt.Errorf("%w: group %d class table holds undefined class %d", ErrTemplateFormat, i+1, c)
			}
		}
		d.instrClass[i] = st.InstrClass[i]
	}
	if st.HaveRegs {
		if d.rd, err = restoreLevel(st.Rd); err != nil {
			return nil, fmt.Errorf("%w: restoring Rd level: %w", ErrTemplateFormat, err)
		}
		if d.rr, err = restoreLevel(st.Rr); err != nil {
			return nil, fmt.Errorf("%w: restoring Rr level: %w", ErrTemplateFormat, err)
		}
	}
	return d, nil
}
