package core

import (
	"math/rand"
	"testing"

	"repro/internal/avr"
	"repro/internal/dsp"
	"repro/internal/parallel"
	"repro/internal/power"
)

// acquireTestTraces collects a deterministic batch of labeled traces from an
// unseen program environment.
func acquireTestTraces(t *testing.T, cfg TrainerConfig, classes []avr.Class, perClass int) [][]float64 {
	t.Helper()
	camp, err := power.NewCampaign(cfg.Power, 0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	prog := power.NewProgramEnv(cfg.Power, 4242, 3)
	var traces [][]float64
	for _, cl := range classes {
		stream := make([]avr.Instruction, perClass)
		for i := range stream {
			stream[i] = avr.RandomOperands(rng, cl)
		}
		tr, err := camp.AcquireSegments(rng, prog, stream)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr...)
	}
	return traces
}

// TestClassifyOneTransformPerTrace pins the cost invariants of both inference
// paths: with sparse off, a hierarchical classification — group, instruction,
// and (when trained) Rd/Rr levels — costs exactly one full CWT per trace and
// Disassemble costs exactly len(traces); on the sparse path it costs ZERO
// full CWTs — only per-level sparse evaluations.
func TestClassifyOneTransformPerTrace(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADD, avr.OpAND, avr.OpLDI, avr.OpSEC}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	traces := acquireTestTraces(t, cfg, classes, 3)

	if err := d.SetSparseMode(SparseOff); err != nil {
		t.Fatal(err)
	}
	before := dsp.TransformCount()
	if _, err := d.Classify(traces[0]); err != nil {
		t.Fatal(err)
	}
	if got := dsp.TransformCount() - before; got != 1 {
		t.Fatalf("Classify ran %d CWTs, want exactly 1", got)
	}

	before = dsp.TransformCount()
	if _, err := d.Disassemble(traces); err != nil {
		t.Fatal(err)
	}
	if got := dsp.TransformCount() - before; got != uint64(len(traces)) {
		t.Fatalf("Disassemble of %d traces ran %d CWTs, want exactly %d", len(traces), got, len(traces))
	}

	// Sparse path: no full transform at all, and at least one sparse
	// evaluation per hierarchy level actually consulted (group + instr here).
	if err := d.SetSparseMode(SparseOn); err != nil {
		t.Fatal(err)
	}
	before = dsp.TransformCount()
	sparseBefore := dsp.SparseTransformCount()
	if _, err := d.Classify(traces[0]); err != nil {
		t.Fatal(err)
	}
	if got := dsp.TransformCount() - before; got != 0 {
		t.Fatalf("sparse Classify ran %d full CWTs, want 0", got)
	}
	if got := dsp.SparseTransformCount() - sparseBefore; got != 2 {
		t.Fatalf("sparse Classify ran %d sparse evaluations, want 2 (group + instr)", got)
	}

	before = dsp.TransformCount()
	if _, err := d.Disassemble(traces); err != nil {
		t.Fatal(err)
	}
	if got := dsp.TransformCount() - before; got != 0 {
		t.Fatalf("sparse Disassemble of %d traces ran %d full CWTs, want 0", len(traces), got)
	}
}

// TestDisassembleParallelEquivalence requires the parallel Disassemble to
// produce exactly the serial decoding.
func TestDisassembleParallelEquivalence(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADD, avr.OpAND, avr.OpLDI, avr.OpSEC}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	traces := acquireTestTraces(t, cfg, classes, 4)

	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	want, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	got, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trace %d decoded differently: %+v vs %+v", i, want[i], got[i])
		}
	}

	// A bad trace fails identically too: same prefix length, same index in
	// the error, at any worker count.
	bad := append([][]float64{}, traces[:5]...)
	bad[3] = traces[3][:10]
	parallel.SetWorkers(1)
	prefixS, errS := d.Disassemble(bad)
	parallel.SetWorkers(4)
	prefixP, errP := d.Disassemble(bad)
	if errS == nil || errP == nil {
		t.Fatal("truncated trace should fail at every worker count")
	}
	if len(prefixS) != 3 || len(prefixP) != 3 {
		t.Fatalf("failure prefixes: serial %d, parallel %d, want 3", len(prefixS), len(prefixP))
	}
	if errS.Error() != errP.Error() {
		t.Fatalf("errors differ:\n  serial:   %v\n  parallel: %v", errS, errP)
	}
}

// TestTrainSubsetParallelEquivalence fits the same subset at one and four
// workers and requires identical classifications on a shared test batch —
// the trainer's parallel level jobs must not perturb the templates.
func TestTrainSubsetParallelEquivalence(t *testing.T) {
	cfg := smallConfig()
	cfg.TracesPerProgram = 12
	classes := []avr.Class{avr.OpADD, avr.OpLDI}
	traces := acquireTestTraces(t, cfg, classes, 4)

	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	dS, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dS.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	dP, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dP.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trace %d: serial-trained %+v, parallel-trained %+v", i, want[i], got[i])
		}
	}
}
