package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/avr"
	"repro/internal/power"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty template file")
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Saved and restored disassemblers must classify identically.
	camp, err := power.NewCampaign(cfg.Power, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	prog := power.NewProgramEnv(cfg.Power, 55, 2)
	targets := make([]avr.Instruction, 30)
	for i := range targets {
		targets[i] = avr.RandomOperands(rng, classes[i%2])
	}
	traces, err := camp.AcquireTemplated(rng, prog, targets)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d2.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	var d Disassembler
	var buf bytes.Buffer
	if err := d.Save(&buf); err == nil {
		t.Fatal("saving an untrained disassembler should fail")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a template file"))); err == nil {
		t.Fatal("loading garbage should fail")
	}
}

// Fuzz-style robustness: no truncation or byte mutation of a valid template
// file may panic Load or leave it returning a partially usable Disassembler —
// every outcome is either a descriptive ErrTemplateFormat-wrapped error or a
// fully decodable template set.
func TestLoadMutatedTemplateBytes(t *testing.T) {
	cfg := smallConfig()
	d, err := TrainSubset(cfg, []avr.Class{avr.OpADC, avr.OpAND}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	trace := make([]float64, cfg.Power.TraceLen)
	for i := range trace {
		trace[i] = float64(i % 13)
	}

	tryLoad := func(t *testing.T, data []byte, label string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Load panicked: %v", label, r)
			}
		}()
		ld, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTemplateFormat) {
				t.Fatalf("%s: err = %v, want ErrTemplateFormat wrap", label, err)
			}
			return
		}
		// Decode happened to survive the mutation: the result must still be
		// fully usable downstream — classifying may fail with an error but
		// must never panic on a corrupted class table or factor.
		_, _ = ld.Classify(trace)
	}

	// Truncations at every 1/8th of the stream, plus off-by-one edges.
	for _, frac := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		n := len(valid) * frac / 8
		tryLoad(t, valid[:n], "truncate")
	}
	tryLoad(t, valid[:len(valid)-1], "truncate-1")

	// Deterministic single-byte mutations scattered over the stream.
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 64; i++ {
		mut := append([]byte(nil), valid...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 << rng.Intn(8))
		tryLoad(t, mut, "mutate")
	}

	// The untouched stream still loads.
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine stream failed to load: %v", err)
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	st := disassemblerState{Version: templateFormatVersion + 41}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("err = %v, want ErrTemplateFormat", err)
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-version error %q should say the file is newer than this build", err)
	}
}

func TestLoadRejectsUndefinedClassTable(t *testing.T) {
	cfg := smallConfig()
	d, err := TrainSubset(cfg, []avr.Class{avr.OpADC, avr.OpAND}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var st disassemblerState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	st.InstrClass[0] = []avr.Class{avr.Class(250)}
	var mut bytes.Buffer
	if err := gob.NewEncoder(&mut).Encode(&st); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&mut)
	if !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("undefined class table err = %v, want ErrTemplateFormat", err)
	}
}

func TestLoadGarbageWrapsTemplateFormat(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte{0x07, 0xff, 0x81, 0x00}))
	if !errors.Is(err, ErrTemplateFormat) {
		t.Fatalf("garbage err = %v, want ErrTemplateFormat", err)
	}
}
