package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/avr"
	"repro/internal/power"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	d, err := TrainSubset(cfg, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty template file")
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Saved and restored disassemblers must classify identically.
	camp, err := power.NewCampaign(cfg.Power, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	prog := power.NewProgramEnv(cfg.Power, 55, 2)
	targets := make([]avr.Instruction, 30)
	for i := range targets {
		targets[i] = avr.RandomOperands(rng, classes[i%2])
	}
	traces, err := camp.AcquireTemplated(rng, prog, targets)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d2.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	var d Disassembler
	var buf bytes.Buffer
	if err := d.Save(&buf); err == nil {
		t.Fatal("saving an untrained disassembler should fail")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a template file"))); err == nil {
		t.Fatal("loading garbage should fail")
	}
}
