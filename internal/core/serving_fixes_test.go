package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSetDefaultRebindDuringDisassemble pins the serving-blocker fix: an
// obs.SetDefault rebind while DisassembleCtx work is in flight must be safe
// (every package swaps its instrument-handle set atomically) and must not
// perturb the decoded labels. Run under -race this is the regression test
// for the old unsynchronized-handle reads.
func TestSetDefaultRebindDuringDisassemble(t *testing.T) {
	d, traces := sharedFixture(t)
	defer obs.SetDefault(nil)

	want, err := d.Disassemble(traces)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := d.DisassembleScoredCtx(context.Background(), traces)
				if err != nil {
					errc <- err
					return
				}
				for i := range got {
					if got[i].Decoded != want[i] {
						t.Errorf("decode %d changed under rebinding: %+v vs %+v", i, got[i].Decoded, want[i])
						return
					}
				}
			}
		}()
	}
	var last *obs.Registry
	for i := 0; i < 100; i++ {
		last = obs.NewRegistry()
		obs.SetDefault(last)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("decode failed under rebinding: %v", err)
	default:
	}
	// The final registry is live: another decode lands its counts there.
	if _, err := d.Disassemble(traces); err != nil {
		t.Fatal(err)
	}
	if got := last.Snapshot().Counters["core.traces.classified"]; got < int64(len(traces)) {
		t.Fatalf("final registry counted %d classified traces, want >= %d", got, len(traces))
	}
}

// TestSetSparseModePreferredDegrades pins the registry-load contract: where
// SetSparseMode(SparseOn) hard-fails on a legacy template, the preferred-mode
// variant degrades to the full-CWT path, reports the fallback, and counts it
// on core.sparse.fallback — so one old file warns instead of taking a whole
// template registry down.
func TestSetSparseModePreferredDegrades(t *testing.T) {
	d, _ := sharedFixture(t)
	defer obs.SetDefault(nil)
	reg := obs.NewRegistry()
	obs.SetDefault(reg)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// The sparse-capable (v3) template honors the preference without falling
	// back, for every mode.
	fresh, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []SparseMode{SparseAuto, SparseOff, SparseOn} {
		if fresh.SetSparseModePreferred(m) {
			t.Fatalf("sparse-capable template fell back under %v", m)
		}
	}
	if !fresh.SparseEnabled() {
		t.Fatal("capable template should honor the SparseOn preference")
	}

	// A v2 legacy file cannot run the sparse path: preferring on degrades.
	legacy, err := Load(bytes.NewReader(downgradeState(t, buf.Bytes(), 2)))
	if err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counters["core.sparse.fallback"]
	if !legacy.SetSparseModePreferred(SparseOn) {
		t.Fatal("legacy template did not report the sparse fallback")
	}
	if legacy.SparseEnabled() {
		t.Fatal("legacy template ended sparse-enabled after the fallback")
	}
	if got := reg.Snapshot().Counters["core.sparse.fallback"] - before; got != 1 {
		t.Fatalf("core.sparse.fallback advanced by %d, want 1", got)
	}
	// Auto and off are always satisfiable — no fallback, no counter noise.
	if legacy.SetSparseModePreferred(SparseAuto) || legacy.SetSparseModePreferred(SparseOff) {
		t.Fatal("auto/off preference reported a fallback on the legacy template")
	}
	if got := reg.Snapshot().Counters["core.sparse.fallback"] - before; got != 1 {
		t.Fatalf("auto/off preference moved the fallback counter (now +%d)", got)
	}
}
