package power

import "math"

// Device models one physical chip. Device 0 is the golden training device
// (unit gain, zero offset, no mismatch); higher IDs get deterministic
// process-variation parameters so experiments are reproducible.
type Device struct {
	ID     int
	gain   float64
	offset float64
	mmStd  float64
}

// NewDevice derives a device environment from cfg and a device ID.
func NewDevice(cfg Config, id int) *Device {
	d := &Device{ID: id, gain: 1}
	if id == 0 {
		return d
	}
	key := uint64(id) * 0x9E3779B97F4A7C15
	d.gain = 1 + cfg.DeviceGainStd*hashNorm(key^0x1111)
	d.offset = cfg.DeviceOffsetStd * hashNorm(key^0x2222)
	d.mmStd = cfg.DeviceMismatchStd
	return d
}

// Gain returns the device's multiplicative measurement gain.
func (d *Device) Gain() float64 { return d.gain }

// Offset returns the device's additive measurement offset.
func (d *Device) Offset() float64 { return d.offset }

// mismatch returns the device-specific multiplicative perturbation of one
// signature component. The golden device returns exactly 1.
func (d *Device) mismatch(classKey, component uint64) float64 {
	if d.mmStd == 0 {
		return 1
	}
	key := classKey ^ component*0xA24BAED4963EE407 ^ uint64(d.ID)*0x9FB21C651E98DF25
	v := 1 + d.mmStd*hashNorm(key)
	return math.Max(0.5, v)
}

// driftComponent is one sinusoidal term of a program's low-frequency
// disturbance.
type driftComponent struct {
	amp, freq, phase float64
}

// ProgramEnv models the measurement environment of one uploaded program
// file: the paper observes that traces of the same instruction taken from
// different programs share a shape but differ in DC offset (plus gain and
// drift effects) — the covariate shift problem. The drift is a fixed
// low-frequency disturbance (sub-harmonics ½–3 of the clock) whose energy
// overlaps the largest CWT scales, so low-frequency feature points become
// program-dependent while high-frequency points stay invariant — exactly
// the structure covariate shift adaptation exploits.
type ProgramEnv struct {
	ID     int
	gain   float64
	offset float64
	drift  []driftComponent
}

// programDriftHarmonics are the clock sub-harmonics the disturbance lives on.
var programDriftHarmonics = []float64{0.5, 1, 1.5, 2, 2.5, 3}

// NewProgramEnv derives a program environment deterministically from cfg, a
// campaign seed and a program ID. Program environments are independent of
// the device (re-uploading the same file to a new chip gives a new
// environment, so callers mix seeds when they need that).
func NewProgramEnv(cfg Config, seed uint64, id int) *ProgramEnv {
	return NewFieldProgramEnv(cfg, seed, id, 1)
}

// NewFieldProgramEnv derives a program environment whose deviation from the
// golden lab setup is scaled by severity. severity = 1 models another
// profiling upload on the bench; severity > 1 models the paper's practical
// scenario — a *real* program measured in the field, whose baseline power,
// probe placement and compilation layout differ far more from the profiling
// templates than the templates differ from each other. Covariate shift
// adaptation is evaluated against such environments.
func NewFieldProgramEnv(cfg Config, seed uint64, id int, severity float64) *ProgramEnv {
	key := seed*0xD6E8FEB86659FD93 + uint64(id+1)*0xCA5A826395121157
	p := &ProgramEnv{
		ID:     id,
		gain:   1 + severity*cfg.ProgramGainStd*hashNorm(key^0xAAAA),
		offset: severity * cfg.ProgramOffsetStd * hashNorm(key^0xBBBB),
	}
	spc := cfg.SamplesPerCycle()
	for i, h := range programDriftHarmonics {
		k := key ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
		p.drift = append(p.drift, driftComponent{
			amp:   severity * cfg.ProgramDriftStd * hashNorm(k^0x1) / (1 + h), // redder at low freq
			freq:  h / spc,
			phase: 2 * math.Pi * hashUnit(k^0x2),
		})
	}
	return p
}

// Gain returns the program's multiplicative shift component.
func (p *ProgramEnv) Gain() float64 { return p.gain }

// Offset returns the program's DC offset component.
func (p *ProgramEnv) Offset() float64 { return p.offset }

// Disturbance evaluates the program's additive low-frequency disturbance at
// sample t.
func (p *ProgramEnv) Disturbance(t int) float64 {
	v := p.offset
	for _, d := range p.drift {
		v += d.amp * math.Sin(2*math.Pi*d.freq*float64(t)+d.phase)
	}
	return v
}

// NeutralProgramEnv returns an environment with no shift — useful for
// isolating other effects in tests and ablations.
func NeutralProgramEnv(id int) *ProgramEnv {
	return &ProgramEnv{ID: id, gain: 1}
}
