package power

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/testkit"
)

// defectiveDataset builds a dataset of healthy generator traces with a
// controlled sprinkling of every defect class ValidateTrace knows about.
func defectiveDataset(g *testkit.G, traceLen int) *Dataset {
	d := &Dataset{DeviceID: 1, ClassNames: []string{"a", "b"}}
	n := g.Size(4, 40)
	for i := 0; i < n; i++ {
		tr := g.Trace(traceLen)
		switch g.IntBetween(0, 9) {
		case 0:
			tr[g.IntBetween(0, traceLen-1)] = math.NaN()
		case 1:
			tr[g.IntBetween(0, traceLen-1)] = math.Inf(1)
		case 2:
			c := g.Float64(-1, 1)
			for k := range tr {
				tr[k] = c
			}
		case 3:
			tr = tr[:g.IntBetween(1, traceLen-1)]
		case 4:
			tr = nil
		}
		d.Append(tr, g.IntBetween(0, 1), g.IntBetween(0, 2))
	}
	return d
}

// TestSanitizeIdempotent pins the invariant Sanitize(Sanitize(d)) ==
// Sanitize(d): a second pass over an already-clean dataset rejects nothing
// and returns the identical traces, labels, and programs.
func TestSanitizeIdempotent(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 30}, func(g *testkit.G) error {
		d := defectiveDataset(g, g.Size(8, 64))
		clean, rep1 := d.Sanitize(0)
		if clean.Len()+rep1.Rejected() != d.Len() {
			return fmt.Errorf("first pass: %d clean + %d rejected != %d input",
				clean.Len(), rep1.Rejected(), d.Len())
		}
		again, rep2 := clean.Sanitize(0)
		if rep2.Rejected() != 0 {
			return fmt.Errorf("second Sanitize rejected %d traces (%s) from a clean set",
				rep2.Rejected(), rep2.String())
		}
		if again.Len() != clean.Len() {
			return fmt.Errorf("second Sanitize changed length: %d -> %d", clean.Len(), again.Len())
		}
		for i := range clean.Traces {
			testkit.ExactEqual(nopTB{}, again.Traces[i], clean.Traces[i], "trace")
			if again.Labels[i] != clean.Labels[i] || again.Programs[i] != clean.Programs[i] {
				return fmt.Errorf("second Sanitize permuted metadata at %d", i)
			}
		}
		return nil
	})
}

// TestValidateAgreesWithSanitize pins that the read-only Validate pass and
// the filtering Sanitize pass count identically, and that every survivor
// individually passes ValidateTrace.
func TestValidateAgreesWithSanitize(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 30}, func(g *testkit.G) error {
		wantLen := g.Size(8, 64)
		d := defectiveDataset(g, wantLen)
		rep := d.Validate(wantLen)
		clean, srep := d.Sanitize(wantLen)
		if rep != srep {
			return fmt.Errorf("Validate report %+v != Sanitize report %+v", rep, srep)
		}
		if clean.Len() != d.Len()-rep.Rejected() {
			return fmt.Errorf("Sanitize kept %d, Validate promised %d", clean.Len(), d.Len()-rep.Rejected())
		}
		for i, tr := range clean.Traces {
			if err := ValidateTrace(tr, wantLen); err != nil {
				return fmt.Errorf("survivor %d still invalid: %v", i, err)
			}
		}
		return nil
	})
}

// nopTB panics on failure instead of failing a test — it adapts testkit's
// assertion helpers for use inside property closures, where a panic is
// recovered and becomes the shrinkable property error.
type nopTB struct{}

func (nopTB) Helper()                        {}
func (nopTB) Fatalf(format string, a ...any) { panic(fmt.Sprintf(format, a...)) }
func (nopTB) Errorf(format string, a ...any) { panic(fmt.Sprintf(format, a...)) }
func (nopTB) Logf(string, ...any)            {}
