package power

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/stats"
)

// valMetrics holds the validation instrument handles; the handles are nil
// (no-op) under a nil registry. The live set is swapped atomically by the
// OnDefault hook so obs.SetDefault can rebind while traces validate.
type valMetrics struct {
	checked     *obs.Counter // power.validate.checked
	nonFinite   *obs.Counter // power.validate.rejected_non_finite
	constant    *obs.Counter // power.validate.rejected_constant
	wrongLength *obs.Counter // power.validate.rejected_wrong_length
}

var metPtr atomic.Pointer[valMetrics]

// met returns the current handle set; never nil.
func met() *valMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &valMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		metPtr.Store(&valMetrics{
			checked:     r.Counter("power.validate.checked"),
			nonFinite:   r.Counter("power.validate.rejected_non_finite"),
			constant:    r.Counter("power.validate.rejected_constant"),
			wrongLength: r.Counter("power.validate.rejected_wrong_length"),
		})
	})
}

// Trace-level validation sentinels. Each is wrapped (with %w) into the
// descriptive error ValidateTrace returns, so callers dispatch with
// errors.Is while logs keep the specifics.
var (
	// ErrNonFiniteTrace marks a trace containing NaN or ±Inf samples — a
	// glitched scope capture. A single such sample would propagate NaN
	// through the CWT into every downstream statistic.
	ErrNonFiniteTrace = errors.New("power: trace has non-finite samples")
	// ErrConstantTrace marks a trace with zero sample variance — a flat-lined
	// probe. It normalizes to all-zeros and carries no instruction signal.
	ErrConstantTrace = errors.New("power: trace is constant")
	// ErrTraceLength marks a trace whose length differs from the campaign's
	// configured TraceLen — a truncated or misaligned capture.
	ErrTraceLength = errors.New("power: trace length mismatch")
)

// ValidateTrace checks one trace against the defects the fit/classify path
// cannot absorb: wrong length (when wantLen > 0), non-finite samples, and
// zero variance. It returns nil for a usable trace, or a descriptive error
// wrapping one of the sentinels above.
func ValidateTrace(trace []float64, wantLen int) error {
	if len(trace) == 0 {
		return fmt.Errorf("%w: empty trace", ErrTraceLength)
	}
	if wantLen > 0 && len(trace) != wantLen {
		return fmt.Errorf("%w: got %d samples, want %d", ErrTraceLength, len(trace), wantLen)
	}
	if !stats.AllFinite(trace) {
		return ErrNonFiniteTrace
	}
	first := trace[0]
	for _, v := range trace[1:] {
		if v != first {
			return nil
		}
	}
	return fmt.Errorf("%w: all %d samples equal %g", ErrConstantTrace, len(trace), first)
}

// ValidationReport counts the traces a Validate/Sanitize pass rejected,
// broken down by defect.
type ValidationReport struct {
	Checked     int // traces examined
	NonFinite   int // rejected: NaN/±Inf samples
	Constant    int // rejected: zero variance
	WrongLength int // rejected: length mismatch
}

// Rejected returns the total number of rejected traces.
func (r ValidationReport) Rejected() int { return r.NonFinite + r.Constant + r.WrongLength }

// Merge accumulates another report into r.
func (r *ValidationReport) Merge(o ValidationReport) {
	r.Checked += o.Checked
	r.NonFinite += o.NonFinite
	r.Constant += o.Constant
	r.WrongLength += o.WrongLength
}

// String renders the report for logs, e.g.
// "2/100 traces rejected (1 non-finite, 1 constant)".
func (r ValidationReport) String() string {
	if r.Rejected() == 0 {
		return fmt.Sprintf("0/%d traces rejected", r.Checked)
	}
	var parts []string
	if r.NonFinite > 0 {
		parts = append(parts, fmt.Sprintf("%d non-finite", r.NonFinite))
	}
	if r.Constant > 0 {
		parts = append(parts, fmt.Sprintf("%d constant", r.Constant))
	}
	if r.WrongLength > 0 {
		parts = append(parts, fmt.Sprintf("%d wrong-length", r.WrongLength))
	}
	return fmt.Sprintf("%d/%d traces rejected (%s)", r.Rejected(), r.Checked, strings.Join(parts, ", "))
}

// count files err into the report (and the registry, when one is installed);
// returns false for a nil error.
func (r *ValidationReport) count(err error) bool {
	met().checked.Inc()
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrNonFiniteTrace):
		r.NonFinite++
		met().nonFinite.Inc()
	case errors.Is(err, ErrTraceLength):
		r.WrongLength++
		met().wrongLength.Inc()
	default: // ErrConstantTrace and anything future lands here conservatively
		r.Constant++
		met().constant.Inc()
	}
	return true
}

// referenceLen returns the trace length to validate against when the caller
// does not pin one: the most common length in the dataset (ties broken toward
// the shorter length for determinism). Using the mode instead of the first
// trace keeps one truncated leading capture from condemning the rest.
func (d *Dataset) referenceLen() int {
	counts := map[int]int{}
	for _, tr := range d.Traces {
		counts[len(tr)]++
	}
	lens := make([]int, 0, len(counts))
	for l := range counts {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	best, bestCount := 0, -1
	for _, l := range lens {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	return best
}

// Validate checks every trace against wantLen (<= 0 selects the dataset's
// modal trace length) and returns the defect counts. It never modifies the
// dataset; a non-zero Rejected() means Sanitize would drop traces.
func (d *Dataset) Validate(wantLen int) ValidationReport {
	if wantLen <= 0 {
		wantLen = d.referenceLen()
	}
	var rep ValidationReport
	for _, tr := range d.Traces {
		rep.Checked++
		rep.count(ValidateTrace(tr, wantLen))
	}
	return rep
}

// Sanitize returns a copy of the dataset with every defective trace removed
// (per-trace rejection — one bad capture never aborts a campaign) plus the
// report of what was dropped. wantLen <= 0 selects the modal trace length.
// The trace slices themselves are shared, not copied. An all-defective
// dataset yields an empty clean set; callers decide whether that is fatal.
func (d *Dataset) Sanitize(wantLen int) (*Dataset, ValidationReport) {
	if wantLen <= 0 {
		wantLen = d.referenceLen()
	}
	clean := &Dataset{DeviceID: d.DeviceID, ClassNames: d.ClassNames}
	var rep ValidationReport
	for i, tr := range d.Traces {
		rep.Checked++
		if rep.count(ValidateTrace(tr, wantLen)) {
			continue
		}
		clean.Append(tr, d.Labels[i], d.Programs[i])
	}
	return clean, rep
}

// AnyNonFinite reports whether any value in xs is NaN or ±Inf; it is the
// assertion helper tests use against trained pipeline/classifier state.
func AnyNonFinite(xs []float64) bool { return !stats.AllFinite(xs) }
