package power

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/avr"
	"repro/internal/stats"
	"repro/internal/testkit"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestDefaultConfigMatchesPaperSetup(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SampleRateHz != 2.5e9 || cfg.ClockHz != 16e6 {
		t.Fatalf("rates %g/%g, want 2.5 GS/s and 16 MHz", cfg.SampleRateHz, cfg.ClockHz)
	}
	if cfg.TraceLen != 315 {
		t.Fatalf("trace length %d, want 315", cfg.TraceLen)
	}
	testkit.InDelta(t, cfg.SamplesPerCycle(), 156.25, 1e-9, "samples per cycle")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SampleRateHz: 1e9, ClockHz: 16e6, TraceLen: 4},
		{SampleRateHz: 32e6, ClockHz: 16e6, TraceLen: 315}, // 2 samples/cycle
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v should fail validation", cfg)
		}
		if _, err := NewModel(cfg); err == nil {
			t.Fatalf("NewModel(%+v) should fail", cfg)
		}
	}
}

func synthOne(t *testing.T, seed int64, target avr.Instruction, dev *Device, prog *ProgramEnv) []float64 {
	t.Helper()
	model, err := NewModel(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	mach := randomizedMachine(rng)
	seg := avr.Segment{
		Target: target,
		Prev:   avr.Instruction{Class: avr.OpNOP},
		Next:   avr.Instruction{Class: avr.OpNOP},
	}
	tr, err := model.Synthesize(rng, mach, TraceContext{Segment: seg, Device: dev, Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSynthesizeShapeAndDeterminism(t *testing.T) {
	cfg := testConfig()
	dev := NewDevice(cfg, 0)
	prog := NeutralProgramEnv(0)
	target := avr.Instruction{Class: avr.OpADD, Rd: 1, Rr: 2}
	a := synthOne(t, 7, target, dev, prog)
	b := synthOne(t, 7, target, dev, prog)
	if len(a) != cfg.TraceLen {
		t.Fatalf("trace length %d, want %d", len(a), cfg.TraceLen)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical traces")
		}
	}
	c := synthOne(t, 8, target, dev, prog)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ (noise)")
	}
}

func TestDifferentGroupsDifferMoreThanSameGroup(t *testing.T) {
	// The mean trace of ADD vs AND (same group) should be closer than
	// ADD vs SEC (different group): group signatures dominate.
	cfg := testConfig()
	cfg.NoiseStd = 0.01
	model, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(cfg, 0)
	prog := NeutralProgramEnv(0)
	mean := func(target avr.Instruction) []float64 {
		rng := rand.New(rand.NewSource(11))
		acc := make([]float64, cfg.TraceLen)
		const n = 40
		for i := 0; i < n; i++ {
			mach := randomizedMachine(rng)
			seg := avr.Segment{Target: target, Prev: avr.Instruction{Class: avr.OpNOP}, Next: avr.Instruction{Class: avr.OpNOP}}
			tr, err := model.Synthesize(rng, mach, TraceContext{Segment: seg, Device: dev, Program: prog})
			if err != nil {
				t.Fatal(err)
			}
			for j := range acc {
				acc[j] += tr[j] / n
			}
		}
		return acc
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	mAdd := mean(avr.Instruction{Class: avr.OpADD, Rd: 3, Rr: 4})
	mAnd := mean(avr.Instruction{Class: avr.OpAND, Rd: 3, Rr: 4})
	mSec := mean(avr.Instruction{Class: avr.OpSEC})
	within := dist(mAdd, mAnd)
	between := dist(mAdd, mSec)
	if between <= within {
		t.Fatalf("cross-group distance (%g) should exceed within-group (%g)", between, within)
	}
	if within == 0 {
		t.Fatal("same-group instructions must still differ")
	}
}

func TestRegisterAddressChangesTrace(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseStd = 0
	model, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(cfg, 0)
	prog := NeutralProgramEnv(0)
	trace := func(rd, rr uint8) []float64 {
		rng := rand.New(rand.NewSource(3))
		mach := avr.NewMachine(nil) // fixed state: isolate the address effect
		seg := avr.Segment{
			Target: avr.Instruction{Class: avr.OpADD, Rd: rd, Rr: rr},
			Prev:   avr.Instruction{Class: avr.OpNOP},
			Next:   avr.Instruction{Class: avr.OpNOP},
		}
		tr, err := model.Synthesize(rng, mach, TraceContext{Segment: seg, Device: dev, Program: prog})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := trace(0, 0)
	b := trace(31, 0)
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1 {
		t.Fatalf("Rd=0 vs Rd=31 traces nearly identical (Σ|Δ|=%g); register leakage missing", diff)
	}
}

func TestProgramShiftMovesTrace(t *testing.T) {
	cfg := testConfig()
	dev := NewDevice(cfg, 0)
	target := avr.Instruction{Class: avr.OpAND, Rd: 1, Rr: 2}
	p0 := NewProgramEnv(cfg, 1, 0)
	p1 := NewProgramEnv(cfg, 1, 1)
	a := synthOne(t, 5, target, dev, p0)
	b := synthOne(t, 5, target, dev, p1)
	ma := stats.Mean(a)
	mb := stats.Mean(b)
	if math.Abs(ma-mb) < 1e-6 {
		t.Fatalf("program environments should shift the trace mean: %g vs %g", ma, mb)
	}
}

func TestDeviceZeroIsGolden(t *testing.T) {
	cfg := testConfig()
	d0 := NewDevice(cfg, 0)
	if d0.Gain() != 1 || d0.Offset() != 0 {
		t.Fatalf("device 0 must be neutral: gain=%g offset=%g", d0.Gain(), d0.Offset())
	}
	if d0.mismatch(123, 4) != 1 {
		t.Fatal("device 0 must have no mismatch")
	}
	d1 := NewDevice(cfg, 1)
	if d1.Gain() == 1 && d1.Offset() == 0 {
		t.Fatal("device 1 should differ from golden")
	}
	// Determinism.
	d1b := NewDevice(cfg, 1)
	if d1.Gain() != d1b.Gain() || d1.Offset() != d1b.Offset() {
		t.Fatal("device derivation must be deterministic")
	}
	if d1.mismatch(9, 9) != d1b.mismatch(9, 9) {
		t.Fatal("device mismatch must be deterministic")
	}
}

func TestProgramEnvDeterminism(t *testing.T) {
	cfg := testConfig()
	a := NewProgramEnv(cfg, 42, 3)
	b := NewProgramEnv(cfg, 42, 3)
	if a.Gain() != b.Gain() || a.Offset() != b.Offset() {
		t.Fatal("program env derivation must be deterministic")
	}
	c := NewProgramEnv(cfg, 42, 4)
	if a.Gain() == c.Gain() && a.Offset() == c.Offset() {
		t.Fatal("different program IDs should give different environments")
	}
	n := NeutralProgramEnv(7)
	if n.Gain() != 1 || n.Offset() != 0 {
		t.Fatal("neutral env must not shift")
	}
}

func TestCollectClassesDataset(t *testing.T) {
	camp, err := NewCampaign(testConfig(), 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	ds, err := camp.CollectClasses(classes, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2*3*5 {
		t.Fatalf("dataset size %d, want 30", ds.Len())
	}
	if len(ds.ClassNames) != 2 {
		t.Fatalf("class names %v", ds.ClassNames)
	}
	counts := map[int]int{}
	progs := map[int]bool{}
	for i := range ds.Traces {
		if len(ds.Traces[i]) != 315 {
			t.Fatalf("trace %d has %d samples", i, len(ds.Traces[i]))
		}
		counts[ds.Labels[i]]++
		progs[ds.Programs[i]] = true
	}
	if counts[0] != 15 || counts[1] != 15 {
		t.Fatalf("label balance %v", counts)
	}
	if len(progs) != 3 {
		t.Fatalf("program IDs %v, want 3 distinct", progs)
	}
	if _, err := camp.CollectClasses(nil, 1, 1); err == nil {
		t.Fatal("want error for empty class list")
	}
}

func TestCollectGroupsDataset(t *testing.T) {
	camp, err := NewCampaign(testConfig(), 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := camp.CollectGroups(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 8*2*4 {
		t.Fatalf("dataset size %d, want 64", ds.Len())
	}
	if len(ds.ClassNames) != 8 {
		t.Fatalf("group dataset needs 8 labels, got %d", len(ds.ClassNames))
	}
	for _, l := range ds.Labels {
		if l < 0 || l > 7 {
			t.Fatalf("label %d out of group range", l)
		}
	}
}

func TestCollectRegistersDataset(t *testing.T) {
	camp, err := NewCampaign(testConfig(), 0, 29)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := camp.CollectRegisters(true, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 32*1*2 {
		t.Fatalf("dataset size %d, want 64", ds.Len())
	}
	if ds.ClassNames[5] != "Rd5" {
		t.Fatalf("class name %q", ds.ClassNames[5])
	}
	ds2, err := camp.CollectRegisters(false, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.ClassNames[31] != "Rr31" {
		t.Fatalf("class name %q", ds2.ClassNames[31])
	}
}

func TestSplitByProgram(t *testing.T) {
	ds := &Dataset{ClassNames: []string{"a"}}
	for p := 0; p < 5; p++ {
		for i := 0; i < 3; i++ {
			ds.Append([]float64{float64(p)}, 0, p)
		}
	}
	train, test := ds.SplitByProgram(func(p int) bool { return p < 4 })
	if train.Len() != 12 || test.Len() != 3 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	for _, p := range test.Programs {
		if p != 4 {
			t.Fatalf("held-out program %d", p)
		}
	}
}

func TestSplitRandom(t *testing.T) {
	ds := &Dataset{}
	for i := 0; i < 100; i++ {
		ds.Append([]float64{float64(i)}, i%2, 0)
	}
	rng := rand.New(rand.NewSource(1))
	train, test := ds.SplitRandom(rng, 0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	seen := map[float64]bool{}
	for _, tr := range train.Traces {
		seen[tr[0]] = true
	}
	for _, tr := range test.Traces {
		if seen[tr[0]] {
			t.Fatal("train/test overlap")
		}
	}
}

func TestAcquireSegmentsStream(t *testing.T) {
	camp, err := NewCampaign(testConfig(), 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := avr.AssembleProgram("LDI r16, 0x5A\nLDI r17, 0x3C\nEOR r16, r17\nNOP")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	traces, err := camp.AcquireSegments(rng, NeutralProgramEnv(0), stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want 4", len(traces))
	}
	for _, tr := range traces {
		if len(tr) != 315 {
			t.Fatalf("trace length %d", len(tr))
		}
	}
}

func TestReferenceSubtractionRemovesCommonMode(t *testing.T) {
	// A NOP target with no program shift should, after reference
	// subtraction, be mostly noise: the clock feedthrough cancels.
	cfg := testConfig()
	camp, err := NewCampaign(cfg, 0, 37)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	seg := avr.Segment{
		Target: avr.Instruction{Class: avr.OpNOP},
		Prev:   avr.Instruction{Class: avr.OpNOP},
		Next:   avr.Instruction{Class: avr.OpNOP},
	}
	tr, err := camp.acquireSegment(rng, seg, NeutralProgramEnv(0))
	if err != nil {
		t.Fatal(err)
	}
	// Residual should be far below the clock amplitude (~1.0): bounded by a
	// few noise standard deviations.
	maxAbs := 0.0
	for _, v := range tr {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 10*cfg.NoiseStd {
		t.Fatalf("NOP residual after reference subtraction too large: %g", maxAbs)
	}
}

func TestTraceFiniteProperty(t *testing.T) {
	cfg := testConfig()
	model, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, devID uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := NewDevice(cfg, int(devID%6))
		prog := NewProgramEnv(cfg, uint64(seed), 0)
		mach := randomizedMachine(rng)
		seg := avr.NewSegment(rng, avr.RandomOperands(rng, avr.RandomClass(rng)))
		tr, err := model.Synthesize(rng, mach, TraceContext{Segment: seg, Device: dev, Program: prog})
		if err != nil {
			return false
		}
		for _, v := range tr {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTrace(t *testing.T) {
	good := []float64{1, 2, 3, 2, 1}
	if err := ValidateTrace(good, 5); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	if err := ValidateTrace(good, 0); err != nil {
		t.Fatalf("unpinned length rejected: %v", err)
	}
	cases := []struct {
		trace []float64
		want  error
	}{
		{nil, ErrTraceLength},
		{[]float64{1, 2}, ErrTraceLength},
		{[]float64{1, math.NaN(), 3, 4, 5}, ErrNonFiniteTrace},
		{[]float64{1, 2, math.Inf(-1), 4, 5}, ErrNonFiniteTrace},
		{[]float64{7, 7, 7, 7, 7}, ErrConstantTrace},
	}
	for _, c := range cases {
		if err := ValidateTrace(c.trace, 5); !errors.Is(err, c.want) {
			t.Fatalf("ValidateTrace(%v) = %v, want %v", c.trace, err, c.want)
		}
	}
}

func TestDatasetSanitize(t *testing.T) {
	d := &Dataset{DeviceID: 3, ClassNames: []string{"a", "b"}}
	mkTrace := func(seed float64) []float64 {
		tr := make([]float64, 6)
		for i := range tr {
			tr[i] = seed + float64(i%3)
		}
		return tr
	}
	for i := 0; i < 8; i++ {
		d.Append(mkTrace(float64(i)), i%2, i%3)
	}
	d.Append([]float64{1, math.NaN(), 3, 4, 5, 6}, 0, 0) // non-finite
	d.Append([]float64{2, 2, 2, 2, 2, 2}, 1, 1)          // constant
	d.Append([]float64{1, 2, 3}, 0, 2)                   // wrong length

	rep := d.Validate(0)
	if rep.Checked != 11 || rep.NonFinite != 1 || rep.Constant != 1 || rep.WrongLength != 1 {
		t.Fatalf("Validate report = %+v", rep)
	}
	if d.Len() != 11 {
		t.Fatal("Validate must not modify the dataset")
	}

	clean, srep := d.Sanitize(0)
	if srep != rep {
		t.Fatalf("Sanitize report %+v != Validate report %+v", srep, rep)
	}
	if clean.Len() != 8 {
		t.Fatalf("clean.Len() = %d, want 8", clean.Len())
	}
	if clean.DeviceID != 3 || len(clean.ClassNames) != 2 {
		t.Fatal("Sanitize dropped dataset metadata")
	}
	for i, tr := range clean.Traces {
		if err := ValidateTrace(tr, 6); err != nil {
			t.Fatalf("clean trace %d still invalid: %v", i, err)
		}
		if clean.Labels[i] != i%2 || clean.Programs[i] != i%3 {
			t.Fatalf("labels/programs misaligned at %d", i)
		}
	}
	if s := srep.String(); !strings.Contains(s, "3/11") {
		t.Fatalf("report string %q", s)
	}
}

// The modal-length rule: one truncated leading trace must not condemn the
// majority length.
func TestSanitizeUsesModalLength(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1, 2}, 0, 0) // short outlier first
	for i := 0; i < 5; i++ {
		d.Append([]float64{1, 2, 3, float64(i)}, 0, 0)
	}
	clean, rep := d.Sanitize(0)
	if clean.Len() != 5 || rep.WrongLength != 1 {
		t.Fatalf("clean=%d rep=%+v, want the 4-sample majority kept", clean.Len(), rep)
	}
}

func TestValidationReportMerge(t *testing.T) {
	a := ValidationReport{Checked: 5, NonFinite: 1}
	a.Merge(ValidationReport{Checked: 3, Constant: 2, WrongLength: 1})
	if a.Checked != 8 || a.Rejected() != 4 {
		t.Fatalf("merged = %+v", a)
	}
	if s := (ValidationReport{Checked: 4}).String(); !strings.Contains(s, "0/4") {
		t.Fatalf("clean report string %q", s)
	}
}
