// Package power synthesizes the side-channel measurements the paper obtains
// from a Tektronix MDO3102 on a 330 Ω shunt of an ATMega328P. Since no bench
// is available, the package implements a physics-inspired leakage model with
// the structure the disassembler exploits:
//
//   - clock-edge current transients common to every instruction;
//   - per-class execute signatures built from clock harmonics, with a strong
//     group-level component (different instruction groups drive different
//     micro-architectural units) and a weaker instruction-level component;
//   - fetch-stage switching driven by the bits of the fetched opcode word;
//   - register-file address leakage: one Gabor pulse per set Rd/Rr address
//     bit at distinct time offsets and bands — the basis for operand
//     recovery;
//   - data-dependent Hamming-weight/-distance terms (within-class variance);
//   - two-stage pipeline overlap: the previous instruction's execute and the
//     next instruction's fetch bleed into the target's 2-cycle window;
//   - program-level covariate shift (gain, DC offset, low-frequency drift)
//     and device-level shift (gain, offset, per-class signature mismatch);
//   - additive white Gaussian measurement noise.
//
// The paper's setup: 16 MHz clock, 2.5 GS/s sampling → 315 samples across
// the fetch+execute window, 50 CWT scales.
package power

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/avr"
)

// Config holds the acquisition and leakage-model parameters.
type Config struct {
	SampleRateHz float64 // oscilloscope rate (paper: 2.5 GS/s)
	ClockHz      float64 // target clock (paper: 16 MHz)
	TraceLen     int     // samples per trace (paper: 315)

	NoiseStd float64 // measurement noise, relative to a ~1.0 signature scale

	// Program-level covariate shift (different compiled program files).
	ProgramGainStd   float64
	ProgramOffsetStd float64
	ProgramDriftStd  float64

	// Device-level covariate shift (different physical chips).
	DeviceGainStd     float64
	DeviceOffsetStd   float64
	DeviceMismatchStd float64 // relative perturbation of signature amplitudes

	PipelineScale float64 // how strongly neighbor stages bleed into the window
}

// DefaultConfig returns the paper's acquisition parameters with leakage
// magnitudes tuned so classifier operating points land near the published
// ones.
func DefaultConfig() Config {
	return Config{
		SampleRateHz:      2.5e9,
		ClockHz:           16e6,
		TraceLen:          315,
		NoiseStd:          0.05,
		ProgramGainStd:    0.02,
		ProgramOffsetStd:  0.30,
		ProgramDriftStd:   0.08,
		DeviceGainStd:     0.015,
		DeviceOffsetStd:   0.20,
		DeviceMismatchStd: 0.03,
		PipelineScale:     0.45,
	}
}

// SamplesPerCycle returns the (fractional) number of samples per clock cycle.
func (c Config) SamplesPerCycle() float64 { return c.SampleRateHz / c.ClockHz }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SampleRateHz <= 0 || c.ClockHz <= 0 {
		return fmt.Errorf("power: non-positive rates %g/%g", c.SampleRateHz, c.ClockHz)
	}
	if c.TraceLen < 8 {
		return fmt.Errorf("power: trace length %d too short", c.TraceLen)
	}
	if c.SamplesPerCycle() < 4 {
		return fmt.Errorf("power: fewer than 4 samples per clock cycle")
	}
	return nil
}

// splitmix64 provides stable, seed-independent pseudo-random signature
// coefficients: the same class always leaks the same way, across runs and
// across devices (up to device mismatch).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashUnit maps a key to a deterministic float in [0, 1).
func hashUnit(key uint64) float64 {
	return float64(splitmix64(key)>>11) / float64(1<<53)
}

// hashNorm maps a key to a deterministic standard-normal-ish value using a
// Box–Muller pair of hash draws.
func hashNorm(key uint64) float64 {
	u1 := hashUnit(key)
	u2 := hashUnit(key ^ 0xD1B54A32D192ED03)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Harmonic bands. Signatures live on harmonics 2..41 of the clock, i.e.
// 0.0128–0.262 cycles/sample at the paper's rates — inside the CWT bank's
// 0.012–0.48 coverage.
const (
	groupHarmonicBase   = 3
	groupHarmonicStride = 2 // adjacent groups share harmonics → groups overlap
	numGroupHarmonics   = 3
	numInstrHarmonics   = 4
	rdBitHarmonic       = 35 // register-address pulses, Rd
	rrBitHarmonic       = 28 // register-address pulses, Rr
	fetchBitHarmonic    = 22 // opcode-bit pulses during fetch
)

// Signature amplitudes (relative units). These are calibrated so that a
// single selected feature point separates two same-group instructions by
// roughly one within-class standard deviation — which is what makes the
// paper's operating points emerge: ~5 DNVP per pair give ~90 % pairwise SR,
// the ~40-variable union reaches >99 %, and per-program gain/drift shifts
// are strong enough to break an unadapted classifier on a held-out program.
const (
	clockEdgeAmp   = 1.0
	groupAmp       = 0.25
	instrAmp       = 0.045
	fetchOpcodeAmp = 0.040
	regBitAmp      = 0.400
	dataHWAmp      = 0.030
	dataHDAmp      = 0.035
	memAddrAmp     = 0.020
)

// Model synthesizes traces under a fixed configuration.
type Model struct {
	cfg Config
	spc float64 // samples per cycle
}

// NewModel validates cfg and returns a trace synthesizer.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, spc: cfg.SamplesPerCycle()}, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// classKey gives each class a stable hash namespace.
func classKey(c avr.Class) uint64 { return uint64(c) * 0x100000001B3 }

// groupKey gives each group a stable hash namespace.
func groupKey(g avr.Group) uint64 { return uint64(g) * 0xC2B2AE3D27D4EB4F }

// executeSignature adds the class's execute-stage signature over samples
// [start, start+spc) of dst. mismatch perturbs harmonic amplitudes
// (device-to-device variation); scale scales the whole contribution
// (pipeline overlap).
func (m *Model) executeSignature(dst []float64, start float64, c avr.Class, dev *Device, scale float64) {
	g := c.Group()
	gk, ck := groupKey(g), classKey(c)
	type comp struct {
		amp, freq, phase float64
	}
	comps := make([]comp, 0, numGroupHarmonics+numInstrHarmonics)
	// Group-level harmonics: fixed band per group.
	for h := 0; h < numGroupHarmonics; h++ {
		harm := float64(groupHarmonicBase + int(g-avr.Group1)*groupHarmonicStride + h)
		amp := groupAmp * (0.7 + 0.6*hashUnit(gk+uint64(h)*7919))
		comps = append(comps, comp{
			amp:   amp * dev.mismatch(ck, uint64(h)),
			freq:  harm / m.spc,
			phase: 2 * math.Pi * hashUnit(gk+uint64(h)*104729),
		})
	}
	// Instruction-level harmonics: pseudo-random within 2..41.
	for h := 0; h < numInstrHarmonics; h++ {
		harm := 2 + math.Floor(40*hashUnit(ck+uint64(h)*15485863))
		amp := instrAmp * (0.6 + 0.8*hashUnit(ck+uint64(h)*32452843))
		comps = append(comps, comp{
			amp:   amp * dev.mismatch(ck, 100+uint64(h)),
			freq:  harm / m.spc,
			phase: 2 * math.Pi * hashUnit(ck+uint64(h)*49979687),
		})
	}
	lo := int(math.Ceil(start))
	hi := int(math.Floor(start + m.spc))
	if lo < 0 {
		lo = 0
	}
	if hi > len(dst) {
		hi = len(dst)
	}
	for t := lo; t < hi; t++ {
		// Raised-cosine envelope over the execute cycle.
		u := (float64(t) - start) / m.spc
		env := 0.5 * (1 - math.Cos(2*math.Pi*u))
		var v float64
		for _, cp := range comps {
			v += cp.amp * math.Sin(2*math.Pi*cp.freq*float64(t)+cp.phase)
		}
		dst[t] += scale * env * v
	}
}

// gaborPulse adds a Gabor atom (Gaussian-windowed tone burst) centered at
// sample c0.
func gaborPulse(dst []float64, c0, width, freq, amp float64) {
	lo := int(math.Max(0, math.Floor(c0-4*width)))
	hi := int(math.Min(float64(len(dst)), math.Ceil(c0+4*width)))
	for t := lo; t < hi; t++ {
		d := (float64(t) - c0) / width
		dst[t] += amp * math.Exp(-0.5*d*d) * math.Cos(2*math.Pi*freq*(float64(t)-c0))
	}
}

// registerLeakage adds the register-file address pulses for the activity's
// Rd and Rr addresses within the execute cycle starting at start. Each set
// address bit drives one Gabor burst; bursts are wide enough (≈ spc/12) for
// the Morlet bank to resolve them well above the noise floor.
func (m *Model) registerLeakage(dst []float64, start float64, act avr.Activity, scale float64) {
	width := m.spc / 12
	fRd := float64(rdBitHarmonic) / m.spc
	fRr := float64(rrBitHarmonic) / m.spc
	for bit := 0; bit < 5; bit++ {
		// Rd bits occupy the first half of the cycle, Rr bits the second.
		if act.RdAddr&(1<<bit) != 0 {
			c0 := start + m.spc*(0.08+0.075*float64(bit))
			gaborPulse(dst, c0, width, fRd, scale*regBitAmp)
		}
		if act.RrAddr&(1<<bit) != 0 {
			c0 := start + m.spc*(0.55+0.075*float64(bit))
			gaborPulse(dst, c0, width, fRr, scale*regBitAmp)
		}
	}
}

// dataLeakage adds the value-dependent broadband terms.
func (m *Model) dataLeakage(dst []float64, start float64, act avr.Activity, scale float64) {
	hw := float64(avr.HammingWeight8(act.Operand))
	hd := float64(avr.HammingDistance8(act.OldValue, act.NewValue))
	mem := 0.0
	if act.MemRead || act.MemWrite {
		mem = float64(avr.HammingWeight8(uint8(act.MemAddr)) + avr.HammingWeight8(uint8(act.MemAddr>>8)))
	}
	amp := scale * (dataHWAmp*hw + dataHDAmp*hd + memAddrAmp*mem)
	if amp == 0 {
		return
	}
	// A broad mid-cycle bump: result bus switching.
	c0 := start + 0.45*m.spc
	width := m.spc / 6
	lo := int(math.Max(0, math.Floor(c0-3*width)))
	hi := int(math.Min(float64(len(dst)), math.Ceil(c0+3*width)))
	for t := lo; t < hi; t++ {
		d := (float64(t) - c0) / width
		dst[t] += amp * math.Exp(-0.5*d*d)
	}
}

// fetchSignature adds the fetch-stage switching of instruction in over the
// cycle starting at start: one pulse per set bit of the opcode word, plus a
// weak class harmonic.
func (m *Model) fetchSignature(dst []float64, start float64, in avr.Instruction, dev *Device, scale float64) {
	words, err := in.Encode()
	if err != nil || len(words) == 0 {
		return
	}
	w := words[0]
	f := float64(fetchBitHarmonic) / m.spc
	width := m.spc / 48
	for bit := 0; bit < 16; bit++ {
		if w&(1<<bit) == 0 {
			continue
		}
		c0 := start + m.spc*(0.04+float64(bit)*0.058)
		gaborPulse(dst, c0, width, f, scale*fetchOpcodeAmp)
	}
	// Weak class-dependent fetch harmonic (decoder activity).
	ck := classKey(in.Class) ^ 0xABCD
	harm := 2 + math.Floor(40*hashUnit(ck))
	amp := 0.5 * instrAmp * dev.mismatch(ck, 7)
	phase := 2 * math.Pi * hashUnit(ck+13)
	lo := int(math.Max(0, math.Ceil(start)))
	hi := int(math.Min(float64(len(dst)), math.Floor(start+m.spc)))
	for t := lo; t < hi; t++ {
		u := (float64(t) - start) / m.spc
		env := 0.5 * (1 - math.Cos(2*math.Pi*u))
		dst[t] += scale * amp * env * math.Sin(2*math.Pi*harm/m.spc*float64(t)+phase)
	}
}

// clockFeedthrough adds the edge transients present in every cycle.
func (m *Model) clockFeedthrough(dst []float64) {
	tau := m.spc / 24
	addEdge := func(at float64, amp float64) {
		lo := int(math.Max(0, math.Ceil(at)))
		hi := int(math.Min(float64(len(dst)), at+8*tau))
		for t := lo; t < hi; t++ {
			dt := float64(t) - at
			dst[t] += amp * math.Exp(-dt/tau)
		}
	}
	nCycles := int(math.Ceil(float64(len(dst)) / m.spc))
	for c := 0; c <= nCycles; c++ {
		addEdge(float64(c)*m.spc, clockEdgeAmp)
		addEdge((float64(c)+0.5)*m.spc, -0.45*clockEdgeAmp)
	}
}

// TraceContext describes one acquisition: which instructions occupy the
// pipeline around the target and under which environment the measurement is
// taken.
type TraceContext struct {
	Segment avr.Segment
	Device  *Device
	Program *ProgramEnv
}

// Synthesize produces one raw trace of cfg.TraceLen samples covering the
// target's fetch and execute cycles. The machine provides architectural
// state for operand-value leakage; it is advanced by executing prev, target
// and next in order (matching how the segment runs on silicon).
func (m *Model) Synthesize(rng *rand.Rand, mach *avr.Machine, tc TraceContext) ([]float64, error) {
	if tc.Device == nil || tc.Program == nil {
		return nil, fmt.Errorf("power: TraceContext needs Device and Program")
	}
	seg := tc.Segment
	if _, err := mach.Exec(seg.Prev); err != nil {
		return nil, fmt.Errorf("power: executing prev: %w", err)
	}
	actT, err := mach.Exec(seg.Target)
	if err != nil {
		return nil, fmt.Errorf("power: executing target: %w", err)
	}
	actN, err := mach.Exec(seg.Next)
	if err != nil {
		return nil, fmt.Errorf("power: executing next: %w", err)
	}

	dst := make([]float64, m.cfg.TraceLen)
	m.clockFeedthrough(dst)

	// Cycle 0 (samples [0, spc)): target fetch + prev execute (pipeline).
	m.fetchSignature(dst, 0, seg.Target, tc.Device, 1.0)
	m.executeSignature(dst, 0, seg.Prev.Class, tc.Device, m.cfg.PipelineScale)

	// Cycle 1 (samples [spc, 2*spc)): target execute + next fetch.
	m.executeSignature(dst, m.spc, seg.Target.Class, tc.Device, 1.0)
	m.registerLeakage(dst, m.spc, actT, 1.0)
	m.dataLeakage(dst, m.spc, actT, 1.0)
	m.fetchSignature(dst, m.spc, seg.Next, tc.Device, m.cfg.PipelineScale)
	_ = actN

	// Environment: device gain/offset, program gain/offset/disturbance, noise.
	gain := tc.Device.gain * tc.Program.gain
	for t := range dst {
		dst[t] = gain*dst[t] + tc.Device.offset + tc.Program.Disturbance(t) + rng.NormFloat64()*m.cfg.NoiseStd
	}
	return dst, nil
}

// SynthesizeReference produces the trace of the SBI, 5×NOP, CBI reference
// sequence under the same environment: clock feedthrough plus NOP
// fetch/execute signatures, with fresh noise. Subtracting it from a
// measurement removes the trigger/baseline common mode, like the paper's
// preprocessing.
func (m *Model) SynthesizeReference(rng *rand.Rand, tc TraceContext) ([]float64, error) {
	if tc.Device == nil || tc.Program == nil {
		return nil, fmt.Errorf("power: TraceContext needs Device and Program")
	}
	dst := make([]float64, m.cfg.TraceLen)
	m.clockFeedthrough(dst)
	nop := avr.Instruction{Class: avr.OpNOP}
	m.fetchSignature(dst, 0, nop, tc.Device, 1.0)
	m.executeSignature(dst, 0, avr.OpNOP, tc.Device, m.cfg.PipelineScale)
	m.executeSignature(dst, m.spc, avr.OpNOP, tc.Device, 1.0)
	m.fetchSignature(dst, m.spc, nop, tc.Device, m.cfg.PipelineScale)

	gain := tc.Device.gain * tc.Program.gain
	// The reference is captured in the same program/device environment, so
	// it shares gain — but NOT the additive program offset/drift, which
	// varies segment to segment in real captures; keeping it out of the
	// reference preserves the covariate shift the paper observes after
	// subtraction.
	for t := range dst {
		dst[t] = gain*dst[t] + rng.NormFloat64()*m.cfg.NoiseStd
	}
	return dst, nil
}
