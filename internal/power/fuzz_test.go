package power

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testkit"
)

// traceOf reinterprets fuzz bytes as float64 samples (8 bytes each,
// little-endian bit pattern), so the fuzzer can reach every bit pattern —
// NaN payloads, subnormals, infinities — not just round numbers.
func traceOf(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}

// TestFuzzCorpusCommitted regenerates the committed seed corpus under
// testdata/fuzz when REGEN_FUZZ_CORPUS is set, and otherwise asserts it is
// present so the CI fuzz-smoke job always starts from real seeds.
func TestFuzzCorpusCommitted(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		mk := func(vals ...float64) []byte {
			b := make([]byte, 8*len(vals))
			for i, v := range vals {
				binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
			}
			return b
		}
		testkit.WriteCorpus(t, "FuzzValidateTrace", "clean", mk(1, 2, 3), 3)
		testkit.WriteCorpus(t, "FuzzValidateTrace", "wrong_length", mk(1, 2), 3)
		testkit.WriteCorpus(t, "FuzzValidateTrace", "constant", mk(5, 5, 5), 3)
		testkit.WriteCorpus(t, "FuzzValidateTrace", "nan", mk(1, math.NaN(), 3), 3)
		testkit.WriteCorpus(t, "FuzzValidateTrace", "neg_inf", mk(1, math.Inf(-1), 3), 3)
		testkit.WriteCorpus(t, "FuzzValidateTrace", "subnormal", mk(0, math.Float64frombits(1)), 2)
		return
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzValidateTrace"))
	if err != nil || len(ents) == 0 {
		t.Errorf("no committed seed corpus for FuzzValidateTrace (REGEN_FUZZ_CORPUS=1 to create): %v", err)
	}
}

// FuzzValidateTrace checks the ingestion validator's contract on arbitrary
// sample data: never panic, accept exactly the traces that are non-empty,
// length-conformant, finite, and non-constant, and classify every rejection
// as one of the three sentinel defects.
func FuzzValidateTrace(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(mk(1, 2, 3), 3)
	f.Add(mk(1, 2, 3), 0)
	f.Add(mk(1, 2), 3)                       // wrong length
	f.Add(mk(5, 5, 5), 3)                    // constant
	f.Add(mk(1, math.NaN(), 3), 3)           // NaN
	f.Add(mk(1, math.Inf(-1), 3), 3)         // -Inf
	f.Add(mk(), 0)                           // empty
	f.Add(mk(0, math.Float64frombits(1)), 2) // subnormal variation
	f.Fuzz(func(t *testing.T, data []byte, wantLen int) {
		trace := traceOf(data)
		err := ValidateTrace(trace, wantLen)

		// Independent re-derivation of the verdict.
		finite := true
		constant := len(trace) > 0
		for i, v := range trace {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
			if i > 0 && v != trace[0] {
				constant = false
			}
		}
		lengthOK := len(trace) > 0 && (wantLen <= 0 || len(trace) == wantLen)

		if err == nil {
			if !lengthOK || !finite || constant {
				t.Fatalf("accepted defective trace (len=%d wantLen=%d finite=%v constant=%v)",
					len(trace), wantLen, finite, constant)
			}
			return
		}
		switch {
		case errors.Is(err, ErrTraceLength):
			if lengthOK {
				t.Fatalf("length error for conformant length %d (want %d): %v", len(trace), wantLen, err)
			}
		case errors.Is(err, ErrNonFiniteTrace):
			if finite {
				t.Fatalf("non-finite error for finite trace: %v", err)
			}
		case errors.Is(err, ErrConstantTrace):
			if !constant {
				t.Fatalf("constant error for varying trace: %v", err)
			}
		default:
			t.Fatalf("rejection with unknown sentinel: %v", err)
		}

		// Sanitize must agree with ValidateTrace one-for-one.
		d := &Dataset{}
		d.Append(trace, 0, 0)
		clean, rep := d.Sanitize(wantLen)
		if clean.Len() != 0 || rep.Rejected() != 1 {
			t.Fatalf("Sanitize disagreed with ValidateTrace: kept %d, rejected %d", clean.Len(), rep.Rejected())
		}
	})
}
