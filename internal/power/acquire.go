package power

import (
	"fmt"
	"math/rand"

	"repro/internal/avr"
)

// Dataset is a labeled collection of preprocessed traces (reference
// subtracted), together with the program file and device each trace came
// from — the metadata covariate-shift experiments split on.
type Dataset struct {
	Traces   [][]float64
	Labels   []int // index into ClassNames
	Programs []int // program file ID per trace
	DeviceID int

	ClassNames []string // human-readable label names
}

// Len returns the number of traces.
func (d *Dataset) Len() int { return len(d.Traces) }

// Append adds one trace.
func (d *Dataset) Append(trace []float64, label, program int) {
	d.Traces = append(d.Traces, trace)
	d.Labels = append(d.Labels, label)
	d.Programs = append(d.Programs, program)
}

// SplitByProgram partitions the dataset into traces whose program ID
// satisfies pred (first return) and the rest (second). The paper's practical
// scenario trains on programs 0..n-2 and tests on the held-out program.
func (d *Dataset) SplitByProgram(pred func(program int) bool) (in, out *Dataset) {
	in = &Dataset{ClassNames: d.ClassNames, DeviceID: d.DeviceID}
	out = &Dataset{ClassNames: d.ClassNames, DeviceID: d.DeviceID}
	for i := range d.Traces {
		if pred(d.Programs[i]) {
			in.Append(d.Traces[i], d.Labels[i], d.Programs[i])
		} else {
			out.Append(d.Traces[i], d.Labels[i], d.Programs[i])
		}
	}
	return in, out
}

// SplitRandom shuffles and splits the dataset into train/test with the given
// training fraction, preserving per-trace metadata. This is the paper's
// initial (non-practical) scenario where train and test share program files.
func (d *Dataset) SplitRandom(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	idx := rng.Perm(d.Len())
	nTrain := int(trainFrac * float64(d.Len()))
	train = &Dataset{ClassNames: d.ClassNames, DeviceID: d.DeviceID}
	test = &Dataset{ClassNames: d.ClassNames, DeviceID: d.DeviceID}
	for i, j := range idx {
		if i < nTrain {
			train.Append(d.Traces[j], d.Labels[j], d.Programs[j])
		} else {
			test.Append(d.Traces[j], d.Labels[j], d.Programs[j])
		}
	}
	return train, test
}

// Campaign drives simulated acquisition runs against one device.
type Campaign struct {
	Model  *Model
	Device *Device
	Seed   uint64
	// EnvSeverity scales how far the campaign's program environments stray
	// from the golden lab setup (see NewFieldProgramEnv). Zero means 1.
	EnvSeverity float64
}

// severity returns the effective environment severity.
func (c *Campaign) severity() float64 {
	if c.EnvSeverity <= 0 {
		return 1
	}
	return c.EnvSeverity
}

// NewCampaign builds a campaign for the given configuration and device ID.
func NewCampaign(cfg Config, deviceID int, seed uint64) (*Campaign, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	return &Campaign{Model: m, Device: NewDevice(cfg, deviceID), Seed: seed}, nil
}

// randomizedMachine returns a machine with random register, SRAM and flag
// state so data-value leakage varies trace to trace.
func randomizedMachine(rng *rand.Rand) *avr.Machine {
	m := avr.NewMachine([]uint16{0x1234, 0xABCD, 0x5A5A, 0x0F0F})
	for i := range m.R {
		m.R[i] = uint8(rng.Intn(256))
	}
	for i := 0; i < 256; i++ {
		m.SRAM[rng.Intn(len(m.SRAM))] = uint8(rng.Intn(256))
	}
	m.SREG = uint8(rng.Intn(256))
	return m
}

// acquireSegment measures one segment: synthesized trace minus the
// reference trace captured in the same environment.
func (c *Campaign) acquireSegment(rng *rand.Rand, seg avr.Segment, prog *ProgramEnv) ([]float64, error) {
	tc := TraceContext{Segment: seg, Device: c.Device, Program: prog}
	mach := randomizedMachine(rng)
	raw, err := c.Model.Synthesize(rng, mach, tc)
	if err != nil {
		return nil, err
	}
	ref, err := c.Model.SynthesizeReference(rng, tc)
	if err != nil {
		return nil, err
	}
	for i := range raw {
		raw[i] -= ref[i]
	}
	return raw, nil
}

// CollectClasses acquires tracesPerProgram traces for each class from each
// of numPrograms program files. Labels are indices into classes. Each
// (class, program) pair gets its own program environment, exactly as each
// uploaded .ino file does on the bench.
func (c *Campaign) CollectClasses(classes []avr.Class, numPrograms, tracesPerProgram int) (*Dataset, error) {
	if len(classes) == 0 || numPrograms <= 0 || tracesPerProgram <= 0 {
		return nil, fmt.Errorf("power: CollectClasses needs classes/programs/traces > 0")
	}
	ds := &Dataset{DeviceID: c.Device.ID}
	for _, cl := range classes {
		ds.ClassNames = append(ds.ClassNames, cl.String())
	}
	rng := rand.New(rand.NewSource(int64(c.Seed ^ 0x5ca1ab1e)))
	for li, cl := range classes {
		for p := 0; p < numPrograms; p++ {
			prog := NewFieldProgramEnv(c.Model.Config(), c.Seed+uint64(li)*1000003, p, c.severity())
			pf := avr.NewProgramFile(rng, p, cl, tracesPerProgram)
			for _, seg := range pf.Segments {
				tr, err := c.acquireSegment(rng, seg, prog)
				if err != nil {
					return nil, err
				}
				ds.Append(tr, li, p)
			}
		}
	}
	return ds, nil
}

// CollectGroups acquires traces labeled by instruction group (0..7): for
// each group, targets are drawn uniformly from the group's classes.
func (c *Campaign) CollectGroups(numPrograms, tracesPerProgram int) (*Dataset, error) {
	if numPrograms <= 0 || tracesPerProgram <= 0 {
		return nil, fmt.Errorf("power: CollectGroups needs programs/traces > 0")
	}
	ds := &Dataset{DeviceID: c.Device.ID}
	for g := avr.Group1; g <= avr.Group8; g++ {
		ds.ClassNames = append(ds.ClassNames, g.String())
	}
	rng := rand.New(rand.NewSource(int64(c.Seed ^ 0x0ddba11)))
	for g := avr.Group1; g <= avr.Group8; g++ {
		members := avr.ClassesInGroup(g)
		for p := 0; p < numPrograms; p++ {
			prog := NewFieldProgramEnv(c.Model.Config(), c.Seed+uint64(g)*7777777, p, c.severity())
			for i := 0; i < tracesPerProgram; i++ {
				cl := members[rng.Intn(len(members))]
				seg := avr.NewSegment(rng, avr.RandomOperands(rng, cl))
				tr, err := c.acquireSegment(rng, seg, prog)
				if err != nil {
					return nil, err
				}
				ds.Append(tr, int(g-avr.Group1), p)
			}
		}
	}
	return ds, nil
}

// CollectRegisters acquires traces labeled by register address 0..31. If
// fixDst is true the destination register Rd is fixed per label (the paper's
// Rd0–Rd31 profiling); otherwise the source register Rr is fixed. Opcode and
// the free register are randomized over group 1.
func (c *Campaign) CollectRegisters(fixDst bool, numPrograms, tracesPerProgram int) (*Dataset, error) {
	if numPrograms <= 0 || tracesPerProgram <= 0 {
		return nil, fmt.Errorf("power: CollectRegisters needs programs/traces > 0")
	}
	ds := &Dataset{DeviceID: c.Device.ID}
	for r := 0; r < 32; r++ {
		if fixDst {
			ds.ClassNames = append(ds.ClassNames, fmt.Sprintf("Rd%d", r))
		} else {
			ds.ClassNames = append(ds.ClassNames, fmt.Sprintf("Rr%d", r))
		}
	}
	rng := rand.New(rand.NewSource(int64(c.Seed ^ 0xcafef00d)))
	for r := 0; r < 32; r++ {
		for p := 0; p < numPrograms; p++ {
			prog := NewFieldProgramEnv(c.Model.Config(), c.Seed+uint64(r)*333667, p, c.severity())
			pf := avr.NewRegisterProgramFile(rng, p, uint8(r), fixDst, tracesPerProgram)
			for _, seg := range pf.Segments {
				tr, err := c.acquireSegment(rng, seg, prog)
				if err != nil {
					return nil, err
				}
				ds.Append(tr, r, p)
			}
		}
	}
	return ds, nil
}

// AcquireSegments measures an arbitrary instruction stream, one trace per
// instruction, under a single program environment — the disassembly-time
// path, where the class labels are unknown. Targets may include control
// flow; neighbors are taken from the stream itself.
func (c *Campaign) AcquireSegments(rng *rand.Rand, prog *ProgramEnv, stream []avr.Instruction) ([][]float64, error) {
	traces := make([][]float64, 0, len(stream))
	nop := avr.Instruction{Class: avr.OpNOP}
	for i, target := range stream {
		prev, next := nop, nop
		if i > 0 {
			prev = stream[i-1]
		}
		if i+1 < len(stream) {
			next = stream[i+1]
		}
		seg := avr.Segment{Target: target, Prev: prev, Next: next}
		tr, err := c.acquireSegment(rng, seg, prog)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// AcquireTemplated measures each target instruction inside a fresh segment
// template with randomized neighbor instructions — the profiling-style
// context (Fig. 4). Use this for accuracy evaluation against templates; use
// AcquireSegments when disassembling a concrete program, where the true
// neighbors apply.
func (c *Campaign) AcquireTemplated(rng *rand.Rand, prog *ProgramEnv, targets []avr.Instruction) ([][]float64, error) {
	traces := make([][]float64, 0, len(targets))
	for _, target := range targets {
		seg := avr.NewSegment(rng, target)
		tr, err := c.acquireSegment(rng, seg, prog)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}
