// Package parallel provides the bounded worker-pool primitives the feature
// pipeline, trainer and experiment harness parallelize with.
//
// Design rules, shared by every caller in this repository:
//
//   - Work is expressed as an index space [0, n); each index writes only its
//     own output slot, so the result of a parallel loop is byte-identical to
//     the serial loop regardless of scheduling.
//   - Any reduction over the slots (summing statistics, picking a best score,
//     reporting an error) happens afterwards, serially, in index order —
//     deterministic floating-point accumulation comes for free.
//   - The worker count is a process-wide knob (SetWorkers / the -workers
//     flag); 0 or negative means runtime.NumCPU(). With one worker the loop
//     body runs inline on the calling goroutine, so "serial mode" is exactly
//     the pre-parallelism code path.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// configured is the requested worker count; <= 0 selects runtime.NumCPU().
var configured atomic.Int64

// poolMetrics holds the pool's instrument handles; the handles are nil
// (no-op) under a nil registry. When enabled, every loop body is timed so
// the busy time — per stage (attributed to the context span) and
// process-wide — quantifies worker utilization. The live set is swapped
// atomically by the OnDefault hook, so obs.SetDefault is safe to call while
// loops run: each loop binds its handle set once at entry.
type poolMetrics struct {
	loops   *obs.Counter // parallel.loops — For/ForErr/ForCtx/ForErrCtx calls
	tasks   *obs.Counter // parallel.tasks — loop bodies executed
	busyNS  *obs.Counter // parallel.busy_ns — summed body wall time
	cancels *obs.Counter // parallel.cancellations — loops that returned ctx.Err()
	workers *obs.Gauge   // parallel.workers — effective pool size
}

var metPtr atomic.Pointer[poolMetrics]

// met returns the current handle set; never nil.
func met() *poolMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &poolMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		m := &poolMetrics{
			loops:   r.Counter("parallel.loops"),
			tasks:   r.Counter("parallel.tasks"),
			busyNS:  r.Counter("parallel.busy_ns"),
			cancels: r.Counter("parallel.cancellations"),
			workers: r.Gauge("parallel.workers"),
		}
		m.workers.Set(float64(Workers()))
		metPtr.Store(m)
	})
}

// SetWorkers pins the process-wide worker count used by For and ForErr.
// n <= 0 restores the default (runtime.NumCPU()).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	configured.Store(int64(n))
	met().workers.Set(float64(Workers()))
}

// Workers returns the effective worker count (always >= 1).
func Workers() int {
	if n := int(configured.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For runs fn(i) for every i in [0, n) on up to Workers() goroutines and
// returns when all calls have finished. Indices are handed out by an atomic
// counter, so bodies must not depend on execution order; each body should
// write only to state owned by its index. With Workers() == 1 (or n <= 1)
// the loop runs inline on the calling goroutine.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m := met()
	m.loops.Inc()
	if m.tasks != nil {
		inner := fn
		fn = func(i int) {
			start := time.Now()
			inner(i)
			m.tasks.Inc()
			m.busyNS.Add(int64(time.Since(start)))
		}
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) like For and returns the error of
// the lowest failing index — the same error a serial loop that stops at the
// first failure would report. Once any index fails, indices above the lowest
// known failure are skipped (their slots stay zero), mirroring the serial
// early exit; indices below it still run, which is harmless because slot
// writes are independent.
func ForErr(n int, fn func(i int) error) error {
	return ForErrCtx(context.Background(), n, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled no new
// index is started (indices already running finish normally), and the
// returned error is ctx.Err(). A nil return means every index ran and ctx
// was still live when the loop finished. Bodies that want finer-grained
// cancellation can check ctx themselves.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	return ForErrCtx(ctx, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForErrCtx is ForErr with cooperative cancellation. The error contract is
// deterministic:
//
//   - if any body returned an error, the error of the lowest failing index is
//     returned (exactly like ForErr), regardless of cancellation;
//   - otherwise, if ctx is cancelled by the time the loop returns, ctx.Err()
//     is returned (some indices may have been skipped);
//   - otherwise nil.
//
// Cancellation stops the scheduling of new indices immediately — ctx is
// checked before every index is handed to a body — but never interrupts a
// body already running, so index-owned slot writes stay race-free.
func ForErrCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	m := met()
	m.loops.Inc()
	w := Workers()
	if w > n {
		w = n
	}
	// Per-body timing feeds both the process-wide busy counter and the
	// enclosing stage span (worker utilization in the trace tree). Enabled
	// only when a registry or a tracer span is live; otherwise the loop body
	// runs unwrapped.
	if sp := obs.ContextSpan(ctx); sp != nil || m.tasks != nil {
		sp.NoteWorkers(w)
		inner := fn
		fn = func(i int) error {
			start := time.Now()
			err := inner(i)
			d := time.Since(start)
			m.tasks.Inc()
			m.busyNS.Add(int64(d))
			sp.AddBusy(d)
			return err
		}
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				m.cancels.Inc()
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			return err
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	bound := func() int {
		mu.Lock()
		defer mu.Unlock()
		return firstIdx
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || i > bound() {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		m.cancels.Inc()
		return err
	}
	return nil
}
