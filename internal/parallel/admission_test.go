package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionLimitsAndSheds pins the three-band contract: the first
// maxInFlight acquisitions run, the next maxQueue wait, and everything
// beyond is rejected with ErrOverloaded immediately.
func TestAdmissionLimitsAndSheds(t *testing.T) {
	a := NewAdmission(2, 1)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third acquisition queues.
	queued := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitFor(t, "queue occupancy", func() bool { return a.Queued() == 1 })

	// Fourth is over the queue limit: shed, not blocked.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit Acquire error = %v, want ErrOverloaded", err)
	}
	if _, err := a.TryAcquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TryAcquire with no free slot error = %v, want ErrOverloaded", err)
	}

	// Releasing a slot admits the queued waiter.
	r1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	r2()
	waitFor(t, "drain", func() bool { return a.InFlight() == 0 && a.Queued() == 0 })
}

// TestAdmissionAcquireHonorsContext pins that a queued waiter abandons its
// slot claim when its request context dies, freeing the queue position.
func TestAdmissionAcquireHonorsContext(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errc <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return a.Queued() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Acquire error = %v, want context.Canceled", err)
	}
	waitFor(t, "queue to empty", func() bool { return a.Queued() == 0 })
	release()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

// TestAdmissionDoubleReleasePanics pins the accounting guard: releasing a
// slot twice would over-credit the gate, so the closure must panic.
func TestAdmissionDoubleReleasePanics(t *testing.T) {
	a := NewAdmission(1, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	defer func() {
		if recover() == nil {
			t.Fatal("second release did not panic")
		}
	}()
	release()
}

// TestAdmissionClamps pins the constructor floor: nonsensical limits become
// the smallest sane gate instead of one that can never admit.
func TestAdmissionClamps(t *testing.T) {
	a := NewAdmission(0, -3)
	if a.MaxInFlight() != 1 || a.MaxQueue() != 0 {
		t.Fatalf("clamped gate = (%d, %d), want (1, 0)", a.MaxInFlight(), a.MaxQueue())
	}
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("zero-queue gate queued instead of shedding: %v", err)
	}
	release()
}

// TestAdmissionConcurrentChurn hammers the gate from many goroutines (the
// -race coverage for the CAS queue accounting) and checks the invariant that
// matters: admissions never exceed the slot count concurrently, and the gate
// drains back to empty.
func TestAdmissionConcurrentChurn(t *testing.T) {
	const (
		goroutines = 32
		rounds     = 50
		maxSlots   = 3
	)
	a := NewAdmission(maxSlots, 2)
	var (
		wg       sync.WaitGroup
		inside   atomic.Int64
		admitted atomic.Int64
		peak     atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				release, err := a.Acquire(context.Background())
				if err != nil {
					continue // shed under burst: expected
				}
				n := inside.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				admitted.Add(1)
				inside.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxSlots {
		t.Fatalf("observed %d concurrent admissions, limit %d", p, maxSlots)
	}
	if admitted.Load() == 0 {
		t.Fatal("no acquisition ever admitted")
	}
	waitFor(t, "drain", func() bool { return a.InFlight() == 0 && a.Queued() == 0 })
	// The gate is intact: full capacity is acquirable again.
	var rel []func()
	for i := 0; i < maxSlots; i++ {
		r, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d after churn: %v", i, err)
		}
		rel = append(rel, r)
	}
	for _, r := range rel {
		r()
	}
}
