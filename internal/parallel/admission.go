package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrOverloaded is returned by Admission.Acquire when the in-flight limit is
// reached and the wait queue is already at its depth limit — the signal an
// HTTP front end maps to 429 + Retry-After. Rejecting at a bounded queue
// depth (instead of queueing without limit) keeps memory flat and latency
// honest under a load burst.
var ErrOverloaded = errors.New("parallel: admission queue full")

// admMetrics holds the admission instrument handles; swapped atomically by
// the OnDefault hook like every instrumented package.
type admMetrics struct {
	admitted *obs.Counter   // parallel.admission.admitted — acquisitions granted
	rejected *obs.Counter   // parallel.admission.rejected — ErrOverloaded rejections
	canceled *obs.Counter   // parallel.admission.canceled — waits abandoned via ctx
	inflight *obs.Gauge     // parallel.admission.inflight — slots currently held
	queued   *obs.Gauge     // parallel.admission.queued — waiters currently queued
	wait     *obs.Histogram // parallel.admission.wait.seconds — time from Acquire to admit
}

var admMetPtr atomic.Pointer[admMetrics]

func admMet() *admMetrics {
	if m := admMetPtr.Load(); m != nil {
		return m
	}
	return &admMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		admMetPtr.Store(&admMetrics{
			admitted: r.Counter("parallel.admission.admitted"),
			rejected: r.Counter("parallel.admission.rejected"),
			canceled: r.Counter("parallel.admission.canceled"),
			inflight: r.Gauge("parallel.admission.inflight"),
			queued:   r.Gauge("parallel.admission.queued"),
			wait:     r.Histogram("parallel.admission.wait.seconds"),
		})
	})
}

// Admission is the server-side backpressure primitive on top of the worker
// pool: at most maxInFlight acquisitions run concurrently, at most maxQueue
// more wait for a slot, and everything beyond that is rejected immediately
// with ErrOverloaded. The pool itself (For/ForErrCtx) bounds CPU parallelism
// inside one batch; Admission bounds how many batches are in the building at
// all, which is what keeps a burst from growing the heap without limit.
//
// All methods are safe for concurrent use.
type Admission struct {
	slots chan struct{} // buffered; a token in the channel = a free slot
	queue atomic.Int64  // current waiters (admitted-or-rejected accounting)
	max   int
	maxQ  int
}

// NewAdmission builds an admission gate with maxInFlight concurrent slots
// and a wait queue of maxQueue. maxInFlight < 1 is clamped to 1; maxQueue
// < 0 is clamped to 0 (reject as soon as every slot is busy).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &Admission{
		slots: make(chan struct{}, maxInFlight),
		max:   maxInFlight,
		maxQ:  maxQueue,
	}
	for i := 0; i < maxInFlight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// MaxInFlight returns the concurrent-slot limit.
func (a *Admission) MaxInFlight() int { return a.max }

// MaxQueue returns the wait-queue depth limit.
func (a *Admission) MaxQueue() int { return a.maxQ }

// InFlight returns the number of slots currently held.
func (a *Admission) InFlight() int { return a.max - len(a.slots) }

// Queued returns the number of acquisitions currently waiting for a slot.
func (a *Admission) Queued() int { return int(a.queue.Load()) }

// Acquire claims a slot, waiting in the bounded queue when all slots are
// busy. It returns a release function that must be called exactly once when
// the admitted work finishes (it is idempotent-unsafe by design: double
// release would over-credit the gate, so the returned closure panics on a
// second call). Errors:
//
//   - ErrOverloaded when the queue is already maxQueue deep — the caller
//     should shed the request (HTTP 429) rather than wait;
//   - ctx.Err() when the context is done before a slot frees up.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	m := admMet()
	// Request tracing: the wait (including a zero-wait fast-path admit) is a
	// fine span under the caller's current span, so a traced request's tree
	// shows exactly how long it sat at the gate. Nil (free) without a fine
	// tracer in ctx.
	sp := obs.ContextSpan(ctx).FineChild("parallel.admission.wait")
	// Fast path: a slot is free right now. The wait histogram records a zero
	// so its quantiles reflect every admitted request, not just queued ones —
	// without the cost of a clock read on the uncontended (untraced) path.
	select {
	case <-a.slots:
		m.admitted.Inc()
		m.inflight.Set(float64(a.InFlight()))
		m.wait.Observe(0)
		sp.End()
		return a.releaseFunc(), nil
	default:
	}
	// Slow path: join the bounded queue, or shed.
	for {
		q := a.queue.Load()
		if int(q) >= a.maxQ {
			m.rejected.Inc()
			sp.SetAttr("rejected", 1)
			sp.End()
			return nil, ErrOverloaded
		}
		if a.queue.CompareAndSwap(q, q+1) {
			break
		}
	}
	sp.SetAttr("queued.depth", float64(a.Queued()))
	m.queued.Set(float64(a.Queued()))
	defer func() {
		a.queue.Add(-1)
		m.queued.Set(float64(a.Queued()))
	}()
	start := time.Now()
	select {
	case <-a.slots:
		m.admitted.Inc()
		m.inflight.Set(float64(a.InFlight()))
		m.wait.Observe(time.Since(start).Seconds())
		sp.End()
		return a.releaseFunc(), nil
	case <-ctx.Done():
		m.canceled.Inc()
		sp.SetAttr("canceled", 1)
		sp.End()
		return nil, ctx.Err()
	}
}

// Saturated reports whether the gate would shed the next Acquire: every slot
// held and the wait queue at its depth limit. Readiness probes use this —
// a saturated gate means new work gets 429s, so the instance should be
// pulled from rotation rather than fed more traffic.
func (a *Admission) Saturated() bool {
	return a.InFlight() >= a.max && a.Queued() >= a.maxQ
}

// TryAcquire is Acquire without waiting: it claims a free slot or returns
// ErrOverloaded immediately, never joining the queue.
func (a *Admission) TryAcquire() (release func(), err error) {
	m := admMet()
	select {
	case <-a.slots:
		m.admitted.Inc()
		m.inflight.Set(float64(a.InFlight()))
		return a.releaseFunc(), nil
	default:
		m.rejected.Inc()
		return nil, ErrOverloaded
	}
}

// releaseFunc returns the single-use closure handed to an admitted caller.
func (a *Admission) releaseFunc() func() {
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			panic(fmt.Sprintf("parallel: Admission slot released twice (max %d)", a.max))
		}
		a.slots <- struct{}{}
		admMet().inflight.Set(float64(a.InFlight()))
	}
}
