package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() after negative = %d, want NumCPU", got)
	}
	SetWorkers(0)
}

func TestForCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		SetWorkers(w)
		const n = 1000
		out := make([]int64, n)
		For(n, func(i int) { atomic.AddInt64(&out[i], 1) })
		for i, v := range out {
			if v != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestForZeroAndOne(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ran := 0
	For(0, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("For(0) ran %d times", ran)
	}
	For(1, func(int) { ran++ })
	if ran != 1 {
		t.Fatalf("For(1) ran %d times", ran)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		err := ForErr(100, func(i int) error {
			if i == 7 || i == 50 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Fatalf("workers=%d: err = %v, want fail at 7", w, err)
		}
	}
	SetWorkers(0)
}

func TestForErrNilOnSuccess(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	if err := ForErr(64, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForErrPropagatesSentinel(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	sentinel := errors.New("boom")
	err := ForErr(10, func(i int) error {
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
}
