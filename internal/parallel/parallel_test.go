package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() after negative = %d, want NumCPU", got)
	}
	SetWorkers(0)
}

func TestForCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		SetWorkers(w)
		const n = 1000
		out := make([]int64, n)
		For(n, func(i int) { atomic.AddInt64(&out[i], 1) })
		for i, v := range out {
			if v != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestForZeroAndOne(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ran := 0
	For(0, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("For(0) ran %d times", ran)
	}
	For(1, func(int) { ran++ })
	if ran != 1 {
		t.Fatalf("For(1) ran %d times", ran)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		err := ForErr(100, func(i int) error {
			if i == 7 || i == 50 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Fatalf("workers=%d: err = %v, want fail at 7", w, err)
		}
	}
	SetWorkers(0)
}

func TestForErrNilOnSuccess(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	if err := ForErr(64, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForErrPropagatesSentinel(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	sentinel := errors.New("boom")
	err := ForErr(10, func(i int) error {
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
}

func TestForErrCtxCompletesWithLiveContext(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		var ran atomic.Int64
		err := ForErrCtx(context.Background(), 128, func(int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", w, err)
		}
		if ran.Load() != 128 {
			t.Fatalf("workers=%d: ran %d of 128 indices", w, ran.Load())
		}
	}
	SetWorkers(0)
}

// TestForErrCtxStopsSchedulingAfterCancel proves that after ctx is cancelled
// no new task starts: a body cancels the context, waits until every worker
// has observed the cancellation (wg below), and the started-counter must then
// stay frozen strictly below n.
func TestForErrCtxStopsSchedulingAfterCancel(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		const n = 100000
		var started atomic.Int64
		var once sync.Once
		err := ForErrCtx(ctx, n, func(i int) error {
			started.Add(1)
			once.Do(cancel)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		after := started.Load()
		// Every index already in flight when cancel hit may finish, so up to
		// Workers() extra bodies can run — but nothing new after the loop
		// returned, and far fewer than n total.
		if after >= n {
			t.Fatalf("workers=%d: all %d indices ran despite cancellation", w, n)
		}
		time.Sleep(10 * time.Millisecond)
		if got := started.Load(); got != after {
			t.Fatalf("workers=%d: %d tasks started after ForErrCtx returned (was %d)", w, got-after, after)
		}
	}
	SetWorkers(0)
}

func TestForErrCtxPreCancelledRunsNothing(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := ForErrCtx(ctx, 64, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d bodies ran under a pre-cancelled context", w, ran.Load())
		}
	}
	SetWorkers(0)
}

// A body error at a low index beats cancellation: the caller sees the same
// error a serial early-exit loop would report, not context.Canceled.
func TestForErrCtxBodyErrorBeatsCancellation(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("boom")
	err := ForErrCtx(ctx, 50, func(i int) error {
		if i == 3 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel body error", err)
	}
}

func TestForCtxCancellation(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err := ForCtx(ctx, 100000, func(i int) {
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx err = %v, want context.Canceled", err)
	}
	if err := ForCtx(context.Background(), 10, func(int) {}); err != nil {
		t.Fatalf("ForCtx with live context: %v", err)
	}
}
