package parallel

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// Registry instruments must be safe to hammer from parallel loop bodies.
// This is the contract every instrumented pipeline stage relies on; run under
// -race in CI.
func TestRegistryConcurrentFromParallelFor(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	const n = 500
	c := reg.Counter("test.race.counter")
	g := reg.Gauge("test.race.gauge")
	h := reg.Histogram("test.race.hist")
	For(n, func(i int) {
		c.Inc()
		c.Add(2)
		g.Add(1)
		h.Observe(float64(i%10) + 0.5)
		// Create-on-first-use from many goroutines must also be safe.
		reg.Counter("test.race.dynamic").Inc()
	})

	if got := c.Value(); got != 3*n {
		t.Fatalf("counter = %d, want %d", got, 3*n)
	}
	if got := g.Value(); got != n {
		t.Fatalf("gauge = %g, want %d", got, n)
	}
	if got := h.Count(); got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
	snap := reg.Snapshot()
	if snap.Counters["test.race.dynamic"] != n {
		t.Fatalf("dynamic counter = %d, want %d", snap.Counters["test.race.dynamic"], n)
	}
}

// Span busy-time attribution from ForErrCtx bodies must be race-free, and the
// loop must note its worker count on the enclosing span.
func TestSpanBusyAttributionFromForErrCtx(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx, sp := obs.Span(ctx, "test.stage")

	var bodies atomic.Int64
	err := ForErrCtx(ctx, 200, func(i int) error {
		bodies.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.End()

	if bodies.Load() != 200 {
		t.Fatalf("ran %d bodies, want 200", bodies.Load())
	}
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "test.stage" {
		t.Fatalf("tree = %+v", roots)
	}
	if roots[0].Workers < 1 {
		t.Fatalf("loop did not note its worker count: %+v", roots[0])
	}
	if roots[0].BusyMS < 0 {
		t.Fatalf("negative busy time: %+v", roots[0])
	}
}

// Snapshotting while writers are active must be consistent enough to never
// tear a counter (monotonic reads) and never race.
func TestSnapshotDuringConcurrentWrites(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test.snap.counter")
	done := make(chan struct{})
	go func() {
		defer close(done)
		For(2000, func(i int) { c.Inc() })
	}()
	var last int64
	for i := 0; i < 50; i++ {
		snap := reg.Snapshot()
		v := snap.Counters["test.snap.counter"]
		if v < last {
			t.Fatalf("counter went backwards: %d -> %d", last, v)
		}
		last = v
	}
	<-done
	if v := reg.Snapshot().Counters["test.snap.counter"]; v != 2000 {
		t.Fatalf("final counter = %d, want 2000", v)
	}
}
