package ml

import (
	"errors"
	"fmt"
	"sort"
)

// KNN is the k-nearest-neighbors classifier (Euclidean metric), the
// classifier of Msgna et al. that the paper compares against (k = 1 with
// PCA features).
type KNN struct {
	K  int
	X  [][]float64
	y  []int
	p  int
	nc int
}

// NewKNN returns a k-nearest-neighbors classifier.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("%d-NN", k.K) }

// Fit implements Classifier (memorizes the training set).
func (k *KNN) Fit(X [][]float64, y []int) error {
	defer knnMet().timeFit()()
	if k.K < 1 {
		return fmt.Errorf("ml: kNN needs k >= 1, got %d", k.K)
	}
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	if len(X) < k.K {
		return fmt.Errorf("ml: kNN with k=%d needs at least k samples, got %d", k.K, len(X))
	}
	k.X = X
	k.y = y
	k.p = p
	k.nc = nc
	return nil
}

// classVotes returns the per-class vote counts among the K nearest training
// samples of x.
func (k *KNN) classVotes(x []float64) ([]float64, error) {
	if k.X == nil {
		return nil, errors.New("ml: kNN used before Fit")
	}
	if len(x) != k.p {
		return nil, errDim(len(x), k.p)
	}
	type nb struct {
		d float64
		y int
	}
	nbs := make([]nb, len(k.X))
	for i, row := range k.X {
		var d float64
		for j := range row {
			diff := row[j] - x[j]
			d += diff * diff
		}
		nbs[i] = nb{d: d, y: k.y[i]}
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
	votes := make([]float64, k.nc)
	for i := 0; i < k.K; i++ {
		votes[nbs[i].y]++
	}
	return votes, nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	knnMet().predicts.Inc()
	votes, err := k.classVotes(x)
	if err != nil {
		return 0, err
	}
	return argmax(votes), nil
}

// PredictScored implements ScoredClassifier: the confidence is the neighbor
// vote fraction (votes for the winning class over k).
func (k *KNN) PredictScored(x []float64) (ScoredPrediction, error) {
	knnMet().predicts.Inc()
	votes, err := k.classVotes(x)
	if err != nil {
		return ScoredPrediction{}, err
	}
	return scoredFromWeights(votes), nil
}
