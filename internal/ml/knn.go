package ml

import (
	"errors"
	"fmt"
	"sort"
)

// KNN is the k-nearest-neighbors classifier (Euclidean metric), the
// classifier of Msgna et al. that the paper compares against (k = 1 with
// PCA features).
type KNN struct {
	K  int
	X  [][]float64
	y  []int
	p  int
	nc int
}

// NewKNN returns a k-nearest-neighbors classifier.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("%d-NN", k.K) }

// Fit implements Classifier (memorizes the training set).
func (k *KNN) Fit(X [][]float64, y []int) error {
	defer knnMet.timeFit()()
	if k.K < 1 {
		return fmt.Errorf("ml: kNN needs k >= 1, got %d", k.K)
	}
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	if len(X) < k.K {
		return fmt.Errorf("ml: kNN with k=%d needs at least k samples, got %d", k.K, len(X))
	}
	k.X = X
	k.y = y
	k.p = p
	k.nc = nc
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	knnMet.predicts.Inc()
	if k.X == nil {
		return 0, errors.New("ml: kNN used before Fit")
	}
	if len(x) != k.p {
		return 0, errDim(len(x), k.p)
	}
	type nb struct {
		d float64
		y int
	}
	nbs := make([]nb, len(k.X))
	for i, row := range k.X {
		var d float64
		for j := range row {
			diff := row[j] - x[j]
			d += diff * diff
		}
		nbs[i] = nb{d: d, y: k.y[i]}
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
	votes := make([]int, k.nc)
	for i := 0; i < k.K; i++ {
		votes[nbs[i].y]++
	}
	best, bi := -1, 0
	for c, v := range votes {
		if v > best {
			best, bi = v, c
		}
	}
	return bi, nil
}
