package ml

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func blobData(rng *rand.Rand, perClass int) (X [][]float64, y []int) {
	centers := [][]float64{{0, 0}, {3, 3}, {0, 4}}
	for c, ctr := range centers {
		for i := 0; i < perClass; i++ {
			X = append(X, []float64{ctr[0] + rng.NormFloat64(), ctr[1] + rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return
}

// TestKFoldCVParallelEquivalence: same seed, same score at any worker count.
func TestKFoldCVParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := blobData(rng, 12)
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	want, err := KFoldCV(func() Classifier { return NewLDA() }, X, y, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	got, err := KFoldCV(func() Classifier { return NewLDA() }, X, y, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("CV score differs: serial %v, parallel %v", want, got)
	}
}

// TestGridSearchSVMParallelEquivalence: the chosen hyperparameters and score
// must not depend on the worker count.
func TestGridSearchSVMParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := blobData(rng, 10)
	cs := []float64{0.1, 1, 10}
	gammas := []float64{0.1, 1}
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	_, want, err := GridSearchSVM(X, y, cs, gammas, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	_, got, err := GridSearchSVM(X, y, cs, gammas, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("grid search differs: serial %+v, parallel %+v", want, got)
	}
}
