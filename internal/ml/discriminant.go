package ml

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// LDA is linear discriminant analysis: Gaussian classes with a shared
// (pooled) covariance, yielding linear decision boundaries. Matches MATLAB's
// fitcdiscr(..., 'DiscrimType', 'linear') used in the paper.
type LDA struct {
	means  [][]float64
	chol   *linalg.Cholesky
	priors []float64
	// cached Σ⁻¹μc and constants for the linear discriminant
	wc []([]float64)
	bc []float64
	nc int
	p  int
}

// NewLDA returns an untrained LDA classifier.
func NewLDA() *LDA { return &LDA{} }

// Name implements Classifier.
func (l *LDA) Name() string { return "LDA" }

// Fit implements Classifier.
func (l *LDA) Fit(X [][]float64, y []int) error {
	defer ldaMet().timeFit()()
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	byClass := splitByClass(y, nc)
	pooled := linalg.NewMatrix(p, p)
	means := make([][]float64, nc)
	priors := make([]float64, nc)
	for c, idx := range byClass {
		if len(idx) < 2 {
			return errorsClassTooSmall(c, len(idx))
		}
		Xc := linalg.NewMatrix(len(idx), p)
		for i, j := range idx {
			copy(Xc.Row(i), X[j])
		}
		mu := linalg.Mean(Xc)
		cov, err := linalg.Covariance(Xc, mu)
		if err != nil {
			return err
		}
		cov.Scale(float64(len(idx) - 1))
		if err := pooled.Add(cov); err != nil {
			return err
		}
		means[c] = mu
		priors[c] = float64(len(idx)) / float64(len(X))
	}
	pooled.Scale(1 / float64(len(X)-nc))
	ch, _, err := linalg.RegularizedCholesky(pooled, 1e-9)
	if err != nil {
		return err
	}
	l.means, l.chol, l.priors, l.nc, l.p = means, ch, priors, nc, p
	l.wc = make([][]float64, nc)
	l.bc = make([]float64, nc)
	for c := 0; c < nc; c++ {
		w, err := ch.SolveVec(means[c])
		if err != nil {
			return err
		}
		l.wc[c] = w
		l.bc[c] = -0.5*linalg.Dot(means[c], w) + math.Log(priors[c])
	}
	return nil
}

// Scores returns the per-class linear discriminant values.
func (l *LDA) Scores(x []float64) ([]float64, error) {
	if l.chol == nil {
		return nil, errors.New("ml: LDA used before Fit")
	}
	if len(x) != l.p {
		return nil, errDim(len(x), l.p)
	}
	out := make([]float64, l.nc)
	for c := 0; c < l.nc; c++ {
		out[c] = linalg.Dot(l.wc[c], x) + l.bc[c]
	}
	return out, nil
}

// Predict implements Classifier.
func (l *LDA) Predict(x []float64) (int, error) {
	ldaMet().predicts.Inc()
	s, err := l.Scores(x)
	if err != nil {
		return 0, err
	}
	return argmax(s), nil
}

// PredictScored implements ScoredClassifier. The linear discriminant values
// are class log posteriors up to a shared constant, so their softmax is the
// posterior distribution.
func (l *LDA) PredictScored(x []float64) (ScoredPrediction, error) {
	ldaMet().predicts.Inc()
	s, err := l.Scores(x)
	if err != nil {
		return ScoredPrediction{}, err
	}
	return scoredFromLogScores(s), nil
}

// QDA is quadratic discriminant analysis: Gaussian classes with their own
// covariance matrices. This is the classifier that achieves the paper's
// headline 99.03 % instruction+register recognition.
type QDA struct {
	means   [][]float64
	chols   []*linalg.Cholesky
	logDets []float64
	priors  []float64
	nc, p   int
}

// NewQDA returns an untrained QDA classifier.
func NewQDA() *QDA { return &QDA{} }

// Name implements Classifier.
func (q *QDA) Name() string { return "QDA" }

// Fit implements Classifier.
func (q *QDA) Fit(X [][]float64, y []int) error {
	defer qdaMet().timeFit()()
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	byClass := splitByClass(y, nc)
	q.means = make([][]float64, nc)
	q.chols = make([]*linalg.Cholesky, nc)
	q.logDets = make([]float64, nc)
	q.priors = make([]float64, nc)
	for c, idx := range byClass {
		if len(idx) < 2 {
			return errorsClassTooSmall(c, len(idx))
		}
		Xc := linalg.NewMatrix(len(idx), p)
		for i, j := range idx {
			copy(Xc.Row(i), X[j])
		}
		mu := linalg.Mean(Xc)
		cov, err := linalg.Covariance(Xc, mu)
		if err != nil {
			return err
		}
		ch, _, err := linalg.RegularizedCholesky(cov, 1e-9)
		if err != nil {
			return err
		}
		q.means[c] = mu
		q.chols[c] = ch
		q.logDets[c] = ch.LogDet()
		q.priors[c] = float64(len(idx)) / float64(len(X))
	}
	q.nc, q.p = nc, p
	return nil
}

// Scores returns the per-class quadratic discriminant values (log posterior
// up to a constant).
func (q *QDA) Scores(x []float64) ([]float64, error) {
	if len(q.chols) == 0 {
		return nil, errors.New("ml: QDA used before Fit")
	}
	if len(x) != q.p {
		return nil, errDim(len(x), q.p)
	}
	out := make([]float64, q.nc)
	for c := 0; c < q.nc; c++ {
		m, err := q.chols[c].MahalanobisSq(x, q.means[c])
		if err != nil {
			return nil, err
		}
		out[c] = -0.5*q.logDets[c] - 0.5*m + math.Log(q.priors[c])
	}
	return out, nil
}

// Predict implements Classifier.
func (q *QDA) Predict(x []float64) (int, error) {
	qdaMet().predicts.Inc()
	s, err := q.Scores(x)
	if err != nil {
		return 0, err
	}
	return argmax(s), nil
}

// PredictScored implements ScoredClassifier (softmax of the quadratic
// discriminant values — the class posteriors).
func (q *QDA) PredictScored(x []float64) (ScoredPrediction, error) {
	qdaMet().predicts.Inc()
	s, err := q.Scores(x)
	if err != nil {
		return ScoredPrediction{}, err
	}
	return scoredFromLogScores(s), nil
}

func argmax(s []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range s {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func errDim(got, want int) error {
	return fmt.Errorf("ml: feature dimension mismatch: got %d, want %d", got, want)
}

func errorsClassTooSmall(c, n int) error {
	return fmt.Errorf("ml: class %d has only %d samples; need >= 2", c, n)
}
