package ml

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// GaussianNB is the naïve Bayes classifier with per-class, per-dimension
// Gaussian likelihoods (MATLAB fitcnb's default in the paper).
type GaussianNB struct {
	means  [][]float64 // [class][dim]
	vars   [][]float64
	priors []float64
	nc, p  int
}

// NewGaussianNB returns an untrained classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "NaiveBayes" }

// minVar floors per-dimension variances so constant features do not produce
// infinite log likelihoods.
const minVar = 1e-12

// Fit implements Classifier.
func (g *GaussianNB) Fit(X [][]float64, y []int) error {
	defer nbMet().timeFit()()
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	byClass := splitByClass(y, nc)
	g.means = make([][]float64, nc)
	g.vars = make([][]float64, nc)
	g.priors = make([]float64, nc)
	col := make([]float64, 0, len(X))
	for c, idx := range byClass {
		if len(idx) < 2 {
			return errorsClassTooSmall(c, len(idx))
		}
		g.means[c] = make([]float64, p)
		g.vars[c] = make([]float64, p)
		for j := 0; j < p; j++ {
			col = col[:0]
			for _, i := range idx {
				col = append(col, X[i][j])
			}
			g.means[c][j] = stats.Mean(col)
			v := stats.Variance(col)
			if v < minVar {
				v = minVar
			}
			g.vars[c][j] = v
		}
		g.priors[c] = float64(len(idx)) / float64(len(X))
	}
	g.nc, g.p = nc, p
	return nil
}

// LogPosteriors returns per-class log posterior values (up to a constant).
func (g *GaussianNB) LogPosteriors(x []float64) ([]float64, error) {
	if g.nc == 0 {
		return nil, errors.New("ml: GaussianNB used before Fit")
	}
	if len(x) != g.p {
		return nil, errDim(len(x), g.p)
	}
	out := make([]float64, g.nc)
	for c := 0; c < g.nc; c++ {
		ll := math.Log(g.priors[c])
		for j := 0; j < g.p; j++ {
			d := x[j] - g.means[c][j]
			ll += -0.5*math.Log(2*math.Pi*g.vars[c][j]) - d*d/(2*g.vars[c][j])
		}
		out[c] = ll
	}
	return out, nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) (int, error) {
	nbMet().predicts.Inc()
	s, err := g.LogPosteriors(x)
	if err != nil {
		return 0, err
	}
	return argmax(s), nil
}

// PredictScored implements ScoredClassifier (softmax of the log posteriors).
func (g *GaussianNB) PredictScored(x []float64) (ScoredPrediction, error) {
	nbMet().predicts.Inc()
	s, err := g.LogPosteriors(x)
	if err != nil {
		return ScoredPrediction{}, err
	}
	return scoredFromLogScores(s), nil
}
