package ml

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Kernel is an SVM kernel function.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// RBFKernel is the Gaussian radial basis kernel exp(-γ‖a−b‖²) used by the
// paper (LIBSVM default family).
type RBFKernel struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-k.Gamma * d)
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

// LinearKernel is the plain inner product.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += a[i] * b[i]
	}
	return d
}

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// binarySVM is a two-class soft-margin SVM trained with simplified SMO.
type binarySVM struct {
	kernel Kernel
	c      float64
	alphas []float64
	b      float64
	sv     [][]float64
	svY    []float64
}

// smoParams bound the SMO loop.
const (
	smoTol       = 1e-3
	smoMaxPasses = 8
	smoMaxIters  = 3000
)

// trainBinarySVM runs simplified SMO on X with labels y ∈ {−1, +1}.
func trainBinarySVM(rng *rand.Rand, kernel Kernel, c float64, X [][]float64, y []float64) (*binarySVM, error) {
	n := len(X)
	if n < 2 {
		return nil, errors.New("ml: binary SVM needs >= 2 samples")
	}
	// Precompute the kernel matrix; pair subsets are small enough.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel.Eval(X[i], X[j])
			K[i][j] = v
			K[j][i] = v
		}
	}
	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * K[i][j]
			}
		}
		return s
	}
	passes, iters := 0, 0
	for passes < smoMaxPasses && iters < smoMaxIters {
		iters++
		changed := 0
		for i := 0; i < n; i++ {
			Ei := f(i) - y[i]
			if (y[i]*Ei < -smoTol && alpha[i] < c) || (y[i]*Ei > smoTol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				Ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(c, c+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-c)
					hi = math.Min(c, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*K[i][j] - K[i][i] - K[j][j]
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(Ei-Ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - Ei - y[i]*(aiNew-ai)*K[i][i] - y[j]*(ajNew-aj)*K[i][j]
				b2 := b - Ej - y[i]*(aiNew-ai)*K[i][j] - y[j]*(ajNew-aj)*K[j][j]
				switch {
				case aiNew > 0 && aiNew < c:
					b = b1
				case ajNew > 0 && ajNew < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	m := &binarySVM{kernel: kernel, c: c, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.alphas = append(m.alphas, alpha[i])
			m.sv = append(m.sv, X[i])
			m.svY = append(m.svY, y[i])
		}
	}
	return m, nil
}

// decision returns the signed margin of x.
func (m *binarySVM) decision(x []float64) float64 {
	s := m.b
	for i, sv := range m.sv {
		s += m.alphas[i] * m.svY[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// SVM is a one-vs-one multiclass SVM. Each class pair gets its own binary
// SMO-trained machine; prediction is by majority vote (ties broken by total
// margin), exactly the LIBSVM strategy the paper uses.
type SVM struct {
	C      float64
	Kernel Kernel
	Seed   int64

	machines []*binarySVM
	pairs    [][2]int
	nc, p    int
}

// NewSVM returns an untrained SVM with the given penalty and kernel.
func NewSVM(c float64, kernel Kernel) *SVM {
	return &SVM{C: c, Kernel: kernel, Seed: 1}
}

// Name implements Classifier.
func (s *SVM) Name() string { return fmt.Sprintf("SVM(C=%g,%s)", s.C, s.Kernel.Name()) }

// Fit implements Classifier.
func (s *SVM) Fit(X [][]float64, y []int) error {
	defer svmMet().timeFit()()
	if s.C <= 0 {
		return fmt.Errorf("ml: SVM needs C > 0, got %g", s.C)
	}
	if s.Kernel == nil {
		return errors.New("ml: SVM needs a kernel")
	}
	nc, p, err := validateTraining(X, y)
	if err != nil {
		return err
	}
	byClass := splitByClass(y, nc)
	rng := rand.New(rand.NewSource(s.Seed))
	s.machines = nil
	s.pairs = nil
	for a := 0; a < nc; a++ {
		for bCls := a + 1; bCls < nc; bCls++ {
			var px [][]float64
			var py []float64
			for _, i := range byClass[a] {
				px = append(px, X[i])
				py = append(py, +1)
			}
			for _, i := range byClass[bCls] {
				px = append(px, X[i])
				py = append(py, -1)
			}
			if len(px) < 2 {
				return fmt.Errorf("ml: SVM pair (%d,%d) lacks samples", a, bCls)
			}
			m, err := trainBinarySVM(rng, s.Kernel, s.C, px, py)
			if err != nil {
				return err
			}
			s.machines = append(s.machines, m)
			s.pairs = append(s.pairs, [2]int{a, bCls})
		}
	}
	s.nc, s.p = nc, p
	return nil
}

// voteTally accumulates the one-vs-one votes and per-class total margins
// for x across all pair machines.
func (s *SVM) voteTally(x []float64) (votes []int, margin []float64, err error) {
	if len(s.machines) == 0 {
		return nil, nil, errors.New("ml: SVM used before Fit")
	}
	if len(x) != s.p {
		return nil, nil, errDim(len(x), s.p)
	}
	votes = make([]int, s.nc)
	margin = make([]float64, s.nc)
	for i, m := range s.machines {
		d := m.decision(x)
		a, b := s.pairs[i][0], s.pairs[i][1]
		if d >= 0 {
			votes[a]++
			margin[a] += d
		} else {
			votes[b]++
			margin[b] -= d
		}
	}
	return votes, margin, nil
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) (int, error) {
	svmMet().predicts.Inc()
	votes, margin, err := s.voteTally(x)
	if err != nil {
		return 0, err
	}
	best := 0
	for c := 1; c < s.nc; c++ {
		if votes[c] > votes[best] || (votes[c] == votes[best] && margin[c] > margin[best]) {
			best = c
		}
	}
	return best, nil
}

// PredictScored implements ScoredClassifier. The per-class weight is the vote
// count plus the squashed total margin: because the margin component lies in
// (0, 1) it never outvotes a whole vote, so the weight ordering reproduces
// Predict's votes-then-margin tie-break exactly while still exposing how
// decisively the winner won.
func (s *SVM) PredictScored(x []float64) (ScoredPrediction, error) {
	svmMet().predicts.Inc()
	votes, margin, err := s.voteTally(x)
	if err != nil {
		return ScoredPrediction{}, err
	}
	w := make([]float64, s.nc)
	for c := range w {
		w[c] = float64(votes[c]) + squashMargin(margin[c])
	}
	return scoredFromWeights(w), nil
}

// NumSupportVectors returns the total SV count across pair machines.
func (s *SVM) NumSupportVectors() int {
	n := 0
	for _, m := range s.machines {
		n += len(m.sv)
	}
	return n
}

// GridSearchResult reports the chosen SVM hyperparameters.
type GridSearchResult struct {
	C, Gamma float64
	CVScore  float64
}

// GridSearchSVM selects C and the RBF γ by k-fold cross-validation (the
// paper: grid search with 3-fold CV) and returns the model refitted on the
// full training set.
//
// Determinism under parallelism: each grid cell's CV shuffle is drawn from
// rng serially in grid order before any evaluation starts, the cells are then
// scored concurrently into per-cell slots, and the winner is picked by a
// serial scan in the same grid order (strict improvement only) — so the
// selected hyperparameters and CV scores match a serial run exactly.
func GridSearchSVM(X [][]float64, y []int, cs, gammas []float64, folds int, rng *rand.Rand) (*SVM, GridSearchResult, error) {
	return GridSearchSVMCtx(context.Background(), X, y, cs, gammas, folds, rng)
}

// GridSearchSVMCtx is GridSearchSVM with cooperative cancellation: grid cells
// stop being scheduled once ctx is cancelled and the call returns ctx.Err().
// The winner scan and final refit only run when every cell completed.
func GridSearchSVMCtx(ctx context.Context, X [][]float64, y []int, cs, gammas []float64, folds int, rng *rand.Rand) (*SVM, GridSearchResult, error) {
	if len(cs) == 0 || len(gammas) == 0 {
		return nil, GridSearchResult{}, errors.New("ml: grid search needs candidate lists")
	}
	if folds < 2 || len(X) < folds {
		return nil, GridSearchResult{}, fmt.Errorf("ml: cannot run %d-fold CV on %d samples", folds, len(X))
	}
	ctx, gridSpan := obs.Span(ctx, "ml.svm.grid")
	defer gridSpan.End()
	type cell struct {
		c, g float64
		perm []int
	}
	var cells []cell
	for _, c := range cs {
		for _, g := range gammas {
			cells = append(cells, cell{c: c, g: g, perm: rng.Perm(len(X))})
		}
	}
	scores := make([]float64, len(cells))
	err := parallel.ForErrCtx(ctx, len(cells), func(i int) error {
		cl := cells[i]
		score, err := kFoldCVPerm(ctx, func() Classifier { return NewSVM(cl.c, RBFKernel{Gamma: cl.g}) }, X, y, folds, cl.perm)
		if err != nil {
			return err
		}
		scores[i] = score
		met().gridCells.Inc()
		slog.Debug("svm grid cell scored", "C", cl.c, "gamma", cl.g, "cv_accuracy", score)
		return nil
	})
	if err != nil {
		return nil, GridSearchResult{}, err
	}
	best := GridSearchResult{CVScore: -1}
	for i, cl := range cells {
		if scores[i] > best.CVScore {
			best = GridSearchResult{C: cl.c, Gamma: cl.g, CVScore: scores[i]}
		}
	}
	final := NewSVM(best.C, RBFKernel{Gamma: best.Gamma})
	if err := final.Fit(X, y); err != nil {
		return nil, GridSearchResult{}, err
	}
	return final, best, nil
}

// DefaultSVMGrid returns the C and γ candidates used by the experiment
// harness.
func DefaultSVMGrid() (cs, gammas []float64) {
	return []float64{0.1, 1, 10, 100}, []float64{0.01, 0.1, 1}
}
