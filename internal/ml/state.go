package ml

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// This file provides serializable snapshots of trained classifiers so
// template sets can be persisted (encoding/gob) and reloaded without
// re-profiling the device. Each snapshot holds only exported fields.

// LDAState is the serializable form of a trained LDA classifier.
type LDAState struct {
	Means        [][]float64
	PooledFactor *linalg.Matrix // lower-triangular Cholesky factor
	Priors       []float64
}

// State snapshots a trained LDA.
func (l *LDA) State() (*LDAState, error) {
	if l.chol == nil {
		return nil, errors.New("ml: LDA not trained")
	}
	return &LDAState{Means: l.means, PooledFactor: l.chol.L, Priors: l.priors}, nil
}

// rectRows validates that rows form a non-degenerate rectangle of width p.
// Restored snapshots come from files of uncontrolled origin, and the predict
// paths index rows by the class count and p without re-checking — a ragged
// or short row smuggled past restore would panic at classification time.
func rectRows(what string, rows [][]float64, p int) error {
	if p < 1 {
		return fmt.Errorf("ml: %s have zero dimension", what)
	}
	for i, r := range rows {
		if len(r) != p {
			return fmt.Errorf("ml: %s row %d has dimension %d, want %d", what, i, len(r), p)
		}
	}
	return nil
}

// checkPriors validates that priors cover every class (the predict paths
// index priors[c] for c in [0, nc)).
func checkPriors(priors []float64, nc int) error {
	if len(priors) != nc {
		return fmt.Errorf("ml: %d priors for %d classes", len(priors), nc)
	}
	return nil
}

// LDAFromState reconstructs a trained LDA.
func LDAFromState(st *LDAState) (*LDA, error) {
	if st == nil || len(st.Means) < 2 || st.PooledFactor == nil {
		return nil, errors.New("ml: invalid LDA state")
	}
	if err := rectRows("LDA means", st.Means, len(st.Means[0])); err != nil {
		return nil, err
	}
	if err := checkPriors(st.Priors, len(st.Means)); err != nil {
		return nil, err
	}
	chol, err := linalg.CholeskyFromFactor(st.PooledFactor)
	if err != nil {
		return nil, fmt.Errorf("ml: restoring LDA: %w", err)
	}
	l := &LDA{
		means:  st.Means,
		chol:   chol,
		priors: st.Priors,
		nc:     len(st.Means),
		p:      len(st.Means[0]),
	}
	l.wc = make([][]float64, l.nc)
	l.bc = make([]float64, l.nc)
	for c := 0; c < l.nc; c++ {
		w, err := l.chol.SolveVec(st.Means[c])
		if err != nil {
			return nil, fmt.Errorf("ml: restoring LDA: %w", err)
		}
		l.wc[c] = w
		l.bc[c] = -0.5*linalg.Dot(st.Means[c], w) + logPrior(st.Priors, c)
	}
	return l, nil
}

// QDAState is the serializable form of a trained QDA classifier.
type QDAState struct {
	Means   [][]float64
	Factors []*linalg.Matrix // per-class Cholesky factors
	Priors  []float64
}

// State snapshots a trained QDA.
func (q *QDA) State() (*QDAState, error) {
	if len(q.chols) == 0 {
		return nil, errors.New("ml: QDA not trained")
	}
	st := &QDAState{Means: q.means, Priors: q.priors}
	for _, ch := range q.chols {
		st.Factors = append(st.Factors, ch.L)
	}
	return st, nil
}

// QDAFromState reconstructs a trained QDA.
func QDAFromState(st *QDAState) (*QDA, error) {
	if st == nil || len(st.Means) < 2 || len(st.Factors) != len(st.Means) {
		return nil, errors.New("ml: invalid QDA state")
	}
	if err := rectRows("QDA means", st.Means, len(st.Means[0])); err != nil {
		return nil, err
	}
	if err := checkPriors(st.Priors, len(st.Means)); err != nil {
		return nil, err
	}
	q := &QDA{
		means:  st.Means,
		priors: st.Priors,
		nc:     len(st.Means),
		p:      len(st.Means[0]),
	}
	for c, f := range st.Factors {
		ch, err := linalg.CholeskyFromFactor(f)
		if err != nil {
			return nil, fmt.Errorf("ml: restoring QDA class %d: %w", c, err)
		}
		if f.Rows != q.p {
			return nil, fmt.Errorf("ml: restoring QDA class %d: factor is %dx%d for dimension %d", c, f.Rows, f.Cols, q.p)
		}
		q.chols = append(q.chols, ch)
		q.logDets = append(q.logDets, ch.LogDet())
	}
	return q, nil
}

// NBState is the serializable form of a trained Gaussian naïve Bayes.
type NBState struct {
	Means  [][]float64
	Vars   [][]float64
	Priors []float64
}

// State snapshots a trained GaussianNB.
func (g *GaussianNB) State() (*NBState, error) {
	if g.nc == 0 {
		return nil, errors.New("ml: GaussianNB not trained")
	}
	return &NBState{Means: g.means, Vars: g.vars, Priors: g.priors}, nil
}

// NBFromState reconstructs a trained GaussianNB.
func NBFromState(st *NBState) (*GaussianNB, error) {
	if st == nil || len(st.Means) < 2 || len(st.Vars) != len(st.Means) {
		return nil, errors.New("ml: invalid NB state")
	}
	p := len(st.Means[0])
	if err := rectRows("NB means", st.Means, p); err != nil {
		return nil, err
	}
	if err := rectRows("NB variances", st.Vars, p); err != nil {
		return nil, err
	}
	if err := checkPriors(st.Priors, len(st.Means)); err != nil {
		return nil, err
	}
	return &GaussianNB{
		means:  st.Means,
		vars:   st.Vars,
		priors: st.Priors,
		nc:     len(st.Means),
		p:      len(st.Means[0]),
	}, nil
}

// KNNState is the serializable form of a trained kNN (the training set).
type KNNState struct {
	K      int
	X      [][]float64
	Labels []int
}

// State snapshots a trained KNN.
func (k *KNN) State() (*KNNState, error) {
	if k.X == nil {
		return nil, errors.New("ml: kNN not trained")
	}
	return &KNNState{K: k.K, X: k.X, Labels: k.y}, nil
}

// KNNFromState reconstructs a trained KNN.
func KNNFromState(st *KNNState) (*KNN, error) {
	if st == nil || st.K < 1 || len(st.X) == 0 {
		return nil, errors.New("ml: invalid kNN state")
	}
	k := NewKNN(st.K)
	if err := k.Fit(st.X, st.Labels); err != nil {
		return nil, err
	}
	return k, nil
}

// SVMKernelState identifies a kernel in serialized form.
type SVMKernelState struct {
	Kind  string // "rbf" or "linear"
	Gamma float64
}

// BinarySVMState is one pair machine of a one-vs-one SVM.
type BinarySVMState struct {
	Alphas []float64
	SVs    [][]float64
	SVYs   []float64
	Bias   float64
}

// SVMState is the serializable form of a trained one-vs-one SVM.
type SVMState struct {
	C        float64
	Kernel   SVMKernelState
	Machines []BinarySVMState
	Pairs    [][2]int
	Classes  int
	Dim      int
}

// State snapshots a trained SVM.
func (s *SVM) State() (*SVMState, error) {
	if len(s.machines) == 0 {
		return nil, errors.New("ml: SVM not trained")
	}
	st := &SVMState{C: s.C, Pairs: s.pairs, Classes: s.nc, Dim: s.p}
	switch k := s.Kernel.(type) {
	case RBFKernel:
		st.Kernel = SVMKernelState{Kind: "rbf", Gamma: k.Gamma}
	case LinearKernel:
		st.Kernel = SVMKernelState{Kind: "linear"}
	default:
		return nil, fmt.Errorf("ml: kernel %T is not serializable", s.Kernel)
	}
	for _, m := range s.machines {
		st.Machines = append(st.Machines, BinarySVMState{
			Alphas: m.alphas, SVs: m.sv, SVYs: m.svY, Bias: m.b,
		})
	}
	return st, nil
}

// SVMFromState reconstructs a trained SVM.
func SVMFromState(st *SVMState) (*SVM, error) {
	if st == nil || len(st.Machines) == 0 || len(st.Machines) != len(st.Pairs) {
		return nil, errors.New("ml: invalid SVM state")
	}
	var kernel Kernel
	switch st.Kernel.Kind {
	case "rbf":
		kernel = RBFKernel{Gamma: st.Kernel.Gamma}
	case "linear":
		kernel = LinearKernel{}
	default:
		return nil, fmt.Errorf("ml: unknown kernel kind %q", st.Kernel.Kind)
	}
	if st.Dim < 1 || st.Classes < 2 {
		return nil, fmt.Errorf("ml: invalid SVM state: %d classes, dimension %d", st.Classes, st.Dim)
	}
	for _, pr := range st.Pairs {
		if pr[0] < 0 || pr[0] >= st.Classes || pr[1] < 0 || pr[1] >= st.Classes {
			return nil, fmt.Errorf("ml: SVM pair (%d,%d) outside %d classes", pr[0], pr[1], st.Classes)
		}
	}
	// The decision function dots every support vector against the input, so
	// a ragged or misaligned machine would panic inside the kernel.
	for i, m := range st.Machines {
		if len(m.Alphas) != len(m.SVs) || len(m.SVYs) != len(m.SVs) {
			return nil, fmt.Errorf("ml: SVM machine %d: %d alphas / %d SVs / %d labels", i, len(m.Alphas), len(m.SVs), len(m.SVYs))
		}
		if err := rectRows(fmt.Sprintf("SVM machine %d support vectors", i), m.SVs, st.Dim); err != nil {
			return nil, err
		}
	}
	s := NewSVM(st.C, kernel)
	s.pairs = st.Pairs
	s.nc = st.Classes
	s.p = st.Dim
	for _, m := range st.Machines {
		s.machines = append(s.machines, &binarySVM{
			kernel: kernel, c: st.C, alphas: m.Alphas, sv: m.SVs, svY: m.SVYs, b: m.Bias,
		})
	}
	return s, nil
}

// ClassifierState is a tagged union over the classifier snapshots; exactly
// one field is non-nil.
type ClassifierState struct {
	LDA *LDAState
	QDA *QDAState
	NB  *NBState
	KNN *KNNState
	SVM *SVMState
}

// SnapshotClassifier captures any of the package's classifiers.
func SnapshotClassifier(clf Classifier) (*ClassifierState, error) {
	switch c := clf.(type) {
	case *LDA:
		st, err := c.State()
		return &ClassifierState{LDA: st}, err
	case *QDA:
		st, err := c.State()
		return &ClassifierState{QDA: st}, err
	case *GaussianNB:
		st, err := c.State()
		return &ClassifierState{NB: st}, err
	case *KNN:
		st, err := c.State()
		return &ClassifierState{KNN: st}, err
	case *SVM:
		st, err := c.State()
		return &ClassifierState{SVM: st}, err
	default:
		return nil, fmt.Errorf("ml: classifier %T is not serializable", clf)
	}
}

// RestoreClassifier reverses SnapshotClassifier.
func RestoreClassifier(st *ClassifierState) (Classifier, error) {
	switch {
	case st == nil:
		return nil, errors.New("ml: nil classifier state")
	case st.LDA != nil:
		return LDAFromState(st.LDA)
	case st.QDA != nil:
		return QDAFromState(st.QDA)
	case st.NB != nil:
		return NBFromState(st.NB)
	case st.KNN != nil:
		return KNNFromState(st.KNN)
	case st.SVM != nil:
		return SVMFromState(st.SVM)
	default:
		return nil, errors.New("ml: empty classifier state")
	}
}

func logPrior(priors []float64, c int) float64 {
	// Guard against zero priors in hand-built states.
	p := priors[c]
	if p <= 0 {
		p = 1e-12
	}
	return math.Log(p)
}
