package ml

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func roundTripState(t *testing.T, clf Classifier, X [][]float64, y []int, probe []float64) {
	t.Helper()
	if err := clf.Fit(X, y); err != nil {
		t.Fatalf("%s: %v", clf.Name(), err)
	}
	st, err := SnapshotClassifier(clf)
	if err != nil {
		t.Fatalf("%s: snapshot: %v", clf.Name(), err)
	}
	// Through gob, as core persistence does.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatalf("%s: gob encode: %v", clf.Name(), err)
	}
	var decoded ClassifierState
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatalf("%s: gob decode: %v", clf.Name(), err)
	}
	restored, err := RestoreClassifier(&decoded)
	if err != nil {
		t.Fatalf("%s: restore: %v", clf.Name(), err)
	}
	// Identical predictions over the training set and a probe point.
	for i, x := range X {
		a, err1 := clf.Predict(x)
		b, err2 := restored.Predict(x)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("%s: prediction %d differs after restore: %d vs %d (%v/%v)",
				clf.Name(), i, a, b, err1, err2)
		}
	}
	pa, _ := clf.Predict(probe)
	pb, _ := restored.Predict(probe)
	if pa != pb {
		t.Fatalf("%s: probe prediction differs: %d vs %d", clf.Name(), pa, pb)
	}
}

func TestClassifierStateRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := gaussianBlobs(rng, 3, 40, 4, 5, 0.5)
	probe := []float64{0.5, -1, 2, 0}
	roundTripState(t, NewLDA(), X, y, probe)
	roundTripState(t, NewQDA(), X, y, probe)
	roundTripState(t, NewGaussianNB(), X, y, probe)
	roundTripState(t, NewKNN(3), X, y, probe)
	roundTripState(t, NewSVM(10, RBFKernel{Gamma: 0.5}), X, y, probe)
	roundTripState(t, NewSVM(1, LinearKernel{}), X, y, probe)
}

func TestStateOfUntrainedFails(t *testing.T) {
	if _, err := SnapshotClassifier(NewLDA()); err == nil {
		t.Fatal("snapshot of untrained LDA should fail")
	}
	if _, err := SnapshotClassifier(NewQDA()); err == nil {
		t.Fatal("snapshot of untrained QDA should fail")
	}
	if _, err := RestoreClassifier(nil); err == nil {
		t.Fatal("restore of nil should fail")
	}
	if _, err := RestoreClassifier(&ClassifierState{}); err == nil {
		t.Fatal("restore of empty state should fail")
	}
}
