package ml

import (
	"fmt"
	"testing"

	"repro/internal/testkit"
)

// KNN.Predict (sort-based selection) is checked against
// testkit.BruteKNNPredict (repeated minimum extraction). Continuous random
// features make exact distance ties measure-zero, and both sides break vote
// ties toward the lowest class label, so the predictions must agree exactly.
func TestKNNMatchesBruteForce(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 15}, func(g *testkit.G) error {
		nClasses := g.IntBetween(2, 5)
		dim := g.Size(2, 8)
		n := g.Size(nClasses*2, 60)
		X := g.Matrix(n, dim)
		y := g.Labels(n, nClasses)
		k := g.IntBetween(1, 7)
		if k > n {
			k = n
		}
		clf := NewKNN(k)
		if err := clf.Fit(X, y); err != nil {
			return err
		}
		for q := 0; q < 10; q++ {
			x := g.Matrix(1, dim)[0]
			got, err := clf.Predict(x)
			if err != nil {
				return err
			}
			want := testkit.BruteKNNPredict(X, y, x, k, nClasses)
			if got != want {
				return fmt.Errorf("kNN(k=%d, n=%d, d=%d) predicted %d, brute force %d for query %v",
					k, n, dim, got, want, x)
			}
		}
		return nil
	})
}

// fixedClassifier ignores its input and always answers the same label —
// enough to drive the voter through every tally path deterministically.
type fixedClassifier struct{ out int }

func (f fixedClassifier) Name() string                   { return "fixed" }
func (f fixedClassifier) Fit([][]float64, []int) error   { return nil }
func (f fixedClassifier) Predict([]float64) (int, error) { return f.out, nil }

// errClassifier fails every prediction, for the error-propagation path.
type errClassifier struct{}

func (errClassifier) Name() string                 { return "err" }
func (errClassifier) Fit([][]float64, []int) error { return nil }
func (errClassifier) Predict([]float64) (int, error) {
	return 0, fmt.Errorf("ml: broken pair classifier")
}

// votePlan wires a voter over nClasses where pair (a,b) answers according to
// winners[slot]: 0 votes for a, 1 votes for b.
func votePlan(t *testing.T, nClasses int, winner func(a, b int) int) *PairwiseVoter {
	t.Helper()
	v, err := NewPairwiseVoter(nClasses)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.NumPairs(); i++ {
		a, b := v.Pair(i)
		if err := v.SetPairClassifier(i, fixedClassifier{out: winner(a, b)}); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func emptyPairFeatures(v *PairwiseVoter) [][]float64 {
	fs := make([][]float64, v.NumPairs())
	for i := range fs {
		fs[i] = []float64{0}
	}
	return fs
}

// TestVoterTieBreaksTowardLowestLabel constructs an exact vote tie and pins
// the documented resolution: the lowest label wins.
func TestVoterTieBreaksTowardLowestLabel(t *testing.T) {
	// Vote tallies: pairs (0,1)→0, (0,2)→2, (0,3)→0, (1,2)→1, (1,3)→1,
	// (2,3)→2 give classes 0, 1, 2 two votes each and class 3 none — a
	// three-way tie that must resolve to the lowest label.
	v := votePlan(t, 4, func(a, b int) int {
		type pair struct{ a, b int }
		winners := map[pair]int{
			{0, 1}: 0, {0, 2}: 1, {0, 3}: 0,
			{1, 2}: 0, {1, 3}: 0, {2, 3}: 0,
		}
		return winners[pair{a, b}]
	})
	got, err := v.Vote(emptyPairFeatures(v))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("three-way tie resolved to %d, want lowest label 0", got)
	}
}

// TestVoterUnanimousWinner sanity-checks the no-tie path for every possible
// winner, including the highest label.
func TestVoterUnanimousWinner(t *testing.T) {
	for want := 0; want < 4; want++ {
		v := votePlan(t, 4, func(a, b int) int {
			if a == want {
				return 0
			}
			if b == want {
				return 1
			}
			return 0
		})
		got, err := v.Vote(emptyPairFeatures(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("unanimous winner %d, Vote returned %d", want, got)
		}
	}
}

// TestVoterAbsentClassStillEnumerated pins that every pair slot exists even
// for classes that never win (an "absent" class in the training sense): the
// canonical enumeration is (0,1),(0,2),…,(K−2,K−1) and a class with zero
// votes is still a valid, losing participant.
func TestVoterAbsentClassStillEnumerated(t *testing.T) {
	const k = 5
	v, err := NewPairwiseVoter(k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.NumPairs(), k*(k-1)/2; got != want {
		t.Fatalf("NumPairs = %d, want %d", got, want)
	}
	seen := map[[2]int]bool{}
	prev := [2]int{-1, -1}
	for i := 0; i < v.NumPairs(); i++ {
		a, b := v.Pair(i)
		if a >= b || a < 0 || b >= k {
			t.Fatalf("pair %d = (%d,%d) out of canonical order", i, a, b)
		}
		cur := [2]int{a, b}
		if seen[cur] {
			t.Fatalf("pair (%d,%d) enumerated twice", a, b)
		}
		if cur[0] < prev[0] || (cur[0] == prev[0] && cur[1] <= prev[1]) {
			t.Fatalf("pair %d = (%d,%d) not in lexicographic order after (%d,%d)", i, a, b, prev[0], prev[1])
		}
		seen[cur] = true
		prev = cur
	}
	// Class 4 loses every pair; class 2 wins every pair it appears in.
	v2 := votePlan(t, k, func(a, b int) int {
		if a == 2 {
			return 0
		}
		if b == 2 {
			return 1
		}
		return 0
	})
	got, err := v2.Vote(emptyPairFeatures(v2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("winner with absent class = %d, want 2", got)
	}
}

// TestVoterErrorPaths covers slot-range validation and pair-classifier
// error propagation.
func TestVoterErrorPaths(t *testing.T) {
	v, err := NewPairwiseVoter(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.SetPairClassifier(-1, fixedClassifier{}); err == nil {
		t.Fatal("SetPairClassifier(-1) accepted")
	}
	if err := v.SetPairClassifier(v.NumPairs(), fixedClassifier{}); err == nil {
		t.Fatalf("SetPairClassifier(%d) accepted", v.NumPairs())
	}
	for i := 0; i < v.NumPairs(); i++ {
		clf := Classifier(fixedClassifier{})
		if i == 1 {
			clf = errClassifier{}
		}
		if err := v.SetPairClassifier(i, clf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Vote(emptyPairFeatures(v)); err == nil {
		t.Fatal("Vote swallowed a pair-classifier error")
	}
}
