package ml

import (
	"errors"
	"fmt"
)

// PairwiseVoter implements the paper's majority voting method (Section 5.4):
// one binary classifier per class pair, each operating on its own
// pair-specific feature vector x_{i,j} (selected from that pair's DNVP), with
// the final class chosen by vote count. Because feature extraction differs
// per pair, the voter holds externally trained binary classifiers rather
// than fitting itself.
type PairwiseVoter struct {
	nClasses    int
	pairs       [][2]int
	classifiers []Classifier
}

// NewPairwiseVoter prepares a voter over nClasses classes with the canonical
// pair enumeration (0,1), (0,2) … (K−2,K−1) — K(K−1)/2 slots.
func NewPairwiseVoter(nClasses int) (*PairwiseVoter, error) {
	if nClasses < 2 {
		return nil, fmt.Errorf("ml: voter needs >= 2 classes, got %d", nClasses)
	}
	v := &PairwiseVoter{nClasses: nClasses}
	for a := 0; a < nClasses; a++ {
		for b := a + 1; b < nClasses; b++ {
			v.pairs = append(v.pairs, [2]int{a, b})
		}
	}
	v.classifiers = make([]Classifier, len(v.pairs))
	return v, nil
}

// NumPairs returns K(K−1)/2.
func (v *PairwiseVoter) NumPairs() int { return len(v.pairs) }

// Pair returns the class labels of pair slot i.
func (v *PairwiseVoter) Pair(i int) (a, b int) { return v.pairs[i][0], v.pairs[i][1] }

// SetPairClassifier installs the trained binary classifier for slot i. The
// classifier must emit label 0 for the pair's first class and 1 for its
// second.
func (v *PairwiseVoter) SetPairClassifier(i int, clf Classifier) error {
	if i < 0 || i >= len(v.pairs) {
		return fmt.Errorf("ml: pair slot %d out of range [0,%d)", i, len(v.pairs))
	}
	v.classifiers[i] = clf
	return nil
}

// voteTally runs every pair classifier and returns the per-class vote counts.
func (v *PairwiseVoter) voteTally(pairFeatures [][]float64) ([]float64, error) {
	if len(pairFeatures) != len(v.pairs) {
		return nil, fmt.Errorf("ml: voter got %d pair vectors, want %d", len(pairFeatures), len(v.pairs))
	}
	votes := make([]float64, v.nClasses)
	for i, clf := range v.classifiers {
		if clf == nil {
			return nil, errors.New("ml: voter has untrained pair slots")
		}
		p, err := clf.Predict(pairFeatures[i])
		if err != nil {
			return nil, err
		}
		switch p {
		case 0:
			votes[v.pairs[i][0]]++
		case 1:
			votes[v.pairs[i][1]]++
		default:
			return nil, fmt.Errorf("ml: pair classifier %d returned non-binary label %d", i, p)
		}
	}
	return votes, nil
}

// Vote classifies from per-pair feature vectors: pairFeatures[i] is the
// feature vector for pair slot i. Ties are broken toward the lowest label.
func (v *PairwiseVoter) Vote(pairFeatures [][]float64) (int, error) {
	votes, err := v.voteTally(pairFeatures)
	if err != nil {
		return 0, err
	}
	return argmax(votes), nil
}

// VoteScored is Vote annotated with the vote-tally confidence: the winning
// class's share of the K(K−1)/2 pairwise votes.
func (v *PairwiseVoter) VoteScored(pairFeatures [][]float64) (ScoredPrediction, error) {
	votes, err := v.voteTally(pairFeatures)
	if err != nil {
		return ScoredPrediction{}, err
	}
	return scoredFromWeights(votes), nil
}
