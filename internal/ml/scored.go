package ml

import (
	"math"
)

// ScoredPrediction is a classification decision annotated with its own
// quality: how confident the classifier is in the winning label and how far
// the runner-up trailed. It is the per-decision record the inference-quality
// observability layer (decision logs, calibration tracking) is built on.
type ScoredPrediction struct {
	// Label is the winning class — always identical to what Predict returns
	// on the same input.
	Label int
	// RunnerUp is the second-best class (the strongest competitor).
	RunnerUp int
	// Confidence is the winning class's normalized score in [0, 1]: a
	// posterior probability for the Gaussian classifiers, a vote fraction
	// for the voting classifiers.
	Confidence float64
	// Margin is Confidence minus the runner-up's normalized score — 0 for a
	// coin-flip decision, approaching 1 for an unambiguous one.
	Margin float64
	// Posteriors holds every class's normalized score; entries are finite,
	// lie in [0, 1] and sum to 1 (up to rounding).
	Posteriors []float64
}

// ScoredClassifier is implemented by classifiers that can report decision
// confidence alongside the label. All classifiers in this package implement
// it; the interface exists so callers can feature-test restored or externally
// supplied Classifier values.
type ScoredClassifier interface {
	Classifier
	// PredictScored returns the same label Predict would, annotated with
	// normalized per-class confidence.
	PredictScored(x []float64) (ScoredPrediction, error)
}

// Scorer is implemented by classifiers that expose their raw per-class
// decision scores (log posteriors up to a shared constant for the Gaussian
// families). Predict is the argmax of these scores, so callers can restrict
// a decision to a subset of classes by masking entries to -Inf and
// re-normalizing with ScoredFromLogScores.
type Scorer interface {
	Scores(x []float64) ([]float64, error)
}

// ScoredFromLogScores builds a ScoredPrediction from per-class log-space
// scores with the same max-shifted softmax the built-in scored predictors
// use. Exported for callers that post-process scores — e.g. masking classes
// a hierarchical decoder has no downstream templates for to math.Inf(-1),
// which gives them zero posterior and makes them unelectable.
func ScoredFromLogScores(scores []float64) ScoredPrediction {
	return scoredFromLogScores(scores)
}

// scoredFromLogScores normalizes per-class scores that live in log space
// (discriminant values, log posteriors) with a max-shifted softmax. The
// winner is the score argmax — the same index Predict's argmax picks — so
// label agreement is structural, not numerical.
func scoredFromLogScores(scores []float64) ScoredPrediction {
	post := make([]float64, len(scores))
	best := argmax(scores)
	var sum float64
	for i, s := range scores {
		// exp(s - max) is in (0, 1]; -Inf scores (impossible classes) give 0.
		post[i] = math.Exp(s - scores[best])
		sum += post[i]
	}
	for i := range post {
		post[i] /= sum
	}
	return scoredFromPosteriors(post, best)
}

// scoredFromWeights normalizes non-negative per-class weights (vote counts,
// optionally with a fractional tie-break component) by their sum. The winner
// is the weight argmax.
func scoredFromWeights(weights []float64) ScoredPrediction {
	post := make([]float64, len(weights))
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		// Degenerate (all-zero weights): uniform posteriors.
		for i := range post {
			post[i] = 1 / float64(len(post))
		}
		return scoredFromPosteriors(post, 0)
	}
	for i, w := range weights {
		post[i] = w / sum
	}
	return scoredFromPosteriors(post, argmax(weights))
}

// scoredFromPosteriors assembles the prediction from already-normalized
// posteriors and the decided winner. The runner-up is the strongest class
// other than the winner (ties resolve to the lowest label, matching every
// Predict tie-break in this package).
func scoredFromPosteriors(post []float64, best int) ScoredPrediction {
	ru := -1
	for i, p := range post {
		if i == best {
			continue
		}
		if ru < 0 || p > post[ru] {
			ru = i
		}
	}
	sp := ScoredPrediction{
		Label:      best,
		RunnerUp:   ru,
		Confidence: post[best],
		Posteriors: post,
	}
	if ru >= 0 {
		sp.Margin = post[best] - post[ru]
	}
	return sp
}

// squashMargin maps an unbounded margin into (0, 1) monotonically, so a
// fractional margin component can break vote ties without ever outvoting a
// whole vote.
func squashMargin(m float64) float64 {
	return 0.5 * (1 + m/(1+math.Abs(m)))
}
