// Package ml implements the classifiers the paper evaluates — linear and
// quadratic discriminant analysis, Gaussian naïve Bayes, an SMO-trained SVM
// with RBF kernel (grid-searched with k-fold cross-validation), and kNN as
// the prior-work baseline — plus one-vs-one majority voting and evaluation
// metrics. Everything is stdlib-only.
package ml

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// Classifier is the common supervised-classification interface. Labels are
// dense integers 0..K-1.
type Classifier interface {
	// Fit trains on rows X with labels y.
	Fit(X [][]float64, y []int) error
	// Predict returns the label for one feature vector.
	Predict(x []float64) (int, error)
	// Name identifies the algorithm for reports.
	Name() string
}

// validateTraining checks the common preconditions and returns the class
// count (max label + 1).
func validateTraining(X [][]float64, y []int) (nClasses, dim int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, 0, fmt.Errorf("ml: need equal non-zero samples/labels, got %d/%d", len(X), len(y))
	}
	dim = len(X[0])
	if dim == 0 {
		return 0, 0, errors.New("ml: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != dim {
			return 0, 0, fmt.Errorf("ml: row %d has dim %d, want %d", i, len(row), dim)
		}
		if !stats.AllFinite(row) {
			return 0, 0, fmt.Errorf("ml: training row %d: %w: non-finite feature", i, stats.ErrDegenerate)
		}
		if y[i] < 0 {
			return 0, 0, fmt.Errorf("ml: negative label %d", y[i])
		}
		if y[i]+1 > nClasses {
			nClasses = y[i] + 1
		}
	}
	if nClasses < 2 {
		return 0, 0, errors.New("ml: need at least 2 classes")
	}
	return nClasses, dim, nil
}

// splitByClass groups row indices by label.
func splitByClass(y []int, nClasses int) [][]int {
	out := make([][]int, nClasses)
	for i, l := range y {
		out[l] = append(out[l], i)
	}
	return out
}

// EvaluateAccuracy fits nothing; it runs clf over X and compares to y.
func EvaluateAccuracy(clf Classifier, X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) || len(X) == 0 {
		return 0, errors.New("ml: evaluate needs equal non-zero samples/labels")
	}
	hit := 0
	for i, x := range X {
		p, err := clf.Predict(x)
		if err != nil {
			return 0, err
		}
		if p == y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(X)), nil
}

// ConfusionMatrix counts cm[true][predicted].
func ConfusionMatrix(clf Classifier, X [][]float64, y []int, nClasses int) ([][]int, error) {
	if nClasses < 2 {
		return nil, errors.New("ml: confusion matrix needs >= 2 classes")
	}
	cm := make([][]int, nClasses)
	for i := range cm {
		cm[i] = make([]int, nClasses)
	}
	for i, x := range X {
		p, err := clf.Predict(x)
		if err != nil {
			return nil, err
		}
		if y[i] >= nClasses || p >= nClasses || p < 0 {
			return nil, fmt.Errorf("ml: label/prediction out of range (%d/%d)", y[i], p)
		}
		cm[y[i]][p]++
	}
	return cm, nil
}

// KFoldCV returns the mean validation accuracy of the classifier produced by
// make() across k stratification-free folds (the paper uses 3-fold CV for
// the SVM grid search). The single Perm draw happens up front; the k folds
// then train and evaluate concurrently on the parallel.Workers() pool, and
// the per-fold accuracies are summed in fold order, so the score is
// bit-identical to a serial run. make() must therefore be safe to call from
// multiple goroutines — constructing a fresh classifier per call (the normal
// usage) satisfies this.
func KFoldCV(make func() Classifier, X [][]float64, y []int, k int, rng *rand.Rand) (float64, error) {
	return KFoldCVCtx(context.Background(), make, X, y, k, rng)
}

// KFoldCVCtx is KFoldCV with cooperative cancellation: once ctx is cancelled
// no new fold starts and the call returns ctx.Err(); a fold error at a lower
// index still takes precedence (parallel.ForErrCtx semantics).
func KFoldCVCtx(ctx context.Context, make func() Classifier, X [][]float64, y []int, k int, rng *rand.Rand) (float64, error) {
	if k < 2 || len(X) < k {
		return 0, fmt.Errorf("ml: cannot run %d-fold CV on %d samples", k, len(X))
	}
	return kFoldCVPerm(ctx, make, X, y, k, rng.Perm(len(X)))
}

// kFoldCVPerm is KFoldCV with the shuffle already drawn, so grid searches can
// pre-draw every cell's permutation serially and evaluate cells in parallel
// without perturbing the rng stream.
func kFoldCVPerm(ctx context.Context, mk func() Classifier, X [][]float64, y []int, k int, idx []int) (float64, error) {
	accs := make([]float64, k)
	err := parallel.ForErrCtx(ctx, k, func(fold int) error {
		var trX, vaX [][]float64
		var trY, vaY []int
		for pos, j := range idx {
			if pos%k == fold {
				vaX = append(vaX, X[j])
				vaY = append(vaY, y[j])
			} else {
				trX = append(trX, X[j])
				trY = append(trY, y[j])
			}
		}
		clf := mk()
		if err := clf.Fit(trX, trY); err != nil {
			return err
		}
		acc, err := EvaluateAccuracy(clf, vaX, vaY)
		if err != nil {
			return err
		}
		accs[fold] = acc
		met().cvFolds.Inc()
		if met().foldScore != nil {
			met().foldScore.Observe(acc)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, a := range accs {
		total += a
	}
	return total / float64(k), nil
}
