package ml

import (
	"math"
	"math/rand"
	"testing"
)

// allScoredClassifiers returns every classifier family as a ScoredClassifier.
// It doubles as a compile-time check that all five families implement the
// interface.
func allScoredClassifiers() []ScoredClassifier {
	return []ScoredClassifier{
		NewLDA(),
		NewQDA(),
		NewGaussianNB(),
		NewKNN(3),
		NewSVM(10, RBFKernel{Gamma: 0.5}),
		NewSVM(10, LinearKernel{}),
	}
}

// checkScored asserts the structural invariants every ScoredPrediction must
// satisfy: finite normalized posteriors in [0, 1] summing to 1, the winner's
// confidence matching its posterior, the runner-up strictly distinct, and a
// non-negative margin equal to the winner/runner-up posterior gap.
func checkScored(t *testing.T, name string, sp ScoredPrediction, nClasses int) {
	t.Helper()
	if sp.Label < 0 || sp.Label >= nClasses {
		t.Fatalf("%s: label %d out of range [0, %d)", name, sp.Label, nClasses)
	}
	if len(sp.Posteriors) != nClasses {
		t.Fatalf("%s: %d posteriors, want %d", name, len(sp.Posteriors), nClasses)
	}
	var sum float64
	for i, p := range sp.Posteriors {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("%s: posterior[%d] = %g not in [0, 1]", name, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("%s: posteriors sum to %g, want 1", name, sum)
	}
	if sp.Confidence != sp.Posteriors[sp.Label] {
		t.Fatalf("%s: confidence %g != posterior[label] %g", name, sp.Confidence, sp.Posteriors[sp.Label])
	}
	if nClasses >= 2 {
		if sp.RunnerUp < 0 || sp.RunnerUp >= nClasses || sp.RunnerUp == sp.Label {
			t.Fatalf("%s: runner-up %d invalid for label %d", name, sp.RunnerUp, sp.Label)
		}
		wantMargin := sp.Posteriors[sp.Label] - sp.Posteriors[sp.RunnerUp]
		if math.Abs(sp.Margin-wantMargin) > 1e-12 || sp.Margin < -1e-12 {
			t.Fatalf("%s: margin %g, want %g (>= 0)", name, sp.Margin, wantMargin)
		}
		// The runner-up is the strongest non-winner.
		for i, p := range sp.Posteriors {
			if i != sp.Label && p > sp.Posteriors[sp.RunnerUp]+1e-12 {
				t.Fatalf("%s: class %d (%g) beats declared runner-up %d (%g)",
					name, i, p, sp.RunnerUp, sp.Posteriors[sp.RunnerUp])
			}
		}
	}
}

// TestPredictScoredAgreesWithPredict is the core agreement property: on the
// same input the scored path must return the exact label Predict does, for
// every classifier family, including ambiguous probes far from the training
// clusters where tie-breaks matter.
func TestPredictScoredAgreesWithPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const k, dim = 3, 4
	X, y := gaussianBlobs(rng, k, 40, dim, 5, 0.5)
	for _, clf := range allScoredClassifiers() {
		if err := clf.Fit(X, y); err != nil {
			t.Fatalf("%s: fit: %v", clf.Name(), err)
		}
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, dim)
			for j := range x {
				// Mix in-distribution probes with ambiguous far-field ones.
				x[j] = rng.NormFloat64() * 6
			}
			want, err := clf.Predict(x)
			if err != nil {
				t.Fatalf("%s: predict: %v", clf.Name(), err)
			}
			sp, err := clf.PredictScored(x)
			if err != nil {
				t.Fatalf("%s: predict scored: %v", clf.Name(), err)
			}
			if sp.Label != want {
				t.Fatalf("%s: scored label %d != Predict label %d at %v", clf.Name(), sp.Label, want, x)
			}
			checkScored(t, clf.Name(), sp, k)
		}
	}
}

// TestPredictScoredConfidentNearCluster checks that confidence behaves like
// confidence: probes at a training cluster's center score higher than the
// uniform floor and win by a clear margin.
func TestPredictScoredConfidentNearCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	X, y := gaussianBlobs(rng, 3, 60, 4, 6, 0.4)
	// Class centers: average the training points per class.
	centers := make([][]float64, 3)
	counts := make([]int, 3)
	for i, x := range X {
		c := y[i]
		if centers[c] == nil {
			centers[c] = make([]float64, len(x))
		}
		for j, v := range x {
			centers[c][j] += v
		}
		counts[c]++
	}
	for c := range centers {
		for j := range centers[c] {
			centers[c][j] /= float64(counts[c])
		}
	}
	for _, clf := range allScoredClassifiers() {
		if err := clf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for c, center := range centers {
			sp, err := clf.PredictScored(center)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Label != c {
				t.Fatalf("%s: center of class %d classified as %d", clf.Name(), c, sp.Label)
			}
			if sp.Confidence <= 1.0/3+0.05 {
				t.Fatalf("%s: confidence %g at class %d center barely beats uniform", clf.Name(), sp.Confidence, c)
			}
			if sp.Margin <= 0 {
				t.Fatalf("%s: margin %g at class %d center", clf.Name(), sp.Margin, c)
			}
		}
	}
}

// TestPredictScoredErrors mirrors Predict's error contract: unfitted models
// and wrong-dimension probes fail instead of returning a score.
func TestPredictScoredErrors(t *testing.T) {
	for _, clf := range allScoredClassifiers() {
		if _, err := clf.PredictScored([]float64{1}); err == nil {
			t.Fatalf("%s: PredictScored before fit should fail", clf.Name())
		}
	}
	rng := rand.New(rand.NewSource(33))
	X, y := gaussianBlobs(rng, 2, 20, 3, 5, 0.4)
	for _, clf := range allScoredClassifiers() {
		if err := clf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if _, err := clf.PredictScored([]float64{1}); err == nil {
			t.Fatalf("%s: wrong-dimension PredictScored should fail", clf.Name())
		}
	}
}

// TestVoteScoredAgreesWithVote checks the pairwise voter's scored path on
// the same hand-built pair setup TestPairwiseVoter uses, plus the invariants.
func TestVoteScoredAgreesWithVote(t *testing.T) {
	v, err := NewPairwiseVoter(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.NumPairs(); i++ {
		clf := NewLDA()
		X := [][]float64{{-1}, {-1.2}, {-0.8}, {1}, {1.2}, {0.8}}
		y := []int{0, 0, 0, 1, 1, 1}
		if err := clf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := v.SetPairClassifier(i, clf); err != nil {
			t.Fatal(err)
		}
	}
	probes := [][][]float64{
		{{+1}, {-1}, {-1}}, // class 1 wins two pairs
		{{-1}, {-1}, {-1}}, // class 0 wins its pairs
		{{+1}, {+1}, {+1}}, // classes 1 and 2 split; tie-break
	}
	for _, pf := range probes {
		want, err := v.Vote(pf)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := v.VoteScored(pf)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Label != want {
			t.Fatalf("VoteScored label %d != Vote label %d", sp.Label, want)
		}
		checkScored(t, "voter", sp, 3)
		// Vote-fraction semantics: each pair contributes one vote.
		if math.Abs(sp.Confidence*float64(v.NumPairs())-math.Round(sp.Confidence*float64(v.NumPairs()))) > 1e-9 {
			t.Fatalf("voter confidence %g is not a vote fraction over %d pairs", sp.Confidence, v.NumPairs())
		}
	}
	if _, err := v.VoteScored([][]float64{{1}}); err == nil {
		t.Fatal("wrong pair count should fail")
	}
}

// TestScoredHelpers pins the normalization helpers' edge cases.
func TestScoredHelpers(t *testing.T) {
	// Log scores with -Inf (impossible class) normalize cleanly.
	sp := scoredFromLogScores([]float64{0, math.Inf(-1), -1})
	if sp.Label != 0 || sp.Posteriors[1] != 0 {
		t.Fatalf("log-score normalization: %+v", sp)
	}
	checkScored(t, "logscores", sp, 3)
	// All-zero weights degenerate to uniform with winner 0.
	sp = scoredFromWeights([]float64{0, 0, 0, 0})
	if sp.Label != 0 || sp.Confidence != 0.25 || sp.Margin != 0 {
		t.Fatalf("degenerate weights: %+v", sp)
	}
	checkScored(t, "zeroweights", sp, 4)
	// squashMargin is bounded and monotone.
	if squashMargin(0) != 0.5 {
		t.Fatalf("squashMargin(0) = %g", squashMargin(0))
	}
	prev := -1.0
	for _, m := range []float64{-1e9, -3, -0.5, 0, 0.5, 3, 1e9} {
		s := squashMargin(m)
		if s <= 0 || s >= 1 || s <= prev {
			t.Fatalf("squashMargin(%g) = %g not in (0,1) or not monotone", m, s)
		}
		prev = s
	}
}
