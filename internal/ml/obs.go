package ml

import (
	"time"

	"repro/internal/obs"
)

// clfMetrics bundles the per-classifier instrument handles. All handles are
// nil (no-op) until a registry is installed with obs.SetDefault, so the
// disabled path costs one nil check per Fit and one per Predict.
type clfMetrics struct {
	fits     *obs.Counter   // ml.<kind>.fits
	predicts *obs.Counter   // ml.<kind>.predicts
	fitSec   *obs.Histogram // ml.<kind>.fit.seconds
}

// timeFit starts timing one Fit call; call the returned func when the fit
// ends (success or error — both are fit work).
func (m *clfMetrics) timeFit() func() {
	if m.fitSec == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		m.fits.Inc()
		m.fitSec.Observe(time.Since(start).Seconds())
	}
}

var noopEnd = func() {}

// Per-algorithm handles plus the cross-validation / grid-search instruments.
var (
	ldaMet, qdaMet, nbMet, knnMet, svmMet clfMetrics

	met struct {
		cvFolds   *obs.Counter   // ml.cv.folds — CV folds evaluated
		foldScore *obs.Histogram // ml.cv.fold_accuracy — per-fold validation accuracy
		gridCells *obs.Counter   // ml.svm.grid_cells — (C, γ) cells scored
	}
)

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		bind := func(m *clfMetrics, kind string) {
			m.fits = r.Counter("ml." + kind + ".fits")
			m.predicts = r.Counter("ml." + kind + ".predicts")
			m.fitSec = r.HistogramWith("ml."+kind+".fit.seconds", obs.DurationBuckets())
		}
		bind(&ldaMet, "lda")
		bind(&qdaMet, "qda")
		bind(&nbMet, "bayes")
		bind(&knnMet, "knn")
		bind(&svmMet, "svm")
		met.cvFolds = r.Counter("ml.cv.folds")
		met.foldScore = r.HistogramWith("ml.cv.fold_accuracy", obs.UnitBuckets())
		met.gridCells = r.Counter("ml.svm.grid_cells")
	})
}
