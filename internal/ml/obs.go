package ml

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// clfMetrics bundles the per-classifier instrument handles. All handles are
// nil (no-op) under a nil registry, so the disabled path costs one nil check
// per Fit and one per Predict.
type clfMetrics struct {
	fits     *obs.Counter   // ml.<kind>.fits
	predicts *obs.Counter   // ml.<kind>.predicts
	fitSec   *obs.Histogram // ml.<kind>.fit.seconds
}

// timeFit starts timing one Fit call; call the returned func when the fit
// ends (success or error — both are fit work).
func (m *clfMetrics) timeFit() func() {
	if m.fitSec == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		m.fits.Inc()
		m.fitSec.Observe(time.Since(start).Seconds())
	}
}

var noopEnd = func() {}

// mlMetrics is the package's full handle set: per-algorithm instruments plus
// the cross-validation / grid-search ones. The live set is swapped
// atomically by the OnDefault hook, so obs.SetDefault can rebind while fits
// and predictions run on other goroutines.
type mlMetrics struct {
	lda, qda, nb, knn, svm clfMetrics

	cvFolds   *obs.Counter   // ml.cv.folds — CV folds evaluated
	foldScore *obs.Histogram // ml.cv.fold_accuracy — per-fold validation accuracy
	gridCells *obs.Counter   // ml.svm.grid_cells — (C, γ) cells scored
}

var metPtr atomic.Pointer[mlMetrics]

// met returns the current handle set; never nil.
func met() *mlMetrics {
	if m := metPtr.Load(); m != nil {
		return m
	}
	return &mlMetrics{}
}

// Per-algorithm accessors, so call sites read like the handles they bind.
func ldaMet() *clfMetrics { return &met().lda }
func qdaMet() *clfMetrics { return &met().qda }
func nbMet() *clfMetrics  { return &met().nb }
func knnMet() *clfMetrics { return &met().knn }
func svmMet() *clfMetrics { return &met().svm }

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		m := &mlMetrics{}
		bind := func(cm *clfMetrics, kind string) {
			cm.fits = r.Counter("ml." + kind + ".fits")
			cm.predicts = r.Counter("ml." + kind + ".predicts")
			cm.fitSec = r.HistogramWith("ml."+kind+".fit.seconds", obs.DurationBuckets())
		}
		bind(&m.lda, "lda")
		bind(&m.qda, "qda")
		bind(&m.nb, "bayes")
		bind(&m.knn, "knn")
		bind(&m.svm, "svm")
		m.cvFolds = r.Counter("ml.cv.folds")
		m.foldScore = r.HistogramWith("ml.cv.fold_accuracy", obs.UnitBuckets())
		m.gridCells = r.Counter("ml.svm.grid_cells")
		metPtr.Store(m)
	})
}
