package ml

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/linalg"
)

// Section codecs for the flat template store (internal/store): the big
// matrix payloads of a classifier snapshot — Cholesky factors, kNN training
// sets, SVM support vectors — are enumerated out of the snapshot as named
// linalg.Sections, stripped from the eagerly decoded header, and reattached
// on lazy materialization. Small per-class vectors (means, priors, alphas,
// naïve-Bayes variances) stay in the header: they are a rounding error next
// to the matrices and keeping them eager lets the header answer shape
// questions without touching a section.
//
// Section names are stable format vocabulary (DESIGN §12):
//
//	lda.factor      pooled Cholesky factor
//	qda.<c>.factor  class c's Cholesky factor
//	knn.x           training matrix, one row per sample
//	svm.<i>.sv      pair machine i's support vectors, one row per vector

// Sections enumerates the matrix payloads of a snapshot, sharing (never
// copying) float64 backing where the snapshot is already flat. On a stripped
// snapshot the entries carry shape with nil Data. kNN training sets and SVM
// support vectors are stored row-per-sample, flattened row-major.
func (st *ClassifierState) Sections() []linalg.Section {
	if st == nil {
		return nil
	}
	switch {
	case st.LDA != nil:
		if m := st.LDA.PooledFactor; m != nil {
			return []linalg.Section{{Name: "lda.factor", Rows: m.Rows, Cols: m.Cols, Data: m.Data}}
		}
	case st.QDA != nil:
		out := make([]linalg.Section, 0, len(st.QDA.Factors))
		for c, f := range st.QDA.Factors {
			if f != nil {
				out = append(out, linalg.Section{Name: "qda." + strconv.Itoa(c) + ".factor", Rows: f.Rows, Cols: f.Cols, Data: f.Data})
			}
		}
		return out
	case st.KNN != nil:
		if k := st.KNN; k.X != nil {
			return []linalg.Section{flattenRows("knn.x", k.X)}
		}
	case st.SVM != nil:
		out := make([]linalg.Section, 0, len(st.SVM.Machines))
		for i := range st.SVM.Machines {
			m := &st.SVM.Machines[i]
			if m.SVs != nil {
				out = append(out, flattenRows("svm."+strconv.Itoa(i)+".sv", m.SVs))
			}
		}
		return out
	}
	return nil
}

// flattenRows packs a rectangular row set into one row-major section. Rows
// are assumed rectangular (every trained snapshot's are; the store writer
// re-checks len(Data) against the claimed shape before emitting). A stripped
// snapshot (X == nil) never reaches here.
func flattenRows(name string, rows [][]float64) linalg.Section {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	flat := make([]float64, 0, r*c)
	for _, row := range rows {
		flat = append(flat, row...)
	}
	return linalg.Section{Name: name, Rows: r, Cols: c, Data: flat}
}

// Strip returns a copy of the snapshot with every matrix payload removed
// but its shape retained — the form that lives in the store's eager header.
// The receiver is never mutated: snapshots alias live classifier state.
func (st *ClassifierState) Strip() *ClassifierState {
	if st == nil {
		return nil
	}
	out := &ClassifierState{}
	switch {
	case st.LDA != nil:
		l := *st.LDA
		if l.PooledFactor != nil {
			l.PooledFactor = &linalg.Matrix{Rows: l.PooledFactor.Rows, Cols: l.PooledFactor.Cols}
		}
		out.LDA = &l
	case st.QDA != nil:
		q := *st.QDA
		q.Factors = make([]*linalg.Matrix, len(st.QDA.Factors))
		for c, f := range st.QDA.Factors {
			if f != nil {
				q.Factors[c] = &linalg.Matrix{Rows: f.Rows, Cols: f.Cols}
			}
		}
		out.QDA = &q
	case st.NB != nil:
		n := *st.NB
		out.NB = &n
	case st.KNN != nil:
		k := *st.KNN
		k.X = nil
		out.KNN = &k
	case st.SVM != nil:
		s := *st.SVM
		s.Machines = make([]BinarySVMState, len(st.SVM.Machines))
		for i, m := range st.SVM.Machines {
			m.SVs = nil
			s.Machines[i] = m
		}
		out.SVM = &s
	}
	return out
}

// SetSection reattaches one lazily loaded payload to a stripped snapshot.
// The name routes to the payload slot; the shape must match what the header
// recorded at save time (for kNN/SVM, row count must agree with the eager
// label/alpha vectors, which pins the payload to the snapshot it was saved
// with); a slot that already holds data rejects the duplicate.
func (st *ClassifierState) SetSection(name string, rows, cols int, data []float64) error {
	if st == nil {
		return fmt.Errorf("ml: no classifier state to attach section %q to", name)
	}
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return fmt.Errorf("ml: section %q claims %dx%d but holds %d values", name, rows, cols, len(data))
	}
	switch {
	case st.LDA != nil && name == "lda.factor":
		return attachMatrix(name, st.LDA.PooledFactor, rows, cols, data)
	case st.QDA != nil && strings.HasPrefix(name, "qda.") && strings.HasSuffix(name, ".factor"):
		c, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "qda."), ".factor"))
		if err != nil || c < 0 || c >= len(st.QDA.Factors) {
			return fmt.Errorf("ml: section %q names no class of this QDA snapshot", name)
		}
		return attachMatrix(name, st.QDA.Factors[c], rows, cols, data)
	case st.KNN != nil && name == "knn.x":
		if st.KNN.X != nil {
			return fmt.Errorf("ml: duplicate section %q", name)
		}
		if rows != len(st.KNN.Labels) {
			return fmt.Errorf("ml: section %q has %d rows for %d labels", name, rows, len(st.KNN.Labels))
		}
		st.KNN.X = unflattenRows(rows, cols, data)
		return nil
	case st.SVM != nil && strings.HasPrefix(name, "svm.") && strings.HasSuffix(name, ".sv"):
		i, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "svm."), ".sv"))
		if err != nil || i < 0 || i >= len(st.SVM.Machines) {
			return fmt.Errorf("ml: section %q names no pair machine of this SVM snapshot", name)
		}
		m := &st.SVM.Machines[i]
		if m.SVs != nil {
			return fmt.Errorf("ml: duplicate section %q", name)
		}
		if rows != len(m.Alphas) || cols != st.SVM.Dim {
			return fmt.Errorf("ml: section %q is %dx%d, machine expects %dx%d", name, rows, cols, len(m.Alphas), st.SVM.Dim)
		}
		m.SVs = unflattenRows(rows, cols, data)
		return nil
	}
	return fmt.Errorf("ml: unknown classifier section %q", name)
}

func attachMatrix(name string, m *linalg.Matrix, rows, cols int, data []float64) error {
	if m == nil || m.Rows != rows || m.Cols != cols {
		return fmt.Errorf("ml: section %q shape %dx%d does not match the snapshot header", name, rows, cols)
	}
	if m.Data != nil {
		return fmt.Errorf("ml: duplicate section %q", name)
	}
	m.Data = data
	return nil
}

func unflattenRows(rows, cols int, data []float64) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = data[i*cols : (i+1)*cols]
	}
	return out
}

// CheckComplete reports whether every payload slot this snapshot's family
// needs is populated — the guard that keeps a template whose sections only
// partially materialized from ever reaching RestoreClassifier (and thus from
// ever classifying).
func (st *ClassifierState) CheckComplete() error {
	if st == nil {
		return fmt.Errorf("ml: nil classifier state")
	}
	switch {
	case st.LDA != nil:
		if st.LDA.PooledFactor == nil || st.LDA.PooledFactor.Data == nil {
			return fmt.Errorf("ml: section %q not materialized", "lda.factor")
		}
	case st.QDA != nil:
		for c, f := range st.QDA.Factors {
			if f == nil || f.Data == nil {
				return fmt.Errorf("ml: section %q not materialized", "qda."+strconv.Itoa(c)+".factor")
			}
		}
	case st.KNN != nil:
		if st.KNN.X == nil {
			return fmt.Errorf("ml: section %q not materialized", "knn.x")
		}
	case st.SVM != nil:
		for i := range st.SVM.Machines {
			if st.SVM.Machines[i].SVs == nil {
				return fmt.Errorf("ml: section %q not materialized", "svm."+strconv.Itoa(i)+".sv")
			}
		}
	}
	return nil
}
