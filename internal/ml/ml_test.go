package ml

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// gaussianBlobs builds an easily separable K-class dataset with Gaussian
// clusters in dim dimensions.
func gaussianBlobs(rng *rand.Rand, k, perClass, dim int, sep, spread float64) (X [][]float64, y []int) {
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = sep * float64(c) * math.Cos(float64(c+j))
		}
		center[c%dim] += sep
		for i := 0; i < perClass; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = center[j] + rng.NormFloat64()*spread
			}
			X = append(X, x)
			y = append(y, c)
		}
	}
	return
}

func allClassifiers() []Classifier {
	return []Classifier{
		NewLDA(),
		NewQDA(),
		NewGaussianNB(),
		NewKNN(3),
		NewSVM(10, RBFKernel{Gamma: 0.5}),
		NewSVM(10, LinearKernel{}),
	}
}

func TestAllClassifiersSeparateBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := gaussianBlobs(rng, 3, 60, 4, 5, 0.4)
	Xt, yt := gaussianBlobs(rng, 3, 30, 4, 5, 0.4)
	for _, clf := range allClassifiers() {
		if err := clf.Fit(X, y); err != nil {
			t.Fatalf("%s: fit: %v", clf.Name(), err)
		}
		acc, err := EvaluateAccuracy(clf, Xt, yt)
		if err != nil {
			t.Fatalf("%s: evaluate: %v", clf.Name(), err)
		}
		if acc < 0.95 {
			t.Fatalf("%s: accuracy %g on trivially separable blobs", clf.Name(), acc)
		}
	}
}

func TestClassifiersRejectBadInput(t *testing.T) {
	for _, clf := range allClassifiers() {
		if err := clf.Fit(nil, nil); err == nil {
			t.Fatalf("%s: empty fit should fail", clf.Name())
		}
		if err := clf.Fit([][]float64{{1, 2}}, []int{0}); err == nil {
			t.Fatalf("%s: single-class fit should fail", clf.Name())
		}
		if err := clf.Fit([][]float64{{1, 2}, {3}}, []int{0, 1}); err == nil {
			t.Fatalf("%s: ragged fit should fail", clf.Name())
		}
		if _, err := clf.Predict([]float64{1}); err == nil {
			t.Fatalf("%s: predict before fit should fail", clf.Name())
		}
	}
}

func TestClassifiersPredictDimCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := gaussianBlobs(rng, 2, 20, 3, 4, 0.3)
	for _, clf := range allClassifiers() {
		if err := clf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if _, err := clf.Predict([]float64{1}); err == nil {
			t.Fatalf("%s: wrong-dimension predict should fail", clf.Name())
		}
	}
}

func TestQDAHandlesUnequalCovariances(t *testing.T) {
	// Class 0: tight blob at origin; class 1: ring-like wide blob around it.
	// LDA (shared covariance) fails here; QDA must exceed it.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		X = append(X, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		y = append(y, 0)
		X = append(X, []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4})
		y = append(y, 1)
	}
	lda, qda := NewLDA(), NewQDA()
	if err := lda.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := qda.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var Xt [][]float64
	var yt []int
	for i := 0; i < 200; i++ {
		Xt = append(Xt, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		yt = append(yt, 0)
		Xt = append(Xt, []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4})
		yt = append(yt, 1)
	}
	accL, _ := EvaluateAccuracy(lda, Xt, yt)
	accQ, _ := EvaluateAccuracy(qda, Xt, yt)
	if accQ <= accL {
		t.Fatalf("QDA (%g) should beat LDA (%g) on unequal covariances", accQ, accL)
	}
	if accQ < 0.85 {
		t.Fatalf("QDA accuracy %g too low", accQ)
	}
}

func TestLDAScoresLinear(t *testing.T) {
	// LDA discriminants are affine: score(αx) scales consistently.
	rng := rand.New(rand.NewSource(4))
	X, y := gaussianBlobs(rng, 2, 50, 2, 6, 0.5)
	lda := NewLDA()
	if err := lda.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	s1, err := lda.Scores([]float64{1, 1})
	if err != nil || len(s1) != 2 {
		t.Fatalf("scores: %v %v", s1, err)
	}
	if _, err := lda.Scores([]float64{1}); err == nil {
		t.Fatal("want dim error")
	}
}

func TestKNNExactMemorization(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {10, 10}, {11, 11}}
	y := []int{0, 0, 1, 1}
	knn := NewKNN(1)
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		p, err := knn.Predict(x)
		if err != nil || p != y[i] {
			t.Fatalf("1-NN must memorize: pred %d want %d (%v)", p, y[i], err)
		}
	}
	p, _ := knn.Predict([]float64{6.5, 6.5})
	if p != 1 {
		t.Fatalf("nearest neighbor of (6.5,6.5) is (10,10), class 1; pred=%d", p)
	}
	if err := NewKNN(0).Fit(X, y); err == nil {
		t.Fatal("k=0 should fail")
	}
	if err := NewKNN(9).Fit(X, y); err == nil {
		t.Fatal("k > n should fail")
	}
}

func TestGaussianNBIndependentDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		X = append(X, []float64{rng.NormFloat64()*0.5 - 3, rng.NormFloat64()})
		y = append(y, 0)
		X = append(X, []float64{rng.NormFloat64()*0.5 + 3, rng.NormFloat64()})
		y = append(y, 1)
	}
	nb := NewGaussianNB()
	if err := nb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lp, err := nb.LogPosteriors([]float64{-3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lp[0] <= lp[1] {
		t.Fatalf("log posterior should favor class 0 at its mean: %v", lp)
	}
	acc, _ := EvaluateAccuracy(nb, X, y)
	if acc < 0.99 {
		t.Fatalf("NB accuracy %g", acc)
	}
}

func TestSVMMarginAndSupportVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := gaussianBlobs(rng, 2, 80, 2, 8, 0.5)
	svm := NewSVM(1, LinearKernel{})
	if err := svm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if svm.NumSupportVectors() == 0 {
		t.Fatal("no support vectors retained")
	}
	if svm.NumSupportVectors() >= len(X) {
		t.Fatalf("all %d points became SVs on separable data", svm.NumSupportVectors())
	}
	acc, _ := EvaluateAccuracy(svm, X, y)
	if acc < 0.98 {
		t.Fatalf("separable linear SVM accuracy %g", acc)
	}
}

func TestSVMNonlinearNeedsRBF(t *testing.T) {
	// XOR-style data: linear kernel fails, RBF succeeds.
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		lbl := 0
		if (a > 0) != (b > 0) {
			lbl = 1
		}
		X = append(X, []float64{a * 3, b * 3})
		y = append(y, lbl)
	}
	lin := NewSVM(10, LinearKernel{})
	rbf := NewSVM(10, RBFKernel{Gamma: 1})
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := rbf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	accLin, _ := EvaluateAccuracy(lin, X, y)
	accRBF, _ := EvaluateAccuracy(rbf, X, y)
	if accRBF < 0.9 {
		t.Fatalf("RBF SVM should solve XOR, got %g", accRBF)
	}
	if accRBF <= accLin {
		t.Fatalf("RBF (%g) should beat linear (%g) on XOR", accRBF, accLin)
	}
}

func TestSVMValidation(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []int{0, 1}
	if err := NewSVM(-1, LinearKernel{}).Fit(X, y); err == nil {
		t.Fatal("C<=0 should fail")
	}
	s := &SVM{C: 1}
	if err := s.Fit(X, y); err == nil {
		t.Fatal("nil kernel should fail")
	}
}

func TestGridSearchSVM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := gaussianBlobs(rng, 2, 40, 2, 6, 0.6)
	svm, res, err := GridSearchSVM(X, y, []float64{0.1, 10}, []float64{0.1, 1}, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CVScore < 0.9 {
		t.Fatalf("grid search CV score %g", res.CVScore)
	}
	acc, _ := EvaluateAccuracy(svm, X, y)
	if acc < 0.95 {
		t.Fatalf("refit accuracy %g", acc)
	}
	if _, _, err := GridSearchSVM(X, y, nil, nil, 3, rng); err == nil {
		t.Fatal("empty grid should fail")
	}
}

func TestKFoldCV(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := gaussianBlobs(rng, 2, 30, 2, 8, 0.4)
	acc, err := KFoldCV(func() Classifier { return NewLDA() }, X, y, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("CV accuracy %g", acc)
	}
	if _, err := KFoldCV(func() Classifier { return NewLDA() }, X[:1], y[:1], 3, rng); err == nil {
		t.Fatal("too-small CV should fail")
	}
}

func TestConfusionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y := gaussianBlobs(rng, 3, 30, 3, 7, 0.3)
	lda := NewLDA()
	if err := lda.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	cm, err := ConfusionMatrix(lda, X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	diag := 0
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != len(X) {
		t.Fatalf("confusion total %d, want %d", total, len(X))
	}
	if float64(diag)/float64(total) < 0.95 {
		t.Fatalf("diagonal fraction %g", float64(diag)/float64(total))
	}
}

func TestPairwiseVoter(t *testing.T) {
	v, err := NewPairwiseVoter(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPairs() != 3 {
		t.Fatalf("pairs = %d, want 3", v.NumPairs())
	}
	// Train binary classifiers on separable 1-D pair features: pair (a,b)
	// features are negative for class a, positive for class b.
	for i := 0; i < v.NumPairs(); i++ {
		clf := NewLDA()
		X := [][]float64{{-1}, {-1.2}, {-0.8}, {1}, {1.2}, {0.8}}
		y := []int{0, 0, 0, 1, 1, 1}
		if err := clf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := v.SetPairClassifier(i, clf); err != nil {
			t.Fatal(err)
		}
	}
	// A sample of class 1: pair (0,1) → second (positive), pair (0,2) →
	// don't care (say first), pair (1,2) → first (negative).
	got, err := v.Vote([][]float64{{+1}, {-1}, {-1}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("vote = %d, want 1", got)
	}
	if _, err := v.Vote([][]float64{{1}}); err == nil {
		t.Fatal("wrong pair count should fail")
	}
	if err := v.SetPairClassifier(99, NewLDA()); err == nil {
		t.Fatal("out-of-range slot should fail")
	}
	if _, err := NewPairwiseVoter(1); err == nil {
		t.Fatal("voter needs >= 2 classes")
	}
}

func TestVoterRejectsUntrainedSlots(t *testing.T) {
	v, _ := NewPairwiseVoter(2)
	if _, err := v.Vote([][]float64{{1}}); err == nil {
		t.Fatal("vote with empty slot should fail")
	}
}

func TestEvaluateAccuracyValidation(t *testing.T) {
	if _, err := EvaluateAccuracy(NewLDA(), nil, nil); err == nil {
		t.Fatal("want error for empty eval")
	}
}

func TestClassifierDeterminismProperty(t *testing.T) {
	// Same data, same seed → identical predictions for every classifier.
	f := func(seed int64) bool {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		X1, y1 := gaussianBlobs(rng1, 2, 25, 3, 5, 0.5)
		X2, y2 := gaussianBlobs(rng2, 2, 25, 3, 5, 0.5)
		a := NewSVM(10, RBFKernel{Gamma: 0.3})
		b := NewSVM(10, RBFKernel{Gamma: 0.3})
		if a.Fit(X1, y1) != nil || b.Fit(X2, y2) != nil {
			return false
		}
		probe := []float64{1, 2, 3}
		pa, ea := a.Predict(probe)
		pb, eb := b.Predict(probe)
		return ea == nil && eb == nil && pa == pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRejectsNonFiniteTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := gaussianBlobs(rng, 2, 20, 3, 6, 0.5)
	X[7][1] = math.NaN()
	for _, clf := range []Classifier{NewLDA(), NewQDA(), NewGaussianNB(), NewKNN(3), NewSVM(1, LinearKernel{})} {
		if err := clf.Fit(X, y); !errors.Is(err, stats.ErrDegenerate) {
			t.Fatalf("%s.Fit with NaN err = %v, want stats.ErrDegenerate", clf.Name(), err)
		}
	}
}

func TestKFoldCVCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	X, y := gaussianBlobs(rng, 2, 40, 3, 6, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := KFoldCVCtx(ctx, func() Classifier { return NewLDA() }, X, y, 4, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGridSearchSVMCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	X, y := gaussianBlobs(rng, 2, 30, 3, 6, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := GridSearchSVMCtx(ctx, X, y, []float64{1}, []float64{0.1}, 3, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
