package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/avr"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/power"
	"repro/internal/stats"
)

// AblationResult is a generic two-arm comparison.
type AblationResult struct {
	Title      string
	ArmA, ArmB string
	SRA, SRB   float64
	CostA      time.Duration // per-trace extraction or prediction cost
	CostB      time.Duration
	ExtraA     string
	ExtraB     string
}

func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  %-34s SR %5.1f%%   %v/trace  %s\n", r.ArmA, 100*r.SRA, r.CostA, r.ExtraA)
	fmt.Fprintf(&b, "  %-34s SR %5.1f%%   %v/trace  %s\n", r.ArmB, 100*r.SRB, r.CostB, r.ExtraB)
	return b.String()
}

// AblationNoKLSelection compares the KL-selected DNVP pipeline against using
// the full (subsampled) time–frequency plane: the design claim is that the
// ~99 % point reduction costs little accuracy while slashing per-trace cost.
func AblationNoKLSelection(sc Scale) (*AblationResult, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	classes := []avr.Class{avr.OpADD, avr.OpADC, avr.OpSUB, avr.OpAND}
	ds, err := camp.CollectClasses(classes, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	train, test := ds.SplitRandom(rng, 5.0/6.0)

	// Arm A: KL-selected pipeline.
	pc := features.CSAPipelineConfig()
	pc.NumComponents = 20
	pipe, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, len(classes), pc)
	if err != nil {
		return nil, err
	}
	X, err := pipe.ExtractAll(train.Traces)
	if err != nil {
		return nil, err
	}
	clfA := ml.NewQDA()
	if err := clfA.Fit(X, train.Labels); err != nil {
		return nil, err
	}
	startA := time.Now()
	Xt, err := pipe.ExtractAll(test.Traces)
	if err != nil {
		return nil, err
	}
	costA := time.Since(startA) / time.Duration(len(test.Traces))
	srA, err := ml.EvaluateAccuracy(clfA, Xt, test.Labels)
	if err != nil {
		return nil, err
	}

	// Arm B: full scalogram, subsampled 4× in time, PCA to the same dim.
	sel, err := features.NewSelector(len(ds.Traces[0]))
	if err != nil {
		return nil, err
	}
	var allPoints []features.Point
	for j := 0; j < 50; j++ {
		for k := 0; k < len(ds.Traces[0]); k += 4 {
			allPoints = append(allPoints, features.Point{Scale: j, Time: k})
		}
	}
	extractFull := func(traces [][]float64) ([][]float64, error) {
		out := make([][]float64, len(traces))
		for i, tr := range traces {
			f, err := sel.ExtractPoints(tr, allPoints)
			if err != nil {
				return nil, err
			}
			out[i] = stats.NormalizeTrace(f)
		}
		return out, nil
	}
	Xfull, err := extractFull(train.Traces)
	if err != nil {
		return nil, err
	}
	pca, err := features.FitPCA(Xfull, 20)
	if err != nil {
		return nil, err
	}
	Xp, err := pca.TransformAll(Xfull)
	if err != nil {
		return nil, err
	}
	clfB := ml.NewQDA()
	if err := clfB.Fit(Xp, train.Labels); err != nil {
		return nil, err
	}
	startB := time.Now()
	XtFull, err := extractFull(test.Traces)
	if err != nil {
		return nil, err
	}
	XtP, err := pca.TransformAll(XtFull)
	if err != nil {
		return nil, err
	}
	costB := time.Since(startB) / time.Duration(len(test.Traces))
	srB, err := ml.EvaluateAccuracy(clfB, XtP, test.Labels)
	if err != nil {
		return nil, err
	}

	return &AblationResult{
		Title:  "Ablation: KL feature selection vs full time-frequency plane (4 group-1 classes)",
		ArmA:   "KL-selected DNVP + PCA",
		ArmB:   "full scalogram (4x subsampled) + PCA",
		SRA:    srA,
		SRB:    srB,
		CostA:  costA,
		CostB:  costB,
		ExtraA: fmt.Sprintf("%d points", pipe.NumPoints()),
		ExtraB: fmt.Sprintf("%d points", len(allPoints)),
	}, nil
}

// AblationFlatVsHierarchical compares one flat multiclass classifier over
// the classes of three groups against the hierarchical route (group →
// instruction), the paper's complexity argument from §2.1.
func AblationFlatVsHierarchical(sc Scale) (*AblationResult, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	groups := []avr.Group{avr.Group1, avr.Group3, avr.Group6}
	var classes []avr.Class
	for _, g := range groups {
		classes = append(classes, avr.ClassesInGroup(g)...)
	}
	ds, err := camp.CollectClasses(classes, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	train, test := ds.SplitRandom(rng, 5.0/6.0)

	pcFlat := features.CSAPipelineConfig()
	pcFlat.NumComponents = 30
	pcFlat = clampPCs(pcFlat, train)
	startFitA := time.Now()
	_, srFlat, err := fitEval(train, test, len(classes), pcFlat, ml.NewQDA())
	if err != nil {
		return nil, err
	}
	costFlat := time.Since(startFitA) / time.Duration(len(test.Traces)+len(train.Traces))

	// Hierarchical: a group router + per-group classifiers, trained on the
	// same data relabeled.
	groupOf := map[int]int{}
	withinOf := map[int]int{}
	perGroupClasses := map[int][]int{}
	for li, c := range classes {
		gi := -1
		for i, g := range groups {
			if c.Group() == g {
				gi = i
			}
		}
		groupOf[li] = gi
		withinOf[li] = len(perGroupClasses[gi])
		perGroupClasses[gi] = append(perGroupClasses[gi], li)
	}
	relabel := func(d *power.Dataset, f func(int) (int, bool)) *power.Dataset {
		out := &power.Dataset{DeviceID: d.DeviceID}
		for i := range d.Traces {
			if l, ok := f(d.Labels[i]); ok {
				out.Append(d.Traces[i], l, d.Programs[i])
			}
		}
		return out
	}
	trainG := relabel(train, func(l int) (int, bool) { return groupOf[l], true })
	pcG := clampPCs(pcFlat, trainG)
	pipeG, err := features.FitPipeline(trainG.Traces, trainG.Labels, trainG.Programs, len(groups), pcG)
	if err != nil {
		return nil, err
	}
	Xg, err := pipeG.ExtractAll(trainG.Traces)
	if err != nil {
		return nil, err
	}
	clfG := ml.NewQDA()
	if err := clfG.Fit(Xg, trainG.Labels); err != nil {
		return nil, err
	}
	type level struct {
		pipe *features.Pipeline
		clf  ml.Classifier
	}
	levels := make([]level, len(groups))
	for gi := range groups {
		sub := relabel(train, func(l int) (int, bool) {
			if groupOf[l] != gi {
				return 0, false
			}
			return withinOf[l], true
		})
		pcL := clampPCs(pcFlat, sub)
		pipeL, err := features.FitPipeline(sub.Traces, sub.Labels, sub.Programs, len(perGroupClasses[gi]), pcL)
		if err != nil {
			return nil, err
		}
		Xl, err := pipeL.ExtractAll(sub.Traces)
		if err != nil {
			return nil, err
		}
		clfL := ml.NewQDA()
		if err := clfL.Fit(Xl, sub.Labels); err != nil {
			return nil, err
		}
		levels[gi] = level{pipe: pipeL, clf: clfL}
	}
	startB := time.Now()
	hit := 0
	for i, tr := range test.Traces {
		fg, err := pipeG.Extract(tr)
		if err != nil {
			return nil, err
		}
		gi, err := clfG.Predict(fg)
		if err != nil {
			return nil, err
		}
		fl, err := levels[gi].pipe.Extract(tr)
		if err != nil {
			return nil, err
		}
		wi, err := levels[gi].clf.Predict(fl)
		if err != nil {
			return nil, err
		}
		if wi < len(perGroupClasses[gi]) && perGroupClasses[gi][wi] == test.Labels[i] {
			hit++
		}
	}
	costHier := time.Since(startB) / time.Duration(len(test.Traces))
	srHier := float64(hit) / float64(len(test.Traces))

	return &AblationResult{
		Title:  fmt.Sprintf("Ablation: flat %d-class vs hierarchical (groups 1/3/6)", len(classes)),
		ArmA:   "flat multiclass QDA",
		ArmB:   "hierarchical (group -> instruction)",
		SRA:    srFlat,
		SRB:    srHier,
		CostA:  costFlat,
		CostB:  costHier,
		ExtraA: fmt.Sprintf("%d one-vs-one pairs if SVM", len(classes)*(len(classes)-1)/2),
		ExtraB: fmt.Sprintf("<= %d pairs per trace (paper's ~218 vs 6216 argument)", maxPairs(groups)),
	}, nil
}

func maxPairs(groups []avr.Group) int {
	g := len(groups) * (len(groups) - 1) / 2
	max := 0
	for _, gr := range groups {
		n := len(avr.ClassesInGroup(gr))
		if p := n * (n - 1) / 2; p > max {
			max = p
		}
	}
	return g + max
}

// AblationTimeDomain compares CWT time–frequency features against raw
// time-domain samples selected by the same KL criterion — the paper's case
// for working in the time–frequency plane.
func AblationTimeDomain(sc Scale) (*AblationResult, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	ds, err := camp.CollectClasses(classes, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	test, err := fieldDataset(camp, classes, sc, 0xBEEF)
	if err != nil {
		return nil, err
	}

	// Arm A: CWT pipeline (CSA).
	pcA := features.CSAPipelineConfig()
	pcA.NumComponents = 3
	_, srA, err := fitEval(ds, test, 2, pcA, ml.NewQDA())
	if err != nil {
		return nil, err
	}

	// Arm B: time-domain KL selection: rank raw sample indices by
	// between-class KL, keep the top 40, normalize per trace, PCA to 3.
	type scored struct {
		idx int
		kl  float64
	}
	n := len(ds.Traces[0])
	byClass := [2][][]float64{}
	for i, tr := range ds.Traces {
		byClass[ds.Labels[i]] = append(byClass[ds.Labels[i]], tr)
	}
	var ranked []scored
	for k := 0; k < n; k++ {
		colA := make([]float64, len(byClass[0]))
		colB := make([]float64, len(byClass[1]))
		for i, tr := range byClass[0] {
			colA[i] = tr[k]
		}
		for i, tr := range byClass[1] {
			colB[i] = tr[k]
		}
		kl, err := stats.KLGaussianFromSamples(colA, colB)
		if err != nil {
			return nil, err
		}
		ranked = append(ranked, scored{idx: k, kl: kl})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].kl > ranked[j].kl })
	keep := ranked[:40]
	extract := func(tr []float64) []float64 {
		f := make([]float64, len(keep))
		for i, s := range keep {
			f[i] = tr[s.idx]
		}
		return stats.NormalizeTrace(f)
	}
	var Xb [][]float64
	for _, tr := range ds.Traces {
		Xb = append(Xb, extract(tr))
	}
	pca, err := features.FitPCA(Xb, 3)
	if err != nil {
		return nil, err
	}
	Xp, err := pca.TransformAll(Xb)
	if err != nil {
		return nil, err
	}
	clfB := ml.NewQDA()
	if err := clfB.Fit(Xp, ds.Labels); err != nil {
		return nil, err
	}
	var XtB [][]float64
	for _, tr := range test.Traces {
		XtB = append(XtB, extract(tr))
	}
	XtP, err := pca.TransformAll(XtB)
	if err != nil {
		return nil, err
	}
	srB, err := ml.EvaluateAccuracy(clfB, XtP, test.Labels)
	if err != nil {
		return nil, err
	}

	return &AblationResult{
		Title: "Ablation: time-frequency (CWT) vs raw time-domain features (ADC vs AND, field program)",
		ArmA:  "CWT + KL + norm + PCA(3)",
		ArmB:  "time-domain KL top-40 + norm + PCA(3)",
		SRA:   srA,
		SRB:   srB,
	}, nil
}
