package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	want := [8]int{12, 10, 13, 20, 24, 15, 12, 6}
	if r.Sizes != want {
		t.Fatalf("group sizes %v, want %v", r.Sizes, want)
	}
	s := r.String()
	if !strings.Contains(s, "112 classes") {
		t.Fatalf("missing class count: %s", s)
	}
}

func TestFig4Printout(t *testing.T) {
	s := Fig4()
	for _, needle := range []string{"SBI", "CBI", "TARGET", "NOP"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("Fig4 output missing %q:\n%s", needle, s)
		}
	}
}

func TestFig2Tiny(t *testing.T) {
	r, err := Fig2(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPoints != 50*315 {
		t.Fatalf("total points %d", r.TotalPoints)
	}
	if r.PeakCount == 0 {
		t.Fatal("no KL peaks found")
	}
	if len(r.DNVP) == 0 || len(r.DNVP) > 5 {
		t.Fatalf("DNVP count %d", len(r.DNVP))
	}
	if r.UnionGroup1 == 0 || r.UnionGroup1 >= r.TotalPoints {
		t.Fatalf("union size %d", r.UnionGroup1)
	}
	if r.ReductionPct < 90 {
		t.Fatalf("reduction %.1f%%, expected the paper-style ~99%% cut", r.ReductionPct)
	}
	_ = r.String()
}

func TestFig3Tiny(t *testing.T) {
	r, err := Fig3(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative claim: highest peaks scatter the two programs
	// apart, not-varying points keep them together.
	if r.SeparationWorst <= r.SeparationBest {
		t.Fatalf("expected worst separation (%.2f) > best (%.2f)", r.SeparationWorst, r.SeparationBest)
	}
	_ = r.String()
}

func TestFig5aTiny(t *testing.T) {
	r, err := Fig5a(TinyScale(), []int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 4 {
		t.Fatalf("expected 4 classifiers, got %d", len(r.Curves))
	}
	for name, curve := range r.Curves {
		if len(curve) != 2 {
			t.Fatalf("%s: %d points", name, len(curve))
		}
		last := curve[len(curve)-1].SR
		if last < 0.5 {
			t.Fatalf("%s group SR %.2f too low even at 8 PCs", name, last)
		}
	}
	_ = r.String()
}

func TestTable3Tiny(t *testing.T) {
	sc := TinyScale()
	sc.Programs = 6
	sc.CSAPrograms = 10
	sc.TracesPerProgram = 20
	sc.TestTraces = 80
	r, err := Table3(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"QDA", "SVM"} {
		row := r.Rows[name]
		// The reproduction target is the ordering: CSA+norm rescues what the
		// unadapted classifier loses on a field program.
		if row[2] < row[0] {
			t.Fatalf("%s: CSA+norm (%.2f) should beat no-CSA (%.2f)", name, row[2], row[0])
		}
		if row[2] < 0.75 {
			t.Fatalf("%s: CSA+norm SR %.2f too low", name, row[2])
		}
		if r.TrainAccNoCSA[name] < 0.8 {
			t.Fatalf("%s: no-CSA train accuracy %.2f should be high (paper: 94.3%%)", name, r.TrainAccNoCSA[name])
		}
	}
	_ = r.String()
}

func TestMalwareTiny(t *testing.T) {
	sc := TinyScale()
	sc.Programs = 4
	sc.TracesPerProgram = 20
	// Run with a calibration sink installed, as `scdis detect` does: the
	// detection outcome must be unchanged (the scored path decodes
	// identically) and every run's decisions must be labeled against the
	// executed stream.
	cal := obs.NewReliability()
	r, err := MalwareObserved(sc, func(d *core.Disassembler) error {
		d.SetObserver(&core.InferenceObserver{Calibration: cal})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.EvilAlarm {
		t.Fatalf("register-swap malware not detected:\n%s", r)
	}
	if r.CleanAlarm {
		t.Fatalf("clean stream raised a register alarm:\n%s", r)
	}
	// 2 instructions × 9 runs × 2 streams.
	if want := int64(2 * 9 * 2); cal.Labeled() != want {
		t.Fatalf("calibration labeled %d decisions, want %d", cal.Labeled(), want)
	}
	snap := cal.Snapshot()
	if math.IsNaN(snap.ECE) || snap.ECE < 0 || snap.ECE > 1 {
		t.Fatalf("ECE %g out of range", snap.ECE)
	}
	if !(snap.MeanConfidence > 0 && snap.MeanConfidence <= 1) {
		t.Fatalf("mean confidence %g", snap.MeanConfidence)
	}
}

func TestAblationTimeDomainTiny(t *testing.T) {
	r, err := AblationTimeDomain(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.SRA <= 0.5 {
		t.Fatalf("CWT arm should be informative, got %.2f", r.SRA)
	}
	_ = r.String()
}
