package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/power"
)

// ---------------------------------------------------------------- Fig. 5

// CurvePoint is one (number of variables, SR) sample of an accuracy curve.
type CurvePoint struct {
	Vars int
	SR   float64
}

// Fig5Result holds SR-vs-#PCs curves per classifier.
type Fig5Result struct {
	Title  string
	Curves map[string][]CurvePoint
	PCs    []int
}

// Fig5a sweeps the group classifier's SR over the number of principal
// components for LDA/QDA/SVM/naïve Bayes (paper: saturates at 99.85 % for
// SVM with 43 variables).
func Fig5a(sc Scale, pcs []int) (*Fig5Result, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	ds, err := camp.CollectGroups(sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	return sweepPCs("Fig 5a: instruction-group SR vs #principal components", ds, avr.NumGroups, pcs, sc)
}

// Fig5b sweeps the group-1 instruction classifier (12 classes; paper:
// saturates at 99.7 %).
func Fig5b(sc Scale, pcs []int) (*Fig5Result, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	g1 := avr.ClassesInGroup(avr.Group1)
	ds, err := camp.CollectClasses(g1, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	return sweepPCs("Fig 5b: group-1 instruction SR vs #principal components", ds, len(g1), pcs, sc)
}

func sweepPCs(title string, ds *power.Dataset, nClasses int, pcs []int, sc Scale) (*Fig5Result, error) {
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	train, test := ds.SplitRandom(rng, 5.0/6.0) // paper: 2500 train / 500 test
	res := &Fig5Result{Title: title, Curves: map[string][]CurvePoint{}, PCs: pcs}
	for _, k := range pcs {
		pc := features.CSAPipelineConfig()
		pc.NumComponents = k
		pipe, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, nClasses, pc)
		if err != nil {
			return nil, err
		}
		X, err := pipe.ExtractAll(train.Traces)
		if err != nil {
			return nil, err
		}
		Xt, err := pipe.ExtractAll(test.Traces)
		if err != nil {
			return nil, err
		}
		// LIBSVM-style kernel width: γ = 1/#features.
		clfs := []ml.Classifier{
			ml.NewLDA(),
			ml.NewQDA(),
			ml.NewSVM(10, ml.RBFKernel{Gamma: 1 / float64(k)}),
			ml.NewGaussianNB(),
		}
		for _, clf := range clfs {
			if err := clf.Fit(X, train.Labels); err != nil {
				return nil, err
			}
			acc, err := ml.EvaluateAccuracy(clf, Xt, test.Labels)
			if err != nil {
				return nil, err
			}
			name := clf.Name()
			if strings.HasPrefix(name, "SVM") {
				name = "SVM (RBF)"
			}
			res.Curves[name] = append(res.Curves[name], CurvePoint{Vars: k, SR: acc})
		}
	}
	return res, nil
}

func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  %-22s", "#PCs:")
	for _, k := range r.PCs {
		fmt.Fprintf(&b, " %6d", k)
	}
	b.WriteByte('\n')
	for _, name := range sortedKeys(r.Curves) {
		fmt.Fprintf(&b, "  %-22s", name)
		for _, p := range r.Curves[name] {
			fmt.Fprintf(&b, " %5.1f%%", 100*p.SR)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string][]CurvePoint) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Result compares majority voting (per-pair feature vectors) with the
// general method (unified feature set + PCA) at small variable counts.
type Fig6Result struct {
	Vars     []int
	General  map[string][]CurvePoint
	Majority map[string][]CurvePoint
}

// Fig6 reproduces the majority-voting comparison on group 1 (paper: with
// only 3 variables majority voting reaches 82–85 % where the general method
// is far lower; SVM with 9 variables: 95.2 %).
func Fig6(sc Scale, vars []int) (*Fig6Result, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	g1 := avr.ClassesInGroup(avr.Group1)
	ds, err := camp.CollectClasses(g1, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	train, test := ds.SplitRandom(rng, 5.0/6.0)

	res := &Fig6Result{Vars: vars, General: map[string][]CurvePoint{}, Majority: map[string][]CurvePoint{}}
	makers := []struct {
		name string
		mk   func() ml.Classifier
	}{
		{"LDA", func() ml.Classifier { return ml.NewLDA() }},
		{"QDA", func() ml.Classifier { return ml.NewQDA() }},
		{"SVM", func() ml.Classifier { return ml.NewSVM(10, ml.RBFKernel{Gamma: 0.1}) }},
		{"NaiveBayes", func() ml.Classifier { return ml.NewGaussianNB() }},
	}

	for _, v := range vars {
		// General method: unified DNVP + PCA down to v components.
		pcGen := features.CSAPipelineConfig()
		pcGen.NumComponents = v
		pipeGen, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, len(g1), pcGen)
		if err != nil {
			return nil, err
		}
		X, err := pipeGen.ExtractAll(train.Traces)
		if err != nil {
			return nil, err
		}
		Xt, err := pipeGen.ExtractAll(test.Traces)
		if err != nil {
			return nil, err
		}
		// Majority voting: per-pair classifiers on ≤v pair-specific points.
		pcVote := features.CSAPipelineConfig()
		pcVote.TopPerPair = v
		pcVote.NumComponents = v
		pipeVote, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, len(g1), pcVote)
		if err != nil {
			return nil, err
		}
		trainPairVecs, err := pairVectors(pipeVote, train.Traces, v)
		if err != nil {
			return nil, err
		}
		testPairVecs, err := pairVectors(pipeVote, test.Traces, v)
		if err != nil {
			return nil, err
		}

		for _, mk := range makers {
			clf := mk.mk()
			if err := clf.Fit(X, train.Labels); err != nil {
				return nil, err
			}
			acc, err := ml.EvaluateAccuracy(clf, Xt, test.Labels)
			if err != nil {
				return nil, err
			}
			res.General[mk.name] = append(res.General[mk.name], CurvePoint{Vars: v, SR: acc})

			accVote, err := majorityVoteSR(pipeVote, mk.mk, trainPairVecs, train.Labels, testPairVecs, test.Labels, len(g1))
			if err != nil {
				return nil, err
			}
			res.Majority[mk.name] = append(res.Majority[mk.name], CurvePoint{Vars: v, SR: accVote})
		}
	}
	return res, nil
}

// pairVectors precomputes, for every trace, its feature vector for every
// class pair (truncated to maxVars points). Each trace's scalogram is
// computed once and shared across all pairs, and the traces run concurrently
// on the parallel.Workers() pool into index-owned slots.
func pairVectors(pipe *features.Pipeline, traces [][]float64, maxVars int) ([][][]float64, error) {
	out := make([][][]float64, len(traces))
	err := parallel.ForErr(len(traces), func(i int) error {
		flat, err := pipe.RawScalogram(traces[i])
		if err != nil {
			return err
		}
		vecs := make([][]float64, pipe.PairCount())
		for p := 0; p < pipe.PairCount(); p++ {
			v, err := pipe.PairVectorFromScalogram(p, flat, maxVars)
			if err != nil {
				return err
			}
			vecs[p] = v
		}
		out[i] = vecs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// majorityVoteSR trains one binary classifier per pair on the pair-specific
// vectors and evaluates the voted multiclass SR.
func majorityVoteSR(pipe *features.Pipeline, mk func() ml.Classifier,
	trainVecs [][][]float64, trainLabels []int,
	testVecs [][][]float64, testLabels []int, nClasses int) (float64, error) {

	voter, err := ml.NewPairwiseVoter(nClasses)
	if err != nil {
		return 0, err
	}
	for p := 0; p < pipe.PairCount(); p++ {
		a, b := pipe.PairLabels(p)
		var X [][]float64
		var y []int
		for i, l := range trainLabels {
			switch l {
			case a:
				X = append(X, trainVecs[i][p])
				y = append(y, 0)
			case b:
				X = append(X, trainVecs[i][p])
				y = append(y, 1)
			}
		}
		clf := mk()
		if err := clf.Fit(X, y); err != nil {
			return 0, err
		}
		if err := voter.SetPairClassifier(p, clf); err != nil {
			return 0, err
		}
	}
	hit := 0
	for i := range testVecs {
		pred, err := voter.Vote(testVecs[i])
		if err != nil {
			return 0, err
		}
		if pred == testLabels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(testVecs)), nil
}

func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 6: majority voting vs general method, group-1 instructions\n")
	fmt.Fprintf(&b, "  %-26s", "#variables:")
	for _, v := range r.Vars {
		fmt.Fprintf(&b, " %6d", v)
	}
	b.WriteByte('\n')
	for _, name := range sortedKeys(r.General) {
		fmt.Fprintf(&b, "  general  %-17s", name)
		for _, p := range r.General[name] {
			fmt.Fprintf(&b, " %5.1f%%", 100*p.SR)
		}
		b.WriteByte('\n')
	}
	for _, name := range sortedKeys(r.Majority) {
		fmt.Fprintf(&b, "  majority %-17s", name)
		for _, p := range r.Majority[name] {
			fmt.Fprintf(&b, " %5.1f%%", 100*p.SR)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Result is the covariate shift adaptation ablation.
type Table3Result struct {
	// Rows: classifier name → [withoutCSA, CSAWithoutNorm, CSAWithNorm].
	Rows map[string][3]float64
	// TrainAcc mirrors the paper's §4 observation (94.3 % train vs 18.5 %
	// test for QDA without CSA).
	TrainAccNoCSA map[string]float64
}

// Table3 reproduces the ADC-vs-AND covariate shift adaptation table: train
// on profiling programs, test on a field program with the scale's severity.
func Table3(sc Scale) (*Table3Result, error) {
	cfg := power.DefaultConfig()
	camp, err := power.NewCampaign(cfg, 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	trainOld, err := camp.CollectClasses(classes, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	trainCSA, err := camp.CollectClasses(classes, sc.CSAPrograms, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	test, err := fieldDataset(camp, classes, sc, 0x7AB1E3)
	if err != nil {
		return nil, err
	}

	res := &Table3Result{Rows: map[string][3]float64{}, TrainAccNoCSA: map[string]float64{}}
	configs := []struct {
		idx   int
		train *power.Dataset
		pc    features.PipelineConfig
	}{
		{0, trainOld, noCSAPipeline()},
		{1, trainCSA, csaNoNormPipeline()},
		{2, trainCSA, csaPipeline()},
	}
	for _, name := range []string{"QDA", "SVM"} {
		row := [3]float64{}
		for _, c := range configs {
			clf := newByName(name)
			trainAcc, testAcc, err := fitEval(c.train, test, 2, c.pc, clf)
			if err != nil {
				return nil, err
			}
			row[c.idx] = testAcc
			if c.idx == 0 {
				res.TrainAccNoCSA[name] = trainAcc
			}
		}
		res.Rows[name] = row
	}
	return res, nil
}

func noCSAPipeline() features.PipelineConfig {
	pc := features.DefaultPipelineConfig()
	pc.NumComponents = 3
	return pc
}

func csaNoNormPipeline() features.PipelineConfig {
	pc := features.CSAPipelineConfig()
	pc.PerTraceNorm = false
	pc.NumComponents = 3
	return pc
}

func csaPipeline() features.PipelineConfig {
	pc := features.CSAPipelineConfig()
	pc.NumComponents = 3
	return pc
}

func newByName(name string) ml.Classifier {
	if name == "SVM" {
		return ml.NewSVM(10, ml.RBFKernel{Gamma: 0.1})
	}
	return ml.NewQDA()
}

func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: SR of ADC vs AND with covariate shift adaptation (field program)\n")
	b.WriteString("  classifier   without CSA   CSA w/o norm   CSA with norm   (train acc, no CSA)\n")
	for _, name := range []string{"QDA", "SVM"} {
		row := r.Rows[name]
		fmt.Fprintf(&b, "  %-11s  %10.1f%%  %12.1f%%  %13.1f%%   (%.1f%%)\n",
			name, 100*row[0], 100*row[1], 100*row[2], 100*r.TrainAccNoCSA[name])
	}
	b.WriteString("  paper:       QDA 18.5% / 54.3% / 92.0%;  SVM 19.2% / 57.8% / 93.2%\n")
	return b.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Result is the cross-device SR after CSA.
type Table4Result struct {
	// Rows: classifier → SR per device 1..5.
	Rows map[string][]float64
}

// Table4 trains templates on the golden device and classifies field traces
// from five other devices (ADC vs AND, CSA pipeline).
func Table4(sc Scale) (*Table4Result, error) {
	cfg := power.DefaultConfig()
	campTrain, err := power.NewCampaign(cfg, 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	classes := []avr.Class{avr.OpADC, avr.OpAND}
	train, err := campTrain.CollectClasses(classes, sc.CSAPrograms, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Rows: map[string][]float64{}}
	for _, name := range []string{"QDA", "SVM"} {
		pc := csaPipeline()
		pipe, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, 2, pc)
		if err != nil {
			return nil, err
		}
		X, err := pipe.ExtractAll(train.Traces)
		if err != nil {
			return nil, err
		}
		clf := newByName(name)
		if err := clf.Fit(X, train.Labels); err != nil {
			return nil, err
		}
		var srs []float64
		for dev := 1; dev <= 5; dev++ {
			campDev, err := power.NewCampaign(cfg, dev, sc.Seed+uint64(dev))
			if err != nil {
				return nil, err
			}
			test, err := fieldDataset(campDev, classes, sc, uint64(dev)*0xD0D0)
			if err != nil {
				return nil, err
			}
			Xt, err := pipe.ExtractAll(test.Traces)
			if err != nil {
				return nil, err
			}
			acc, err := ml.EvaluateAccuracy(clf, Xt, test.Labels)
			if err != nil {
				return nil, err
			}
			srs = append(srs, acc)
		}
		res.Rows[name] = srs
	}
	return res, nil
}

func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4: SR of ADC vs AND on 5 different devices (after CSA)\n")
	b.WriteString("  classifier    Dev.1    Dev.2    Dev.3    Dev.4    Dev.5\n")
	for _, name := range []string{"QDA", "SVM"} {
		fmt.Fprintf(&b, "  %-11s", name)
		for _, sr := range r.Rows[name] {
			fmt.Fprintf(&b, "  %5.1f%%", 100*sr)
		}
		b.WriteByte('\n')
	}
	b.WriteString("  paper:       QDA 89.3/91.5/88.9/92.3/94.5%;  SVM 90.4/92.8/90.8/93.4/95.6%\n")
	return b.String()
}

// ------------------------------------------------------------- Registers

// RegisterResult is the §5.3 register-recovery evaluation.
type RegisterResult struct {
	RdSR map[string]float64
	RrSR map[string]float64
}

// Registers trains and evaluates the Rd and Rr 32-class classifiers on a
// random split (paper: QDA 99.9 % Rd, 99.6 % Rr with 45 variables).
func Registers(sc Scale) (*RegisterResult, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	res := &RegisterResult{RdSR: map[string]float64{}, RrSR: map[string]float64{}}
	for _, fixDst := range []bool{true, false} {
		ds, err := camp.CollectRegisters(fixDst, sc.Programs, sc.TracesPerProgram)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(sc.Seed)))
		train, test := ds.SplitRandom(rng, 5.0/6.0)
		pc := features.CSAPipelineConfig()
		pc.NumComponents = 45
		for _, name := range []string{"QDA", "LDA"} {
			clf := newByName(name)
			if name == "LDA" {
				clf = ml.NewLDA()
			}
			_, acc, err := fitEval(train, test, 32, pc, clf)
			if err != nil {
				return nil, err
			}
			if fixDst {
				res.RdSR[name] = acc
			} else {
				res.RrSR[name] = acc
			}
		}
	}
	return res, nil
}

func (r *RegisterResult) String() string {
	var b strings.Builder
	b.WriteString("Registers (§5.3): 32-class Rd / Rr recognition, 45 variables\n")
	for _, name := range []string{"QDA", "LDA"} {
		fmt.Fprintf(&b, "  %-5s  Rd %5.1f%%   Rr %5.1f%%\n", name, 100*r.RdSR[name], 100*r.RrSR[name])
	}
	b.WriteString("  paper: QDA Rd 99.9%, Rr 99.6%\n")
	return b.String()
}

// ---------------------------------------------------------------- Table 1

// Table1Result composes the hierarchical SR for the "Ours" row of Table 1.
type Table1Result struct {
	GroupSR   float64
	InstrSR   map[string]float64 // per group name
	MinInstr  float64
	RdSR      float64
	RrSR      float64
	OpcodeSR  float64 // GroupSR × min instruction SR
	OverallSR float64 // OpcodeSR × RdSR × RrSR
}

// Table1 runs the full hierarchy (all 8 groups, all 112 classes, both
// register banks) at the given scale with QDA and composes the headline SR
// exactly as §5.2/§5.3 do.
func Table1(sc Scale) (*Table1Result, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{InstrSR: map[string]float64{}, MinInstr: 1}
	pc := features.CSAPipelineConfig()
	pc.NumComponents = 45

	// Level 1: groups.
	dsG, err := camp.CollectGroups(sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	trG, teG := dsG.SplitRandom(rng, 5.0/6.0)
	if _, res.GroupSR, err = fitEval(trG, teG, avr.NumGroups, clampPCs(pc, trG), ml.NewQDA()); err != nil {
		return nil, err
	}

	// Level 2: instructions within each group.
	for g := avr.Group1; g <= avr.Group8; g++ {
		classes := avr.ClassesInGroup(g)
		ds, err := camp.CollectClasses(classes, sc.Programs, sc.TracesPerProgram)
		if err != nil {
			return nil, err
		}
		tr, te := ds.SplitRandom(rng, 5.0/6.0)
		_, sr, err := fitEval(tr, te, len(classes), clampPCs(pc, tr), ml.NewQDA())
		if err != nil {
			return nil, err
		}
		res.InstrSR[g.String()] = sr
		if sr < res.MinInstr {
			res.MinInstr = sr
		}
	}

	// Level 3: registers.
	regs, err := Registers(sc)
	if err != nil {
		return nil, err
	}
	res.RdSR = regs.RdSR["QDA"]
	res.RrSR = regs.RrSR["QDA"]

	res.OpcodeSR = res.GroupSR * res.MinInstr
	res.OverallSR = res.OpcodeSR * res.RdSR * res.RrSR
	return res, nil
}

// clampPCs keeps the QDA covariances well conditioned at reduced scales.
func clampPCs(pc features.PipelineConfig, ds *power.Dataset) features.PipelineConfig {
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
	}
	minCount := len(ds.Labels)
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	if maxDim := minCount/2 + 1; pc.NumComponents > maxDim {
		pc.NumComponents = maxDim
	}
	return pc
}

func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1 (\"Ours\" row): ATMega328P @ 16 MHz, 112 instructions + 64 registers\n")
	fmt.Fprintf(&b, "  group SR:                    %5.2f%%  (paper: 99.85%% SVM / 99.93%% QDA)\n", 100*r.GroupSR)
	for g := avr.Group1; g <= avr.Group8; g++ {
		fmt.Fprintf(&b, "    %s instruction SR:      %5.2f%%\n", g, 100*r.InstrSR[g.String()])
	}
	fmt.Fprintf(&b, "  worst-group instruction SR:  %5.2f%%  (paper: >= 99.5%%)\n", 100*r.MinInstr)
	fmt.Fprintf(&b, "  opcode SR (group x instr):   %5.2f%%  (paper: 99.1-99.53%%)\n", 100*r.OpcodeSR)
	fmt.Fprintf(&b, "  Rd SR:                       %5.2f%%  (paper: 99.9%%)\n", 100*r.RdSR)
	fmt.Fprintf(&b, "  Rr SR:                       %5.2f%%  (paper: 99.6%%)\n", 100*r.RrSR)
	fmt.Fprintf(&b, "  overall (opcode+Rd+Rr):      %5.2f%%  (paper: 99.03%%)\n", 100*r.OverallSR)
	return b.String()
}

// ---------------------------------------------------------------- §5.7

// MalwareResult is the register-swap detection case study.
type MalwareResult struct {
	CleanAlarm bool
	EvilAlarm  bool
	Mismatches []core.FlowMismatch
	Listing    string
}

// Malware trains a subset disassembler and checks the masked-AES snippet
// against its register-swapped malicious variant.
func Malware(sc Scale) (*MalwareResult, error) {
	return MalwareObserved(sc, nil)
}

// MalwareObserved is Malware with a post-training hook: onTrained (may be
// nil) runs once the subset disassembler exists, letting a CLI install an
// InferenceObserver — the trained drift baseline is only reachable from the
// Disassembler itself, which this experiment otherwise keeps internal.
func MalwareObserved(sc Scale, onTrained func(*core.Disassembler) error) (*MalwareResult, error) {
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = sc.Programs
	cfg.TracesPerProgram = sc.TracesPerProgram
	cfg.RegisterPrograms = sc.Programs
	cfg.RegisterTracesPerProgram = sc.TracesPerProgram
	cfg.Seed = sc.Seed
	d, err := core.TrainSubset(cfg, []avr.Class{avr.OpEOR, avr.OpMOV}, true)
	if err != nil {
		return nil, err
	}
	if err := d.SetSparseMode(sc.Sparse); err != nil {
		return nil, err
	}
	if onTrained != nil {
		if err := onTrained(d); err != nil {
			return nil, err
		}
	}
	golden, err := avr.AssembleProgram("MOV r18, r17\nEOR r16, r17")
	if err != nil {
		return nil, err
	}
	evil, err := avr.AssembleProgram("MOV r18, r17\nEOR r16, r0")
	if err != nil {
		return nil, err
	}
	camp, err := power.NewCampaign(cfg.Power, 0, sc.Seed+77)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(sc.Seed) + 7))
	prog := power.NewProgramEnv(cfg.Power, sc.Seed+77, 3)
	detect := func(stream []avr.Instruction) ([]core.FlowMismatch, string, error) {
		sink := d.Observer()
		var runs [][]core.Decoded
		for run := 0; run < 9; run++ {
			traces, err := camp.AcquireSegments(rng, prog, stream)
			if err != nil {
				return nil, "", err
			}
			var decs []core.Decoded
			if sink != nil && sink.Calibration != nil {
				// The simulation knows the executed stream, so every run's
				// decisions can be labeled against true ground truth — not
				// just the golden flow, which deliberately differs from the
				// malicious stream.
				scored, err := d.DisassembleScored(traces)
				if err != nil {
					return nil, "", err
				}
				decs = make([]core.Decoded, len(scored))
				for i, sd := range scored {
					decs[i] = sd.Decoded
				}
				wrong := make([]bool, len(decs))
				for _, m := range core.CompareFlow(stream, decs) {
					if m.Index >= 0 && m.Index < len(wrong) {
						wrong[m.Index] = true
					}
				}
				for i, sd := range scored {
					sink.Calibration.Observe(sd.Confidence, !wrong[i])
				}
			} else {
				if decs, err = d.Disassemble(traces); err != nil {
					return nil, "", err
				}
			}
			runs = append(runs, decs)
		}
		fused, err := core.MajorityDecode(runs)
		if err != nil {
			return nil, "", err
		}
		return core.CompareFlow(golden, fused), core.Listing(fused), nil
	}
	cleanMM, _, err := detect(golden)
	if err != nil {
		return nil, err
	}
	evilMM, listing, err := detect(evil)
	if err != nil {
		return nil, err
	}
	return &MalwareResult{
		CleanAlarm: hasRegisterAlarm(cleanMM),
		EvilAlarm:  hasRegisterAlarm(evilMM),
		Mismatches: evilMM,
		Listing:    listing,
	}, nil
}

func hasRegisterAlarm(mm []core.FlowMismatch) bool {
	for _, m := range mm {
		if m.Field == "Rd" || m.Field == "Rr" {
			return true
		}
	}
	return false
}

func (r *MalwareResult) String() string {
	var b strings.Builder
	b.WriteString("Malware detection (§5.7): masked-AES EOR r16,r17 -> EOR r16,r0\n")
	fmt.Fprintf(&b, "  clean stream register alarm: %v (want false)\n", r.CleanAlarm)
	fmt.Fprintf(&b, "  malicious stream alarm:      %v (want true)\n", r.EvilAlarm)
	b.WriteString("  recovered malicious listing:\n")
	for _, line := range strings.Split(strings.TrimSpace(r.Listing), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "  ALERT %s\n", m)
	}
	return b.String()
}
