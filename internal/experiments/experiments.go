// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) against the simulated acquisition substrate. Each
// experiment returns a result struct with a String method that prints
// paper-style rows, so cmd/experiments and the benchmark harness share one
// implementation.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/power"
)

// Scale sizes an experiment run. The paper's scale is 3 000 traces per class
// from 10 program files (19 under CSA); the default here is laptop-sized.
type Scale struct {
	Programs         int // profiling program files per class
	CSAPrograms      int // program files under covariate shift adaptation
	TracesPerProgram int
	TestTraces       int     // test traces per class for field scenarios
	Severity         float64 // field-environment severity (Table 3/4)
	Seed             uint64
	// Sparse picks the inference path for the experiments that classify
	// through a core.Disassembler (the malware case study). The zero value
	// is SparseAuto.
	Sparse core.SparseMode
}

// DefaultScale finishes each experiment in roughly a minute on a laptop.
func DefaultScale() Scale {
	return Scale{
		Programs:         6,
		CSAPrograms:      12,
		TracesPerProgram: 30,
		TestTraces:       150,
		Severity:         5,
		Seed:             42,
	}
}

// TinyScale is for benchmarks and smoke tests.
func TinyScale() Scale {
	return Scale{
		Programs:         3,
		CSAPrograms:      5,
		TracesPerProgram: 10,
		TestTraces:       40,
		Severity:         5,
		Seed:             42,
	}
}

// PaperScale matches the acquisition counts of the paper. Expect long runs.
func PaperScale() Scale {
	return Scale{
		Programs:         10,
		CSAPrograms:      19,
		TracesPerProgram: 300,
		TestTraces:       300,
		Severity:         5,
		Seed:             42,
	}
}

// classifierSet returns fresh instances of the classifier families the
// paper compares (Fig. 5/6).
func classifierSet() []ml.Classifier {
	return []ml.Classifier{
		ml.NewLDA(),
		ml.NewQDA(),
		ml.NewSVM(10, ml.RBFKernel{Gamma: 0.1}),
		ml.NewGaussianNB(),
	}
}

// fitEval fits a pipeline + classifier on train and evaluates on test.
func fitEval(train, test *power.Dataset, nClasses int, pc features.PipelineConfig, clf ml.Classifier) (trainAcc, testAcc float64, err error) {
	pipe, err := features.FitPipeline(train.Traces, train.Labels, train.Programs, nClasses, pc)
	if err != nil {
		return 0, 0, err
	}
	X, err := pipe.ExtractAll(train.Traces)
	if err != nil {
		return 0, 0, err
	}
	if err := clf.Fit(X, train.Labels); err != nil {
		return 0, 0, err
	}
	trainAcc, err = ml.EvaluateAccuracy(clf, X, train.Labels)
	if err != nil {
		return 0, 0, err
	}
	Xt, err := pipe.ExtractAll(test.Traces)
	if err != nil {
		return 0, 0, err
	}
	testAcc, err = ml.EvaluateAccuracy(clf, Xt, test.Labels)
	return trainAcc, testAcc, err
}

// fieldDataset acquires per-class test traces from a single field program
// environment with the scale's severity (profiling-style random neighbors).
func fieldDataset(camp *power.Campaign, classes []avr.Class, sc Scale, seedMix uint64) (*power.Dataset, error) {
	rng := rand.New(rand.NewSource(int64(sc.Seed ^ seedMix ^ 0xF1E1D)))
	ds := &power.Dataset{DeviceID: camp.Device.ID}
	cfg := camp.Model.Config()
	for li, cl := range classes {
		ds.ClassNames = append(ds.ClassNames, cl.String())
		prog := power.NewFieldProgramEnv(cfg, sc.Seed^seedMix+uint64(li)*71, 1000+li, sc.Severity)
		targets := make([]avr.Instruction, sc.TestTraces)
		for i := range targets {
			targets[i] = avr.RandomOperands(rng, cl)
		}
		traces, err := camp.AcquireTemplated(rng, prog, targets)
		if err != nil {
			return nil, err
		}
		for _, tr := range traces {
			ds.Append(tr, li, 1000+li)
		}
	}
	return ds, nil
}

// ---------------------------------------------------------------- Table 2

// Table2Result reproduces the instruction grouping table.
type Table2Result struct {
	Sizes [avr.NumGroups]int
	Names [avr.NumGroups][]string
}

// Table2 builds the group partition from the ISA model.
func Table2() Table2Result {
	var r Table2Result
	r.Sizes = avr.GroupSizes()
	for g := avr.Group1; g <= avr.Group8; g++ {
		for _, c := range avr.ClassesInGroup(g) {
			r.Names[g-avr.Group1] = append(r.Names[g-avr.Group1], c.String())
		}
	}
	return r
}

func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: grouping AVR instructions (total %d classes)\n", avr.NumClasses)
	for g := 0; g < avr.NumGroups; g++ {
		fmt.Fprintf(&b, "  group%d (%2d insts, %s): %s\n",
			g+1, r.Sizes[g], avr.Group(g+1).Description(), strings.Join(r.Names[g], ", "))
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 2

// Fig2Result summarizes the KL feature extraction between ADC and AND.
type Fig2Result struct {
	TotalPoints  int // 50 × 315
	PeakCount    int // local maxima of between-class KL
	NVPointsADC  int
	NVPointsAND  int
	DNVP         []features.Point // final distinct-and-not-varying top 5
	DNVPKL       []float64
	UnionGroup1  int     // |∪ DNVP⁽⁵⁾| over all group-1 pairs
	ReductionPct float64 // vs 15 750
}

// Fig2 runs the ADC-vs-AND feature extraction of Fig. 2 and the group-1
// union of Section 3.1.
func Fig2(sc Scale) (*Fig2Result, error) {
	camp, err := power.NewCampaign(power.DefaultConfig(), 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	pair := []avr.Class{avr.OpADC, avr.OpAND}
	ds, err := camp.CollectClasses(pair, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	sel, err := features.NewSelector(len(ds.Traces[0]))
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{TotalPoints: 50 * len(ds.Traces[0])}

	perProg := [2]map[int]*features.PointStats{{}, {}}
	classStats := [2]*features.PointStats{}
	for c := 0; c < 2; c++ {
		classStats[c] = features.NewPointStats(50 * len(ds.Traces[0]))
	}
	for i, tr := range ds.Traces {
		flat := sel.CWT.TransformFlat(tr)
		l := ds.Labels[i]
		if err := classStats[l].Add(flat); err != nil {
			return nil, err
		}
		pp := perProg[l][ds.Programs[i]]
		if pp == nil {
			pp = features.NewPointStats(len(flat))
			perProg[l][ds.Programs[i]] = pp
		}
		if err := pp.Add(flat); err != nil {
			return nil, err
		}
	}
	klMap, err := sel.BetweenClassKL(classStats[0], classStats[1])
	if err != nil {
		return nil, err
	}
	res.PeakCount = len(features.LocalMaxima2D(klMap))
	maskADC, _, err := sel.NotVaryingMask(perProg[0])
	if err != nil {
		return nil, err
	}
	maskAND, _, err := sel.NotVaryingMask(perProg[1])
	if err != nil {
		return nil, err
	}
	for _, ok := range maskADC {
		if ok {
			res.NVPointsADC++
		}
	}
	for _, ok := range maskAND {
		if ok {
			res.NVPointsAND++
		}
	}
	pf, err := sel.SelectPair(0, 1, classStats[0], classStats[1], maskADC, maskAND)
	if err != nil {
		return nil, err
	}
	res.DNVP = pf.Points
	res.DNVPKL = pf.KL

	// Union over all group-1 pairs via the pipeline.
	g1 := avr.ClassesInGroup(avr.Group1)
	dsG1, err := camp.CollectClasses(g1, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	pc := features.CSAPipelineConfig()
	pipe, err := features.FitPipeline(dsG1.Traces, dsG1.Labels, dsG1.Programs, len(g1), pc)
	if err != nil {
		return nil, err
	}
	res.UnionGroup1 = pipe.NumPoints()
	res.ReductionPct = 100 * (1 - float64(res.UnionGroup1)/float64(res.TotalPoints))
	return res, nil
}

func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: KL feature extraction, ADC vs AND\n")
	fmt.Fprintf(&b, "  time-frequency points:            %d (50 scales x 315 samples)\n", r.TotalPoints)
	fmt.Fprintf(&b, "  between-class KL local maxima:    %d\n", r.PeakCount)
	fmt.Fprintf(&b, "  not-varying points (ADC / AND):   %d / %d\n", r.NVPointsADC, r.NVPointsAND)
	fmt.Fprintf(&b, "  DNVP(5) (scale,time | KL):\n")
	for i, p := range r.DNVP {
		fmt.Fprintf(&b, "    (%2d, %3d)  KL=%.4g\n", p.Scale, p.Time, r.DNVPKL[i])
	}
	fmt.Fprintf(&b, "  group-1 unified DNVP:             %d points (%.1f%% reduction; paper: 205, 98.7%%)\n",
		r.UnionGroup1, r.ReductionPct)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 3

// Fig3Result contrasts the best (not-varying) and worst (highest-peak)
// 3-point feature sets under program-to-program covariate shift.
type Fig3Result struct {
	// SeparationWorst/Best: ratio of between-program distance to
	// within-program spread of AND traces in each 3-point feature space.
	// Large = the two programs form separate clusters (bad: Fig 3 left).
	SeparationWorst float64
	SeparationBest  float64
}

// Fig3 reproduces the best/worst feature selection contrast of Fig. 3.
func Fig3(sc Scale) (*Fig3Result, error) {
	cfg := power.DefaultConfig()
	camp, err := power.NewCampaign(cfg, 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	pair := []avr.Class{avr.OpADC, avr.OpAND}
	ds, err := camp.CollectClasses(pair, sc.Programs, sc.TracesPerProgram)
	if err != nil {
		return nil, err
	}
	sel, err := features.NewSelector(len(ds.Traces[0]))
	if err != nil {
		return nil, err
	}
	sel.TopPerPair = 3

	classStats := [2]*features.PointStats{}
	perProgAND := map[int]*features.PointStats{}
	for c := 0; c < 2; c++ {
		classStats[c] = features.NewPointStats(50 * len(ds.Traces[0]))
	}
	for i, tr := range ds.Traces {
		flat := sel.CWT.TransformFlat(tr)
		l := ds.Labels[i]
		if err := classStats[l].Add(flat); err != nil {
			return nil, err
		}
		if l == 1 {
			pp := perProgAND[ds.Programs[i]]
			if pp == nil {
				pp = features.NewPointStats(len(flat))
				perProgAND[ds.Programs[i]] = pp
			}
			if err := pp.Add(flat); err != nil {
				return nil, err
			}
		}
	}
	klMap, err := sel.BetweenClassKL(classStats[0], classStats[1])
	if err != nil {
		return nil, err
	}
	peaks := features.LocalMaxima2D(klMap)
	sort.Slice(peaks, func(i, j int) bool {
		return klMap[peaks[i].Scale][peaks[i].Time] > klMap[peaks[j].Scale][peaks[j].Time]
	})
	if len(peaks) < 6 {
		return nil, fmt.Errorf("experiments: only %d KL peaks found", len(peaks))
	}
	worst := peaks[:3] // 3 highest peaks (program sensitive)
	// Best: the 3 strongest peaks that also pass the AND not-varying mask.
	mask, _, err := sel.NotVaryingMask(perProgAND)
	if err != nil {
		return nil, err
	}
	var best []features.Point
	for _, p := range peaks {
		if mask[p.Scale*len(ds.Traces[0])+p.Time] {
			best = append(best, p)
			if len(best) == 3 {
				break
			}
		}
	}
	if len(best) < 3 {
		// Degenerate mask: fall back to the lowest-ranked peaks, matching
		// the paper's "3 lowest peak points" wording.
		best = peaks[len(peaks)-3:]
	}

	// Measure program-cluster separation of AND traces in each space.
	separation := func(points []features.Point) (float64, error) {
		byProg := map[int][][]float64{}
		for i, tr := range ds.Traces {
			if ds.Labels[i] != 1 {
				continue
			}
			f, err := sel.ExtractPoints(tr, points)
			if err != nil {
				return 0, err
			}
			byProg[ds.Programs[i]] = append(byProg[ds.Programs[i]], f)
		}
		ids := make([]int, 0, len(byProg))
		for id := range byProg {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		if len(ids) < 2 {
			return 0, fmt.Errorf("experiments: need 2 programs for Fig 3")
		}
		a, bb := byProg[ids[0]], byProg[ids[1]]
		return clusterSeparation(a, bb), nil
	}
	res := &Fig3Result{}
	if res.SeparationWorst, err = separation(worst); err != nil {
		return nil, err
	}
	if res.SeparationBest, err = separation(best); err != nil {
		return nil, err
	}
	return res, nil
}

// clusterSeparation returns ‖μa − μb‖ / mean within-cluster deviation.
func clusterSeparation(a, b [][]float64) float64 {
	mean := func(xs [][]float64) []float64 {
		mu := make([]float64, len(xs[0]))
		for _, x := range xs {
			for j, v := range x {
				mu[j] += v / float64(len(xs))
			}
		}
		return mu
	}
	spread := func(xs [][]float64, mu []float64) float64 {
		var s float64
		for _, x := range xs {
			var d float64
			for j, v := range x {
				diff := v - mu[j]
				d += diff * diff
			}
			s += math.Sqrt(d)
		}
		return s / float64(len(xs))
	}
	ma, mb := mean(a), mean(b)
	var d float64
	for j := range ma {
		diff := ma[j] - mb[j]
		d += diff * diff
	}
	dist := math.Sqrt(d)
	w := 0.5 * (spread(a, ma) + spread(b, mb))
	if w == 0 {
		return 0
	}
	return dist / w
}

func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: feature selection vs program covariate shift (AND, 2 programs)\n")
	fmt.Fprintf(&b, "  3 highest KL peaks:   cluster separation %.2f  (large -> programs split apart; paper: 'scattered')\n", r.SeparationWorst)
	fmt.Fprintf(&b, "  3 not-varying points: cluster separation %.2f  (small -> programs overlap;    paper: 'gathered')\n", r.SeparationBest)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 4

// Fig4 prints the program segment template and pipeline timing.
func Fig4() string {
	rng := rand.New(rand.NewSource(1))
	seg := avr.NewSegment(rng, avr.Instruction{Class: avr.OpADD, Rd: 16, Rr: 17})
	var b strings.Builder
	b.WriteString("Fig 4: program segment template (2-stage pipeline)\n")
	b.WriteString("  slot  instruction           role\n")
	roles := []string{
		"trigger up (SBI)", "padding", "random prev (pipeline overlap)",
		"TARGET (profiled)", "random next (pipeline overlap)", "padding", "trigger down (CBI)",
	}
	for i, in := range seg.Instructions() {
		fmt.Fprintf(&b, "  %4d  %-20s  %s\n", i, in.String(), roles[i])
	}
	b.WriteString("  reference sequence: ")
	var names []string
	for _, in := range avr.ReferenceSequence() {
		names = append(names, in.Class.Name())
	}
	b.WriteString(strings.Join(names, ", "))
	b.WriteString("  (subtracted from every measurement)\n")
	return b.String()
}
